package sampleunion

import (
	"strings"
	"testing"
)

// unionForNTests builds a tiny two-join union for the n<=0 contract
// tests.
func unionForNTests(t *testing.T) *Union {
	t.Helper()
	r := NewRelation("r", NewSchema("a", "b"))
	s := NewRelation("s", NewSchema("b", "c"))
	for i := 0; i < 8; i++ {
		r.AppendValues(Value(i), Value(i%4))
		s.AppendValues(Value(i%4), Value(i*10))
	}
	j1, err := Chain("j1", []*Relation{r, s}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Chain("j2", []*Relation{r, s}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j1, j2)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestSampleZeroIsEmpty pins the n == 0 contract: every sampling entry
// point returns an empty (non-nil) result and no error.
func TestSampleZeroIsEmpty(t *testing.T) {
	u := unionForNTests(t)
	o := Options{Seed: 7, Warmup: WarmupHistogram}
	sess, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	pred := Cmp{Attr: "a", Op: GE, Val: 0}

	type call struct {
		name string
		run  func() (int, error)
	}
	calls := []call{
		{"Union.Sample", func() (int, error) { ts, st, err := u.Sample(0, o); mustStats(t, st); return len(ts), err }},
		{"Union.SampleDisjoint", func() (int, error) { ts, st, err := u.SampleDisjoint(0, o); mustStats(t, st); return len(ts), err }},
		{"Union.SampleWhere", func() (int, error) { ts, _, err := u.SampleWhere(0, pred, o); return len(ts), err }},
		{"Session.Sample", func() (int, error) { ts, st, err := sess.Sample(0); mustStats(t, st); return len(ts), err }},
		{"Session.SampleSeeded", func() (int, error) { ts, _, err := sess.SampleSeeded(0, 3); return len(ts), err }},
		{"Session.SampleDisjoint", func() (int, error) { ts, _, err := sess.SampleDisjoint(0); return len(ts), err }},
		{"Session.SampleWhere", func() (int, error) { ts, _, err := sess.SampleWhere(0, pred); return len(ts), err }},
		{"Session.SampleParallel", func() (int, error) { ts, err := sess.SampleParallel(0, 4); return len(ts), err }},
		{"Session.SampleBatch", func() (int, error) { ts, st, err := sess.SampleBatch(0); mustStats(t, st); return len(ts), err }},
		{"Session.SampleBatchSeeded", func() (int, error) { ts, _, err := sess.SampleBatchSeeded(0, 3); return len(ts), err }},
		{"Session.SampleDisjointBatch", func() (int, error) { ts, _, err := sess.SampleDisjointBatch(0); return len(ts), err }},
		{"Session.SampleWhereBatch", func() (int, error) { ts, _, err := sess.SampleWhereBatch(0, pred); return len(ts), err }},
	}
	for _, c := range calls {
		got, err := c.run()
		if err != nil {
			t.Errorf("%s(0): unexpected error %v", c.name, err)
		}
		if got != 0 {
			t.Errorf("%s(0): got %d tuples, want 0", c.name, got)
		}
	}
}

func mustStats(t *testing.T, st *Stats) {
	t.Helper()
	if st == nil {
		t.Error("stats must be non-nil for n == 0")
	}
}

// TestSampleNegativeIsError pins the n < 0 contract: a clear error, no
// panic, uniformly across entry points.
func TestSampleNegativeIsError(t *testing.T) {
	u := unionForNTests(t)
	o := Options{Seed: 7, Warmup: WarmupHistogram}
	sess, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	pred := Cmp{Attr: "a", Op: GE, Val: 0}

	calls := map[string]func() error{
		"Union.Sample":           func() error { _, _, err := u.Sample(-1, o); return err },
		"Union.SampleDisjoint":   func() error { _, _, err := u.SampleDisjoint(-1, o); return err },
		"Union.SampleWhere":      func() error { _, _, err := u.SampleWhere(-1, pred, o); return err },
		"Union.ApproxCount":      func() error { _, err := u.ApproxCount(pred, -1, o); return err },
		"Session.Sample":         func() error { _, _, err := sess.Sample(-1); return err },
		"Session.SampleDisjoint": func() error { _, _, err := sess.SampleDisjoint(-1); return err },
		"Session.SampleWhere":    func() error { _, _, err := sess.SampleWhere(-1, pred); return err },
		"Session.SampleParallel": func() error { _, err := sess.SampleParallel(-1, 4); return err },
		"Session.SampleBatch":    func() error { _, _, err := sess.SampleBatch(-1); return err },
		"Session.SampleDisjointBatch": func() error {
			_, _, err := sess.SampleDisjointBatch(-1)
			return err
		},
		"Session.SampleWhereBatch": func() error { _, _, err := sess.SampleWhereBatch(-1, pred); return err },
		"Session.ApproxCount":      func() error { _, err := sess.ApproxCount(pred, -1); return err },
		"Session.ApproxSum":        func() error { _, err := sess.ApproxSum("c", pred, -1); return err },
		"Session.ApproxAvg":        func() error { _, err := sess.ApproxAvg("c", pred, -1); return err },
		"Session.ApproxGroup":      func() error { _, err := sess.ApproxGroupCount("a", -1); return err },
	}
	for name, run := range calls {
		err := run()
		if err == nil {
			t.Errorf("%s(-1): want error, got nil", name)
			continue
		}
		if !strings.Contains(err.Error(), "sample count") {
			t.Errorf("%s(-1): error %q does not name the sample count", name, err)
		}
	}
}

// TestApproxZeroIsError pins Approx*(n == 0): a defined no-samples
// error (an estimate from zero samples is meaningless), not a panic.
func TestApproxZeroIsError(t *testing.T) {
	u := unionForNTests(t)
	sess, err := u.Prepare(Options{Seed: 7, Warmup: WarmupHistogram})
	if err != nil {
		t.Fatal(err)
	}
	pred := Cmp{Attr: "a", Op: GE, Val: 0}
	calls := map[string]func() error{
		"ApproxCount": func() error { _, err := sess.ApproxCount(pred, 0); return err },
		"ApproxSum":   func() error { _, err := sess.ApproxSum("c", pred, 0); return err },
		"ApproxAvg":   func() error { _, err := sess.ApproxAvg("c", pred, 0); return err },
		"ApproxGroup": func() error { _, err := sess.ApproxGroupCount("a", 0); return err },
	}
	for name, run := range calls {
		if err := run(); err == nil {
			t.Errorf("%s(0): want a no-samples error, got nil", name)
		}
	}
}
