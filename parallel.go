package sampleunion

import (
	"fmt"
	"sync"

	"sampleunion/internal/core"
	"sampleunion/internal/rng"
)

// Estimate is the warm-up parameter report: what the framework knows
// about the union before sampling.
type Estimate struct {
	// JoinSizes are the per-join size estimates |J_j| (exact under
	// WarmupExact, Horvitz–Thompson under WarmupRandomWalk, upper
	// bounds under WarmupHistogram+MethodEO).
	JoinSizes []float64
	// CoverSizes are the |J'_j| of §3.1: the share of each join not
	// covered by earlier joins. They sum to UnionSize.
	CoverSizes []float64
	// UnionSize is the estimated |J_1 ∪ ... ∪ J_n| (Eq. 1).
	UnionSize float64
}

// Estimate runs the selected warm-up and reports the framework
// parameters without sampling.
func (u *Union) Estimate(o Options) (*Estimate, error) {
	o = o.withDefaults()
	p, err := u.estimator(o).Params(rng.New(o.Seed))
	if err != nil {
		return nil, err
	}
	return &Estimate{
		JoinSizes:  append([]float64(nil), p.JoinSizes...),
		CoverSizes: append([]float64(nil), p.Cover...),
		UnionSize:  p.UnionSize,
	}, nil
}

// SampleParallel draws n tuples using the given number of worker
// goroutines. Samplers are not concurrency-safe, so each worker builds
// its own sampler seeded from Options.Seed plus its index; every worker
// stream is uniform and independent, hence so is their concatenation.
// Warm-up runs once per worker — prefer WarmupHistogram or modest
// WarmupWalks when workers are many.
func (u *Union) SampleParallel(n, workers int, o Options) ([]Tuple, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("sampleunion: workers must be positive, got %d", workers)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out, _, err := u.Sample(n, o)
		return out, err
	}
	o = o.withDefaults()
	u.prewarm()
	per := n / workers
	parts := make([][]Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		count := per
		if w == workers-1 {
			count = n - per*(workers-1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := o
			opts.Seed = o.Seed + int64(w)*1_000_003
			out, _, err := u.sampleOne(count, opts)
			parts[w], errs[w] = out, err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]Tuple, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// prewarm forces every lazily built shared structure — per-attribute
// hash indexes and membership maps — so concurrent workers only read
// them. Relations and joins cache these without locks by design; the
// warm-up here is what makes the read-only sharing safe.
func (u *Union) prewarm() {
	for _, j := range u.joins {
		probe := make(Tuple, u.OutputSchema().Len())
		j.ContainsAligned(probe, u.OutputSchema())
		for _, n := range j.Nodes() {
			for a := 0; a < n.Rel.Arity(); a++ {
				n.Rel.Index(a)
			}
		}
	}
}

// sampleOne is Sample without re-applying defaults (used by the
// parallel driver, which already derived per-worker seeds).
func (u *Union) sampleOne(n int, o Options) ([]Tuple, *Stats, error) {
	g := rng.New(o.Seed)
	if o.Online {
		s, err := core.NewOnlineSampler(u.joins, core.OnlineConfig{
			WarmupWalks: o.WarmupWalks,
			Oracle:      o.Oracle,
		})
		if err != nil {
			return nil, nil, err
		}
		out, err := s.Sample(n, g)
		if err != nil {
			return nil, nil, err
		}
		return out, s.Stats(), nil
	}
	s, err := core.NewCoverSampler(u.joins, core.CoverConfig{
		Method:    core.JoinMethod(o.Method),
		Estimator: u.estimator(o),
		Oracle:    o.Oracle,
	})
	if err != nil {
		return nil, nil, err
	}
	out, err := s.Sample(n, g)
	if err != nil {
		return nil, nil, err
	}
	return out, s.Stats(), nil
}
