package sampleunion

import (
	"sampleunion/internal/rng"
)

// Estimate is the warm-up parameter report: what the framework knows
// about the union before sampling.
type Estimate struct {
	// JoinSizes are the per-join size estimates |J_j| (exact under
	// WarmupExact, Horvitz–Thompson under WarmupRandomWalk, upper
	// bounds under WarmupHistogram+MethodEO).
	JoinSizes []float64
	// CoverSizes are the |J'_j| of §3.1: the share of each join not
	// covered by earlier joins. They sum to UnionSize.
	CoverSizes []float64
	// UnionSize is the estimated |J_1 ∪ ... ∪ J_n| (Eq. 1).
	UnionSize float64
}

// Estimate runs the selected warm-up and reports the framework
// parameters without sampling. A prepared Session caches this report;
// Session.Estimate returns it without re-estimating.
func (u *Union) Estimate(o Options) (*Estimate, error) {
	o = o.withDefaults()
	p, err := u.estimator(o).Params(rng.New(o.Seed))
	if err != nil {
		return nil, err
	}
	return &Estimate{
		JoinSizes:  append([]float64(nil), p.JoinSizes...),
		CoverSizes: append([]float64(nil), p.Cover...),
		UnionSize:  p.UnionSize,
	}, nil
}

// SampleParallel draws n tuples using the given number of worker
// goroutines. It prepares a Session (one warm-up total, shared by every
// worker) and fans out over it: each worker draws one shard-sized
// batch (the batch engine, SampleBatchSeeded) on its own decorrelated
// stream, so worker streams are uniform and independent, and hence so
// is their concatenation.
//
// SampleParallel is a prepare-then-call wrapper; callers issuing more
// than one query should Prepare once and use Session.SampleParallel.
func (u *Union) SampleParallel(n, workers int, o Options) ([]Tuple, error) {
	s, err := u.Prepare(o)
	if err != nil {
		return nil, err
	}
	return s.SampleParallel(n, workers)
}
