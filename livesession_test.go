package sampleunion

import (
	"sync"
	"testing"
)

// liveUnion builds a small two-join union over relations the tests
// mutate, returning the union and the relations.
func liveUnion(t testing.TB) (*Union, []*Relation) {
	t.Helper()
	mk := func(suffix string, lo, hi int) (*Join, []*Relation) {
		c := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		o := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			c.AppendValues(Value(k), Value(k%5))
			o.AppendValues(Value(k*10), Value(k))
		}
		j, err := Chain("J_"+suffix, []*Relation{c, o}, []string{"custkey"})
		if err != nil {
			t.Fatal(err)
		}
		return j, []*Relation{c, o}
	}
	j1, r1 := mk("east", 0, 30)
	j2, r2 := mk("west", 15, 45)
	u, err := NewUnion(j1, j2)
	if err != nil {
		t.Fatal(err)
	}
	return u, append(r1, r2...)
}

// rebuiltUnion reconstructs an equivalent union from the relations'
// current live tuples — the ground truth a refreshed session must agree
// with.
func rebuiltUnion(t testing.TB, rels []*Relation) *Union {
	t.Helper()
	clone := func(r *Relation) *Relation {
		out := NewRelation(r.Name(), r.Schema())
		out.AppendRows(r.Tuples())
		return out
	}
	j1, err := Chain("J_east", []*Relation{clone(rels[0]), clone(rels[1])}, []string{"custkey"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Chain("J_west", []*Relation{clone(rels[2]), clone(rels[3])}, []string{"custkey"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j1, j2)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestSessionRefreshServesNewData mutates under a warm session and
// checks that after Refresh every drawn tuple is a member of the
// mutated union and that tuples only reachable through the new rows do
// appear.
func TestSessionRefreshServesNewData(t *testing.T) {
	for _, opts := range []Options{
		{Seed: 7, Warmup: WarmupExact, Method: MethodEW},
		{Seed: 7, Warmup: WarmupHistogram, Method: MethodEO},
		{Seed: 7, Online: true, WarmupWalks: 100},
	} {
		s, err := liveUnionSession(t, opts)
		if err != nil {
			t.Fatal(err)
		}
		u, rels := s.u, s.rels
		if s.s.Stale() {
			t.Fatal("fresh session reports stale")
		}
		// New customer 999 with two orders: reachable only post-mutation.
		rels[0].AppendRows([]Tuple{{999, 1}})
		rels[1].AppendRows([]Tuple{{5000, 999}, {5001, 999}})
		// Delete one old customer so its results must vanish.
		rels[2].Delete(0)
		deletedKey := Value(15) // first west customer
		if !s.s.Stale() {
			t.Fatal("mutated session reports fresh")
		}
		if err := s.s.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		if s.s.Stale() {
			t.Fatal("refreshed session still stale")
		}
		truth := rebuiltUnion(t, rels)
		out, _, err := s.s.SampleSeeded(1500, 99)
		if err != nil {
			t.Fatal(err)
		}
		sawNew := false
		ck := u.OutputSchema().Index("custkey")
		for _, tup := range out {
			if !truth.Contains(tup) {
				t.Fatalf("opts %+v: sampled %v not in mutated union", opts, tup)
			}
			if tup[ck] == 999 {
				sawNew = true
			}
			if tup[ck] == deletedKey {
				// custkey 15 exists in east too; only flag when the east copy
				// cannot produce it — truth.Contains above already covers
				// correctness, so nothing to do here.
				_ = deletedKey
			}
		}
		if !sawNew {
			t.Fatalf("opts %+v: 1500 post-refresh draws never hit the appended rows", opts)
		}
	}
}

// liveSession bundles a session with its union and relations.
type liveSession struct {
	u    *Union
	rels []*Relation
	s    *Session
}

func liveUnionSession(t testing.TB, o Options) (*liveSession, error) {
	u, rels := liveUnion(t)
	s, err := u.Prepare(o)
	if err != nil {
		return nil, err
	}
	return &liveSession{u: u, rels: rels, s: s}, nil
}

// TestAutoRefresh checks the AutoRefresh option reconciles before a
// draw without an explicit Refresh call.
func TestAutoRefresh(t *testing.T) {
	ls, err := liveUnionSession(t, Options{Seed: 3, Warmup: WarmupExact, Method: MethodEW, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	ls.rels[0].AppendRows([]Tuple{{777, 2}})
	ls.rels[1].AppendRows([]Tuple{{7000, 777}, {7001, 777}, {7002, 777}})
	out, _, err := ls.s.Sample(1200)
	if err != nil {
		t.Fatal(err)
	}
	if ls.s.Stale() {
		t.Fatal("AutoRefresh session stale after a draw")
	}
	ck := ls.u.OutputSchema().Index("custkey")
	saw := false
	for _, tup := range out {
		if tup[ck] == 777 {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("AutoRefresh draw never produced the appended rows")
	}
}

// TestRefreshDeterminism pins that two sessions with identical options,
// mutation history, and refresh points produce bit-identical seeded
// draws.
func TestRefreshDeterminism(t *testing.T) {
	run := func() []Tuple {
		ls, err := liveUnionSession(t, Options{Seed: 11, Warmup: WarmupHistogram, Method: MethodEO})
		if err != nil {
			t.Fatal(err)
		}
		ls.rels[1].AppendRows([]Tuple{{9000, 3}, {9001, 4}})
		ls.rels[0].Delete(2)
		if err := ls.s.Refresh(); err != nil {
			t.Fatal(err)
		}
		out, _, err := ls.s.SampleSeeded(128, 42)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRefreshNoop: refreshing an unmutated session is a cheap no-op.
func TestRefreshNoop(t *testing.T) {
	ls, err := liveUnionSession(t, Options{Seed: 5, Warmup: WarmupExact, Method: MethodEW})
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := ls.s.SampleSeeded(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.s.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, _, err := ls.s.SampleSeeded(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatalf("no-op Refresh changed seeded draw %d", i)
		}
	}
}

// TestRefreshDisjointAndWhere covers the satellite paths over a
// refreshed session: disjoint draws and predicate rejection draws must
// serve the mutated data.
func TestRefreshDisjointAndWhere(t *testing.T) {
	ls, err := liveUnionSession(t, Options{Seed: 13, Warmup: WarmupExact, Method: MethodEW})
	if err != nil {
		t.Fatal(err)
	}
	ls.rels[0].AppendRows([]Tuple{{888, 4}})
	ls.rels[1].AppendRows([]Tuple{{8000, 888}})
	if err := ls.s.Refresh(); err != nil {
		t.Fatal(err)
	}
	truth := rebuiltUnion(t, ls.rels)
	dj, _, err := ls.s.SampleDisjointSeeded(600, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range dj {
		if !truth.Contains(tup) {
			t.Fatalf("disjoint draw %v not in mutated union", tup)
		}
	}
	wh, _, err := ls.s.SampleWhereSeeded(100, Cmp{Attr: "custkey", Op: EQ, Val: 888}, 78)
	if err != nil {
		t.Fatal(err)
	}
	if len(wh) != 100 {
		t.Fatalf("where draw returned %d tuples, want 100", len(wh))
	}
	for _, tup := range wh {
		if tup[ls.u.OutputSchema().Index("custkey")] != 888 {
			t.Fatalf("where draw %v violates predicate", tup)
		}
	}
}

// TestConcurrentDrawsMutationsRefresh races session draws against
// relation mutations and Refresh calls (run under -race): draws must
// stay memory-safe on every generation, and the final refreshed state
// must serve exactly the mutated union.
func TestConcurrentDrawsMutationsRefresh(t *testing.T) {
	for _, opts := range []Options{
		{Seed: 21, Warmup: WarmupHistogram, Method: MethodEO},
		{Seed: 21, Online: true, WarmupWalks: 50},
		{Seed: 21, Warmup: WarmupHistogram, Method: MethodEO, AutoRefresh: true},
	} {
		ls, err := liveUnionSession(t, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() { // mutator
			defer wg.Done()
			for i := 0; i < 120; i++ {
				ls.rels[i%4].Append(Tuple{Value(1000 + i), Value(i % 5)})
				if i%7 == 0 {
					ls.rels[1].Delete(i % ls.rels[1].Len())
				}
			}
			close(stop)
		}()
		wg.Add(1)
		go func() { // refresher
			defer wg.Done()
			for {
				select {
				case <-stop:
					if err := ls.s.Refresh(); err != nil {
						t.Errorf("refresh: %v", err)
					}
					return
				default:
					if err := ls.s.Refresh(); err != nil {
						t.Errorf("refresh: %v", err)
						return
					}
				}
			}
		}()
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) { // drawers
				defer wg.Done()
				for i := 0; i < 40; i++ {
					if _, _, err := ls.s.Sample(8); err != nil {
						t.Errorf("draw: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := ls.s.Refresh(); err != nil {
			t.Fatal(err)
		}
		truth := rebuiltUnion(t, ls.rels)
		out, _, err := ls.s.SampleSeeded(400, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range out {
			if !truth.Contains(tup) {
				t.Fatalf("post-settle draw %v not in mutated union", tup)
			}
		}
	}
}

// TestRefreshCyclicUnion mutates a cyclic join's skeleton and residual
// members under a warm session and checks refreshed draws against the
// rebuilt ground truth.
func TestRefreshCyclicUnion(t *testing.T) {
	r := NewRelation("R", NewSchema("A", "B"))
	s := NewRelation("S", NewSchema("B", "C"))
	x := NewRelation("T", NewSchema("C", "A"))
	for i := 0; i < 20; i++ {
		r.AppendValues(Value(i%5), Value(i%6))
		s.AppendValues(Value(i%6), Value(i%4))
		x.AppendValues(Value(i%4), Value(i%5))
	}
	edges := []Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}
	j, err := Cyclic("tri", []*Relation{r, s, x}, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := u.Prepare(Options{Seed: 17, Warmup: WarmupHistogram, Method: MethodEW})
	if err != nil {
		t.Fatal(err)
	}
	r.AppendValues(1, 2)
	s.AppendValues(2, 3)
	x.AppendValues(3, 1)
	x.Delete(2)
	if err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	clone := func(rel *Relation) *Relation {
		out := NewRelation(rel.Name(), rel.Schema())
		out.AppendRows(rel.Tuples())
		return out
	}
	fj, err := Cyclic("tri2", []*Relation{clone(r), clone(s), clone(x)}, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	fu, err := NewUnion(fj)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := sess.SampleSeeded(300, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out {
		if !fu.Contains(tup) {
			t.Fatalf("cyclic refreshed draw %v not in mutated join", tup)
		}
	}
}
