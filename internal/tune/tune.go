// Package tune turns observed sampling statistics into an execution
// plan for a union-of-joins sampling session: which warm-up to run,
// how many walks to spend per join, which join subroutine (EW/EO/WJ)
// to use per join, where alias tables pay for themselves, and how many
// attempts a batch slice may spend per accepted selection.
//
// The package is deliberately free of engine dependencies: it consumes
// plain numbers (JoinStats) and produces plain numbers (Plan), so the
// planner is a pure function that is trivially unit-testable and —
// because the statistics it reads derive only from the seeded warm-up
// stream — deterministic. The engine layers (core, session) gather the
// statistics and apply the decisions.
//
// The Method and Warmup enums are numerically identical to their
// core/sampleunion counterparts (EW=0, EO=1, WJ=2; histogram=0,
// random-walk=1, exact=2), so casts between the packages are direct.
package tune

import "math"

// Method mirrors the join-subroutine enum (EW=0, EO=1, WJ=2).
type Method int

const (
	// MethodEW is exact-weight sampling: linear setup over the join's
	// rows, zero rejection on tree joins.
	MethodEW Method = iota
	// MethodEO is Olken sampling: near-zero setup, rejection governed
	// by size/OlkenBound.
	MethodEO
	// MethodWJ is wander-join walks thinned against the Olken bound:
	// no setup at all, rejection comparable to EO.
	MethodWJ
)

// String names the method the way the engine does.
func (m Method) String() string {
	switch m {
	case MethodEW:
		return "EW"
	case MethodEO:
		return "EO"
	case MethodWJ:
		return "WJ"
	}
	return "unknown"
}

// Warmup mirrors the warm-up enum (histogram=0, random-walk=1, exact=2).
type Warmup int

const (
	// WarmupHistogram estimates from statistics only.
	WarmupHistogram Warmup = iota
	// WarmupRandomWalk estimates by Horvitz–Thompson over walks.
	WarmupRandomWalk
	// WarmupExact executes the joins (validation scales only).
	WarmupExact
)

// String names the warm-up the way the engine does.
func (w Warmup) String() string {
	switch w {
	case WarmupHistogram:
		return "histogram"
	case WarmupRandomWalk:
		return "random-walk"
	case WarmupExact:
		return "exact"
	}
	return "unknown"
}

// JoinStats are the observed inputs the planner reads for one join.
// The warm-up fields come from the walk estimator; the structural
// fields from the join itself; the feedback fields from draw-loop
// counters (zero before any draws).
type JoinStats struct {
	// Walks is the number of warm-up walks folded into the estimate.
	Walks int
	// Size is the current size estimate (exact if Exact is set).
	Size float64
	// RelHalfWidth is the confidence half-width divided by Size
	// (+Inf when no estimate exists yet).
	RelHalfWidth float64
	// Exact marks Size as an exact count rather than an estimate.
	Exact bool
	// OlkenBound is the join's rejection bound (root rows × Π max
	// degree): size/bound is the EO/WJ acceptance probability.
	OlkenBound float64
	// Rows is the total base-relation row count across the join's
	// nodes — the setup cost EW pays to build exact weights.
	Rows int64
	// Share is the join's weight share of the union (its size over the
	// summed sizes), the probability a cover draw lands on it.
	Share float64
	// Cyclic marks joins with a residual part: exact counting is
	// exponential there, so escalation falls back to more walks.
	Cyclic bool

	// Draws and Rejected are cumulative draw-loop feedback: attempts
	// routed at this join and how many its subroutine rejected.
	Draws    int64
	Rejected int64
}

// Acceptance is the planner's per-attempt acceptance probability for
// rejection-based subroutines on this join: observed rejection rates
// once enough draws accumulated, the size/OlkenBound prior before.
func (s JoinStats) Acceptance(minFeedback int64) float64 {
	if s.Draws >= minFeedback && s.Draws > 0 {
		return float64(s.Draws-s.Rejected) / float64(s.Draws)
	}
	if s.OlkenBound <= 0 || s.Size <= 0 {
		return 1
	}
	a := s.Size / s.OlkenBound
	if a > 1 {
		a = 1
	}
	return a
}

// JoinPlan is the planner's decision for one join.
type JoinPlan struct {
	// Method is the join subroutine to sample with.
	Method Method
	// Exact escalates the join's size estimation to an exact count
	// (tree joins only: the skeleton count is linear there).
	Exact bool
	// AliasThreshold is the weighted-row vector length at which batch
	// draws build an alias table (0 = always, NeverAlias = never).
	AliasThreshold int
	// WalkBudget is the join's warm-up walk budget for the next
	// (re-)warm.
	WalkBudget int
}

// Plan is one complete set of tuning decisions. A Plan is a pure
// function of the observed statistics, which are a pure function of
// the seeded warm-up stream — so auto-tuned sessions stay reproducible.
type Plan struct {
	// Warmup is the warm-up mode for the next (re-)warm.
	Warmup Warmup
	// Joins holds the per-join decisions, indexed like the union.
	Joins []JoinPlan
	// MaxDrawsPerSelection caps attempts per accepted selection in
	// batch slices; the planner raises it when predicted rejection
	// rates would otherwise starve a slice.
	MaxDrawsPerSelection int
}

// NeverAlias is an alias threshold no weighted-row vector reaches:
// bounded binary-search draws only.
const NeverAlias = 1 << 30

// DefaultAliasThreshold matches the engine's fixed pre-tuning
// threshold; explicit (non-auto) sessions keep using exactly this.
const DefaultAliasThreshold = 32

// Config bounds the planner's decisions.
type Config struct {
	// WalkBudget is the initial per-join warm-up walk budget
	// (default 128; early stopping usually spends far less).
	WalkBudget int
	// MaxWalkBudget caps per-join escalation of the walk budget
	// (default 1024).
	MaxWalkBudget int
	// EscalateRel is the relative half-width above which a tree join's
	// estimate escalates to an exact count, and a cyclic join's walk
	// budget grows (default 0.2).
	EscalateRel float64
	// MinAccept is the acceptance probability below which
	// rejection-based subroutines are judged too expensive and the
	// join switches to EW (default 1/16).
	MinAccept float64
	// MaxSetupRows bounds the base rows EW setup may touch; past it a
	// low-acceptance join falls back to WJ, which needs no setup
	// (default 4Mi rows).
	MaxSetupRows int64
	// HeavyShare is the union weight share above which a join's alias
	// tables are built aggressively; LightShare the share below which
	// they are never built (defaults 0.25 and 0.01).
	HeavyShare float64
	LightShare float64
	// RejectTrigger is the observed rejection rate past which the
	// controller flags a re-plan (default 0.9), once MinFeedbackDraws
	// attempts accumulated (default 512).
	RejectTrigger    float64
	MinFeedbackDraws int64
}

func (c Config) withDefaults() Config {
	if c.WalkBudget <= 0 {
		c.WalkBudget = 128
	}
	if c.MaxWalkBudget <= 0 {
		c.MaxWalkBudget = 1024
	}
	if c.EscalateRel <= 0 {
		c.EscalateRel = 0.2
	}
	if c.MinAccept <= 0 {
		c.MinAccept = 1.0 / 16
	}
	if c.MaxSetupRows <= 0 {
		c.MaxSetupRows = 4 << 20
	}
	if c.HeavyShare <= 0 {
		c.HeavyShare = 0.25
	}
	if c.LightShare <= 0 {
		c.LightShare = 0.01
	}
	if c.RejectTrigger <= 0 {
		c.RejectTrigger = 0.9
	}
	if c.MinFeedbackDraws <= 0 {
		c.MinFeedbackDraws = 512
	}
	return c
}

// Build is the planner: a pure function from observed statistics to a
// plan. Decisions, per join:
//
//   - subroutine: EO while its acceptance probability (observed
//     rejection rate once available, size/OlkenBound before) stays
//     above MinAccept; below it, EW unless its linear setup is
//     unaffordable (Rows > MaxSetupRows), then WJ;
//   - exact escalation: tree joins whose estimate is still wider than
//     EscalateRel × size after warm-up get exact counts;
//   - walk budget: cyclic joins (no exact fallback) with wide
//     estimates get their budget doubled, up to MaxWalkBudget;
//   - alias threshold: heavy joins (share ≥ HeavyShare) build alias
//     tables aggressively, light joins (share < LightShare) never do,
//     the rest keep the default threshold.
//
// Plan-wide, MaxDrawsPerSelection grows with the worst predicted
// tries-per-accept so high-rejection joins cannot starve batch slices.
func Build(cfg Config, stats []JoinStats) Plan {
	cfg = cfg.withDefaults()
	p := Plan{
		Warmup:               WarmupRandomWalk,
		Joins:                make([]JoinPlan, len(stats)),
		MaxDrawsPerSelection: 256,
	}
	worstTries := 1.0
	for i, s := range stats {
		jp := JoinPlan{
			Method:         MethodEO,
			AliasThreshold: DefaultAliasThreshold,
			WalkBudget:     cfg.WalkBudget,
		}
		a := s.Acceptance(cfg.MinFeedbackDraws)
		if a < cfg.MinAccept {
			if s.Rows <= cfg.MaxSetupRows {
				jp.Method = MethodEW
			} else {
				jp.Method = MethodWJ
			}
		}
		if jp.Method != MethodEW && a > 0 && 1/a > worstTries {
			worstTries = 1 / a
		}
		wide := s.Walks > 0 && !s.Exact &&
			(math.IsInf(s.RelHalfWidth, 1) || s.RelHalfWidth > cfg.EscalateRel)
		if wide {
			if s.Cyclic {
				jp.WalkBudget = 2 * maxInt(s.Walks, cfg.WalkBudget)
				if jp.WalkBudget > cfg.MaxWalkBudget {
					jp.WalkBudget = cfg.MaxWalkBudget
				}
			} else {
				jp.Exact = true
			}
		}
		switch {
		case s.Share >= cfg.HeavyShare:
			jp.AliasThreshold = DefaultAliasThreshold / 2
		case s.Share < cfg.LightShare:
			jp.AliasThreshold = NeverAlias
		}
		p.Joins[i] = jp
	}
	// EW joins never reject on trees, but a slice still needs headroom
	// for the rejection-based joins it shares the union with.
	if n := int(16 * worstTries); n > p.MaxDrawsPerSelection {
		p.MaxDrawsPerSelection = n
	}
	if p.MaxDrawsPerSelection > 4096 {
		p.MaxDrawsPerSelection = 4096
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
