package tune

import (
	"math"
	"sync"
	"testing"
)

func TestBuildMethodFromPrior(t *testing.T) {
	stats := []JoinStats{
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 2000, Rows: 100}, // accept 0.5 -> EO
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 1e6, Rows: 100},  // accept 1e-3 -> EW
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 1e6, Rows: 1e9},  // accept 1e-3, setup too big -> WJ
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 0, Rows: 100},    // no bound -> EO
	}
	p := Build(Config{}, stats)
	want := []Method{MethodEO, MethodEW, MethodWJ, MethodEO}
	for i, w := range want {
		if p.Joins[i].Method != w {
			t.Errorf("join %d: method %v, want %v", i, p.Joins[i].Method, w)
		}
	}
}

func TestBuildMethodFromFeedback(t *testing.T) {
	// The prior says EO is fine (bound barely above size), but observed
	// rejection says 99% of attempts die: feedback wins, switch to EW.
	stats := []JoinStats{{
		Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 2000, Rows: 100,
		Draws: 10000, Rejected: 9900,
	}}
	p := Build(Config{}, stats)
	if p.Joins[0].Method != MethodEW {
		t.Errorf("method %v, want EW after 99%% observed rejection", p.Joins[0].Method)
	}
	if p.MaxDrawsPerSelection != 256 {
		t.Errorf("EW join must not inflate the slice cap: got %d", p.MaxDrawsPerSelection)
	}
}

func TestBuildEscalation(t *testing.T) {
	stats := []JoinStats{
		{Walks: 128, Size: 1000, RelHalfWidth: 0.5, OlkenBound: 1500},               // wide tree -> exact
		{Walks: 128, Size: 1000, RelHalfWidth: 0.5, OlkenBound: 1500, Cyclic: true}, // wide cyclic -> more walks
		{Walks: 128, Size: 1000, RelHalfWidth: 0.02, OlkenBound: 1500},              // converged -> neither
		{Walks: 128, Size: 1000, RelHalfWidth: 0.5, OlkenBound: 1500, Exact: true},  // already exact
	}
	p := Build(Config{WalkBudget: 100, MaxWalkBudget: 400}, stats)
	if !p.Joins[0].Exact {
		t.Error("wide tree join did not escalate to exact")
	}
	if p.Joins[1].Exact {
		t.Error("cyclic join escalated to exact (exponential)")
	}
	if got := p.Joins[1].WalkBudget; got != 256 {
		t.Errorf("cyclic wide join walk budget = %d, want 2x its 128 walks", got)
	}
	if p.Joins[2].Exact || p.Joins[2].WalkBudget != 100 {
		t.Errorf("converged join escalated: %+v", p.Joins[2])
	}
	if p.Joins[3].Exact {
		t.Error("already-exact join re-escalated")
	}
}

func TestBuildWalkBudgetCap(t *testing.T) {
	stats := []JoinStats{{Walks: 1000, Size: 10, RelHalfWidth: math.Inf(1), Cyclic: true}}
	p := Build(Config{MaxWalkBudget: 512}, stats)
	if p.Joins[0].WalkBudget != 512 {
		t.Errorf("walk budget %d, want capped at 512", p.Joins[0].WalkBudget)
	}
}

func TestBuildAliasThreshold(t *testing.T) {
	stats := []JoinStats{
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, Share: 0.9},
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, Share: 0.09},
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, Share: 0.001},
	}
	p := Build(Config{}, stats)
	if got := p.Joins[0].AliasThreshold; got >= DefaultAliasThreshold {
		t.Errorf("heavy join threshold %d, want aggressive (< %d)", got, DefaultAliasThreshold)
	}
	if got := p.Joins[1].AliasThreshold; got != DefaultAliasThreshold {
		t.Errorf("middling join threshold %d, want default", got)
	}
	if got := p.Joins[2].AliasThreshold; got != NeverAlias {
		t.Errorf("light join threshold %d, want NeverAlias", got)
	}
}

func TestBuildSliceCap(t *testing.T) {
	// Acceptance 1/16 exactly stays EO and needs 16 tries per accept on
	// average: the slice cap must grow to 16*16 = 256 -> stays at floor.
	p := Build(Config{}, []JoinStats{{Walks: 64, Size: 1, OlkenBound: 16, RelHalfWidth: 0.05}})
	if p.MaxDrawsPerSelection != 256 {
		t.Errorf("cap %d, want 256", p.MaxDrawsPerSelection)
	}
	// Acceptance 1/100 under a huge-rows join goes WJ; cap scales to
	// 16*100 = 1600.
	p = Build(Config{}, []JoinStats{{Walks: 64, Size: 1, OlkenBound: 100, Rows: 1e9, RelHalfWidth: 0.05}})
	if p.MaxDrawsPerSelection != 1600 {
		t.Errorf("cap %d, want 1600", p.MaxDrawsPerSelection)
	}
	// And never past 4096.
	p = Build(Config{}, []JoinStats{{Walks: 64, Size: 1, OlkenBound: 1e6, Rows: 1e9, RelHalfWidth: 0.05}})
	if p.MaxDrawsPerSelection != 4096 {
		t.Errorf("cap %d, want clamped to 4096", p.MaxDrawsPerSelection)
	}
}

func TestBuildDeterministic(t *testing.T) {
	stats := []JoinStats{
		{Walks: 64, Size: 1000, RelHalfWidth: 0.3, OlkenBound: 1e6, Rows: 100, Share: 0.5},
		{Walks: 64, Size: 10, RelHalfWidth: 0.01, OlkenBound: 20, Rows: 100, Share: 0.5, Cyclic: true},
	}
	a := Build(Config{}, stats)
	b := Build(Config{}, stats)
	if len(a.Joins) != len(b.Joins) || a.MaxDrawsPerSelection != b.MaxDrawsPerSelection {
		t.Fatal("plans differ across identical inputs")
	}
	for i := range a.Joins {
		if a.Joins[i] != b.Joins[i] {
			t.Fatalf("join %d plan differs: %+v vs %+v", i, a.Joins[i], b.Joins[i])
		}
	}
}

func TestControllerReplanAndFeedback(t *testing.T) {
	c := NewController(Config{MinFeedbackDraws: 100})
	if c.Plan() != nil {
		t.Fatal("plan before first replan")
	}
	stats := []JoinStats{{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 2000, Rows: 10}}
	p := c.Replan(append([]JoinStats(nil), stats...))
	if p.Joins[0].Method != MethodEO {
		t.Fatalf("initial method %v, want EO", p.Joins[0].Method)
	}
	if c.Snapshot().Replans != 1 {
		t.Fatalf("replans = %d, want 1", c.Snapshot().Replans)
	}

	// 99% observed rejection: the trigger fires, and the next replan
	// folds the feedback in and flips the join to EW.
	c.ObserveDraws(0, 10000, 9900)
	if !c.NeedsReplan() {
		t.Fatal("rejection trigger did not fire")
	}
	p = c.Replan(append([]JoinStats(nil), stats...))
	if p.Joins[0].Method != MethodEW {
		t.Fatalf("post-feedback method %v, want EW", p.Joins[0].Method)
	}
	if c.NeedsReplan() {
		t.Fatal("replan did not clear the pending flag")
	}

	// The feedback window reset: re-planning again with clean stats
	// returns to the prior-driven choice.
	p = c.Replan(append([]JoinStats(nil), stats...))
	if p.Joins[0].Method != MethodEO {
		t.Fatalf("post-reset method %v, want EO", p.Joins[0].Method)
	}
}

func TestControllerEscalationCounter(t *testing.T) {
	c := NewController(Config{})
	wide := []JoinStats{{Walks: 64, Size: 1000, RelHalfWidth: 0.5, OlkenBound: 1500}}
	c.Replan(append([]JoinStats(nil), wide...))
	if got := c.Snapshot().Escalations; got != 1 {
		t.Fatalf("escalations = %d, want 1", got)
	}
	// Same decision again is not a new escalation... but the plan was
	// rebuilt from wide stats, so Exact stays true and the counter must
	// not double-count relative to the previous plan.
	c.Replan(append([]JoinStats(nil), wide...))
	if got := c.Snapshot().Escalations; got != 1 {
		t.Fatalf("escalations after identical replan = %d, want 1", got)
	}
}

func TestControllerConcurrentObserve(t *testing.T) {
	c := NewController(Config{})
	c.Replan([]JoinStats{{Walks: 64, Size: 100, OlkenBound: 200, RelHalfWidth: 0.05}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.ObserveDraws(0, 2, 1)
				c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.NeedsReplan() {
		t.Fatal("50% rejection fired the 90% trigger")
	}
}

func TestSnapshotJoins(t *testing.T) {
	c := NewController(Config{})
	c.Replan([]JoinStats{
		{Walks: 64, Size: 1000, RelHalfWidth: 0.5, OlkenBound: 1e6, Rows: 10, Share: 0.9},
		{Walks: 64, Size: 1000, RelHalfWidth: 0.05, OlkenBound: 1200, Share: 0.1},
	})
	s := c.Snapshot()
	if len(s.Joins) != 2 {
		t.Fatalf("snapshot joins = %d, want 2", len(s.Joins))
	}
	if s.Joins[0].Method != "EW" || !s.Joins[0].Exact {
		t.Errorf("join 0 decision %+v, want EW + exact", s.Joins[0])
	}
	if s.Joins[1].Method != "EO" || s.Joins[1].Exact {
		t.Errorf("join 1 decision %+v, want plain EO", s.Joins[1])
	}
}
