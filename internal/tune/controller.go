package tune

import (
	"sync"
	"sync/atomic"
)

// Controller owns a session's tuning state: the current plan, the
// cumulative draw-loop feedback that informs the next one, and the
// counters the serving layer reports. It re-plans at warm-up
// boundaries only (Prepare and Refresh) — swapping a plan mid-stream
// would make draws depend on wall-clock draw order — but it watches
// rejection feedback continuously and raises a pending-replan flag
// when observed rates blow past the trigger, so callers know a
// Refresh would help.
//
// All methods are safe for concurrent use: draw loops feed counters
// from many runs at once while the serving layer snapshots.
type Controller struct {
	cfg Config

	mu   sync.Mutex
	plan atomic.Pointer[Plan]
	// Cumulative per-join feedback since the last re-plan.
	draws   []int64
	rejects []int64

	replans     atomic.Int64
	escalations atomic.Int64
	needReplan  atomic.Bool
}

// NewController builds a controller with the given planner bounds.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Config returns the controller's (defaulted) planner bounds.
func (c *Controller) Config() Config { return c.cfg }

// Plan returns the current plan, or nil before the first Replan.
func (c *Controller) Plan() *Plan { return c.plan.Load() }

// Replan folds accumulated draw feedback into the observed statistics,
// builds a fresh plan, installs it, and resets the feedback window.
// It returns the installed plan.
func (c *Controller) Replan(stats []JoinStats) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.draws) == len(stats) {
		for i := range stats {
			stats[i].Draws += c.draws[i]
			stats[i].Rejected += c.rejects[i]
		}
	}
	p := Build(c.cfg, stats)
	if prev := c.plan.Load(); prev != nil {
		for i := range p.Joins {
			if i < len(prev.Joins) && p.Joins[i].Exact && !prev.Joins[i].Exact {
				c.escalations.Add(1)
			}
		}
	} else {
		for _, jp := range p.Joins {
			if jp.Exact {
				c.escalations.Add(1)
			}
		}
	}
	c.draws = make([]int64, len(stats))
	c.rejects = make([]int64, len(stats))
	c.plan.Store(&p)
	c.replans.Add(1)
	c.needReplan.Store(false)
	return &p
}

// ObserveDraws feeds one run's draw-loop counters for join j back into
// the controller and raises the pending-replan flag when the observed
// rejection rate crosses the trigger.
func (c *Controller) ObserveDraws(j int, draws, rejects int64) {
	if draws <= 0 {
		return
	}
	c.mu.Lock()
	if j >= 0 && j < len(c.draws) {
		c.draws[j] += draws
		c.rejects[j] += rejects
		d, r := c.draws[j], c.rejects[j]
		if d >= c.cfg.MinFeedbackDraws && float64(r)/float64(d) > c.cfg.RejectTrigger {
			c.needReplan.Store(true)
		}
	}
	c.mu.Unlock()
}

// NeedsReplan reports whether rejection feedback crossed the trigger
// since the last re-plan: the next Refresh will re-tune.
func (c *Controller) NeedsReplan() bool { return c.needReplan.Load() }

// DropFeedback discards the accumulated draw feedback for join j.
// Refresh paths call it for joins whose base data mutated before
// re-planning: their rejection history describes relations that no
// longer exist, and folding it in would let a stale observed
// acceptance rate override the fresh size/bound prior — a join that
// was flat before a skew-inverting burst would keep its rejection
// subroutine long after the burst made rejections ruinous.
func (c *Controller) DropFeedback(j int) {
	c.mu.Lock()
	if j >= 0 && j < len(c.draws) {
		c.draws[j], c.rejects[j] = 0, 0
	}
	c.mu.Unlock()
}

// Snapshot is the serving layer's view of a controller: counters plus
// the current plan's per-join decisions.
type Snapshot struct {
	// Replans counts plans built (the initial plan included); sharded
	// sessions plan once per shard warm-up.
	Replans int64 `json:"replans"`
	// Escalations counts joins newly escalated to exact estimation.
	Escalations int64 `json:"escalations"`
	// PendingReplan reports the rejection trigger has fired since the
	// last plan.
	PendingReplan bool `json:"pending_replan"`
	// Joins holds the current plan's decisions, indexed like the union.
	Joins []JoinDecision `json:"joins"`
}

// JoinDecision is one join's slice of a Snapshot.
type JoinDecision struct {
	Method         string `json:"method"`
	Exact          bool   `json:"exact"`
	AliasThreshold int    `json:"alias_threshold"`
	WalkBudget     int    `json:"walk_budget"`
}

// Snapshot captures the controller's state for metrics.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Replans:       c.replans.Load(),
		Escalations:   c.escalations.Load(),
		PendingReplan: c.needReplan.Load(),
	}
	if p := c.plan.Load(); p != nil {
		s.Joins = make([]JoinDecision, len(p.Joins))
		for i, jp := range p.Joins {
			s.Joins[i] = JoinDecision{
				Method:         jp.Method.String(),
				Exact:          jp.Exact,
				AliasThreshold: jp.AliasThreshold,
				WalkBudget:     jp.WalkBudget,
			}
		}
	}
	return s
}
