package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation with a header row of attribute names and
// one record per tuple, values rendered as base-10 integers.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().Attrs()); err != nil {
		return err
	}
	rec := make([]string, r.Arity())
	n := r.Len()
	for i := 0; i < n; i++ {
		if !r.Live(i) {
			continue
		}
		row := r.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatInt(int64(v), 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV: the first record is the
// schema, subsequent records are tuples of integers.
func ReadCSV(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	r := New(name, NewSchema(header...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		t := make(Tuple, len(rec))
		for j, f := range rec {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d field %d: %w", line, j+1, err)
			}
			t[j] = Value(v)
		}
		r.Append(t)
	}
	return r, nil
}
