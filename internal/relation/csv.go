package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation with a header row of attribute names and
// one record per tuple, values rendered as base-10 integers.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().Attrs()); err != nil {
		return err
	}
	rec := make([]string, r.Arity())
	cols := r.Cols()
	n := r.Len()
	for i := 0; i < n; i++ {
		if !r.Live(i) {
			continue
		}
		for j, col := range cols {
			rec[j] = strconv.FormatInt(int64(col[i]), 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV: the first record is the
// schema, subsequent records are tuples of integers.
func ReadCSV(rd io.Reader, name string) (*Relation, error) {
	return ReadCSVDict(rd, name, nil)
}

// ReadCSVDict is ReadCSV with string-column support: a column holding
// any non-integer field is dictionary-encoded — every one of its cells
// is interned through d in a single EncodeAll round, so bulk import
// pays one lock round per string column rather than per cell. A nil
// dictionary restores ReadCSV's strict integer-only behavior.
func ReadCSVDict(rd io.Reader, name string, d *Dictionary) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	var recs [][]string
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		recs = append(recs, rec)
	}
	rows := make([]Tuple, len(recs))
	flat := make([]Value, len(recs)*len(header))
	for i := range rows {
		rows[i] = Tuple(flat[i*len(header) : (i+1)*len(header) : (i+1)*len(header)])
	}
	for j := range header {
		strCol := false
		for i, rec := range recs {
			v, err := strconv.ParseInt(rec[j], 10, 64)
			if err != nil {
				if d == nil {
					return nil, fmt.Errorf("relation: CSV line %d field %d: %w", i+2, j+1, err)
				}
				strCol = true
				break
			}
			rows[i][j] = Value(v)
		}
		if strCol {
			cells := make([]string, len(recs))
			for i, rec := range recs {
				cells[i] = rec[j]
			}
			for i, v := range d.EncodeAll(cells) {
				rows[i][j] = v
			}
		}
	}
	r := New(name, NewSchema(header...))
	r.AppendRows(rows)
	return r, nil
}
