// Package relation implements the in-memory relational substrate used by
// the union-sampling framework: typed tuples, schemas, relations with
// per-attribute hash indexes, selection predicates, vertical and
// horizontal splits, and CSV import/export.
//
// Values are int64 throughout the engine. String-valued columns are
// interned through a Dictionary at the edges, which keeps the sampling
// hot path allocation-free and every attribute value usable as a map key.
package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Value is the single scalar type stored by the engine. Integer columns
// map directly; string columns are dictionary-encoded (see Dictionary).
type Value int64

// Null is the distinguished missing value. Join attributes never take
// Null; payload attributes may.
const Null Value = -1 << 62

// Dictionary interns strings to Values and back. It is safe for
// concurrent use. The zero value is not ready; use NewDictionary.
type Dictionary struct {
	mu      sync.RWMutex
	byStr   map[string]Value
	byValue []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byStr: make(map[string]Value)}
}

// Encode returns the Value for s, interning it if new.
func (d *Dictionary) Encode(s string) Value {
	d.mu.RLock()
	v, ok := d.byStr[s]
	d.mu.RUnlock()
	if ok {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.byStr[s]; ok {
		return v
	}
	v = Value(len(d.byValue))
	d.byStr[s] = v
	d.byValue = append(d.byValue, s)
	return v
}

// EncodeAll interns every string in ss and returns their Values in
// order. Known strings resolve under one read lock; only the batch's
// novel strings pay a write-lock round, so bulk ingest (CSV import,
// column loads) locks twice per column instead of twice per cell.
func (d *Dictionary) EncodeAll(ss []string) []Value {
	out := make([]Value, len(ss))
	miss := 0
	d.mu.RLock()
	for i, s := range ss {
		if v, ok := d.byStr[s]; ok {
			out[i] = v
		} else {
			out[i] = Null
			miss++
		}
	}
	d.mu.RUnlock()
	if miss == 0 {
		return out
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, s := range ss {
		if out[i] != Null {
			continue
		}
		v, ok := d.byStr[s]
		if !ok {
			v = Value(len(d.byValue))
			d.byStr[s] = v
			d.byValue = append(d.byValue, s)
		}
		out[i] = v
	}
	return out
}

// Decode returns the string for v. The second result reports whether v
// was produced by this dictionary.
func (d *Dictionary) Decode(v Value) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v < 0 || int(v) >= len(d.byValue) {
		return "", false
	}
	return d.byValue[v], true
}

// Len reports the number of interned strings.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byValue)
}

// Strings returns the interned strings in Value order.
func (d *Dictionary) Strings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.byValue))
	copy(out, d.byValue)
	return out
}

// Tuple is one row: attribute values in schema order.
type Tuple []Value

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether t and u have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Less orders tuples lexicographically; it is used for deterministic
// output ordering in tools and tests.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

func (t Tuple) String() string {
	return fmt.Sprint([]Value(t))
}

// SortTuples sorts ts in place lexicographically.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}
