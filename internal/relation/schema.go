package relation

import (
	"fmt"
	"strings"
)

// Schema is an ordered list of attribute names. Names are unique within
// a schema. Join attributes across relations are standardized to share
// names, following the paper's convention (§2).
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. It panics on duplicate
// or empty names: schemas are programmer-constructed, so a malformed one
// is a bug, not an input error.
func NewSchema(attrs ...string) *Schema {
	s := &Schema{
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			panic("relation: empty attribute name")
		}
		if _, dup := s.index[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q", a))
		}
		s.index[a] = i
	}
	return s
}

// Len reports the number of attributes (the arity).
func (s *Schema) Len() int { return len(s.attrs) }

// Attrs returns the attribute names in order.
func (s *Schema) Attrs() []string {
	return append([]string(nil), s.attrs...)
}

// Attr returns the i-th attribute name.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of attribute a, or -1 if absent.
func (s *Schema) Index(a string) int {
	if i, ok := s.index[a]; ok {
		return i
	}
	return -1
}

// Has reports whether a is an attribute of s.
func (s *Schema) Has(a string) bool {
	_, ok := s.index[a]
	return ok
}

// Equal reports whether s and o have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, a := range s.attrs {
		if o.attrs[i] != a {
			return false
		}
	}
	return true
}

// Project returns the positions of the given attributes in s. It returns
// an error if any attribute is missing.
func (s *Schema) Project(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := s.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relation: attribute %q not in schema %v", a, s.attrs)
		}
		idx[i] = j
	}
	return idx, nil
}

func (s *Schema) String() string {
	return "(" + strings.Join(s.attrs, ", ") + ")"
}
