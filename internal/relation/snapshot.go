package relation

import "fmt"

// SnapshotData is one relation snapshot lifted out of the storage
// layer for serialization: the column vectors, tombstone bitset, row
// counts, and the mutation version the contents reflect. The slices
// alias live storage (columns are immutable up to Rows; the dead
// bitset is copy-on-write), so a SnapshotData is safe to read
// concurrently with further mutations — exactly what lets a checkpoint
// serialize without stalling ingest. Treat every slice as read-only.
type SnapshotData struct {
	Cols    [][]Value
	Rows    int
	Live    int
	Dead    []uint64
	Version uint64
}

// CaptureSnapshot returns the published snapshot paired atomically
// with the version it reflects.
func (r *Relation) CaptureSnapshot() SnapshotData {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	return SnapshotData{
		Cols:    s.cols,
		Rows:    s.rows,
		Live:    s.live,
		Dead:    s.dead,
		Version: r.version.Load(),
	}
}

// RestoreSnapshot replaces the relation's contents and version with a
// previously captured (typically checkpoint-deserialized) snapshot,
// dropping cached indexes and the mutation log so every derived
// structure rebuilds from the restored state. It is the recovery
// entry point: restore the newest checkpoint, then replay the WAL tail
// past sd.Version through the ordinary mutation path.
func (r *Relation) RestoreSnapshot(sd SnapshotData) error {
	if len(sd.Cols) != r.schema.Len() {
		return fmt.Errorf("relation %s: snapshot arity %d, want %d", r.name, len(sd.Cols), r.schema.Len())
	}
	live := 0
	for a, c := range sd.Cols {
		if len(c) != sd.Rows {
			return fmt.Errorf("relation %s: snapshot column %d has %d rows, want %d", r.name, a, len(c), sd.Rows)
		}
	}
	s := &snapshot{cols: sd.Cols, rows: sd.Rows, dead: sd.Dead, live: sd.Live}
	for i := 0; i < sd.Rows; i++ {
		if s.isLive(i) {
			live++
		}
	}
	if live != sd.Live {
		return fmt.Errorf("relation %s: snapshot live count %d disagrees with bitset (%d)", r.name, sd.Live, live)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap.Store(s)
	r.version.Store(sd.Version)
	r.indexes.Store(nil)
	r.log = nil
	r.logOn = false
	return nil
}
