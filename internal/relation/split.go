package relation

import "fmt"

// This file implements the relation-splitting utilities used by UQ3 and
// by the splitting method of §5.2: vertical splits (projections that
// share a linking attribute) and horizontal splits (row partitions).

// VerticalSplit cuts r into two relations: left keeps leftAttrs and
// right keeps rightAttrs. The two attribute lists must cover the schema
// and share at least one attribute (the rejoining key), so that
// left ⋈ right losslessly reconstructs r when the shared attributes form
// a key. Duplicate rows in each half are eliminated.
func VerticalSplit(r *Relation, leftName string, leftAttrs []string, rightName string, rightAttrs []string) (*Relation, *Relation, error) {
	shared := false
	seen := make(map[string]bool, len(leftAttrs)+len(rightAttrs))
	for _, a := range leftAttrs {
		seen[a] = true
	}
	for _, a := range rightAttrs {
		if seen[a] {
			shared = true
		}
		seen[a] = true
	}
	if !shared {
		return nil, nil, fmt.Errorf("relation: vertical split of %s shares no attribute", r.Name())
	}
	for _, a := range r.Schema().Attrs() {
		if !seen[a] {
			return nil, nil, fmt.Errorf("relation: vertical split of %s drops attribute %q", r.Name(), a)
		}
	}
	left, err := r.DistinctProject(leftName, leftAttrs)
	if err != nil {
		return nil, nil, err
	}
	right, err := r.DistinctProject(rightName, rightAttrs)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// HorizontalSplit partitions r's rows by predicate: the first result
// holds rows satisfying pred, the second the rest.
func HorizontalSplit(r *Relation, trueName, falseName string, pred Predicate) (*Relation, *Relation) {
	yes := New(trueName, r.Schema())
	no := New(falseName, r.Schema())
	yesIDs := r.ScanWhere(pred, nil)
	// The complement of the scan's survivors among live rows, by tandem
	// walk (ScanWhere emits ascending ids).
	var noIDs []int
	j, n := 0, r.Len()
	for i := 0; i < n; i++ {
		if !r.Live(i) {
			continue
		}
		if j < len(yesIDs) && yesIDs[j] == i {
			j++
			continue
		}
		noIDs = append(noIDs, i)
	}
	yes.AppendRowIDs(r, yesIDs)
	no.AppendRowIDs(r, noIDs)
	return yes, no
}

// SplitPair is a two-attribute sub-relation produced by the splitting
// method (§5.2). It records the original relation's size, which the
// estimation steps need ("split relations keep a record of their
// original sizes").
type SplitPair struct {
	Rel      *Relation // two-attribute sub-relation, duplicates removed
	Original *Relation // relation it was split from
	FakeNext bool      // true when the join to the next pair in the
	// template is a "fake join": both pairs were split from the same
	// original relation, so the join reconstructs it rather than
	// combining distinct relations (degree factor 1 in Theorem 4).
}

// SplitByTemplate decomposes the relations of a join into two-attribute
// sub-relations following template, an ordering of output attributes:
// pair i holds (template[i], template[i+1]). Each pair is taken from a
// relation in rels containing both attributes when one exists (a real
// split); otherwise the pair must be derivable by pre-joining, which the
// caller handles (histest does) — here we return an error so the caller
// can fall back.
func SplitByTemplate(rels []*Relation, template []string) ([]SplitPair, error) {
	if len(template) < 2 {
		return nil, fmt.Errorf("relation: template needs >= 2 attributes, got %d", len(template))
	}
	pairs := make([]SplitPair, 0, len(template)-1)
	for i := 0; i+1 < len(template); i++ {
		a, b := template[i], template[i+1]
		src := findRelationWith(rels, a, b)
		if src == nil {
			return nil, fmt.Errorf("relation: no relation contains both %q and %q", a, b)
		}
		sub, err := src.DistinctProject(fmt.Sprintf("%s[%s,%s]", src.Name(), a, b), []string{a, b})
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, SplitPair{Rel: sub, Original: src})
	}
	// Mark fake joins: consecutive pairs split from the same original.
	for i := 0; i+1 < len(pairs); i++ {
		pairs[i].FakeNext = pairs[i].Original == pairs[i+1].Original
	}
	return pairs, nil
}

func findRelationWith(rels []*Relation, a, b string) *Relation {
	for _, r := range rels {
		if r.Schema().Has(a) && r.Schema().Has(b) {
			return r
		}
	}
	return nil
}
