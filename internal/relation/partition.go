package relation

import (
	"fmt"
	"sync"
)

// This file implements hash partitioning of a live relation for the
// shard-parallel sampling engine: a Partition splits one relation into
// S fragment relations by hash of a single attribute, and keeps the
// fragments synchronized with the source by replaying the source's
// mutation log. Fragments are ordinary live Relations, so everything
// built over them — CSR indexes, membership tables, prepared samplers —
// inherits the immutable-publish discipline unchanged.

// shardHash is a SplitMix64-style finalizer: every input bit avalanches
// through the output, so consecutive key values spread evenly over
// shards instead of striping.
func shardHash(v Value) uint64 {
	z := uint64(v) + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// ShardOf maps an attribute value to its shard in [0, shards).
func ShardOf(v Value, shards int) int {
	return int(shardHash(v) % uint64(shards))
}

// ShardPredicate keeps rows whose attribute hashes to the given shard —
// the σ_{hash(attr) mod S = s} selection that carves one shard out of a
// relation (or a materialized residual) that is not worth maintaining
// incrementally.
type ShardPredicate struct {
	Attr   string
	Shard  int
	Shards int
}

// Eval implements Predicate.
func (p ShardPredicate) Eval(t Tuple, s *Schema) bool {
	a := s.Index(p.Attr)
	if a < 0 {
		return false
	}
	return ShardOf(t[a], p.Shards) == p.Shard
}

// EvalColumn implements ColumnPredicate: one hash per candidate over
// the single column.
func (p ShardPredicate) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	a := s.Index(p.Attr)
	if a < 0 {
		return out
	}
	col := cols[a]
	for _, i := range sel {
		if ShardOf(col[i], p.Shards) == p.Shard {
			out = append(out, i)
		}
	}
	return out
}

var _ ColumnPredicate = ShardPredicate{}

func (p ShardPredicate) String() string {
	return fmt.Sprintf("hash(%s) mod %d = %d", p.Attr, p.Shards, p.Shard)
}

// Partition splits a live relation into shard fragments by hash of one
// attribute and keeps them synchronized with the source. The fragments
// partition the source's live rows exactly: every live row appears in
// exactly one fragment, determined by ShardOf on its partition
// attribute. Sync replays the source's mutation log to carry appends
// and deletes into the right fragments incrementally.
//
// Concurrency: fragments are live Relations, so draws against them may
// run concurrently with Sync (they observe the usual live-relation
// visibility contract). Sync itself must not run concurrently with
// another Sync on the same Partition; the session's refresh lock
// provides that.
type Partition struct {
	src     *Relation
	attrPos int
	shards  int
	frags   []*Relation

	mu      sync.Mutex
	version uint64 // source version the fragments reflect
	// shardOf/localOf map a physical source row to its fragment and its
	// physical row there; -1 = unmapped (dead at build time).
	shardOf []int32
	localOf []int32
}

// NewPartition builds the shard fragments of src by hash of attr,
// capturing the source's live rows atomically (and enabling its
// mutation log, so Sync can catch up later without missing or
// double-applying a mutation).
func NewPartition(src *Relation, attr string, shards int) (*Partition, error) {
	if shards < 1 {
		return nil, fmt.Errorf("relation %s: partition needs at least 1 shard, got %d", src.Name(), shards)
	}
	pos := src.Schema().Index(attr)
	if pos < 0 {
		return nil, fmt.Errorf("relation %s: no partition attribute %q", src.Name(), attr)
	}
	p := &Partition{src: src, attrPos: pos, shards: shards}
	ids, phys, version := src.LiveRows()
	p.version = version
	p.shardOf = make([]int32, phys)
	p.localOf = make([]int32, phys)
	for i := range p.shardOf {
		p.shardOf[i] = -1
		p.localOf[i] = -1
	}
	col := src.Cols()[pos]
	buckets := make([][]int, shards)
	for _, id := range ids {
		s := ShardOf(col[id], shards)
		p.shardOf[id] = int32(s)
		p.localOf[id] = int32(len(buckets[s]))
		buckets[s] = append(buckets[s], id)
	}
	p.frags = make([]*Relation, shards)
	for s := range p.frags {
		p.frags[s] = New(fmt.Sprintf("%s#%d/%d", src.Name(), s, shards), src.Schema())
		p.frags[s].AppendRowIDs(src, buckets[s])
	}
	return p, nil
}

// Source returns the partitioned relation.
func (p *Partition) Source() *Relation { return p.src }

// Attr returns the partition attribute's name.
func (p *Partition) Attr() string { return p.src.Schema().Attr(p.attrPos) }

// Shards returns the shard count.
func (p *Partition) Shards() int { return p.shards }

// Frag returns the fragment holding shard s's rows.
func (p *Partition) Frag(s int) *Relation { return p.frags[s] }

// Stale reports whether the source mutated since the fragments were
// built or last Synced.
func (p *Partition) Stale() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.src.Version() != p.version
}

// Sync replays the source's mutation log tail into the fragments:
// appends route to the shard their partition value hashes to, deletes
// tombstone the mapped fragment row. It returns which fragments
// changed. ok is false when the source's log tail is no longer retained
// — the caller must rebuild the partition (and everything over it) from
// scratch; the fragments are left unchanged in that case.
func (p *Partition) Sync() (dirty []bool, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dirty = make([]bool, p.shards)
	tail, upTo, ok := p.src.MutationsSince(p.version)
	if !ok {
		return dirty, false
	}
	if len(tail) == 0 {
		p.version = upTo
		return dirty, true
	}
	// First pass: assign fragment slots for appends (so a delete later
	// in the tail finds its row mapped), bucketing the row ids per
	// shard. The shard hash reads the partition attribute's column
	// directly — no row gather.
	col := p.src.Cols()[p.attrPos]
	appends := make([][]int, p.shards)
	fragLen := make([]int, p.shards)
	for s := range fragLen {
		fragLen[s] = p.frags[s].Len()
	}
	type del struct{ shard, local int32 }
	var deletes []del
	for _, m := range tail {
		switch m.Kind {
		case MutAppend:
			for int(m.Row) >= len(p.shardOf) {
				p.shardOf = append(p.shardOf, -1)
				p.localOf = append(p.localOf, -1)
			}
			s := ShardOf(col[m.Row], p.shards)
			p.shardOf[m.Row] = int32(s)
			p.localOf[m.Row] = int32(fragLen[s] + len(appends[s]))
			appends[s] = append(appends[s], m.Row)
			dirty[s] = true
		case MutDelete:
			if m.Row < len(p.shardOf) && p.shardOf[m.Row] >= 0 {
				deletes = append(deletes, del{p.shardOf[m.Row], p.localOf[m.Row]})
				dirty[p.shardOf[m.Row]] = true
			}
		}
	}
	// Apply appends first: every delete's target row exists afterwards
	// (row ids are never reused, so an append always precedes its
	// delete in the tail).
	for s, ids := range appends {
		p.frags[s].AppendRowIDs(p.src, ids)
	}
	for _, d := range deletes {
		p.frags[d.shard].Delete(int(d.local))
	}
	p.version = upTo
	return dirty, true
}
