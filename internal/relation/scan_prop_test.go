package relation

import (
	"math/rand"
	"testing"
)

// foreignPred hides a predicate's concrete type, forcing the scan down
// the per-row gather fallback instead of the columnar fast path.
type foreignPred struct{ p Predicate }

func (f foreignPred) Eval(t Tuple, s *Schema) bool { return f.p.Eval(t, s) }
func (f foreignPred) String() string               { return "foreign(" + f.p.String() + ")" }

// randValue draws from a small domain plus Null, so equality predicates
// hit often and Null payloads flow through every comparison path.
func randValue(rng *rand.Rand) Value {
	if rng.Intn(8) == 0 {
		return Null
	}
	return Value(rng.Intn(7) - 3)
}

// randPredicate builds a random predicate tree over the given
// attributes (plus, occasionally, an attribute the schema lacks).
// Foreign wrappers appear at any level, so columnar and fallback
// evaluation mix within one tree.
func randPredicate(rng *rand.Rand, attrs []string, depth int) Predicate {
	attr := func() string {
		if rng.Intn(10) == 0 {
			return "missing"
		}
		return attrs[rng.Intn(len(attrs))]
	}
	var p Predicate
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			p = Cmp{Attr: attr(), Op: CmpOp(rng.Intn(6)), Val: randValue(rng)}
		case 1:
			vals := make([]Value, rng.Intn(4))
			for i := range vals {
				vals[i] = randValue(rng)
			}
			p = NewIn(attr(), vals...)
		default:
			p = True{}
		}
	} else {
		n := rng.Intn(3) + 1
		sub := make([]Predicate, n)
		for i := range sub {
			sub[i] = randPredicate(rng, attrs, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			p = And(sub)
		case 1:
			p = Or(sub)
		default:
			p = Not{P: sub[0]}
		}
	}
	if rng.Intn(5) == 0 {
		p = foreignPred{p}
	}
	return p
}

// TestScanColumnarProperty pins the vectorized predicate scan against a
// brute-force row-major reference over random schemas, rows (Null
// payloads included), deletions, and predicate trees. Any divergence
// between ScanWhere and evaluate-every-live-row is a bug in the
// selection-vector composition.
func TestScanColumnarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		arity := rng.Intn(4) + 1
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		r := New("prop", NewSchema(attrs...))
		n := rng.Intn(200)
		rows := make([]Tuple, n)
		for i := range rows {
			row := make(Tuple, arity)
			for a := range row {
				row[a] = randValue(rng)
			}
			rows[i] = row
		}
		r.AppendRows(rows)
		for i := 0; i < n/5; i++ {
			r.Delete(rng.Intn(n))
		}
		for pi := 0; pi < 5; pi++ {
			pred := randPredicate(rng, attrs, rng.Intn(3))
			var want []int
			for i := 0; i < n; i++ {
				if r.Live(i) && pred.Eval(r.Row(i), r.Schema()) {
					want = append(want, i)
				}
			}
			got := r.ScanWhere(pred, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d pred %s: %d rows, want %d", trial, pred, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d pred %s: row %d = %d, want %d", trial, pred, k, got[k], want[k])
				}
			}
		}
	}
}

// tailCapture is one published snapshot pinned mid-stream: the column
// slices as handed out by Cols plus a deep copy of what they held. Later
// appends extend the columns' backing arrays; the capture must never see
// that.
type tailCapture struct {
	cols   [][]Value
	rows   int
	expect [][]Value
}

func capture(r *Relation) tailCapture {
	cols := r.Cols()
	c := tailCapture{cols: cols, rows: r.Len(), expect: make([][]Value, len(cols))}
	for a, col := range cols {
		c.expect[a] = append([]Value(nil), col[:c.rows]...)
	}
	return c
}

func (c tailCapture) check(t *testing.T) {
	t.Helper()
	for a, col := range c.cols {
		if len(col) != c.rows {
			t.Fatalf("captured column %d grew: len %d, want %d", a, len(col), c.rows)
		}
		for i, v := range c.expect[a] {
			if col[i] != v {
				t.Fatalf("captured column %d row %d mutated: %d, want %d", a, i, col[i], v)
			}
		}
	}
}

// driveColumnTail feeds an op stream of single appends, batch appends
// (big enough to force mutation-log compaction), and deletes through a
// relation with a live index, pinning published snapshots along the way.
// It then verifies (1) every pinned snapshot is still byte-identical —
// tail appends must never reach a published prefix — and (2) the final
// contents, scans, and degrees match a relation rebuilt from scratch.
func driveColumnTail(t *testing.T, ops []byte, arity int) {
	t.Helper()
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	r := New("tail", NewSchema(attrs...))
	r.Index(0) // flips the mutation log on: every op below is logged
	mkRow := func(seed byte) Tuple {
		row := make(Tuple, arity)
		for a := range row {
			row[a] = Value(int(seed+byte(a)*13)%9 - 3)
		}
		return row
	}
	var mirror []Tuple
	var dead []bool
	var pins []tailCapture
	for pc, op := range ops {
		switch op % 4 {
		case 0:
			row := mkRow(op)
			r.Append(row)
			mirror = append(mirror, row)
			dead = append(dead, false)
		case 1: // batch: drives log growth past its bound -> compaction
			n := int(op)%120 + 1
			batch := make([]Tuple, n)
			for i := range batch {
				batch[i] = mkRow(op + byte(i))
			}
			r.AppendRows(batch)
			mirror = append(mirror, batch...)
			dead = append(dead, make([]bool, n)...)
		case 2:
			if len(mirror) > 0 {
				i := (int(op) + pc) % len(mirror)
				if r.Delete(i) != !dead[i] {
					t.Fatalf("op %d: Delete(%d) disagreed with mirror", pc, i)
				}
				dead[i] = true
			}
		case 3:
			pins = append(pins, capture(r))
			r.Index(int(op) % arity) // catch-up over the logged tail
		}
	}
	for _, pin := range pins {
		pin.check(t)
	}

	// Rebuild from scratch and compare live contents in physical order.
	var liveRows []Tuple
	for i, row := range mirror {
		if !dead[i] {
			liveRows = append(liveRows, row)
		}
	}
	fresh := New("rebuilt", r.Schema())
	fresh.AppendRows(liveRows)
	got := r.Tuples()
	if len(got) != len(liveRows) {
		t.Fatalf("%d live tuples, rebuilt has %d", len(got), len(liveRows))
	}
	for i := range got {
		if !got[i].Equal(liveRows[i]) {
			t.Fatalf("live tuple %d = %v, rebuilt %v", i, got[i], liveRows[i])
		}
	}
	pred := Cmp{Attr: attrs[0], Op: GE, Val: 0}
	a, b := r.ScanWhere(pred, nil), fresh.ScanWhere(pred, nil)
	if len(a) != len(b) {
		t.Fatalf("scan: %d rows, rebuilt %d", len(a), len(b))
	}
	for k := range a {
		if !r.Row(a[k]).Equal(fresh.Row(b[k])) {
			t.Fatalf("scan row %d: %v, rebuilt %v", k, r.Row(a[k]), fresh.Row(b[k]))
		}
	}
	for at := 0; at < arity; at++ {
		for v := Value(-4); v <= 6; v++ {
			if gd, wd := r.Degree(at, v), fresh.Degree(at, v); gd != wd {
				t.Fatalf("attr %d value %d: degree %d, rebuilt %d", at, v, gd, wd)
			}
		}
	}
}

// FuzzColumnTail feeds arbitrary op streams through the column-tail
// driver: a pinned snapshot observing a later append, or any divergence
// from the rebuilt-from-scratch reference, is a finding.
func FuzzColumnTail(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xFF, 0x81, 3, 0}, uint8(2))
	f.Add([]byte{1, 1, 3, 2, 3, 1, 2, 3, 0, 3}, uint8(3))
	f.Add([]byte{5, 125, 3, 250, 3, 6, 2, 3}, uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, arity uint8) {
		a := int(arity)%4 + 1
		if len(ops) > 300 {
			ops = ops[:300]
		}
		driveColumnTail(t, ops, a)
	})
}
