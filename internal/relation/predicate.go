package relation

import "fmt"

// Predicate is a selection condition over a tuple. Predicates support
// the paper's selection-predicate pushdown (§8.3): relations are filtered
// during preprocessing and sampling proceeds over the filtered data.
type Predicate interface {
	// Eval reports whether the tuple satisfies the predicate under the
	// given schema.
	Eval(t Tuple, s *Schema) bool
	// String renders the predicate for logs and EXPLAIN-style output.
	String() string
}

// CmpOp is a comparison operator for attribute predicates.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota // equal
	NE              // not equal
	LT              // less than
	LE              // less or equal
	GT              // greater than
	GE              // greater or equal
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// apply evaluates `a op b`.
func (op CmpOp) apply(a, b Value) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// Cmp compares an attribute against a constant.
type Cmp struct {
	Attr string
	Op   CmpOp
	Val  Value
}

// Eval implements Predicate. A tuple whose schema lacks the attribute
// fails the predicate.
func (c Cmp) Eval(t Tuple, s *Schema) bool {
	i := s.Index(c.Attr)
	if i < 0 {
		return false
	}
	return c.Op.apply(t[i], c.Val)
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %d", c.Attr, c.Op, c.Val)
}

// And is the conjunction of predicates; an empty And is true.
type And []Predicate

// Eval implements Predicate.
func (a And) Eval(t Tuple, s *Schema) bool {
	for _, p := range a {
		if !p.Eval(t, s) {
			return false
		}
	}
	return true
}

func (a And) String() string {
	if len(a) == 0 {
		return "true"
	}
	out := ""
	for i, p := range a {
		if i > 0 {
			out += " AND "
		}
		out += p.String()
	}
	return out
}

// Or is the disjunction of predicates; an empty Or is false.
type Or []Predicate

// Eval implements Predicate.
func (o Or) Eval(t Tuple, s *Schema) bool {
	for _, p := range o {
		if p.Eval(t, s) {
			return true
		}
	}
	return false
}

func (o Or) String() string {
	if len(o) == 0 {
		return "false"
	}
	out := ""
	for i, p := range o {
		if i > 0 {
			out += " OR "
		}
		out += p.String()
	}
	return out
}

// Not negates a predicate.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (n Not) Eval(t Tuple, s *Schema) bool { return !n.P.Eval(t, s) }

func (n Not) String() string { return "NOT (" + n.P.String() + ")" }

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(Tuple, *Schema) bool { return true }

func (True) String() string { return "true" }

// In tests membership of an attribute in a value set.
type In struct {
	Attr string
	Vals map[Value]struct{}
}

// NewIn builds an In predicate over the given values.
func NewIn(attr string, vals ...Value) In {
	m := make(map[Value]struct{}, len(vals))
	for _, v := range vals {
		m[v] = struct{}{}
	}
	return In{Attr: attr, Vals: m}
}

// Eval implements Predicate.
func (in In) Eval(t Tuple, s *Schema) bool {
	i := s.Index(in.Attr)
	if i < 0 {
		return false
	}
	_, ok := in.Vals[t[i]]
	return ok
}

func (in In) String() string {
	return fmt.Sprintf("%s IN (%d values)", in.Attr, len(in.Vals))
}
