package relation

// 64-bit tuple keys. The sampling hot path used to identify tuple
// values by string keys (TupleKey): every record lookup, membership
// probe, and distinct-projection test allocated an 8·arity-byte string.
// KeySet and KeyCounter replace those maps with open-addressed tables
// keyed by a 64-bit mix of the tuple's values. The fingerprint is not
// trusted: a slot matches only after exact tuple-equality verification
// against the table's value arena, so collisions cost a probe, never
// correctness.
//
// Both tables support projected access: Lookup/Insert with a proj slice
// read t[proj[i]] instead of t[i], hashing and comparing the projection
// without materializing it. That is what makes Join.Contains and the
// per-run records allocation-free — the projection never exists as a
// tuple, only as an access path.
//
// Tables have a fixed arity. They are not safe for concurrent mutation;
// a fully built table is safe for concurrent reads.

const (
	// keyMul1/keyMul2 are the SplitMix64 finalizer multipliers; keySeed0
	// is the default hash seed.
	keyMul1  = 0xBF58476D1CE4E5B9
	keyMul2  = 0x94D049BB133111EB
	keySeed0 = 0x9E3779B97F4A7C15
)

// KeyHasher mixes tuple values into a 64-bit fingerprint. The zero
// value uses the default seed; tests use explicit seeds (and the
// tables' test-only hash degradation) to force collisions.
type KeyHasher struct {
	seed uint64
}

// NewKeyHasher returns a hasher with an explicit seed. Two hashers with
// different seeds produce unrelated fingerprints for the same tuple.
func NewKeyHasher(seed uint64) KeyHasher { return KeyHasher{seed: seed} }

// mix is the SplitMix64 finalizer: every input bit avalanches through
// the output.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= keyMul1
	z ^= z >> 27
	z *= keyMul2
	z ^= z >> 31
	return z
}

// Hash fingerprints t.
func (h KeyHasher) Hash(t Tuple) uint64 {
	acc := h.seed + keySeed0
	for _, v := range t {
		acc = mix(acc + uint64(v))
	}
	return acc
}

// hashProj fingerprints the projection t[proj[0]], t[proj[1]], ...
// (proj nil = identity). It must agree with Hash on the materialized
// projection.
func (h KeyHasher) hashProj(t Tuple, proj []int) uint64 {
	if proj == nil {
		return h.Hash(t)
	}
	acc := h.seed + keySeed0
	for _, p := range proj {
		acc = mix(acc + uint64(t[p]))
	}
	return acc
}

// hashRow fingerprints row i of the column vectors through proj (nil =
// identity): the value sequence cols[proj[0]][i], cols[proj[1]][i], ...
// It must agree with Hash on the materialized row — the key is a pure
// function of the value sequence, not of how it is accessed.
func (h KeyHasher) hashRow(cols [][]Value, i int, proj []int) uint64 {
	acc := h.seed + keySeed0
	if proj == nil {
		for _, c := range cols {
			acc = mix(acc + uint64(c[i]))
		}
		return acc
	}
	for _, p := range proj {
		acc = mix(acc + uint64(cols[p][i]))
	}
	return acc
}

// keyTable is the shared open-addressed core: a slot array indexing a
// dense entry list (hash + tuple values in a flat arena). Entries are
// never removed; handles (entry indexes) are stable and dense in
// insertion order.
type keyTable struct {
	hasher KeyHasher
	arity  int
	slots  []int32  // entry index + 1; 0 = empty
	hashes []uint64 // per entry
	vals   []Value  // arena: entry e at vals[e*arity : (e+1)*arity]

	// degradeMask, when non-zero, is ANDed onto every fingerprint.
	// Test-only: it collapses the hash space to force collisions so the
	// exact-equality verification path is exercised.
	degradeMask uint64
}

const minSlots = 16

func newKeyTable(arity, sizeHint int) keyTable {
	n := minSlots
	for n < sizeHint*2 {
		n <<= 1
	}
	return keyTable{
		arity: arity,
		slots: make([]int32, n),
	}
}

func (kt *keyTable) hash(t Tuple, proj []int) uint64 {
	h := kt.hasher.hashProj(t, proj)
	if kt.degradeMask != 0 {
		h &= kt.degradeMask
	}
	return h
}

// equalProj reports whether entry e's key equals the projection of t.
func (kt *keyTable) equalProj(e int, t Tuple, proj []int) bool {
	key := kt.vals[e*kt.arity : (e+1)*kt.arity]
	if proj == nil {
		for i, v := range key {
			if t[i] != v {
				return false
			}
		}
		return true
	}
	for i, v := range key {
		if t[proj[i]] != v {
			return false
		}
	}
	return true
}

// lookup returns the entry handle for the projection of t, or -1.
func (kt *keyTable) lookup(t Tuple, proj []int) int {
	h := kt.hash(t, proj)
	mask := uint64(len(kt.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := kt.slots[i]
		if s == 0 {
			return -1
		}
		e := int(s - 1)
		if kt.hashes[e] == h && kt.equalProj(e, t, proj) {
			return e
		}
	}
}

// insert adds the projection of t, assuming lookup returned -1, and
// returns the new entry's handle.
func (kt *keyTable) insert(t Tuple, proj []int) int {
	if (len(kt.hashes)+1)*4 > len(kt.slots)*3 {
		kt.grow()
	}
	h := kt.hash(t, proj)
	e := len(kt.hashes)
	kt.hashes = append(kt.hashes, h)
	if proj == nil {
		kt.vals = append(kt.vals, t[:kt.arity]...)
	} else {
		for _, p := range proj {
			kt.vals = append(kt.vals, t[p])
		}
	}
	mask := uint64(len(kt.slots) - 1)
	i := h & mask
	for kt.slots[i] != 0 {
		i = (i + 1) & mask
	}
	kt.slots[i] = int32(e + 1)
	return e
}

// rowHash, equalRow, lookupRow, and insertRow are the columnar access
// path: the key is row i of the column vectors seen through proj,
// hashed and compared straight from the column codes — no tuple is
// ever materialized.

func (kt *keyTable) rowHash(cols [][]Value, i int, proj []int) uint64 {
	h := kt.hasher.hashRow(cols, i, proj)
	if kt.degradeMask != 0 {
		h &= kt.degradeMask
	}
	return h
}

// equalRow reports whether entry e's key equals row i of cols under
// proj.
func (kt *keyTable) equalRow(e int, cols [][]Value, i int, proj []int) bool {
	key := kt.vals[e*kt.arity : (e+1)*kt.arity]
	if proj == nil {
		for a, v := range key {
			if cols[a][i] != v {
				return false
			}
		}
		return true
	}
	for a, v := range key {
		if cols[proj[a]][i] != v {
			return false
		}
	}
	return true
}

// lookupRow returns the entry handle for row i of cols under proj, or
// -1.
func (kt *keyTable) lookupRow(cols [][]Value, i int, proj []int) int {
	h := kt.rowHash(cols, i, proj)
	mask := uint64(len(kt.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		s := kt.slots[j]
		if s == 0 {
			return -1
		}
		e := int(s - 1)
		if kt.hashes[e] == h && kt.equalRow(e, cols, i, proj) {
			return e
		}
	}
}

// insertRow adds row i of cols under proj, assuming lookupRow returned
// -1, and returns the new entry's handle.
func (kt *keyTable) insertRow(cols [][]Value, i int, proj []int) int {
	if (len(kt.hashes)+1)*4 > len(kt.slots)*3 {
		kt.grow()
	}
	h := kt.rowHash(cols, i, proj)
	e := len(kt.hashes)
	kt.hashes = append(kt.hashes, h)
	if proj == nil {
		for a := 0; a < kt.arity; a++ {
			kt.vals = append(kt.vals, cols[a][i])
		}
	} else {
		for _, p := range proj {
			kt.vals = append(kt.vals, cols[p][i])
		}
	}
	mask := uint64(len(kt.slots) - 1)
	j := h & mask
	for kt.slots[j] != 0 {
		j = (j + 1) & mask
	}
	kt.slots[j] = int32(e + 1)
	return e
}

// grow doubles the slot array and rehashes every entry from its stored
// fingerprint.
func (kt *keyTable) grow() {
	slots := make([]int32, len(kt.slots)*2)
	mask := uint64(len(slots) - 1)
	for e, h := range kt.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(e + 1)
	}
	kt.slots = slots
}

// entryKey returns entry e's key values. The slice aliases the arena;
// treat it as read-only.
func (kt *keyTable) entryKey(e int) Tuple {
	return Tuple(kt.vals[e*kt.arity : (e+1)*kt.arity])
}

// KeySet is a set of fixed-arity tuples: the allocation-free
// replacement for map[string]struct{} over TupleKey strings.
type KeySet struct {
	kt keyTable
}

// NewKeySet returns an empty set for tuples of the given arity,
// pre-sized for about sizeHint entries.
func NewKeySet(arity, sizeHint int) *KeySet {
	return &KeySet{kt: newKeyTable(arity, sizeHint)}
}

// Len reports the number of distinct tuples in the set.
func (s *KeySet) Len() int { return len(s.kt.hashes) }

// Contains reports whether t is in the set.
func (s *KeySet) Contains(t Tuple) bool { return s.kt.lookup(t, nil) >= 0 }

// ContainsProj reports whether the projection t[proj[0]], t[proj[1]],
// ... is in the set, without materializing it. len(proj) must equal the
// set's arity. It performs no allocation and, on a fully built set, is
// safe for concurrent use.
func (s *KeySet) ContainsProj(t Tuple, proj []int) bool { return s.kt.lookup(t, proj) >= 0 }

// Insert adds t and reports whether it was absent.
func (s *KeySet) Insert(t Tuple) bool { return s.InsertProj(t, nil) }

// InsertProj adds the projection of t and reports whether it was absent.
func (s *KeySet) InsertProj(t Tuple, proj []int) bool {
	if s.kt.lookup(t, proj) >= 0 {
		return false
	}
	s.kt.insert(t, proj)
	return true
}

// ContainsRow reports whether row i of the column vectors, seen through
// proj (nil = identity), is in the set — hashing straight from the
// columns, no tuple materialized.
func (s *KeySet) ContainsRow(cols [][]Value, i int, proj []int) bool {
	return s.kt.lookupRow(cols, i, proj) >= 0
}

// InsertRow adds row i of the column vectors under proj and reports
// whether it was absent.
func (s *KeySet) InsertRow(cols [][]Value, i int, proj []int) bool {
	if s.kt.lookupRow(cols, i, proj) >= 0 {
		return false
	}
	s.kt.insertRow(cols, i, proj)
	return true
}

// KeyCounter maps fixed-arity tuples to ints: the allocation-free
// replacement for map[string]int over TupleKey strings. Every distinct
// key receives a stable dense handle (its insertion rank); callers that
// previously compared string keys compare handles instead.
type KeyCounter struct {
	kt     keyTable
	counts []int
}

// NewKeyCounter returns an empty counter for tuples of the given arity,
// pre-sized for about sizeHint entries.
func NewKeyCounter(arity, sizeHint int) *KeyCounter {
	return &KeyCounter{kt: newKeyTable(arity, sizeHint)}
}

// Len reports the number of distinct keys.
func (c *KeyCounter) Len() int { return len(c.counts) }

// Lookup returns the handle of the projection of t, or (-1, false).
// proj nil means identity; len(proj) must otherwise equal the counter's
// arity. Allocation-free.
func (c *KeyCounter) Lookup(t Tuple, proj []int) (int, bool) {
	e := c.kt.lookup(t, proj)
	return e, e >= 0
}

// Get returns the value stored for the projection of t.
func (c *KeyCounter) Get(t Tuple, proj []int) (int, bool) {
	if e := c.kt.lookup(t, proj); e >= 0 {
		return c.counts[e], true
	}
	return 0, false
}

// Put sets the value for the projection of t, inserting the key if
// absent, and returns its handle.
func (c *KeyCounter) Put(t Tuple, proj []int, v int) int {
	e := c.kt.lookup(t, proj)
	if e < 0 {
		e = c.kt.insert(t, proj)
		c.counts = append(c.counts, v)
		return e
	}
	c.counts[e] = v
	return e
}

// PutNew inserts the projection of t with value v and returns its
// handle, skipping the presence probe: the caller must have just
// observed a miss (Lookup/Get returned false) with no intervening
// mutation. Inserting a key that is already present corrupts the
// table.
func (c *KeyCounter) PutNew(t Tuple, proj []int, v int) int {
	e := c.kt.insert(t, proj)
	c.counts = append(c.counts, v)
	return e
}

// Add adds delta to the value for the projection of t (inserting the
// key at zero if absent) and returns the handle and the new value.
func (c *KeyCounter) Add(t Tuple, proj []int, delta int) (int, int) {
	e := c.kt.lookup(t, proj)
	if e < 0 {
		e = c.kt.insert(t, proj)
		c.counts = append(c.counts, delta)
		return e, delta
	}
	c.counts[e] += delta
	return e, c.counts[e]
}

// LookupRow returns the handle of row i of the column vectors under
// proj (nil = identity), or (-1, false) — the columnar counterpart of
// Lookup, hashing straight from the column codes.
func (c *KeyCounter) LookupRow(cols [][]Value, i int, proj []int) (int, bool) {
	e := c.kt.lookupRow(cols, i, proj)
	return e, e >= 0
}

// AddRow adds delta to the value keyed by row i of the column vectors
// under proj (inserting the key at zero if absent) and returns the
// handle and the new value — the columnar counterpart of Add.
func (c *KeyCounter) AddRow(cols [][]Value, i int, proj []int, delta int) (int, int) {
	e := c.kt.lookupRow(cols, i, proj)
	if e < 0 {
		e = c.kt.insertRow(cols, i, proj)
		c.counts = append(c.counts, delta)
		return e, delta
	}
	c.counts[e] += delta
	return e, c.counts[e]
}

// Clone returns an independent copy of the counter: flat array copies,
// no rehashing. Incremental membership maintenance clones the small
// delta table per reconcile instead of rebuilding the base.
func (c *KeyCounter) Clone() *KeyCounter {
	return &KeyCounter{
		kt: keyTable{
			hasher:      c.kt.hasher,
			arity:       c.kt.arity,
			slots:       append([]int32(nil), c.kt.slots...),
			hashes:      append([]uint64(nil), c.kt.hashes...),
			vals:        append([]Value(nil), c.kt.vals...),
			degradeMask: c.kt.degradeMask,
		},
		counts: append([]int(nil), c.counts...),
	}
}

// At returns the value stored at a handle.
func (c *KeyCounter) At(handle int) int { return c.counts[handle] }

// SetAt replaces the value stored at a handle.
func (c *KeyCounter) SetAt(handle, v int) { c.counts[handle] = v }

// KeyAt returns the key tuple stored at a handle. The slice aliases the
// counter's arena; treat it as read-only.
func (c *KeyCounter) KeyAt(handle int) Tuple { return c.kt.entryKey(handle) }
