package relation

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// rebuiltFrom builds a fresh relation holding exactly r's live rows —
// the from-scratch reference a delta-overlaid index must agree with.
func rebuiltFrom(r *Relation) *Relation {
	out := New(r.Name()+"_rebuilt", r.Schema())
	out.AppendRows(r.Tuples())
	return out
}

// checkIndexEquivalence compares every probe the Index API answers
// against a rebuilt-from-scratch reference over a value domain wide
// enough to include absent values.
func checkIndexEquivalence(t *testing.T, r *Relation, lo, hi Value) {
	t.Helper()
	ref := rebuiltFrom(r)
	if got, want := r.LiveLen(), ref.Len(); got != want {
		t.Fatalf("LiveLen = %d, want %d", got, want)
	}
	for a := 0; a < r.Arity(); a++ {
		if got, want := r.MaxDegree(a), ref.MaxDegree(a); got != want {
			t.Fatalf("attr %d: MaxDegree = %d, want %d", a, got, want)
		}
		if got, want := r.DistinctCount(a), ref.DistinctCount(a); got != want {
			t.Fatalf("attr %d: DistinctCount = %d, want %d", a, got, want)
		}
		for v := lo; v <= hi; v++ {
			if got, want := r.Degree(a, v), ref.Degree(a, v); got != want {
				t.Fatalf("attr %d value %d: Degree = %d, want %d", a, v, got, want)
			}
			got, want := r.Matches(a, v), ref.Matches(a, v)
			if len(got) != len(want) {
				t.Fatalf("attr %d value %d: %d matches, want %d", a, v, len(got), len(want))
			}
			// Row ids differ between live and rebuilt relations (tombstones
			// leave holes), but both must be ascending and hold the value.
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("attr %d value %d: matches not ascending: %v", a, v, got)
				}
			}
			for _, row := range got {
				if !r.Live(row) {
					t.Fatalf("attr %d value %d: match returned dead row %d", a, v, row)
				}
				if r.Value(row, a) != v {
					t.Fatalf("attr %d value %d: match row %d holds %d", a, v, row, r.Value(row, a))
				}
			}
		}
	}
	// Multisets of live tuples must agree too (catches liveness bugs the
	// per-attribute probes cannot see).
	count := func(rel *Relation) map[string]int {
		m := make(map[string]int)
		for _, tup := range rel.Tuples() {
			m[TupleKey(tup)]++
		}
		return m
	}
	if got, want := count(r), count(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("live tuple multiset diverged: %v vs %v", got, want)
	}
}

// driveLiveRelation applies a scripted mutation stream, probing along
// the way so indexes repeatedly build, overlay, and compact. ops is an
// arbitrary byte stream (shared with FuzzLiveIndex).
func driveLiveRelation(t *testing.T, ops []byte, arity int, degrade uint64) {
	t.Helper()
	schema := make([]string, arity)
	for i := range schema {
		schema[i] = string(rune('A' + i))
	}
	r := New("live", NewSchema(schema...))
	if degrade != 0 {
		r.SetIndexHashDegradeForTest(degrade)
	}
	val := func(b byte) Value { return Value(int(b%11) - 2) }
	mkRow := func(seed byte) Tuple {
		row := make(Tuple, arity)
		for i := range row {
			row[i] = val(seed + byte(i)*7)
		}
		return row
	}
	// Build the indexes up front so every later mutation exercises the
	// overlay catch-up rather than a cold build.
	for a := 0; a < arity; a++ {
		r.Index(a)
	}
	checks := 0
	for pc := 0; pc < len(ops); pc++ {
		op := ops[pc]
		switch op % 5 {
		case 0: // single append
			r.Append(mkRow(op / 5))
		case 1: // batch append (may blow the overlay budget -> compaction)
			n := int(op/5) % 90
			rows := make([]Tuple, n)
			for i := range rows {
				rows[i] = mkRow(op/5 + byte(i))
			}
			r.AppendRows(rows)
		case 2: // delete by pseudo-random row id (dead ids exercise the miss path)
			if r.Len() > 0 {
				r.Delete(int(op/5) * 13 % r.Len())
			}
		case 3: // probe: forces the overlay build mid-stream
			for a := 0; a < arity; a++ {
				r.Degree(a, val(op/5))
				r.Matches(a, val(op))
			}
		case 4: // full check at intermediate states (bounded: they are costly)
			if checks < 3 {
				checks++
				checkIndexEquivalence(t, r, -3, 9)
			}
		}
	}
	checkIndexEquivalence(t, r, -3, 9)
}

// TestLiveIndexMatchesRebuilt drives randomized interleavings of
// Append/AppendRows/Delete/probe and checks the delta-overlaid indexes
// answer Matches/Degree/MaxDegree/DistinctCount exactly like an index
// rebuilt from scratch — including under degraded hashes that force
// fingerprint collisions (the key_test.go technique applied to the
// index layer).
func TestLiveIndexMatchesRebuilt(t *testing.T) {
	for _, degrade := range []uint64{0, 0xF, 0x3} {
		for seed := int64(0); seed < 12; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			ops := make([]byte, 300)
			rnd.Read(ops)
			for _, arity := range []int{1, 2, 3} {
				driveLiveRelation(t, ops, arity, degrade)
			}
		}
	}
}

// TestDeltaOverlayCompaction crosses the overlay budget in one batch
// and in many small steps; both must converge to the same answers.
func TestDeltaOverlayCompaction(t *testing.T) {
	r := New("compact", NewSchema("A", "B"))
	for i := 0; i < 100; i++ {
		r.AppendValues(Value(i%10), Value(i%3))
	}
	r.Index(0)
	r.Index(1)
	// Small steps: stay in the overlay.
	for i := 0; i < 30; i++ {
		r.AppendValues(Value(i%17), Value(i%5))
		r.Degree(0, Value(i%17))
	}
	checkIndexEquivalence(t, r, -1, 20)
	// One huge batch: tail exceeds the budget, forcing a pure-CSR rebuild.
	big := make([]Tuple, 400)
	for i := range big {
		big[i] = Tuple{Value(i % 23), Value(i % 7)}
	}
	r.AppendRows(big)
	checkIndexEquivalence(t, r, -1, 25)
	// Deletions over the compacted index.
	for i := 0; i < 60; i++ {
		r.Delete(i * 7 % r.Len())
	}
	checkIndexEquivalence(t, r, -1, 25)
}

// TestDeleteSemantics pins the tombstone contract: stable row ids,
// LiveLen accounting, idempotent Delete, and live-only derived views.
func TestDeleteSemantics(t *testing.T) {
	r := New("del", NewSchema("A", "B"))
	r.AppendValues(1, 10)
	r.AppendValues(2, 20)
	r.AppendValues(3, 30)
	if !r.Delete(1) {
		t.Fatal("Delete(1) = false on a live row")
	}
	if r.Delete(1) {
		t.Fatal("Delete(1) = true on a dead row")
	}
	if r.Delete(99) || r.Delete(-1) {
		t.Fatal("Delete out of range = true")
	}
	if r.Len() != 3 || r.LiveLen() != 2 {
		t.Fatalf("Len/LiveLen = %d/%d, want 3/2", r.Len(), r.LiveLen())
	}
	if got := r.Row(1); got[0] != 2 || got[1] != 20 {
		t.Fatalf("dead row values changed: %v", got)
	}
	if got := len(r.Tuples()); got != 2 {
		t.Fatalf("Tuples returned %d rows, want 2", got)
	}
	f := r.Filter("f", True{})
	if f.Len() != 2 {
		t.Fatalf("Filter kept %d rows, want 2", f.Len())
	}
	p, err := r.Project("p", []string{"A"})
	if err != nil || p.Len() != 2 {
		t.Fatalf("Project = %v rows (err %v), want 2", p.Len(), err)
	}
	if r.Degree(0, 2) != 0 || r.Degree(0, 1) != 1 {
		t.Fatalf("Degree after delete: d(2)=%d d(1)=%d", r.Degree(0, 2), r.Degree(0, 1))
	}
}

// TestMutationLogTail pins MutationsSince semantics: exact tails,
// trimming past the retention bound, and the enable point.
func TestMutationLogTail(t *testing.T) {
	r := New("log", NewSchema("A"))
	r.AppendValues(1) // before any derived structure: not logged
	r.Index(0)        // enables the log
	v0 := r.Version()
	r.AppendValues(2)
	r.AppendValues(3)
	r.Delete(0)
	tail, upTo, ok := r.MutationsSince(v0)
	if !ok || upTo != v0+3 || len(tail) != 3 {
		t.Fatalf("MutationsSince = %d entries upTo %d ok %v, want 3/%d/true", len(tail), upTo, ok, v0+3)
	}
	if tail[0].Kind != MutAppend || tail[0].Row != 1 {
		t.Fatalf("tail[0] = %+v, want append row 1", tail[0])
	}
	if tail[2].Kind != MutDelete || tail[2].Row != 0 || tail[2].Vals[0] != 1 {
		t.Fatalf("tail[2] = %+v, want delete row 0 vals [1]", tail[2])
	}
	if _, _, ok := r.MutationsSince(v0 - 1); ok {
		t.Fatal("MutationsSince before the enable point must fail")
	}
	// Overflow the retention bound; old positions become unavailable but
	// recent ones survive.
	for i := 0; i < maxLogLen+100; i++ {
		r.AppendValues(Value(i))
	}
	if _, _, ok := r.MutationsSince(v0); ok {
		t.Fatal("MutationsSince across a trimmed tail must fail")
	}
	vRecent := r.Version() - 10
	if tail, _, ok := r.MutationsSince(vRecent); !ok || len(tail) != 10 {
		t.Fatalf("recent tail = %d entries ok %v, want 10/true", len(tail), ok)
	}
	checkIndexEquivalence(t, r, -3, 9)
}

// TestConcurrentOverlayFirstBuild mutates a relation with built
// indexes, then lets many goroutines race to the first probe: the delta
// overlay must build exactly once behind the lock and every reader must
// see a correct answer (run under -race).
func TestConcurrentOverlayFirstBuild(t *testing.T) {
	r := New("race", NewSchema("A", "B"))
	for i := 0; i < 200; i++ {
		r.AppendValues(Value(i%20), Value(i%7))
	}
	r.Index(0)
	r.Index(1)
	for round := 0; round < 20; round++ {
		r.AppendValues(Value(100+round), Value(round%7))
		r.Delete(round * 3)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for a := 0; a < 2; a++ {
					r.Degree(a, Value(w%20))
					for _, row := range r.Matches(a, Value(w%7)) {
						_ = r.Row(row)
					}
					r.MaxDegree(a)
					r.DistinctCount(a)
				}
			}(w)
		}
		wg.Wait()
	}
	checkIndexEquivalence(t, r, -1, 120)
}

// TestConcurrentMutateAndProbe races mutators against probers: the
// assertions here are memory safety and sane invariants (ids in range,
// values match); exact answers are checked after the dust settles.
func TestConcurrentMutateAndProbe(t *testing.T) {
	r := New("churn", NewSchema("A", "B"))
	for i := 0; i < 100; i++ {
		r.AppendValues(Value(i%13), Value(i%5))
	}
	r.Index(0)
	r.Index(1)
	done := make(chan struct{})
	var mutWG, probeWG sync.WaitGroup
	mutWG.Add(1)
	go func() { // mutator (bounded: an unthrottled writer starves race-slowed probers)
		defer mutWG.Done()
		for i := 0; i < 1500; i++ {
			select {
			case <-done:
				return
			default:
			}
			switch i % 3 {
			case 0:
				r.AppendValues(Value(i%13), Value(i%5))
			case 1:
				r.AppendRows([]Tuple{{Value(i % 17), Value(i % 5)}, {Value(i % 13), Value(i % 3)}})
			case 2:
				r.Delete(i * 11 % r.Len())
			}
		}
	}()
	for w := 0; w < 4; w++ {
		probeWG.Add(1)
		go func(w int) {
			defer probeWG.Done()
			for i := 0; i < 1200; i++ {
				v := Value((i + w) % 17)
				for _, row := range r.Matches(0, v) {
					if row >= r.Len() {
						t.Errorf("match row %d out of range %d", row, r.Len())
						return
					}
					if r.Value(row, 0) != v {
						t.Errorf("match row %d holds %d, want %d", row, r.Value(row, 0), v)
						return
					}
				}
				_ = r.MaxDegree(1)
			}
		}(w)
	}
	probeWG.Wait()
	close(done)
	mutWG.Wait()
	checkIndexEquivalence(t, r, -1, 20)
}

// FuzzLiveIndex feeds arbitrary op streams through the live-relation
// driver: any divergence between the delta-overlaid index and a rebuilt
// reference, or any panic, is a finding.
func FuzzLiveIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0xFF, 0x40, 0x09}, uint8(2), false)
	f.Add([]byte{11, 12, 2, 4, 9, 14, 19, 24, 4}, uint8(1), true)
	f.Add([]byte{1, 101, 2, 102, 3, 103, 4, 104}, uint8(3), false)
	f.Fuzz(func(t *testing.T, ops []byte, arity uint8, degrade bool) {
		a := int(arity)%3 + 1
		if len(ops) > 400 {
			ops = ops[:400]
		}
		var mask uint64
		if degrade {
			mask = 0x7
		}
		driveLiveRelation(t, ops, a, mask)
	})
}
