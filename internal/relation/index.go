package relation

// Index is a per-attribute hash index: an immutable CSR base (the row
// ids of every distinct value contiguous in one packed slice, addressed
// by a counting-sort offset table, with an open-addressed value table
// on top) plus an optional immutable delta overlay that absorbs
// mutations without rebuilding the base. Probes consult the overlay
// first — a value untouched by any mutation costs exactly the pure-CSR
// probe — and every published Index is immutable, so concurrent readers
// need no synchronization. Relation.Index catches an index up to the
// current version by cloning the overlay and replaying the mutation-log
// tail; when the overlay would grow past a fraction of the base, the
// catch-up compacts back to a pure CSR instead.
type Index struct {
	base    *csr
	ov      *overlay // nil = pure CSR
	maxDeg  int      // exact max live degree under the overlay
	version uint64   // relation version this index reflects
}

// csr is the immutable base layout.
type csr struct {
	slots   []int32 // open addressing: entry index + 1; 0 = empty
	keys    []Value // distinct values, first-appearance order
	starts  []int32 // entry e's rows at rows[starts[e]:starts[e+1]]
	rows    []int   // row ids grouped by value, ascending within a group
	maxDeg  int
	degrade uint64 // test-only hash degradation mask
}

// overlay holds the touched values: for each, the fully merged live row
// list. It is immutable once published; catch-up clones it.
type overlay struct {
	slots   []int32 // open addressing: overlay entry index + 1; 0 = empty
	keys    []Value // touched values
	rows    [][]int // merged live rows per touched value (ascending)
	baseEnt []int32 // base entry of the value, or -1 when new
	extra   []int32 // overlay entries of values absent from base, in first-appearance order
	rank    []int32 // per overlay entry: its index in extra (-1 for base values); keeps EntryOf O(1)
	degrade uint64
}

// hashValue fingerprints one attribute value for the slot tables.
func hashValue(v Value, degrade uint64) uint64 {
	h := mix(uint64(v) + keySeed0)
	if degrade != 0 {
		h &= degrade
	}
	return h
}

// overlayThreshold returns the touched-value budget before a catch-up
// compacts to a pure CSR.
func overlayThreshold(base *csr) int {
	t := len(base.rows) / 8
	if t < 64 {
		t = 64
	}
	return t
}

// buildIndex constructs a pure-CSR index over attribute position a of
// the snapshot, skipping tombstoned rows. Both passes run down the
// attribute's column vector.
func buildIndex(s *snapshot, a int, version uint64, degrade uint64) *Index {
	n := s.rows
	col := s.cols[a]
	b := &csr{degrade: degrade}
	// Pass 1: discover distinct values and their degrees. counts is
	// indexed by entry id (first-appearance rank).
	nslots := minSlots
	for nslots < n*2 {
		nslots <<= 1
	}
	b.slots = make([]int32, nslots)
	counts := make([]int32, 0, 16)
	mask := uint64(nslots - 1)
	for i := 0; i < n; i++ {
		if !s.isLive(i) {
			continue
		}
		v := col[i]
		h := hashValue(v, degrade)
		j := h & mask
		for {
			sl := b.slots[j]
			if sl == 0 {
				b.slots[j] = int32(len(b.keys) + 1)
				b.keys = append(b.keys, v)
				counts = append(counts, 1)
				break
			}
			if b.keys[sl-1] == v {
				counts[sl-1]++
				break
			}
			j = (j + 1) & mask
		}
	}
	// Pass 2: prefix sums, then scatter row ids. Scanning rows in order
	// keeps each group ascending.
	b.starts = make([]int32, len(b.keys)+1)
	live := 0
	for e, c := range counts {
		b.starts[e+1] = b.starts[e] + c
		live += int(c)
		if int(c) > b.maxDeg {
			b.maxDeg = int(c)
		}
	}
	b.rows = make([]int, live)
	cursor := append([]int32(nil), b.starts[:len(b.keys)]...)
	for i := 0; i < n; i++ {
		if !s.isLive(i) {
			continue
		}
		v := col[i]
		e, _ := b.entryOf(v)
		b.rows[cursor[e]] = i
		cursor[e]++
	}
	return &Index{base: b, maxDeg: b.maxDeg, version: version}
}

func (b *csr) entryOf(v Value) (int, bool) {
	mask := uint64(len(b.slots) - 1)
	h := hashValue(v, b.degrade)
	for j := h & mask; ; j = (j + 1) & mask {
		s := b.slots[j]
		if s == 0 {
			return -1, false
		}
		if b.keys[s-1] == v {
			return int(s - 1), true
		}
	}
}

func (b *csr) rowsOf(v Value) []int {
	e, ok := b.entryOf(v)
	if !ok {
		return nil
	}
	return b.rows[b.starts[e]:b.starts[e+1]]
}

func (b *csr) degreeAt(e int) int { return int(b.starts[e+1] - b.starts[e]) }

// lookup returns the overlay entry of v, or -1.
func (o *overlay) lookup(v Value) int {
	if o == nil || len(o.slots) == 0 {
		return -1
	}
	mask := uint64(len(o.slots) - 1)
	h := hashValue(v, o.degrade)
	for j := h & mask; ; j = (j + 1) & mask {
		s := o.slots[j]
		if s == 0 {
			return -1
		}
		if o.keys[s-1] == v {
			return int(s - 1)
		}
	}
}

// clone deep-copies the overlay's entry tables; row slices stay shared
// until modified (the catch-up copies them on first write).
func (o *overlay) clone() *overlay {
	if o == nil {
		return &overlay{slots: make([]int32, minSlots)}
	}
	return &overlay{
		slots:   append([]int32(nil), o.slots...),
		keys:    append([]Value(nil), o.keys...),
		rows:    append([][]int(nil), o.rows...),
		baseEnt: append([]int32(nil), o.baseEnt...),
		extra:   append([]int32(nil), o.extra...),
		rank:    append([]int32(nil), o.rank...),
		degrade: o.degrade,
	}
}

// ensure returns the overlay entry for v, creating it (initialized with
// the base's row list for v — necessarily all live, since any earlier
// deletion of a v-row would already have created the entry) when
// absent.
func (o *overlay) ensure(v Value, base *csr) int {
	if e := o.lookup(v); e >= 0 {
		return e
	}
	if (len(o.keys)+1)*4 > len(o.slots)*3 {
		o.grow()
	}
	e := len(o.keys)
	o.keys = append(o.keys, v)
	be, ok := base.entryOf(v)
	if ok {
		o.rows = append(o.rows, append([]int(nil), base.rows[base.starts[be]:base.starts[be+1]]...))
		o.baseEnt = append(o.baseEnt, int32(be))
		o.rank = append(o.rank, -1)
	} else {
		o.rows = append(o.rows, nil)
		o.baseEnt = append(o.baseEnt, -1)
		o.rank = append(o.rank, int32(len(o.extra)))
		o.extra = append(o.extra, int32(e))
	}
	mask := uint64(len(o.slots) - 1)
	j := hashValue(v, o.degrade) & mask
	for o.slots[j] != 0 {
		j = (j + 1) & mask
	}
	o.slots[j] = int32(e + 1)
	return e
}

func (o *overlay) grow() {
	n := len(o.slots) * 2
	if n < minSlots {
		n = minSlots
	}
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for e, v := range o.keys {
		j := hashValue(v, o.degrade) & mask
		for slots[j] != 0 {
			j = (j + 1) & mask
		}
		slots[j] = int32(e + 1)
	}
	o.slots = slots
}

// applyTail returns a new Index reflecting the mutation-log tail on top
// of ix, or nil when the overlay would exceed its budget and the caller
// should rebuild a pure CSR instead.
func (ix *Index) applyTail(s *snapshot, a int, tail []Mutation, version uint64) *Index {
	budget := overlayThreshold(ix.base)
	existing := 0
	if ix.ov != nil {
		existing = len(ix.ov.keys)
	}
	if existing+len(tail) > budget {
		return nil
	}
	ov := ix.ov.clone()
	ov.degrade = ix.base.degrade
	col := s.cols[a]
	copied := make([]bool, len(ov.rows), len(ov.rows)+len(tail))
	for _, m := range tail {
		switch m.Kind {
		case MutAppend:
			v := col[m.Row]
			e := ov.ensure(v, ix.base)
			for len(copied) <= e {
				copied = append(copied, true) // fresh entries own their slice
			}
			if !copied[e] {
				ov.rows[e] = append([]int(nil), ov.rows[e]...)
				copied[e] = true
			}
			ov.rows[e] = append(ov.rows[e], m.Row)
		case MutDelete:
			v := m.Vals[a]
			e := ov.ensure(v, ix.base)
			for len(copied) <= e {
				copied = append(copied, true)
			}
			if !copied[e] {
				ov.rows[e] = append([]int(nil), ov.rows[e]...)
				copied[e] = true
			}
			ov.rows[e] = removeRow(ov.rows[e], m.Row)
		}
	}
	nx := &Index{base: ix.base, ov: ov, version: version}
	nx.maxDeg = nx.computeMaxDeg()
	return nx
}

// removeRow deletes row from an ascending id list in place.
func removeRow(rows []int, row int) []int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rows) && rows[lo] == row {
		return append(rows[:lo], rows[lo+1:]...)
	}
	return rows
}

// computeMaxDeg recomputes the exact max degree under the overlay. The
// base is scanned only when every base value attaining the base max was
// touched and shrunk — otherwise the base max still stands.
func (ix *Index) computeMaxDeg() int {
	ov := ix.ov
	max := 0
	shrunkAttainer := false
	for e := range ov.keys {
		if d := len(ov.rows[e]); d > max {
			max = d
		}
		if be := ov.baseEnt[e]; be >= 0 && ix.base.degreeAt(int(be)) == ix.base.maxDeg && len(ov.rows[e]) < ix.base.maxDeg {
			shrunkAttainer = true
		}
	}
	if !shrunkAttainer {
		if ix.base.maxDeg > max {
			max = ix.base.maxDeg
		}
		return max
	}
	for e := range ix.base.keys {
		if ov.lookup(ix.base.keys[e]) >= 0 {
			continue
		}
		if d := ix.base.degreeAt(e); d > max {
			max = d
		}
	}
	return max
}

// EntryOf returns the dense entry id of a value, or (-1, false) when
// the value was never indexed. Under an overlay, a value whose rows
// were all deleted keeps its entry (with zero rows); use Degree to test
// liveness.
func (ix *Index) EntryOf(v Value) (int, bool) {
	if ix.ov != nil {
		if e := ix.ov.lookup(v); e >= 0 {
			if be := ix.ov.baseEnt[e]; be >= 0 {
				return int(be), true
			}
			// New value: dense id after the base entries.
			return len(ix.base.keys) + int(ix.ov.rank[e]), true
		}
	}
	return ix.base.entryOf(v)
}

// Rows returns the live row ids holding v, ascending. The slice aliases
// the index; do not mutate it.
func (ix *Index) Rows(v Value) []int {
	if ix.ov != nil {
		if e := ix.ov.lookup(v); e >= 0 {
			return ix.ov.rows[e]
		}
	}
	return ix.base.rowsOf(v)
}

// Degree returns the number of live rows holding v.
func (ix *Index) Degree(v Value) int {
	if ix.ov != nil {
		if e := ix.ov.lookup(v); e >= 0 {
			return len(ix.ov.rows[e])
		}
	}
	e, ok := ix.base.entryOf(v)
	if !ok {
		return 0
	}
	return ix.base.degreeAt(e)
}

// MaxDegree returns the maximum live value frequency.
func (ix *Index) MaxDegree() int { return ix.maxDeg }

// Version returns the relation version this index reflects. Structures
// derived from the index's row lists (the EW samplers' weight tables
// and their lazily built alias tables) record it so staleness is
// detectable: a relation mutation bumps the relation's version, and a
// mismatch means the derived structure describes an older snapshot.
func (ix *Index) Version() uint64 { return ix.version }

// Distinct returns the number of distinct values with at least one live
// row.
func (ix *Index) Distinct() int {
	n := len(ix.base.keys)
	if ix.ov == nil {
		return n
	}
	for e := range ix.ov.keys {
		switch {
		case ix.ov.baseEnt[e] >= 0 && len(ix.ov.rows[e]) == 0:
			n--
		case ix.ov.baseEnt[e] < 0 && len(ix.ov.rows[e]) > 0:
			n++
		}
	}
	return n
}

// NumEntries returns the number of dense entries: base entries first
// (some possibly emptied by deletions), then values first seen through
// the overlay. Entries are addressed 0..NumEntries()-1.
func (ix *Index) NumEntries() int {
	n := len(ix.base.keys)
	if ix.ov != nil {
		n += len(ix.ov.extra)
	}
	return n
}

// ValueAt returns entry e's value.
func (ix *Index) ValueAt(e int) Value {
	if e < len(ix.base.keys) {
		return ix.base.keys[e]
	}
	return ix.ov.keys[ix.ov.extra[e-len(ix.base.keys)]]
}

// RowsAt returns entry e's live row ids. The slice aliases the index;
// do not mutate it.
func (ix *Index) RowsAt(e int) []int {
	if e >= len(ix.base.keys) {
		return ix.ov.rows[ix.ov.extra[e-len(ix.base.keys)]]
	}
	if ix.ov != nil {
		if oe := ix.ov.lookup(ix.base.keys[e]); oe >= 0 {
			return ix.ov.rows[oe]
		}
	}
	return ix.base.rows[ix.base.starts[e]:ix.base.starts[e+1]]
}
