package relation

// Index is a per-attribute hash index in CSR layout: the row ids of
// every distinct value live contiguously in one packed slice, addressed
// by a counting-sort offset table, with an open-addressed value table
// on top. Compared to the previous map[Value][]int it is built in two
// linear passes with O(distinct) allocations instead of O(distinct)
// separately grown slices, probes without hashing strings, and — being
// immutable after construction — is safe for concurrent readers.
type Index struct {
	slots  []int32 // open addressing: entry index + 1; 0 = empty
	keys   []Value // distinct values, first-appearance order
	starts []int32 // entry e's rows at rows[starts[e]:starts[e+1]]
	rows   []int   // row ids grouped by value, ascending within a group
	maxDeg int
}

// hashValue fingerprints one attribute value for the index's slot
// table.
func hashValue(v Value) uint64 { return mix(uint64(v) + keySeed0) }

// buildIndex constructs the CSR index over attribute position a of r.
func buildIndex(r *Relation, a int) *Index {
	n := r.Len()
	ix := &Index{}
	// Pass 1: discover distinct values and their degrees. counts is
	// indexed by entry id (first-appearance rank).
	nslots := minSlots
	for nslots < n*2 {
		nslots <<= 1
	}
	ix.slots = make([]int32, nslots)
	counts := make([]int32, 0, 16)
	mask := uint64(nslots - 1)
	for i := 0; i < n; i++ {
		v := r.Value(i, a)
		h := hashValue(v)
		j := h & mask
		for {
			s := ix.slots[j]
			if s == 0 {
				ix.slots[j] = int32(len(ix.keys) + 1)
				ix.keys = append(ix.keys, v)
				counts = append(counts, 1)
				break
			}
			if ix.keys[s-1] == v {
				counts[s-1]++
				break
			}
			j = (j + 1) & mask
		}
	}
	// Pass 2: prefix sums, then scatter row ids. Scanning rows in order
	// keeps each group ascending, matching the old index's guarantee.
	ix.starts = make([]int32, len(ix.keys)+1)
	for e, c := range counts {
		ix.starts[e+1] = ix.starts[e] + c
		if int(c) > ix.maxDeg {
			ix.maxDeg = int(c)
		}
	}
	ix.rows = make([]int, n)
	cursor := append([]int32(nil), ix.starts[:len(ix.keys)]...)
	for i := 0; i < n; i++ {
		v := r.Value(i, a)
		e, _ := ix.EntryOf(v)
		ix.rows[cursor[e]] = i
		cursor[e]++
	}
	return ix
}

// EntryOf returns the dense entry id of a value, or (-1, false) when
// the value does not occur.
func (ix *Index) EntryOf(v Value) (int, bool) {
	mask := uint64(len(ix.slots) - 1)
	h := hashValue(v)
	for j := h & mask; ; j = (j + 1) & mask {
		s := ix.slots[j]
		if s == 0 {
			return -1, false
		}
		if ix.keys[s-1] == v {
			return int(s - 1), true
		}
	}
}

// Rows returns the row ids holding v, ascending. The slice aliases the
// index; do not mutate it.
func (ix *Index) Rows(v Value) []int {
	e, ok := ix.EntryOf(v)
	if !ok {
		return nil
	}
	return ix.rows[ix.starts[e]:ix.starts[e+1]]
}

// Degree returns the number of rows holding v.
func (ix *Index) Degree(v Value) int {
	e, ok := ix.EntryOf(v)
	if !ok {
		return 0
	}
	return int(ix.starts[e+1] - ix.starts[e])
}

// MaxDegree returns the maximum value frequency.
func (ix *Index) MaxDegree() int { return ix.maxDeg }

// Distinct returns the number of distinct values.
func (ix *Index) Distinct() int { return len(ix.keys) }

// NumEntries returns the number of distinct values; entries are
// addressed 0..NumEntries()-1 in first-appearance order.
func (ix *Index) NumEntries() int { return len(ix.keys) }

// ValueAt returns entry e's value.
func (ix *Index) ValueAt(e int) Value { return ix.keys[e] }

// RowsAt returns entry e's row ids. The slice aliases the index; do not
// mutate it.
func (ix *Index) RowsAt(e int) []int { return ix.rows[ix.starts[e]:ix.starts[e+1]] }
