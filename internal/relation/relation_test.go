package relation

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSchema() *Schema { return NewSchema("a", "b", "c") }

func testRel(t *testing.T) *Relation {
	t.Helper()
	r, err := FromTuples("R", testSchema(), []Tuple{
		{1, 10, 100},
		{1, 20, 200},
		{2, 10, 300},
		{3, 30, 400},
	})
	if err != nil {
		t.Fatalf("FromTuples: %v", err)
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Index("b"); got != 1 {
		t.Errorf("Index(b) = %d, want 1", got)
	}
	if got := s.Index("z"); got != -1 {
		t.Errorf("Index(z) = %d, want -1", got)
	}
	if !s.Has("c") || s.Has("z") {
		t.Errorf("Has misreported: c=%v z=%v", s.Has("c"), s.Has("z"))
	}
	if !s.Equal(NewSchema("a", "b", "c")) {
		t.Error("Equal schemas reported unequal")
	}
	if s.Equal(NewSchema("a", "b")) || s.Equal(NewSchema("a", "c", "b")) {
		t.Error("unequal schemas reported equal")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSchema with duplicate did not panic")
		}
	}()
	NewSchema("a", "a")
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	idx, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Project = %v, want [2 0]", idx)
	}
	if _, err := s.Project([]string{"z"}); err == nil {
		t.Error("Project(z) succeeded, want error")
	}
}

func TestRelationRowsAndValues(t *testing.T) {
	r := testRel(t)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Arity() != 3 {
		t.Fatalf("Arity = %d, want 3", r.Arity())
	}
	if got := r.Row(2); !got.Equal(Tuple{2, 10, 300}) {
		t.Errorf("Row(2) = %v", got)
	}
	if got := r.Value(3, 1); got != 30 {
		t.Errorf("Value(3,1) = %d, want 30", got)
	}
}

func TestRelationArityError(t *testing.T) {
	if _, err := FromTuples("R", testSchema(), []Tuple{{1, 2}}); err == nil {
		t.Fatal("FromTuples with short row succeeded")
	}
}

func TestIndexAndDegrees(t *testing.T) {
	r := testRel(t)
	idx := r.Index(0)
	if len(idx.Rows(1)) != 2 || len(idx.Rows(2)) != 1 || len(idx.Rows(3)) != 1 {
		t.Errorf("index over a wrong: %v/%v/%v", idx.Rows(1), idx.Rows(2), idx.Rows(3))
	}
	if d := r.Degree(0, 1); d != 2 {
		t.Errorf("Degree(a=1) = %d, want 2", d)
	}
	if d := r.Degree(0, 99); d != 0 {
		t.Errorf("Degree(a=99) = %d, want 0", d)
	}
	if m := r.MaxDegree(1); m != 2 {
		t.Errorf("MaxDegree(b) = %d, want 2 (value 10 twice)", m)
	}
	if c := r.DistinctCount(0); c != 3 {
		t.Errorf("DistinctCount(a) = %d, want 3", c)
	}
}

func TestAppendInvalidatesIndex(t *testing.T) {
	r := testRel(t)
	_ = r.Index(0)
	r.Append(Tuple{1, 99, 999})
	if d := r.Degree(0, 1); d != 3 {
		t.Errorf("Degree after append = %d, want 3", d)
	}
}

func TestFilterProject(t *testing.T) {
	r := testRel(t)
	f := r.Filter("F", Cmp{Attr: "a", Op: EQ, Val: 1})
	if f.Len() != 2 {
		t.Fatalf("Filter len = %d, want 2", f.Len())
	}
	p, err := r.Project("P", []string{"b"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 4 {
		t.Fatalf("Project len = %d, want 4 (duplicates kept)", p.Len())
	}
	dp, err := r.DistinctProject("DP", []string{"b"})
	if err != nil {
		t.Fatalf("DistinctProject: %v", err)
	}
	if dp.Len() != 3 {
		t.Fatalf("DistinctProject len = %d, want 3", dp.Len())
	}
}

func TestPredicates(t *testing.T) {
	s := testSchema()
	row := Tuple{5, 10, 15}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Cmp{"a", EQ, 5}, true},
		{Cmp{"a", NE, 5}, false},
		{Cmp{"b", LT, 11}, true},
		{Cmp{"b", LE, 10}, true},
		{Cmp{"c", GT, 15}, false},
		{Cmp{"c", GE, 15}, true},
		{Cmp{"missing", EQ, 5}, false},
		{And{Cmp{"a", EQ, 5}, Cmp{"b", EQ, 10}}, true},
		{And{Cmp{"a", EQ, 5}, Cmp{"b", EQ, 11}}, false},
		{And{}, true},
		{Or{Cmp{"a", EQ, 6}, Cmp{"b", EQ, 10}}, true},
		{Or{}, false},
		{Not{Cmp{"a", EQ, 5}}, false},
		{True{}, true},
		{NewIn("a", 4, 5, 6), true},
		{NewIn("a", 7), false},
	}
	for _, c := range cases {
		if got := c.p.Eval(row, s); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.p, row, got, c.want)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	// Smoke-test String for coverage of the rendering paths.
	ps := []Predicate{
		Cmp{"a", EQ, 1}, Cmp{"a", NE, 1}, Cmp{"a", LT, 1},
		And{Cmp{"a", EQ, 1}, Cmp{"b", GT, 2}}, And{},
		Or{Cmp{"a", EQ, 1}}, Or{},
		Not{True{}}, True{}, NewIn("a", 1, 2),
	}
	for _, p := range ps {
		if p.String() == "" {
			t.Errorf("%T renders empty string", p)
		}
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Encode("alpha")
	b := d.Encode("beta")
	if a == b {
		t.Fatal("distinct strings share a value")
	}
	if again := d.Encode("alpha"); again != a {
		t.Errorf("re-encode alpha = %d, want %d", again, a)
	}
	if s, ok := d.Decode(a); !ok || s != "alpha" {
		t.Errorf("Decode(%d) = %q, %v", a, s, ok)
	}
	if _, ok := d.Decode(999); ok {
		t.Error("Decode(999) succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if ss := d.Strings(); len(ss) != 2 || ss[0] != "alpha" || ss[1] != "beta" {
		t.Errorf("Strings = %v", ss)
	}
}

func TestTupleKeyProperties(t *testing.T) {
	// Property: keys are equal iff tuples are equal (same arity).
	f := func(a, b [3]int64) bool {
		ta := Tuple{Value(a[0]), Value(a[1]), Value(a[2])}
		tb := Tuple{Value(b[0]), Value(b[1]), Value(b[2])}
		return (TupleKey(ta) == TupleKey(tb)) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleOrdering(t *testing.T) {
	ts := []Tuple{{3, 1}, {1, 2}, {1, 1}, {2, 9}}
	SortTuples(ts)
	want := []Tuple{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	for i := range want {
		if !ts[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
	if !ts[0].Less(ts[1]) || ts[1].Less(ts[0]) {
		t.Error("Less inconsistent")
	}
	if Tuple([]Value{1}).Less(Tuple{1}) {
		t.Error("equal tuples reported Less")
	}
	if !Tuple([]Value{1}).Less(Tuple{1, 0}) {
		t.Error("prefix should be Less than extension")
	}
}

func TestVerticalSplitLossless(t *testing.T) {
	s := NewSchema("k", "x", "y")
	r := MustFromTuples("R", s, []Tuple{
		{1, 10, 100}, {2, 20, 200}, {3, 20, 300},
	})
	left, right, err := VerticalSplit(r, "L", []string{"k", "x"}, "R2", []string{"k", "y"})
	if err != nil {
		t.Fatalf("VerticalSplit: %v", err)
	}
	if left.Len() != 3 || right.Len() != 3 {
		t.Fatalf("split sizes = %d, %d; want 3, 3", left.Len(), right.Len())
	}
	// Rejoin on k and compare with the original rows.
	joined := make(map[string]bool)
	for i := 0; i < left.Len(); i++ {
		lk := left.Value(i, 0)
		for _, j := range right.Matches(0, lk) {
			tuple := Tuple{lk, left.Value(i, 1), right.Value(j, 1)}
			joined[TupleKey(tuple)] = true
		}
	}
	for i := 0; i < r.Len(); i++ {
		if !joined[TupleKey(r.Row(i))] {
			t.Errorf("row %v lost by split+rejoin", r.Row(i))
		}
	}
	if len(joined) != 3 {
		t.Errorf("rejoin produced %d rows, want 3", len(joined))
	}
}

func TestVerticalSplitErrors(t *testing.T) {
	s := NewSchema("k", "x", "y")
	r := MustFromTuples("R", s, []Tuple{{1, 2, 3}})
	if _, _, err := VerticalSplit(r, "L", []string{"k", "x"}, "R2", []string{"y"}); err == nil {
		t.Error("split without shared attribute succeeded")
	}
	if _, _, err := VerticalSplit(r, "L", []string{"k"}, "R2", []string{"k", "x"}); err == nil {
		t.Error("split dropping an attribute succeeded")
	}
}

func TestHorizontalSplit(t *testing.T) {
	r := testRel(t)
	yes, no := HorizontalSplit(r, "Y", "N", Cmp{Attr: "a", Op: EQ, Val: 1})
	if yes.Len() != 2 || no.Len() != 2 {
		t.Fatalf("split = %d/%d, want 2/2", yes.Len(), no.Len())
	}
	if yes.Len()+no.Len() != r.Len() {
		t.Error("split is not a partition")
	}
}

func TestSplitByTemplate(t *testing.T) {
	ab := MustFromTuples("AB", NewSchema("A", "B"), []Tuple{{1, 2}, {1, 3}})
	bcd := MustFromTuples("BCD", NewSchema("B", "C", "D"), []Tuple{{2, 5, 7}, {3, 5, 8}})
	pairs, err := SplitByTemplate([]*Relation{ab, bcd}, []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatalf("SplitByTemplate: %v", err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	if pairs[0].Original != ab || pairs[1].Original != bcd || pairs[2].Original != bcd {
		t.Error("pair provenance wrong")
	}
	if pairs[0].FakeNext {
		t.Error("AB->BC marked fake; different originals")
	}
	if !pairs[1].FakeNext {
		t.Error("BC->CD not marked fake; same original BCD")
	}
	if _, err := SplitByTemplate([]*Relation{ab}, []string{"A", "Z"}); err == nil {
		t.Error("template with missing attribute succeeded")
	}
	if _, err := SplitByTemplate([]*Relation{ab}, []string{"A"}); err == nil {
		t.Error("one-attribute template succeeded")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRel(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "R")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != r.Len() || !back.Schema().Equal(r.Schema()) {
		t.Fatalf("round trip mismatch: %v vs %v", back, r)
	}
	for i := 0; i < r.Len(); i++ {
		if !back.Row(i).Equal(r.Row(i)) {
			t.Errorf("row %d = %v, want %v", i, back.Row(i), r.Row(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewReader(nil), "R"); err == nil {
		t.Error("empty CSV succeeded")
	}
	bad := "a,b\n1\n"
	if _, err := ReadCSV(bytes.NewReader([]byte(bad)), "R"); err == nil {
		t.Error("short record succeeded")
	}
	bad2 := "a,b\n1,xyz\n"
	if _, err := ReadCSV(bytes.NewReader([]byte(bad2)), "R"); err == nil {
		t.Error("non-integer field succeeded")
	}
}
