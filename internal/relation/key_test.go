package relation

import (
	"math/rand"
	"sync"
	"testing"
)

// randTuple draws a tuple whose values collide often (small domain), so
// the reference map sees plenty of repeated keys.
func randTuple(r *rand.Rand, arity int) Tuple {
	t := make(Tuple, arity)
	for i := range t {
		t[i] = Value(r.Intn(8) - 2) // include negatives
	}
	return t
}

// checkCounterAgainstReference drives a KeyCounter and a reference
// map[string]int (keyed by TupleKey, the pre-refactor scheme) through
// the same random operation stream and fails on any divergence.
func checkCounterAgainstReference(t *testing.T, seed int64, degrade uint64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for _, arity := range []int{1, 2, 3, 5} {
		kc := NewKeyCounter(arity, 0)
		kc.kt.hasher = NewKeyHasher(uint64(seed))
		kc.kt.degradeMask = degrade
		ref := make(map[string]int)
		refOrder := make(map[string]int) // key -> expected handle (insertion rank)
		for op := 0; op < 3000; op++ {
			tu := randTuple(r, arity)
			key := TupleKey(tu)
			switch r.Intn(3) {
			case 0: // Put, or PutNew after an observed miss
				v := r.Intn(100)
				var h int
				if _, seen := ref[key]; !seen && r.Intn(2) == 0 {
					if _, ok := kc.Lookup(tu, nil); ok {
						t.Fatalf("arity %d op %d: Lookup hit on unseen key", arity, op)
					}
					h = kc.PutNew(tu, nil, v)
				} else {
					h = kc.Put(tu, nil, v)
				}
				if _, seen := ref[key]; !seen {
					refOrder[key] = len(refOrder)
				}
				ref[key] = v
				if h != refOrder[key] {
					t.Fatalf("arity %d op %d: Put handle %d, want insertion rank %d", arity, op, h, refOrder[key])
				}
			case 1: // Add
				h, c := kc.Add(tu, nil, 1)
				if _, seen := ref[key]; !seen {
					refOrder[key] = len(refOrder)
				}
				ref[key]++
				if c != ref[key] || h != refOrder[key] {
					t.Fatalf("arity %d op %d: Add = (%d,%d), want (%d,%d)", arity, op, h, c, refOrder[key], ref[key])
				}
			case 2: // Get
				v, ok := kc.Get(tu, nil)
				rv, rok := ref[key]
				if ok != rok || v != rv {
					t.Fatalf("arity %d op %d: Get = (%d,%v), want (%d,%v)", arity, op, v, ok, rv, rok)
				}
			}
		}
		if kc.Len() != len(ref) {
			t.Fatalf("arity %d: Len = %d, want %d", arity, kc.Len(), len(ref))
		}
		// Every entry's stored key must round-trip.
		for key, rank := range refOrder {
			if got := TupleKey(kc.KeyAt(rank)); got != key {
				t.Fatalf("arity %d: KeyAt(%d) mismatch", arity, rank)
			}
			if kc.At(rank) != ref[key] {
				t.Fatalf("arity %d: At(%d) = %d, want %d", arity, rank, kc.At(rank), ref[key])
			}
		}
	}
}

// TestKeyCounterMatchesReference runs the equivalence property on
// several seeds with a healthy hash.
func TestKeyCounterMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		checkCounterAgainstReference(t, seed, 0)
	}
}

// TestKeyCounterForcedCollisions degrades the hash to 2 bits (every
// table sees constant collision chains), proving correctness rests on
// the exact tuple-equality verification, not on fingerprint quality.
func TestKeyCounterForcedCollisions(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		checkCounterAgainstReference(t, seed, 0x3)
	}
	// Near-total degradation: a 1-bit hash puts every tuple on one of
	// two collision chains.
	func() {
		r := rand.New(rand.NewSource(7))
		kc := NewKeyCounter(2, 0)
		kc.kt.degradeMask = 1
		ref := make(map[string]int)
		for i := 0; i < 500; i++ {
			tu := randTuple(r, 2)
			kc.Add(tu, nil, 1)
			ref[TupleKey(tu)]++
		}
		for k, v := range ref {
			var tu Tuple
			for i := 0; i < len(k); i += 8 {
				var u uint64
				for b := 0; b < 8; b++ {
					u = u<<8 | uint64(k[i+b])
				}
				tu = append(tu, Value(u))
			}
			if got, ok := kc.Get(tu, nil); !ok || got != v {
				t.Fatalf("1-bit hash: Get = (%d,%v), want (%d,true)", got, ok, v)
			}
		}
	}()
}

// TestKeySetProjMatchesReference checks projected membership against
// materialized projections under a degraded hash.
func TestKeySetProjMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const arity, width = 3, 6
	proj := []int{4, 0, 2} // projection positions inside a width-6 tuple
	set := NewKeySet(arity, 0)
	set.kt.degradeMask = 0x7
	ref := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		wide := randTuple(r, width)
		narrow := Tuple{wide[proj[0]], wide[proj[1]], wide[proj[2]]}
		if r.Intn(2) == 0 {
			set.InsertProj(wide, proj)
			ref[TupleKey(narrow)] = true
		} else {
			if got, want := set.ContainsProj(wide, proj), ref[TupleKey(narrow)]; got != want {
				t.Fatalf("op %d: ContainsProj = %v, want %v", i, got, want)
			}
			if got, want := set.Contains(narrow), ref[TupleKey(narrow)]; got != want {
				t.Fatalf("op %d: Contains = %v, want %v", i, got, want)
			}
		}
	}
	if set.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", set.Len(), len(ref))
	}
}

// FuzzKeyCounter feeds arbitrary byte streams as tuple/op sequences
// through the counter and the TupleKey reference map.
func FuzzKeyCounter(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 255, 2, 255, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const arity = 2
		kc := NewKeyCounter(arity, 0)
		kc.kt.degradeMask = 0xf // keep collisions frequent
		ref := make(map[string]int)
		for i := 0; i+arity < len(data); i += arity + 1 {
			tu := Tuple{Value(int8(data[i])), Value(int8(data[i+1]))}
			key := TupleKey(tu)
			switch data[i+arity] % 3 {
			case 0:
				kc.Put(tu, nil, int(data[i+arity]))
				ref[key] = int(data[i+arity])
			case 1:
				kc.Add(tu, nil, 1)
				ref[key]++
			case 2:
				v, ok := kc.Get(tu, nil)
				rv, rok := ref[key]
				if ok != rok || v != rv {
					t.Fatalf("Get = (%d,%v), want (%d,%v)", v, ok, rv, rok)
				}
			}
		}
		if kc.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", kc.Len(), len(ref))
		}
	})
}

// TestConcurrentFirstIndexUse builds a relation's index from many
// goroutines at once; under -race it verifies the atomic exactly-once
// publish in Relation.Index.
func TestConcurrentFirstIndexUse(t *testing.T) {
	r := New("R", NewSchema("a", "b"))
	for i := 0; i < 1000; i++ {
		r.AppendValues(Value(i%17), Value(i))
	}
	var wg sync.WaitGroup
	bad := make([]bool, 8)
	for w := range bad {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < 17; v++ {
				if d := r.Degree(0, Value(v)); d < 58 || d > 59 {
					bad[w] = true
				}
			}
		}(w)
	}
	wg.Wait()
	for w, b := range bad {
		if b {
			t.Fatalf("worker %d saw wrong degrees", w)
		}
	}
}
