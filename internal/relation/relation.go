package relation

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Relation is an in-memory table: a schema plus rows stored row-major in
// one flat slice (stride = arity). CSR hash indexes over single
// attributes (see Index) are built on first use and cached; they serve
// the joinability lookups that the paper implements with hash tables
// (§3.2).
//
// Mutation (Append) and sampling must not overlap, but concurrent
// readers are safe even on first index use: the index set is published
// through an atomic pointer and built under a mutex, so a fresh
// relation shared by several sampling goroutines builds each index
// exactly once.
type Relation struct {
	name   string
	schema *Schema
	data   []Value // row-major, len = rows*arity

	// indexes is the current immutable set of per-attribute CSR indexes
	// (entry a nil until built). Replaced wholesale on build and on
	// Append invalidation.
	indexes atomic.Pointer[[]*Index]
	mu      sync.Mutex // serializes index building

	// version counts Appends since index build; cached structures
	// derived from this relation (join membership tables) compare it to
	// detect staleness.
	version atomic.Uint64
}

// New returns an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// FromTuples builds a relation from explicit rows, validating arity.
func FromTuples(name string, schema *Schema, rows []Tuple) (*Relation, error) {
	r := New(name, schema)
	for i, t := range rows {
		if len(t) != schema.Len() {
			return nil, fmt.Errorf("relation %s: row %d has arity %d, want %d", name, i, len(t), schema.Len())
		}
		r.data = append(r.data, t...)
	}
	return r, nil
}

// MustFromTuples is FromTuples for programmer-constructed fixtures; it
// panics on arity mismatch.
func MustFromTuples(name string, schema *Schema, rows []Tuple) *Relation {
	r, err := FromTuples(name, schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len reports the number of rows.
func (r *Relation) Len() int {
	if r.schema.Len() == 0 {
		return 0
	}
	return len(r.data) / r.schema.Len()
}

// Arity reports the number of attributes.
func (r *Relation) Arity() int { return r.schema.Len() }

// Row returns row i as a Tuple sharing the relation's backing array.
// Callers must not mutate it; use Row(i).Clone() to keep a copy.
func (r *Relation) Row(i int) Tuple {
	k := r.schema.Len()
	return Tuple(r.data[i*k : (i+1)*k : (i+1)*k])
}

// Append adds a row. It invalidates any built indexes and bumps the
// relation's version so caches built over the old contents (join
// membership tables) rebuild on next use; load all data before
// sampling. Append must not run concurrently with readers.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.schema.Len() {
		panic(fmt.Sprintf("relation %s: append arity %d, want %d", r.name, len(t), r.schema.Len()))
	}
	r.data = append(r.data, t...)
	r.version.Add(1)
	if r.indexes.Load() != nil {
		r.indexes.Store(nil)
	}
}

// AppendValues adds a row given as individual values.
func (r *Relation) AppendValues(vs ...Value) { r.Append(Tuple(vs)) }

// Version counts mutations; caches derived from this relation compare
// it to detect staleness.
func (r *Relation) Version() uint64 { return r.version.Load() }

// Value returns the value of attribute position a in row i.
func (r *Relation) Value(i, a int) Value {
	return r.data[i*r.schema.Len()+a]
}

// Index returns (building if needed) the CSR hash index over the
// attribute at position a. First use from several goroutines builds the
// index exactly once; a built index is immutable.
func (r *Relation) Index(a int) *Index {
	if set := r.indexes.Load(); set != nil && (*set)[a] != nil {
		return (*set)[a]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.indexes.Load()
	if old != nil && (*old)[a] != nil {
		return (*old)[a]
	}
	next := make([]*Index, r.schema.Len())
	if old != nil {
		copy(next, *old)
	}
	next[a] = buildIndex(r, a)
	r.indexes.Store(&next)
	return next[a]
}

// IndexByName is Index keyed by attribute name.
func (r *Relation) IndexByName(attr string) (*Index, error) {
	a := r.schema.Index(attr)
	if a < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, attr)
	}
	return r.Index(a), nil
}

// Matches returns the row ids whose attribute at position a equals v,
// ascending. The returned slice is shared with the index; do not mutate
// it.
func (r *Relation) Matches(a int, v Value) []int {
	return r.Index(a).Rows(v)
}

// Degree returns the number of rows whose attribute at position a
// equals v — the d_A(v, R) of the paper.
func (r *Relation) Degree(a int, v Value) int {
	return r.Index(a).Degree(v)
}

// MaxDegree returns the maximum value frequency in attribute position a
// — the M_A(R) of Olken's bound. It is 0 for an empty relation.
func (r *Relation) MaxDegree(a int) int {
	return r.Index(a).MaxDegree()
}

// DistinctCount returns the number of distinct values in attribute
// position a.
func (r *Relation) DistinctCount(a int) int {
	return r.Index(a).Distinct()
}

// Tuples returns a copy of all rows.
func (r *Relation) Tuples() []Tuple {
	n := r.Len()
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = r.Row(i).Clone()
	}
	return out
}

// Filter returns a new relation keeping only rows for which pred is
// true. The result shares no storage with r.
func (r *Relation) Filter(name string, pred Predicate) *Relation {
	out := New(name, r.schema)
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		if pred.Eval(row, r.schema) {
			out.data = append(out.data, row...)
		}
	}
	return out
}

// Project returns a new relation with only the named attributes, in the
// given order. Duplicate rows are retained.
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	idx, err := r.schema.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, NewSchema(attrs...))
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		for _, j := range idx {
			out.data = append(out.data, row[j])
		}
	}
	return out, nil
}

// DistinctProject is Project with duplicate elimination.
func (r *Relation) DistinctProject(name string, attrs []string) (*Relation, error) {
	p, err := r.Project(name, attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, p.schema)
	n := p.Len()
	seen := NewKeySet(p.schema.Len(), n)
	for i := 0; i < n; i++ {
		row := p.Row(i)
		if !seen.Insert(row) {
			continue
		}
		out.data = append(out.data, row...)
	}
	return out, nil
}

// appendTupleKey encodes a tuple as a fixed-width byte key.
func appendTupleKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		u := uint64(v)
		dst = append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return dst
}

// TupleKey returns a string key uniquely identifying t's values; two
// tuples of the same arity have equal keys iff they are Equal. The
// sampling hot path uses KeySet/KeyCounter instead; TupleKey remains
// the reference encoding (and serves the warm-up's exact overlap
// computation, where a string map over all result tuples is fine).
func TupleKey(t Tuple) string {
	return string(appendTupleKey(nil, t))
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, r.Len())
}
