package relation

import (
	"fmt"
)

// Relation is an in-memory table: a schema plus rows stored row-major in
// one flat slice (stride = arity). Hash indexes over single attributes
// are built lazily and cached; they serve the joinability lookups that
// the paper implements with hash tables (§3.2).
type Relation struct {
	name   string
	schema *Schema
	data   []Value // row-major, len = rows*arity

	// indexes[attr position] maps a value to the row ids holding it.
	indexes map[int]map[Value][]int
}

// New returns an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{
		name:    name,
		schema:  schema,
		indexes: make(map[int]map[Value][]int),
	}
}

// FromTuples builds a relation from explicit rows, validating arity.
func FromTuples(name string, schema *Schema, rows []Tuple) (*Relation, error) {
	r := New(name, schema)
	for i, t := range rows {
		if len(t) != schema.Len() {
			return nil, fmt.Errorf("relation %s: row %d has arity %d, want %d", name, i, len(t), schema.Len())
		}
		r.data = append(r.data, t...)
	}
	return r, nil
}

// MustFromTuples is FromTuples for programmer-constructed fixtures; it
// panics on arity mismatch.
func MustFromTuples(name string, schema *Schema, rows []Tuple) *Relation {
	r, err := FromTuples(name, schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len reports the number of rows.
func (r *Relation) Len() int {
	if r.schema.Len() == 0 {
		return 0
	}
	return len(r.data) / r.schema.Len()
}

// Arity reports the number of attributes.
func (r *Relation) Arity() int { return r.schema.Len() }

// Row returns row i as a Tuple sharing the relation's backing array.
// Callers must not mutate it; use Row(i).Clone() to keep a copy.
func (r *Relation) Row(i int) Tuple {
	k := r.schema.Len()
	return Tuple(r.data[i*k : (i+1)*k : (i+1)*k])
}

// Append adds a row. It invalidates any lazily built indexes, so load
// all data before sampling.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.schema.Len() {
		panic(fmt.Sprintf("relation %s: append arity %d, want %d", r.name, len(t), r.schema.Len()))
	}
	r.data = append(r.data, t...)
	if len(r.indexes) > 0 {
		r.indexes = make(map[int]map[Value][]int)
	}
}

// AppendValues adds a row given as individual values.
func (r *Relation) AppendValues(vs ...Value) { r.Append(Tuple(vs)) }

// Value returns the value of attribute position a in row i.
func (r *Relation) Value(i, a int) Value {
	return r.data[i*r.schema.Len()+a]
}

// Index returns (building if needed) the hash index over the attribute
// at position a: value -> sorted slice of row ids.
func (r *Relation) Index(a int) map[Value][]int {
	if idx, ok := r.indexes[a]; ok {
		return idx
	}
	idx := make(map[Value][]int)
	n := r.Len()
	for i := 0; i < n; i++ {
		v := r.Value(i, a)
		idx[v] = append(idx[v], i)
	}
	r.indexes[a] = idx
	return idx
}

// IndexByName is Index keyed by attribute name.
func (r *Relation) IndexByName(attr string) (map[Value][]int, error) {
	a := r.schema.Index(attr)
	if a < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, attr)
	}
	return r.Index(a), nil
}

// Matches returns the row ids whose attribute at position a equals v.
// The returned slice is shared with the index; do not mutate it.
func (r *Relation) Matches(a int, v Value) []int {
	return r.Index(a)[v]
}

// Degree returns the number of rows whose attribute at position a
// equals v — the d_A(v, R) of the paper.
func (r *Relation) Degree(a int, v Value) int {
	return len(r.Index(a)[v])
}

// MaxDegree returns the maximum value frequency in attribute position a
// — the M_A(R) of Olken's bound. It is 0 for an empty relation.
func (r *Relation) MaxDegree(a int) int {
	max := 0
	for _, rows := range r.Index(a) {
		if len(rows) > max {
			max = len(rows)
		}
	}
	return max
}

// DistinctCount returns the number of distinct values in attribute
// position a.
func (r *Relation) DistinctCount(a int) int {
	return len(r.Index(a))
}

// Tuples returns a copy of all rows.
func (r *Relation) Tuples() []Tuple {
	n := r.Len()
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = r.Row(i).Clone()
	}
	return out
}

// Filter returns a new relation keeping only rows for which pred is
// true. The result shares no storage with r.
func (r *Relation) Filter(name string, pred Predicate) *Relation {
	out := New(name, r.schema)
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		if pred.Eval(row, r.schema) {
			out.data = append(out.data, row...)
		}
	}
	return out
}

// Project returns a new relation with only the named attributes, in the
// given order. Duplicate rows are retained.
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	idx, err := r.schema.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, NewSchema(attrs...))
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		for _, j := range idx {
			out.data = append(out.data, row[j])
		}
	}
	return out, nil
}

// DistinctProject is Project with duplicate elimination.
func (r *Relation) DistinctProject(name string, attrs []string) (*Relation, error) {
	p, err := r.Project(name, attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, p.schema)
	seen := make(map[string]struct{}, p.Len())
	var keyBuf []byte
	n := p.Len()
	for i := 0; i < n; i++ {
		row := p.Row(i)
		keyBuf = appendTupleKey(keyBuf[:0], row)
		if _, ok := seen[string(keyBuf)]; ok {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		out.data = append(out.data, row...)
	}
	return out, nil
}

// appendTupleKey encodes a tuple as a fixed-width byte key.
func appendTupleKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		u := uint64(v)
		dst = append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return dst
}

// TupleKey returns a string key uniquely identifying t's values; two
// tuples of the same arity have equal keys iff they are Equal.
func TupleKey(t Tuple) string {
	return string(appendTupleKey(nil, t))
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, r.Len())
}
