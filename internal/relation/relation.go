package relation

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Relation is an in-memory table: a schema plus rows stored columnar —
// one contiguous []Value vector per attribute. CSR hash indexes over
// single attributes (see Index) are built on first use and cached; they
// serve the joinability lookups that the paper implements with hash
// tables (§3.2).
//
// Relations are live: Append/AppendRows/Delete may run concurrently
// with readers. Row storage is published through an immutable snapshot
// behind an atomic pointer — appends only ever write into capacity no
// published snapshot can reach, and deletes tombstone rows in a
// copy-on-write bitset, so a reader always observes a consistent view.
// Row ids are stable forever (storage is monotone; deleted rows keep
// their slot and values), which is what lets index row lists, join
// membership tables, and sampler state survive mutations and reconcile
// incrementally instead of rebuilding.
//
// Each mutation bumps Version and (once any derived structure exists)
// appends to a bounded mutation log. Derived structures — the
// per-attribute indexes here, join membership tables and cyclic
// residuals in internal/join — record the version they were built at
// and catch up by replaying the log tail; when the tail is gone or too
// large they rebuild from scratch.
type Relation struct {
	name   string
	schema *Schema

	// snap is the current immutable row storage view.
	snap atomic.Pointer[snapshot]

	// indexes is the current immutable set of per-attribute CSR(+delta)
	// indexes (entry a nil until built). Replaced wholesale whenever an
	// index is built or caught up to a new version.
	indexes atomic.Pointer[[]*Index]
	mu      sync.Mutex // serializes mutations, the log, and index building

	// version counts mutations; cached structures derived from this
	// relation compare it to detect staleness.
	version atomic.Uint64

	// Mutation log, guarded by mu. logOn flips true when the first
	// derived structure is built (bulk loading before that costs no log
	// traffic); entries cover versions logStart+1 .. logStart+len(log).
	logOn    bool
	logStart uint64
	log      []Mutation

	// sink, when set, receives every mutation synchronously as it is
	// logged — the write-ahead tee for durability (internal/wal).
	// Guarded by mu like the log itself.
	sink MutationSink

	// testDegrade, when non-zero, collapses the index hash space so
	// collision paths are exercised; see SetIndexHashDegradeForTest.
	testDegrade uint64
}

// MutationSink observes every mutation of a relation, synchronously,
// in version order, with version the value Version() reports after the
// mutation. The relation's mutation lock is held during the call: the
// sink must not call back into the relation. Unlike the bounded
// in-memory log, a sink always receives Vals — for appends they are
// gathered from the just-published snapshot — so it can serialize the
// mutation without touching storage. Treat m.Vals as read-only.
type MutationSink interface {
	LogMutation(version uint64, m Mutation)
	// LogAppendBatch is the bulk-append tee: rows [start, start+n) were
	// just appended as one batch, producing versions (version-n,
	// version]. cols are the just-published column vectors, so the sink
	// reads the appended values in place — no per-row gather. tag is the
	// batch's idempotency tag ("" for untagged appends); a durable sink
	// records it with the batch so retry deduplication survives a
	// restart. Treat cols as read-only.
	LogAppendBatch(version uint64, start, n int, cols [][]Value, tag string)
}

// snapshot is one immutable view of the row storage: one column vector
// per attribute, each with len == rows. Appends beyond rows write only
// into spare column capacity, so sharing the backing arrays between
// snapshots is safe — exactly the discipline the old row-major flat
// slice used, per column.
type snapshot struct {
	cols [][]Value
	rows int      // physical row count, dead rows included
	dead []uint64 // tombstone bitset (nil = no deletions); immutable
	live int      // live row count
}

func (s *snapshot) isLive(i int) bool {
	w := i >> 6
	if w >= len(s.dead) {
		return true
	}
	return s.dead[w]&(1<<(uint(i)&63)) == 0
}

// MutKind distinguishes mutation log entries.
type MutKind uint8

const (
	// MutAppend records a row append; the row's values live in storage.
	MutAppend MutKind = iota
	// MutDelete records a row tombstone; Vals carries the dead row's
	// values, gathered from the column vectors at delete time.
	MutDelete
)

// Mutation is one entry of the relation's mutation log, replayed by
// derived structures (indexes, membership tables, residuals) to catch
// up incrementally. Treat Vals as read-only.
type Mutation struct {
	Kind MutKind
	Row  int
	Vals Tuple // MutDelete only
}

// maxLogLen bounds the mutation log; structures further behind than the
// retained tail rebuild from scratch.
const maxLogLen = 4096

// New returns an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	r := &Relation{name: name, schema: schema}
	r.snap.Store(&snapshot{cols: make([][]Value, schema.Len())})
	return r
}

// FromTuples builds a relation from explicit rows, validating arity.
func FromTuples(name string, schema *Schema, rows []Tuple) (*Relation, error) {
	r := New(name, schema)
	for i, t := range rows {
		if len(t) != schema.Len() {
			return nil, fmt.Errorf("relation %s: row %d has arity %d, want %d", name, i, len(t), schema.Len())
		}
	}
	r.AppendRows(rows)
	return r, nil
}

// MustFromTuples is FromTuples for programmer-constructed fixtures; it
// panics on arity mismatch.
func MustFromTuples(name string, schema *Schema, rows []Tuple) *Relation {
	r, err := FromTuples(name, schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len reports the physical number of rows, tombstoned rows included:
// Row(i) is valid for 0 <= i < Len(). Use LiveLen for the logical
// cardinality; the two agree unless Delete was called.
func (r *Relation) Len() int { return r.snap.Load().rows }

// LiveLen reports the number of live (non-deleted) rows.
func (r *Relation) LiveLen() int { return r.snap.Load().live }

// HasDeleted reports whether any row has ever been deleted.
func (r *Relation) HasDeleted() bool { return r.snap.Load().dead != nil }

// Live reports whether row i has not been deleted.
func (r *Relation) Live(i int) bool { return r.snap.Load().isLive(i) }

// Arity reports the number of attributes.
func (r *Relation) Arity() int { return r.schema.Len() }

// Row returns row i as a freshly allocated Tuple gathered from the
// column vectors. It is the convenience accessor for cold paths; hot
// paths read Cols (or RowInto) to stay allocation-free. The values a
// row id denotes stay valid forever: storage is monotone and deleted
// rows keep their values.
func (r *Relation) Row(i int) Tuple {
	s := r.snap.Load()
	out := make(Tuple, len(s.cols))
	for a, c := range s.cols {
		out[a] = c[i]
	}
	return out
}

// RowInto gathers row i into out (which must have the relation's
// arity) without allocating.
func (r *Relation) RowInto(i int, out Tuple) {
	for a, c := range r.snap.Load().cols {
		out[a] = c[i]
	}
}

// Cols returns the current snapshot's column vectors: one []Value per
// attribute, each of length Len() as of the same consistent snapshot.
// The slices are immutable — treat them as read-only. They stay valid
// forever (storage is monotone; deleted rows keep their values), though
// later appends are only visible through a fresh Cols call.
func (r *Relation) Cols() [][]Value {
	return r.snap.Load().cols
}

// Append adds a row. Built indexes are not invalidated: they absorb the
// change through their delta overlay on next use. The relation's
// version moves so caches built over the old contents reconcile on next
// use. Safe to call concurrently with readers; see the package
// visibility contract in the README for what concurrent draws observe.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.schema.Len() {
		panic(fmt.Sprintf("relation %s: append arity %d, want %d", r.name, len(t), r.schema.Len()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.appendLocked(t)
}

// AppendRows adds a batch of rows under one lock acquisition and one
// snapshot publish — the fast path for streaming ingest.
func (r *Relation) AppendRows(rows []Tuple) { r.AppendRowsTagged(rows, "") }

// AppendRowsTagged is AppendRows carrying an idempotency tag through to
// the mutation sink: a durable sink persists the tag with the batch
// record, so the serving layer's retry deduplication survives restarts
// and replication. The tag does not affect the in-memory append.
func (r *Relation) AppendRowsTagged(rows []Tuple, tag string) {
	if len(rows) == 0 {
		return
	}
	k := r.schema.Len()
	for i, t := range rows {
		if len(t) != k {
			panic(fmt.Sprintf("relation %s: append row %d arity %d, want %d", r.name, i, len(t), k))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	first := s.rows
	cols := make([][]Value, k)
	for a := range cols {
		col := s.cols[a]
		if n := len(col) + len(rows); cap(col) < n {
			grown := make([]Value, len(col), growCap(cap(col), n))
			copy(grown, col)
			col = grown
		}
		for _, t := range rows {
			col = append(col, t[a])
		}
		cols[a] = col
	}
	r.snap.Store(&snapshot{cols: cols, rows: s.rows + len(rows), dead: s.dead, live: s.live + len(rows)})
	r.logAppendBatch(first, len(rows), tag)
}

// AppendRowIDs appends the given rows of src — which must have the
// receiver's arity — column-at-a-time: one lock, one snapshot, and a
// per-column copy loop with no row materialization. It is the bulk
// path behind Filter, Partition, and the splits.
func (r *Relation) AppendRowIDs(src *Relation, ids []int) {
	if len(ids) == 0 {
		return
	}
	k := r.schema.Len()
	srcCols := src.Cols()
	if len(srcCols) != k {
		panic(fmt.Sprintf("relation %s: AppendRowIDs from arity %d, want %d", r.name, len(srcCols), k))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	first := s.rows
	cols := make([][]Value, k)
	for a := range cols {
		col := s.cols[a]
		if n := len(col) + len(ids); cap(col) < n {
			grown := make([]Value, len(col), growCap(cap(col), n))
			copy(grown, col)
			col = grown
		}
		sc := srcCols[a]
		for _, i := range ids {
			col = append(col, sc[i])
		}
		cols[a] = col
	}
	r.snap.Store(&snapshot{cols: cols, rows: s.rows + len(ids), dead: s.dead, live: s.live + len(ids)})
	r.logAppendBatch(first, len(ids), "")
}

// growCap doubles capacity until it covers need (minimum 8), keeping
// column growth amortized-constant under streaming appends.
func growCap(cur, need int) int {
	if cur < 8 {
		cur = 8
	}
	for cur < need {
		cur *= 2
	}
	return cur
}

// appendLocked appends one row; callers hold r.mu.
func (r *Relation) appendLocked(t Tuple) {
	s := r.snap.Load()
	cols := make([][]Value, len(s.cols))
	for a := range cols {
		cols[a] = append(s.cols[a], t[a])
	}
	r.snap.Store(&snapshot{cols: cols, rows: s.rows + 1, dead: s.dead, live: s.live + 1})
	r.logMutation(Mutation{Kind: MutAppend, Row: s.rows})
}

// AppendValues adds a row given as individual values.
func (r *Relation) AppendValues(vs ...Value) { r.Append(Tuple(vs)) }

// Delete tombstones row i and reports whether it was live. The row's
// slot and values remain (readers holding its id stay safe); it simply
// stops matching index probes, membership tests, and enumeration.
func (r *Relation) Delete(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	if i < 0 || i >= s.rows || !s.isLive(i) {
		return false
	}
	words := (s.rows + 63) / 64
	dead := make([]uint64, words)
	copy(dead, s.dead)
	dead[i>>6] |= 1 << (uint(i) & 63)
	vals := make(Tuple, len(s.cols))
	for a, c := range s.cols {
		vals[a] = c[i]
	}
	r.snap.Store(&snapshot{cols: s.cols, rows: s.rows, dead: dead, live: s.live - 1})
	r.logMutation(Mutation{Kind: MutDelete, Row: i, Vals: vals})
	return true
}

// logMutation bumps the version, tees into the registered sink, and,
// when logging is on, appends to the bounded log; callers hold r.mu.
func (r *Relation) logMutation(m Mutation) {
	v := r.version.Add(1)
	if r.sink != nil {
		sm := m
		if sm.Vals == nil {
			// Appends log no values (storage has them); a sink needs
			// them to serialize the mutation, so gather from the
			// just-published snapshot. The in-memory log entry below
			// keeps its lean no-Vals shape.
			s := r.snap.Load()
			vals := make(Tuple, len(s.cols))
			for a, c := range s.cols {
				vals[a] = c[sm.Row]
			}
			sm.Vals = vals
		}
		r.sink.LogMutation(v, sm)
	}
	if !r.logOn {
		r.logStart = v
		return
	}
	r.log = append(r.log, m)
	if len(r.log) > maxLogLen {
		drop := len(r.log) / 2
		kept := make([]Mutation, len(r.log)-drop)
		copy(kept, r.log[drop:])
		r.log = kept
		r.logStart += uint64(drop)
	}
}

// logAppendBatch is logMutation for a contiguous batch of appends over
// the just-published snapshot: the version advances by n in one step,
// the sink sees one batched record (the WAL tee's amortization — per-row
// framing would dominate bulk ingest), and the in-memory log gets its
// usual per-row entries; callers hold r.mu.
func (r *Relation) logAppendBatch(first, n int, tag string) {
	if n == 0 {
		return
	}
	v := r.version.Add(uint64(n))
	if r.sink != nil {
		r.sink.LogAppendBatch(v, first, n, r.snap.Load().cols, tag)
	}
	if !r.logOn {
		r.logStart = v
		return
	}
	for i := 0; i < n; i++ {
		r.log = append(r.log, Mutation{Kind: MutAppend, Row: first + i})
	}
	for len(r.log) > maxLogLen {
		drop := len(r.log) / 2
		kept := make([]Mutation, len(r.log)-drop)
		copy(kept, r.log[drop:])
		r.log = kept
		r.logStart += uint64(drop)
	}
}

// SetMutationSink registers (or, with nil, removes) the relation's
// mutation sink. At most one sink is supported; the write-ahead layer
// owns it.
func (r *Relation) SetMutationSink(s MutationSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// EnableMutationLog starts recording mutations so derived structures
// built from the current contents can catch up incrementally. Building
// an index enables it automatically; join membership tables and
// residual materializations call it explicitly.
func (r *Relation) EnableMutationLog() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enableLogLocked()
}

func (r *Relation) enableLogLocked() {
	if r.logOn {
		return
	}
	r.logOn = true
	r.logStart = r.version.Load()
	r.log = nil
}

// MutationsSince returns a copy of the log tail covering versions
// (since, upTo], where upTo is the relation's version at the time of
// the call. ok is false when the tail is no longer retained (the caller
// rebuilds from scratch).
func (r *Relation) MutationsSince(since uint64) (tail []Mutation, upTo uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	upTo = r.version.Load()
	if since == upTo {
		return nil, upTo, true
	}
	if !r.logOn || since < r.logStart || since > upTo {
		return nil, upTo, false
	}
	tail = make([]Mutation, upTo-since)
	copy(tail, r.log[since-r.logStart:])
	return tail, upTo, true
}

// LiveRows returns the live row ids, the physical row count, and the
// exact version they reflect, captured atomically with respect to
// mutations. It also enables the mutation log, so a derived structure
// built from the returned rows can later catch up from the returned
// version without missing or double-applying a mutation. Row ids stay
// valid forever (storage is monotone), so callers may read Row(id)
// lock-free afterwards.
func (r *Relation) LiveRows() (ids []int, phys int, version uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enableLogLocked()
	s := r.snap.Load()
	ids = make([]int, 0, s.live)
	for i := 0; i < s.rows; i++ {
		if s.isLive(i) {
			ids = append(ids, i)
		}
	}
	return ids, s.rows, r.version.Load()
}

// ResetCaches drops the cached indexes and the mutation log, so every
// derived structure rebuilds from scratch on next use. It exists for
// benchmarks and tests that compare incremental maintenance against the
// rebuild-everything baseline; production code never needs it.
func (r *Relation) ResetCaches() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.indexes.Store(nil)
	r.log = nil
	r.logOn = false
}

// SetIndexHashDegradeForTest collapses the hash space of indexes built
// afterwards (mask ANDed onto every fingerprint), forcing collisions so
// equality-verification paths are exercised. Test-only.
func (r *Relation) SetIndexHashDegradeForTest(mask uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.testDegrade = mask
	r.indexes.Store(nil)
}

// Version counts mutations; caches derived from this relation compare
// it to detect staleness.
func (r *Relation) Version() uint64 { return r.version.Load() }

// Value returns the value of attribute position a in row i.
func (r *Relation) Value(i, a int) Value {
	return r.snap.Load().cols[a][i]
}

// Index returns the CSR(+delta) hash index over the attribute at
// position a, building or catching it up as needed. First use from
// several goroutines — including the first build of a delta overlay
// after a mutation — builds exactly once behind r.mu; a published index
// is immutable, so concurrent probes are safe.
func (r *Relation) Index(a int) *Index {
	if set := r.indexes.Load(); set != nil {
		if ix := (*set)[a]; ix != nil && ix.version == r.version.Load() {
			return ix
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.version.Load() // stable: mutations hold r.mu
	old := r.indexes.Load()
	var prev *Index
	if old != nil {
		prev = (*old)[a]
	}
	if prev != nil && prev.version == v {
		return prev
	}
	r.enableLogLocked()
	s := r.snap.Load()
	var next *Index
	if prev != nil {
		if tail, upTo, ok := r.mutationsSinceLocked(prev.version); ok && upTo == v {
			next = prev.applyTail(s, a, tail, v)
		}
	}
	if next == nil {
		next = buildIndex(s, a, v, r.testDegrade)
	}
	set := make([]*Index, r.schema.Len())
	if old != nil {
		copy(set, *old)
	}
	set[a] = next
	r.indexes.Store(&set)
	return next
}

// mutationsSinceLocked is MutationsSince for callers already holding
// r.mu.
func (r *Relation) mutationsSinceLocked(since uint64) (tail []Mutation, upTo uint64, ok bool) {
	upTo = r.version.Load()
	if since == upTo {
		return nil, upTo, true
	}
	if !r.logOn || since < r.logStart || since > upTo {
		return nil, upTo, false
	}
	return r.log[since-r.logStart : upTo-r.logStart], upTo, true
}

// IndexByName is Index keyed by attribute name.
func (r *Relation) IndexByName(attr string) (*Index, error) {
	a := r.schema.Index(attr)
	if a < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, attr)
	}
	return r.Index(a), nil
}

// Matches returns the live row ids whose attribute at position a equals
// v, ascending. The returned slice is shared with the index; do not
// mutate it.
func (r *Relation) Matches(a int, v Value) []int {
	return r.Index(a).Rows(v)
}

// Degree returns the number of live rows whose attribute at position a
// equals v — the d_A(v, R) of the paper.
func (r *Relation) Degree(a int, v Value) int {
	return r.Index(a).Degree(v)
}

// MaxDegree returns the maximum value frequency in attribute position a
// — the M_A(R) of Olken's bound. It is 0 for an empty relation.
func (r *Relation) MaxDegree(a int) int {
	return r.Index(a).MaxDegree()
}

// DistinctCount returns the number of distinct values among live rows
// in attribute position a.
func (r *Relation) DistinctCount(a int) int {
	return r.Index(a).Distinct()
}

// Tuples returns a copy of all live rows.
func (r *Relation) Tuples() []Tuple {
	s := r.snap.Load()
	out := make([]Tuple, 0, s.live)
	flat := make([]Value, 0, s.live*len(s.cols))
	for i := 0; i < s.rows; i++ {
		if !s.isLive(i) {
			continue
		}
		at := len(flat)
		for _, c := range s.cols {
			flat = append(flat, c[i])
		}
		out = append(out, Tuple(flat[at:len(flat):len(flat)]))
	}
	return out
}

// StorageStats describes a relation's columnar storage footprint at one
// snapshot: physical and live row counts plus the bytes backing each
// column vector (allocated capacity, not just the occupied prefix).
type StorageStats struct {
	Rows     int     `json:"rows"`
	LiveRows int     `json:"live_rows"`
	ColBytes []int64 `json:"col_bytes"`
}

// StorageStats reports the current snapshot's storage footprint.
func (r *Relation) StorageStats() StorageStats {
	s := r.snap.Load()
	st := StorageStats{Rows: s.rows, LiveRows: s.live, ColBytes: make([]int64, len(s.cols))}
	for a, c := range s.cols {
		st.ColBytes[a] = int64(cap(c)) * 8
	}
	return st
}

// liveIDs appends the snapshot's live row ids to sel, ascending.
func (s *snapshot) liveIDs(sel []int) []int {
	for i := 0; i < s.rows; i++ {
		if s.isLive(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// ScanWhere returns the live row ids satisfying pred, ascending,
// appended to sel. The scan runs column-at-a-time for the built-in
// predicates (tight per-column loops over a selection vector) and
// falls back to per-row evaluation for foreign Predicate
// implementations.
func (r *Relation) ScanWhere(pred Predicate, sel []int) []int {
	s := r.snap.Load()
	all := s.liveIDs(make([]int, 0, s.live))
	return evalColumns(pred, r.schema, s.cols, all, sel)
}

// Filter returns a new relation keeping only live rows for which pred
// is true. The result shares no storage with r. The scan is
// vectorized and kept rows are copied column-at-a-time in one batch —
// one lock, one snapshot.
func (r *Relation) Filter(name string, pred Predicate) *Relation {
	out := New(name, r.schema)
	out.AppendRowIDs(r, r.ScanWhere(pred, nil))
	return out
}

// Project returns a new relation with only the named attributes, in the
// given order. Duplicate rows are retained; dead rows are dropped.
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	idx, err := r.schema.Project(attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, NewSchema(attrs...))
	s := r.snap.Load()
	live := s.liveIDs(make([]int, 0, s.live))
	cols := make([][]Value, len(idx))
	for k, j := range idx {
		src := s.cols[j]
		col := make([]Value, len(live))
		for n, i := range live {
			col[n] = src[i]
		}
		cols[k] = col
	}
	out.mu.Lock()
	defer out.mu.Unlock()
	out.snap.Store(&snapshot{cols: cols, rows: len(live), live: len(live)})
	for i := range live {
		out.logMutation(Mutation{Kind: MutAppend, Row: i})
	}
	return out, nil
}

// DistinctProject is Project with duplicate elimination.
func (r *Relation) DistinctProject(name string, attrs []string) (*Relation, error) {
	p, err := r.Project(name, attrs)
	if err != nil {
		return nil, err
	}
	out := New(name, p.schema)
	n := p.Len()
	seen := NewKeySet(p.schema.Len(), n)
	cols := p.Cols()
	var kept []int
	for i := 0; i < n; i++ {
		if seen.InsertRow(cols, i, nil) {
			kept = append(kept, i)
		}
	}
	out.AppendRowIDs(p, kept)
	return out, nil
}

// appendTupleKey encodes a tuple as a fixed-width byte key.
func appendTupleKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		u := uint64(v)
		dst = append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return dst
}

// TupleKey returns a string key uniquely identifying t's values; two
// tuples of the same arity have equal keys iff they are Equal. The
// sampling hot path uses KeySet/KeyCounter instead; TupleKey remains
// the reference encoding (and serves the warm-up's exact overlap
// computation, where a string map over all result tuples is fine).
func TupleKey(t Tuple) string {
	return string(appendTupleKey(nil, t))
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, r.LiveLen())
}
