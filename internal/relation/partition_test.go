package relation

import (
	"testing"
)

func buildPartitioned(t *testing.T, shards int) (*Relation, *Partition) {
	t.Helper()
	r := New("src", NewSchema("K", "X"))
	for i := 0; i < 100; i++ {
		r.AppendValues(Value(i%17), Value(i))
	}
	p, err := NewPartition(r, "K", shards)
	if err != nil {
		t.Fatal(err)
	}
	return r, p
}

// liveRows collects a relation's live tuples by value.
func liveRows(r *Relation) map[string]int {
	out := make(map[string]int)
	for i := 0; i < r.Len(); i++ {
		if r.Live(i) {
			out[TupleKey(r.Row(i))]++
		}
	}
	return out
}

func checkFragments(t *testing.T, src *Relation, p *Partition) {
	t.Helper()
	got := make(map[string]int)
	for s := 0; s < p.Shards(); s++ {
		f := p.Frag(s)
		for i := 0; i < f.Len(); i++ {
			if !f.Live(i) {
				continue
			}
			row := f.Row(i)
			if w := ShardOf(row[0], p.Shards()); w != s {
				t.Fatalf("row %v in fragment %d, hashes to %d", row, s, w)
			}
			got[TupleKey(row)]++
		}
	}
	want := liveRows(src)
	if len(got) != len(want) {
		t.Fatalf("fragments hold %d distinct rows, source has %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %x: %d copies in fragments, %d in source", k, got[k], n)
		}
	}
}

func TestPartitionBuild(t *testing.T) {
	src, p := buildPartitioned(t, 4)
	checkFragments(t, src, p)
	if p.Stale() {
		t.Fatal("fresh partition reports stale")
	}
	nonEmpty := 0
	for s := 0; s < 4; s++ {
		if p.Frag(s).Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("17 distinct keys landed in %d of 4 shards; hash is striping", nonEmpty)
	}
}

func TestPartitionSyncAppendsAndDeletes(t *testing.T) {
	src, p := buildPartitioned(t, 3)
	// Mixed tail: appends, deletes of old rows, and a delete of a row
	// appended in the same tail (exercises the two-pass ordering).
	src.AppendValues(Value(200), Value(1))
	src.AppendValues(Value(201), Value(2))
	src.Delete(0)
	src.Delete(5)
	newRow := src.Len()
	src.AppendValues(Value(202), Value(3))
	src.Delete(newRow) // appended and deleted within one tail
	if !p.Stale() {
		t.Fatal("mutated source not reported stale")
	}
	dirty, ok := p.Sync()
	if !ok {
		t.Fatal("sync lost the log tail unexpectedly")
	}
	anyDirty := false
	for _, d := range dirty {
		anyDirty = anyDirty || d
	}
	if !anyDirty {
		t.Fatal("sync reported no dirty fragments after mutations")
	}
	checkFragments(t, src, p)
	if p.Stale() {
		t.Fatal("synced partition reports stale")
	}
	// A clean re-sync is a no-op.
	if _, ok := p.Sync(); !ok {
		t.Fatal("clean sync lost the tail")
	}
}

func TestPartitionSyncRepeatedRounds(t *testing.T) {
	src, p := buildPartitioned(t, 5)
	for round := 0; round < 8; round++ {
		for i := 0; i < 10; i++ {
			src.AppendValues(Value(300+round*10+i), Value(i))
		}
		src.Delete((round * 7) % src.Len())
		if _, ok := p.Sync(); !ok {
			t.Fatalf("round %d: lost tail", round)
		}
		checkFragments(t, src, p)
	}
}

func TestPartitionSyncLostTail(t *testing.T) {
	src, p := buildPartitioned(t, 2)
	// Overflow the bounded mutation log so the partition's tail is gone.
	rows := make([]Tuple, 0, 6000)
	for i := 0; i < 6000; i++ {
		rows = append(rows, Tuple{Value(i), Value(i)})
	}
	src.AppendRows(rows)
	if _, ok := p.Sync(); ok {
		t.Fatal("sync succeeded across a lost log tail")
	}
	// The caller rebuilds: a fresh partition over the same source works.
	np, err := NewPartition(src, "K", 2)
	if err != nil {
		t.Fatal(err)
	}
	checkFragments(t, src, np)
}

func TestNewPartitionValidation(t *testing.T) {
	r := New("r", NewSchema("A"))
	if _, err := NewPartition(r, "A", 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewPartition(r, "missing", 2); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestShardPredicate(t *testing.T) {
	s := NewSchema("A", "B")
	pred := ShardPredicate{Attr: "B", Shard: ShardOf(7, 3), Shards: 3}
	if !pred.Eval(Tuple{1, 7}, s) {
		t.Fatal("matching row rejected")
	}
	miss := false
	for v := Value(0); v < 20; v++ {
		if ShardOf(v, 3) != pred.Shard && !miss {
			miss = true
			if pred.Eval(Tuple{1, v}, s) {
				t.Fatalf("row with off-shard value %d accepted", v)
			}
		}
	}
	if pred.String() == "" {
		t.Fatal("empty predicate string")
	}
	absent := ShardPredicate{Attr: "C", Shard: 0, Shards: 3}
	if absent.Eval(Tuple{1, 2}, s) {
		t.Fatal("predicate over absent attribute accepted a row")
	}
}

func TestShardOfSpreads(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	for v := Value(0); v < 8000; v++ {
		counts[ShardOf(v, shards)]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("shard %d holds %d of 8000 consecutive values; expected near 1000", s, c)
		}
	}
}
