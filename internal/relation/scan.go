package relation

// This file is the vectorized predicate scan path over the columnar
// storage: predicates evaluate column-at-a-time against a selection
// vector of candidate row ids instead of row-at-a-time against gathered
// tuples. The built-in predicates compose through selection vectors
// (And chains them, Or merges them through a bitmap, Not complements);
// foreign Predicate implementations keep working through a per-row
// gather fallback, so the vectorized path is an optimization, never a
// compatibility requirement.

// ColumnPredicate is the optional vectorized face of Predicate.
// Implementations must decide rows exactly as their Eval does — the
// scan dispatcher treats the two as interchangeable.
type ColumnPredicate interface {
	Predicate
	// EvalColumn filters the selection vector sel (ascending row ids
	// into cols, one vector per schema attribute) down to the rows
	// satisfying the predicate under s, appending survivors to out in
	// order and returning it. Implementations must not retain cols or
	// sel and must write only through out.
	EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int
}

var (
	_ ColumnPredicate = Cmp{}
	_ ColumnPredicate = And(nil)
	_ ColumnPredicate = Or(nil)
	_ ColumnPredicate = Not{}
	_ ColumnPredicate = True{}
	_ ColumnPredicate = In{}
)

// evalColumns dispatches predicate evaluation over column vectors:
// built-in predicates run their vectorized loops; anything else falls
// back to gathering each candidate row into a scratch tuple and
// calling Eval.
func evalColumns(p Predicate, s *Schema, cols [][]Value, sel []int, out []int) []int {
	if cp, ok := p.(ColumnPredicate); ok {
		return cp.EvalColumn(s, cols, sel, out)
	}
	scratch := make(Tuple, len(cols))
	for _, i := range sel {
		for a, c := range cols {
			scratch[a] = c[i]
		}
		if p.Eval(scratch, s) {
			out = append(out, i)
		}
	}
	return out
}

// EvalColumn implements ColumnPredicate: one tight loop over the
// attribute's column, specialized per operator so the comparison
// branch hoists out of the loop. A schema lacking the attribute fails
// every row, as in Eval.
func (c Cmp) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	a := s.Index(c.Attr)
	if a < 0 {
		return out
	}
	col, v := cols[a], c.Val
	switch c.Op {
	case EQ:
		for _, i := range sel {
			if col[i] == v {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range sel {
			if col[i] != v {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range sel {
			if col[i] < v {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range sel {
			if col[i] <= v {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range sel {
			if col[i] > v {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range sel {
			if col[i] >= v {
				out = append(out, i)
			}
		}
	}
	return out
}

// EvalColumn implements ColumnPredicate: conjuncts chain through
// successively narrower selection vectors, so each clause scans only
// the survivors of the ones before it.
func (a And) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	switch len(a) {
	case 0:
		return append(out, sel...)
	case 1:
		return evalColumns(a[0], s, cols, sel, out)
	}
	cur := evalColumns(a[0], s, cols, sel, make([]int, 0, len(sel)))
	var alt []int
	for _, p := range a[1 : len(a)-1] {
		alt = evalColumns(p, s, cols, cur, alt[:0])
		cur, alt = alt, cur
	}
	return evalColumns(a[len(a)-1], s, cols, cur, out)
}

// EvalColumn implements ColumnPredicate: each disjunct scans the full
// candidate vector and marks its matches in a bitmap, and the union is
// emitted in selection order. Marking stops early once every candidate
// matched.
func (o Or) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	if len(o) == 0 || len(sel) == 0 {
		return out
	}
	if len(o) == 1 {
		return evalColumns(o[0], s, cols, sel, out)
	}
	marks := make([]uint64, sel[len(sel)-1]>>6+1)
	var res []int
	matched := 0
	for _, p := range o {
		res = evalColumns(p, s, cols, sel, res[:0])
		for _, i := range res {
			w, b := i>>6, uint64(1)<<(uint(i)&63)
			if marks[w]&b == 0 {
				marks[w] |= b
				matched++
			}
		}
		if matched == len(sel) {
			break
		}
	}
	for _, i := range sel {
		if marks[i>>6]&(1<<(uint(i)&63)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// EvalColumn implements ColumnPredicate: the child's survivors (an
// ascending subsequence of sel) are subtracted from sel by a tandem
// walk.
func (n Not) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	res := evalColumns(n.P, s, cols, sel, nil)
	j := 0
	for _, i := range sel {
		if j < len(res) && res[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// EvalColumn implements ColumnPredicate.
func (True) EvalColumn(_ *Schema, _ [][]Value, sel []int, out []int) []int {
	return append(out, sel...)
}

// EvalColumn implements ColumnPredicate: one map probe per candidate
// over the single column.
func (in In) EvalColumn(s *Schema, cols [][]Value, sel []int, out []int) []int {
	a := s.Index(in.Attr)
	if a < 0 {
		return out
	}
	col := cols[a]
	for _, i := range sel {
		if _, ok := in.Vals[col[i]]; ok {
			out = append(out, i)
		}
	}
	return out
}
