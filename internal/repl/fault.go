package repl

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"sampleunion/internal/rng"
)

// FaultConfig tunes a FaultInjector. Probabilities are per segment of
// SegmentBytes read off a wrapped connection; zero-valued fields fall
// back to sane defaults for the sizes and to "never" for the faults.
type FaultConfig struct {
	Seed         uint64
	SegmentBytes int // mangling granularity (default 512)
	DropProb     float64
	DupProb      float64
	ReorderProb  float64 // hold a segment, emit the next one first
	TruncateProb float64 // emit a prefix, then poison the connection
	DelayProb    float64
	MaxDelay     time.Duration // default 10ms
}

// FaultStats counts injected faults.
type FaultStats struct {
	Drops, Dups, Reorders, Truncates, Delays uint64
}

// errTruncatedConn is what reads on a poisoned connection return: the
// remainder of the stream is gone, as if the peer died mid-frame.
var errTruncatedConn = errors.New("fault: connection truncated mid-stream")

// FaultInjector wraps connection dials so every byte read through them
// can be dropped, duplicated, reordered, truncated, or delayed at
// segment granularity — a deterministic (seeded) stand-in for a bad
// network that replication must survive. Mangling applies only to the
// read side, so requests still reach the server; what the client sees
// coming back is what gets chewed. Disable (the initial Enable state
// is set by the caller) passes reads through untouched, letting chaos
// tests end the storm and assert convergence.
type FaultInjector struct {
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rng.RNG
	enabled bool
	stats   FaultStats
}

// NewFaultInjector returns an injector; call Enable to start mangling.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 512
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &FaultInjector{cfg: cfg, rng: rng.New(int64(cfg.Seed))}
}

// Enable starts injecting faults on wrapped connections.
func (fi *FaultInjector) Enable() {
	fi.mu.Lock()
	fi.enabled = true
	fi.mu.Unlock()
}

// Disable stops injecting; already-poisoned connections stay dead.
func (fi *FaultInjector) Disable() {
	fi.mu.Lock()
	fi.enabled = false
	fi.mu.Unlock()
}

// Stats returns the injected-fault counters.
func (fi *FaultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// DialContext wraps a base dialer (nil for the default) into one whose
// connections read through the injector.
func (fi *FaultInjector) DialContext(base func(ctx context.Context, network, addr string) (net.Conn, error)) func(ctx context.Context, network, addr string) (net.Conn, error) {
	if base == nil {
		d := &net.Dialer{}
		base = d.DialContext
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, fi: fi}, nil
	}
}

// fault decision per segment.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultDup
	faultReorder
	faultTruncate
	faultDelay
)

// roll picks the fault for one segment, counting what it picked, and
// returns the parameters the connection needs (cut point, delay).
func (fi *FaultInjector) roll(segLen int) (faultKind, int, time.Duration) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if !fi.enabled {
		return faultNone, 0, 0
	}
	u := fi.rng.Float64()
	c := fi.cfg
	switch {
	case u < c.DropProb:
		fi.stats.Drops++
		return faultDrop, 0, 0
	case u < c.DropProb+c.DupProb:
		fi.stats.Dups++
		return faultDup, 0, 0
	case u < c.DropProb+c.DupProb+c.ReorderProb:
		fi.stats.Reorders++
		return faultReorder, 0, 0
	case u < c.DropProb+c.DupProb+c.ReorderProb+c.TruncateProb:
		fi.stats.Truncates++
		cut := 0
		if segLen > 1 {
			cut = fi.rng.Intn(segLen)
		}
		return faultTruncate, cut, 0
	case u < c.DropProb+c.DupProb+c.ReorderProb+c.TruncateProb+c.DelayProb:
		fi.stats.Delays++
		d := time.Duration(fi.rng.Int63() % int64(c.MaxDelay))
		return faultDelay, 0, d
	}
	return faultNone, 0, 0
}

// faultConn mangles the read side of one connection at segment
// granularity. A single goroutine reads any given connection, so pend
// and held need no lock.
type faultConn struct {
	net.Conn
	fi       *FaultInjector
	pend     []byte // mangled bytes ready to hand out
	held     []byte // segment parked by a reorder
	poisoned bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	for len(c.pend) == 0 {
		if c.poisoned {
			return 0, errTruncatedConn
		}
		seg := make([]byte, c.fi.cfg.SegmentBytes)
		n, err := c.Conn.Read(seg)
		if n > 0 {
			c.mangle(seg[:n])
			continue // pend may still be empty (drop, reorder hold)
		}
		if err != nil {
			// Flush a parked reorder segment before surfacing the end
			// of the stream, so held bytes aren't silently lost.
			if len(c.held) > 0 {
				c.pend, c.held = c.held, nil
				break
			}
			return 0, err
		}
	}
	n := copy(p, c.pend)
	c.pend = c.pend[n:]
	return n, nil
}

// mangle applies one fault decision to a freshly read segment,
// appending whatever should reach the application to c.pend.
func (c *faultConn) mangle(seg []byte) {
	if len(c.held) > 0 {
		// A reorder is pending: this segment goes out first, then the
		// held one.
		c.pend = append(c.pend, seg...)
		c.pend = append(c.pend, c.held...)
		c.held = nil
		return
	}
	kind, cut, delay := c.fi.roll(len(seg))
	switch kind {
	case faultDrop:
	case faultDup:
		c.pend = append(c.pend, seg...)
		c.pend = append(c.pend, seg...)
	case faultReorder:
		c.held = append(c.held[:0], seg...)
	case faultTruncate:
		c.pend = append(c.pend, seg[:cut]...)
		c.poisoned = true
	case faultDelay:
		time.Sleep(delay)
		c.pend = append(c.pend, seg...)
	default:
		c.pend = append(c.pend, seg...)
	}
}
