package repl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// --- frame codec ---

func TestFrameRoundtrip(t *testing.T) {
	var wire []byte
	wire = AppendFrame(wire, 1, []byte("alpha"))
	wire = AppendHeartbeat(wire, 7)
	wire = AppendFrame(wire, 2, []byte{})
	wire = AppendFrame(wire, 3, bytes.Repeat([]byte{0xAB}, 1000))

	fr := NewFrameReader(bytes.NewReader(wire))
	seq, p, err := fr.Next()
	if err != nil || seq != 1 || string(p) != "alpha" {
		t.Fatalf("frame 1: seq=%d p=%q err=%v", seq, p, err)
	}
	if IsHeartbeat(p) {
		t.Fatal("data frame classified as heartbeat")
	}
	seq, p, err = fr.Next()
	if err != nil || seq != 7 || !IsHeartbeat(p) {
		t.Fatalf("heartbeat: seq=%d p=%v err=%v", seq, p, err)
	}
	seq, p, err = fr.Next()
	if err != nil || seq != 2 || len(p) != 0 {
		t.Fatalf("empty frame: seq=%d len=%d err=%v", seq, len(p), err)
	}
	seq, p, err = fr.Next()
	if err != nil || seq != 3 || len(p) != 1000 || p[500] != 0xAB {
		t.Fatalf("big frame: seq=%d len=%d err=%v", seq, len(p), err)
	}
	if _, _, err = fr.Next(); err != io.EOF {
		t.Fatalf("clean end: %v, want io.EOF", err)
	}
}

func TestFrameReaderTornStream(t *testing.T) {
	wire := AppendFrame(nil, 1, []byte("payload"))
	// Torn mid-header and torn mid-payload both surface ErrUnexpectedEOF.
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 3} {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]))
		if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameReaderCorruptFrame(t *testing.T) {
	wire := AppendFrame(nil, 9, []byte("payload-bytes"))
	// Any flipped bit in seq or payload fails the checksum.
	for _, pos := range []int{8, 15, frameHeaderSize, len(wire) - 1} {
		bad := append([]byte(nil), wire...)
		bad[pos] ^= 0x10
		fr := NewFrameReader(bytes.NewReader(bad))
		if _, _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("flip at %d: err = %v, want ErrBadFrame", pos, err)
		}
	}
	// An absurd length header is rejected before any read.
	bad := append([]byte(nil), wire...)
	bad[3] = 0xFF // length |= 0xFF000000 > maxFramePayload
	fr := NewFrameReader(bytes.NewReader(bad))
	if _, _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: err = %v, want ErrBadFrame", err)
	}
}

// --- fault injector ---

// faultPipe returns a fault-wrapped read end fed by a writer.
func faultPipe(fi *FaultInjector) (io.Writer, *faultConn) {
	cr, cw := net.Pipe()
	return cw, &faultConn{Conn: cr, fi: fi}
}

func writeAll(t *testing.T, w io.Writer, b []byte) {
	t.Helper()
	go func() {
		w.Write(b)
		if c, ok := w.(io.Closer); ok {
			c.Close()
		}
	}()
}

func TestFaultInjectorPassthroughWhenDisabled(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Seed: 1, DropProb: 1}) // not enabled
	w, conn := faultPipe(fi)
	writeAll(t, w, []byte("hello world"))
	got, err := io.ReadAll(conn)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("disabled injector mangled: %q, %v", got, err)
	}
	if fi.Stats() != (FaultStats{}) {
		t.Fatalf("disabled injector counted faults: %+v", fi.Stats())
	}
}

func TestFaultInjectorDrop(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Seed: 2, SegmentBytes: 4, DropProb: 1})
	fi.Enable()
	w, conn := faultPipe(fi)
	writeAll(t, w, []byte("0123456789abcdef"))
	got, err := io.ReadAll(conn)
	if err != nil || len(got) != 0 {
		t.Fatalf("full drop: %q, %v", got, err)
	}
	if fi.Stats().Drops == 0 {
		t.Fatal("drops not counted")
	}
}

func TestFaultInjectorDup(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Seed: 3, SegmentBytes: 64, DupProb: 1})
	fi.Enable()
	w, conn := faultPipe(fi)
	writeAll(t, w, []byte("abc"))
	got, err := io.ReadAll(conn)
	if err != nil || string(got) != "abcabc" {
		t.Fatalf("dup: %q, %v", got, err)
	}
	if fi.Stats().Dups == 0 {
		t.Fatal("dups not counted")
	}
}

func TestFaultInjectorTruncatePoisons(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Seed: 4, SegmentBytes: 64, TruncateProb: 1})
	fi.Enable()
	w, conn := faultPipe(fi)
	go w.Write(bytes.Repeat([]byte{0x55}, 64)) // writer never closes
	buf := make([]byte, 256)
	var readErr error
	n := 0
	for {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			readErr = err
			break
		}
	}
	if !errors.Is(readErr, errTruncatedConn) {
		t.Fatalf("poisoned read: %v, want errTruncatedConn", readErr)
	}
	if n >= 64 {
		t.Fatalf("truncate delivered all %d bytes", n)
	}
	if fi.Stats().Truncates == 0 {
		t.Fatal("truncates not counted")
	}
}

func TestFaultInjectorReorderSwapsSegments(t *testing.T) {
	// First segment is held, second flushes before it.
	fi := NewFaultInjector(FaultConfig{Seed: 5, SegmentBytes: 4, ReorderProb: 1})
	fi.Enable()
	w, conn := faultPipe(fi)
	go func() {
		w.Write([]byte("AAAA"))
		w.Write([]byte("BBBB"))
		w.(io.Closer).Close()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	// Every byte survives a reorder storm, just out of order.
	if len(got) != 8 || bytes.Count(got, []byte("A")) != 4 || bytes.Count(got, []byte("B")) != 4 {
		t.Fatalf("reorder lost bytes: %q", got)
	}
	if string(got) == "AAAABBBB" {
		t.Fatalf("reorder did not reorder: %q", got)
	}
	if fi.Stats().Reorders == 0 {
		t.Fatal("reorders not counted")
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() FaultStats {
		fi := NewFaultInjector(FaultConfig{
			Seed: 42, SegmentBytes: 8,
			DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2, DelayProb: 0.1,
			MaxDelay: time.Microsecond,
		})
		fi.Enable()
		w, conn := faultPipe(fi)
		writeAll(t, w, bytes.Repeat([]byte("x"), 8*100))
		io.ReadAll(conn)
		return fi.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults: %+v vs %+v", a, b)
	}
	if a.Drops == 0 || a.Dups == 0 || a.Reorders == 0 {
		t.Fatalf("mixed config exercised nothing: %+v", a)
	}
}

// --- hub + follower integration ---

// primaryNode is a WAL-backed relation served over a real HTTP server
// through a Hub — the primary side of replication in miniature.
type primaryNode struct {
	rel *relation.Relation
	rl  *wal.RelationLog
	hub *Hub
	srv *httptest.Server
}

func newPrimaryNode(t *testing.T, hb time.Duration) *primaryNode {
	t.Helper()
	rel := relation.New("t", relation.NewSchema("a", "b"))
	rl, err := wal.OpenRelationLog(t.TempDir(), rel, wal.RelationLogOptions{
		Options: wal.Options{Policy: wal.SyncNever, SegmentBytes: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	rl.Attach()
	n := &primaryNode{rel: rel, rl: rl}
	n.hub = NewHub(HubConfig{
		Heartbeat: hb,
		Resolve: func(session, relName string) (Source, error) {
			if session != "sess" || relName != "t" {
				return Source{}, fmt.Errorf("unknown %s/%s", session, relName)
			}
			return Source{Rel: n.rel, Log: n.rl}, nil
		},
		Logf: t.Logf,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/stream", n.hub.ServeStream)
	mux.HandleFunc("GET /repl/snapshot", n.hub.ServeSnapshot)
	mux.HandleFunc("POST /repl/ack", func(w http.ResponseWriter, r *http.Request) {
		var a AckRequest
		if json.NewDecoder(r.Body).Decode(&a) == nil {
			n.hub.RecordAck(a.Follower, a.Session, a.Relation, a.Applied, a.Reconnects, a.Resyncs)
		}
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(func() {
		n.hub.Close()
		n.srv.Close()
		n.rl.Close()
	})
	return n
}

// appendRows writes n sequential rows through the WAL and wakes streams,
// as the serving append path does.
func (n *primaryNode) appendRows(t *testing.T, rows int) {
	t.Helper()
	base := relation.Value(n.rel.Version())
	for i := 0; i < rows; i++ {
		n.rel.Append(relation.Tuple{base + relation.Value(i), (base + relation.Value(i)) * 2})
	}
	if err := n.rl.Commit(); err != nil {
		t.Fatal(err)
	}
	n.hub.Wake("sess", "t")
}

func newTestFollower(t *testing.T, n *primaryNode, client *http.Client, hb time.Duration) (*Follower, *relation.Relation) {
	t.Helper()
	frel := relation.New("t", relation.NewSchema("a", "b"))
	f := NewFollower(Options{
		Primary:    n.srv.URL,
		Client:     client,
		FollowerID: "f1",
		Heartbeat:  hb,
		AckEvery:   5 * time.Millisecond,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       1,
		Logf:       t.Logf,
	})
	f.Add(Target{Session: "sess", Relation: "t", Rel: frel})
	t.Cleanup(f.Close)
	return f, frel
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicationStreamsAndTails(t *testing.T) {
	n := newPrimaryNode(t, 20*time.Millisecond)
	n.appendRows(t, 100)
	_, frel := newTestFollower(t, n, n.srv.Client(), 20*time.Millisecond)

	waitUntil(t, "initial catch-up", func() bool { return frel.Version() == n.rel.Version() })
	if !reflect.DeepEqual(frel.Tuples(), n.rel.Tuples()) {
		t.Fatal("follower tuples differ from primary after catch-up")
	}
	// Live tail: new appends arrive without reconnecting.
	n.appendRows(t, 50)
	waitUntil(t, "tail catch-up", func() bool { return frel.Version() == n.rel.Version() })
	if !reflect.DeepEqual(frel.Tuples(), n.rel.Tuples()) {
		t.Fatal("follower tuples differ from primary after tail")
	}
}

func TestReplicationAcksReachPrimaryMetrics(t *testing.T) {
	n := newPrimaryNode(t, 10*time.Millisecond)
	n.appendRows(t, 20)
	f, frel := newTestFollower(t, n, n.srv.Client(), 10*time.Millisecond)

	waitUntil(t, "acked progress on primary", func() bool {
		ps := n.hub.Snapshot()
		return len(ps.Followers) == 1 && ps.Followers[0].Applied == n.rel.Version()
	})
	ps := n.hub.Snapshot()
	fa := ps.Followers[0]
	if fa.Follower != "f1" || fa.Session != "sess" || fa.Relation != "t" || fa.LagRecords != 0 {
		t.Fatalf("ack metrics wrong: %+v", fa)
	}
	fs := f.Snapshot()
	if len(fs.Targets) != 1 || fs.Targets[0].Applied != frel.Version() || !fs.Targets[0].Connected {
		t.Fatalf("follower metrics wrong: %+v", fs.Targets)
	}
}

func TestReplicationReconnectsAndResumes(t *testing.T) {
	n := newPrimaryNode(t, 10*time.Millisecond)
	n.appendRows(t, 30)
	f, frel := newTestFollower(t, n, n.srv.Client(), 10*time.Millisecond)
	waitUntil(t, "initial catch-up", func() bool { return frel.Version() == 30 })

	// Kill every live connection: the stream dies mid-flight and the
	// follower must reconnect and resume from its applied position —
	// without a resync, since its WAL position is still streamable.
	n.srv.CloseClientConnections()
	n.appendRows(t, 30)
	waitUntil(t, "post-disconnect catch-up", func() bool { return frel.Version() == 60 })
	ts := f.Snapshot().Targets[0]
	if ts.Reconnects < 2 {
		t.Fatalf("reconnects = %d, want >= 2 (initial + resume)", ts.Reconnects)
	}
	if ts.Resyncs != 0 {
		t.Fatalf("resyncs = %d; resumable disconnect must not resync", ts.Resyncs)
	}
	if !reflect.DeepEqual(frel.Tuples(), n.rel.Tuples()) {
		t.Fatal("follower diverged across reconnect")
	}
}

func TestReplicationResyncsWhenTruncatedPastPosition(t *testing.T) {
	n := newPrimaryNode(t, 10*time.Millisecond)
	// Two checkpoints raise the stream floor above zero: a follower
	// starting from 0 is refused (409) and must snapshot-resync.
	n.appendRows(t, 40)
	if err := n.rl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n.appendRows(t, 40)
	if err := n.rl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n.rl.StreamFloor() == 0 {
		t.Fatal("test needs a raised stream floor")
	}

	f, frel := newTestFollower(t, n, n.srv.Client(), 10*time.Millisecond)
	waitUntil(t, "resync catch-up", func() bool { return frel.Version() == n.rel.Version() })
	if !reflect.DeepEqual(frel.Tuples(), n.rel.Tuples()) {
		t.Fatal("follower tuples differ after resync")
	}
	ts := f.Snapshot().Targets[0]
	if ts.Resyncs == 0 {
		t.Fatal("follower caught up without the resync the floor demands")
	}
	// After the resync the live stream still works.
	n.appendRows(t, 10)
	waitUntil(t, "post-resync tail", func() bool { return frel.Version() == n.rel.Version() })
}

func TestReplicationRefusesSnapshotBehindLocalState(t *testing.T) {
	n := newPrimaryNode(t, 10*time.Millisecond)
	n.appendRows(t, 10)

	// Follower already holds MORE history than the primary: resync must
	// refuse to roll it back (divergence), not silently truncate.
	frel := relation.New("t", relation.NewSchema("a", "b"))
	for i := 0; i < 50; i++ {
		frel.Append(relation.Tuple{relation.Value(i), relation.Value(i)})
	}
	f := NewFollower(Options{
		Primary: n.srv.URL, Client: n.srv.Client(), FollowerID: "f1",
		Heartbeat: 10 * time.Millisecond, BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond, Logf: t.Logf,
	})
	rep := &replicator{f: f, t: Target{Session: "sess", Relation: "t", Rel: frel}}
	err := rep.resync()
	if err == nil || frel.Version() != 50 {
		t.Fatalf("resync rolled back diverged state: err=%v version=%d", err, frel.Version())
	}
	ts := rep.snapshot()
	if ts.Divergences != 1 {
		t.Fatalf("divergences = %d, want 1", ts.Divergences)
	}
	f.Close()
}

func TestReplicationSurvivesFaultyTransport(t *testing.T) {
	// A lighter-weight cousin of the serve-level chaos test: stream 200
	// rows through a transport that drops, duplicates, reorders, delays,
	// and truncates — the follower must still converge byte-for-byte.
	n := newPrimaryNode(t, 10*time.Millisecond)
	fi := NewFaultInjector(FaultConfig{
		Seed: 77, SegmentBytes: 256,
		DropProb: 0.05, DupProb: 0.05, ReorderProb: 0.05,
		TruncateProb: 0.03, DelayProb: 0.05, MaxDelay: time.Millisecond,
	})
	fi.Enable()
	client := &http.Client{Transport: &http.Transport{DialContext: fi.DialContext(nil)}}

	f, frel := newTestFollower(t, n, client, 10*time.Millisecond)
	for i := 0; i < 10; i++ {
		n.appendRows(t, 20)
		time.Sleep(5 * time.Millisecond)
	}
	// End the storm so convergence is reachable, then assert it.
	fi.Disable()
	waitUntil(t, "chaos convergence", func() bool { return frel.Version() == n.rel.Version() })
	if !reflect.DeepEqual(frel.Tuples(), n.rel.Tuples()) {
		t.Fatal("follower diverged from primary under transport faults")
	}
	st := fi.Stats()
	if st.Drops+st.Dups+st.Reorders+st.Truncates+st.Delays == 0 {
		t.Fatal("fault injector never fired; the test asserted nothing")
	}
	ts := f.Snapshot().Targets[0]
	t.Logf("chaos: faults=%+v reconnects=%d resyncs=%d duplicates=%d",
		st, ts.Reconnects, ts.Resyncs, ts.Duplicates)
}

func TestHubStreamRejectsBadRequests(t *testing.T) {
	n := newPrimaryNode(t, 50*time.Millisecond)
	for _, q := range []string{
		"",                                  // everything missing
		"session=sess&relation=t",           // from missing
		"session=sess&relation=t&from=abc",  // from not numeric
		"session=nope&relation=t&from=0",    // unknown source
		"session=sess&relation=nope&from=0", // unknown relation
	} {
		resp, err := n.srv.Client().Get(n.srv.URL + "/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("query %q: status %d, want 400/404", q, resp.StatusCode)
		}
	}
}
