package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// RemoteSession is one durable session advertised by the primary's
// GET /repl/sessions: the canonical key plus the union declaration a
// follower rebuilds the same deterministic base state from.
type RemoteSession struct {
	Key  string          `json:"key"`
	Decl json.RawMessage `json:"decl"`
}

// FetchSessions lists the primary's durable sessions.
func FetchSessions(ctx context.Context, client *http.Client, primary string) ([]RemoteSession, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/repl/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: %s/repl/sessions: %s", primary, resp.Status)
	}
	var out []RemoteSession
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("repl: decoding session list: %w", err)
	}
	return out, nil
}

// AckRequest is the body of POST /repl/ack: a follower's progress
// report for one replicated relation.
type AckRequest struct {
	Follower   string `json:"follower"`
	Session    string `json:"session"`
	Relation   string `json:"relation"`
	Applied    uint64 `json:"applied"`
	Reconnects uint64 `json:"reconnects"`
	Resyncs    uint64 `json:"resyncs"`
}

// Target is one (session, relation) a follower replicates. Refresh is
// called after frames are applied (at wire-idle boundaries) to fold
// new rows into the sampler; Commit, when set, makes applied frames
// durable in the follower's own WAL before they are acked; Checkpoint,
// when set, anchors a snapshot restored by resync so the follower's
// WAL chain stays contiguous across its own restarts.
type Target struct {
	Session    string
	Relation   string
	Rel        *relation.Relation
	Refresh    func() error
	Commit     func() error
	Checkpoint func() error
}

// Options tunes a Follower.
type Options struct {
	Primary    string // base URL of the primary, e.g. http://127.0.0.1:8080
	Client     *http.Client
	FollowerID string
	// Heartbeat is the primary's advertised heartbeat period; ~4 missed
	// heartbeats (no frame at all in 4 periods) is a dead peer and the
	// connection is abandoned (default 1s).
	Heartbeat time.Duration
	// AckEvery rate-limits progress reports to the primary (default
	// 500ms; acks also fire on resync and catch-up transitions).
	AckEvery time.Duration
	// BackoffMin/BackoffMax bound the capped exponential reconnect
	// backoff (defaults 100ms / 5s); jitter draws from Seed.
	BackoffMin time.Duration
	BackoffMax time.Duration
	Seed       uint64
	Logf       func(format string, args ...any)
}

// Follower replicates a set of targets from one primary, each on its
// own goroutine with independent reconnect backoff and resync state.
type Follower struct {
	opt Options

	mu     sync.Mutex
	reps   map[string]*replicator
	stop   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewFollower returns a follower with no targets; Add starts them.
func NewFollower(opt Options) *Follower {
	if opt.Client == nil {
		opt.Client = http.DefaultClient
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = time.Second
	}
	if opt.AckEvery <= 0 {
		opt.AckEvery = 500 * time.Millisecond
	}
	if opt.BackoffMin <= 0 {
		opt.BackoffMin = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.FollowerID == "" {
		opt.FollowerID = "follower"
	}
	return &Follower{opt: opt, reps: make(map[string]*replicator), stop: make(chan struct{})}
}

func (f *Follower) logf(format string, args ...any) {
	if f.opt.Logf != nil {
		f.opt.Logf(format, args...)
	}
}

// Add starts replicating a target; adding the same (session, relation)
// twice is a no-op.
func (f *Follower) Add(t Target) {
	key := streamKey(t.Session, t.Relation)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.reps[key] != nil {
		return
	}
	r := &replicator{f: f, t: t, rng: rand.New(rand.NewSource(int64(f.opt.Seed) ^ int64(len(f.reps)+1)))}
	f.reps[key] = r
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		r.run()
	}()
}

// Close stops every replicator and waits for them to exit.
func (f *Follower) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.stop)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// TargetSnapshot is one replicated relation's follower-side state.
type TargetSnapshot struct {
	Session     string  `json:"session"`
	Relation    string  `json:"relation"`
	Applied     uint64  `json:"applied"`
	Head        uint64  `json:"head"`
	LagRecords  uint64  `json:"lag_records"`
	LagSeconds  float64 `json:"lag_seconds"`
	Connected   bool    `json:"connected"`
	Reconnects  uint64  `json:"reconnects"`
	Resyncs     uint64  `json:"resyncs"`
	Duplicates  uint64  `json:"duplicates"`
	Divergences uint64  `json:"divergences"`
}

// FollowerSnapshot is the follower-side replication metrics block.
type FollowerSnapshot struct {
	Primary    string           `json:"primary"`
	FollowerID string           `json:"follower_id"`
	Targets    []TargetSnapshot `json:"targets"`
}

// Snapshot returns the follower's metrics.
func (f *Follower) Snapshot() FollowerSnapshot {
	f.mu.Lock()
	reps := make([]*replicator, 0, len(f.reps))
	for _, r := range f.reps {
		reps = append(reps, r)
	}
	f.mu.Unlock()
	fs := FollowerSnapshot{Primary: f.opt.Primary, FollowerID: f.opt.FollowerID}
	for _, r := range reps {
		fs.Targets = append(fs.Targets, r.snapshot())
	}
	sort.Slice(fs.Targets, func(i, j int) bool {
		a, b := fs.Targets[i], fs.Targets[j]
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Relation < b.Relation
	})
	return fs
}

// errResync marks failures that position cannot fix: the follower's
// state diverged from what the stream can provide (seq gap, damaged
// frame, 409 from the primary) and only a snapshot restore recovers.
var errResync = errors.New("repl: resync required")

type replicator struct {
	f   *Follower
	t   Target
	rng *rand.Rand // owned by the run goroutine

	mu          sync.Mutex
	head        uint64 // primary head per last heartbeat/frame
	lastFrame   time.Time
	connected   bool
	reconnects  uint64
	resyncs     uint64
	duplicates  uint64
	divergences uint64
	lastAck     time.Time
}

func (r *replicator) snapshot() TargetSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := TargetSnapshot{
		Session:     r.t.Session,
		Relation:    r.t.Relation,
		Applied:     r.t.Rel.Version(),
		Head:        r.head,
		Connected:   r.connected,
		Reconnects:  r.reconnects,
		Resyncs:     r.resyncs,
		Duplicates:  r.duplicates,
		Divergences: r.divergences,
	}
	if ts.Head > ts.Applied {
		ts.LagRecords = ts.Head - ts.Applied
	}
	if !r.lastFrame.IsZero() {
		ts.LagSeconds = time.Since(r.lastFrame).Seconds()
	}
	return ts
}

// run is the replicator's life: connect, stream, and on any failure
// back off exponentially (capped, jittered) before trying again —
// resuming from the follower's own applied version, or from a fresh
// snapshot when the stream says position alone cannot recover.
func (r *replicator) run() {
	opt := r.f.opt
	backoff := opt.BackoffMin
	for {
		select {
		case <-r.f.stop:
			return
		default:
		}
		err := r.streamOnce()
		if err == nil {
			// Clean stream end (primary restart or drain): resume
			// promptly from the applied position.
			backoff = opt.BackoffMin
		} else if errors.Is(err, errResync) {
			r.f.logf("repl: %s/%s: %v; resyncing from snapshot", r.t.Session, r.t.Relation, err)
			if rerr := r.resync(); rerr != nil {
				r.f.logf("repl: %s/%s: resync failed: %v", r.t.Session, r.t.Relation, rerr)
			} else {
				backoff = opt.BackoffMin
				r.ack()
				continue
			}
		} else {
			r.f.logf("repl: %s/%s: stream: %v", r.t.Session, r.t.Relation, err)
		}
		// Jittered sleep in [backoff/2, backoff), then double up to the
		// cap — crash-looping primaries see a spread-out thundering
		// herd, not a synchronized one.
		d := backoff/2 + time.Duration(r.rng.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-r.f.stop:
			return
		}
		if err != nil {
			backoff *= 2
			if backoff > opt.BackoffMax {
				backoff = opt.BackoffMax
			}
		}
	}
}

// streamOnce opens one stream from the current applied version and
// applies frames until it ends. nil means a clean end (reconnect and
// resume); errResync means resync; other errors reconnect with
// backoff.
func (r *replicator) streamOnce() error {
	opt := r.f.opt
	from := r.t.Rel.Version()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // tie the request to follower shutdown
		select {
		case <-r.f.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	q := url.Values{
		"session":  {r.t.Session},
		"relation": {r.t.Relation},
		"from":     {strconv.FormatUint(from, 10)},
		"follower": {opt.FollowerID},
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, opt.Primary+"/repl/stream?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("%w: primary refused position %d (truncated past it)", errResync, from)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("repl: stream: %s", resp.Status)
	}
	r.setConnected(true)
	defer r.setConnected(false)

	// Dead-peer watchdog: any frame (heartbeats included) resets it; 4
	// silent heartbeat periods cancels the request.
	watchdog := time.AfterFunc(4*opt.Heartbeat, cancel)
	defer watchdog.Stop()

	fr := NewFrameReader(resp.Body)
	pending := 0
	for {
		seq, payload, err := fr.Next()
		if err != nil {
			ferr := r.flush(&pending)
			switch {
			case ferr != nil:
				return ferr
			case err == io.EOF:
				return nil // clean end: resume by reconnect
			case errors.Is(err, io.ErrUnexpectedEOF):
				return fmt.Errorf("repl: stream tore mid-frame")
			case errors.Is(err, ErrBadFrame):
				// The transport corrupted a frame (or we desynced);
				// position is untrustworthy, start over from a snapshot.
				return fmt.Errorf("%w: %v", errResync, err)
			case ctx.Err() != nil && r.stopped():
				return nil
			default:
				return err
			}
		}
		watchdog.Reset(4 * opt.Heartbeat)
		if IsHeartbeat(payload) {
			r.observeHead(seq)
			if err := r.flush(&pending); err != nil {
				return err
			}
			r.maybeAck()
			continue
		}
		out, aerr := wal.ApplyRecord(r.t.Rel, seq, payload)
		if aerr != nil {
			// A seq gap, or a record that contradicts local state:
			// either way the WAL stream cannot reconcile us.
			return fmt.Errorf("%w: %v", errResync, aerr)
		}
		if !out.Applied {
			r.mu.Lock()
			r.duplicates++
			r.mu.Unlock()
			continue
		}
		r.observeHead(seq)
		pending += out.Rows
		// Refresh at wire-idle boundaries (cheap batching under load)
		// but never let unrefreshed rows grow unboundedly.
		if fr.Buffered() == 0 || pending >= 65536 {
			if err := r.flush(&pending); err != nil {
				return err
			}
			r.maybeAck()
		}
	}
}

// flush commits applied frames to the follower's own WAL and folds
// them into the sampler. It must succeed before the rows count as
// applied; a failure abandons the connection so nothing acks them.
func (r *replicator) flush(pending *int) error {
	if *pending == 0 {
		return nil
	}
	*pending = 0
	if r.t.Commit != nil {
		if err := r.t.Commit(); err != nil {
			return fmt.Errorf("repl: follower commit: %w", err)
		}
	}
	if r.t.Refresh != nil {
		if err := r.t.Refresh(); err != nil {
			return fmt.Errorf("repl: follower refresh: %w", err)
		}
	}
	return nil
}

// resync pulls a full snapshot from the primary and restores it,
// discarding local divergence, then re-anchors the follower's own WAL
// chain and sampler.
func (r *replicator) resync() error {
	opt := r.f.opt
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() { // tie the fetch to follower shutdown
		select {
		case <-r.f.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	q := url.Values{"session": {r.t.Session}, "relation": {r.t.Relation}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, opt.Primary+"/repl/snapshot?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot: %s", resp.Status)
	}
	// Same dead-peer watchdog as the stream: a snapshot body that stops
	// making progress for ~4 heartbeat periods is a dead transfer —
	// abandon it and retry with backoff rather than hold the 2-minute
	// outer deadline.
	watchdog := time.AfterFunc(4*opt.Heartbeat, cancel)
	defer watchdog.Stop()
	var raw []byte
	chunk := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(chunk)
		if n > 0 {
			watchdog.Reset(4 * opt.Heartbeat)
			raw = append(raw, chunk[:n]...)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("repl: snapshot fetch: %w", rerr)
		}
	}
	sd, err := wal.DecodeCheckpoint(raw, r.t.Rel.Arity())
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	if sd.Version < r.t.Rel.Version() {
		// The primary's state is behind ours: the follower holds
		// history the primary never had (divergence — e.g. it was
		// written to as a primary once). Refuse to silently roll back;
		// keep retrying in case the primary is merely catching up.
		r.mu.Lock()
		r.divergences++
		r.mu.Unlock()
		return fmt.Errorf("repl: snapshot version %d behind local %d: diverged", sd.Version, r.t.Rel.Version())
	}
	if err := r.t.Rel.RestoreSnapshot(sd); err != nil {
		return err
	}
	if r.t.Checkpoint != nil {
		if err := r.t.Checkpoint(); err != nil {
			return fmt.Errorf("repl: checkpoint after resync: %w", err)
		}
	}
	if r.t.Refresh != nil {
		if err := r.t.Refresh(); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.resyncs++
	if sd.Version > r.head {
		r.head = sd.Version
	}
	r.mu.Unlock()
	return nil
}

func (r *replicator) stopped() bool {
	select {
	case <-r.f.stop:
		return true
	default:
		return false
	}
}

func (r *replicator) setConnected(c bool) {
	r.mu.Lock()
	r.connected = c
	if c {
		r.reconnects++
	}
	r.mu.Unlock()
}

func (r *replicator) observeHead(seq uint64) {
	r.mu.Lock()
	if seq > r.head {
		r.head = seq
	}
	r.lastFrame = time.Now()
	r.mu.Unlock()
}

// maybeAck posts a rate-limited progress report; acks are advisory
// (metrics only) so failures are logged, not retried.
func (r *replicator) maybeAck() {
	r.mu.Lock()
	due := time.Since(r.lastAck) >= r.f.opt.AckEvery
	if due {
		r.lastAck = time.Now()
	}
	r.mu.Unlock()
	if due {
		r.ack()
	}
}

func (r *replicator) ack() {
	r.mu.Lock()
	body := AckRequest{
		Follower:   r.f.opt.FollowerID,
		Session:    r.t.Session,
		Relation:   r.t.Relation,
		Applied:    r.t.Rel.Version(),
		Reconnects: r.reconnects,
		Resyncs:    r.resyncs,
	}
	r.lastAck = time.Now()
	r.mu.Unlock()
	raw, err := json.Marshal(body)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.f.opt.Primary+"/repl/ack", bytes.NewReader(raw))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.f.opt.Client.Do(req)
	if err != nil {
		r.f.logf("repl: %s/%s: ack: %v", r.t.Session, r.t.Relation, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
}
