package repl

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// Source is what the hub streams for one (session, relation): the live
// relation (for head versions and snapshots) and its durability log
// (for the frames themselves).
type Source struct {
	Rel *relation.Relation
	Log *wal.RelationLog
}

// HubConfig tunes the primary side of replication.
type HubConfig struct {
	// Resolve maps a (session key, relation name) to its Source; an
	// error turns into a 404 on the stream/snapshot endpoints.
	Resolve func(session, rel string) (Source, error)
	// Heartbeat is the idle-stream heartbeat period (default 1s).
	// Followers treat ~4 missed heartbeats as a dead peer.
	Heartbeat time.Duration
	// QueueLen bounds the per-stream send queue in batches (default
	// 64). A follower too slow to drain it is disconnected rather than
	// allowed to pin memory; it re-enters through reconnect or resync.
	QueueLen int
	// BatchBytes bounds the WAL bytes gathered per send (default
	// 256KiB).
	BatchBytes int
	// WriteTimeout caps a single blocked write to a follower (default
	// 4x heartbeat).
	WriteTimeout time.Duration
	Logf         func(format string, args ...any)
}

// Hub is the primary's replication fan-out: it serves the long-lived
// frame streams, snapshot fetches for resync, and follower acks, and
// isolates each follower behind its own cursor and bounded queue so a
// slow or dead one never backpressures ingest or its siblings.
type Hub struct {
	cfg HubConfig

	mu      sync.Mutex
	wakers  map[string]*waker
	acks    map[string]*ackState
	streams int
	closed  bool
	stop    chan struct{}

	connects, disconnects, overflows, snapshots uint64
}

type ackState struct {
	follower, session, relation string
	applied                     uint64
	reconnects, resyncs         uint64
	last                        time.Time
}

// waker lets idle streams block until the next committed mutation on
// their relation: Wake closes the current channel and installs a fresh
// one, releasing every waiter at once.
type waker struct {
	mu sync.Mutex
	ch chan struct{}
}

func (w *waker) wait() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ch
}

func (w *waker) wake() {
	w.mu.Lock()
	close(w.ch)
	w.ch = make(chan struct{})
	w.mu.Unlock()
}

// NewHub returns a hub ready to serve streams.
func NewHub(cfg HubConfig) *Hub {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 256 << 10
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 4 * cfg.Heartbeat
	}
	return &Hub{
		cfg:    cfg,
		wakers: make(map[string]*waker),
		acks:   make(map[string]*ackState),
		stop:   make(chan struct{}),
	}
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// Close wakes and ends every active stream; followers see a clean end
// and reconnect elsewhere (or to the restarted primary).
func (h *Hub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.stop)
	}
	h.mu.Unlock()
}

func streamKey(session, rel string) string { return session + "\x00" + rel }

// Wake notifies streams of (session, rel) that a mutation committed.
// Serving code calls it after the durable commit, so a woken stream
// always finds the frames on disk.
func (h *Hub) Wake(session, rel string) {
	h.mu.Lock()
	w := h.wakers[streamKey(session, rel)]
	h.mu.Unlock()
	if w != nil {
		w.wake()
	}
}

func (h *Hub) wakerFor(session, rel string) *waker {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.wakers[streamKey(session, rel)]
	if w == nil {
		w = &waker{ch: make(chan struct{})}
		h.wakers[streamKey(session, rel)] = w
	}
	return w
}

// ServeStream handles GET /repl/stream?session=K&relation=R&from=N: a
// long-lived application/octet-stream of WAL frames with seq > from,
// interleaved with heartbeats while idle. It answers 409 when from is
// below the WAL's streamable floor (the follower must resync from a
// snapshot) and ends the stream when the follower falls behind a
// truncation or overflows its queue.
func (h *Hub) ServeStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	session, relName := q.Get("session"), q.Get("relation")
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if session == "" || relName == "" || err != nil {
		http.Error(w, "repl: stream needs session, relation, and numeric from", http.StatusBadRequest)
		return
	}
	src, rerr := h.cfg.Resolve(session, relName)
	if rerr != nil {
		http.Error(w, rerr.Error(), http.StatusNotFound)
		return
	}
	if from < src.Log.StreamFloor() {
		http.Error(w, fmt.Sprintf("repl: position %d below stream floor %d: resync required", from, src.Log.StreamFloor()), http.StatusConflict)
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		http.Error(w, "repl: hub draining", http.StatusServiceUnavailable)
		return
	}
	h.streams++
	h.connects++
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.streams--
		h.disconnects++
		h.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	// The producer tails the WAL cursor into a bounded queue; this
	// handler goroutine drains it onto the wire under a write deadline.
	// The queue is the slow-follower bulkhead: the producer never
	// blocks on it — overflow ends the stream instead.
	ch := make(chan []byte, h.cfg.QueueLen)
	done := make(chan struct{})
	defer close(done)
	go h.produce(ch, done, r, src, session, relName, from)
	for batch := range ch {
		rc.SetWriteDeadline(time.Now().Add(h.cfg.WriteTimeout))
		if _, err := w.Write(batch); err != nil {
			return
		}
		rc.Flush()
	}
}

// produce tails src's WAL from the given position, batching frames
// into ch until the stream must end: context cancelled, hub closed,
// handler gone, queue overflow, truncation past the cursor, or the
// relation's head version becoming unreachable through the WAL.
func (h *Hub) produce(ch chan<- []byte, done <-chan struct{}, r *http.Request, src Source, session, relName string, from uint64) {
	defer close(ch)
	cur := src.Log.StreamFrom(from)
	defer cur.Close()
	hb := time.NewTicker(h.cfg.Heartbeat)
	defer hb.Stop()
	buf := make([]byte, 0, h.cfg.BatchBytes)
	send := func(b []byte) bool {
		select {
		case ch <- b:
			return true
		default:
			h.mu.Lock()
			h.overflows++
			h.mu.Unlock()
			h.logf("repl: %s/%s: follower queue overflow, disconnecting", session, relName)
			return false
		}
	}
	for {
		var err error
		buf, err = cur.Read(buf[:0], h.cfg.BatchBytes)
		if err != nil {
			// Truncated past the cursor (follower slower than
			// checkpoint retention) or corrupt mid-log: end the stream;
			// the follower's gap detection resyncs from a snapshot.
			h.logf("repl: %s/%s: ending stream: %v", session, relName, err)
			return
		}
		if len(buf) > 0 {
			if !send(append([]byte(nil), buf...)) {
				return
			}
			continue
		}
		// Idle. If the relation's head moved but the WAL cannot carry
		// the stream there (e.g. versions restored from a checkpoint
		// were never logged), frames will never arrive: force a resync.
		if v := src.Rel.Version(); v > cur.Seq() && src.Log.WALLastSeq() <= cur.Seq() {
			h.logf("repl: %s/%s: head %d unreachable from WAL, ending stream", session, relName, v)
			return
		}
		wake := h.wakerFor(session, relName).wait()
		select {
		case <-wake:
		case <-hb.C:
			if !send(AppendHeartbeat(nil, src.Rel.Version())) {
				return
			}
		case <-done:
			return
		case <-h.stop:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// ServeSnapshot handles GET /repl/snapshot?session=K&relation=R by
// streaming the relation's published snapshot in the checkpoint file
// format (SUCKPT01), which carries the version and a trailing CRC the
// follower verifies before restoring.
func (h *Hub) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	session, relName := q.Get("session"), q.Get("relation")
	src, err := h.cfg.Resolve(session, relName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	h.mu.Lock()
	h.snapshots++
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := wal.WriteCheckpointTo(w, src.Rel.CaptureSnapshot()); err != nil {
		h.logf("repl: %s/%s: snapshot send: %v", session, relName, err)
	}
}

// RecordAck folds a follower's progress report into the hub's metrics.
func (h *Hub) RecordAck(follower, session, relName string, applied uint64, reconnects, resyncs uint64) {
	key := follower + "\x00" + streamKey(session, relName)
	h.mu.Lock()
	st := h.acks[key]
	if st == nil {
		st = &ackState{follower: follower, session: session, relation: relName}
		h.acks[key] = st
	}
	st.applied = applied
	st.reconnects = reconnects
	st.resyncs = resyncs
	st.last = time.Now()
	h.mu.Unlock()
}

// FollowerAck is one follower's progress on one relation, as last
// acked, with lag measured against the primary's current head.
type FollowerAck struct {
	Follower   string  `json:"follower"`
	Session    string  `json:"session"`
	Relation   string  `json:"relation"`
	Applied    uint64  `json:"applied"`
	Head       uint64  `json:"head"`
	LagRecords uint64  `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	Reconnects uint64  `json:"reconnects"`
	Resyncs    uint64  `json:"resyncs"`
}

// PrimarySnapshot is the primary-side replication metrics block.
type PrimarySnapshot struct {
	ActiveStreams   int           `json:"active_streams"`
	Connects        uint64        `json:"connects"`
	Disconnects     uint64        `json:"disconnects"`
	Overflows       uint64        `json:"overflows"`
	SnapshotsServed uint64        `json:"snapshots_served"`
	Followers       []FollowerAck `json:"followers,omitempty"`
}

// Snapshot returns the hub's metrics, computing per-follower lag
// against each relation's current head version.
func (h *Hub) Snapshot() PrimarySnapshot {
	h.mu.Lock()
	ps := PrimarySnapshot{
		ActiveStreams:   h.streams,
		Connects:        h.connects,
		Disconnects:     h.disconnects,
		Overflows:       h.overflows,
		SnapshotsServed: h.snapshots,
	}
	states := make([]*ackState, 0, len(h.acks))
	for _, st := range h.acks {
		c := *st
		states = append(states, &c)
	}
	h.mu.Unlock()
	for _, st := range states {
		fa := FollowerAck{
			Follower:   st.follower,
			Session:    st.session,
			Relation:   st.relation,
			Applied:    st.applied,
			Reconnects: st.reconnects,
			Resyncs:    st.resyncs,
			LagSeconds: time.Since(st.last).Seconds(),
		}
		if src, err := h.cfg.Resolve(st.session, st.relation); err == nil {
			fa.Head = src.Rel.Version()
			if fa.Head > fa.Applied {
				fa.LagRecords = fa.Head - fa.Applied
			}
		}
		ps.Followers = append(ps.Followers, fa)
	}
	sort.Slice(ps.Followers, func(i, j int) bool {
		a, b := ps.Followers[i], ps.Followers[j]
		if a.Follower != b.Follower {
			return a.Follower < b.Follower
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Relation < b.Relation
	})
	return ps
}
