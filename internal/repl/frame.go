// Package repl implements fault-tolerant follower replication by WAL
// shipping: a primary serverd streams each relation's on-disk WAL
// frames verbatim over long-lived HTTP responses, and followers apply
// them through the relation's ordinary mutation path, refresh their
// samplers, and serve read-only draws.
//
// The wire format IS the WAL frame format — [len u32][crc u32][seq
// u64][payload], CRC-32C over seq+payload — so the checksum computed
// when the primary appended the record protects it end to end; nothing
// re-encodes in between. Two extra conventions ride on top: a
// heartbeat frame carries payload [0xFF] (a byte no WAL record kind
// uses) with seq set to the primary's head version, and frame seqs are
// relation versions, so a follower detects gaps by comparing against
// its own Version() and falls back to a full snapshot resync.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameHeaderSize = 16
	// maxFramePayload matches the WAL's record bound; anything larger in
	// a length header is stream garbage, not a real frame.
	maxFramePayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a frame whose checksum or length header is
// invalid: the stream is damaged (or desynced) beyond this point and
// the connection must be abandoned.
var ErrBadFrame = errors.New("repl: bad frame")

// heartbeatByte is the payload of a heartbeat frame. WAL record kinds
// occupy small values (0..3); 0xFF can never open a real record.
const heartbeatByte = 0xFF

// AppendFrame appends one wire frame carrying payload at seq.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// AppendHeartbeat appends a heartbeat frame advertising the primary's
// head version.
func AppendHeartbeat(dst []byte, head uint64) []byte {
	return AppendFrame(dst, head, []byte{heartbeatByte})
}

// IsHeartbeat reports whether a frame payload is a heartbeat.
func IsHeartbeat(payload []byte) bool {
	return len(payload) == 1 && payload[0] == heartbeatByte
}

// FrameReader decodes and validates frames off a byte stream.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next validated frame. The payload slice is reused
// across calls. It returns io.EOF on a clean end at a frame boundary,
// io.ErrUnexpectedEOF when the stream tore mid-frame, and ErrBadFrame
// (wrapped with detail) when a checksum or length check fails.
func (fr *FrameReader) Next() (seq uint64, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		// io.EOF: clean end at a frame boundary. ErrUnexpectedEOF: torn
		// header. ReadFull already distinguishes the two.
		return 0, nil, err
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	if ln > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: length %d", ErrBadFrame, ln)
	}
	if cap(fr.buf) < int(ln) {
		fr.buf = make([]byte, ln)
	}
	fr.buf = fr.buf[:ln]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	seq = binary.LittleEndian.Uint64(hdr[8:16])
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, fr.buf)
	if crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch at seq %d", ErrBadFrame, seq)
	}
	return seq, fr.buf, nil
}

// Buffered reports bytes already pulled off the connection but not yet
// decoded; a follower uses 0 here as "caught up with the wire" and
// refreshes its samplers at that boundary instead of per frame.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }
