// Package aqp implements approximate query answering over union
// samples — the application that motivates the paper (§1: "learning
// and approximate query answering do not require the full results and
// an i.i.d sample can achieve a bounded error"). Given uniform samples
// from the set union and an estimate of |U|, it answers COUNT, SUM,
// and AVG aggregates with central-limit confidence intervals.
package aqp

import (
	"fmt"
	"math"

	"sampleunion/internal/relation"
)

// Result is an aggregate estimate with its confidence half-width at
// the requested z (e.g. 1.96 for 95%).
type Result struct {
	Value     float64
	HalfWidth float64
	N         int // samples used
}

// Interval renders the estimate as [lo, hi].
func (r Result) Interval() (lo, hi float64) {
	return r.Value - r.HalfWidth, r.Value + r.HalfWidth
}

func (r Result) String() string {
	lo, hi := r.Interval()
	return fmt.Sprintf("%.4g ± %.4g [%.4g, %.4g] (n=%d)", r.Value, r.HalfWidth, lo, hi, r.N)
}

// Count estimates COUNT(*) WHERE pred over the union: |U| times the
// satisfying fraction of the samples. unionSize is the (estimated)
// set-union size; z the confidence multiplier.
func Count(samples []relation.Tuple, schema *relation.Schema, pred relation.Predicate, unionSize, z float64) (Result, error) {
	n := len(samples)
	if n == 0 {
		return Result{}, fmt.Errorf("aqp: no samples")
	}
	hits := 0
	for _, t := range samples {
		if pred.Eval(t, schema) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	// Binomial proportion: se = sqrt(p(1-p)/n), scaled by |U|.
	se := math.Sqrt(p * (1 - p) / float64(n))
	return Result{
		Value:     unionSize * p,
		HalfWidth: unionSize * z * se,
		N:         n,
	}, nil
}

// Sum estimates SUM(attr) WHERE pred over the union: |U| times the
// mean of attr·[pred] over the samples.
func Sum(samples []relation.Tuple, schema *relation.Schema, attr string, pred relation.Predicate, unionSize, z float64) (Result, error) {
	pos := schema.Index(attr)
	if pos < 0 {
		return Result{}, fmt.Errorf("aqp: attribute %q not in schema %v", attr, schema)
	}
	n := len(samples)
	if n == 0 {
		return Result{}, fmt.Errorf("aqp: no samples")
	}
	mean, m2 := 0.0, 0.0
	for i, t := range samples {
		v := 0.0
		if pred.Eval(t, schema) {
			v = float64(t[pos])
		}
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	variance := 0.0
	if n > 1 {
		variance = m2 / float64(n-1)
	}
	se := math.Sqrt(variance / float64(n))
	return Result{
		Value:     unionSize * mean,
		HalfWidth: unionSize * z * se,
		N:         n,
	}, nil
}

// Avg estimates AVG(attr) WHERE pred over the union: the ratio of the
// Sum and Count estimators over the satisfying samples, with the
// conditional-mean standard error. It fails when no sample satisfies
// the predicate.
func Avg(samples []relation.Tuple, schema *relation.Schema, attr string, pred relation.Predicate, z float64) (Result, error) {
	pos := schema.Index(attr)
	if pos < 0 {
		return Result{}, fmt.Errorf("aqp: attribute %q not in schema %v", attr, schema)
	}
	mean, m2 := 0.0, 0.0
	k := 0
	for _, t := range samples {
		if !pred.Eval(t, schema) {
			continue
		}
		k++
		v := float64(t[pos])
		d := v - mean
		mean += d / float64(k)
		m2 += d * (v - mean)
	}
	if k == 0 {
		return Result{}, fmt.Errorf("aqp: no sample satisfies %s", pred)
	}
	variance := 0.0
	if k > 1 {
		variance = m2 / float64(k-1)
	}
	se := math.Sqrt(variance / float64(k))
	return Result{Value: mean, HalfWidth: z * se, N: k}, nil
}
