// Package aqp implements approximate query answering over union
// samples — the application that motivates the paper (§1: "learning
// and approximate query answering do not require the full results and
// an i.i.d sample can achieve a bounded error"). Given uniform samples
// from the set union and an estimate of |U|, it answers COUNT, SUM,
// and AVG aggregates with central-limit confidence intervals.
package aqp

import (
	"fmt"
	"math"

	"sampleunion/internal/relation"
)

// Result is an aggregate estimate with its confidence half-width at
// the requested z (e.g. 1.96 for 95%).
type Result struct {
	Value     float64
	HalfWidth float64
	N         int // samples used
}

// Interval renders the estimate as [lo, hi].
func (r Result) Interval() (lo, hi float64) {
	return r.Value - r.HalfWidth, r.Value + r.HalfWidth
}

func (r Result) String() string {
	lo, hi := r.Interval()
	return fmt.Sprintf("%.4g ± %.4g [%.4g, %.4g] (n=%d)", r.Value, r.HalfWidth, lo, hi, r.N)
}

// Count estimates COUNT(*) WHERE pred over the union: |U| times the
// satisfying fraction of the samples. unionSize is the (estimated)
// set-union size; z the confidence multiplier.
func Count(samples []relation.Tuple, schema *relation.Schema, pred relation.Predicate, unionSize, z float64) (Result, error) {
	n := len(samples)
	if n == 0 {
		return Result{}, fmt.Errorf("aqp: no samples")
	}
	hits := 0
	for _, t := range samples {
		if pred.Eval(t, schema) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	// Binomial proportion: se = sqrt(p(1-p)/n), scaled by |U|. The Wald
	// width degenerates to exactly 0 at hits == 0 and hits == n —
	// claiming certainty from a finite sample — so the half-width is
	// floored by the Wilson score interval, which stays positive at the
	// edges (at hits == 0 its upper bound is z²/(n+z²), the continuous
	// analogue of the rule of three's 3/n at 95%).
	return Result{
		Value:     unionSize * p,
		HalfWidth: unionSize * binomialHalfWidth(hits, n, z),
		N:         n,
	}, nil
}

// binomialHalfWidth is the half-width (on the proportion scale) of the
// interval for hits successes in n trials: the Wald width, floored so
// the interval always covers the Wilson score interval around the
// point estimate hits/n. Shared by Count and GroupCount.
func binomialHalfWidth(hits, n int, z float64) float64 {
	p := float64(hits) / float64(n)
	hw := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi := wilson(hits, n, z)
	if d := hi - p; d > hw {
		hw = d
	}
	if d := p - lo; d > hw {
		hw = d
	}
	return hw
}

// wilson is the Wilson score interval for hits successes in n trials
// at confidence multiplier z. Unlike the Wald interval it never
// collapses to a point for finite n: at hits == 0 it is
// [0, z²/(n+z²)], the continuous analogue of the rule of three's 3/n
// upper bound at 95%.
func wilson(hits, n int, z float64) (lo, hi float64) {
	h, m := float64(hits), float64(n)
	center := (h + z*z/2) / (m + z*z)
	hw := z / (m + z*z) * math.Sqrt(h*(m-h)/m+z*z/4)
	return center - hw, center + hw
}

// Sum estimates SUM(attr) WHERE pred over the union: |U| times the
// mean of attr·[pred] over the samples.
func Sum(samples []relation.Tuple, schema *relation.Schema, attr string, pred relation.Predicate, unionSize, z float64) (Result, error) {
	pos := schema.Index(attr)
	if pos < 0 {
		return Result{}, fmt.Errorf("aqp: attribute %q not in schema %v", attr, schema)
	}
	n := len(samples)
	if n == 0 {
		return Result{}, fmt.Errorf("aqp: no samples")
	}
	mean, m2 := 0.0, 0.0
	for i, t := range samples {
		v := 0.0
		if pred.Eval(t, schema) {
			v = float64(t[pos])
		}
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	variance := 0.0
	if n > 1 {
		variance = m2 / float64(n-1)
	}
	se := math.Sqrt(variance / float64(n))
	return Result{
		Value:     unionSize * mean,
		HalfWidth: unionSize * z * se,
		N:         n,
	}, nil
}

// Avg estimates AVG(attr) WHERE pred over the union: the ratio of the
// Sum and Count estimators over the satisfying samples, with the
// conditional-mean standard error. It fails when no sample satisfies
// the predicate.
func Avg(samples []relation.Tuple, schema *relation.Schema, attr string, pred relation.Predicate, z float64) (Result, error) {
	pos := schema.Index(attr)
	if pos < 0 {
		return Result{}, fmt.Errorf("aqp: attribute %q not in schema %v", attr, schema)
	}
	mean, m2 := 0.0, 0.0
	k := 0
	for _, t := range samples {
		if !pred.Eval(t, schema) {
			continue
		}
		k++
		v := float64(t[pos])
		d := v - mean
		mean += d / float64(k)
		m2 += d * (v - mean)
	}
	if k == 0 {
		return Result{}, fmt.Errorf("aqp: no sample satisfies %s", pred)
	}
	variance := 0.0
	if k > 1 {
		variance = m2 / float64(k-1)
	}
	se := math.Sqrt(variance / float64(k))
	return Result{Value: mean, HalfWidth: z * se, N: k}, nil
}
