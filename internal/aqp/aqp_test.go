package aqp

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// population builds a synthetic "union": values 0..999 with attribute
// v = i and flag = i%2.
func population() ([]relation.Tuple, *relation.Schema) {
	s := relation.NewSchema("v", "flag")
	pop := make([]relation.Tuple, 1000)
	for i := range pop {
		pop[i] = relation.Tuple{relation.Value(i), relation.Value(i % 2)}
	}
	return pop, s
}

// draw samples uniformly with replacement from the population.
func draw(pop []relation.Tuple, n int, seed int64) []relation.Tuple {
	g := rng.New(seed)
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = pop[g.Intn(len(pop))]
	}
	return out
}

func TestCountAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 1)
	pred := relation.Cmp{Attr: "flag", Op: relation.EQ, Val: 1}
	res, err := Count(samples, s, pred, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 500.0
	if math.Abs(res.Value-truth) > 3*res.HalfWidth+1e-9 {
		t.Fatalf("COUNT = %v, truth %.0f", res, truth)
	}
	lo, hi := res.Interval()
	if !(lo < truth && truth < hi) && math.Abs(res.Value-truth) > res.HalfWidth {
		t.Logf("interval missed (expected ~5%% of the time): %v", res)
	}
	if res.N != 20000 {
		t.Errorf("N = %d", res.N)
	}
}

func TestSumAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 2)
	res, err := Sum(samples, s, "v", relation.True{}, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 999.0 * 1000 / 2 // Σ 0..999
	if math.Abs(res.Value-truth) > 3*res.HalfWidth {
		t.Fatalf("SUM = %v, truth %.0f", res, truth)
	}
}

func TestSumWithPredicate(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 30000, 3)
	pred := relation.Cmp{Attr: "v", Op: relation.LT, Val: 100}
	res, err := Sum(samples, s, "v", pred, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 99.0 * 100 / 2
	if math.Abs(res.Value-truth) > 4*res.HalfWidth {
		t.Fatalf("conditional SUM = %v, truth %.0f", res, truth)
	}
}

func TestAvgAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 4)
	pred := relation.Cmp{Attr: "flag", Op: relation.EQ, Val: 0}
	res, err := Avg(samples, s, "v", pred, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 499.0 // mean of even numbers 0..998
	if math.Abs(res.Value-truth) > 3*res.HalfWidth {
		t.Fatalf("AVG = %v, truth %.0f", res, truth)
	}
	if res.N >= 20000 || res.N == 0 {
		t.Errorf("conditional N = %d", res.N)
	}
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	pop, s := population()
	small, _ := Sum(draw(pop, 500, 5), s, "v", relation.True{}, 1000, 1.96)
	big, _ := Sum(draw(pop, 50000, 5), s, "v", relation.True{}, 1000, 1.96)
	if !(big.HalfWidth < small.HalfWidth) {
		t.Fatalf("half width did not shrink: %f -> %f", small.HalfWidth, big.HalfWidth)
	}
}

func TestErrorCases(t *testing.T) {
	_, s := population()
	if _, err := Count(nil, s, relation.True{}, 10, 1.96); err == nil {
		t.Error("empty Count accepted")
	}
	if _, err := Sum(nil, s, "v", relation.True{}, 10, 1.96); err == nil {
		t.Error("empty Sum accepted")
	}
	samples := []relation.Tuple{{1, 0}}
	if _, err := Sum(samples, s, "bogus", relation.True{}, 10, 1.96); err == nil {
		t.Error("unknown attribute accepted in Sum")
	}
	if _, err := Avg(samples, s, "bogus", relation.True{}, 1.96); err == nil {
		t.Error("unknown attribute accepted in Avg")
	}
	never := relation.Cmp{Attr: "v", Op: relation.GT, Val: 10}
	if _, err := Avg(samples, s, "v", never, 1.96); err == nil {
		t.Error("Avg over empty support accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Value: 10, HalfWidth: 2, N: 5}
	if r.String() == "" {
		t.Error("empty render")
	}
	lo, hi := r.Interval()
	if lo != 8 || hi != 12 {
		t.Errorf("interval = [%f, %f]", lo, hi)
	}
}
