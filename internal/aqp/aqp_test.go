package aqp

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// population builds a synthetic "union": values 0..999 with attribute
// v = i and flag = i%2.
func population() ([]relation.Tuple, *relation.Schema) {
	s := relation.NewSchema("v", "flag")
	pop := make([]relation.Tuple, 1000)
	for i := range pop {
		pop[i] = relation.Tuple{relation.Value(i), relation.Value(i % 2)}
	}
	return pop, s
}

// draw samples uniformly with replacement from the population.
func draw(pop []relation.Tuple, n int, seed int64) []relation.Tuple {
	g := rng.New(seed)
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = pop[g.Intn(len(pop))]
	}
	return out
}

func TestCountAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 1)
	pred := relation.Cmp{Attr: "flag", Op: relation.EQ, Val: 1}
	res, err := Count(samples, s, pred, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 500.0
	if math.Abs(res.Value-truth) > 3*res.HalfWidth+1e-9 {
		t.Fatalf("COUNT = %v, truth %.0f", res, truth)
	}
	lo, hi := res.Interval()
	if !(lo < truth && truth < hi) && math.Abs(res.Value-truth) > res.HalfWidth {
		t.Logf("interval missed (expected ~5%% of the time): %v", res)
	}
	if res.N != 20000 {
		t.Errorf("N = %d", res.N)
	}
}

func TestSumAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 2)
	res, err := Sum(samples, s, "v", relation.True{}, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 999.0 * 1000 / 2 // Σ 0..999
	if math.Abs(res.Value-truth) > 3*res.HalfWidth {
		t.Fatalf("SUM = %v, truth %.0f", res, truth)
	}
}

func TestSumWithPredicate(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 30000, 3)
	pred := relation.Cmp{Attr: "v", Op: relation.LT, Val: 100}
	res, err := Sum(samples, s, "v", pred, float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 99.0 * 100 / 2
	if math.Abs(res.Value-truth) > 4*res.HalfWidth {
		t.Fatalf("conditional SUM = %v, truth %.0f", res, truth)
	}
}

func TestAvgAccuracy(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 20000, 4)
	pred := relation.Cmp{Attr: "flag", Op: relation.EQ, Val: 0}
	res, err := Avg(samples, s, "v", pred, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	truth := 499.0 // mean of even numbers 0..998
	if math.Abs(res.Value-truth) > 3*res.HalfWidth {
		t.Fatalf("AVG = %v, truth %.0f", res, truth)
	}
	if res.N >= 20000 || res.N == 0 {
		t.Errorf("conditional N = %d", res.N)
	}
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	pop, s := population()
	small, _ := Sum(draw(pop, 500, 5), s, "v", relation.True{}, 1000, 1.96)
	big, _ := Sum(draw(pop, 50000, 5), s, "v", relation.True{}, 1000, 1.96)
	if !(big.HalfWidth < small.HalfWidth) {
		t.Fatalf("half width did not shrink: %f -> %f", small.HalfWidth, big.HalfWidth)
	}
}

func TestErrorCases(t *testing.T) {
	_, s := population()
	if _, err := Count(nil, s, relation.True{}, 10, 1.96); err == nil {
		t.Error("empty Count accepted")
	}
	if _, err := Sum(nil, s, "v", relation.True{}, 10, 1.96); err == nil {
		t.Error("empty Sum accepted")
	}
	samples := []relation.Tuple{{1, 0}}
	if _, err := Sum(samples, s, "bogus", relation.True{}, 10, 1.96); err == nil {
		t.Error("unknown attribute accepted in Sum")
	}
	if _, err := Avg(samples, s, "bogus", relation.True{}, 1.96); err == nil {
		t.Error("unknown attribute accepted in Avg")
	}
	never := relation.Cmp{Attr: "v", Op: relation.GT, Val: 10}
	if _, err := Avg(samples, s, "v", never, 1.96); err == nil {
		t.Error("Avg over empty support accepted")
	}
}

// TestCountDegenerateEdges regresses the zero-half-width bug: with
// hits == 0 or hits == n the binomial SE degenerates to 0, and the old
// Wald-only interval claimed certainty from a finite sample. The
// Wilson floor must keep the interval open at both edges, at about the
// rule-of-three scale (3/n at 95%), and must cover plausible truths.
func TestCountDegenerateEdges(t *testing.T) {
	pop, s := population()
	const n = 2000
	unionSize := float64(len(pop))
	samples := draw(pop, n, 6)

	never := relation.Cmp{Attr: "v", Op: relation.GE, Val: relation.Value(len(pop))}
	always := relation.True{}

	zero, err := Count(samples, s, never, unionSize, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Value != 0 {
		t.Fatalf("hits==0: estimate %v, want 0", zero.Value)
	}
	if zero.HalfWidth <= 0 {
		t.Fatalf("hits==0: half-width %v, want > 0 (zero claims certainty)", zero.HalfWidth)
	}
	// Rule-of-three scale: upper bound ≈ z²/n · |U|, and not orders
	// of magnitude wider.
	ruleOfThree := 3.0 / float64(n) * unionSize
	if _, hi := zero.Interval(); hi < ruleOfThree || hi > 3*ruleOfThree {
		t.Fatalf("hits==0: upper bound %v, want within [%v, %v]", hi, ruleOfThree, 3*ruleOfThree)
	}

	full, err := Count(samples, s, always, unionSize, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if full.Value != unionSize {
		t.Fatalf("hits==n: estimate %v, want %v", full.Value, unionSize)
	}
	if full.HalfWidth <= 0 {
		t.Fatalf("hits==n: half-width %v, want > 0", full.HalfWidth)
	}
	if lo, _ := full.Interval(); lo > unionSize-ruleOfThree/3 || lo < unionSize-3*ruleOfThree {
		t.Fatalf("hits==n: lower bound %v, want just below %v", lo, unionSize)
	}

	// Non-degenerate counts keep (at least) the Wald width.
	mid, err := Count(samples, s, relation.Cmp{Attr: "flag", Op: relation.EQ, Val: 1}, unionSize, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	p := float64(0)
	for _, tp := range samples {
		if tp[1] == 1 {
			p++
		}
	}
	p /= float64(n)
	wald := unionSize * 1.96 * math.Sqrt(p*(1-p)/float64(n))
	if mid.HalfWidth < wald-1e-9 {
		t.Fatalf("mid-range half-width %v narrower than Wald %v", mid.HalfWidth, wald)
	}
}

// TestGroupCountDegenerateEdge regresses GroupCount's analogue of the
// Count bug: a group holding every sample (p == 1) must not claim a
// zero-width interval.
func TestGroupCountDegenerateEdge(t *testing.T) {
	s := relation.NewSchema("v", "g")
	samples := make([]relation.Tuple, 500)
	for i := range samples {
		samples[i] = relation.Tuple{relation.Value(i), relation.Value(7)} // single group
	}
	groups, err := GroupCount(samples, s, "g", 1000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Key != 7 || g.Count.Value != 1000 {
		t.Fatalf("group %+v, want key 7 value 1000", g)
	}
	if g.Count.HalfWidth <= 0 {
		t.Fatalf("full-sample group has zero half-width: %+v", g.Count)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Value: 10, HalfWidth: 2, N: 5}
	if r.String() == "" {
		t.Error("empty render")
	}
	lo, hi := r.Interval()
	if lo != 8 || hi != 12 {
		t.Errorf("interval = [%f, %f]", lo, hi)
	}
}
