package aqp

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
)

func TestGroupCount(t *testing.T) {
	pop, s := population()
	samples := draw(pop, 30000, 9)
	groups, err := GroupCount(samples, s, "flag", float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for _, g := range groups {
		if math.Abs(g.Count.Value-500) > 3*g.Count.HalfWidth {
			t.Errorf("group %d = %v, truth 500", g.Key, g.Count)
		}
	}
	// Descending order by estimate.
	if groups[0].Count.Value < groups[1].Count.Value {
		t.Error("groups not sorted descending")
	}
}

func TestGroupCountSkewed(t *testing.T) {
	s := relation.NewSchema("g")
	var pop []relation.Tuple
	// group 0: 900 members, group 1: 90, group 2: 10.
	for i := 0; i < 900; i++ {
		pop = append(pop, relation.Tuple{0})
	}
	for i := 0; i < 90; i++ {
		pop = append(pop, relation.Tuple{1})
	}
	for i := 0; i < 10; i++ {
		pop = append(pop, relation.Tuple{2})
	}
	samples := draw(pop, 50000, 10)
	groups, err := GroupCount(samples, s, "g", float64(len(pop)), 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	want := []float64{900, 90, 10}
	for i, g := range groups {
		if math.Abs(g.Count.Value-want[i]) > 4*g.Count.HalfWidth+1 {
			t.Errorf("group %d = %v, want ~%.0f", g.Key, g.Count, want[i])
		}
	}
}

func TestGroupCountErrors(t *testing.T) {
	_, s := population()
	if _, err := GroupCount(nil, s, "flag", 10, 1.96); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := GroupCount([]relation.Tuple{{1, 0}}, s, "bogus", 10, 1.96); err == nil {
		t.Error("unknown attribute accepted")
	}
}
