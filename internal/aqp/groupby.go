package aqp

import (
	"fmt"
	"sort"

	"sampleunion/internal/relation"
)

// Group is one group's estimated share of the union.
type Group struct {
	Key   relation.Value
	Count Result
}

// GroupCount estimates COUNT(*) GROUP BY attr over the union: each
// distinct value of attr observed in the samples gets an estimated
// group size with a binomial confidence half-width. Groups are returned
// in descending estimated size, ties broken by key.
//
// Rare groups may be absent from the sample entirely; with n samples,
// groups smaller than about |U|/n are expected to be missed — the
// usual small-group caveat of sampling-based AQP.
func GroupCount(samples []relation.Tuple, schema *relation.Schema, attr string, unionSize, z float64) ([]Group, error) {
	pos := schema.Index(attr)
	if pos < 0 {
		return nil, fmt.Errorf("aqp: attribute %q not in schema %v", attr, schema)
	}
	n := len(samples)
	if n == 0 {
		return nil, fmt.Errorf("aqp: no samples")
	}
	counts := make(map[relation.Value]int)
	for _, t := range samples {
		counts[t[pos]]++
	}
	out := make([]Group, 0, len(counts))
	for k, c := range counts {
		p := float64(c) / float64(n)
		// Same Wilson floor as Count: a group holding every sample
		// (c == n) must not claim a zero-width interval.
		out = append(out, Group{
			Key: k,
			Count: Result{
				Value:     unionSize * p,
				HalfWidth: unionSize * binomialHalfWidth(c, n, z),
				N:         c,
			},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count.Value != out[j].Count.Value {
			return out[i].Count.Value > out[j].Count.Value
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}
