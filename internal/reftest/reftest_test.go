package reftest

import (
	"fmt"
	"math/rand"
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
)

// scenario is one randomized differential-testing instance: a union of
// joins plus the raw relation lists each join was built from (the
// reference enumerator's input).
type scenario struct {
	name    string
	union   *su.Union
	relSets [][]*relation.Relation // per join: its base relations
	rels    []*relation.Relation   // deduped, for mutation bursts
}

// chiZ is the normal deviation for chi-square thresholds: p ~ 1e-8 per
// check, so hundreds of seeded checks produce no false positives.
const chiZ = 5.7

// hasLiveRow reports whether r already holds row (live). The engine
// follows the paper's §3 set semantics — no duplicate rows per relation
// — so the generators keep instances duplicate-free: a duplicated base
// row would legitimately double its combinations' draw probability
// while the by-value reference counts them once.
func hasLiveRow(r *relation.Relation, row relation.Tuple) bool {
	for i := 0; i < r.Len(); i++ {
		if r.Live(i) && r.Row(i).Equal(row) {
			return true
		}
	}
	return false
}

func appendUnique(r *relation.Relation, row relation.Tuple) bool {
	if hasLiveRow(r, row) {
		return false
	}
	r.Append(row)
	return true
}

func randRow(rnd *rand.Rand, arity int) relation.Tuple {
	row := make(relation.Tuple, arity)
	for j := range row {
		row[j] = relation.Value(rnd.Intn(4))
	}
	return row
}

func randRel(rnd *rand.Rand, name string, attrs ...string) *relation.Relation {
	r := relation.New(name, relation.NewSchema(attrs...))
	n := 4 + rnd.Intn(5)
	for i := 0; i < n; i++ {
		appendUnique(r, randRow(rnd, len(attrs)))
	}
	return r
}

func dedup(sets [][]*relation.Relation) []*relation.Relation {
	seen := make(map[*relation.Relation]bool)
	var out []*relation.Relation
	for _, set := range sets {
		for _, r := range set {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// buildScenario constructs one of five shapes from the seed: two-chain
// union, three-relation chain, star tree, cyclic triangle, or a mixed
// chain+triangle union.
func buildScenario(t *testing.T, seed int64) *scenario {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	shape := int(seed) % 5
	mkChain := func(tag string, attrs [][]string, joinAttrs []string) (*su.Join, []*relation.Relation) {
		rels := make([]*relation.Relation, len(attrs))
		for i, as := range attrs {
			rels[i] = randRel(rnd, fmt.Sprintf("%s_%d", tag, i), as...)
		}
		j, err := su.Chain(tag, rels, joinAttrs)
		if err != nil {
			t.Fatal(err)
		}
		return j, rels
	}
	sc := &scenario{}
	switch shape {
	case 0: // union of two 2-relation chains
		sc.name = "chain2x2"
		j1, r1 := mkChain("c1", [][]string{{"A", "B"}, {"B", "C"}}, []string{"B"})
		j2, r2 := mkChain("c2", [][]string{{"A", "B"}, {"B", "C"}}, []string{"B"})
		u, err := su.NewUnion(j1, j2)
		if err != nil {
			t.Fatal(err)
		}
		sc.union, sc.relSets = u, [][]*relation.Relation{r1, r2}
	case 1: // single 3-relation chain
		sc.name = "chain3"
		j, r := mkChain("c", [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}, []string{"B", "C"})
		u, err := su.NewUnion(j)
		if err != nil {
			t.Fatal(err)
		}
		sc.union, sc.relSets = u, [][]*relation.Relation{r}
	case 2: // star tree: two children join the root on B
		sc.name = "tree"
		rels := []*relation.Relation{
			randRel(rnd, "root", "A", "B"),
			randRel(rnd, "left", "B", "C"),
			randRel(rnd, "right", "B", "D"),
		}
		j, err := su.Tree("t", rels, []int{-1, 0, 0}, []string{"", "B", "B"})
		if err != nil {
			t.Fatal(err)
		}
		u, err := su.NewUnion(j)
		if err != nil {
			t.Fatal(err)
		}
		sc.union, sc.relSets = u, [][]*relation.Relation{rels}
	case 3: // cyclic triangle
		sc.name = "triangle"
		rels := []*relation.Relation{
			randRel(rnd, "R", "A", "B"),
			randRel(rnd, "S", "B", "C"),
			randRel(rnd, "T", "C", "A"),
		}
		j, err := su.Cyclic("tri", rels, []su.Edge{
			{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := su.NewUnion(j)
		if err != nil {
			t.Fatal(err)
		}
		sc.union, sc.relSets = u, [][]*relation.Relation{rels}
	default: // union of a chain and a triangle over A,B,C
		sc.name = "mixed"
		j1, r1 := mkChain("c", [][]string{{"A", "B"}, {"B", "C"}}, []string{"B"})
		rels := []*relation.Relation{
			randRel(rnd, "R", "A", "B"),
			randRel(rnd, "S", "B", "C"),
			randRel(rnd, "T", "C", "A"),
		}
		j2, err := su.Cyclic("tri", rels, []su.Edge{
			{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := su.NewUnion(j1, j2)
		if err != nil {
			t.Fatal(err)
		}
		sc.union, sc.relSets = u, [][]*relation.Relation{r1, rels}
	}
	sc.rels = dedup(sc.relSets)
	return sc
}

// reference recomputes the brute-force union of the scenario's joins
// from the relations' current live tuples.
func (sc *scenario) reference() (map[string]relation.Tuple, map[string]int) {
	out := sc.union.OutputSchema()
	perJoin := make([]map[string]relation.Tuple, len(sc.relSets))
	for i, rels := range sc.relSets {
		perJoin[i] = JoinResults(rels, out)
	}
	return UnionResults(perJoin)
}

// ensureNonEmpty appends an all-zero row to every relation, which
// guarantees the all-zero output tuple in every join — mutation bursts
// can otherwise empty a small union, which the sampler correctly
// refuses to prepare over.
func (sc *scenario) ensureNonEmpty() {
	union, _ := sc.reference()
	if len(union) > 0 {
		return
	}
	for _, r := range sc.rels {
		appendUnique(r, make(relation.Tuple, r.Arity()))
	}
}

// drawCount picks a sample size with expected per-tuple counts around
// 50, so coverage is certain and chi-square is well-powered.
func drawCount(unionSize int) int {
	n := 50 * unionSize
	if n < 1000 {
		n = 1000
	}
	if n > 8000 {
		n = 8000
	}
	return n
}

// checkDraws verifies exact membership (and full coverage when
// expected counts are high) and, when strict, chi-square uniformity of
// the draws against the expected weights.
func checkDraws(t *testing.T, label string, draws []relation.Tuple, weights map[string]float64, strict bool) {
	t.Helper()
	obs := make(map[string]int, len(weights))
	for _, tup := range draws {
		k := relation.TupleKey(tup)
		if _, ok := weights[k]; !ok {
			t.Fatalf("%s: sampled tuple %v is not a reference result", label, tup)
		}
		obs[k]++
	}
	if len(draws) >= 40*len(weights) {
		for k := range weights {
			if obs[k] == 0 {
				t.Fatalf("%s: reference tuple %x never sampled in %d draws", label, k, len(draws))
			}
		}
	}
	if !strict {
		return
	}
	stat, df := ChiSquare(obs, weights)
	if crit := ChiSquareCritical(df, chiZ); stat > crit {
		t.Fatalf("%s: chi-square %0.1f > %0.1f (df %d): draws are not distributed as expected", label, stat, crit, df)
	}
}

// mutationBurst applies a random batch of appends and deletes across
// the scenario's base relations.
func mutationBurst(rnd *rand.Rand, rels []*relation.Relation) {
	for _, r := range rels {
		switch rnd.Intn(3) {
		case 0: // batch append (duplicate-free, widening the value domain)
			n := 1 + rnd.Intn(3)
			var rows []relation.Tuple
			for i := 0; i < n; i++ {
				row := make(relation.Tuple, r.Arity())
				for j := range row {
					row[j] = relation.Value(rnd.Intn(5))
				}
				dup := hasLiveRow(r, row)
				for _, prev := range rows {
					if prev.Equal(row) {
						dup = true
					}
				}
				if !dup {
					rows = append(rows, row)
				}
			}
			r.AppendRows(rows)
		case 1: // delete a random live row
			if r.LiveLen() > 1 {
				for {
					i := rnd.Intn(r.Len())
					if r.Live(i) {
						r.Delete(i)
						break
					}
				}
			}
		default: // single append
			appendUnique(r, randRow(rnd, r.Arity()))
		}
	}
}

// TestDifferentialUniform drives >= 50 randomized scenarios through the
// provably uniform configuration (exact warm-up + membership oracle,
// subroutine rotating EW/EO/WJ): sampler output must be exactly the
// reference union by membership, fully covered, and uniform by
// chi-square — statically, and again after two random mutation bursts
// and a session refresh.
func TestDifferentialUniform(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 60; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, _ := sc.reference()
		if len(union) == 0 || len(union) > 400 {
			continue
		}
		method := []su.Method{su.MethodEW, su.MethodEO, su.MethodWJ}[seed%3]
		sess, err := sc.union.Prepare(su.Options{
			Seed: seed + 1, Warmup: su.WarmupExact, Method: method, Oracle: true,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): prepare: %v", seed, sc.name, err)
		}
		label := fmt.Sprintf("seed %d (%s, %v) static", seed, sc.name, method)
		draws, _, err := sess.SampleSeeded(drawCount(len(union)), seed*7+3)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		checkDraws(t, label, draws, UniformWeights(union), true)

		// Mutation bursts: mutate, refresh the warm session, re-derive the
		// reference, re-check.
		rnd := rand.New(rand.NewSource(seed + 1000))
		for burst := 0; burst < 2; burst++ {
			mutationBurst(rnd, sc.rels)
			sc.ensureNonEmpty()
			if err := sess.Refresh(); err != nil {
				t.Fatalf("seed %d (%s) burst %d: refresh: %v", seed, sc.name, burst, err)
			}
			union, _ = sc.reference()
			if len(union) == 0 || len(union) > 400 {
				break
			}
			label := fmt.Sprintf("seed %d (%s, %v) burst %d", seed, sc.name, method, burst)
			draws, _, err := sess.SampleSeeded(drawCount(len(union)), seed*11+int64(burst)+5)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			checkDraws(t, label, draws, UniformWeights(union), true)
		}
		executed++
	}
	if executed < 50 {
		t.Fatalf("only %d scenarios executed; differential coverage requires >= 50", executed)
	}
}

// TestDifferentialRecordAndOnline runs the record-based (non-oracle)
// and online configurations through the same scenarios: their
// uniformity is asymptotic, so the check is exact membership plus
// coverage rather than strict chi-square.
func TestDifferentialRecordAndOnline(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 24; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, _ := sc.reference()
		if len(union) == 0 || len(union) > 400 {
			continue
		}
		opts := su.Options{Seed: seed + 2, Warmup: su.WarmupExact, Method: su.MethodEW}
		if seed%2 == 1 {
			opts = su.Options{Seed: seed + 2, Online: true, WarmupWalks: 80}
		}
		sess, err := sc.union.Prepare(opts)
		if err != nil {
			t.Fatalf("seed %d (%s): prepare: %v", seed, sc.name, err)
		}
		draws, _, err := sess.SampleSeeded(drawCount(len(union)), seed*13+1)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.name, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) static", seed, sc.name), draws, UniformWeights(union), false)

		rnd := rand.New(rand.NewSource(seed + 2000))
		mutationBurst(rnd, sc.rels)
		sc.ensureNonEmpty()
		if err := sess.Refresh(); err != nil {
			t.Fatalf("seed %d (%s): refresh: %v", seed, sc.name, err)
		}
		union, _ = sc.reference()
		if len(union) == 0 || len(union) > 400 {
			continue
		}
		draws, _, err = sess.SampleSeeded(drawCount(len(union)), seed*17+2)
		if err != nil {
			t.Fatalf("seed %d (%s) post-burst: %v", seed, sc.name, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) post-burst", seed, sc.name), draws, UniformWeights(union), false)
		executed++
	}
	if executed < 10 {
		t.Fatalf("only %d record/online scenarios executed", executed)
	}
}

// TestDifferentialDisjoint checks the disjoint-union sampler against
// Definition 1: tuple frequency proportional to how many joins produce
// it (exact under EW sizes), statically and after a mutation burst.
func TestDifferentialDisjoint(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 20; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, mult := sc.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		sess, err := sc.union.Prepare(su.Options{Seed: seed + 3, Warmup: su.WarmupExact, Method: su.MethodEW})
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		draws, _, err := sess.SampleDisjointSeeded(drawCount(len(union)), seed*19+1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) disjoint", seed, sc.name), draws, DisjointWeights(mult), true)

		rnd := rand.New(rand.NewSource(seed + 3000))
		mutationBurst(rnd, sc.rels)
		sc.ensureNonEmpty()
		if err := sess.Refresh(); err != nil {
			t.Fatalf("seed %d: refresh: %v", seed, err)
		}
		union, mult = sc.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		draws, _, err = sess.SampleDisjointSeeded(drawCount(len(union)), seed*23+1)
		if err != nil {
			t.Fatalf("seed %d post-burst: %v", seed, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) disjoint post-burst", seed, sc.name), draws, DisjointWeights(mult), true)
		executed++
	}
	if executed < 8 {
		t.Fatalf("only %d disjoint scenarios executed", executed)
	}
}

// TestDifferentialPredicates checks sampling-time predicate enforcement
// (§8.3) against the filtered reference: uniform over the satisfying
// subset, statically and after a mutation burst.
func TestDifferentialPredicates(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 20; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		pred := su.Cmp{Attr: "A", Op: su.LE, Val: 1}
		filter := func(union map[string]relation.Tuple) map[string]relation.Tuple {
			out := sc.union.OutputSchema()
			f := make(map[string]relation.Tuple)
			for k, tup := range union {
				if pred.Eval(tup, out) {
					f[k] = tup
				}
			}
			return f
		}
		union, _ := sc.reference()
		filtered := filter(union)
		if len(filtered) == 0 || len(union) > 300 || len(filtered) < 2 {
			continue
		}
		sess, err := sc.union.Prepare(su.Options{Seed: seed + 4, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true})
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		draws, _, err := sess.SampleWhereSeeded(drawCount(len(filtered)), pred, seed*29+1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) where", seed, sc.name), draws, UniformWeights(filtered), true)

		rnd := rand.New(rand.NewSource(seed + 4000))
		mutationBurst(rnd, sc.rels)
		sc.ensureNonEmpty()
		if err := sess.Refresh(); err != nil {
			t.Fatalf("seed %d: refresh: %v", seed, err)
		}
		union, _ = sc.reference()
		filtered = filter(union)
		if len(filtered) == 0 || len(union) > 300 {
			continue
		}
		draws, _, err = sess.SampleWhereSeeded(drawCount(len(filtered)), pred, seed*31+1)
		if err != nil {
			t.Fatalf("seed %d post-burst: %v", seed, err)
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) where post-burst", seed, sc.name), draws, UniformWeights(filtered), true)
		executed++
	}
	if executed < 8 {
		t.Fatalf("only %d predicate scenarios executed", executed)
	}
}
