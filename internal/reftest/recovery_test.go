package reftest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// This file is the durability layer's differential-testing harness:
// randomized scenarios run a logged mutation burst, the process "crash"
// is simulated by abandoning the logs and tearing the WAL tail (and
// sometimes the newest checkpoint) at an arbitrary byte offset, and
// recovery into a fresh same-seed build must land on an exact prefix of
// the recorded mutation script — with contents, and seeded draws,
// identical to a clean replay of that prefix.

// walOp is one recorded mutation: a concrete append row or a concrete
// physical delete index, so a golden replay of any prefix is exact.
type walOp struct {
	del bool
	row relation.Tuple
	idx int
}

func applyWalOp(r *relation.Relation, o walOp) {
	if o.del {
		r.Delete(o.idx)
	} else {
		r.Append(o.row)
	}
}

// relStateEqual compares full physical state — length, version, the
// liveness bitmap, and every stored value (dead rows keep their values
// under both checkpoint restore and WAL replay), because the samplers'
// determinism depends on physical layout, not just live contents.
func relStateEqual(a, b *relation.Relation) error {
	if a.Len() != b.Len() || a.Version() != b.Version() {
		return fmt.Errorf("len/version %d/%d vs %d/%d", a.Len(), a.Version(), b.Len(), b.Version())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Live(i) != b.Live(i) {
			return fmt.Errorf("row %d liveness %v vs %v", i, a.Live(i), b.Live(i))
		}
		if !a.Row(i).Equal(b.Row(i)) {
			return fmt.Errorf("row %d %v vs %v", i, a.Row(i), b.Row(i))
		}
	}
	return nil
}

// TestCrashRecoveryMatchesGolden is the crash-recovery property test:
// for randomized scenarios and randomized teardown points, recovery
// (checkpoint restore + WAL replay over the deterministic base build)
// must reconstruct exactly some prefix of the committed mutation
// script — all of it when nothing was torn — and a session prepared
// over the recovered relations must produce draws byte-identical to
// one prepared over a clean replay of the same prefix, uniform over
// the recovered union by chi-square.
func TestCrashRecoveryMatchesGolden(t *testing.T) {
	opts := wal.RelationLogOptions{
		Options:         wal.Options{Policy: wal.SyncNever, SegmentBytes: 512},
		CheckpointEvery: 6,
	}
	executed, torn, drawn := 0, 0, 0
	for seed := int64(0); seed < 14; seed++ {
		root := t.TempDir()

		// Live run: deterministic base, then a logged mutation burst with
		// a commit per op and occasional checkpoints. SegmentBytes 512
		// forces rotation, so checkpoints also exercise WAL truncation.
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		logs := make([]*wal.RelationLog, len(sc.rels))
		for i, r := range sc.rels {
			rl, err := wal.OpenRelationLog(filepath.Join(root, r.Name()), r, opts)
			if err != nil {
				t.Fatalf("seed %d: open log for %s: %v", seed, r.Name(), err)
			}
			if rl.Recovered() != 0 {
				t.Fatalf("seed %d: fresh directory recovered %d mutations", seed, rl.Recovered())
			}
			rl.Attach()
			logs[i] = rl
		}
		rnd := rand.New(rand.NewSource(seed + 7000))
		scripts := make([][]walOp, len(sc.rels))
		for i, r := range sc.rels {
			nops := 20 + rnd.Intn(20)
			for len(scripts[i]) < nops {
				var o walOp
				if r.LiveLen() > 1 && rnd.Intn(4) == 0 {
					for {
						idx := rnd.Intn(r.Len())
						if r.Live(idx) {
							o = walOp{del: true, idx: idx}
							break
						}
					}
				} else {
					row := make(relation.Tuple, r.Arity())
					if rnd.Intn(2) == 0 {
						for j := range row {
							row[j] = relation.Value(rnd.Intn(4))
						}
						if hasLiveRow(r, row) {
							continue // keep instances duplicate-free for the reference
						}
					} else {
						// Out-of-domain filler: crosses checkpoint and segment
						// boundaries without exploding the union.
						for j := range row {
							row[j] = relation.Value(1000 + len(scripts[i])*7 + j)
						}
					}
					o = walOp{row: row}
				}
				applyWalOp(r, o)
				if err := logs[i].Commit(); err != nil {
					t.Fatalf("seed %d: commit on %s: %v", seed, r.Name(), err)
				}
				scripts[i] = append(scripts[i], o)
				if rnd.Intn(7) == 0 {
					if err := logs[i].Checkpoint(); err != nil {
						t.Fatalf("seed %d: checkpoint on %s: %v", seed, r.Name(), err)
					}
				}
			}
			logs[i].Close()
		}

		// Crash: tear one relation's WAL tail at an arbitrary byte offset
		// (often mid-record), and sometimes also chop the newest
		// checkpoint so recovery must fall back to the previous one (or
		// the base build) plus the retained WAL.
		tearRel := rnd.Intn(len(sc.rels))
		mode := rnd.Intn(3)
		if mode > 0 {
			walDir := filepath.Join(root, sc.rels[tearRel].Name(), "wal")
			segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(segs)
			if len(segs) > 0 {
				last := segs[len(segs)-1]
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				if fi.Size() > 0 {
					if err := os.Truncate(last, int64(rnd.Intn(int(fi.Size())))); err != nil {
						t.Fatal(err)
					}
					torn++
				}
			}
		}
		if mode == 2 {
			ckptDir := filepath.Join(root, sc.rels[tearRel].Name(), "checkpoint")
			cks, err := filepath.Glob(filepath.Join(ckptDir, "*"+".ckpt"))
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(cks)
			if len(cks) > 0 {
				last := cks[len(cks)-1]
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(last, fi.Size()/2); err != nil {
					t.Fatal(err)
				}
			}
		}

		// Recovery: a fresh same-seed build plus OpenRelationLog must land
		// each relation on an exact prefix of its script.
		sc2 := buildScenario(t, seed)
		sc2.ensureNonEmpty()
		ks := make([]int, len(sc2.rels))
		for i, r := range sc2.rels {
			rl, err := wal.OpenRelationLog(filepath.Join(root, r.Name()), r, opts)
			if err != nil {
				t.Fatalf("seed %d: recover %s: %v", seed, r.Name(), err)
			}
			k := rl.Recovered()
			rl.Close()
			if k > len(scripts[i]) {
				t.Fatalf("seed %d: %s recovered %d mutations, script has %d", seed, r.Name(), k, len(scripts[i]))
			}
			if (i != tearRel || mode == 0) && k != len(scripts[i]) {
				t.Fatalf("seed %d: untorn %s recovered %d of %d committed mutations", seed, r.Name(), k, len(scripts[i]))
			}
			ks[i] = k
		}

		// Golden: clean replay of each surviving prefix over another
		// same-seed build; physical state must match exactly.
		sc3 := buildScenario(t, seed)
		sc3.ensureNonEmpty()
		for i, r := range sc3.rels {
			for _, o := range scripts[i][:ks[i]] {
				applyWalOp(r, o)
			}
			if err := relStateEqual(sc2.rels[i], r); err != nil {
				t.Fatalf("seed %d: recovered %s diverges from golden replay of %d ops: %v",
					seed, r.Name(), ks[i], err)
			}
		}
		executed++

		// Draw equivalence: sessions prepared over the recovered and the
		// golden relations must agree draw for draw, and match the
		// reference distribution.
		union, _ := sc3.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		prep := func(u *su.Union) *su.Session {
			sess, err := u.Prepare(su.Options{Seed: seed + 5, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true})
			if err != nil {
				t.Fatalf("seed %d: prepare: %v", seed, err)
			}
			return sess
		}
		n := drawCount(len(union))
		want, _, err := prep(sc3.union).SampleSeeded(n, seed*37+1)
		if err != nil {
			t.Fatalf("seed %d: golden draw: %v", seed, err)
		}
		got, _, err := prep(sc2.union).SampleSeeded(n, seed*37+1)
		if err != nil {
			t.Fatalf("seed %d: recovered draw: %v", seed, err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("seed %d: draw %d diverged after recovery: %v vs %v", seed, i, got[i], want[i])
			}
		}
		checkDraws(t, fmt.Sprintf("seed %d (%s) recovered", seed, sc2.name), got, UniformWeights(union), true)
		drawn++
	}
	if executed < 10 || torn < 3 || drawn < 5 {
		t.Fatalf("coverage drifted: %d scenarios, %d torn tails, %d draw checks", executed, torn, drawn)
	}
}
