package reftest

import (
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
)

// TestApproxIntervalCalibration checks the Approx* estimators'
// confidence intervals against ground truth: over reftest scenarios
// whose exact COUNT and SUM answers come from the brute-force
// reference enumerator, the 95% intervals must cover the truth at
// roughly the nominal rate. Sessions run WarmupExact + Oracle, so the
// draws are exactly uniform and |U| is exact — any calibration failure
// is the interval construction itself. This guards the Wilson-floor
// fix in internal/aqp and any future estimator change.
func TestApproxIntervalCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical calibration test")
	}
	const (
		repsPerScenario = 40
		drawsPerRep     = 250
	)
	countCovered, countTotal := 0, 0
	sumCovered, sumTotal := 0, 0

	for _, seed := range []int64{11, 12, 13, 14, 15, 16} {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, _ := sc.reference()
		out := sc.union.OutputSchema()
		attr := out.Attr(0)

		// Predicate: first output attribute <= 1 (values are 0..3), a
		// mid-range selectivity on most instances.
		pred := relation.Cmp{Attr: attr, Op: relation.LE, Val: 1}
		countTruth, sumTruth := 0.0, 0.0
		for _, tup := range union {
			sumTruth += float64(tup[0])
			if pred.Eval(tup, out) {
				countTruth++
			}
		}
		if countTruth == 0 || countTruth == float64(len(union)) {
			// Degenerate selectivity has its own test below; skip for
			// calibration (the Wald rate is undefined at the edges).
			continue
		}

		sess, err := sc.union.Prepare(su.Options{Warmup: su.WarmupExact, Oracle: true, Seed: seed})
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.name, err)
		}
		for rep := 0; rep < repsPerScenario; rep++ {
			cres, err := sess.ApproxCount(pred, drawsPerRep)
			if err != nil {
				t.Fatalf("scenario %s rep %d: %v", sc.name, rep, err)
			}
			countTotal++
			if lo, hi := cres.Interval(); lo <= countTruth && countTruth <= hi {
				countCovered++
			}
			sres, err := sess.ApproxSum(attr, relation.True{}, drawsPerRep)
			if err != nil {
				t.Fatalf("scenario %s rep %d: %v", sc.name, rep, err)
			}
			sumTotal++
			if lo, hi := sres.Interval(); lo <= sumTruth && sumTruth <= hi {
				sumCovered++
			}
		}
	}

	// Nominal coverage is 95%. With ~200 reps the binomial noise is
	// about ±1.5%, and the Wilson floor can only widen intervals, so a
	// well-calibrated estimator lands in [0.88, 1]. A systematically
	// broken interval (like the pre-fix zero width at the edges, or a
	// lost variance term) lands far below.
	checkCoverage(t, "ApproxCount", countCovered, countTotal)
	checkCoverage(t, "ApproxSum", sumCovered, sumTotal)
}

func checkCoverage(t *testing.T, what string, covered, total int) {
	t.Helper()
	if total < 100 {
		t.Fatalf("%s: only %d calibration reps ran; scenarios degenerated", what, total)
	}
	rate := float64(covered) / float64(total)
	t.Logf("%s: %d/%d intervals covered the truth (%.1f%%)", what, covered, total, 100*rate)
	if rate < 0.88 {
		t.Errorf("%s: coverage %.1f%% is far below the nominal 95%%", what, 100*rate)
	}
}

// TestApproxCountDegenerateCoverage pins the satellite fix end to end:
// a predicate with zero (resp. full) support must still produce an
// interval that covers the exact truth — the pre-fix Wald interval had
// width exactly 0 and claimed COUNT = 0 (resp. |U|) with certainty.
func TestApproxCountDegenerateCoverage(t *testing.T) {
	sc := buildScenario(t, 21)
	sc.ensureNonEmpty()
	union, _ := sc.reference()
	out := sc.union.OutputSchema()

	sess, err := sc.union.Prepare(su.Options{Warmup: su.WarmupExact, Oracle: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	// Values are 0..3, so attr0 >= 100 never holds: truth is 0.
	never := relation.Cmp{Attr: out.Attr(0), Op: relation.GE, Val: 100}
	res, err := sess.ApproxCount(never, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.HalfWidth <= 0 {
		t.Fatalf("zero-support count has zero half-width: %v", res)
	}
	if lo, hi := res.Interval(); !(lo <= 0 && 0 <= hi) {
		t.Fatalf("zero-support interval [%v, %v] excludes the truth 0", lo, hi)
	}

	// attr0 >= 0 always holds: truth is |U| exactly.
	always := relation.Cmp{Attr: out.Attr(0), Op: relation.GE, Val: 0}
	truth := float64(len(union))
	res, err = sess.ApproxCount(always, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.HalfWidth <= 0 {
		t.Fatalf("full-support count has zero half-width: %v", res)
	}
	if lo, hi := res.Interval(); !(lo <= truth && truth <= hi) {
		t.Fatalf("full-support interval [%v, %v] excludes the truth %v", lo, hi, truth)
	}
}
