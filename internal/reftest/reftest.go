// Package reftest is the sampler's differential-testing harness: a
// brute-force reference join enumerator that shares nothing with the
// engine's index, membership, or sampling machinery (it reads only
// schemas and live tuple copies), plus chi-square helpers for checking
// empirical draw frequencies against the distribution the paper proves.
// Property tests drive randomized schemas and instances — chain, tree,
// cyclic, predicated, disjoint — through both implementations, check
// sampler output membership exactly, and test uniformity statistically;
// they run statically and again after random mutation bursts and a
// session refresh.
package reftest

import (
	"math"

	"sampleunion/internal/relation"
)

// JoinResults enumerates the natural join of the relations by nested
// backtracking over raw live tuples — no indexes, no membership tables,
// no residual materialization. Attributes sharing a name must be equal
// (the engine's §2 convention); the result is keyed and projected onto
// the out schema. The returned map is key -> tuple in out order.
func JoinResults(rels []*relation.Relation, out *relation.Schema) map[string]relation.Tuple {
	rows := make([][]relation.Tuple, len(rels))
	for i, r := range rels {
		rows[i] = r.Tuples()
	}
	results := make(map[string]relation.Tuple)
	binding := make(map[string]relation.Value)
	var rec func(k int)
	rec = func(k int) {
		if k == len(rels) {
			t := make(relation.Tuple, out.Len())
			for i := 0; i < out.Len(); i++ {
				v, ok := binding[out.Attr(i)]
				if !ok {
					return // output attribute unbound: not a valid scenario
				}
				t[i] = v
			}
			results[relation.TupleKey(t)] = t
			return
		}
		attrs := rels[k].Schema().Attrs()
		for _, row := range rows[k] {
			ok := true
			bound := make([]string, 0, len(attrs))
			for a, name := range attrs {
				if v, seen := binding[name]; seen {
					if v != row[a] {
						ok = false
						break
					}
					continue
				}
				binding[name] = row[a]
				bound = append(bound, name)
			}
			if ok {
				rec(k + 1)
			}
			for _, name := range bound {
				delete(binding, name)
			}
		}
	}
	rec(0)
	return results
}

// UnionResults merges per-join reference results into the set union,
// also returning each tuple's multiplicity (how many joins produce it —
// the disjoint-union weight of Definition 1).
func UnionResults(perJoin []map[string]relation.Tuple) (union map[string]relation.Tuple, mult map[string]int) {
	union = make(map[string]relation.Tuple)
	mult = make(map[string]int)
	for _, m := range perJoin {
		for k, t := range m {
			union[k] = t
			mult[k]++
		}
	}
	return union, mult
}

// ChiSquare computes the chi-square statistic of observed counts
// against expected weights (normalized internally to the observed
// total). Keys missing from observed count as zero.
func ChiSquare(observed map[string]int, expected map[string]float64) (stat float64, df int) {
	total := 0
	for _, c := range observed {
		total += c
	}
	var wsum float64
	for _, w := range expected {
		wsum += w
	}
	for k, w := range expected {
		exp := float64(total) * w / wsum
		d := float64(observed[k]) - exp
		stat += d * d / exp
	}
	return stat, len(expected) - 1
}

// ChiSquareCritical approximates the chi-square quantile for the given
// degrees of freedom at a very small tail probability (z standard
// normal deviations, Wilson–Hilferty). Tests use z around 5 — roughly
// p < 3e-7 per scenario — so a pass is expected for every seed unless
// the sampler is genuinely biased.
func ChiSquareCritical(df int, z float64) float64 {
	if df <= 0 {
		return 0
	}
	d := float64(df)
	h := 2.0 / (9.0 * d)
	x := 1 - h + z*math.Sqrt(h)
	return d * x * x * x
}

// UniformWeights builds the expected-weight map for the set union: each
// result tuple equally likely.
func UniformWeights(union map[string]relation.Tuple) map[string]float64 {
	w := make(map[string]float64, len(union))
	for k := range union {
		w[k] = 1
	}
	return w
}

// DisjointWeights builds the expected-weight map for the disjoint
// union: each tuple proportional to its multiplicity.
func DisjointWeights(mult map[string]int) map[string]float64 {
	w := make(map[string]float64, len(mult))
	for k, m := range mult {
		w[k] = float64(m)
	}
	return w
}
