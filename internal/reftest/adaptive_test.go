package reftest

import (
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
)

// Adversarial-skew differential tests for the adaptive mode
// (Options.Auto): unions built to punish any fixed configuration —
// one join orders of magnitude heavier than its sibling, zipfian join
// degrees that leave walk estimates wide, and mutation bursts that
// invert the skew under a warm session. The tuner must keep the union
// stream uniform through all of it.
//
// Why strict chi-square is sound here even though auto starts from a
// walk-based warm-up: the cover sampler is exactly uniform whenever
// its per-join sizes are exact, and these scenarios force exactness
// through one of the planner's two paths. Constant-fan-out joins give
// every walk the same Horvitz-Thompson weight, so the size estimate
// is exact with zero variance (the "converged, leave it alone" path);
// zipfian joins leave the estimate wide, which is precisely what
// trips the planner's escalation to exact counting (the "escalate"
// path). A planner regression that stops escalating wide joins shows
// up as a chi-square failure, not just a metrics change.

func mkRel(name string, attrs []string, rows [][]int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema(attrs...))
	for _, vals := range rows {
		row := make(relation.Tuple, len(vals))
		for i, v := range vals {
			row[i] = relation.Value(v)
		}
		r.Append(row)
	}
	return r
}

// chain2 builds a two-relation chain R(A,B) ⋈_B S(B,C) as one union
// member.
func chain2(t *testing.T, tag string, rRows, sRows [][]int64) (*su.Join, []*relation.Relation) {
	t.Helper()
	rels := []*relation.Relation{
		mkRel(tag+"_r", []string{"A", "B"}, rRows),
		mkRel(tag+"_s", []string{"B", "C"}, sRows),
	}
	j, err := su.Chain(tag, rels, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	return j, rels
}

// constChain builds a chain whose every R row joins every S row
// (single shared B value): |R|×|S| results, constant fan-out, zero
// walk variance. Value domains are offset so unions of these chains
// are output-disjoint.
func constChain(t *testing.T, tag string, nr, ns int, base int64) (*su.Join, []*relation.Relation) {
	t.Helper()
	var rRows, sRows [][]int64
	for i := 0; i < nr; i++ {
		rRows = append(rRows, []int64{base + int64(i), base})
	}
	for i := 0; i < ns; i++ {
		sRows = append(sRows, []int64{base, base + 100 + int64(i)})
	}
	return chain2(t, tag, rRows, sRows)
}

func unionOf(t *testing.T, joins []*su.Join, relSets [][]*relation.Relation) *scenario {
	t.Helper()
	u, err := su.NewUnion(joins...)
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{union: u, relSets: relSets, rels: dedup(relSets)}
}

// checkAuto prepares an adaptive session over the scenario and
// chi-square-checks its draws against the reference, returning the
// session for follow-up mutation checks.
func checkAuto(t *testing.T, sc *scenario, label string, seed int64, draws int) *su.Session {
	t.Helper()
	sess, err := sc.union.Prepare(su.Options{Auto: true, Oracle: true, Seed: seed})
	if err != nil {
		t.Fatalf("%s: prepare: %v", label, err)
	}
	union, _ := sc.reference()
	got, _, err := sess.SampleSeeded(draws, seed*7+3)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	checkDraws(t, label, got, UniformWeights(union), true)
	return sess
}

// TestAdaptiveHeavySkew pits a ~1000-result join against a single-
// result sibling — the 1000x share skew that makes any uniform
// per-join budget either starve the heavy join or waste the light
// one. Constant fan-outs keep both size estimates exact, so the auto
// stream must be exactly uniform across the full union.
func TestAdaptiveHeavySkew(t *testing.T) {
	jHeavy, rHeavy := constChain(t, "heavy", 25, 40, 0) // 1000 results
	jLight, rLight := constChain(t, "light", 1, 1, 500) // 1 result
	sc := unionOf(t, []*su.Join{jHeavy, jLight}, [][]*relation.Relation{rHeavy, rLight})
	union, _ := sc.reference()
	if len(union) != 1001 {
		t.Fatalf("scenario builds %d reference tuples, want 1001", len(union))
	}
	sess := checkAuto(t, sc, "heavy-skew static", 1, 30*len(union))

	// The light join must not have bought an alias table or an exact
	// escalation — the whole point of per-join decisions is not paying
	// heavy-join setup on a one-tuple sibling.
	sn, ok := sess.TuneSnapshot()
	if !ok {
		t.Fatal("adaptive session reports no tune snapshot")
	}
	if len(sn.Joins) != 2 {
		t.Fatalf("tune snapshot covers %d joins, want 2", len(sn.Joins))
	}
	if sn.Joins[0].Exact || sn.Joins[1].Exact {
		t.Fatalf("constant-fan-out joins escalated to exact estimation: %+v", sn.Joins)
	}
}

// TestAdaptiveZipfEscalation drives zipfian join degrees — one B value
// with fan-out 64 among fifteen with fan-out 1 — whose walk estimate
// stays wide at the auto warm-up budget. Uniformity across the union
// then depends on the planner escalating the wide join to an exact
// count; the chi-square check fails if it stops doing so.
func TestAdaptiveZipfEscalation(t *testing.T) {
	// R has one row per B value; S gives B=0 fan-out 64, B=1..15
	// fan-out 1: join size 79, walk-weight cv ≈ 3.
	var rRows, sRows [][]int64
	for b := 0; b < 16; b++ {
		rRows = append(rRows, []int64{int64(b), int64(b)})
	}
	for c := 0; c < 64; c++ {
		sRows = append(sRows, []int64{0, 100 + int64(c)})
	}
	for b := 1; b < 16; b++ {
		sRows = append(sRows, []int64{int64(b), 200 + int64(b)})
	}
	jZipf, rZipf := chain2(t, "zipf", rRows, sRows)
	jFlat, rFlat := constChain(t, "flat", 2, 16, 500) // 32 results, flat
	sc := unionOf(t, []*su.Join{jZipf, jFlat}, [][]*relation.Relation{rZipf, rFlat})
	union, _ := sc.reference()
	if len(union) != 79+32 {
		t.Fatalf("scenario builds %d reference tuples, want 111", len(union))
	}
	sess := checkAuto(t, sc, "zipf static", 2, drawCount(len(union)))

	sn, ok := sess.TuneSnapshot()
	if !ok {
		t.Fatal("adaptive session reports no tune snapshot")
	}
	if !sn.Joins[0].Exact {
		t.Fatalf("zipfian join's wide estimate did not escalate to exact: %+v", sn.Joins)
	}
	if sn.Escalations < 1 {
		t.Fatalf("controller reports %d escalations, want >= 1", sn.Escalations)
	}

	// Post-mutation: double the heavy fan-out (64 → 128) and delete the
	// flat join's second R row, shifting the share balance further. The
	// warm session must re-plan on Refresh and stay uniform.
	for c := 64; c < 128; c++ {
		rZipf[1].Append(relation.Tuple{0, relation.Value(100 + c)})
	}
	rFlat[0].Delete(1)
	if err := sess.Refresh(); err != nil {
		t.Fatalf("zipf refresh: %v", err)
	}
	union, _ = sc.reference()
	if len(union) != 143+16 {
		t.Fatalf("mutated scenario builds %d reference tuples, want 159", len(union))
	}
	got, _, err := sess.SampleSeeded(drawCount(len(union)), 71)
	if err != nil {
		t.Fatalf("zipf post-burst: %v", err)
	}
	checkDraws(t, "zipf post-burst", got, UniformWeights(union), true)
}

// TestAdaptiveSkewInversion starts heavy/light and then inverts the
// skew under the warm session: a burst deletes most of the heavy
// join's fan-out while appending fan-out to the light join. The plan
// that was right at warm-up is wrong afterwards; Refresh must re-plan
// and the post-burst stream must be uniform over the inverted union.
func TestAdaptiveSkewInversion(t *testing.T) {
	jA, rA := constChain(t, "a", 12, 16, 0) // 192 results
	jB, rB := constChain(t, "b", 2, 1, 500) // 2 results
	sc := unionOf(t, []*su.Join{jA, jB}, [][]*relation.Relation{rA, rB})
	union, _ := sc.reference()
	if len(union) != 194 {
		t.Fatalf("scenario builds %d reference tuples, want 194", len(union))
	}
	sess := checkAuto(t, sc, "skew-inversion static", 3, drawCount(len(union)))

	// Invert: shrink a's S side 16 → 1 (192 → 12 results), grow b's
	// S side 1 → 48 (2 → 96 results).
	sA := rA[1]
	for i := 0; i < sA.Len() && sA.LiveLen() > 1; i++ {
		if sA.Live(i) {
			sA.Delete(i)
		}
	}
	for c := 1; c < 48; c++ {
		rB[1].Append(relation.Tuple{500, relation.Value(600 + c)})
	}
	if err := sess.Refresh(); err != nil {
		t.Fatalf("skew-inversion refresh: %v", err)
	}
	union, _ = sc.reference()
	if len(union) != 12+96 {
		t.Fatalf("inverted scenario builds %d reference tuples, want 108", len(union))
	}
	got, _, err := sess.SampleSeeded(drawCount(len(union)), 73)
	if err != nil {
		t.Fatalf("skew-inversion post-burst: %v", err)
	}
	checkDraws(t, "skew-inversion post-burst", got, UniformWeights(union), true)

	sn, ok := sess.TuneSnapshot()
	if !ok {
		t.Fatal("adaptive session reports no tune snapshot")
	}
	if sn.Replans < 2 {
		t.Fatalf("controller planned %d times across warm-up and refresh, want >= 2", sn.Replans)
	}
}

// TestAdaptiveOnlineSkew runs the online (Algorithm 2) adaptive
// configuration through the heavy-skew shape. Online uniformity is
// asymptotic, so the check is exact membership plus full coverage,
// statically and after a skew-inverting burst.
func TestAdaptiveOnlineSkew(t *testing.T) {
	jHeavy, rHeavy := constChain(t, "oheavy", 8, 12, 0) // 96 results
	jLight, rLight := constChain(t, "olight", 1, 2, 500)
	sc := unionOf(t, []*su.Join{jHeavy, jLight}, [][]*relation.Relation{rHeavy, rLight})
	sess, err := sc.union.Prepare(su.Options{Auto: true, Online: true, Seed: 4})
	if err != nil {
		t.Fatalf("online prepare: %v", err)
	}
	union, _ := sc.reference()
	got, _, err := sess.SampleSeeded(drawCount(len(union)), 79)
	if err != nil {
		t.Fatalf("online static: %v", err)
	}
	checkDraws(t, "online static", got, UniformWeights(union), false)

	// Invert: heavy loses most fan-out, light gains it.
	sH := rHeavy[1]
	for i := 0; i < sH.Len() && sH.LiveLen() > 2; i++ {
		if sH.Live(i) {
			sH.Delete(i)
		}
	}
	for c := 2; c < 24; c++ {
		rLight[1].Append(relation.Tuple{500, relation.Value(600 + c)})
	}
	if err := sess.Refresh(); err != nil {
		t.Fatalf("online refresh: %v", err)
	}
	union, _ = sc.reference()
	got, _, err = sess.SampleSeeded(drawCount(len(union)), 83)
	if err != nil {
		t.Fatalf("online post-burst: %v", err)
	}
	checkDraws(t, "online post-burst", got, UniformWeights(union), false)

	if sn, ok := sess.TuneSnapshot(); !ok || sn.Replans < 2 {
		t.Fatalf("online controller snapshot ok=%t replans=%d, want >= 2 plans", ok, sn.Replans)
	}
}
