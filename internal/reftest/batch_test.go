package reftest

import (
	"fmt"
	"math/rand"
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
)

// twoSampleChi computes the two-sample chi-square statistic over the
// union of keys: with (roughly) equal totals, Σ (a-b)²/(a+b) is
// chi-square with k-1 degrees of freedom under the null hypothesis
// that both samples come from the same distribution.
func twoSampleChi(a, b map[string]int) (stat float64, df int) {
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		x, y := float64(a[k]), float64(b[k])
		if x+y == 0 {
			continue
		}
		d := x - y
		stat += d * d / (x + y)
	}
	return stat, len(keys) - 1
}

func countDraws(draws []relation.Tuple) map[string]int {
	obs := make(map[string]int)
	for _, t := range draws {
		obs[relation.TupleKey(t)]++
	}
	return obs
}

// TestBatchMatchesSequential is the batch-vs-sequential distribution
// property test: over randomized scenarios, the batch engine's draws
// must (a) be membership-exact and chi-square-uniform against the
// brute-force reference, exactly like the sequential engine's, and
// (b) pass a direct two-sample chi-square against a sequential sample
// of the same size — statically, and again after a random mutation
// burst and a session refresh (which is what invalidates and rebuilds
// the batch path's alias tables).
func TestBatchMatchesSequential(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 30; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, _ := sc.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		method := []su.Method{su.MethodEW, su.MethodEO, su.MethodWJ}[seed%3]
		sess, err := sc.union.Prepare(su.Options{
			Seed: seed + 1, Warmup: su.WarmupExact, Method: method, Oracle: true,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): prepare: %v", seed, sc.name, err)
		}
		rnd := rand.New(rand.NewSource(seed + 5000))
		for phase := 0; phase < 2; phase++ {
			if phase == 1 {
				mutationBurst(rnd, sc.rels)
				sc.ensureNonEmpty()
				if err := sess.Refresh(); err != nil {
					t.Fatalf("seed %d (%s): refresh: %v", seed, sc.name, err)
				}
				union, _ = sc.reference()
				if len(union) == 0 || len(union) > 300 {
					break
				}
			}
			label := fmt.Sprintf("seed %d (%s, %v) phase %d", seed, sc.name, method, phase)
			n := drawCount(len(union))
			batchDraws, _, err := sess.SampleBatchSeeded(n, seed*11+1)
			if err != nil {
				t.Fatalf("%s: batch: %v", label, err)
			}
			seqDraws, _, err := sess.SampleSeeded(n, seed*13+2)
			if err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			// Both engines against the reference distribution.
			checkDraws(t, label+" batch", batchDraws, UniformWeights(union), true)
			checkDraws(t, label+" sequential", seqDraws, UniformWeights(union), true)
			// And directly against each other.
			stat, df := twoSampleChi(countDraws(batchDraws), countDraws(seqDraws))
			if crit := ChiSquareCritical(df, chiZ); stat > crit {
				t.Fatalf("%s: two-sample chi-square %0.1f > %0.1f (df %d): batch and sequential draws differ in distribution",
					label, stat, crit, df)
			}
			executed++
		}
	}
	if executed < 10 {
		t.Fatalf("only %d scenario phases executed; generators drifted", executed)
	}
}

// TestBatchDisjointAndWhere covers the remaining batch entry points
// against the reference: disjoint batch draws follow the multiplicity
// weights of Definition 1, and predicate-batch draws are uniform over
// the satisfying subset.
func TestBatchDisjointAndWhere(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 20; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, mult := sc.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		sess, err := sc.union.Prepare(su.Options{Seed: seed + 1, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true})
		if err != nil {
			t.Fatalf("seed %d (%s): prepare: %v", seed, sc.name, err)
		}
		n := drawCount(len(union))
		label := fmt.Sprintf("seed %d (%s)", seed, sc.name)

		dis, _, err := sess.SampleDisjointBatchSeeded(n, seed*17+5)
		if err != nil {
			t.Fatalf("%s: disjoint batch: %v", label, err)
		}
		checkDraws(t, label+" disjoint-batch", dis, DisjointWeights(mult), true)

		// Predicate: first output attribute <= 1 (values are drawn from
		// a small domain, so the subset is usually non-trivial).
		attr := sc.union.OutputSchema().Attr(0)
		pred := su.Cmp{Attr: attr, Op: su.LE, Val: 1}
		subset := make(map[string]relation.Tuple)
		for k, tu := range union {
			if pred.Eval(tu, sc.union.OutputSchema()) {
				subset[k] = tu
			}
		}
		if len(subset) == 0 || len(subset)*4 < len(union) {
			continue // too selective for sampling-time enforcement
		}
		wh, _, err := sess.SampleWhereBatchSeeded(drawCount(len(subset)), pred, seed*19+7)
		if err != nil {
			t.Fatalf("%s: where batch: %v", label, err)
		}
		checkDraws(t, label+" where-batch", wh, UniformWeights(subset), true)
		executed++
	}
	if executed < 5 {
		t.Fatalf("only %d scenarios executed; generators drifted", executed)
	}
}
