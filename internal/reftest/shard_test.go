package reftest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	su "sampleunion"
	"sampleunion/internal/relation"
)

// TestShardedMatchesReference is the sharded engine's distribution
// property test: over randomized scenarios, a session prepared with
// Options.Shards >= 2 must produce draws — sequential and batch — that
// are membership-exact and chi-square-uniform against the brute-force
// reference, and a two-sample chi-square against an unsharded session
// of the same union must not distinguish them. Both checks run
// statically and again after a random mutation burst plus Refresh
// (which drives the per-shard delta path, and the full re-partition
// path for cyclic scenarios).
func TestShardedMatchesReference(t *testing.T) {
	executed := 0
	for seed := int64(0); seed < 30; seed++ {
		sc := buildScenario(t, seed)
		sc.ensureNonEmpty()
		union, _ := sc.reference()
		if len(union) == 0 || len(union) > 300 {
			continue
		}
		shards := 2 + int(seed%3)
		sharded, err := sc.union.Prepare(su.Options{
			Seed: seed + 1, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true,
			Shards: shards,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): prepare sharded: %v", seed, sc.name, err)
		}
		flat, err := sc.union.Prepare(su.Options{
			Seed: seed + 1, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): prepare flat: %v", seed, sc.name, err)
		}
		rnd := rand.New(rand.NewSource(seed + 9000))
		for phase := 0; phase < 2; phase++ {
			if phase == 1 {
				mutationBurst(rnd, sc.rels)
				sc.ensureNonEmpty()
				if err := sharded.Refresh(); err != nil {
					t.Fatalf("seed %d (%s): sharded refresh: %v", seed, sc.name, err)
				}
				if err := flat.Refresh(); err != nil {
					t.Fatalf("seed %d (%s): flat refresh: %v", seed, sc.name, err)
				}
				union, _ = sc.reference()
				if len(union) == 0 || len(union) > 300 {
					break
				}
			}
			label := fmt.Sprintf("seed %d (%s, %d shards) phase %d", seed, sc.name, shards, phase)
			n := drawCount(len(union))
			batchDraws, _, err := sharded.SampleBatchSeeded(n, seed*11+1)
			if err != nil {
				t.Fatalf("%s: sharded batch: %v", label, err)
			}
			seqDraws, _, err := sharded.SampleSeeded(n, seed*13+2)
			if err != nil {
				t.Fatalf("%s: sharded sequential: %v", label, err)
			}
			checkDraws(t, label+" batch", batchDraws, UniformWeights(union), true)
			checkDraws(t, label+" sequential", seqDraws, UniformWeights(union), true)
			// Directly against the unsharded engine.
			flatDraws, _, err := flat.SampleBatchSeeded(n, seed*17+3)
			if err != nil {
				t.Fatalf("%s: flat batch: %v", label, err)
			}
			stat, df := twoSampleChi(countDraws(batchDraws), countDraws(flatDraws))
			if crit := ChiSquareCritical(df, chiZ); stat > crit {
				t.Fatalf("%s: two-sample chi-square %0.1f > %0.1f (df %d): sharded and unsharded draws differ in distribution",
					label, stat, crit, df)
			}
			executed++
		}
	}
	if executed < 10 {
		t.Fatalf("only %d scenario phases executed; generators drifted", executed)
	}
}

// TestShardedRefreshAfterLostLogTail drives the lost-log-tail rebuild
// path end to end: a mutation burst larger than the bounded mutation
// log leaves Partition.Sync nothing to replay (MutationsSince reports
// ok=false), so Session.Refresh must fall back to a full re-partition
// — and the rebuilt session must serve exactly the mutated union.
func TestShardedRefreshAfterLostLogTail(t *testing.T) {
	sc := buildScenario(t, 0) // chain2x2: acyclic, so only a lost tail forces the full rebuild
	sc.ensureNonEmpty()
	sess, err := sc.union.Prepare(su.Options{
		Seed: 5, Warmup: su.WarmupExact, Method: su.MethodEW, Oracle: true, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := sc.rels[0]
	v0 := victim.Version()
	// Overflow the bounded log: far more appends than it retains. Values
	// way outside the scenario's 0..5 domain join nothing, so the union
	// stays small enough for the brute-force reference.
	filler := make([]relation.Tuple, 0, 5000)
	for i := 0; i < 5000; i++ {
		row := make(relation.Tuple, victim.Arity())
		for j := range row {
			row[j] = relation.Value(10000 + i*4 + j)
		}
		filler = append(filler, row)
	}
	victim.AppendRows(filler)
	// A few in-domain mutations so the refreshed union visibly moved.
	appendUnique(victim, relation.Tuple{0, 1})
	appendUnique(victim, relation.Tuple{1, 0})
	for i := 0; i < victim.Len(); i++ {
		if victim.Live(i) {
			victim.Delete(i)
			break
		}
	}
	sc.ensureNonEmpty()
	if _, _, ok := victim.MutationsSince(v0); ok {
		t.Fatal("mutation log tail unexpectedly retained; burst too small to force the rebuild path")
	}
	if err := sess.Refresh(); err != nil {
		t.Fatalf("refresh across lost log tail: %v", err)
	}
	union, _ := sc.reference()
	if len(union) == 0 {
		t.Fatal("mutated union empty; scenario drifted")
	}
	n := drawCount(len(union))
	batch, _, err := sess.SampleBatchSeeded(n, 71)
	if err != nil {
		t.Fatalf("post-rebuild batch: %v", err)
	}
	seq, _, err := sess.SampleSeeded(n, 73)
	if err != nil {
		t.Fatalf("post-rebuild sequential: %v", err)
	}
	checkDraws(t, "lost-tail rebuild batch", batch, UniformWeights(union), true)
	checkDraws(t, "lost-tail rebuild sequential", seq, UniformWeights(union), true)
}

// TestShardedDeterministicAcrossWorkers pins the sharded determinism
// contract: the merged batch stream must be bit-identical no matter how
// the per-shard sub-batches are scheduled, so two sessions prepared
// with the same seed and shard count agree draw for draw.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	sc := buildScenario(t, 0) // chain2x2
	sc.ensureNonEmpty()
	mk := func() ([]relation.Tuple, []relation.Tuple) {
		sess, err := sc.union.Prepare(su.Options{
			Seed: 7, Warmup: su.WarmupExact, Method: su.MethodEW, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := sess.SampleBatchSeeded(500, 99)
		if err != nil {
			t.Fatal(err)
		}
		q, _, err := sess.SampleSeeded(100, 99)
		if err != nil {
			t.Fatal(err)
		}
		return b, q
	}
	b1, q1 := mk()
	b2, q2 := mk()
	for i := range b1 {
		if !b1[i].Equal(b2[i]) {
			t.Fatalf("batch draw %d differs across identically-prepared sessions: %v vs %v", i, b1[i], b2[i])
		}
	}
	for i := range q1 {
		if !q1[i].Equal(q2[i]) {
			t.Fatalf("sequential draw %d differs across identically-prepared sessions: %v vs %v", i, q1[i], q2[i])
		}
	}
}

// TestShardedConcurrentDrawsMutationsRefresh races sharded draws
// against relation mutations and Refresh calls (run under -race):
// fragments follow the live-relation visibility contract, so draws on
// any generation must stay memory-safe while Sync replays the mutation
// log into them, and the final refreshed state must serve exactly the
// mutated union.
func TestShardedConcurrentDrawsMutationsRefresh(t *testing.T) {
	sc := buildScenario(t, 0) // chain2x2: acyclic, exercises the incremental path
	sc.ensureNonEmpty()
	sess, err := sc.union.Prepare(su.Options{
		Seed: 21, Warmup: su.WarmupExact, Method: su.MethodEW, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // mutator: appends across relations, occasional deletes
		defer wg.Done()
		for i := 0; i < 120; i++ {
			r := sc.rels[i%len(sc.rels)]
			row := make(relation.Tuple, r.Arity())
			for j := range row {
				row[j] = relation.Value((i + j) % 6)
			}
			r.Append(row)
			if i%13 == 0 {
				sc.rels[0].Delete(i % sc.rels[0].Len())
			}
		}
		close(stop)
	}()
	wg.Add(1)
	go func() { // refresher
		defer wg.Done()
		for {
			select {
			case <-stop:
				if err := sess.Refresh(); err != nil {
					t.Errorf("refresh: %v", err)
				}
				return
			default:
				if err := sess.Refresh(); err != nil {
					t.Errorf("refresh: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // drawers: batch (shard fan-out) and sequential
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, _, err := sess.SampleBatchSeeded(16, int64(w*1000+i)); err != nil {
					t.Errorf("batch draw: %v", err)
					return
				}
				if _, _, err := sess.Sample(4); err != nil {
					t.Errorf("draw: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	union, _ := sc.reference()
	out, _, err := sess.SampleBatchSeeded(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out {
		if _, ok := union[relation.TupleKey(tup)]; !ok {
			t.Fatalf("post-settle draw %v not in mutated union", tup)
		}
	}
}
