package stats

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
)

func fixture() *relation.Relation {
	s := relation.NewSchema("k", "v")
	return relation.MustFromTuples("R", s, []relation.Tuple{
		{1, 10}, {1, 20}, {1, 30}, {2, 10}, {3, 10},
	})
}

func TestBuildAttr(t *testing.T) {
	r := fixture()
	a := BuildAttr(r, 0)
	if a.Attr != "k" {
		t.Errorf("Attr = %q", a.Attr)
	}
	if a.Total != 5 {
		t.Errorf("Total = %d, want 5", a.Total)
	}
	if a.Max != 3 {
		t.Errorf("Max = %d, want 3", a.Max)
	}
	if a.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", a.Distinct())
	}
	if a.Degree(1) != 3 || a.Degree(2) != 1 || a.Degree(9) != 0 {
		t.Errorf("Degree wrong: %d %d %d", a.Degree(1), a.Degree(2), a.Degree(9))
	}
	if got := a.Avg(); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("Avg = %f", got)
	}
	vs := a.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Errorf("Values = %v", vs)
	}
}

func TestEmptyAttr(t *testing.T) {
	r := relation.New("E", relation.NewSchema("x"))
	a := BuildAttr(r, 0)
	if a.Total != 0 || a.Max != 0 || a.Avg() != 0 || a.Distinct() != 0 {
		t.Errorf("empty stats wrong: %+v", a)
	}
}

func TestBuildRelStats(t *testing.T) {
	rs := Build(fixture())
	if rs.Size != 5 {
		t.Errorf("Size = %d", rs.Size)
	}
	if len(rs.Attrs) != 2 {
		t.Fatalf("Attrs = %d, want 2", len(rs.Attrs))
	}
	if _, err := rs.Attr("k"); err != nil {
		t.Errorf("Attr(k): %v", err)
	}
	if _, err := rs.Attr("nope"); err == nil {
		t.Error("Attr(nope) succeeded")
	}
	if rs.MaxDegree("v") != 3 {
		t.Errorf("MaxDegree(v) = %d, want 3 (value 10 thrice)", rs.MaxDegree("v"))
	}
	if rs.MaxDegree("nope") != 0 {
		t.Errorf("MaxDegree(nope) = %d, want 0", rs.MaxDegree("nope"))
	}
}

func TestMinAggregates(t *testing.T) {
	r1 := relation.MustFromTuples("A", relation.NewSchema("k"), []relation.Tuple{{1}, {1}, {2}})
	r2 := relation.MustFromTuples("B", relation.NewSchema("k"), []relation.Tuple{{1}, {2}, {3}, {3}, {3}})
	ss := []*RelStats{Build(r1), Build(r2)}
	if got := MinMaxDegree(ss, "k"); got != 2 {
		t.Errorf("MinMaxDegree = %d, want 2", got)
	}
	if got := MinMaxDegree(nil, "k"); got != 0 {
		t.Errorf("MinMaxDegree(nil) = %d", got)
	}
	// avg degrees: A = 3/2 = 1.5, B = 5/3 ≈ 1.67; min = 1.5
	if got := MinAvgDegree(ss, "k"); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MinAvgDegree = %f, want 1.5", got)
	}
	if got := MinAvgDegree(ss, "nope"); got != 0 {
		t.Errorf("MinAvgDegree(nope) = %f", got)
	}
}
