// Package stats builds the column statistics that the histogram-based
// estimation of §5 consumes: per-attribute value-frequency histograms,
// maximum degrees (Olken's M_A(R)), and average degrees. These mirror
// the histogram statistics DBMSs maintain for cardinality estimation,
// which is exactly the decentralized setting the paper targets: overlap
// estimation from metadata alone, without touching the data.
package stats

import (
	"fmt"
	"sort"

	"sampleunion/internal/relation"
)

// AttrStats summarizes the value distribution of one attribute.
type AttrStats struct {
	Attr  string                 // attribute name
	Freq  map[relation.Value]int // value -> number of rows (the histogram)
	Total int                    // number of rows
	Max   int                    // maximum degree, M_A(R)
}

// BuildAttr computes statistics for the attribute at position pos of r.
func BuildAttr(r *relation.Relation, pos int) *AttrStats {
	s := &AttrStats{
		Attr: r.Schema().Attr(pos),
		Freq: make(map[relation.Value]int),
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		if !r.Live(i) {
			continue
		}
		v := r.Value(i, pos)
		s.Freq[v]++
		s.Total++
	}
	for _, c := range s.Freq {
		if c > s.Max {
			s.Max = c
		}
	}
	return s
}

// Degree returns the frequency of v (0 when absent).
func (s *AttrStats) Degree(v relation.Value) int { return s.Freq[v] }

// Distinct reports the number of distinct values.
func (s *AttrStats) Distinct() int { return len(s.Freq) }

// Avg returns the average degree (rows per distinct value), 0 when empty.
func (s *AttrStats) Avg() float64 {
	if len(s.Freq) == 0 {
		return 0
	}
	return float64(s.Total) / float64(len(s.Freq))
}

// Values returns the distinct values in sorted order, for deterministic
// iteration in estimators and tests.
func (s *AttrStats) Values() []relation.Value {
	vs := make([]relation.Value, 0, len(s.Freq))
	for v := range s.Freq {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// RelStats bundles the statistics of every attribute of a relation.
// It is the "limited metadata" a data market would expose.
type RelStats struct {
	Name  string
	Size  int
	Attrs map[string]*AttrStats
}

// Build computes full statistics for r.
func Build(r *relation.Relation) *RelStats {
	rs := &RelStats{
		Name:  r.Name(),
		Size:  r.LiveLen(),
		Attrs: make(map[string]*AttrStats, r.Arity()),
	}
	for i := 0; i < r.Arity(); i++ {
		a := BuildAttr(r, i)
		rs.Attrs[a.Attr] = a
	}
	return rs
}

// Attr returns the statistics for the named attribute or an error.
func (rs *RelStats) Attr(name string) (*AttrStats, error) {
	if a, ok := rs.Attrs[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("stats: relation %s has no attribute %q", rs.Name, name)
}

// MaxDegree returns M_A(R) for the named attribute (0 when absent, which
// is the correct degenerate bound for a missing join attribute).
func (rs *RelStats) MaxDegree(attr string) int {
	if a, ok := rs.Attrs[attr]; ok {
		return a.Max
	}
	return 0
}

// MinMaxDegree returns min over the given stats of M_attr — the
// min_j M_{A_i}(R_{j,i+1}) factor of §5.1. It returns 0 if ss is empty.
func MinMaxDegree(ss []*RelStats, attr string) int {
	min := 0
	for i, rs := range ss {
		m := rs.MaxDegree(attr)
		if i == 0 || m < min {
			min = m
		}
	}
	return min
}

// MinAvgDegree returns min over the given stats of the average degree of
// attr — the refinement of §5.1 when full histograms are available.
func MinAvgDegree(ss []*RelStats, attr string) float64 {
	min := 0.0
	for i, rs := range ss {
		a, ok := rs.Attrs[attr]
		var v float64
		if ok {
			v = a.Avg()
		}
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}
