package join

import (
	"sampleunion/internal/relation"
)

// Enumerate streams every join result tuple to yield; enumeration stops
// early when yield returns false. This is the FullJoin brute force the
// paper uses as ground truth (§9); tuples passed to yield are reused
// between calls, so clone them to retain.
func (j *Join) Enumerate(yield func(relation.Tuple) bool) {
	out := make(relation.Tuple, j.out.Len())
	var rv ResView
	if j.res != nil {
		rv = j.res.View()
	}
	j.enumerate(0, out, rv, yield)
}

// enumerate extends the partial output with node k's rows; when all
// skeleton nodes are assigned it applies the residual probe (if any)
// and emits.
func (j *Join) enumerate(k int, out relation.Tuple, rv ResView, yield func(relation.Tuple) bool) bool {
	if k == len(j.nodes) {
		if j.res == nil {
			return yield(out)
		}
		for _, ri := range rv.Match(out) {
			rv.FillInto(ri, out)
			if !yield(out) {
				return false
			}
		}
		return true
	}
	n := &j.nodes[k]
	cols := n.Rel.Cols()
	if k == 0 {
		rows := n.Rel.Len()
		for i := 0; i < rows; i++ {
			if !n.Rel.Live(i) {
				continue
			}
			for _, e := range n.emit {
				out[e[1]] = cols[e[0]][i]
			}
			if !j.enumerate(k+1, out, rv, yield) {
				return false
			}
		}
		return true
	}
	parentVal := out[j.nodes[n.Parent].proj[n.ParentAttrPos]]
	for _, i := range n.Rel.Matches(n.AttrPos, parentVal) {
		for _, e := range n.emit {
			out[e[1]] = cols[e[0]][i]
		}
		if !j.enumerate(k+1, out, rv, yield) {
			return false
		}
	}
	return true
}

// Execute materializes the full join result. Use only when the result
// fits in memory; prefer Enumerate otherwise.
func (j *Join) Execute() []relation.Tuple {
	var out []relation.Tuple
	j.Enumerate(func(t relation.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Count returns the exact join result size. For tree joins it uses the
// bottom-up weight recurrence (each tuple's exact extension count, the
// EW statistic of Zhao et al.), which runs in time linear in the input
// rather than the output; cyclic joins fall back to counting skeleton
// results times matching residual rows.
func (j *Join) Count() int64 {
	w := j.ExactWeights()
	if j.res == nil {
		root := j.nodes[0].Rel
		var total int64
		for i := 0; i < root.Len(); i++ {
			total += w[0][i]
		}
		return total
	}
	var total int64
	out := make(relation.Tuple, j.out.Len())
	j.countResidual(0, out, j.res.View(), &total)
	return total
}

func (j *Join) countResidual(k int, out relation.Tuple, rv ResView, total *int64) {
	if k == len(j.nodes) {
		*total += int64(len(rv.Match(out)))
		return
	}
	n := &j.nodes[k]
	cols := n.Rel.Cols()
	if k == 0 {
		rows := n.Rel.Len()
		for i := 0; i < rows; i++ {
			if !n.Rel.Live(i) {
				continue
			}
			for _, e := range n.emit {
				out[e[1]] = cols[e[0]][i]
			}
			j.countResidual(k+1, out, rv, total)
		}
		return
	}
	parentVal := out[j.nodes[n.Parent].proj[n.ParentAttrPos]]
	for _, i := range n.Rel.Matches(n.AttrPos, parentVal) {
		for _, e := range n.emit {
			out[e[1]] = cols[e[0]][i]
		}
		j.countResidual(k+1, out, rv, total)
	}
}

// ExactWeights computes, for every node and every row, the exact number
// of join results of the subtree rooted at that node that the row
// participates in — the Exact Weight (EW) statistic of Zhao et al.
// (§3.2). weights[n][i] is the weight of row i of node n's relation.
// Dangling and tombstoned rows get weight 0 (the paper's relaxation of
// key–foreign-key joins, extended to live relations). The residual
// (cyclic case) is not included; samplers handle it by rejection.
func (j *Join) ExactWeights() [][]int64 {
	w := make([][]int64, len(j.nodes))
	// Process nodes in reverse topological order (children first).
	for k := len(j.nodes) - 1; k >= 0; k-- {
		n := &j.nodes[k]
		rows := n.Rel.Len()
		w[k] = make([]int64, rows)
		// childSum[c][v] = sum of weights of child c's rows with join value v.
		cols := n.Rel.Cols()
		childSums := make([]map[relation.Value]int64, len(n.Children))
		for ci, c := range n.Children {
			cn := &j.nodes[c]
			sums := make(map[relation.Value]int64)
			ccol := cn.Rel.Cols()[cn.AttrPos]
			for i := 0; i < cn.Rel.Len(); i++ {
				if !cn.Rel.Live(i) {
					continue
				}
				sums[ccol[i]] += w[c][i]
			}
			childSums[ci] = sums
		}
		for i := 0; i < rows; i++ {
			if !n.Rel.Live(i) {
				continue // weight 0: tombstoned rows join nothing
			}
			prod := int64(1)
			for ci, c := range n.Children {
				cn := &j.nodes[c]
				s := childSums[ci][cols[cn.ParentAttrPos][i]]
				if s == 0 {
					prod = 0
					break
				}
				prod *= s
			}
			w[k][i] = prod
		}
	}
	return w
}

// OlkenBound returns the extended Olken upper bound on the join size:
// |R_root| · Π over non-root nodes of M_attr(R) (§3.2), times M(S_R)
// for cyclic joins. It is 0 when any relation is empty.
func (j *Join) OlkenBound() float64 {
	bound := float64(j.nodes[0].Rel.LiveLen())
	for k := 1; k < len(j.nodes); k++ {
		n := &j.nodes[k]
		bound *= float64(n.Rel.MaxDegree(n.AttrPos))
	}
	if j.res != nil {
		bound *= float64(j.res.MaxDegree())
	}
	return bound
}
