package join

import (
	"testing"

	"sampleunion/internal/relation"
)

// triangleFixture builds the cyclic join R(A,B) ⋈ S(B,C) ⋈ T(C,A):
// a triangle query. Expected results are triangles (a,b,c).
func triangleFixture(t *testing.T) (*Join, []*relation.Relation, []Edge) {
	t.Helper()
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 10}, {3, 12},
	})
	s := relation.MustFromTuples("S", relation.NewSchema("B", "C"), []relation.Tuple{
		{10, 100}, {11, 100}, {10, 101}, {12, 102},
	})
	u := relation.MustFromTuples("T", relation.NewSchema("C", "A"), []relation.Tuple{
		{100, 1}, {100, 2}, {101, 1}, {102, 9},
	})
	rels := []*relation.Relation{r, s, u}
	edges := []Edge{{0, 1, "B"}, {1, 2, "C"}, {2, 0, "A"}}
	j, err := NewCyclic("tri", rels, edges, nil)
	if err != nil {
		t.Fatalf("NewCyclic: %v", err)
	}
	return j, rels, edges
}

// triangleExpected computes triangles by brute force nested loops.
func triangleExpected(rels []*relation.Relation) map[string]bool {
	r, s, u := rels[0], rels[1], rels[2]
	out := make(map[string]bool)
	for i := 0; i < r.Len(); i++ {
		a, b := r.Value(i, 0), r.Value(i, 1)
		for k := 0; k < s.Len(); k++ {
			if s.Value(k, 0) != b {
				continue
			}
			c := s.Value(k, 1)
			for m := 0; m < u.Len(); m++ {
				if u.Value(m, 0) == c && u.Value(m, 1) == a {
					out[relation.TupleKey(relation.Tuple{a, b, c})] = true
				}
			}
		}
	}
	return out
}

func TestCyclicMatchesBruteForce(t *testing.T) {
	j, rels, _ := triangleFixture(t)
	if !j.IsCyclic() {
		t.Fatal("triangle not recognized as cyclic")
	}
	want := triangleExpected(rels)
	got := make(map[string]bool)
	j.Enumerate(func(tu relation.Tuple) bool {
		// Reorder output tuple to (A, B, C) regardless of schema order.
		s := j.OutputSchema()
		key := relation.TupleKey(relation.Tuple{
			tu[s.Index("A")], tu[s.Index("B")], tu[s.Index("C")],
		})
		if got[key] {
			t.Errorf("duplicate result %v", tu)
		}
		got[key] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("cyclic join found %d results, brute force %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing triangle %q", k)
		}
	}
	if j.Count() != int64(len(want)) {
		t.Errorf("Count = %d, want %d", j.Count(), len(want))
	}
}

func TestCyclicContains(t *testing.T) {
	j, _, _ := triangleFixture(t)
	results := j.Execute()
	if len(results) == 0 {
		t.Fatal("no triangles found")
	}
	for _, tu := range results {
		if !j.Contains(tu) {
			t.Errorf("Contains rejects own result %v", tu)
		}
	}
	s := j.OutputSchema()
	bogus := make(relation.Tuple, s.Len())
	bogus[s.Index("A")] = 3
	bogus[s.Index("B")] = 12
	bogus[s.Index("C")] = 102
	// (3,12,102): R and S rows exist but T(102,3) does not.
	if j.Contains(bogus) {
		t.Error("Contains accepted a non-triangle")
	}
}

func TestCyclicExplicitResidual(t *testing.T) {
	_, rels, edges := triangleFixture(t)
	j, err := NewCyclic("tri2", rels, edges, []int{2})
	if err != nil {
		t.Fatalf("explicit residual: %v", err)
	}
	want := triangleExpected(rels)
	if j.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", j.Count(), len(want))
	}
	if res := j.ResidualPart(); res == nil {
		t.Fatal("no residual part")
	} else if res.MaxDegree() < 1 {
		t.Errorf("residual max degree = %d", res.MaxDegree())
	}
}

func TestCyclicBadResidual(t *testing.T) {
	_, rels, edges := triangleFixture(t)
	// Removing nothing leaves the cycle: invalid.
	if _, err := NewCyclic("bad", rels, edges, []int{}); err == nil {
		t.Error("empty residual accepted for a cyclic graph")
	}
	// Removing everything is invalid.
	if _, err := NewCyclic("bad", rels, edges, []int{0, 1, 2}); err == nil {
		t.Error("total residual accepted")
	}
}

func TestAcyclicGraphBuildsTreeDirectly(t *testing.T) {
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}})
	s := relation.MustFromTuples("S", relation.NewSchema("B", "C"), []relation.Tuple{{2, 3}})
	j, err := NewCyclic("path", []*relation.Relation{r, s}, []Edge{{0, 1, "B"}}, nil)
	if err != nil {
		t.Fatalf("NewCyclic on tree graph: %v", err)
	}
	if j.IsCyclic() {
		t.Error("tree graph produced a residual")
	}
	if j.Count() != 1 {
		t.Errorf("Count = %d, want 1", j.Count())
	}
}

func TestCyclicEdgeValidation(t *testing.T) {
	r := relation.MustFromTuples("R", relation.NewSchema("A"), []relation.Tuple{{1}})
	s := relation.MustFromTuples("S", relation.NewSchema("B"), []relation.Tuple{{2}})
	if _, err := NewCyclic("bad", []*relation.Relation{r, s}, []Edge{{0, 1, "A"}}, nil); err == nil {
		t.Error("edge on attribute missing from one side accepted")
	}
	if _, err := NewCyclic("bad", []*relation.Relation{r, s}, []Edge{{0, 5, "A"}}, nil); err == nil {
		t.Error("edge with out-of-range endpoint accepted")
	}
	if _, err := NewCyclic("bad", nil, nil, nil); err == nil {
		t.Error("empty relation list accepted")
	}
	// Disconnected graph: no edges between two relations.
	if _, err := NewCyclic("bad", []*relation.Relation{r, s}, nil, nil); err == nil {
		t.Error("disconnected graph accepted")
	}
}

// TestFourCycle exercises a 4-cycle: R(A,B) S(B,C) T(C,D) U(D,A).
func TestFourCycle(t *testing.T) {
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}, {5, 6}})
	s := relation.MustFromTuples("S", relation.NewSchema("B", "C"), []relation.Tuple{{2, 3}, {6, 7}})
	u := relation.MustFromTuples("T", relation.NewSchema("C", "D"), []relation.Tuple{{3, 4}, {7, 8}})
	v := relation.MustFromTuples("U", relation.NewSchema("D", "A"), []relation.Tuple{{4, 1}, {8, 9}})
	j, err := NewCyclic("four", []*relation.Relation{r, s, u, v},
		[]Edge{{0, 1, "B"}, {1, 2, "C"}, {2, 3, "D"}, {3, 0, "A"}}, nil)
	if err != nil {
		t.Fatalf("NewCyclic: %v", err)
	}
	// Only (1,2,3,4,1) closes the cycle; (5,6,7,8,9) does not (9 != 5).
	if j.Count() != 1 {
		t.Fatalf("Count = %d, want 1", j.Count())
	}
	res := j.Execute()
	if len(res) != 1 {
		t.Fatalf("Execute len = %d, want 1", len(res))
	}
	sch := j.OutputSchema()
	got := res[0]
	if got[sch.Index("A")] != 1 || got[sch.Index("D")] != 4 {
		t.Errorf("wrong 4-cycle result %v", got)
	}
}
