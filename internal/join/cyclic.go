package join

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sampleunion/internal/relation"
)

// Edge is an equi-join condition between two relations on a shared
// attribute name, used to describe (possibly cyclic) join graphs.
type Edge struct {
	A, B int    // relation indexes
	Attr string // shared attribute name
}

// Residual is the removed part of a cyclic join (§8.2): the relations
// taken out to make the remainder (the skeleton) acyclic, materialized
// into a single relation. It joins back to the skeleton on every
// attribute shared with skeleton relations (the link attributes).
//
// The materialization and its link index live in an immutable resState
// behind an atomic pointer: samplers pin one View per probe, so
// reconciliation (after member base relations mutate) can publish a new
// state while draws keep reading the old one. When member mutations are
// append-only and small, reconcile extends the materialization with a
// delta join instead of re-executing the full residual join.
type Residual struct {
	LinkAttrs []string // attributes shared with the skeleton
	linkPos   []int    // positions of LinkAttrs in the residual schema

	state atomic.Pointer[resState]

	// src are the member base relations the residual was materialized
	// from; srcVers/srcLens are the log positions and physical row
	// counts the current state reflects (nil/unused when untracked,
	// e.g. pushdown rebuilds over already-derived data). Guarded by the
	// owning join's memMu.
	src     []*relation.Relation
	srcVers []uint64
	srcLens []int

	emit    [][2]int // (rel attr pos, output pos) for new output columns
	proj    []int    // output position of each residual attribute
	linkOut []int    // output positions of LinkAttrs
}

// resState is one immutable materialization + link index: group g's
// residual rows at rows[starts[g]:starts[g+1]], keyed by composite link
// value through linkKeys.
type resState struct {
	rel      *relation.Relation
	linkKeys *relation.KeyCounter // composite link key -> dense group id
	starts   []int32
	rows     []int
	maxDeg   int // M(S_R): max rows per link key
}

// ResView pins one residual state for a sequence of dependent reads
// (Match, then MaxDegree and FillInto on the matched rows). Samplers
// must hold a single View across those calls so a concurrent refresh
// cannot swap the materialization out from under the matched row ids.
type ResView struct {
	r  *Residual
	st *resState
}

// View pins the current state.
func (r *Residual) View() ResView { return ResView{r: r, st: r.state.Load()} }

// Rel returns the pinned materialized relation.
func (v ResView) Rel() *relation.Relation { return v.st.rel }

// MaxDegree returns the pinned M(S_R).
func (v ResView) MaxDegree() int { return v.st.maxDeg }

// Match returns the residual row ids consistent with the partial output
// tuple out (which must already have all link attributes filled). The
// link key is probed through a projection access path — no tuple is
// materialized and nothing is allocated.
func (v ResView) Match(out relation.Tuple) []int {
	g, ok := v.st.linkKeys.Lookup(out, v.r.linkOut)
	if !ok {
		return nil
	}
	return v.st.rows[v.st.starts[g]:v.st.starts[g+1]]
}

// FillInto copies residual row row's new output columns into out.
func (v ResView) FillInto(row int, out relation.Tuple) {
	cols := v.st.rel.Cols()
	for _, e := range v.r.emit {
		out[e[1]] = cols[e[0]][row]
	}
}

// Rel returns the current materialized residual relation (setup-time
// convenience; hot paths pin a View instead).
func (r *Residual) Rel() *relation.Relation { return r.state.Load().rel }

// MaxDegree returns M(S_R), the maximum number of residual rows sharing
// one combination of link-attribute values (§8.2), for the current
// state.
func (r *Residual) MaxDegree() int { return r.state.Load().maxDeg }

// Match is View().Match for setup-time callers.
func (r *Residual) Match(out relation.Tuple) []int { return r.View().Match(out) }

// stale reports whether a tracked member base relation changed since
// the residual was last reconciled. srcVers is rewritten by reconcile,
// so callers must hold the owning join's memMu.
func (r *Residual) stale() bool {
	for i, s := range r.src {
		if s.Version() != r.srcVers[i] {
			return true
		}
	}
	return false
}

// reconcile brings the materialization up to date with the member base
// relations. Small append-only member deltas extend the current
// materialization with a delta join (Δ_k joined against the already-
// updated prefix and the old suffix, the standard telescoping, so each
// new combination appears exactly once) and rebuild only the link
// index; deletions, lost log tails, and large deltas fall back to full
// re-materialization. Either way a fresh immutable state is published;
// in-flight Views keep reading the old one. Callers hold the owning
// join's memMu.
func (r *Residual) reconcile() {
	type delta struct {
		newRows []int
		upTo    uint64
	}
	deltas := make([]delta, len(r.src))
	incremental := true
	total := 0
	for i, s := range r.src {
		if s.Version() == r.srcVers[i] {
			deltas[i].upTo = r.srcVers[i]
			continue
		}
		tail, upTo, ok := s.MutationsSince(r.srcVers[i])
		if !ok {
			incremental = false
			break
		}
		deltas[i].upTo = upTo
		for _, m := range tail {
			if m.Kind != relation.MutAppend {
				incremental = false
				break
			}
			deltas[i].newRows = append(deltas[i].newRows, m.Row)
		}
		if !incremental {
			break
		}
		total += len(deltas[i].newRows)
	}
	st := r.state.Load()
	if budget := 64 + st.rel.Len()/4; !incremental || total > budget {
		r.refreshFull()
		return
	}
	if total == 0 {
		for i := range r.src {
			r.srcVers[i] = deltas[i].upTo
		}
		return
	}
	// Append-only delta join: for each member k with new rows, join the
	// new rows against members 0..k-1 in their updated extent and
	// members k+1.. in their old extent.
	rel := st.rel
	_, pos := combinedSchema(r.src)
	lists := make([][]int, len(r.src))
	oldLists := make([][]int, len(r.src))
	fullLists := make([][]int, len(r.src))
	for i, s := range r.src {
		oldLists[i] = liveRowsBelow(s, r.srcLens[i])
		fullLists[i] = append(append([]int(nil), oldLists[i]...), deltas[i].newRows...)
	}
	ba := &batchAppender{rel: rel}
	for k := range r.src {
		if len(deltas[k].newRows) == 0 {
			continue
		}
		for i := range r.src {
			switch {
			case i < k:
				lists[i] = fullLists[i]
			case i == k:
				lists[i] = deltas[k].newRows
			default:
				lists[i] = oldLists[i]
			}
		}
		enumerateJoin(r.src, lists, pos, rel.Schema().Len(), ba.emit)
	}
	ba.flush()
	for i := range r.src {
		r.srcVers[i] = deltas[i].upTo
		r.srcLens[i] = r.srcLens[i] + len(deltas[i].newRows)
	}
	r.state.Store(r.buildState(rel))
}

// refreshFull re-materializes the residual from scratch and publishes a
// fresh state. Per-member row lists are captured atomically with their
// versions, so replaying later log tails can neither miss nor
// double-apply a mutation. Callers hold the owning join's memMu.
func (r *Residual) refreshFull() {
	old := r.state.Load()
	rel, vers, lens := materializeCapture(old.rel.Name(), r.src)
	copy(r.srcVers, vers)
	copy(r.srcLens, lens)
	r.state.Store(r.buildState(rel))
}

// batchAppender buffers cloned emitted tuples and flushes them to the
// relation in chunks, so a materialization pays one lock and snapshot
// per chunk rather than per emitted row.
type batchAppender struct {
	rel  *relation.Relation
	rows []relation.Tuple
}

func (ba *batchAppender) emit(t relation.Tuple) {
	ba.rows = append(ba.rows, t.Clone())
	if len(ba.rows) >= 4096 {
		ba.flush()
	}
}

func (ba *batchAppender) flush() {
	ba.rel.AppendRows(ba.rows)
	ba.rows = ba.rows[:0]
}

// liveRowsBelow lists the live row ids of r below limit.
func liveRowsBelow(r *relation.Relation, limit int) []int {
	out := make([]int, 0, limit)
	for i := 0; i < limit; i++ {
		if r.Live(i) {
			out = append(out, i)
		}
	}
	return out
}

// buildState materializes the CSR link index over rel: pass 1 counts
// rows per distinct link key (assigning dense group ids in
// first-appearance order), pass 2 scatters row ids, keeping each group
// ascending.
func (r *Residual) buildState(rel *relation.Relation) *resState {
	n := rel.Len()
	cols := rel.Cols()
	st := &resState{rel: rel, linkKeys: relation.NewKeyCounter(len(r.linkPos), n)}
	for i := 0; i < n; i++ {
		_, c := st.linkKeys.AddRow(cols, i, r.linkPos, 1)
		if c > st.maxDeg {
			st.maxDeg = c
		}
	}
	groups := st.linkKeys.Len()
	st.starts = make([]int32, groups+1)
	for g := 0; g < groups; g++ {
		st.starts[g+1] = st.starts[g] + int32(st.linkKeys.At(g))
	}
	st.rows = make([]int, n)
	cursor := append([]int32(nil), st.starts[:groups]...)
	for i := 0; i < n; i++ {
		g, _ := st.linkKeys.LookupRow(cols, i, r.linkPos)
		st.rows[cursor[g]] = i
		cursor[g]++
	}
	return st
}

// NewCyclic builds a join from a general (possibly cyclic) join graph.
// rels and edges describe the graph; residualSet optionally names the
// relation indexes to remove (nil means choose automatically: the
// smallest set whose removal leaves a connected, acyclic skeleton).
// The residual relations are materialized by joining them (§8.2).
func NewCyclic(name string, rels []*relation.Relation, edges []Edge, residualSet []int) (*Join, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("join %s: no relations", name)
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= len(rels) || e.B < 0 || e.B >= len(rels) || e.A == e.B {
			return nil, fmt.Errorf("join %s: bad edge %+v", name, e)
		}
		if !rels[e.A].Schema().Has(e.Attr) || !rels[e.B].Schema().Has(e.Attr) {
			return nil, fmt.Errorf("join %s: edge on %q not shared by %s and %s",
				name, e.Attr, rels[e.A].Name(), rels[e.B].Name())
		}
	}
	if isTree(len(rels), edges, nil) {
		return treeFromGraph(name, rels, edges, nil, nil)
	}
	var residual []int
	if residualSet != nil {
		residual = append([]int(nil), residualSet...)
		sort.Ints(residual)
		if !isTree(len(rels), edges, residual) {
			return nil, fmt.Errorf("join %s: removing %v does not leave a connected acyclic skeleton", name, residual)
		}
	} else {
		residual = chooseResidual(len(rels), edges)
		if residual == nil {
			return nil, fmt.Errorf("join %s: no residual set yields a connected acyclic skeleton", name)
		}
	}
	if len(residual) == len(rels) {
		return nil, fmt.Errorf("join %s: residual would consume every relation", name)
	}
	res, err := materializeResidual(name, rels, edges, residual)
	if err != nil {
		return nil, err
	}
	return treeFromGraph(name, rels, edges, residual, res)
}

// isTree reports whether the graph over n relations minus the removed
// set is connected and acyclic (considering only edges between kept
// relations). A single kept relation counts as a tree.
func isTree(n int, edges []Edge, removed []int) bool {
	gone := make(map[int]bool, len(removed))
	for _, r := range removed {
		gone[r] = true
	}
	kept := 0
	for i := 0; i < n; i++ {
		if !gone[i] {
			kept++
		}
	}
	if kept == 0 {
		return false
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	keptEdges := 0
	for _, e := range edges {
		if gone[e.A] || gone[e.B] {
			continue
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			return false // cycle among kept relations
		}
		parent[ra] = rb
		keptEdges++
	}
	return keptEdges == kept-1 // connected iff tree edge count matches
}

// chooseResidual returns the smallest relation subset whose removal
// leaves a connected acyclic skeleton, breaking ties by the smallest
// total residual row count (cheaper to materialize). Exhaustive search:
// join graphs are small.
func chooseResidual(n int, edges []Edge) []int {
	for size := 1; size < n; size++ {
		best := []int(nil)
		subset := make([]int, size)
		var rec func(start, k int)
		rec = func(start, k int) {
			if k == size {
				if isTree(n, edges, subset) {
					if best == nil {
						best = append([]int(nil), subset...)
					}
				}
				return
			}
			for i := start; i < n; i++ {
				subset[k] = i
				rec(i+1, k+1)
			}
		}
		rec(0, 0)
		if best != nil {
			return best
		}
	}
	return nil
}

// combinedSchema computes the union of the member attributes in
// first-appearance order, together with each attribute's position.
func combinedSchema(members []*relation.Relation) ([]string, map[string]int) {
	var attrs []string
	pos := make(map[string]int)
	for _, m := range members {
		for _, a := range m.Schema().Attrs() {
			if _, ok := pos[a]; !ok {
				pos[a] = len(attrs)
				attrs = append(attrs, a)
			}
		}
	}
	return attrs, pos
}

// enumerateJoin backtracks over the given per-member row-id lists,
// emitting every combination consistent on shared attribute names, in
// list order (deterministic).
func enumerateJoin(members []*relation.Relation, lists [][]int, pos map[string]int, width int, emit func(relation.Tuple)) {
	partial := make(relation.Tuple, width)
	setCount := make([]int, width)
	var rec func(k int)
	rec = func(k int) {
		if k == len(members) {
			emit(partial)
			return
		}
		rel := members[k]
		cols := rel.Cols()
	rows:
		for _, i := range lists[k] {
			touched := make([]int, 0, rel.Arity())
			for a := 0; a < rel.Arity(); a++ {
				p := pos[rel.Schema().Attr(a)]
				if setCount[p] > 0 {
					if partial[p] != cols[a][i] {
						for _, tp := range touched {
							setCount[tp]--
						}
						continue rows
					}
				} else {
					partial[p] = cols[a][i]
				}
				setCount[p]++
				touched = append(touched, p)
			}
			rec(k + 1)
			for _, tp := range touched {
				setCount[tp]--
			}
		}
	}
	rec(0)
}

// materializeCapture executes the backtracking natural join of the
// member relations' live rows into one relation whose schema is the
// union of the member attributes in first-appearance order
// (deterministic in the member schemas, so re-materialization preserves
// attribute positions). Each member's row list is captured atomically
// with its version (relation.LiveRows), and the capture points are
// returned so the caller can reconcile incrementally from them.
func materializeCapture(name string, members []*relation.Relation) (*relation.Relation, []uint64, []int) {
	attrs, pos := combinedSchema(members)
	out := relation.New(name, relation.NewSchema(attrs...))
	lists := make([][]int, len(members))
	vers := make([]uint64, len(members))
	lens := make([]int, len(members))
	for i, m := range members {
		lists[i], lens[i], vers[i] = m.LiveRows()
	}
	ba := &batchAppender{rel: out}
	enumerateJoin(members, lists, pos, len(attrs), ba.emit)
	ba.flush()
	return out, vers, lens
}

// materializeResidual joins the residual relations into one relation.
// Residual relations are joined on their mutual edges plus natural
// equality of any shared attribute names.
func materializeResidual(name string, rels []*relation.Relation, edges []Edge, residual []int) (*Residual, error) {
	inRes := make(map[int]bool, len(residual))
	for _, r := range residual {
		inRes[r] = true
	}
	members := make([]*relation.Relation, len(residual))
	for i, ri := range residual {
		members[i] = rels[ri]
	}
	out, vers, lens := materializeCapture(name+"_residual", members)
	pos := make(map[string]int)
	for i, a := range out.Schema().Attrs() {
		pos[a] = i
	}

	// Link attributes: shared between the residual schema and any kept
	// (skeleton) relation.
	linkSet := make(map[string]bool)
	for i, r := range rels {
		if inRes[i] {
			continue
		}
		for _, a := range r.Schema().Attrs() {
			if _, ok := pos[a]; ok {
				linkSet[a] = true
			}
		}
	}
	if len(linkSet) == 0 {
		return nil, fmt.Errorf("join %s: residual shares no attribute with the skeleton", name)
	}
	links := make([]string, 0, len(linkSet))
	for a := range linkSet {
		links = append(links, a)
	}
	sort.Strings(links)
	res := &Residual{LinkAttrs: links, src: members, srcVers: vers, srcLens: lens}
	res.linkPos = make([]int, len(links))
	for i, a := range links {
		res.linkPos[i] = out.Schema().Index(a)
	}
	res.state.Store(res.buildState(out))
	return res, nil
}

// treeFromGraph roots the skeleton (kept relations) at the smallest
// kept index and emits a topologically ordered Join.
func treeFromGraph(name string, rels []*relation.Relation, edges []Edge, residual []int, res *Residual) (*Join, error) {
	gone := make(map[int]bool, len(residual))
	for _, r := range residual {
		gone[r] = true
	}
	adj := make(map[int][]Edge)
	for _, e := range edges {
		if gone[e.A] || gone[e.B] {
			continue
		}
		adj[e.A] = append(adj[e.A], e)
		adj[e.B] = append(adj[e.B], Edge{A: e.B, B: e.A, Attr: e.Attr})
	}
	root := -1
	for i := range rels {
		if !gone[i] {
			root = i
			break
		}
	}
	// BFS order from root, recording parent and edge attribute.
	order := []int{root}
	parentOf := map[int]int{root: -1}
	attrOf := map[int]string{root: ""}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, e := range adj[u] {
			v := e.B
			if _, seen := parentOf[v]; seen {
				continue
			}
			parentOf[v] = u
			attrOf[v] = e.Attr
			order = append(order, v)
		}
	}
	kept := 0
	for i := range rels {
		if !gone[i] {
			kept++
		}
	}
	if len(order) != kept {
		return nil, fmt.Errorf("join %s: skeleton is disconnected", name)
	}
	treeRels := make([]*relation.Relation, len(order))
	treeParent := make([]int, len(order))
	treeAttrs := make([]string, len(order))
	newIdx := make(map[int]int, len(order))
	for i, orig := range order {
		newIdx[orig] = i
	}
	for i, orig := range order {
		treeRels[i] = rels[orig]
		if p := parentOf[orig]; p < 0 {
			treeParent[i] = -1
		} else {
			treeParent[i] = newIdx[p]
		}
		treeAttrs[i] = attrOf[orig]
	}
	j, err := NewTree(name, treeRels, treeParent, treeAttrs)
	if err != nil {
		return nil, err
	}
	if res != nil {
		j.res = res
		if err := j.buildOutput(); err != nil { // rebuild with residual columns
			return nil, err
		}
		// Link attributes must be produced by the skeleton so probes can
		// read them from the partial output.
		for _, a := range res.LinkAttrs {
			if j.out.Index(a) < 0 {
				return nil, fmt.Errorf("join %s: link attribute %q missing from output", name, a)
			}
		}
		res.linkOut = make([]int, len(res.LinkAttrs))
		for i, a := range res.LinkAttrs {
			res.linkOut[i] = j.out.Index(a)
		}
		j.membership.Store(nil)
	}
	return j, nil
}
