package join

import (
	"fmt"
	"sort"

	"sampleunion/internal/relation"
)

// Edge is an equi-join condition between two relations on a shared
// attribute name, used to describe (possibly cyclic) join graphs.
type Edge struct {
	A, B int    // relation indexes
	Attr string // shared attribute name
}

// Residual is the removed part of a cyclic join (§8.2): the relations
// taken out to make the remainder (the skeleton) acyclic, materialized
// into a single relation. It joins back to the skeleton on every
// attribute shared with skeleton relations (the link attributes).
type Residual struct {
	Rel       *relation.Relation   // materialized residual join
	LinkAttrs []string             // attributes shared with the skeleton
	linkPos   []int                // positions of LinkAttrs in Rel's schema
	linkKeys  *relation.KeyCounter // composite link key -> dense group id
	starts    []int32              // group g's rows at rows[starts[g]:starts[g+1]]
	rows      []int                // residual row ids grouped by link key
	maxDeg    int                  // M(S_R): max rows per link key

	// src are the member base relations the residual was materialized
	// from, with their versions at materialization; they detect appends
	// that would otherwise leave the frozen materialization stale (nil
	// when untracked, e.g. pushdown rebuilds over already-derived data).
	src     []*relation.Relation
	srcVers []uint64

	emit    [][2]int // (rel attr pos, output pos) for new output columns
	proj    []int    // output position of each residual attribute
	linkOut []int    // output positions of LinkAttrs
}

// stale reports whether a tracked member base relation changed since
// the residual was materialized. srcVers is rewritten by refresh, so
// callers must hold the owning join's memMu (the lock-free Contains
// fast path uses the membershipTables snapshot instead).
func (r *Residual) stale() bool {
	for i, s := range r.src {
		if s.Version() != r.srcVers[i] {
			return true
		}
	}
	return false
}

// refresh re-materializes the residual from its member base relations
// and rebuilds the link index. The combined schema is a deterministic
// function of the member schemas, so linkPos/emit/proj/linkOut remain
// valid. Callers must hold the owning join's memMu (or be
// single-threaded); refresh is not safe concurrently with Match.
func (r *Residual) refresh() {
	r.Rel = materializeRows(r.Rel.Name(), r.src)
	r.maxDeg = 0
	r.buildLinkIndex()
	for i, s := range r.src {
		r.srcVers[i] = s.Version()
	}
}

// MaxDegree returns M(S_R), the maximum number of residual rows sharing
// one combination of link-attribute values (§8.2).
func (r *Residual) MaxDegree() int { return r.maxDeg }

// Match returns the residual row ids consistent with the partial output
// tuple out (which must already have all link attributes filled). The
// link key is probed through a projection access path — no tuple is
// materialized and nothing is allocated, so Match is safe and cheap on
// the per-draw path.
func (r *Residual) Match(out relation.Tuple) []int {
	g, ok := r.linkKeys.Lookup(out, r.linkOut)
	if !ok {
		return nil
	}
	return r.rows[r.starts[g]:r.starts[g+1]]
}

// buildLinkIndex builds the CSR link index: pass 1 counts rows per
// distinct link key (assigning dense group ids in first-appearance
// order), pass 2 scatters row ids, keeping each group ascending.
func (r *Residual) buildLinkIndex() {
	n := r.Rel.Len()
	r.linkKeys = relation.NewKeyCounter(len(r.linkPos), n)
	for i := 0; i < n; i++ {
		_, c := r.linkKeys.Add(r.Rel.Row(i), r.linkPos, 1)
		if c > r.maxDeg {
			r.maxDeg = c
		}
	}
	groups := r.linkKeys.Len()
	r.starts = make([]int32, groups+1)
	for g := 0; g < groups; g++ {
		r.starts[g+1] = r.starts[g] + int32(r.linkKeys.At(g))
	}
	r.rows = make([]int, n)
	cursor := append([]int32(nil), r.starts[:groups]...)
	for i := 0; i < n; i++ {
		g, _ := r.linkKeys.Lookup(r.Rel.Row(i), r.linkPos)
		r.rows[cursor[g]] = i
		cursor[g]++
	}
}

// NewCyclic builds a join from a general (possibly cyclic) join graph.
// rels and edges describe the graph; residualSet optionally names the
// relation indexes to remove (nil means choose automatically: the
// smallest set whose removal leaves a connected, acyclic skeleton).
// The residual relations are materialized by joining them (§8.2).
func NewCyclic(name string, rels []*relation.Relation, edges []Edge, residualSet []int) (*Join, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("join %s: no relations", name)
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= len(rels) || e.B < 0 || e.B >= len(rels) || e.A == e.B {
			return nil, fmt.Errorf("join %s: bad edge %+v", name, e)
		}
		if !rels[e.A].Schema().Has(e.Attr) || !rels[e.B].Schema().Has(e.Attr) {
			return nil, fmt.Errorf("join %s: edge on %q not shared by %s and %s",
				name, e.Attr, rels[e.A].Name(), rels[e.B].Name())
		}
	}
	if isTree(len(rels), edges, nil) {
		return treeFromGraph(name, rels, edges, nil, nil)
	}
	var residual []int
	if residualSet != nil {
		residual = append([]int(nil), residualSet...)
		sort.Ints(residual)
		if !isTree(len(rels), edges, residual) {
			return nil, fmt.Errorf("join %s: removing %v does not leave a connected acyclic skeleton", name, residual)
		}
	} else {
		residual = chooseResidual(len(rels), edges)
		if residual == nil {
			return nil, fmt.Errorf("join %s: no residual set yields a connected acyclic skeleton", name)
		}
	}
	if len(residual) == len(rels) {
		return nil, fmt.Errorf("join %s: residual would consume every relation", name)
	}
	res, err := materializeResidual(name, rels, edges, residual)
	if err != nil {
		return nil, err
	}
	return treeFromGraph(name, rels, edges, residual, res)
}

// isTree reports whether the graph over n relations minus the removed
// set is connected and acyclic (considering only edges between kept
// relations). A single kept relation counts as a tree.
func isTree(n int, edges []Edge, removed []int) bool {
	gone := make(map[int]bool, len(removed))
	for _, r := range removed {
		gone[r] = true
	}
	kept := 0
	for i := 0; i < n; i++ {
		if !gone[i] {
			kept++
		}
	}
	if kept == 0 {
		return false
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	keptEdges := 0
	for _, e := range edges {
		if gone[e.A] || gone[e.B] {
			continue
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			return false // cycle among kept relations
		}
		parent[ra] = rb
		keptEdges++
	}
	return keptEdges == kept-1 // connected iff tree edge count matches
}

// chooseResidual returns the smallest relation subset whose removal
// leaves a connected acyclic skeleton, breaking ties by the smallest
// total residual row count (cheaper to materialize). Exhaustive search:
// join graphs are small.
func chooseResidual(n int, edges []Edge) []int {
	for size := 1; size < n; size++ {
		best := []int(nil)
		subset := make([]int, size)
		var rec func(start, k int)
		rec = func(start, k int) {
			if k == size {
				if isTree(n, edges, subset) {
					if best == nil {
						best = append([]int(nil), subset...)
					}
				}
				return
			}
			for i := start; i < n; i++ {
				subset[k] = i
				rec(i+1, k+1)
			}
		}
		rec(0, 0)
		if best != nil {
			return best
		}
	}
	return nil
}

// materializeRows executes the backtracking natural join of the member
// relations into one relation whose schema is the union of the member
// attributes in first-appearance order (deterministic in the member
// schemas, so re-materialization preserves attribute positions).
func materializeRows(name string, members []*relation.Relation) *relation.Relation {
	var attrs []string
	pos := make(map[string]int)
	for _, m := range members {
		for _, a := range m.Schema().Attrs() {
			if _, ok := pos[a]; !ok {
				pos[a] = len(attrs)
				attrs = append(attrs, a)
			}
		}
	}
	out := relation.New(name, relation.NewSchema(attrs...))
	partial := make(relation.Tuple, len(attrs))
	setCount := make([]int, len(attrs))
	var rec func(k int)
	rec = func(k int) {
		if k == len(members) {
			out.Append(partial)
			return
		}
		rel := members[k]
		n := rel.Len()
	rows:
		for i := 0; i < n; i++ {
			row := rel.Row(i)
			touched := make([]int, 0, rel.Arity())
			for a := 0; a < rel.Arity(); a++ {
				p := pos[rel.Schema().Attr(a)]
				if setCount[p] > 0 {
					if partial[p] != row[a] {
						for _, tp := range touched {
							setCount[tp]--
						}
						continue rows
					}
				} else {
					partial[p] = row[a]
				}
				setCount[p]++
				touched = append(touched, p)
			}
			rec(k + 1)
			for _, tp := range touched {
				setCount[tp]--
			}
		}
	}
	rec(0)
	return out
}

// materializeResidual joins the residual relations into one relation.
// Residual relations are joined on their mutual edges plus natural
// equality of any shared attribute names.
func materializeResidual(name string, rels []*relation.Relation, edges []Edge, residual []int) (*Residual, error) {
	inRes := make(map[int]bool, len(residual))
	for _, r := range residual {
		inRes[r] = true
	}
	members := make([]*relation.Relation, len(residual))
	for i, ri := range residual {
		members[i] = rels[ri]
	}
	out := materializeRows(name+"_residual", members)
	pos := make(map[string]int)
	for i, a := range out.Schema().Attrs() {
		pos[a] = i
	}

	// Link attributes: shared between the residual schema and any kept
	// (skeleton) relation.
	linkSet := make(map[string]bool)
	for i, r := range rels {
		if inRes[i] {
			continue
		}
		for _, a := range r.Schema().Attrs() {
			if _, ok := pos[a]; ok {
				linkSet[a] = true
			}
		}
	}
	if len(linkSet) == 0 {
		return nil, fmt.Errorf("join %s: residual shares no attribute with the skeleton", name)
	}
	links := make([]string, 0, len(linkSet))
	for a := range linkSet {
		links = append(links, a)
	}
	sort.Strings(links)
	res := &Residual{Rel: out, LinkAttrs: links, src: members, srcVers: make([]uint64, len(members))}
	for i, m := range members {
		res.srcVers[i] = m.Version()
	}
	res.linkPos = make([]int, len(links))
	for i, a := range links {
		res.linkPos[i] = out.Schema().Index(a)
	}
	res.buildLinkIndex()
	return res, nil
}

// treeFromGraph roots the skeleton (kept relations) at the smallest
// kept index and emits a topologically ordered Join.
func treeFromGraph(name string, rels []*relation.Relation, edges []Edge, residual []int, res *Residual) (*Join, error) {
	gone := make(map[int]bool, len(residual))
	for _, r := range residual {
		gone[r] = true
	}
	adj := make(map[int][]Edge)
	for _, e := range edges {
		if gone[e.A] || gone[e.B] {
			continue
		}
		adj[e.A] = append(adj[e.A], e)
		adj[e.B] = append(adj[e.B], Edge{A: e.B, B: e.A, Attr: e.Attr})
	}
	root := -1
	for i := range rels {
		if !gone[i] {
			root = i
			break
		}
	}
	// BFS order from root, recording parent and edge attribute.
	order := []int{root}
	parentOf := map[int]int{root: -1}
	attrOf := map[int]string{root: ""}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, e := range adj[u] {
			v := e.B
			if _, seen := parentOf[v]; seen {
				continue
			}
			parentOf[v] = u
			attrOf[v] = e.Attr
			order = append(order, v)
		}
	}
	kept := 0
	for i := range rels {
		if !gone[i] {
			kept++
		}
	}
	if len(order) != kept {
		return nil, fmt.Errorf("join %s: skeleton is disconnected", name)
	}
	treeRels := make([]*relation.Relation, len(order))
	treeParent := make([]int, len(order))
	treeAttrs := make([]string, len(order))
	newIdx := make(map[int]int, len(order))
	for i, orig := range order {
		newIdx[orig] = i
	}
	for i, orig := range order {
		treeRels[i] = rels[orig]
		if p := parentOf[orig]; p < 0 {
			treeParent[i] = -1
		} else {
			treeParent[i] = newIdx[p]
		}
		treeAttrs[i] = attrOf[orig]
	}
	j, err := NewTree(name, treeRels, treeParent, treeAttrs)
	if err != nil {
		return nil, err
	}
	if res != nil {
		j.res = res
		if err := j.buildOutput(); err != nil { // rebuild with residual columns
			return nil, err
		}
		// Link attributes must be produced by the skeleton so probes can
		// read them from the partial output.
		for _, a := range res.LinkAttrs {
			if j.out.Index(a) < 0 {
				return nil, fmt.Errorf("join %s: link attribute %q missing from output", name, a)
			}
		}
		res.linkOut = make([]int, len(res.LinkAttrs))
		for i, a := range res.LinkAttrs {
			res.linkOut[i] = j.out.Index(a)
		}
		j.membership.Store(nil)
	}
	return j, nil
}
