package join

import (
	"testing"

	"sampleunion/internal/relation"
)

func enumerate(j *Join) map[string]bool {
	out := make(map[string]bool)
	j.Enumerate(func(t relation.Tuple) bool {
		out[relation.TupleKey(t)] = true
		return true
	})
	return out
}

func rebindFixture(t *testing.T) (*Join, []*relation.Relation) {
	t.Helper()
	a := relation.New("a", relation.NewSchema("K", "X"))
	b := relation.New("b", relation.NewSchema("K", "Y"))
	for i := 0; i < 30; i++ {
		a.AppendValues(relation.Value(i%7), relation.Value(i))
		b.AppendValues(relation.Value(i%7), relation.Value(100+i))
	}
	j, err := NewChain("c", []*relation.Relation{a, b}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	return j, []*relation.Relation{a, b}
}

func TestRebindIdentity(t *testing.T) {
	j, _ := rebindFixture(t)
	rj, err := Rebind(j, "copy", func(r *relation.Relation) (*relation.Relation, error) {
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rj.Name() != "copy" {
		t.Fatalf("name %q", rj.Name())
	}
	want, got := enumerate(j), enumerate(rj)
	if len(want) != len(got) {
		t.Fatalf("identity rebind has %d results, original %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("result %x missing after identity rebind", k)
		}
	}
}

func TestRebindFilter(t *testing.T) {
	j, _ := rebindFixture(t)
	pred := relation.Cmp{Attr: "K", Op: relation.LE, Val: 3}
	rj, err := Rebind(j, "filtered", func(r *relation.Relation) (*relation.Relation, error) {
		return r.Filter(r.Name()+"_f", pred), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := enumerate(rj)
	if len(got) == 0 {
		t.Fatal("filtered rebind is empty")
	}
	out := rj.OutputSchema()
	kPos := out.Index("K")
	rj.Enumerate(func(tu relation.Tuple) bool {
		if tu[kPos] > 3 {
			t.Fatalf("filtered rebind produced K=%d", tu[kPos])
		}
		return true
	})
	// Every filtered result is an original result.
	want := enumerate(j)
	for k := range got {
		if !want[k] {
			t.Fatalf("filtered rebind produced %x, not an original result", k)
		}
	}
}

func TestRebindCyclic(t *testing.T) {
	r := relation.New("R", relation.NewSchema("A", "B"))
	s := relation.New("S", relation.NewSchema("B", "C"))
	x := relation.New("T", relation.NewSchema("C", "A"))
	for i := 0; i < 25; i++ {
		r.AppendValues(relation.Value(i%4), relation.Value(i%5))
		s.AppendValues(relation.Value(i%5), relation.Value(i%3))
		x.AppendValues(relation.Value(i%3), relation.Value(i%4))
	}
	j, err := NewCyclic("tri", []*relation.Relation{r, s, x}, []Edge{
		{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := Rebind(j, "tri2", func(rel *relation.Relation) (*relation.Relation, error) {
		return rel, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rj.IsCyclic() {
		t.Fatal("rebound cyclic join lost its residual")
	}
	want, got := enumerate(j), enumerate(rj)
	if len(want) == 0 {
		t.Fatal("fixture triangle is empty")
	}
	if len(want) != len(got) {
		t.Fatalf("rebound cyclic join has %d results, original %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("cyclic result %x missing after rebind", k)
		}
	}
	// Membership works on the rebound join too.
	j.Enumerate(func(tu relation.Tuple) bool {
		if !rj.ContainsAligned(tu, j.OutputSchema()) {
			t.Fatalf("rebound cyclic join does not contain %v", tu)
		}
		return false
	})
}

func TestRebindError(t *testing.T) {
	j, _ := rebindFixture(t)
	_, err := Rebind(j, "bad", func(r *relation.Relation) (*relation.Relation, error) {
		return nil, errTest
	})
	if err == nil {
		t.Fatal("substitution error not propagated")
	}
}

var errTest = &rebindTestError{}

type rebindTestError struct{}

func (*rebindTestError) Error() string { return "boom" }
