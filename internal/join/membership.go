package join

import (
	"sampleunion/internal/relation"
)

// Contains reports whether output tuple t (in this join's output schema
// order) is a result of the join — without executing the join. Every
// relation must hold a row matching t's projection onto its attributes;
// join-attribute consistency is automatic because join attributes share
// names and therefore output positions (see DESIGN.md). This is the
// membership primitive the random-walk overlap estimator relies on
// (§6.2): "we already have the index for each J_i".
//
// Contains builds its per-relation projection indexes on first use; it
// is not safe for concurrent first use.
func (j *Join) Contains(t relation.Tuple) bool {
	j.ensureMembership()
	for k := range j.nodes {
		if !j.nodeHas(k, t) {
			return false
		}
	}
	if j.res != nil {
		key := j.projKey(j.res.proj, t)
		if j.membership[len(j.nodes)][key] == 0 {
			return false
		}
	}
	return true
}

// ContainsAligned is Contains for a tuple expressed in another join's
// output schema: attributes are aligned by name, so joins whose output
// schemas hold the same attributes in different orders remain
// comparable (§2's unionability assumption).
func (j *Join) ContainsAligned(t relation.Tuple, schema *relation.Schema) bool {
	if schema.Equal(j.out) {
		return j.Contains(t)
	}
	mapped := make(relation.Tuple, j.out.Len())
	for i := 0; i < j.out.Len(); i++ {
		p := schema.Index(j.out.Attr(i))
		if p < 0 {
			return false
		}
		mapped[i] = t[p]
	}
	return j.Contains(mapped)
}

func (j *Join) nodeHas(k int, t relation.Tuple) bool {
	key := j.projKey(j.nodes[k].proj, t)
	return j.membership[k][key] > 0
}

func (j *Join) projKey(proj []int, t relation.Tuple) string {
	buf := make(relation.Tuple, len(proj))
	for i, p := range proj {
		buf[i] = t[p]
	}
	return relation.TupleKey(buf)
}

func (j *Join) ensureMembership() {
	if j.membership != nil {
		return
	}
	total := len(j.nodes)
	if j.res != nil {
		total++
	}
	j.membership = make([]map[string]int, total)
	for k := range j.nodes {
		n := &j.nodes[k]
		m := make(map[string]int, n.Rel.Len())
		for i := 0; i < n.Rel.Len(); i++ {
			m[relation.TupleKey(n.Rel.Row(i))]++
		}
		j.membership[k] = m
	}
	if j.res != nil {
		m := make(map[string]int, j.res.Rel.Len())
		for i := 0; i < j.res.Rel.Len(); i++ {
			m[relation.TupleKey(j.res.Rel.Row(i))]++
		}
		j.membership[len(j.nodes)] = m
	}
}
