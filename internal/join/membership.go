package join

import (
	"sampleunion/internal/relation"
)

// membershipTables is the immutable product of one membership build:
// one KeySet of row projections per tree relation (plus the residual),
// together with the relation versions it was built against. It is
// published through an atomic pointer, so concurrent first use builds
// it exactly once and mutation (Relation.Append) is detected and
// triggers a rebuild on the next probe.
//
// Freshness is decided from this snapshot and Relation.Version reads
// only — never from mutable Residual fields, which Residual.refresh
// rewrites under memMu and must not be read lock-free.
type membershipTables struct {
	sets     []*relation.KeySet
	versions []uint64 // tree-node relation versions at build time
	// resSrcVers are the residual member base relation versions at
	// build time (cyclic joins): the materialized residual itself never
	// moves, so staleness is read off its sources.
	resSrcVers []uint64
}

// Contains reports whether output tuple t (in this join's output schema
// order) is a result of the join — without executing the join. Every
// relation must hold a row matching t's projection onto its attributes;
// join-attribute consistency is automatic because join attributes share
// names and therefore output positions (see DESIGN.md). This is the
// membership primitive the random-walk overlap estimator relies on
// (§6.2): "we already have the index for each J_i".
//
// The per-relation projection tables are built on first use (exactly
// once, even under concurrent first use) and probed without allocating:
// projections are hashed through an access path, never materialized.
func (j *Join) Contains(t relation.Tuple) bool {
	return j.containsPerm(t, nil)
}

// containsPerm is Contains for a tuple whose output attributes live at
// positions perm[0..out.Len()) of t (nil = identity). Probes compose
// the node projection with perm, so no intermediate tuple is built.
func (j *Join) containsPerm(t relation.Tuple, perm []int) bool {
	m := j.ensureMembership()
	for k := range j.nodes {
		if !m.sets[k].ContainsProj(t, composed(j.nodes[k].proj, perm)) {
			return false
		}
	}
	if j.res != nil {
		if !m.sets[len(j.nodes)].ContainsProj(t, composed(j.res.proj, perm)) {
			return false
		}
	}
	return true
}

// composed maps a node projection through an optional outer
// permutation. With perm nil the projection is returned as-is, so the
// common case costs nothing.
func composed(proj, perm []int) []int {
	if perm == nil {
		return proj
	}
	out := make([]int, len(proj))
	for i, p := range proj {
		out[i] = perm[p]
	}
	return out
}

// ContainsAligned is Contains for a tuple expressed in another join's
// output schema: attributes are aligned by name, so joins whose output
// schemas hold the same attributes in different orders remain
// comparable (§2's unionability assumption). Callers probing repeatedly
// from the same schema should hold an AlignedProbe instead, which
// precomputes the alignment once.
func (j *Join) ContainsAligned(t relation.Tuple, schema *relation.Schema) bool {
	if schema.Equal(j.out) {
		return j.Contains(t)
	}
	p, ok := j.alignPerm(schema)
	if !ok {
		return false
	}
	return j.containsPerm(t, p)
}

// alignPerm maps output positions to positions in the given schema:
// perm[i] is where output attribute i lives in schema order.
func (j *Join) alignPerm(schema *relation.Schema) ([]int, bool) {
	perm := make([]int, j.out.Len())
	for i := 0; i < j.out.Len(); i++ {
		p := schema.Index(j.out.Attr(i))
		if p < 0 {
			return nil, false
		}
		perm[i] = p
	}
	return perm, true
}

// AlignedProbe is a prepared membership probe: Contains for tuples in a
// fixed external schema order, with every projection composed at build
// time. Probing allocates nothing; on a prewarmed join it is safe for
// concurrent use.
type AlignedProbe struct {
	j     *Join
	projs [][]int // per tree node (+ residual): output-tuple positions
}

// AlignProbe prepares an AlignedProbe for tuples in the given schema
// order. ok is false when the schema lacks one of the join's output
// attributes.
func (j *Join) AlignProbe(schema *relation.Schema) (AlignedProbe, bool) {
	var perm []int
	if !schema.Equal(j.out) {
		p, ok := j.alignPerm(schema)
		if !ok {
			return AlignedProbe{}, false
		}
		perm = p
	}
	pr := AlignedProbe{j: j}
	for k := range j.nodes {
		pr.projs = append(pr.projs, composedCopy(j.nodes[k].proj, perm))
	}
	if j.res != nil {
		pr.projs = append(pr.projs, composedCopy(j.res.proj, perm))
	}
	return pr, true
}

// composedCopy is composed with an unconditional copy, so the probe
// never aliases the join's internal tables.
func composedCopy(proj, perm []int) []int {
	out := make([]int, len(proj))
	for i, p := range proj {
		if perm == nil {
			out[i] = p
		} else {
			out[i] = perm[p]
		}
	}
	return out
}

// Contains reports whether t (in the probe's schema order) is a result
// of the join.
func (p AlignedProbe) Contains(t relation.Tuple) bool {
	m := p.j.ensureMembership()
	for k, proj := range p.projs {
		if !m.sets[k].ContainsProj(t, proj) {
			return false
		}
	}
	return true
}

// ensureMembership returns the current membership tables, building them
// on first use and rebuilding when a base relation was mutated since
// the last build. The fast path is one atomic load plus one version
// read per relation.
func (j *Join) ensureMembership() *membershipTables {
	if m := j.membership.Load(); m != nil && j.membershipFresh(m) {
		return m
	}
	j.memMu.Lock()
	defer j.memMu.Unlock()
	if m := j.membership.Load(); m != nil && j.membershipFresh(m) {
		return m
	}
	if j.res != nil && j.res.stale() {
		// A residual member base relation changed: the frozen
		// materialization (and its link index) must be rebuilt before
		// the membership tables read it. Safe here: refresh only ever
		// runs under memMu, and readers reach the residual through the
		// snapshot's KeySets, not through the mutable Residual fields.
		j.res.refresh()
	}
	m := j.buildMembership()
	j.membership.Store(m)
	return m
}

// membershipFresh reports whether the tables match the relations'
// current versions, using only atomic Relation.Version reads against
// the immutable snapshot (it runs lock-free on every Contains).
func (j *Join) membershipFresh(m *membershipTables) bool {
	for k := range j.nodes {
		if m.versions[k] != j.nodes[k].Rel.Version() {
			return false
		}
	}
	if j.res != nil {
		for i, s := range j.res.src {
			if s.Version() != m.resSrcVers[i] {
				return false
			}
		}
	}
	return true
}

// FreshenResidual re-materializes a cyclic join's residual (and its
// link index) when member base relations changed since construction;
// it is a no-op for acyclic joins and fresh residuals. Samplers read
// the residual without staleness checks on the hot path, so callers
// preparing samplers over a mutated join run this first (core does).
// Not safe concurrently with sampling.
func (j *Join) FreshenResidual() {
	if j.res == nil {
		return
	}
	// Residual fields (srcVers included) are only read or written under
	// memMu; this is setup-time code, so the lock is uncontended.
	j.memMu.Lock()
	defer j.memMu.Unlock()
	if j.res.stale() {
		j.res.refresh()
	}
}

func (j *Join) buildMembership() *membershipTables {
	total := len(j.nodes)
	if j.res != nil {
		total++
	}
	m := &membershipTables{
		sets:     make([]*relation.KeySet, total),
		versions: make([]uint64, len(j.nodes)),
	}
	build := func(rel *relation.Relation) *relation.KeySet {
		set := relation.NewKeySet(rel.Arity(), rel.Len())
		for i := 0; i < rel.Len(); i++ {
			set.Insert(rel.Row(i))
		}
		return set
	}
	for k := range j.nodes {
		m.sets[k] = build(j.nodes[k].Rel)
		m.versions[k] = j.nodes[k].Rel.Version()
	}
	if j.res != nil {
		m.sets[len(j.nodes)] = build(j.res.Rel)
		m.resSrcVers = make([]uint64, len(j.res.src))
		for i, s := range j.res.src {
			m.resSrcVers[i] = s.Version()
		}
	}
	return m
}

// PrewarmMembership forces the membership tables (and the underlying
// per-attribute indexes are forced by core.Prewarm); after it returns,
// concurrent Contains probes only read shared state.
func (j *Join) PrewarmMembership() { j.ensureMembership() }
