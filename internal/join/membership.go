package join

import (
	"sampleunion/internal/relation"
)

// memberTable is one relation's membership structure: an immutable
// base multiset of full rows (value tuple -> live row count, captured
// at a version) plus an optional small immutable delta of net count
// changes since. A tuple is a member iff base + delta count > 0.
// Relations untouched since the base build probe exactly one table;
// mutated relations pay one extra lookup until the delta folds back
// into a rebuilt base.
type memberTable struct {
	rel     *relation.Relation
	base    *relation.KeyCounter
	delta   *relation.KeyCounter // nil when empty
	version uint64               // log position base+delta reflect
}

func (mt *memberTable) containsProj(t relation.Tuple, proj []int) bool {
	c, _ := mt.base.Get(t, proj)
	if mt.delta != nil {
		d, _ := mt.delta.Get(t, proj)
		c += d
	}
	return c > 0
}

// membershipTables is the immutable product of one membership build or
// reconcile: one memberTable per tree relation (plus the residual),
// published through an atomic pointer so concurrent first use builds it
// exactly once and mutation is detected and reconciled on the next
// probe. Tables of unchanged relations are shared between generations;
// a changed relation's table is caught up by cloning its small delta
// and replaying the mutation-log tail — never by rescanning the
// relation unless the tail is gone or the delta outgrew its budget.
//
// Freshness is decided from this snapshot and Relation.Version reads
// only — never from mutable Residual fields, which reconcile rewrites
// under memMu and must not be read lock-free.
type membershipTables struct {
	tabs []*memberTable // per tree node, then residual (when present)
	// resSrcVers are the residual member base relation versions at
	// build time (cyclic joins): staleness of the materialized residual
	// is read off its sources.
	resSrcVers []uint64
}

// Contains reports whether output tuple t (in this join's output schema
// order) is a result of the join — without executing the join. Every
// relation must hold a row matching t's projection onto its attributes;
// join-attribute consistency is automatic because join attributes share
// names and therefore output positions (see DESIGN.md). This is the
// membership primitive the random-walk overlap estimator relies on
// (§6.2): "we already have the index for each J_i".
//
// The per-relation projection tables are built on first use (exactly
// once, even under concurrent first use) and probed without allocating:
// projections are hashed through an access path, never materialized.
func (j *Join) Contains(t relation.Tuple) bool {
	return j.containsPerm(t, nil)
}

// containsPerm is Contains for a tuple whose output attributes live at
// positions perm[0..out.Len()) of t (nil = identity). Probes compose
// the node projection with perm, so no intermediate tuple is built.
func (j *Join) containsPerm(t relation.Tuple, perm []int) bool {
	m := j.ensureMembership()
	for k := range j.nodes {
		if !m.tabs[k].containsProj(t, composed(j.nodes[k].proj, perm)) {
			return false
		}
	}
	if j.res != nil {
		if !m.tabs[len(j.nodes)].containsProj(t, composed(j.res.proj, perm)) {
			return false
		}
	}
	return true
}

// composed maps a node projection through an optional outer
// permutation. With perm nil the projection is returned as-is, so the
// common case costs nothing.
func composed(proj, perm []int) []int {
	if perm == nil {
		return proj
	}
	out := make([]int, len(proj))
	for i, p := range proj {
		out[i] = perm[p]
	}
	return out
}

// ContainsAligned is Contains for a tuple expressed in another join's
// output schema: attributes are aligned by name, so joins whose output
// schemas hold the same attributes in different orders remain
// comparable (§2's unionability assumption). Callers probing repeatedly
// from the same schema should hold an AlignedProbe instead, which
// precomputes the alignment once.
func (j *Join) ContainsAligned(t relation.Tuple, schema *relation.Schema) bool {
	if schema.Equal(j.out) {
		return j.Contains(t)
	}
	p, ok := j.alignPerm(schema)
	if !ok {
		return false
	}
	return j.containsPerm(t, p)
}

// alignPerm maps output positions to positions in the given schema:
// perm[i] is where output attribute i lives in schema order.
func (j *Join) alignPerm(schema *relation.Schema) ([]int, bool) {
	perm := make([]int, j.out.Len())
	for i := 0; i < j.out.Len(); i++ {
		p := schema.Index(j.out.Attr(i))
		if p < 0 {
			return nil, false
		}
		perm[i] = p
	}
	return perm, true
}

// AlignedProbe is a prepared membership probe: Contains for tuples in a
// fixed external schema order, with every projection composed at build
// time. Probing allocates nothing; on a prewarmed join it is safe for
// concurrent use.
type AlignedProbe struct {
	j     *Join
	projs [][]int // per tree node (+ residual): output-tuple positions
}

// AlignProbe prepares an AlignedProbe for tuples in the given schema
// order. ok is false when the schema lacks one of the join's output
// attributes.
func (j *Join) AlignProbe(schema *relation.Schema) (AlignedProbe, bool) {
	var perm []int
	if !schema.Equal(j.out) {
		p, ok := j.alignPerm(schema)
		if !ok {
			return AlignedProbe{}, false
		}
		perm = p
	}
	pr := AlignedProbe{j: j}
	for k := range j.nodes {
		pr.projs = append(pr.projs, composedCopy(j.nodes[k].proj, perm))
	}
	if j.res != nil {
		pr.projs = append(pr.projs, composedCopy(j.res.proj, perm))
	}
	return pr, true
}

// composedCopy is composed with an unconditional copy, so the probe
// never aliases the join's internal tables.
func composedCopy(proj, perm []int) []int {
	out := make([]int, len(proj))
	for i, p := range proj {
		if perm == nil {
			out[i] = p
		} else {
			out[i] = perm[p]
		}
	}
	return out
}

// Contains reports whether t (in the probe's schema order) is a result
// of the join.
func (p AlignedProbe) Contains(t relation.Tuple) bool {
	m := p.j.ensureMembership()
	for k, proj := range p.projs {
		if !m.tabs[k].containsProj(t, proj) {
			return false
		}
	}
	return true
}

// ensureMembership returns the current membership tables, building them
// on first use and reconciling them when a base relation was mutated
// since the last build. The fast path is one atomic load plus one
// version read per relation.
func (j *Join) ensureMembership() *membershipTables {
	if m := j.membership.Load(); m != nil && j.membershipFresh(m) {
		return m
	}
	j.memMu.Lock()
	defer j.memMu.Unlock()
	if m := j.membership.Load(); m != nil && j.membershipFresh(m) {
		return m
	}
	if j.res != nil && j.res.stale() {
		// A residual member base relation changed: the materialization
		// (and its link index) must reconcile before the membership
		// tables read it. Safe here: reconcile only ever runs under
		// memMu, and readers reach the residual through pinned Views.
		j.res.reconcile()
	}
	m := j.buildMembership(j.membership.Load())
	j.membership.Store(m)
	return m
}

// membershipFresh reports whether the tables match the relations'
// current versions, using only atomic Relation.Version reads against
// the immutable snapshot (it runs lock-free on every Contains).
func (j *Join) membershipFresh(m *membershipTables) bool {
	for k := range j.nodes {
		if m.tabs[k].version != j.nodes[k].Rel.Version() {
			return false
		}
	}
	if j.res != nil {
		for i, s := range j.res.src {
			if s.Version() != m.resSrcVers[i] {
				return false
			}
		}
	}
	return true
}

// FreshenResidual reconciles a cyclic join's residual materialization
// (and its link index) when member base relations changed since the
// last reconcile; it is a no-op for acyclic joins and fresh residuals.
// A fresh immutable state is published atomically, so it is safe to
// call while other goroutines sample (they keep their pinned Views).
func (j *Join) FreshenResidual() {
	if j.res == nil {
		return
	}
	// Residual bookkeeping (srcVers included) is only read or written
	// under memMu.
	j.memMu.Lock()
	defer j.memMu.Unlock()
	if j.res.stale() {
		j.res.reconcile()
	}
}

// memberBudget is the delta size past which a member table folds back
// into a rebuilt base.
func memberBudget(rel *relation.Relation) int {
	b := rel.Len() / 8
	if b < 64 {
		b = 64
	}
	return b
}

// reconcileTable returns an up-to-date table for rel, reusing old when
// possible: unchanged tables are shared, small tails extend a cloned
// delta, and everything else rebuilds the base from an atomic row
// capture.
func reconcileTable(old *memberTable, rel *relation.Relation) *memberTable {
	if old != nil && old.rel == rel {
		if old.version == rel.Version() {
			return old
		}
		tail, upTo, ok := rel.MutationsSince(old.version)
		deltaLen := 0
		if old.delta != nil {
			deltaLen = old.delta.Len()
		}
		if ok && deltaLen+len(tail) <= memberBudget(rel) {
			var delta *relation.KeyCounter
			if old.delta != nil {
				delta = old.delta.Clone()
			} else {
				delta = relation.NewKeyCounter(rel.Arity(), len(tail))
			}
			cols := rel.Cols()
			for _, m := range tail {
				switch m.Kind {
				case relation.MutAppend:
					delta.AddRow(cols, m.Row, nil, 1)
				case relation.MutDelete:
					delta.Add(m.Vals, nil, -1)
				}
			}
			return &memberTable{rel: rel, base: old.base, delta: delta, version: upTo}
		}
	}
	ids, _, version := rel.LiveRows()
	base := relation.NewKeyCounter(rel.Arity(), len(ids))
	cols := rel.Cols()
	for _, i := range ids {
		base.AddRow(cols, i, nil, 1)
	}
	return &memberTable{rel: rel, base: base, version: version}
}

// buildMembership assembles the next immutable membership snapshot,
// reconciling each relation's table against the previous generation.
func (j *Join) buildMembership(old *membershipTables) *membershipTables {
	total := len(j.nodes)
	if j.res != nil {
		total++
	}
	m := &membershipTables{tabs: make([]*memberTable, total)}
	oldTab := func(k int) *memberTable {
		if old == nil || k >= len(old.tabs) {
			return nil
		}
		return old.tabs[k]
	}
	for k := range j.nodes {
		m.tabs[k] = reconcileTable(oldTab(k), j.nodes[k].Rel)
	}
	if j.res != nil {
		m.tabs[len(j.nodes)] = reconcileTable(oldTab(len(j.nodes)), j.res.Rel())
		m.resSrcVers = make([]uint64, len(j.res.src))
		copy(m.resSrcVers, j.res.srcVers)
	}
	return m
}

// PrewarmMembership forces the membership tables (and the underlying
// per-attribute indexes are forced by core.Prewarm); after it returns,
// concurrent Contains probes only read shared state.
func (j *Join) PrewarmMembership() { j.ensureMembership() }
