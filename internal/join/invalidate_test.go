package join

import (
	"sync"
	"testing"

	"sampleunion/internal/relation"
)

func abChainFixture(t *testing.T) (*Join, *relation.Relation, *relation.Relation) {
	t.Helper()
	a := relation.New("A", relation.NewSchema("k", "x"))
	b := relation.New("B", relation.NewSchema("k", "y"))
	for i := 0; i < 10; i++ {
		a.AppendValues(relation.Value(i), relation.Value(i*10))
		b.AppendValues(relation.Value(i), relation.Value(i*100))
	}
	j, err := NewChain("AB", []*relation.Relation{a, b}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	return j, a, b
}

// TestAppendInvalidatesMembership pins the stale-cache hazard fixed in
// this refactor: Relation.Append used to reset the relation's own
// indexes but left a Join's cached membership tables stale, so Contains
// would keep answering from pre-append data. The membership snapshot
// now records relation versions and rebuilds when they move.
func TestAppendInvalidatesMembership(t *testing.T) {
	j, a, b := abChainFixture(t)
	// Output schema is (k, x, y).
	if !j.Contains(relation.Tuple{3, 30, 300}) {
		t.Fatal("existing tuple not contained")
	}
	if j.Contains(relation.Tuple{77, 770, 7700}) {
		t.Fatal("future tuple contained before append")
	}
	a.AppendValues(77, 770)
	b.AppendValues(77, 7700)
	if !j.Contains(relation.Tuple{77, 770, 7700}) {
		t.Fatal("tuple appended after membership build not contained (stale membership tables)")
	}
	if !j.Contains(relation.Tuple{3, 30, 300}) {
		t.Fatal("pre-append tuple lost after rebuild")
	}
	// The relation's own index must also reflect the append.
	if got := a.Degree(0, 77); got != 1 {
		t.Fatalf("Degree(k=77) = %d after append, want 1", got)
	}
}

// TestAppendInvalidatesCyclicMembership is the cyclic counterpart: the
// residual is a frozen materialization, so appends to its member base
// relations must be detected through their versions and trigger a
// re-materialization before Contains answers.
func TestAppendInvalidatesCyclicMembership(t *testing.T) {
	r := relation.New("R", relation.NewSchema("A", "B"))
	s := relation.New("S", relation.NewSchema("B", "C"))
	x := relation.New("T", relation.NewSchema("C", "A"))
	for i := 0; i < 4; i++ {
		r.AppendValues(relation.Value(i), relation.Value(i+10))
		s.AppendValues(relation.Value(i+10), relation.Value(i+20))
		x.AppendValues(relation.Value(i+20), relation.Value(i))
	}
	j, err := NewCyclic("tri", []*relation.Relation{r, s, x},
		[]Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !j.IsCyclic() {
		t.Fatal("triangle not built cyclic")
	}
	sch := j.OutputSchema()
	mk := func(a, b, c relation.Value) relation.Tuple {
		tu := make(relation.Tuple, sch.Len())
		tu[sch.Index("A")] = a
		tu[sch.Index("B")] = b
		tu[sch.Index("C")] = c
		return tu
	}
	if !j.Contains(mk(1, 11, 21)) {
		t.Fatal("existing triangle not contained")
	}
	if j.Contains(mk(7, 17, 27)) {
		t.Fatal("future triangle contained before append")
	}
	// Append a full new triangle; every relation changes, including at
	// least one residual member (whichever the decomposition removed).
	r.AppendValues(7, 17)
	s.AppendValues(17, 27)
	x.AppendValues(27, 7)
	if !j.Contains(mk(7, 17, 27)) {
		t.Fatal("triangle appended after membership build not contained (stale residual materialization)")
	}
	if !j.Contains(mk(1, 11, 21)) {
		t.Fatal("pre-append triangle lost after rebuild")
	}
	if j.Contains(mk(7, 11, 21)) {
		t.Fatal("non-result tuple contained after rebuild")
	}
}

// TestConcurrentContainsAfterCyclicAppend races the residual refresh:
// after a (serialized) append to a residual member base relation, many
// goroutines call Contains at once. The refresh must happen exactly
// once under the membership mutex while the lock-free fast path reads
// only the immutable snapshot and atomic relation versions — under
// -race this pins the fix for the refresh/fast-path data race.
func TestConcurrentContainsAfterCyclicAppend(t *testing.T) {
	r := relation.New("R", relation.NewSchema("A", "B"))
	s := relation.New("S", relation.NewSchema("B", "C"))
	x := relation.New("T", relation.NewSchema("C", "A"))
	for i := 0; i < 4; i++ {
		r.AppendValues(relation.Value(i), relation.Value(i+10))
		s.AppendValues(relation.Value(i+10), relation.Value(i+20))
		x.AppendValues(relation.Value(i+20), relation.Value(i))
	}
	j, err := NewCyclic("tri", []*relation.Relation{r, s, x},
		[]Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sch := j.OutputSchema()
	mk := func(a, b, c relation.Value) relation.Tuple {
		tu := make(relation.Tuple, sch.Len())
		tu[sch.Index("A")] = a
		tu[sch.Index("B")] = b
		tu[sch.Index("C")] = c
		return tu
	}
	if !j.Contains(mk(1, 11, 21)) { // build tables
		t.Fatal("existing triangle not contained")
	}
	r.AppendValues(7, 17)
	s.AppendValues(17, 27)
	x.AppendValues(27, 7)
	var wg sync.WaitGroup
	bad := make([]bool, 8)
	for w := range bad {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if !j.Contains(mk(7, 17, 27)) || !j.Contains(mk(1, 11, 21)) || j.Contains(mk(7, 11, 21)) {
					bad[w] = true
				}
			}
		}(w)
	}
	wg.Wait()
	for w, b := range bad {
		if b {
			t.Fatalf("worker %d saw wrong membership after append", w)
		}
	}
}

// TestConcurrentFirstContains probes a fresh join's membership path
// from many goroutines at once; under -race it verifies the exactly-
// once build behind the atomic publish.
func TestConcurrentFirstContains(t *testing.T) {
	j, _, _ := abChainFixture(t)
	var wg sync.WaitGroup
	fail := make([]bool, 8)
	for w := range fail {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				in := j.Contains(relation.Tuple{relation.Value(i), relation.Value(i * 10), relation.Value(i * 100)})
				out := j.Contains(relation.Tuple{relation.Value(i), relation.Value(i*10 + 1), relation.Value(i * 100)})
				if !in || out {
					fail[w] = true
				}
			}
		}(w)
	}
	wg.Wait()
	for w, f := range fail {
		if f {
			t.Fatalf("worker %d saw wrong membership", w)
		}
	}
}

// TestAlignedProbeMatchesContainsAligned checks the prepared probe
// against the compatibility path on a permuted schema.
func TestAlignedProbeMatchesContainsAligned(t *testing.T) {
	j, _, _ := abChainFixture(t)
	// External schema with the output attributes permuted: (y, k, x).
	ext := relation.NewSchema("y", "k", "x")
	probe, ok := j.AlignProbe(ext)
	if !ok {
		t.Fatal("AlignProbe failed")
	}
	for i := 0; i < 10; i++ {
		tu := relation.Tuple{relation.Value(i * 100), relation.Value(i), relation.Value(i * 10)}
		if !probe.Contains(tu) {
			t.Errorf("probe misses tuple %v", tu)
		}
		if probe.Contains(tu) != j.ContainsAligned(tu, ext) {
			t.Errorf("probe and ContainsAligned disagree on %v", tu)
		}
		miss := relation.Tuple{relation.Value(i * 100), relation.Value(i), relation.Value(i*10 + 5)}
		if probe.Contains(miss) || j.ContainsAligned(miss, ext) {
			t.Errorf("non-result tuple %v contained", miss)
		}
	}
}
