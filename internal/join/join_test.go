package join

import (
	"sort"
	"testing"

	"sampleunion/internal/relation"
)

// chainFixture builds R1(A,X) ⋈_A R2(A,B) ⋈_B R3(B,Y).
func chainFixture(t *testing.T) *Join {
	t.Helper()
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "X"), []relation.Tuple{
		{1, 100}, {2, 200}, {3, 300},
	})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 10}, {9, 99},
	})
	r3 := relation.MustFromTuples("R3", relation.NewSchema("B", "Y"), []relation.Tuple{
		{10, 7}, {10, 8}, {11, 9},
	})
	j, err := NewChain("J", []*relation.Relation{r1, r2, r3}, []string{"A", "B"})
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	return j
}

// chainResults enumerates the expected results of chainFixture by hand:
// output schema (A, X, B, Y).
func chainExpected() []relation.Tuple {
	return []relation.Tuple{
		{1, 100, 10, 7}, {1, 100, 10, 8}, {1, 100, 11, 9},
		{2, 200, 10, 7}, {2, 200, 10, 8},
	}
}

func sortedKeys(ts []relation.Tuple) []string {
	ks := make([]string, len(ts))
	for i, t := range ts {
		ks[i] = relation.TupleKey(t)
	}
	sort.Strings(ks)
	return ks
}

func TestChainOutputSchema(t *testing.T) {
	j := chainFixture(t)
	want := relation.NewSchema("A", "X", "B", "Y")
	if !j.OutputSchema().Equal(want) {
		t.Fatalf("output schema = %v, want %v", j.OutputSchema(), want)
	}
	if !j.IsChain() {
		t.Error("chain not recognized as chain")
	}
	if j.IsCyclic() {
		t.Error("chain reported cyclic")
	}
}

func TestChainExecute(t *testing.T) {
	j := chainFixture(t)
	got := j.Execute()
	want := chainExpected()
	gk, wk := sortedKeys(got), sortedKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("Execute returned %d tuples, want %d: %v", len(gk), len(wk), got)
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("result set mismatch at %d", i)
		}
	}
}

func TestChainCount(t *testing.T) {
	j := chainFixture(t)
	if got := j.Count(); got != int64(len(chainExpected())) {
		t.Fatalf("Count = %d, want %d", got, len(chainExpected()))
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	j := chainFixture(t)
	seen := 0
	j.Enumerate(func(relation.Tuple) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop saw %d tuples, want 2", seen)
	}
}

func TestExactWeights(t *testing.T) {
	j := chainFixture(t)
	w := j.ExactWeights()
	// Root R1: row 0 (A=1) extends to 3 results, row 1 (A=2) to 2, row 2 dangles.
	if w[0][0] != 3 || w[0][1] != 2 || w[0][2] != 0 {
		t.Errorf("root weights = %v, want [3 2 0]", w[0])
	}
	// R2: (1,10)->2, (1,11)->1, (2,10)->2, (9,99)->0.
	if w[1][0] != 2 || w[1][1] != 1 || w[1][2] != 2 || w[1][3] != 0 {
		t.Errorf("R2 weights = %v", w[1])
	}
	// Leaves weigh 1.
	for i, wi := range w[2] {
		if wi != 1 {
			t.Errorf("leaf weight[%d] = %d", i, wi)
		}
	}
}

func TestOlkenBoundDominatesCount(t *testing.T) {
	j := chainFixture(t)
	if b := j.OlkenBound(); b < float64(j.Count()) {
		t.Fatalf("OlkenBound %f < Count %d", b, j.Count())
	}
	// |R1|=3 · M_A(R2)=2 · M_B(R3)=2 = 12.
	if b := j.OlkenBound(); b != 12 {
		t.Fatalf("OlkenBound = %f, want 12", b)
	}
}

func TestContains(t *testing.T) {
	j := chainFixture(t)
	for _, want := range chainExpected() {
		if !j.Contains(want) {
			t.Errorf("Contains(%v) = false for a real result", want)
		}
	}
	for _, not := range []relation.Tuple{
		{3, 300, 10, 7}, // A=3 dangles in R2
		{1, 100, 10, 9}, // (10,9) not in R3
		{1, 101, 10, 7}, // (1,101) not in R1
		{9, 100, 99, 7}, // dangling R2 row
		{0, 0, 0, 0},    // nothing anywhere
	} {
		if j.Contains(not) {
			t.Errorf("Contains(%v) = true for a non-result", not)
		}
	}
}

func TestContainsMatchesEnumerationExhaustively(t *testing.T) {
	j := chainFixture(t)
	inJoin := make(map[string]bool)
	j.Enumerate(func(tu relation.Tuple) bool {
		inJoin[relation.TupleKey(tu)] = true
		return true
	})
	// Try the cross product of plausible values and compare verdicts.
	for _, a := range []relation.Value{1, 2, 3, 9} {
		for _, x := range []relation.Value{100, 200, 300} {
			for _, b := range []relation.Value{10, 11, 99} {
				for _, y := range []relation.Value{7, 8, 9} {
					tu := relation.Tuple{a, x, b, y}
					if got := j.Contains(tu); got != inJoin[relation.TupleKey(tu)] {
						t.Fatalf("Contains(%v) = %v, enumeration says %v", tu, got, !got)
					}
				}
			}
		}
	}
}

func TestContainsAligned(t *testing.T) {
	j := chainFixture(t)
	// Same attributes, different order.
	other := relation.NewSchema("Y", "B", "X", "A")
	if !j.ContainsAligned(relation.Tuple{7, 10, 100, 1}, other) {
		t.Error("aligned Contains missed a real result")
	}
	if j.ContainsAligned(relation.Tuple{7, 10, 100, 3}, other) {
		t.Error("aligned Contains accepted a non-result")
	}
	// Schema missing an attribute cannot match.
	if j.ContainsAligned(relation.Tuple{7, 10, 100}, relation.NewSchema("Y", "B", "X")) {
		t.Error("schema missing attribute matched")
	}
}

func TestTreeJoin(t *testing.T) {
	// Star: center C(K, L, M) with leaves P(K), Q(L), S(M).
	c := relation.MustFromTuples("C", relation.NewSchema("K", "L", "M"), []relation.Tuple{
		{1, 2, 3}, {1, 2, 4}, {5, 6, 7},
	})
	p := relation.MustFromTuples("P", relation.NewSchema("K", "PX"), []relation.Tuple{{1, 0}, {1, 1}})
	q := relation.MustFromTuples("Q", relation.NewSchema("L", "QX"), []relation.Tuple{{2, 0}})
	s := relation.MustFromTuples("S", relation.NewSchema("M", "SX"), []relation.Tuple{{3, 0}, {4, 0}, {7, 0}})
	j, err := NewTree("star", []*relation.Relation{c, p, q, s},
		[]int{-1, 0, 0, 0}, []string{"", "K", "L", "M"})
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	if j.IsChain() {
		t.Error("star join reported as chain")
	}
	// Row (1,2,3): 2 P-matches × 1 Q × 1 S = 4... wait P has 2, Q 1, S 1 -> 2.
	// Row (1,2,4): 2 × 1 × 1 = 2. Row (5,6,7): 0 (no P(5)).
	if got := j.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	res := j.Execute()
	if len(res) != 4 {
		t.Fatalf("Execute len = %d, want 4", len(res))
	}
	for _, tu := range res {
		if !j.Contains(tu) {
			t.Errorf("Contains rejects own result %v", tu)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A"), []relation.Tuple{{1}})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("B"), []relation.Tuple{{1}})
	if _, err := NewChain("J", nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain("J", []*relation.Relation{r1, r2}, nil); err == nil {
		t.Error("attr count mismatch accepted")
	}
	if _, err := NewChain("J", []*relation.Relation{r1, r2}, []string{"A"}); err == nil {
		t.Error("join attribute missing from R2 accepted")
	}
	if _, err := NewTree("J", []*relation.Relation{r1, r2}, []int{-1, 5}, []string{"", "A"}); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := NewTree("J", []*relation.Relation{r1}, []int{0}, []string{""}); err == nil {
		t.Error("non-root node 0 accepted")
	}
}

func TestSharedAttrValidation(t *testing.T) {
	// A appears in R1 and R3 but the path edge R2-R3 is on B: equality of
	// A would not propagate, so Build must reject.
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("B", "C"), []relation.Tuple{{2, 3}})
	r3 := relation.MustFromTuples("R3", relation.NewSchema("C", "A"), []relation.Tuple{{3, 9}})
	_, err := NewChain("bad", []*relation.Relation{r1, r2, r3}, []string{"B", "C"})
	if err == nil {
		t.Fatal("disconnected shared attribute accepted")
	}
}

func TestSingleRelationJoin(t *testing.T) {
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}, {3, 4}})
	j, err := NewChain("single", []*relation.Relation{r}, nil)
	if err != nil {
		t.Fatalf("single-relation chain: %v", err)
	}
	if j.Count() != 2 {
		t.Fatalf("Count = %d, want 2", j.Count())
	}
	if !j.Contains(relation.Tuple{1, 2}) || j.Contains(relation.Tuple{1, 4}) {
		t.Error("single-relation Contains wrong")
	}
}
