package join

import (
	"testing"

	"sampleunion/internal/relation"
)

func selFixture(t *testing.T) *Join {
	t.Helper()
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "X"), []relation.Tuple{
		{1, 100}, {2, 200}, {3, 300},
	})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 10}, {3, 12},
	})
	j, err := NewChain("J", []*relation.Relation{r1, r2}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestPushDownFiltersResults(t *testing.T) {
	j := selFixture(t)
	// σ(X >= 200): keeps A in {2,3}.
	fj, err := PushDown(j, relation.Cmp{Attr: "X", Op: relation.GE, Val: 200})
	if err != nil {
		t.Fatalf("PushDown: %v", err)
	}
	if fj.Count() != 2 { // (2,200,10) and (3,300,12)
		t.Fatalf("filtered count = %d, want 2", fj.Count())
	}
	// Original join untouched.
	if j.Count() != 4 {
		t.Fatalf("original count changed: %d", j.Count())
	}
	s := fj.OutputSchema()
	fj.Enumerate(func(tu relation.Tuple) bool {
		if tu[s.Index("X")] < 200 {
			t.Errorf("pushdown leaked %v", tu)
		}
		return true
	})
}

func TestPushDownAppliesToEveryHolder(t *testing.T) {
	j := selFixture(t)
	// A appears in both relations: the filter shrinks both sides.
	fj, err := PushDown(j, relation.Cmp{Attr: "A", Op: relation.EQ, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fj.Count() != 2 { // (1,100,10), (1,100,11)
		t.Fatalf("count = %d, want 2", fj.Count())
	}
	nodes := fj.Nodes()
	if nodes[0].Rel.Len() != 1 || nodes[1].Rel.Len() != 2 {
		t.Errorf("relations not filtered: %d, %d", nodes[0].Rel.Len(), nodes[1].Rel.Len())
	}
}

func TestPushDownComposite(t *testing.T) {
	j := selFixture(t)
	fj, err := PushDown(j,
		relation.And{
			relation.Cmp{Attr: "A", Op: relation.LE, Val: 2},
			relation.Cmp{Attr: "B", Op: relation.EQ, Val: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	// The And references A and B, both in R2: applied there. R1 lacks B,
	// so R1 is not filtered, but the join handles it.
	if fj.Count() != 2 { // (1,100,10), (2,200,10)
		t.Fatalf("count = %d, want 2", fj.Count())
	}
}

func TestPushDownUnplaceablePredicate(t *testing.T) {
	j := selFixture(t)
	// X and B never share a relation: cannot push down.
	_, err := PushDown(j, relation.And{
		relation.Cmp{Attr: "X", Op: relation.GT, Val: 0},
		relation.Cmp{Attr: "B", Op: relation.GT, Val: 0},
	})
	if err == nil {
		t.Fatal("cross-relation predicate pushed down")
	}
}

func TestPushDownNoPredicates(t *testing.T) {
	j := selFixture(t)
	fj, err := PushDown(j)
	if err != nil {
		t.Fatal(err)
	}
	if fj != j {
		t.Error("empty pushdown should return the join unchanged")
	}
}

func TestPushDownCyclic(t *testing.T) {
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {2, 11},
	})
	s := relation.MustFromTuples("S", relation.NewSchema("B", "C"), []relation.Tuple{
		{10, 100}, {11, 101},
	})
	u := relation.MustFromTuples("T", relation.NewSchema("C", "A"), []relation.Tuple{
		{100, 1}, {101, 2},
	})
	j, err := NewCyclic("tri", []*relation.Relation{r, s, u},
		[]Edge{{0, 1, "B"}, {1, 2, "C"}, {2, 0, "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Count() != 2 {
		t.Fatalf("base count = %d", j.Count())
	}
	fj, err := PushDown(j, relation.Cmp{Attr: "A", Op: relation.EQ, Val: 1})
	if err != nil {
		t.Fatalf("cyclic pushdown: %v", err)
	}
	if fj.Count() != 1 {
		t.Fatalf("filtered cyclic count = %d, want 1", fj.Count())
	}
	res := fj.Execute()
	sch := fj.OutputSchema()
	if len(res) != 1 || res[0][sch.Index("A")] != 1 {
		t.Errorf("wrong filtered result %v", res)
	}
	if !fj.Contains(res[0]) {
		t.Error("filtered cyclic Contains broken")
	}
}

func TestPredicateAttrs(t *testing.T) {
	attrs, err := predicateAttrs(relation.Or{
		relation.Cmp{Attr: "A", Op: relation.EQ, Val: 1},
		relation.Not{P: relation.NewIn("B", 1, 2)},
		relation.True{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != "A" || attrs[1] != "B" {
		t.Errorf("attrs = %v", attrs)
	}
	type weird struct{ relation.True }
	if _, err := predicateAttrs(weird{}); err == nil {
		t.Error("unknown predicate type accepted")
	}
}
