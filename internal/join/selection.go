package join

import (
	"fmt"

	"sampleunion/internal/relation"
)

// This file implements §8.3's first alternative for selection
// predicates: pushing them down to base relations during preprocessing,
// so sampling runs over filtered relations. The second alternative —
// enforcing predicates during sampling by rejection — lives in the
// sampling layer (core.SampleWhere), since it is a property of the
// sampler, not of the join.

// PushDown returns a copy of the join whose relations are filtered by
// the conjunction of the given predicates. Each predicate must be
// attributable to base relations: every attribute it references must
// appear in at least one relation, and the predicate is applied to
// every relation containing all of its attributes. Joins keep their
// shape (tree edges, residual links); only the row sets shrink.
//
// Pushing a single-attribute predicate to every holder of the
// attribute is equivalence-preserving because shared attribute names
// are join-connected (enforced at Build), so all holders agree on the
// attribute's value in any result.
func PushDown(j *Join, preds ...relation.Predicate) (*Join, error) {
	if len(preds) == 0 {
		return j, nil
	}
	filter := func(r *relation.Relation) (*relation.Relation, error) {
		out := r
		for _, p := range preds {
			attrs, err := predicateAttrs(p)
			if err != nil {
				return nil, err
			}
			applies := true
			for _, a := range attrs {
				if !out.Schema().Has(a) {
					applies = false
					break
				}
			}
			if !applies {
				continue
			}
			out = out.Filter(out.Name()+"|σ", p)
		}
		return out, nil
	}
	// Validate every predicate lands somewhere.
	rels := j.Relations()
	for _, p := range preds {
		attrs, err := predicateAttrs(p)
		if err != nil {
			return nil, err
		}
		placed := false
		for _, r := range rels {
			ok := true
			for _, a := range attrs {
				if !r.Schema().Has(a) {
					ok = false
					break
				}
			}
			if ok {
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("join %s: predicate %s references attributes of no single relation; enforce it during sampling instead (§8.3)", j.name, p)
		}
	}

	nodes := j.Nodes()
	newRels := make([]*relation.Relation, len(nodes))
	parents := make([]int, len(nodes))
	attrs := make([]string, len(nodes))
	for i := range nodes {
		var err error
		newRels[i], err = filter(nodes[i].Rel)
		if err != nil {
			return nil, err
		}
		parents[i] = nodes[i].Parent
		attrs[i] = nodes[i].Attr
	}
	out, err := NewTree(j.name+"|σ", newRels, parents, attrs)
	if err != nil {
		return nil, err
	}
	if j.res != nil {
		fres, err := filter(j.res.Rel())
		if err != nil {
			return nil, err
		}
		res, err := rebuildResidual(fres, j.res.LinkAttrs)
		if err != nil {
			return nil, err
		}
		out.res = res
		if err := out.buildOutput(); err != nil {
			return nil, err
		}
		res.linkOut = make([]int, len(res.LinkAttrs))
		for i, a := range res.LinkAttrs {
			p := out.out.Index(a)
			if p < 0 {
				return nil, fmt.Errorf("join %s: link attribute %q lost in pushdown", j.name, a)
			}
			res.linkOut[i] = p
		}
		out.membership.Store(nil)
	}
	return out, nil
}

// rebuildResidual re-indexes a filtered residual relation. The result
// is untracked (no member sources): pushdown produces a static derived
// join, so there is nothing to reconcile against.
func rebuildResidual(rel *relation.Relation, links []string) (*Residual, error) {
	res := &Residual{LinkAttrs: links}
	res.linkPos = make([]int, len(links))
	for i, a := range links {
		p := rel.Schema().Index(a)
		if p < 0 {
			return nil, fmt.Errorf("join: residual lost link attribute %q", a)
		}
		res.linkPos[i] = p
	}
	res.state.Store(res.buildState(rel))
	return res, nil
}

// predicateAttrs extracts the attribute names a predicate references.
// Composite predicates are flattened; an unknown predicate type is an
// error so PushDown never silently misapplies a filter.
func predicateAttrs(p relation.Predicate) ([]string, error) {
	switch q := p.(type) {
	case relation.Cmp:
		return []string{q.Attr}, nil
	case relation.In:
		return []string{q.Attr}, nil
	case relation.True:
		return nil, nil
	case relation.Not:
		return predicateAttrs(q.P)
	case relation.And:
		var out []string
		for _, sub := range q {
			as, err := predicateAttrs(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, as...)
		}
		return out, nil
	case relation.Or:
		var out []string
		for _, sub := range q {
			as, err := predicateAttrs(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, as...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("join: cannot push down predicate of type %T", p)
	}
}
