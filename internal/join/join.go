// Package join implements the join engine the union-sampling framework
// runs on: join trees over base relations (chain and acyclic joins),
// cyclic joins via skeleton/residual decomposition (§8.2), full-join
// enumeration (the FullJoinUnion ground truth of §9), membership tests
// over output tuples, and output-tuple identity keys.
//
// A Join is a rooted tree of relations. Node 0 is the root; every other
// node joins its parent on one shared attribute name, following the
// paper's convention that join attributes are standardized to the same
// name (§2). The output schema is the union of all relation attributes
// in first-appearance order, so distinct base-tuple combinations yield
// distinct output tuples whenever base relations are duplicate-free —
// matching the paper's "no duplicates in each join" assumption (§3).
package join

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sampleunion/internal/relation"
)

// Node is one relation in a join tree together with its tree linkage.
type Node struct {
	Rel           *relation.Relation
	Parent        int    // index of parent node; -1 for the root
	Attr          string // join attribute shared with the parent; "" for root
	AttrPos       int    // position of Attr in Rel's schema
	ParentAttrPos int    // position of Attr in the parent relation's schema
	Children      []int  // child node indexes

	// emit lists (relation attr position, output position) pairs for the
	// output columns this node is responsible for filling.
	emit [][2]int
	// proj[i] is the output position of Rel's i-th attribute. Every
	// attribute of every relation appears in the output.
	proj []int
}

// Join is an executable join query. Build it with NewChain, NewTree, or
// NewCyclic.
type Join struct {
	name  string
	nodes []Node
	res   *Residual // non-nil for cyclic joins
	out   *relation.Schema

	// membership holds the per-relation projection KeySets behind
	// Contains: built on first probe (exactly once under concurrent
	// first use, guarded by memMu) and republished when a base
	// relation's version moves (Relation.Append invalidation).
	membership atomic.Pointer[membershipTables]
	memMu      sync.Mutex
}

// Name returns the join's name.
func (j *Join) Name() string { return j.name }

// OutputSchema returns the schema of result tuples.
func (j *Join) OutputSchema() *relation.Schema { return j.out }

// Nodes returns the join-tree nodes. The slice is shared; treat it as
// read-only.
func (j *Join) Nodes() []Node { return j.nodes }

// ResidualPart returns the residual of a cyclic join, or nil.
func (j *Join) ResidualPart() *Residual { return j.res }

// Relations returns the base relations in node order (the residual's
// current materialized relation included last when present).
func (j *Join) Relations() []*relation.Relation {
	out := make([]*relation.Relation, 0, len(j.nodes)+1)
	for i := range j.nodes {
		out = append(out, j.nodes[i].Rel)
	}
	if j.res != nil {
		out = append(out, j.res.Rel())
	}
	return out
}

// StateVersions snapshots the mutation versions of everything this
// join's derived state depends on: the tree relations plus (for cyclic
// joins) the residual's member base relations. Prepared samplers store
// it and compare against a fresh snapshot to decide whether a refresh
// must reconcile this join.
func (j *Join) StateVersions() []uint64 {
	out := make([]uint64, 0, len(j.nodes)+4)
	for i := range j.nodes {
		out = append(out, j.nodes[i].Rel.Version())
	}
	if j.res != nil {
		for _, s := range j.res.src {
			out = append(out, s.Version())
		}
	}
	return out
}

// Key returns the identity key of an output tuple: equal keys identify
// equal tuple values across all joins sharing the output schema (§3
// Example 3).
func (j *Join) Key(t relation.Tuple) string { return relation.TupleKey(t) }

// NewChain builds the chain join rels[0] ⋈ rels[1] ⋈ ... where rels[i]
// joins rels[i-1] on attrs[i-1]; len(attrs) must be len(rels)-1.
func NewChain(name string, rels []*relation.Relation, attrs []string) (*Join, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("join %s: no relations", name)
	}
	if len(attrs) != len(rels)-1 {
		return nil, fmt.Errorf("join %s: %d relations need %d join attributes, got %d",
			name, len(rels), len(rels)-1, len(attrs))
	}
	parent := make([]int, len(rels))
	parent[0] = -1
	joinAttrs := make([]string, len(rels))
	for i := 1; i < len(rels); i++ {
		parent[i] = i - 1
		joinAttrs[i] = attrs[i-1]
	}
	return NewTree(name, rels, parent, joinAttrs)
}

// NewTree builds an acyclic join from an explicit tree: parent[i] is the
// parent node index of rels[i] (-1 exactly for i == 0, and parent[i] < i
// so the slice is already topological), and attrs[i] is the attribute
// joining rels[i] to its parent (ignored for the root).
func NewTree(name string, rels []*relation.Relation, parent []int, attrs []string) (*Join, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("join %s: no relations", name)
	}
	if len(parent) != len(rels) || len(attrs) != len(rels) {
		return nil, fmt.Errorf("join %s: parent/attrs length mismatch", name)
	}
	j := &Join{name: name, nodes: make([]Node, len(rels))}
	for i, r := range rels {
		n := Node{Rel: r, Parent: parent[i], Attr: "", AttrPos: -1, ParentAttrPos: -1}
		if i == 0 {
			if parent[0] != -1 {
				return nil, fmt.Errorf("join %s: node 0 must be the root", name)
			}
		} else {
			p := parent[i]
			if p < 0 || p >= i {
				return nil, fmt.Errorf("join %s: node %d has parent %d; want 0 <= parent < %d", name, i, p, i)
			}
			n.Attr = attrs[i]
			n.AttrPos = r.Schema().Index(attrs[i])
			if n.AttrPos < 0 {
				return nil, fmt.Errorf("join %s: relation %s lacks join attribute %q", name, r.Name(), attrs[i])
			}
			n.ParentAttrPos = rels[p].Schema().Index(attrs[i])
			if n.ParentAttrPos < 0 {
				return nil, fmt.Errorf("join %s: parent relation %s lacks join attribute %q", name, rels[p].Name(), attrs[i])
			}
		}
		j.nodes[i] = n
	}
	for i := 1; i < len(j.nodes); i++ {
		p := j.nodes[i].Parent
		j.nodes[p].Children = append(j.nodes[p].Children, i)
	}
	if err := j.buildOutput(); err != nil {
		return nil, err
	}
	if err := j.validateSharedAttrs(); err != nil {
		return nil, err
	}
	return j, nil
}

// buildOutput computes the output schema and per-node emit/projection
// tables.
func (j *Join) buildOutput() error {
	for i := range j.nodes {
		j.nodes[i].emit = nil
		j.nodes[i].proj = nil
	}
	if j.res != nil {
		j.res.emit = nil
		j.res.proj = nil
	}
	var attrs []string
	pos := make(map[string]int)
	for i := range j.nodes {
		rel := j.nodes[i].Rel
		for a := 0; a < rel.Arity(); a++ {
			name := rel.Schema().Attr(a)
			if _, ok := pos[name]; !ok {
				pos[name] = len(attrs)
				attrs = append(attrs, name)
				j.nodes[i].emit = append(j.nodes[i].emit, [2]int{a, pos[name]})
			}
		}
	}
	if j.res != nil {
		// The residual schema is a deterministic function of the member
		// schemas, so reading it off the current state stays valid across
		// re-materializations.
		resSchema := j.res.Rel().Schema()
		for a := 0; a < resSchema.Len(); a++ {
			name := resSchema.Attr(a)
			if _, ok := pos[name]; !ok {
				pos[name] = len(attrs)
				attrs = append(attrs, name)
				j.res.emit = append(j.res.emit, [2]int{a, pos[name]})
			}
		}
	}
	j.out = relation.NewSchema(attrs...)
	for i := range j.nodes {
		rel := j.nodes[i].Rel
		j.nodes[i].proj = make([]int, rel.Arity())
		for a := 0; a < rel.Arity(); a++ {
			j.nodes[i].proj[a] = pos[rel.Schema().Attr(a)]
		}
	}
	if j.res != nil {
		resSchema := j.res.Rel().Schema()
		j.res.proj = make([]int, resSchema.Len())
		for a := 0; a < resSchema.Len(); a++ {
			j.res.proj[a] = pos[resSchema.Attr(a)]
		}
	}
	return nil
}

// validateSharedAttrs enforces the engine's correctness precondition:
// any attribute appearing in several tree relations must connect them
// through edges labeled with that attribute, so equality propagates and
// enumeration needs no extra runtime checks.
func (j *Join) validateSharedAttrs() error {
	holders := make(map[string][]int)
	for i := range j.nodes {
		for _, a := range j.nodes[i].Rel.Schema().Attrs() {
			holders[a] = append(holders[a], i)
		}
	}
	for attr, ns := range holders {
		if len(ns) < 2 {
			continue
		}
		// Union-find over ns using only edges labeled attr.
		parent := make(map[int]int, len(ns))
		for _, n := range ns {
			parent[n] = n
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		inSet := make(map[int]bool, len(ns))
		for _, n := range ns {
			inSet[n] = true
		}
		for _, n := range ns {
			p := j.nodes[n].Parent
			if p >= 0 && j.nodes[n].Attr == attr && inSet[p] {
				parent[find(n)] = find(p)
			}
		}
		root := find(ns[0])
		for _, n := range ns[1:] {
			if find(n) != root {
				return fmt.Errorf("join %s: attribute %q appears in relations %s and %s without a connecting join edge on it",
					j.name, attr, j.nodes[ns[0]].Rel.Name(), j.nodes[n].Rel.Name())
			}
		}
	}
	return nil
}

// FillOutput copies row r of node k into the output-tuple positions the
// node is responsible for. Samplers compose result tuples with it.
func (j *Join) FillOutput(k, r int, out relation.Tuple) {
	n := &j.nodes[k]
	cols := n.Rel.Cols()
	for _, e := range n.emit {
		out[e[1]] = cols[e[0]][r]
	}
}

// FillResidual copies residual row r into the output-tuple positions the
// residual contributes. It panics when the join has no residual.
// Samplers that matched rows against a pinned ResView must use
// ResView.FillInto instead, so the row id and the materialization agree
// under concurrent reconciliation.
func (j *Join) FillResidual(r int, out relation.Tuple) {
	j.res.View().FillInto(r, out)
}

// ParentValue returns, for non-root node k, the join-attribute value the
// node must match given its parent's chosen row.
func (j *Join) ParentValue(k, parentRow int) relation.Value {
	n := &j.nodes[k]
	return j.nodes[n.Parent].Rel.Value(parentRow, n.ParentAttrPos)
}

// IsChain reports whether the join tree is a single path (a chain join).
func (j *Join) IsChain() bool {
	for i := range j.nodes {
		if len(j.nodes[i].Children) > 1 {
			return false
		}
	}
	return j.res == nil
}

// IsCyclic reports whether the join has a residual (was built cyclic).
func (j *Join) IsCyclic() bool { return j.res != nil }

func (j *Join) String() string {
	kind := "chain"
	if !j.IsChain() {
		kind = "acyclic"
	}
	if j.IsCyclic() {
		kind = "cyclic"
	}
	return fmt.Sprintf("%s[%s, %d relations]", j.name, kind, len(j.Relations()))
}
