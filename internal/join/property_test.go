package join

import (
	"testing"
	"testing/quick"

	"sampleunion/internal/relation"
)

// TestExactWeightsMatchEnumeration drives the EW recurrence with random
// two-relation chains: the root weights must sum to the enumerated
// result count, and every root row's weight must equal the number of
// results it heads.
func TestExactWeightsMatchEnumeration(t *testing.T) {
	f := func(keysA, keysB []uint8) bool {
		ra := relation.New("A", relation.NewSchema("K", "X"))
		for i, k := range keysA {
			ra.AppendValues(relation.Value(k%6), relation.Value(i))
		}
		rb := relation.New("B", relation.NewSchema("K", "Y"))
		for i, k := range keysB {
			rb.AppendValues(relation.Value(k%6), relation.Value(i))
		}
		if ra.Len() == 0 || rb.Len() == 0 {
			return true
		}
		j, err := NewChain("J", []*relation.Relation{ra, rb}, []string{"K"})
		if err != nil {
			return false
		}
		w := j.ExactWeights()
		var total int64
		for _, wi := range w[0] {
			total += wi
		}
		if total != j.Count() {
			return false
		}
		// Per-row check: weight of row i of the root = degree of its key
		// in B.
		for i := 0; i < ra.Len(); i++ {
			if w[0][i] != int64(rb.Degree(0, ra.Value(i, 0))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCountMatchesEnumerationProperty checks Count (weight DP) against
// brute-force enumeration on random three-relation chains.
func TestCountMatchesEnumerationProperty(t *testing.T) {
	f := func(keysA, keysB, keysC []uint8) bool {
		ra := relation.New("A", relation.NewSchema("K", "X"))
		for i, k := range keysA {
			ra.AppendValues(relation.Value(k%5), relation.Value(i))
		}
		rb := relation.New("B", relation.NewSchema("K", "L"))
		for i, k := range keysB {
			rb.AppendValues(relation.Value(k%5), relation.Value(int(k/16)%4))
			_ = i
		}
		rc := relation.New("C", relation.NewSchema("L", "Z"))
		for i, k := range keysC {
			rc.AppendValues(relation.Value(k%4), relation.Value(i))
		}
		if ra.Len() == 0 || rb.Len() == 0 || rc.Len() == 0 {
			return true
		}
		j, err := NewChain("J", []*relation.Relation{ra, rb, rc}, []string{"K", "L"})
		if err != nil {
			return false
		}
		var enumerated int64
		j.Enumerate(func(relation.Tuple) bool {
			enumerated++
			return true
		})
		return j.Count() == enumerated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestContainsSoundAndComplete checks, on random data, that Contains
// answers exactly the enumerated result set over the full candidate
// cross product of observed values.
func TestContainsSoundAndComplete(t *testing.T) {
	f := func(keysA, keysB []uint8) bool {
		ra := relation.New("A", relation.NewSchema("K", "X"))
		for i, k := range keysA {
			ra.AppendValues(relation.Value(k%4), relation.Value(i%3))
		}
		rb := relation.New("B", relation.NewSchema("K", "Y"))
		for i, k := range keysB {
			rb.AppendValues(relation.Value(k%4), relation.Value(i%3))
		}
		if ra.Len() == 0 || rb.Len() == 0 {
			return true
		}
		j, err := NewChain("J", []*relation.Relation{ra, rb}, []string{"K"})
		if err != nil {
			return false
		}
		inJoin := make(map[string]bool)
		j.Enumerate(func(tu relation.Tuple) bool {
			inJoin[relation.TupleKey(tu)] = true
			return true
		})
		for k := relation.Value(0); k < 4; k++ {
			for x := relation.Value(0); x < 3; x++ {
				for y := relation.Value(0); y < 3; y++ {
					tu := relation.Tuple{k, x, y}
					if j.Contains(tu) != inJoin[relation.TupleKey(tu)] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOlkenBoundProperty: the Olken bound dominates the true size on
// random chains.
func TestOlkenBoundProperty(t *testing.T) {
	f := func(keysA, keysB []uint8) bool {
		ra := relation.New("A", relation.NewSchema("K", "X"))
		for i, k := range keysA {
			ra.AppendValues(relation.Value(k%7), relation.Value(i))
		}
		rb := relation.New("B", relation.NewSchema("K", "Y"))
		for i, k := range keysB {
			rb.AppendValues(relation.Value(k%7), relation.Value(i))
		}
		if ra.Len() == 0 || rb.Len() == 0 {
			return true
		}
		j, err := NewChain("J", []*relation.Relation{ra, rb}, []string{"K"})
		if err != nil {
			return false
		}
		return j.OlkenBound() >= float64(j.Count())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
