package join

import (
	"sampleunion/internal/relation"
)

// Rebind returns a structural copy of the join with every relation
// replaced by sub(rel) — tree edges, join attributes, and (for cyclic
// joins) residual links are preserved; only the row sets change. sub
// may return its argument to share a relation unchanged; the returned
// relation must keep the original's schema. The shard-parallel engine
// uses Rebind to instantiate one join per shard, substituting hash
// fragments for the relations that carry the partition attribute.
//
// For a cyclic join, sub is also applied to the residual's current
// materialization; the rebound residual is untracked (like PushDown's),
// so a rebound cyclic join must be rebuilt — not reconciled — when its
// original's member relations mutate.
func Rebind(j *Join, name string, sub func(*relation.Relation) (*relation.Relation, error)) (*Join, error) {
	nodes := j.Nodes()
	newRels := make([]*relation.Relation, len(nodes))
	parents := make([]int, len(nodes))
	attrs := make([]string, len(nodes))
	for i := range nodes {
		var err error
		newRels[i], err = sub(nodes[i].Rel)
		if err != nil {
			return nil, err
		}
		parents[i] = nodes[i].Parent
		attrs[i] = nodes[i].Attr
	}
	out, err := NewTree(name, newRels, parents, attrs)
	if err != nil {
		return nil, err
	}
	if j.res != nil {
		rres, err := sub(j.res.Rel())
		if err != nil {
			return nil, err
		}
		res, err := rebuildResidual(rres, j.res.LinkAttrs)
		if err != nil {
			return nil, err
		}
		out.res = res
		if err := out.buildOutput(); err != nil {
			return nil, err
		}
		res.linkOut = make([]int, len(res.LinkAttrs))
		for i, a := range res.LinkAttrs {
			res.linkOut[i] = out.out.Index(a)
		}
		out.membership.Store(nil)
	}
	return out, nil
}
