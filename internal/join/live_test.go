package join

import (
	"sort"
	"sync"
	"testing"

	"sampleunion/internal/relation"
)

// execKeys returns the sorted multiset of a join's results.
func execKeys(j *Join) []string {
	var keys []string
	for _, t := range j.Execute() {
		keys = append(keys, relation.TupleKey(t))
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cloneRel copies a relation's live rows into a fresh relation.
func cloneRel(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Name(), r.Schema())
	out.AppendRows(r.Tuples())
	return out
}

// TestMembershipIncremental drives a chain join's membership tables
// through append and delete bursts and checks Contains against a join
// rebuilt from the mutated data — the incremental delta path must be
// observationally identical to a cold rebuild.
func TestMembershipIncremental(t *testing.T) {
	a := relation.New("A", relation.NewSchema("x", "y"))
	b := relation.New("B", relation.NewSchema("y", "z"))
	for i := 0; i < 40; i++ {
		a.AppendValues(relation.Value(i), relation.Value(i%6))
		b.AppendValues(relation.Value(i%6), relation.Value(i%4))
	}
	j, err := NewChain("chain", []*relation.Relation{a, b}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	j.PrewarmMembership() // build the base tables

	check := func() {
		t.Helper()
		fresh, err := NewChain("fresh", []*relation.Relation{cloneRel(a), cloneRel(b)}, []string{"y"})
		if err != nil {
			t.Fatal(err)
		}
		// Probe every tuple of the fresh result plus perturbed non-members.
		for _, tup := range fresh.Execute() {
			if !j.Contains(tup) {
				t.Fatalf("Contains(%v) = false for a result tuple", tup)
			}
			miss := tup.Clone()
			miss[0] = 999
			if j.Contains(miss) != fresh.Contains(miss) {
				t.Fatalf("Contains(%v) diverges from rebuilt join", miss)
			}
		}
		// And the reverse: members of the stale generation that died.
		if !sameKeys(execKeys(j), execKeys(fresh)) {
			t.Fatal("Execute diverged from rebuilt join")
		}
	}

	// Small append burst: the delta path.
	a.AppendRows([]relation.Tuple{{100, 1}, {101, 2}})
	b.AppendValues(2, 9)
	check()
	// Deletions: negative delta counts.
	a.Delete(0)
	b.Delete(3)
	check()
	// Delete one copy of a duplicated row: multiset counting must keep
	// the survivor a member.
	b.AppendValues(1, 7)
	b.AppendValues(1, 7)
	j.PrewarmMembership()
	probe := relation.Tuple{0, 1, 7} // x,y,z with (1,7) in B twice... x must exist with y=1
	a.AppendValues(0, 1)
	j.PrewarmMembership()
	if !j.Contains(relation.Tuple{0, 1, 7}) {
		t.Fatalf("Contains(%v) = false before duplicate delete", probe)
	}
	for i := 0; i < b.Len(); i++ {
		if b.Live(i) && b.Value(i, 0) == 1 && b.Value(i, 1) == 7 {
			b.Delete(i)
			break
		}
	}
	if !j.Contains(relation.Tuple{0, 1, 7}) {
		t.Fatal("deleting one of two duplicate rows must keep membership")
	}
	check()
	// Large burst: exceeds the delta budget, forcing a base rebuild.
	big := make([]relation.Tuple, 600)
	for i := range big {
		big[i] = relation.Tuple{relation.Value(200 + i), relation.Value(i % 6)}
	}
	a.AppendRows(big)
	check()
}

// TestResidualIncrementalAppend checks that append-only mutations to a
// cyclic join's residual members extend the materialization by a delta
// join with results identical to a from-scratch NewCyclic over the same
// data, and that deletions (which fall back to full re-materialization)
// are identical too.
func TestResidualIncrementalAppend(t *testing.T) {
	mk := func() (*relation.Relation, *relation.Relation, *relation.Relation) {
		r := relation.New("R", relation.NewSchema("A", "B"))
		s := relation.New("S", relation.NewSchema("B", "C"))
		u := relation.New("T", relation.NewSchema("C", "A"))
		for i := 0; i < 18; i++ {
			r.AppendValues(relation.Value(i%5), relation.Value(i%7))
			s.AppendValues(relation.Value(i%7), relation.Value(i%4))
			u.AppendValues(relation.Value(i%4), relation.Value(i%5))
		}
		return r, s, u
	}
	edges := []Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}
	r, s, u := mk()
	j, err := NewCyclic("tri", []*relation.Relation{r, s, u}, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.ResidualPart() == nil {
		t.Fatal("triangle join built without a residual")
	}
	j.PrewarmMembership()

	check := func() {
		t.Helper()
		fresh, err := NewCyclic("fresh", []*relation.Relation{cloneRel(r), cloneRel(s), cloneRel(u)}, edges, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.FreshenResidual()
		if !sameKeys(execKeys(j), execKeys(fresh)) {
			t.Fatal("cyclic results diverged from rebuilt join after reconcile")
		}
		if got, want := j.Count(), fresh.Count(); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
	}

	// Append to every base relation (residual member included): the
	// append-only incremental path.
	resBefore := j.ResidualPart().Rel()
	r.AppendValues(1, 2)
	s.AppendValues(2, 3)
	u.AppendValues(3, 1)
	check()
	if j.ResidualPart().Rel() != resBefore {
		// The incremental path extends the same materialized relation; a
		// swapped identity means the full-rebuild path ran instead.
		t.Log("note: reconcile took the full-rebuild path on an append-only delta")
	}

	// Delete from a residual member: must fall back to an exact full
	// re-materialization.
	for i := 0; i < u.Len(); i++ {
		if u.Live(i) {
			u.Delete(i)
			break
		}
	}
	check()

	// Interleave more appends after the rebuild.
	for i := 0; i < 6; i++ {
		s.AppendValues(relation.Value(i%7), relation.Value(i%4))
		check()
	}
}

// TestResidualViewPinning ensures a pinned ResView stays internally
// consistent while reconciles republish state concurrently.
func TestResidualViewPinning(t *testing.T) {
	r := relation.New("R", relation.NewSchema("A", "B"))
	s := relation.New("S", relation.NewSchema("B", "C"))
	u := relation.New("T", relation.NewSchema("C", "A"))
	for i := 0; i < 12; i++ {
		r.AppendValues(relation.Value(i%3), relation.Value(i%4))
		s.AppendValues(relation.Value(i%4), relation.Value(i%3))
		u.AppendValues(relation.Value(i%3), relation.Value(i%3))
	}
	edges := []Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}
	j, err := NewCyclic("tri", []*relation.Relation{r, s, u}, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := j.ResidualPart()
	j.PrewarmMembership()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reconciler: mutate members and freshen
		defer wg.Done()
		for i := 0; i < 200; i++ {
			u.AppendValues(relation.Value(i%3), relation.Value(i%3))
			j.FreshenResidual()
		}
		close(done)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make(relation.Tuple, j.OutputSchema().Len())
			for {
				select {
				case <-done:
					return
				default:
				}
				rv := res.View()
				rel := rv.Rel()
				for _, t2 := range rel.Tuples() {
					copy(out, t2[:min(len(t2), len(out))])
					break
				}
				// A pinned view's matches must index into the same pinned rel.
				for i := 0; i < rel.Len(); i++ {
					row := rel.Row(i)
					for k, p := range res.linkOut {
						if p < len(out) {
							out[p] = row[res.linkPos[k]]
						}
					}
					for _, m := range rv.Match(out) {
						if m >= rel.Len() {
							t.Errorf("pinned view match %d out of range %d", m, rel.Len())
							return
						}
					}
					break
				}
				_ = rv.MaxDegree()
			}
		}()
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
