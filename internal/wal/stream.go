package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrTruncated reports that a streaming cursor's next records were
// truncated out of the log (checkpointing removed the segment before
// the cursor reached it). The consumer must resync from a snapshot.
var ErrTruncated = errors.New("wal: records truncated past the stream cursor")

// StreamCursor reads raw validated frames out of a live log, in seq
// order, for WAL shipping: the primary side of replication tails the
// log with one and ships the on-disk frame bytes verbatim — the frame
// CRC computed at append time protects the record end to end, with no
// re-encoding. A cursor holds at most one open segment file; reads
// happen outside the log's mutex (only the write-buffer flush and the
// segment-list snapshot take it), so a slow stream consumer never
// backpressures appends. A torn frame at the live tail is an append in
// flight and simply ends the read; a torn or corrupt frame inside a
// sealed segment is real damage and errors.
//
// A cursor is NOT safe for concurrent use; each stream owns its own.
type StreamCursor struct {
	l   *Log
	seq uint64 // last seq handed out (frames <= seq are skipped)

	f     *os.File
	first uint64 // first seq of the open segment (identifies it)
	off   int64

	// endedClean records whether the last segment scan stopped at a
	// frame boundary (clean EOF) rather than inside a torn or invalid
	// frame.
	endedClean bool
}

// StreamFrom returns a cursor that yields frames with seq > after.
func (l *Log) StreamFrom(after uint64) *StreamCursor {
	return &StreamCursor{l: l, seq: after}
}

// Seq reports the seq of the last frame the cursor handed out (or the
// starting position before any read).
func (c *StreamCursor) Seq() uint64 { return c.seq }

// Close releases the cursor's open segment file.
func (c *StreamCursor) Close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// segmentsForStream flushes the write buffer (so committed frames are
// readable from the files) and snapshots the segment list.
func (l *Log) segmentsForStream() ([]segment, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.err != nil {
		return nil, l.err
	}
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return nil, l.fail(err)
		}
	}
	return append([]segment(nil), l.segs...), nil
}

// Read appends raw frames with seq > Seq() to dst, stopping once at
// least maxBytes of frame data have been gathered or the committed log
// tail is reached, and returns the extended slice. An empty extension
// with a nil error means no new committed frames exist yet. It returns
// ErrTruncated when the cursor's position was truncated out of the
// log, and a descriptive error on mid-log corruption.
func (c *StreamCursor) Read(dst []byte, maxBytes int) ([]byte, error) {
	segs, err := c.l.segmentsForStream()
	if err != nil {
		return dst, err
	}
	limit := len(dst) + maxBytes
	for len(dst) < limit {
		if c.f == nil {
			seg, ok := pickStreamSegment(segs, c.seq)
			if !ok {
				return dst, nil // empty log
			}
			f, err := os.Open(seg.path)
			if err != nil {
				if os.IsNotExist(err) {
					return dst, ErrTruncated
				}
				return dst, fmt.Errorf("wal: %w", err)
			}
			c.f, c.first, c.off = f, seg.first, 0
		}
		var sawEnd bool
		dst, sawEnd, err = c.fillFromSegment(dst, limit)
		if err != nil {
			return dst, err
		}
		if !sawEnd {
			break // budget filled mid-segment
		}
		next, ok := nextStreamSegment(segs, c.first)
		if !ok {
			// Live tail. Torn bytes here are an append in flight; the
			// next Read picks them up once committed.
			return dst, nil
		}
		if !c.endedClean {
			// Sealed segments were flushed whole before their successor
			// was created; a torn or corrupt frame inside one is damage.
			return dst, fmt.Errorf("wal: stream: corrupt frame mid-log in sealed segment %016x", c.first)
		}
		c.Close()
		f, err := os.Open(next.path)
		if err != nil {
			if os.IsNotExist(err) {
				return dst, ErrTruncated
			}
			return dst, fmt.Errorf("wal: %w", err)
		}
		c.f, c.first, c.off = f, next.first, 0
	}
	return dst, nil
}

// fillFromSegment reads frames from the open segment into dst until
// len(dst) reaches limit or the segment has no more complete valid
// frames, skipping frames at or below the cursor seq. sawEnd reports
// that the segment ran out (vs the budget); c.endedClean then tells a
// clean frame-boundary EOF from a torn or invalid frame.
func (c *StreamCursor) fillFromSegment(dst []byte, limit int) ([]byte, bool, error) {
	var hdr [headerSize]byte
	for len(dst) < limit {
		m, err := c.f.ReadAt(hdr[:], c.off)
		if m < headerSize {
			if err != nil && err != io.EOF {
				return dst, false, fmt.Errorf("wal: %w", err)
			}
			c.endedClean = m == 0
			return dst, true, nil
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		if ln > maxRecordLen {
			c.endedClean = false
			return dst, true, nil
		}
		need := headerSize + int(ln)
		pos := len(dst)
		dst = append(dst, make([]byte, need)...)
		m, err = c.f.ReadAt(dst[pos:pos+need], c.off)
		if m < need {
			if err != nil && err != io.EOF {
				return dst[:pos], false, fmt.Errorf("wal: %w", err)
			}
			c.endedClean = false
			return dst[:pos], true, nil
		}
		frame := dst[pos : pos+need]
		if crc32.Update(0, castagnoli, frame[8:]) != binary.LittleEndian.Uint32(frame[4:8]) {
			c.endedClean = false
			return dst[:pos], true, nil
		}
		c.off += int64(need)
		seq := binary.LittleEndian.Uint64(frame[8:16])
		if seq <= c.seq {
			dst = dst[:pos] // already streamed (reconnect overlap); skip
			continue
		}
		c.seq = seq
	}
	return dst, false, nil
}

// pickStreamSegment chooses the segment holding seq after+1: the last
// segment whose first record is <= after+1, or the earliest segment
// when every segment starts later (the consumer's gap detection decides
// what a leading hole means).
func pickStreamSegment(segs []segment, after uint64) (segment, bool) {
	if len(segs) == 0 {
		return segment{}, false
	}
	pick := segs[0]
	for _, s := range segs {
		if s.first <= after+1 {
			pick = s
		}
	}
	return pick, true
}

// nextStreamSegment returns the earliest segment whose first seq is
// past cur (the open segment's first).
func nextStreamSegment(segs []segment, cur uint64) (segment, bool) {
	for _, s := range segs {
		if s.first > cur {
			return s, true
		}
	}
	return segment{}, false
}
