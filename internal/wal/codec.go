package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"sampleunion/internal/relation"
)

// Mutation record payload (inside a WAL frame, little-endian):
//
//	[kind u8][row u64][nvals u32][vals nvals × i64]
//
// Appends carry the full tuple (nvals = arity); deletes carry none —
// the tombstoned row's values are already in every checkpointed or
// rebuilt storage, so replay needs only the row id.
//
// A batched append (one record per AppendRows batch, so bulk ingest
// pays one frame, one CRC, and one log append per ack) uses its own
// kind byte, disjoint from relation.MutKind values:
//
//	[kind=2 u8][start u64][n u32][arity u32][cols arity × n × i64]
//
// covering rows [start, start+n), column-major; the frame's seq is the
// relation version after the batch's LAST row.

// batchKind tags a batched-append payload (relation.MutKind uses 0/1).
const batchKind = 2

// taggedBatchKind tags a batched append carrying an idempotency key:
//
//	[kind=3 u8][klen u16][key klen bytes][start u64][n u32][arity u32][cols]
//
// The key is the client-supplied Idempotency-Key of the append that
// produced the batch; recovery and replication surface it so retry
// deduplication survives restarts and follower promotion.
const taggedBatchKind = 3

// maxIdemKeyLen bounds a persisted idempotency key (the u16 klen field).
const maxIdemKeyLen = 1 << 16

// AppendMutation appends m's wire encoding to buf and returns the
// extended slice.
func AppendMutation(buf []byte, m relation.Mutation) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Row))
	if m.Kind == relation.MutDelete {
		return binary.LittleEndian.AppendUint32(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Vals)))
	for _, v := range m.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// DecodeMutation parses a payload produced by AppendMutation.
func DecodeMutation(p []byte) (relation.Mutation, error) {
	var m relation.Mutation
	if len(p) < 13 {
		return m, fmt.Errorf("wal: mutation record of %d bytes is too short", len(p))
	}
	m.Kind = relation.MutKind(p[0])
	if m.Kind != relation.MutAppend && m.Kind != relation.MutDelete {
		return m, fmt.Errorf("wal: unknown mutation kind %d", p[0])
	}
	m.Row = int(binary.LittleEndian.Uint64(p[1:9]))
	nvals := binary.LittleEndian.Uint32(p[9:13])
	rest := p[13:]
	if uint64(len(rest)) != uint64(nvals)*8 {
		return m, fmt.Errorf("wal: mutation record claims %d values, carries %d bytes", nvals, len(rest))
	}
	if nvals > 0 {
		vals := make(relation.Tuple, nvals)
		for i := range vals {
			vals[i] = relation.Value(binary.LittleEndian.Uint64(rest[i*8 : i*8+8]))
		}
		m.Vals = vals
	}
	return m, nil
}

// batchHeaderLen is the fixed prefix of a batched-append payload.
const batchHeaderLen = 17

// batchRecordLen is the payload size of a batched append of n rows at
// the given arity.
func batchRecordLen(n, arity int) int { return batchHeaderLen + n*arity*8 }

// encodeBatchRecord fills dst — exactly batchRecordLen(n, len(cols))
// bytes — with the batched append of rows [start, start+n) read from
// the published column vectors. It encodes with indexed stores into a
// caller-reserved buffer because it sits on the ack path of every bulk
// ingest, where a second pass or copy is measurable against the
// in-memory append cost.
func encodeBatchRecord(dst []byte, start, n int, cols [][]relation.Value) {
	dst[0] = batchKind
	binary.LittleEndian.PutUint64(dst[1:9], uint64(start))
	binary.LittleEndian.PutUint32(dst[9:13], uint32(n))
	binary.LittleEndian.PutUint32(dst[13:17], uint32(len(cols)))
	p := dst[batchHeaderLen:]
	for _, col := range cols {
		for i, v := range col[start : start+n] {
			binary.LittleEndian.PutUint64(p[i*8:i*8+8], uint64(v))
		}
		p = p[n*8:]
	}
}

// AppendBatchRecord appends the wire encoding of a batched append of
// rows [start, start+n) to buf and returns the extended slice.
func AppendBatchRecord(buf []byte, start, n int, cols [][]relation.Value) []byte {
	head := len(buf)
	buf = append(buf, make([]byte, batchRecordLen(n, len(cols)))...)
	encodeBatchRecord(buf[head:], start, n, cols)
	return buf
}

// DecodeBatchRecord parses a payload produced by AppendBatchRecord into
// the starting physical row and the appended tuples, in append order.
func DecodeBatchRecord(p []byte) (start int, rows []relation.Tuple, err error) {
	if len(p) < 1 || p[0] != batchKind {
		return 0, nil, fmt.Errorf("wal: batch record of %d bytes is malformed", len(p))
	}
	return decodeBatchBody(p[1:])
}

// decodeBatchBody parses [start u64][n u32][arity u32][cols] — the body
// both batch kinds share past their prefix.
func decodeBatchBody(p []byte) (start int, rows []relation.Tuple, err error) {
	if len(p) < 16 {
		return 0, nil, fmt.Errorf("wal: batch record of %d bytes is malformed", len(p))
	}
	start = int(binary.LittleEndian.Uint64(p[0:8]))
	n := binary.LittleEndian.Uint32(p[8:12])
	arity := binary.LittleEndian.Uint32(p[12:16])
	rest := p[16:]
	if n == 0 || uint64(len(rest)) != uint64(n)*uint64(arity)*8 {
		return 0, nil, fmt.Errorf("wal: batch record claims %d x %d values, carries %d bytes", n, arity, len(rest))
	}
	rows = make([]relation.Tuple, n)
	flat := make(relation.Tuple, int(n)*int(arity))
	for i := range rows {
		rows[i] = flat[i*int(arity) : (i+1)*int(arity)]
	}
	for a := 0; a < int(arity); a++ {
		for i := 0; i < int(n); i++ {
			rows[i][a] = relation.Value(binary.LittleEndian.Uint64(rest[:8]))
			rest = rest[8:]
		}
	}
	return start, rows, nil
}

// taggedBatchRecordLen is the payload size of a tagged batched append.
func taggedBatchRecordLen(klen, n, arity int) int {
	return 3 + klen + 16 + n*arity*8
}

// encodeTaggedBatchRecord fills dst — exactly taggedBatchRecordLen
// bytes — with a tagged batched append of rows [start, start+n).
func encodeTaggedBatchRecord(dst []byte, tag string, start, n int, cols [][]relation.Value) {
	dst[0] = taggedBatchKind
	binary.LittleEndian.PutUint16(dst[1:3], uint16(len(tag)))
	copy(dst[3:], tag)
	p := dst[3+len(tag):]
	binary.LittleEndian.PutUint64(p[0:8], uint64(start))
	binary.LittleEndian.PutUint32(p[8:12], uint32(n))
	binary.LittleEndian.PutUint32(p[12:16], uint32(len(cols)))
	p = p[16:]
	for _, col := range cols {
		for i, v := range col[start : start+n] {
			binary.LittleEndian.PutUint64(p[i*8:i*8+8], uint64(v))
		}
		p = p[n*8:]
	}
}

// DecodeTaggedBatchRecord parses a tagged batched-append payload.
func DecodeTaggedBatchRecord(p []byte) (tag string, start int, rows []relation.Tuple, err error) {
	if len(p) < 3 || p[0] != taggedBatchKind {
		return "", 0, nil, fmt.Errorf("wal: tagged batch record of %d bytes is malformed", len(p))
	}
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+klen {
		return "", 0, nil, fmt.Errorf("wal: tagged batch record truncates its %d-byte key", klen)
	}
	tag = string(p[3 : 3+klen])
	start, rows, err = decodeBatchBody(p[3+klen:])
	return tag, start, rows, err
}

// Checkpoint file layout (little-endian), named %016x.ckpt after the
// version it covers:
//
//	magic "SUCKPT01" | version u64 | rows u64 | live u64 | arity u64 |
//	ndead u64 | dead ndead × u64 | cols arity × rows × i64 | crc u32
//
// crc is CRC-32C over everything before it. The file is written to a
// temp name, fsynced, renamed into place, and the directory fsynced —
// a crash mid-checkpoint leaves the previous checkpoint intact.

const ckptMagic = "SUCKPT01"

// WriteCheckpoint atomically persists sd at path.
func WriteCheckpoint(path string, sd relation.SnapshotData) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := WriteCheckpointTo(bw, sd); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// WriteCheckpointTo streams sd's SUCKPT01 encoding — the exact bytes a
// checkpoint file holds — to w. It is the wire side of checkpointing:
// the replication snapshot endpoint writes a captured snapshot straight
// into an HTTP response with it, no temp file.
func WriteCheckpointTo(w io.Writer, sd relation.SnapshotData) error {
	cw := &crcWriter{w: w}
	var u64 [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		cw.Write(u64[:])
	}
	cw.Write([]byte(ckptMagic))
	writeU64(sd.Version)
	writeU64(uint64(sd.Rows))
	writeU64(uint64(sd.Live))
	writeU64(uint64(len(sd.Cols)))
	writeU64(uint64(len(sd.Dead)))
	for _, d := range sd.Dead {
		writeU64(d)
	}
	for _, col := range sd.Cols {
		for i := 0; i < sd.Rows; i++ {
			writeU64(uint64(col[i]))
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.crc)
	cw.Write(crc[:])
	if cw.err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", cw.err)
	}
	return nil
}

// crcWriter accumulates a CRC-32C alongside writes. The trailer is
// written through it too, but only after the checksum value has been
// taken, so the stored crc covers exactly the body.
type crcWriter struct {
	w   io.Writer
	crc uint32
	err error
}

func (c *crcWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	c.crc = crc32.Update(c.crc, castagnoli, p)
	_, c.err = c.w.Write(p)
	return len(p), c.err
}

// ReadCheckpoint parses a checkpoint for a relation of the given
// arity, validating magic, shape, and checksum.
func ReadCheckpoint(path string, arity int) (relation.SnapshotData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return relation.SnapshotData{}, fmt.Errorf("wal: %w", err)
	}
	sd, err := DecodeCheckpoint(raw, arity)
	if err != nil {
		return sd, fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
	}
	return sd, nil
}

// DecodeCheckpoint parses an in-memory SUCKPT01 image (a checkpoint
// file's bytes, or a replication snapshot response) for a relation of
// the given arity, validating magic, shape, and checksum.
func DecodeCheckpoint(raw []byte, arity int) (relation.SnapshotData, error) {
	var sd relation.SnapshotData
	if len(raw) < len(ckptMagic)+5*8+4 || string(raw[:len(ckptMagic)]) != ckptMagic {
		return sd, fmt.Errorf("wal: not a checkpoint")
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return sd, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	p := body[len(ckptMagic):]
	readU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(p[:8])
		p = p[8:]
		return v
	}
	sd.Version = readU64()
	rows, live, ar, ndead := readU64(), readU64(), readU64(), readU64()
	if int(ar) != arity {
		return sd, fmt.Errorf("wal: checkpoint arity %d, want %d", ar, arity)
	}
	need := (ndead + ar*rows) * 8
	if uint64(len(p)) != need {
		return sd, fmt.Errorf("wal: truncated checkpoint body")
	}
	sd.Rows, sd.Live = int(rows), int(live)
	if ndead > 0 {
		sd.Dead = make([]uint64, ndead)
		for i := range sd.Dead {
			sd.Dead[i] = readU64()
		}
	}
	sd.Cols = make([][]relation.Value, ar)
	for a := range sd.Cols {
		col := make([]relation.Value, rows)
		for i := range col {
			col[i] = relation.Value(readU64())
		}
		sd.Cols[a] = col
	}
	return sd, nil
}
