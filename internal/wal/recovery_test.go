package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sampleunion/internal/relation"
)

// buildSegmentedLog writes n records into dir with tiny segments and
// closes the log, returning the sorted segment paths.
func buildSegmentedLog(t *testing.T, dir string, n int) []string {
	t.Helper()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (err %v)", len(segs), err)
	}
	return segs
}

// TestRecoveryCorruptMiddleSegmentFailsLoudly is the "damage in the
// middle must not be silently truncated" property: flip any byte of
// any non-final segment and Open must refuse the log, because treating
// the damage as a torn tail would discard every later record that was
// acked durable.
func TestRecoveryCorruptMiddleSegmentFailsLoudly(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		segs := buildSegmentedLog(t, dir, 120)
		victim := segs[rnd.Intn(len(segs)-1)] // any sealed segment
		raw, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		bit := byte(1 << rnd.Intn(8))
		raw[rnd.Intn(len(raw))] ^= bit
		if err := os.WriteFile(victim, raw, 0o666); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, testOpts(SyncNever))
		if err == nil {
			l.Close()
			t.Fatalf("round %d: Open accepted a log with corrupt segment %s", round, filepath.Base(victim))
		}
		if !strings.Contains(err.Error(), "corrupt mid-log") {
			t.Fatalf("round %d: error does not name mid-log corruption: %v", round, err)
		}
	}
}

// TestRecoveryDuplicatedSegmentFileFailsLoudly copies an existing
// segment under a different (valid-looking) name: duplicated history
// on disk must fail Open, not replay twice.
func TestRecoveryDuplicatedSegmentFileFailsLoudly(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		segs := buildSegmentedLog(t, dir, 120)
		src := segs[rnd.Intn(len(segs))]
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		// A duplicate can only carry a name its first record does not
		// match (the matching name is taken), so pick one past the end.
		dup := filepath.Join(dir, fmt.Sprintf("%016x.wal", 121+uint64(rnd.Intn(1000))))
		if err := os.WriteFile(dup, raw, 0o666); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, testOpts(SyncNever))
		if err == nil {
			l.Close()
			t.Fatalf("round %d: Open accepted a duplicated segment file", round)
		}
		if !strings.Contains(err.Error(), "does not match the segment name") &&
			!strings.Contains(err.Error(), "duplicated history") {
			t.Fatalf("round %d: error does not name the duplication: %v", round, err)
		}
	}
}

// TestRecoveryMissingMiddleSegmentFailsLoudly deletes an interior
// segment: the Log itself opens (each remaining segment is intact) but
// RelationLog recovery must detect the version gap and refuse, because
// applying the tail over the hole would corrupt the relation.
func TestRecoveryMissingMiddleSegmentFailsLoudly(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		rel := buildRel(nil)
		rl, err := OpenRelationLog(dir, rel, RelationLogOptions{
			Options: Options{Policy: SyncNever, SegmentBytes: 128},
		})
		if err != nil {
			t.Fatal(err)
		}
		rl.Attach()
		next := relation.Value(100)
		for i := 0; i < 60; i++ {
			rel.Append(relation.Tuple{next, next * 2})
			next++
		}
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
		if err != nil || len(segs) < 3 {
			t.Fatalf("round %d: want >= 3 segments, got %d", round, len(segs))
		}
		victim := segs[1+rnd.Intn(len(segs)-2)] // interior only
		if err := os.Remove(victim); err != nil {
			t.Fatal(err)
		}
		_, err = OpenRelationLog(dir, buildRel(nil), RelationLogOptions{Options: Options{Policy: SyncNever}})
		if err == nil {
			t.Fatalf("round %d: recovery accepted a log with a missing interior segment", round)
		}
		if !errors.Is(err, ErrSeqGap) {
			t.Fatalf("round %d: error is not a seq gap: %v", round, err)
		}
	}
}

func TestApplyRecordBatch(t *testing.T) {
	rel := relation.New("t", relation.NewSchema("a", "b"))
	rel.AppendRows([]relation.Tuple{{1, 2}, {3, 4}}) // version 2
	// Full column vectors (the sink contract): the batch covers
	// physical rows [2, 4).
	cols := [][]relation.Value{{1, 3, 10, 30}, {2, 4, 20, 40}}

	payload := make([]byte, batchRecordLen(2, 2))
	encodeBatchRecord(payload, 2, 2, cols)

	out, err := ApplyRecord(rel, 4, payload) // version 2 + 2 rows = seq 4
	if err != nil || !out.Applied || out.Rows != 2 || out.Tag != "" {
		t.Fatalf("apply batch: %+v, %v", out, err)
	}
	if rel.Version() != 4 || rel.Len() != 4 {
		t.Fatalf("after batch: version %d len %d", rel.Version(), rel.Len())
	}
	// Re-applying the same record is a duplicate, silently skipped.
	out, err = ApplyRecord(rel, 4, payload)
	if err != nil || out.Applied {
		t.Fatalf("duplicate batch: %+v, %v", out, err)
	}
	// A record that skips versions is a gap.
	farCols := [][]relation.Value{{1, 3, 10, 30, 50, 70}, {2, 4, 20, 40, 60, 80}}
	far := make([]byte, batchRecordLen(2, 2))
	encodeBatchRecord(far, 4, 2, farCols)
	if _, err := ApplyRecord(rel, 9, far); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap batch: %v, want ErrSeqGap", err)
	}
}

func TestApplyRecordTaggedBatch(t *testing.T) {
	rel := relation.New("t", relation.NewSchema("a", "b"))
	cols := [][]relation.Value{{1}, {2}}
	payload := make([]byte, taggedBatchRecordLen(len("batch-7"), 1, 2))
	encodeTaggedBatchRecord(payload, "batch-7", 0, 1, cols)
	out, err := ApplyRecord(rel, 1, payload)
	if err != nil || !out.Applied || out.Tag != "batch-7" || out.Rows != 1 {
		t.Fatalf("tagged apply: %+v, %v", out, err)
	}
}

func TestApplyRecordMutations(t *testing.T) {
	rel := relation.New("t", relation.NewSchema("a", "b"))
	rel.AppendRows([]relation.Tuple{{1, 2}}) // version 1

	app := AppendMutation(nil, relation.Mutation{Kind: relation.MutAppend, Row: 1, Vals: relation.Tuple{5, 6}})
	out, err := ApplyRecord(rel, 2, app)
	if err != nil || !out.Applied {
		t.Fatalf("apply append: %+v, %v", out, err)
	}
	del := AppendMutation(nil, relation.Mutation{Kind: relation.MutDelete, Row: 0})
	if out, err = ApplyRecord(rel, 3, del); err != nil || !out.Applied {
		t.Fatalf("apply delete: %+v, %v", out, err)
	}
	// Deleting the same row again (as a fresh record) contradicts state.
	del2 := AppendMutation(nil, relation.Mutation{Kind: relation.MutDelete, Row: 0})
	if _, err := ApplyRecord(rel, 4, del2); err == nil {
		t.Fatal("delete of a dead row applied")
	}
	// Gap on single mutations too.
	if _, err := ApplyRecord(rel, 9, app); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap mutation: %v, want ErrSeqGap", err)
	}
}
