// Package wal is the durability substrate under live serving: a
// segmented append-only write-ahead log plus snapshot checkpoints for
// relations (see RelationLog). Every mutation a server acks is framed,
// checksummed, and written here before the ack; recovery loads the
// newest valid checkpoint and replays the log tail past it through the
// relation's ordinary mutation path, so a restarted daemon comes back
// with exactly the acked state.
//
// Record frame (little-endian):
//
//	[len u32][crc u32][seq u64][payload len bytes]
//
// crc is CRC-32C (Castagnoli) over seq+payload. seq is caller-assigned
// and strictly increasing — relations use their mutation version, so a
// WAL record's seq IS the relation version it produced. Segments are
// named %016x.wal after their first record's seq; a torn tail (short
// frame, bad checksum, impossible length) is truncated away on Open.
// Damage anywhere except the tail — a torn record followed by segments
// that still hold valid records, a duplicated segment file, an
// overlapping seq range — fails Open loudly instead of silently
// truncating acked history.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy decides when appended records are fsynced, which is what
// an ack means to the client. See the README's "Durability" section for
// the full ladder.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Commit returns: an acked append
	// survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval is group commit: Commit only surfaces prior I/O
	// failures — no syscall on the ack path — and a background flusher
	// writes through and fsyncs every Options.Interval. A crash of any
	// kind (including a killed process) can lose up to one interval of
	// acked appends; everything older than the last flush survives
	// power loss.
	SyncInterval
	// SyncNever writes through to the OS and never fsyncs: acked
	// appends survive a killed process but not necessarily a crashed
	// machine.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a Log.
type Options struct {
	// Policy is the fsync policy; default SyncInterval.
	Policy SyncPolicy
	// Interval is the group-commit fsync cadence under SyncInterval.
	// Default 2ms.
	Interval time.Duration
	// SegmentBytes caps a segment file before rotation. Default 4 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

const (
	headerSize = 16
	// maxRecordLen bounds a frame's payload; a length field past it is
	// torn-tail garbage, not a record.
	maxRecordLen = 64 << 20
	segSuffix    = ".wal"
	// writeBufBytes sizes the segment write buffer. bufio's 4 KiB
	// default puts a write syscall on the ack path every ~hundred rows
	// of bulk ingest; 256 KiB keeps appends syscall-free between group
	// commits.
	writeBufBytes = 256 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment is one log file; first is the seq of its first record.
type segment struct {
	path  string
	first uint64
}

// writeBuf is a fixed-size buffered writer over the active segment
// that can hand out in-place reservations: a whole record frame is
// encoded directly into the buffer write() drains, so the bulk-ingest
// ack path copies each byte exactly once in user space.
type writeBuf struct {
	f *os.File
	b []byte
	n int
}

func newWriteBuf(f *os.File) *writeBuf {
	return &writeBuf{f: f, b: make([]byte, writeBufBytes)}
}

func (w *writeBuf) Flush() error {
	if w.n == 0 {
		return nil
	}
	n := w.n
	w.n = 0 // a failure makes the log sticky-failed; nothing retries
	_, err := w.f.Write(w.b[:n])
	return err
}

func (w *writeBuf) Write(p []byte) (int, error) {
	total := len(p)
	for w.n+len(p) > len(w.b) {
		if w.n == 0 { // larger than the whole buffer: write through
			_, err := w.f.Write(p)
			return total, err
		}
		k := copy(w.b[w.n:], p)
		w.n += k
		p = p[k:]
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	w.n += copy(w.b[w.n:], p)
	return total, nil
}

// Reserve returns an in-place window for the next n bytes of the
// stream, flushing first when the buffer tail is too short. It returns
// nil when n exceeds the buffer itself; the caller copies instead.
func (w *writeBuf) Reserve(n int) ([]byte, error) {
	if n > len(w.b) {
		return nil, nil
	}
	if w.n+n > len(w.b) {
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}
	p := w.b[w.n : w.n+n]
	w.n += n
	return p, nil
}

// Log is a segmented write-ahead log. Appends are buffered; Commit
// makes everything appended so far durable per the sync policy. All
// methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	w       *writeBuf
	scratch []byte // fallback encode buffer for oversized reservations
	segs    []segment
	lastSeq uint64 // highest seq ever appended; 0 = empty log
	size    int64  // bytes in the active segment
	dirty   bool   // bytes written since the last fsync
	err     error  // sticky I/O failure; every later call returns it
	closed  bool

	stop      chan struct{} // closes the interval flusher
	flushDone chan struct{}
}

// Open opens (creating if needed) the log in dir, truncating any torn
// tail so the log ends at its last intact record. The returned log's
// LastSeq is 0 when no record survives.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.scanDir(); err != nil {
		return nil, err
	}
	if len(l.segs) > 0 {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.w, l.size = f, newWriteBuf(f), st.Size()
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// scanDir lists segments and validates every one of them in order. A
// torn record is tolerated only at the true tail of the log — the
// defective segment's intact prefix is kept (or the empty file
// removed) and only recordless later segments may follow. A defect
// with valid records after it means history in the middle of the log
// was damaged: recovery fails loudly instead of silently truncating
// acked mutations away. Segments must also start at the seq their name
// claims and must not overlap their predecessor, so a duplicated or
// renamed segment file is an error, not silently replayed history.
func (l *Log) scanDir() error {
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	scans := make([]segScan, len(segs))
	for i, seg := range segs {
		sc, err := scanSegment(seg.path)
		if err != nil {
			return err
		}
		scans[i] = sc
	}
	for i, seg := range segs {
		sc := scans[i]
		if sc.n > 0 {
			if sc.first != seg.first {
				return fmt.Errorf("wal: %s: first record seq %d does not match the segment name (duplicated or renamed segment file)",
					filepath.Base(seg.path), sc.first)
			}
			if l.lastSeq >= seg.first {
				return fmt.Errorf("wal: %s: segment overlaps its predecessor (first seq %d, predecessor ends at %d): duplicated history",
					filepath.Base(seg.path), seg.first, l.lastSeq)
			}
		}
		if sc.intact && sc.n > 0 {
			l.segs = append(l.segs, seg)
			l.lastSeq = sc.last
			continue
		}
		// Defective (torn record, or no records at all): legal only at
		// the log's tail. Any valid record in a later segment means the
		// damage is mid-log.
		for j := i + 1; j < len(segs); j++ {
			if scans[j].n > 0 {
				return fmt.Errorf("wal: %s: torn or empty segment followed by %s holding %d record(s): corrupt mid-log, refusing to truncate history",
					filepath.Base(seg.path), filepath.Base(segs[j].path), scans[j].n)
			}
		}
		if sc.n > 0 {
			if err := os.Truncate(seg.path, sc.goodOff); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			l.segs = append(l.segs, seg)
			l.lastSeq = sc.last
		} else if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: removing empty torn segment: %w", err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(later.path); err != nil {
				return fmt.Errorf("wal: removing post-tear segment: %w", err)
			}
		}
		break
	}
	return nil
}

// segScan is one segment's validation result: the seqs of its first
// and last valid records, the number of valid records, the byte offset
// past the last valid record, and whether the file ends exactly there.
type segScan struct {
	first, last uint64
	n           int
	goodOff     int64
	intact      bool
}

// scanSegment walks one segment's frames.
func scanSegment(path string) (segScan, error) {
	var sc segScan
	f, err := os.Open(path)
	if err != nil {
		return sc, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [headerSize]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			sc.intact = err == io.EOF
			return sc, nil
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		if ln > maxRecordLen {
			return sc, nil
		}
		if int(ln) > len(buf) {
			buf = make([]byte, ln)
		}
		payload := buf[:ln]
		if _, err := io.ReadFull(br, payload); err != nil {
			return sc, nil
		}
		crc := crc32.Update(0, castagnoli, hdr[8:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[4:8]) {
			return sc, nil
		}
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if sc.n == 0 {
			sc.first = seq
		}
		sc.last = seq
		sc.n++
		sc.goodOff += int64(headerSize) + int64(ln)
	}
}

// LastSeq reports the highest seq ever appended (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

func segName(first uint64) string {
	return fmt.Sprintf("%016x%s", first, segSuffix)
}

// Append frames and buffers one record. seq must exceed every
// previously appended seq (gaps are fine: a checkpoint can outlive
// unfsynced WAL records, so the next boot appends past the checkpoint's
// version while the log still ends earlier). Durability — and write-out
// of the buffer — comes from Commit.
func (l *Log) Append(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendCheckLocked(seq, len(payload)); err != nil {
		return err
	}
	return l.writeFrameLocked(seq, payload)
}

// AppendReserve appends one record whose payload is encoded in place:
// encode must fill exactly size bytes of the frame reserved inside the
// segment's write buffer, so bulk records skip the intermediate
// payload copy. The contract is otherwise Append's.
func (l *Log) AppendReserve(seq uint64, size int, encode func(dst []byte)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendCheckLocked(seq, size); err != nil {
		return err
	}
	frame, err := l.w.Reserve(headerSize + size)
	if err != nil {
		return l.fail(err)
	}
	if frame == nil { // record larger than the write buffer
		if cap(l.scratch) < size {
			l.scratch = make([]byte, size)
		}
		p := l.scratch[:size]
		encode(p)
		return l.writeFrameLocked(seq, p)
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(size))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	encode(frame[headerSize:])
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Update(0, castagnoli, frame[8:]))
	l.size += int64(headerSize) + int64(size)
	l.lastSeq = seq
	l.dirty = true
	return nil
}

// appendCheckLocked runs Append's preconditions and rotates when the
// active segment is full (or absent).
func (l *Log) appendCheckLocked(seq uint64, size int) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	if seq <= l.lastSeq {
		return l.fail(fmt.Errorf("wal: non-monotone seq %d (last %d)", seq, l.lastSeq))
	}
	if size > maxRecordLen {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", size, maxRecordLen)
	}
	if l.f == nil || l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(seq); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) writeFrameLocked(seq uint64, payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return l.fail(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return l.fail(err)
	}
	l.size += int64(headerSize) + int64(len(payload))
	l.lastSeq = seq
	l.dirty = true
	return nil
}

// fail records a sticky error: after an I/O failure the log refuses
// all further work, so a torn in-memory state can never be acked.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

// rotateLocked seals the active segment (flushing, and fsyncing unless
// the policy never syncs) and starts a new one whose first record will
// be seq. SyncInterval must fsync here too: once the old file closes,
// the background flusher only ever sees the new one, and an unsynced
// sealed segment would widen the loss window past one interval.
func (l *Log) rotateLocked(seq uint64) error {
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return l.fail(err)
		}
		if l.opts.Policy != SyncNever {
			if err := l.f.Sync(); err != nil {
				return l.fail(err)
			}
		}
		if err := l.f.Close(); err != nil {
			return l.fail(err)
		}
		l.f, l.w = nil, nil
	}
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return l.fail(err)
	}
	if l.opts.Policy == SyncAlways {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			os.Remove(path)
			return l.fail(err)
		}
	}
	l.f, l.w, l.size = f, newWriteBuf(f), 0
	l.segs = append(l.segs, segment{path: path, first: seq})
	l.dirty = false
	return nil
}

// Commit makes every appended record as durable as the sync policy
// promises before an ack may be sent: under SyncAlways the buffer is
// flushed and fsynced here; under SyncNever it is written through to
// the OS; under SyncInterval Commit only surfaces sticky failures —
// the background flusher owns the write and fsync, and the policy's
// loss window covers acks younger than the last flush.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	if l.opts.Policy == SyncInterval {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if l.opts.Policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return l.fail(err)
		}
		l.dirty = false
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	l.dirty = false
	return nil
}

// flushLoop is the SyncInterval group-commit flusher. The fsync runs
// outside the log mutex so appends don't stall behind it: the flush
// under the lock moves every appended byte into the OS, and anything
// appended while the fsync is in flight re-marks the log dirty for the
// next tick. A segment rotation can close the file mid-fsync; that
// error is ignored when the file is no longer current, because the
// rotation path fsyncs the sealed segment itself before closing it.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.err != nil || l.closed || l.f == nil || !l.dirty {
				l.mu.Unlock()
				continue
			}
			if err := l.w.Flush(); err != nil {
				l.fail(err)
				l.mu.Unlock()
				continue
			}
			f := l.f
			l.dirty = false
			l.mu.Unlock()
			if err := f.Sync(); err != nil {
				l.mu.Lock()
				if l.f == f && !l.closed {
					l.fail(err)
				}
				l.mu.Unlock()
			}
		}
	}
}

// Replay calls fn for every record with seq > after, in order. The
// write buffer is flushed first so replay sees everything appended.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return l.fail(err)
		}
	}
	for i, seg := range l.segs {
		// A segment whose successor starts at or before after+1 holds
		// only records <= after; skip it.
		if i+1 < len(l.segs) && l.segs[i+1].first <= after+1 {
			continue
		}
		if err := replaySegment(seg.path, after, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, after uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: %s: torn frame mid-log", filepath.Base(path))
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		if ln > maxRecordLen {
			return fmt.Errorf("wal: %s: corrupt frame length %d", filepath.Base(path), ln)
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("wal: %s: torn record mid-log", filepath.Base(path))
		}
		crc := crc32.Update(0, castagnoli, hdr[8:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[4:8]) {
			return fmt.Errorf("wal: %s: checksum mismatch mid-log", filepath.Base(path))
		}
		if seq := binary.LittleEndian.Uint64(hdr[8:16]); seq > after {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
	}
}

// TruncateThrough removes sealed segments that hold only records with
// seq <= through — called after a checkpoint makes that prefix
// redundant. The active segment is never removed.
func (l *Log) TruncateThrough(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		sealed := i+1 < len(l.segs)
		if sealed && l.segs[i+1].first <= through+1 {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// Segments reports the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes, fsyncs (best-effort durability for a clean shutdown),
// and closes the log. Further calls return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.f != nil && l.err == nil {
		err = l.syncLocked()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f, l.w = nil, nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}

// syncDir fsyncs a directory so a rename/create within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
