package wal

import (
	"errors"
	"fmt"

	"sampleunion/internal/relation"
)

// ErrSeqGap reports a record whose seq does not extend the relation's
// version chain: versions between the relation's state and the record
// are missing. Recovery treats it as corruption; a replication follower
// treats it as "resync from a snapshot".
var ErrSeqGap = errors.New("wal: seq gap")

// ApplyOutcome reports what ApplyRecord did with one record.
type ApplyOutcome struct {
	// Applied is false when the record's versions were already in the
	// relation (a duplicate — expected on a replication stream after a
	// reconnect, loud corruption during recovery replay).
	Applied bool
	// Rows is the number of rows the record covers (batch size, or 1).
	Rows int
	// Tag is the batch's idempotency key ("" when untagged).
	Tag string
}

// ApplyRecord applies one WAL record to rel through its ordinary
// mutation path, checking the seq chain exactly: a record whose span
// ends at or below rel.Version() is skipped as a duplicate
// (Applied=false), one that extends the chain by exactly its own rows
// is applied, and anything else is an ErrSeqGap. It is the single
// decode-and-apply used by recovery replay and by replication
// followers, so both enforce identical contiguity.
func ApplyRecord(rel *relation.Relation, seq uint64, payload []byte) (ApplyOutcome, error) {
	if len(payload) == 0 {
		return ApplyOutcome{}, fmt.Errorf("wal: %s: empty record payload at seq %d", rel.Name(), seq)
	}
	switch payload[0] {
	case batchKind, taggedBatchKind:
		var (
			tag   string
			start int
			rows  []relation.Tuple
			err   error
		)
		if payload[0] == batchKind {
			start, rows, err = DecodeBatchRecord(payload)
		} else {
			tag, start, rows, err = DecodeTaggedBatchRecord(payload)
		}
		if err != nil {
			return ApplyOutcome{}, err
		}
		out := ApplyOutcome{Rows: len(rows), Tag: tag}
		v := rel.Version()
		if seq <= v {
			return out, nil // duplicate: all of the batch's versions are in
		}
		if want := v + uint64(len(rows)); seq != want {
			return out, fmt.Errorf("wal: %s: %w: batch record ends at %d, want %d", rel.Name(), ErrSeqGap, seq, want)
		}
		if len(rows[0]) != rel.Arity() {
			return out, fmt.Errorf("wal: %s: batch record arity %d, want %d", rel.Name(), len(rows[0]), rel.Arity())
		}
		if start != rel.Len() {
			return out, fmt.Errorf("wal: %s: batch record starts at row %d, storage at %d", rel.Name(), start, rel.Len())
		}
		rel.AppendRowsTagged(rows, tag)
		out.Applied = true
		return out, nil
	}
	out := ApplyOutcome{Rows: 1}
	v := rel.Version()
	if seq <= v {
		return out, nil
	}
	if want := v + 1; seq != want {
		return out, fmt.Errorf("wal: %s: %w: record %d, want %d", rel.Name(), ErrSeqGap, seq, want)
	}
	m, err := DecodeMutation(payload)
	if err != nil {
		return out, err
	}
	switch m.Kind {
	case relation.MutAppend:
		if len(m.Vals) != rel.Arity() {
			return out, fmt.Errorf("wal: %s: append record arity %d, want %d", rel.Name(), len(m.Vals), rel.Arity())
		}
		if m.Row != rel.Len() {
			return out, fmt.Errorf("wal: %s: append record row %d, storage at %d", rel.Name(), m.Row, rel.Len())
		}
		rel.Append(m.Vals)
	case relation.MutDelete:
		if !rel.Delete(m.Row) {
			return out, fmt.Errorf("wal: %s: delete record for dead or missing row %d", rel.Name(), m.Row)
		}
	}
	out.Applied = true
	return out, nil
}
