package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sampleunion/internal/relation"
)

// RelationLogOptions tunes a RelationLog.
type RelationLogOptions struct {
	Options
	// CheckpointEvery checkpoints after that many mutations past the
	// last checkpoint (0 disables automatic checkpoints).
	CheckpointEvery int
}

// RelationLog is one relation's durability state: a WAL the relation's
// mutations tee into (via relation.MutationSink) plus rolling snapshot
// checkpoints, laid out as dir/wal/*.wal and dir/checkpoint/*.ckpt.
//
// Open recovers: it restores the newest valid checkpoint (falling back
// to the next-newest on corruption) and replays the WAL tail past it
// through the relation's ordinary Append/Delete path, then serving
// code calls Attach to start teeing new mutations. The WAL seq of a
// record is the relation version it produced, so replay is gap-checked
// against Version() exactly.
type RelationLog struct {
	rel *relation.Relation
	dir string
	log *Log
	opt RelationLogOptions

	mu        sync.Mutex
	sinkErr   error          // first Append failure, surfaced by Commit
	ckptVers  []uint64       // retained checkpoint versions, ascending
	lastCkpt  uint64         // version the newest checkpoint covers (or base)
	buf       []byte         // encode scratch; LogMutation is serialized by rel.mu
	recovered int            // mutations replayed or restored at Open
	floor     uint64         // versions <= floor are not streamable from this WAL
	tags      map[string]int // idempotency tags recovered from the WAL → rows
}

const ckptSuffix = ".ckpt"

// OpenRelationLog opens (recovering if state exists) the durability
// state for rel under dir. rel must hold its deterministic base
// contents — the same contents every boot builds — so that restored
// versions line up.
func OpenRelationLog(dir string, rel *relation.Relation, opt RelationLogOptions) (*RelationLog, error) {
	rl := &RelationLog{rel: rel, dir: dir, opt: opt}
	base := rel.Version()
	if err := rl.restoreCheckpoint(); err != nil {
		return nil, err
	}
	log, err := Open(filepath.Join(dir, "wal"), opt.Options)
	if err != nil {
		return nil, err
	}
	rl.log = log
	// Records at or below the restored version were never verified
	// contiguous by this open; replication streams must not start
	// below it (resync from a snapshot instead).
	rl.floor = rel.Version()
	if err := rl.replay(); err != nil {
		log.Close()
		return nil, err
	}
	if rl.lastCkpt == 0 {
		rl.lastCkpt = rel.Version()
	}
	rl.recovered = int(rel.Version() - base)
	if rl.recovered < 0 {
		log.Close()
		return nil, fmt.Errorf("wal: %s: recovered version %d below base %d", rel.Name(), rel.Version(), base)
	}
	return rl, nil
}

// restoreCheckpoint loads the newest checkpoint that validates,
// removing corrupt newer ones.
func (rl *RelationLog) restoreCheckpoint() error {
	dir := filepath.Join(rl.dir, "checkpoint")
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var vers []uint64
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(name, ckptSuffix), 16, 64)
		if err != nil {
			continue
		}
		vers = append(vers, v)
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
	for len(vers) > 0 {
		v := vers[len(vers)-1]
		path := filepath.Join(dir, ckptName(v))
		sd, err := ReadCheckpoint(path, rl.rel.Arity())
		if err != nil {
			// A torn or corrupt checkpoint (crash mid-write cannot
			// produce one, but disks can): discard and fall back to
			// the previous — the WAL retained past it covers the gap.
			os.Remove(path)
			vers = vers[:len(vers)-1]
			continue
		}
		if err := rl.rel.RestoreSnapshot(sd); err != nil {
			return err
		}
		rl.ckptVers = vers
		rl.lastCkpt = v
		return nil
	}
	return nil
}

// replay applies every WAL record past the relation's current version,
// verifying the seq chain is exactly the version chain. Recovery is
// strict: a record whose versions are already present means duplicated
// history on disk, which is corruption, not idempotence. Idempotency
// tags found in tagged batch records are collected for the serving
// layer's dedupe table.
func (rl *RelationLog) replay() error {
	rel := rl.rel
	return rl.log.Replay(rel.Version(), func(seq uint64, payload []byte) error {
		out, err := ApplyRecord(rel, seq, payload)
		if err != nil {
			return err
		}
		if !out.Applied {
			return fmt.Errorf("wal: %s: record %d duplicates applied history (version %d)", rel.Name(), seq, rel.Version())
		}
		if out.Tag != "" {
			if rl.tags == nil {
				rl.tags = make(map[string]int)
			}
			rl.tags[out.Tag] += out.Rows
		}
		return nil
	})
}

// RecoveredTags returns the idempotency tags found in the replayed WAL
// tail, mapped to the row count each tag covered. The dedupe window a
// restart preserves is exactly the WAL retention window: tags whose
// records were truncated by checkpointing are gone.
func (rl *RelationLog) RecoveredTags() map[string]int { return rl.tags }

// Attach registers the log as the relation's mutation sink; every
// later mutation is teed into the WAL before its ack can be committed.
func (rl *RelationLog) Attach() { rl.rel.SetMutationSink(rl) }

// Detach stops the tee.
func (rl *RelationLog) Detach() { rl.rel.SetMutationSink(nil) }

// Recovered reports the number of mutations restored at Open (from
// checkpoint and WAL together, measured in relation versions).
func (rl *RelationLog) Recovered() int { return rl.recovered }

// LogMutation implements relation.MutationSink: encode and append. It
// runs under the relation's mutation lock, so failures are parked and
// surfaced by the Commit that must precede any ack.
func (rl *RelationLog) LogMutation(version uint64, m relation.Mutation) {
	rl.buf = AppendMutation(rl.buf[:0], m)
	if err := rl.log.Append(version, rl.buf); err != nil {
		rl.mu.Lock()
		if rl.sinkErr == nil {
			rl.sinkErr = err
		}
		rl.mu.Unlock()
	}
}

// batchChunkRows bounds rows per batched-append record so no record can
// approach maxRecordLen at any sane arity (2^16 rows × arity × 8 bytes).
const batchChunkRows = 1 << 16

// LogAppendBatch implements the bulk side of relation.MutationSink: one
// WAL record per batch (chunked only far beyond any wire-level batch
// size), encoded in place inside the WAL's write buffer straight from
// the published column vectors. The frame's seq is the version after
// the chunk's last row, which replay checks for exact contiguity. A
// non-empty idempotency tag switches the record to the tagged batch
// kind, so the tag rides the WAL into recovery and replication.
func (rl *RelationLog) LogAppendBatch(version uint64, start, n int, cols [][]relation.Value, tag string) {
	if len(tag) >= maxIdemKeyLen {
		tag = tag[:maxIdemKeyLen-1]
	}
	for off := 0; off < n; off += batchChunkRows {
		c := n - off
		if c > batchChunkRows {
			c = batchChunkRows
		}
		s := start + off
		seq := version - uint64(n-off-c)
		var err error
		if tag == "" {
			err = rl.log.AppendReserve(seq, batchRecordLen(c, len(cols)), func(dst []byte) {
				encodeBatchRecord(dst, s, c, cols)
			})
		} else {
			err = rl.log.AppendReserve(seq, taggedBatchRecordLen(len(tag), c, len(cols)), func(dst []byte) {
				encodeTaggedBatchRecord(dst, tag, s, c, cols)
			})
		}
		if err != nil {
			rl.mu.Lock()
			if rl.sinkErr == nil {
				rl.sinkErr = err
			}
			rl.mu.Unlock()
			return
		}
	}
}

// Commit makes every teed mutation durable per the sync policy. Serving
// code calls it after the in-memory mutation and before acking; a
// failure here means the ack must not be sent.
func (rl *RelationLog) Commit() error {
	rl.mu.Lock()
	err := rl.sinkErr
	rl.mu.Unlock()
	if err != nil {
		return err
	}
	return rl.log.Commit()
}

func ckptName(version uint64) string {
	return fmt.Sprintf("%016x%s", version, ckptSuffix)
}

// Checkpoint persists the relation's published snapshot, retains the
// two newest checkpoints, and truncates WAL segments the older of the
// two makes redundant (keeping one generation of slack so a corrupt
// newest checkpoint still recovers).
func (rl *RelationLog) Checkpoint() error {
	sd := rl.rel.CaptureSnapshot()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if len(rl.ckptVers) > 0 && rl.ckptVers[len(rl.ckptVers)-1] == sd.Version {
		return nil
	}
	dir := filepath.Join(rl.dir, "checkpoint")
	if err := WriteCheckpoint(filepath.Join(dir, ckptName(sd.Version)), sd); err != nil {
		return err
	}
	rl.ckptVers = append(rl.ckptVers, sd.Version)
	for len(rl.ckptVers) > 2 {
		if err := os.Remove(filepath.Join(dir, ckptName(rl.ckptVers[0]))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: %w", err)
		}
		rl.ckptVers = rl.ckptVers[1:]
	}
	rl.lastCkpt = sd.Version
	if len(rl.ckptVers) == 2 {
		if rl.ckptVers[0] > rl.floor {
			// Truncation removes records <= the older checkpoint; a
			// stream can no longer start below it.
			rl.floor = rl.ckptVers[0]
		}
		return rl.log.TruncateThrough(rl.ckptVers[0])
	}
	return nil
}

// StreamFrom opens a streaming cursor over the relation's WAL frames
// with seq > after (see Log.StreamFrom).
func (rl *RelationLog) StreamFrom(after uint64) *StreamCursor { return rl.log.StreamFrom(after) }

// StreamFloor is the lowest version a replication stream may start
// from: records at or below it were either never verified by this open
// or truncated away by checkpointing, so a follower behind the floor
// must resync from a snapshot instead.
func (rl *RelationLog) StreamFloor() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.floor
}

// WALLastSeq reports the highest seq the WAL holds (see Log.LastSeq).
func (rl *RelationLog) WALLastSeq() uint64 { return rl.log.LastSeq() }

// MaybeCheckpoint checkpoints when CheckpointEvery mutations have
// accumulated past the last checkpoint, reporting whether it did.
func (rl *RelationLog) MaybeCheckpoint() (bool, error) {
	if rl.opt.CheckpointEvery <= 0 {
		return false, nil
	}
	rl.mu.Lock()
	due := rl.rel.Version()-rl.lastCkpt >= uint64(rl.opt.CheckpointEvery)
	rl.mu.Unlock()
	if !due {
		return false, nil
	}
	err := rl.Checkpoint()
	return err == nil, err
}

// Close detaches the sink and closes the WAL. In-flight mutations that
// raced the detach fail their Commit (sticky ErrClosed) rather than
// ack silently undurable work.
func (rl *RelationLog) Close() error {
	rl.Detach()
	return rl.log.Close()
}
