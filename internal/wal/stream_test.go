package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// decodeStreamFrames splits a stream buffer back into validated
// (seq, payload) pairs, asserting seqs come out strictly increasing.
func decodeStreamFrames(t *testing.T, b []byte) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	last := uint64(0)
	for len(b) > 0 {
		if len(b) < headerSize {
			t.Fatalf("trailing %d bytes are not a frame", len(b))
		}
		ln := binary.LittleEndian.Uint32(b[0:4])
		need := headerSize + int(ln)
		if len(b) < need {
			t.Fatalf("frame needs %d bytes, buffer has %d", need, len(b))
		}
		if crc32.Update(0, castagnoli, b[8:need]) != binary.LittleEndian.Uint32(b[4:8]) {
			t.Fatal("streamed frame fails its checksum")
		}
		seq := binary.LittleEndian.Uint64(b[8:16])
		if seq <= last {
			t.Fatalf("stream out of order: seq %d after %d", seq, last)
		}
		last = seq
		out[seq] = string(b[headerSize:need])
		b = b[need:]
	}
	return out
}

func TestStreamCursorTailFollow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOpts(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 50; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	cur := l.StreamFrom(0)
	defer cur.Close()
	buf, err := cur.Read(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeStreamFrames(t, buf)
	if len(got) != 50 || got[1] != "rec-1" || got[50] != "rec-50" {
		t.Fatalf("first read: %d frames (want 50): %q %q", len(got), got[1], got[50])
	}
	if cur.Seq() != 50 {
		t.Fatalf("cursor at %d, want 50", cur.Seq())
	}
	// Caught up: the live tail yields nothing, with no error.
	if buf, err = cur.Read(nil, 1<<20); err != nil || len(buf) != 0 {
		t.Fatalf("idle read: %d bytes, err %v", len(buf), err)
	}
	// New appends become visible on the next read.
	for seq := uint64(51); seq <= 60; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if buf, err = cur.Read(nil, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got = decodeStreamFrames(t, buf); len(got) != 10 || got[60] != "rec-60" {
		t.Fatalf("tail read: %d frames (want 10)", len(got))
	}
}

func TestStreamCursorAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 200; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("want >= 3 segments for the test to bite, got %d", n)
	}
	// Drain in small bites so reads straddle segment boundaries, from a
	// mid-stream start.
	cur := l.StreamFrom(17)
	defer cur.Close()
	all := map[uint64]string{}
	for {
		buf, err := cur.Read(nil, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			break
		}
		for seq, p := range decodeStreamFrames(t, buf) {
			all[seq] = p
		}
	}
	if len(all) != 183 {
		t.Fatalf("streamed %d frames from 17, want 183", len(all))
	}
	if _, ok := all[17]; ok {
		t.Fatal("frame at the start position leaked (want seq > 17 only)")
	}
	if all[18] != "rec-18" || all[200] != "rec-200" {
		t.Fatalf("boundary frames wrong: %q %q", all[18], all[200])
	}
}

func TestStreamCursorCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 100; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d (err %v)", len(segs), err)
	}
	// Flip one byte inside the first (sealed) segment.
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(segs[0], raw, 0o666); err != nil {
		t.Fatal(err)
	}
	cur := l.StreamFrom(0)
	defer cur.Close()
	var streamErr error
	for i := 0; i < 300; i++ {
		buf, err := cur.Read(nil, 64)
		if err != nil {
			streamErr = err
			break
		}
		if len(buf) == 0 {
			break
		}
	}
	if streamErr == nil || !strings.Contains(streamErr.Error(), "corrupt frame mid-log") {
		t.Fatalf("streaming over a corrupt sealed segment: err = %v, want corrupt mid-log", streamErr)
	}
}

func TestStreamCursorTornTailIsQuiet(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOpts(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Scribble a partial frame onto the live tail, as a crash mid-write
	// would: the stream must surface the 10 good frames and stop
	// quietly, not error and not leak garbage.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cur := l.StreamFrom(0)
	defer cur.Close()
	buf, err := cur.Read(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeStreamFrames(t, buf); len(got) != 10 {
		t.Fatalf("torn tail: %d frames, want 10", len(got))
	}
	if buf, err = cur.Read(nil, 1<<20); err != nil || len(buf) != 0 {
		t.Fatalf("second read over torn tail: %d bytes, err %v", len(buf), err)
	}
}

func TestStreamCursorAfterTruncationStartsPastGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 100; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(50); err != nil {
		t.Fatal(err)
	}
	// A cursor positioned below the retained range gets whatever is
	// still on disk; the gap shows up as a seq jump the consumer's
	// contiguity check (ApplyRecord) turns into a resync.
	cur := l.StreamFrom(0)
	defer cur.Close()
	buf, err := cur.Read(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeStreamFrames(t, buf)
	if _, ok := got[100]; !ok {
		t.Fatal("retained tail record missing from stream")
	}
	min := uint64(1 << 62)
	for seq := range got {
		if seq < min {
			min = seq
		}
	}
	if min <= 1 {
		t.Fatalf("stream starts at %d; truncation should have removed the head", min)
	}
}
