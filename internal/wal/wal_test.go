package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"sampleunion/internal/relation"
)

func testOpts(policy SyncPolicy) Options {
	return Options{Policy: policy, Interval: time.Millisecond, SegmentBytes: 1 << 20}
}

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Replay(after, func(seq uint64, p []byte) error {
		out[seq] = string(p)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, testOpts(policy))
			if err != nil {
				t.Fatal(err)
			}
			for seq := uint64(1); seq <= 100; seq++ {
				if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
			got := collect(t, l, 40)
			if len(got) != 60 {
				t.Fatalf("replay after 40: %d records, want 60", len(got))
			}
			if got[41] != "rec-41" || got[100] != "rec-100" {
				t.Fatalf("replay content wrong: %q %q", got[41], got[100])
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen: everything committed must still be there.
			l2, err := Open(dir, testOpts(policy))
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if l2.LastSeq() != 100 {
				t.Fatalf("reopened LastSeq = %d, want 100", l2.LastSeq())
			}
			if got := collect(t, l2, 0); len(got) != 100 {
				t.Fatalf("reopened replay: %d records, want 100", len(got))
			}
		})
	}
}

func TestLogRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Policy: SyncNever, SegmentBytes: 256} // tiny: force rotation
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for seq := uint64(1); seq <= 50; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	before := l.Segments()
	if err := l.TruncateThrough(25); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("truncate removed nothing (%d -> %d)", before, l.Segments())
	}
	// Records past 25 all survive truncation.
	got := collect(t, l, 25)
	for seq := uint64(26); seq <= 50; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d lost by TruncateThrough(25)", seq)
		}
	}
	l.Close()

	// Reopen still replays the retained suffix.
	l2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 25); len(got) != 25 {
		t.Fatalf("reopened replay: %d records, want 25", len(got))
	}
}

// TestLogTornTail truncates the log file at every possible byte
// boundary inside the final record and asserts Open recovers exactly
// the intact prefix.
func TestLogTornTail(t *testing.T) {
	build := func(t *testing.T, dir string) string {
		l, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 5; seq++ {
			if err := l.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		if len(segs) != 1 {
			t.Fatalf("expected 1 segment, got %d", len(segs))
		}
		return segs[0]
	}

	probe := t.TempDir()
	seg := build(t, probe)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := headerSize + len("payload-5")
	for cut := 1; cut <= recLen; cut++ {
		dir := t.TempDir()
		seg := build(t, dir)
		if err := os.Truncate(seg, int64(len(full)-cut)); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if l.LastSeq() != 4 {
			t.Fatalf("cut %d: LastSeq = %d, want 4 (torn record 5 dropped)", cut, l.LastSeq())
		}
		got := collect(t, l, 0)
		if len(got) != 4 || got[4] != "payload-4" {
			t.Fatalf("cut %d: prefix not intact: %v", cut, got)
		}
		// The log must accept appends past the tear.
		if err := l.Append(5, []byte("rewritten-5")); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
}

// TestLogCorruptMidRecord flips a payload byte mid-log: Open must
// truncate from the corrupt record onward.
func TestLogCorruptMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	recLen := headerSize + len("payload-1")
	raw[2*recLen+headerSize] ^= 0xff // corrupt record 3's payload
	if err := os.WriteFile(segs[0], raw, 0o666); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (records 3-5 dropped)", l2.LastSeq())
	}
}

func TestLogNonMonotoneSeqRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(2, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("b")); err == nil {
		t.Fatal("duplicate seq accepted")
	}
}

func TestLogClosedSticky(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("b")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Commit(); err != ErrClosed {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []relation.Mutation{
		{Kind: relation.MutAppend, Row: 0, Vals: relation.Tuple{1, 2, 3}},
		{Kind: relation.MutAppend, Row: 41, Vals: relation.Tuple{-5, relation.Null}},
		{Kind: relation.MutDelete, Row: 7, Vals: relation.Tuple{9, 9}},
	}
	for i, m := range muts {
		enc := AppendMutation(nil, m)
		got, err := DecodeMutation(enc)
		if err != nil {
			t.Fatalf("mut %d: %v", i, err)
		}
		if got.Kind != m.Kind || got.Row != m.Row {
			t.Fatalf("mut %d: %+v != %+v", i, got, m)
		}
		if m.Kind == relation.MutAppend && !got.Vals.Equal(m.Vals) {
			t.Fatalf("mut %d: vals %v != %v", i, got.Vals, m.Vals)
		}
		if m.Kind == relation.MutDelete && got.Vals != nil {
			t.Fatalf("mut %d: delete decoded with vals %v", i, got.Vals)
		}
	}
	if _, err := DecodeMutation([]byte{0, 1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := DecodeMutation(AppendMutation(nil, relation.Mutation{Kind: 9})); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	sch := relation.NewSchema("a", "b")
	rel := relation.MustFromTuples("t", sch, []relation.Tuple{{1, 2}, {3, 4}, {5, 6}})
	rel.Delete(1)
	sd := rel.CaptureSnapshot()
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := WriteCheckpoint(path, sd); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != sd.Version || got.Rows != 3 || got.Live != 2 {
		t.Fatalf("shape: %+v", got)
	}
	fresh := relation.New("t", sch)
	if err := fresh.RestoreSnapshot(got); err != nil {
		t.Fatal(err)
	}
	if fresh.LiveLen() != 2 || fresh.Live(1) {
		t.Fatalf("restored live set wrong")
	}
	if fresh.Version() != rel.Version() {
		t.Fatalf("restored version %d, want %d", fresh.Version(), rel.Version())
	}
	want := rel.Tuples()
	gotT := fresh.Tuples()
	if len(want) != len(gotT) {
		t.Fatalf("tuples: %v vs %v", gotT, want)
	}
	for i := range want {
		if !want[i].Equal(gotT[i]) {
			t.Fatalf("tuple %d: %v != %v", i, gotT[i], want[i])
		}
	}

	// Wrong arity and flipped bytes are both rejected.
	if _, err := ReadCheckpoint(path, 3); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path, 2); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// buildRel replays a deterministic mutation script so every test run
// and every "what should the state be" rebuild agree exactly.
func buildRel(script []relation.Mutation) *relation.Relation {
	rel := relation.New("t", relation.NewSchema("a", "b"))
	rel.AppendRows([]relation.Tuple{{0, 0}, {1, 10}, {2, 20}}) // base
	for _, m := range script {
		if m.Kind == relation.MutAppend {
			rel.Append(m.Vals)
		} else {
			rel.Delete(m.Row)
		}
	}
	return rel
}

func relEqual(a, b *relation.Relation) bool {
	at, bt := a.Tuples(), b.Tuples()
	if len(at) != len(bt) || a.Len() != b.Len() || a.Version() != b.Version() {
		return false
	}
	for i := range at {
		if !at[i].Equal(bt[i]) {
			return false
		}
	}
	return true
}

// TestRelationLogRecovery drives a RelationLog through attached
// mutations with interleaved checkpoints, then recovers into a fresh
// base relation and expects byte-identical contents — including after
// tearing the WAL tail, where recovery must land on a consistent
// mutation-script prefix.
func TestRelationLogRecovery(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		var script []relation.Mutation
		rel := buildRel(nil)
		rl, err := OpenRelationLog(dir, rel, RelationLogOptions{
			Options:         Options{Policy: SyncNever, SegmentBytes: 512},
			CheckpointEvery: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		rl.Attach()
		nops := 5 + rnd.Intn(60)
		next := relation.Value(100)
		for i := 0; i < nops; i++ {
			if rnd.Intn(4) == 0 && rel.LiveLen() > 0 {
				// Delete a live row.
				for {
					row := rnd.Intn(rel.Len())
					if rel.Live(row) {
						rel.Delete(row)
						script = append(script, relation.Mutation{Kind: relation.MutDelete, Row: row})
						break
					}
				}
			} else {
				vals := relation.Tuple{next, next * 2}
				next++
				rel.Append(vals)
				script = append(script, relation.Mutation{Kind: relation.MutAppend, Vals: vals})
			}
			if err := rl.Commit(); err != nil {
				t.Fatal(err)
			}
			if rnd.Intn(10) == 0 {
				if err := rl.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}

		// Maybe tear the WAL tail (simulating a crash mid-write).
		torn := rnd.Intn(2) == 1
		if torn {
			segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
			if len(segs) > 0 {
				last := segs[len(segs)-1]
				st, _ := os.Stat(last)
				if st.Size() > 0 {
					cut := 1 + rnd.Int63n(st.Size())
					if err := os.Truncate(last, st.Size()-cut); err != nil {
						t.Fatal(err)
					}
				}
			}
		}

		// Recover into a fresh base.
		rec := buildRel(nil)
		rl2, err := OpenRelationLog(dir, rec, RelationLogOptions{Options: Options{Policy: SyncNever}})
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		// Recovery must land exactly k ops into the script for some k
		// (k = all of them when the log was not torn), and the
		// recovered state must equal a clean replay of that prefix.
		base := buildRel(nil).Version()
		k := int(rec.Version() - base)
		if k < 0 || k > len(script) {
			t.Fatalf("round %d: recovered %d ops, script has %d", round, k, len(script))
		}
		if !torn && k != len(script) {
			t.Fatalf("round %d: untorn recovery lost ops: %d < %d", round, k, len(script))
		}
		if want := buildRel(script[:k]); !relEqual(rec, want) {
			t.Fatalf("round %d: recovered state diverges at prefix %d", round, k)
		}
		rl2.Close()
	}
}

// TestRelationLogCheckpointFallback corrupts the newest checkpoint and
// expects recovery to fall back to the older one plus WAL replay.
func TestRelationLogCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	rel := buildRel(nil)
	rl, err := OpenRelationLog(dir, rel, RelationLogOptions{Options: Options{Policy: SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	rl.Attach()
	var script []relation.Mutation
	for i := 0; i < 10; i++ {
		vals := relation.Tuple{relation.Value(100 + i), relation.Value(200 + i)}
		rel.Append(vals)
		script = append(script, relation.Mutation{Kind: relation.MutAppend, Vals: vals})
		if err := rl.Commit(); err != nil {
			t.Fatal(err)
		}
		if i == 4 || i == 7 {
			if err := rl.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	rl.Close()

	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint", "*.ckpt"))
	if len(cks) != 2 {
		t.Fatalf("expected 2 retained checkpoints, got %d", len(cks))
	}
	// Corrupt the newest (lexically last: names are zero-padded hex).
	raw, _ := os.ReadFile(cks[1])
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(cks[1], raw, 0o666); err != nil {
		t.Fatal(err)
	}

	rec := buildRel(nil)
	rl2, err := OpenRelationLog(dir, rec, RelationLogOptions{Options: Options{Policy: SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer rl2.Close()
	if want := buildRel(script); !relEqual(rec, want) {
		t.Fatal("fallback recovery diverged")
	}
}

func TestMaybeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	rel := buildRel(nil)
	rl, err := OpenRelationLog(dir, rel, RelationLogOptions{
		Options:         Options{Policy: SyncNever},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	rl.Attach()
	for i := 0; i < 4; i++ {
		rel.Append(relation.Tuple{relation.Value(i), 0})
	}
	if did, err := rl.MaybeCheckpoint(); err != nil || did {
		t.Fatalf("checkpoint too early: did=%v err=%v", did, err)
	}
	rel.Append(relation.Tuple{99, 99})
	if did, err := rl.MaybeCheckpoint(); err != nil || !did {
		t.Fatalf("checkpoint not taken at threshold: did=%v err=%v", did, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestBatchRecordRoundTrip(t *testing.T) {
	cols := [][]relation.Value{
		{0, 1, 2, 3, 4, 5},
		{10, 11, 12, 13, 14, 15},
	}
	enc := AppendBatchRecord(nil, 2, 3, cols)
	start, rows, err := DecodeBatchRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if start != 2 || len(rows) != 3 {
		t.Fatalf("decoded start %d, %d rows; want 2, 3", start, len(rows))
	}
	for i, want := range []relation.Tuple{{2, 12}, {3, 13}, {4, 14}} {
		if !rows[i].Equal(want) {
			t.Fatalf("row %d = %v, want %v", i, rows[i], want)
		}
	}
	if _, _, err := DecodeBatchRecord(enc[:10]); err == nil {
		t.Fatal("short batch record accepted")
	}
	if _, _, err := DecodeBatchRecord(append(enc[:len(enc):len(enc)], 0)); err == nil {
		t.Fatal("oversized batch record accepted")
	}
}

// TestRelationLogBatchRecovery mixes bulk AppendRows batches (one WAL
// record each) with single appends and deletes, and expects recovery —
// clean and with a torn tail landing mid-batch-record — to restore an
// exact prefix at batch granularity: a batch record is either wholly
// replayed or wholly discarded.
func TestRelationLogBatchRecovery(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for round := 0; round < 12; round++ {
		dir := t.TempDir()
		rel := buildRel(nil)
		rl, err := OpenRelationLog(dir, rel, RelationLogOptions{
			Options: Options{Policy: SyncNever, SegmentBytes: 2048},
		})
		if err != nil {
			t.Fatal(err)
		}
		rl.Attach()
		// versions[k] = relation version after op k, so a recovered
		// version must be one of them (batch atomicity).
		versions := []uint64{rel.Version()}
		next := relation.Value(1000)
		for i := 0; i < 12; i++ {
			switch rnd.Intn(3) {
			case 0: // bulk batch: one WAL record covering many versions
				n := 2 + rnd.Intn(40)
				rows := make([]relation.Tuple, n)
				for j := range rows {
					rows[j] = relation.Tuple{next, next + 1}
					next += 2
				}
				rel.AppendRows(rows)
			case 1:
				rel.Append(relation.Tuple{next, next + 1})
				next += 2
			default:
				rel.Delete(rnd.Intn(rel.Len()))
			}
			if err := rl.Commit(); err != nil {
				t.Fatalf("round %d op %d: %v", round, i, err)
			}
			versions = append(versions, rel.Version())
			if rnd.Intn(5) == 0 {
				if err := rl.Checkpoint(); err != nil {
					t.Fatalf("round %d op %d: checkpoint: %v", round, i, err)
				}
			}
		}
		want := rel
		rl.Close()

		if round%2 == 1 { // tear the WAL tail at a random byte offset
			segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(segs)
			last := segs[len(segs)-1]
			fi, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() > 0 {
				if err := os.Truncate(last, int64(rnd.Intn(int(fi.Size())))); err != nil {
					t.Fatal(err)
				}
			}
		}

		rel2 := buildRel(nil)
		rl2, err := OpenRelationLog(dir, rel2, RelationLogOptions{
			Options: Options{Policy: SyncNever, SegmentBytes: 2048},
		})
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		rl2.Close()
		k := -1
		for i, v := range versions {
			if rel2.Version() == v {
				k = i
				break
			}
		}
		if k < 0 {
			t.Fatalf("round %d: recovered version %d is not an op boundary %v (batch split?)", round, rel2.Version(), versions)
		}
		if round%2 == 0 {
			if rel2.Version() != want.Version() {
				t.Fatalf("round %d: untorn recovery at version %d, want %d", round, rel2.Version(), want.Version())
			}
			if !relEqual(rel2, want) {
				t.Fatalf("round %d: untorn recovery diverged", round)
			}
		} else if rel2.Version() == want.Version() && !relEqual(rel2, want) {
			t.Fatalf("round %d: full torn recovery diverged", round)
		}
	}
}

func TestWriteBufEdges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := newWriteBuf(f)

	// A write larger than the whole buffer goes straight through.
	big := bytes.Repeat([]byte{0xAB}, writeBufBytes+11)
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	// A write spanning the buffer boundary flushes mid-copy.
	half := bytes.Repeat([]byte{0xCD}, writeBufBytes/2+7)
	for i := 0; i < 3; i++ {
		if _, err := w.Write(half); err != nil {
			t.Fatal(err)
		}
	}
	// A reservation that doesn't fit the tail flushes first; one that
	// exceeds the buffer is refused (nil) without consuming anything.
	if p, err := w.Reserve(writeBufBytes + 1); err != nil || p != nil {
		t.Fatalf("oversized Reserve = (%v, %v), want (nil, nil)", p, err)
	}
	p, err := w.Reserve(writeBufBytes)
	if err != nil || len(p) != writeBufBytes {
		t.Fatalf("full-buffer Reserve after partial fill: len %d err %v", len(p), err)
	}
	for i := range p {
		p[i] = 0xEF
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := len(big) + 3*len(half) + writeBufBytes
	if len(got) != want {
		t.Fatalf("file has %d bytes, want %d", len(got), want)
	}
	for i, b := range got[:len(big)] {
		if b != 0xAB {
			t.Fatalf("write-through byte %d = %x", i, b)
		}
	}
	for i, b := range got[len(got)-writeBufBytes:] {
		if b != 0xEF {
			t.Fatalf("reserved byte %d = %x", i, b)
		}
	}
}

func TestAppendReserveFallbackAndSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// In-place record, then one bigger than the write buffer (takes the
	// scratch fallback), then Sync regardless of policy.
	if err := l.AppendReserve(1, 4, func(dst []byte) { copy(dst, "tiny") }); err != nil {
		t.Fatal(err)
	}
	big := writeBufBytes + 99
	if err := l.AppendReserve(2, big, func(dst []byte) {
		for i := range dst {
			dst[i] = byte(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := map[uint64]int{}
	if err := l2.Replay(0, func(seq uint64, p []byte) error {
		got[seq] = len(p)
		if seq == 1 && string(p) != "tiny" {
			return fmt.Errorf("seq 1 payload %q", p)
		}
		if seq == 2 {
			for i, b := range p {
				if b != byte(i) {
					return fmt.Errorf("seq 2 byte %d = %x", i, b)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[1] != 4 || got[2] != big {
		t.Fatalf("replayed sizes %v, want {1:4, 2:%d}", got, big)
	}
}

func TestIntervalFlusherWritesWithoutCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0x42}, 100)
	if err := l.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil { // no syscall under SyncInterval
		t.Fatal(err)
	}
	// The background flusher must put the record on disk without any
	// further call: poll the segment file's size.
	seg := filepath.Join(dir, segName(1))
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := os.Stat(seg)
		if err == nil && st.Size() >= int64(headerSize+len(payload)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never wrote the record (segment at %v)", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRelationLogSinkErrorSurfacedByCommit(t *testing.T) {
	dir := t.TempDir()
	rel := relation.New("t", relation.NewSchema("a", "b"))
	rl, err := OpenRelationLog(dir, rel, RelationLogOptions{Options: Options{Policy: SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Recovered() != 0 {
		t.Fatalf("fresh log recovered %d", rl.Recovered())
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tees racing the close park the failure for the next Commit: both
	// the single-mutation and the batch sink paths.
	rl.LogMutation(1, relation.Mutation{Kind: relation.MutAppend, Row: 0, Vals: relation.Tuple{1, 2}})
	if err := rl.Commit(); err == nil {
		t.Fatal("Commit after a failed LogMutation tee succeeded")
	}
	rl2, err := OpenRelationLog(t.TempDir(), rel, RelationLogOptions{Options: Options{Policy: SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	rel.AppendRows([]relation.Tuple{{1, 2}, {3, 4}})
	rl2.LogAppendBatch(rel.Version(), 0, 2, [][]relation.Value{{1, 3}, {2, 4}}, "")
	if err := rl2.Commit(); err == nil {
		t.Fatal("Commit after a failed LogAppendBatch tee succeeded")
	}
}
