package histest

import (
	"fmt"
	"math"

	"sampleunion/internal/relation"
)

// Mode selects how Theorem 4's degree factors are instantiated.
type Mode int

const (
	// BoundMode uses maximum degrees: the result is a true upper bound
	// on the overlap (Theorem 4 as stated).
	BoundMode Mode = iota
	// AvgMode replaces maximum degrees with average degrees (§5.1's
	// refinement when full histograms are available): an estimate, not
	// a bound, and less biased under skew.
	AvgMode
)

// Bound evaluates the Theorem 4 recurrence for the overlap of the joins
// described by profiles, all of which must have the same chain length
// and join-attribute sequence (profile construction guarantees this for
// profiles built over one template):
//
//	K(1)  = Σ_v min_j d_{A1}(v, R_{j,1}) · d_{A1}(v, R_{j,2})
//	K(i)  = K(i-1) · min_j M_{j,i}          (M = 1 on fake joins)
//	|O_Δ| ≤ K(m-1)
func Bound(profiles []*Profile, mode Mode) (float64, error) {
	if len(profiles) == 0 {
		return 0, fmt.Errorf("histest: no profiles")
	}
	m := len(profiles[0].Entries)
	for _, p := range profiles[1:] {
		if len(p.Entries) != m {
			return 0, fmt.Errorf("histest: profile lengths differ (%d vs %d)", len(p.Entries), m)
		}
		for i := 1; i < m; i++ {
			if p.Entries[i].JoinAttr != profiles[0].Entries[i].JoinAttr {
				return 0, fmt.Errorf("histest: join attribute %d differs (%q vs %q)",
					i, p.Entries[i].JoinAttr, profiles[0].Entries[i].JoinAttr)
			}
		}
	}
	if m == 1 {
		// A single-relation chain: the trivial bound min_j |J_j|.
		min := math.Inf(1)
		for _, p := range profiles {
			if s := float64(p.Entries[0].Stats.Size) * p.Entries[0].PathFactor; s < min {
				min = s
			}
		}
		return min, nil
	}

	k, err := firstHop(profiles)
	if err != nil {
		return 0, err
	}
	for i := 2; i < m; i++ {
		factor, err := hopFactor(profiles, i, mode)
		if err != nil {
			return 0, err
		}
		k *= factor
		if k == 0 {
			return 0, nil
		}
	}
	return k, nil
}

// firstHop computes K(1): the per-value histogram product, minimized
// across joins, summed over the values common to every join's first two
// chain elements.
func firstHop(profiles []*Profile) (float64, error) {
	attr := profiles[0].Entries[1].JoinAttr
	// Iterate the values of the smallest histogram to keep the scan
	// proportional to the tightest domain.
	type hist struct{ h0, h1 histogramView }
	hs := make([]hist, len(profiles))
	smallest, smallestSize := -1, math.MaxInt
	for i, p := range profiles {
		h0, err := histView(p.Entries[0], attr)
		if err != nil {
			return 0, fmt.Errorf("histest: join %s: %w", p.Join.Name(), err)
		}
		h1, err := histView(p.Entries[1], attr)
		if err != nil {
			return 0, fmt.Errorf("histest: join %s: %w", p.Join.Name(), err)
		}
		hs[i] = hist{h0, h1}
		if n := h0.distinct(); n < smallestSize {
			smallest, smallestSize = i, n
		}
	}
	sum := 0.0
	for _, v := range hs[smallest].h0.values() {
		min := math.Inf(1)
		for i := range hs {
			term := hs[i].h0.degree(v) * hs[i].h1.degree(v)
			if term < min {
				min = term
			}
			if min == 0 {
				break
			}
		}
		sum += min
	}
	return sum, nil
}

// hopFactor computes min_j M_{j,i} for chain position i >= 2.
func hopFactor(profiles []*Profile, i int, mode Mode) (float64, error) {
	min := math.Inf(1)
	for _, p := range profiles {
		e := p.Entries[i]
		var f float64
		if e.Fake {
			f = 1 // fake join: the split rejoins one original relation
		} else {
			as, err := e.Stats.Attr(e.JoinAttr)
			if err != nil {
				return 0, fmt.Errorf("histest: join %s entry %d: %w", p.Join.Name(), i, err)
			}
			if mode == AvgMode {
				f = as.Avg()
			} else {
				f = float64(as.Max)
			}
			f *= e.PathFactor
		}
		if f < min {
			min = f
		}
	}
	return min, nil
}

// histogramView exposes an entry's degree function for one attribute,
// scaled by the entry's path factor.
type histogramView struct {
	entry Entry
	attr  string
}

func histView(e Entry, attr string) (histogramView, error) {
	if _, err := e.Stats.Attr(attr); err != nil {
		return histogramView{}, err
	}
	return histogramView{entry: e, attr: attr}, nil
}

func (h histogramView) degree(v relation.Value) float64 {
	as := h.entry.Stats.Attrs[h.attr]
	return float64(as.Freq[v]) * h.entry.PathFactor
}

func (h histogramView) distinct() int {
	return h.entry.Stats.Attrs[h.attr].Distinct()
}

func (h histogramView) values() []relation.Value {
	return h.entry.Stats.Attrs[h.attr].Values()
}
