package histest

import (
	"math"
	"testing"
	"testing/quick"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
)

// alignedChains builds two 3-relation chain joins with identical
// schemas and controlled data overlap.
func alignedChains(t *testing.T) []*join.Join {
	t.Helper()
	sa := relation.NewSchema("K", "X")
	sb := relation.NewSchema("K", "L")
	sc := relation.NewSchema("L", "Y")
	a1 := relation.MustFromTuples("A1", sa, []relation.Tuple{{1, 10}, {2, 20}, {3, 30}})
	b1 := relation.MustFromTuples("B1", sb, []relation.Tuple{{1, 5}, {2, 5}, {2, 6}, {3, 7}})
	c1 := relation.MustFromTuples("C1", sc, []relation.Tuple{{5, 100}, {6, 101}, {7, 102}})
	a2 := relation.MustFromTuples("A2", sa, []relation.Tuple{{1, 10}, {2, 20}, {4, 40}})
	b2 := relation.MustFromTuples("B2", sb, []relation.Tuple{{1, 5}, {2, 6}, {4, 8}})
	c2 := relation.MustFromTuples("C2", sc, []relation.Tuple{{5, 100}, {6, 101}, {8, 103}})
	j1, err := join.NewChain("J1", []*relation.Relation{a1, b1, c1}, []string{"K", "L"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := join.NewChain("J2", []*relation.Relation{a2, b2, c2}, []string{"K", "L"})
	if err != nil {
		t.Fatal(err)
	}
	return []*join.Join{j1, j2}
}

func TestAlignedChainsDetection(t *testing.T) {
	joins := alignedChains(t)
	if !AlignedChains(joins) {
		t.Fatal("aligned chains not detected")
	}
	if AlignedChains(nil) {
		t.Error("empty slice reported aligned")
	}
	// Different length breaks alignment.
	short, err := join.NewChain("S", []*relation.Relation{joins[0].Nodes()[0].Rel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if AlignedChains([]*join.Join{joins[0], short}) {
		t.Error("length mismatch reported aligned")
	}
}

func TestProfileFromChain(t *testing.T) {
	joins := alignedChains(t)
	p, err := ProfileFromChain(joins[0])
	if err != nil {
		t.Fatalf("ProfileFromChain: %v", err)
	}
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(p.Entries))
	}
	if p.Entries[0].JoinAttr != "" || p.Entries[1].JoinAttr != "K" || p.Entries[2].JoinAttr != "L" {
		t.Errorf("join attrs wrong: %+v", p.Entries)
	}
	for _, e := range p.Entries {
		if e.Fake || e.PathFactor != 1 {
			t.Errorf("direct profile entry has Fake/PathFactor set: %+v", e)
		}
	}
}

func TestBoundDominatesExactOverlap(t *testing.T) {
	joins := alignedChains(t)
	exact, _, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := ProfileFromChain(joins[0])
	p2, _ := ProfileFromChain(joins[1])
	bound, err := Bound([]*Profile{p1, p2}, BoundMode)
	if err != nil {
		t.Fatalf("Bound: %v", err)
	}
	if truth := exact.Get(0b11); bound < truth {
		t.Fatalf("Theorem 4 bound %.1f below exact overlap %.1f", bound, truth)
	}
}

// TestBoundUpperBoundProperty drives the Theorem 4 bound with random
// two-relation chains and checks it never undercuts the exact overlap.
func TestBoundUpperBoundProperty(t *testing.T) {
	sa := relation.NewSchema("K", "X")
	sb := relation.NewSchema("K", "Y")
	build := func(keysA, keysB []uint8, name string) (*join.Join, bool) {
		ra := relation.New(name+"_a", sa)
		seen := map[[2]relation.Value]bool{}
		for i, k := range keysA {
			tu := relation.Tuple{relation.Value(k % 8), relation.Value(i % 4)}
			if !seen[[2]relation.Value{tu[0], tu[1]}] {
				seen[[2]relation.Value{tu[0], tu[1]}] = true
				ra.Append(tu)
			}
		}
		rb := relation.New(name+"_b", sb)
		seenB := map[[2]relation.Value]bool{}
		for i, k := range keysB {
			tu := relation.Tuple{relation.Value(k % 8), relation.Value(i % 4)}
			if !seenB[[2]relation.Value{tu[0], tu[1]}] {
				seenB[[2]relation.Value{tu[0], tu[1]}] = true
				rb.Append(tu)
			}
		}
		if ra.Len() == 0 || rb.Len() == 0 {
			return nil, false
		}
		j, err := join.NewChain(name, []*relation.Relation{ra, rb}, []string{"K"})
		if err != nil {
			return nil, false
		}
		return j, true
	}
	f := func(a1, b1, a2, b2 []uint8) bool {
		j1, ok1 := build(a1, b1, "J1")
		j2, ok2 := build(a2, b2, "J2")
		if !ok1 || !ok2 {
			return true // skip degenerate draws
		}
		joins := []*join.Join{j1, j2}
		exact, _, err := overlap.Exact(joins)
		if err != nil {
			return false
		}
		p1, err1 := ProfileFromChain(j1)
		p2, err2 := ProfileFromChain(j2)
		if err1 != nil || err2 != nil {
			return false
		}
		bound, err := Bound([]*Profile{p1, p2}, BoundMode)
		if err != nil {
			return false
		}
		return bound >= exact.Get(0b11)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAvgModeBelowBoundMode(t *testing.T) {
	joins := alignedChains(t)
	p1, _ := ProfileFromChain(joins[0])
	p2, _ := ProfileFromChain(joins[1])
	hi, err := Bound([]*Profile{p1, p2}, BoundMode)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Bound([]*Profile{p1, p2}, AvgMode)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi+1e-9 {
		t.Fatalf("avg-degree estimate %.2f above max-degree bound %.2f", lo, hi)
	}
}

func TestBoundValidation(t *testing.T) {
	joins := alignedChains(t)
	p1, _ := ProfileFromChain(joins[0])
	if _, err := Bound(nil, BoundMode); err == nil {
		t.Error("empty profile list accepted")
	}
	short, _ := join.NewChain("S", []*relation.Relation{joins[0].Nodes()[0].Rel}, nil)
	ps, _ := ProfileFromChain(short)
	if _, err := Bound([]*Profile{p1, ps}, BoundMode); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSingleRelationBound(t *testing.T) {
	s := relation.NewSchema("A", "B")
	r1 := relation.MustFromTuples("R1", s, []relation.Tuple{{1, 1}, {2, 2}, {3, 3}})
	r2 := relation.MustFromTuples("R2", s, []relation.Tuple{{2, 2}, {3, 3}})
	j1, _ := join.NewChain("J1", []*relation.Relation{r1}, nil)
	j2, _ := join.NewChain("J2", []*relation.Relation{r2}, nil)
	p1, _ := ProfileFromChain(j1)
	p2, _ := ProfileFromChain(j2)
	b, err := Bound([]*Profile{p1, p2}, BoundMode)
	if err != nil {
		t.Fatal(err)
	}
	if b != 2 {
		t.Fatalf("single-relation bound = %f, want min size 2", b)
	}
}

// fig3aJoin reproduces the acyclic join of Fig 3a: ABC ⋈ CD ⋈ {DE, CF}.
func fig3aJoin(t *testing.T) *join.Join {
	t.Helper()
	abc := relation.MustFromTuples("ABC", relation.NewSchema("A", "B", "C"), []relation.Tuple{
		{1, 2, 3}, {4, 5, 6},
	})
	cd := relation.MustFromTuples("CD", relation.NewSchema("C", "D"), []relation.Tuple{
		{3, 7}, {6, 8},
	})
	de := relation.MustFromTuples("DE", relation.NewSchema("D", "E"), []relation.Tuple{
		{7, 9}, {8, 10},
	})
	cf := relation.MustFromTuples("CF", relation.NewSchema("C", "F"), []relation.Tuple{
		{3, 11}, {6, 12},
	})
	j, err := join.NewTree("fig3a", []*relation.Relation{abc, cd, de, cf},
		[]int{-1, 0, 1, 1}, []string{"", "C", "D", "C"})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestTemplateKeepsColocatedAttrsAdjacent(t *testing.T) {
	j := fig3aJoin(t)
	pre := Precompute(j)
	attrs, err := CanonicalAttrs([]*Precomputed{pre})
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := Template([]*Precomputed{pre}, attrs, 0)
	if err != nil {
		t.Fatalf("Template: %v", err)
	}
	if len(tmpl) != 6 {
		t.Fatalf("template = %v", tmpl)
	}
	// A and B are only in ABC: they must be adjacent in a minimum-score
	// template (their score is 0 while any pair through another relation
	// scores >= 1).
	posOf := map[string]int{}
	for i, a := range tmpl {
		posOf[a] = i
	}
	if d := posOf["A"] - posOf["B"]; d != 1 && d != -1 {
		t.Errorf("A and B not adjacent in template %v", tmpl)
	}
}

func TestDistances(t *testing.T) {
	j := fig3aJoin(t)
	pre := Precompute(j)
	cases := []struct {
		a, b string
		want int
	}{
		{"A", "B", 0}, {"A", "C", 0}, {"C", "D", 0},
		{"A", "D", 1}, {"A", "E", 2}, {"E", "F", 2}, {"B", "F", 2},
	}
	for _, c := range cases {
		if got := pre.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if pre.Dist("A", "ZZZ") != -1 {
		t.Error("missing attribute distance != -1")
	}
}

func TestProfileFromTemplateFakeJoins(t *testing.T) {
	ab := relation.MustFromTuples("AB", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}})
	bcd := relation.MustFromTuples("BCD", relation.NewSchema("B", "C", "D"), []relation.Tuple{{2, 3, 4}})
	j, err := join.NewChain("J", []*relation.Relation{ab, bcd}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileFromTemplate(j, []string{"A", "B", "C", "D"}, nil)
	if err != nil {
		t.Fatalf("ProfileFromTemplate: %v", err)
	}
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	if p.Entries[0].Fake || p.Entries[1].Fake {
		t.Error("pairs from different relations marked fake")
	}
	if !p.Entries[2].Fake {
		t.Error("(C,D) pair from BCD after (B,C) from BCD not marked fake")
	}
}

func TestProfileFromTemplateSynthesized(t *testing.T) {
	// B = 2 has degree 2 in AB, so the C->A path factor exceeds 1.
	ab := relation.MustFromTuples("AB", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}, {1, 3}, {7, 2}})
	bc := relation.MustFromTuples("BC", relation.NewSchema("B", "C"), []relation.Tuple{{2, 5}, {3, 5}, {3, 6}})
	j, err := join.NewChain("J", []*relation.Relation{ab, bc}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	// Template (A, C, B): pair (A, C) has no single holder.
	p, err := ProfileFromTemplate(j, []string{"A", "C", "B"}, nil)
	if err != nil {
		t.Fatalf("ProfileFromTemplate: %v", err)
	}
	if p.Entries[0].PathFactor <= 1 {
		t.Errorf("synthesized pair path factor = %f, want > 1", p.Entries[0].PathFactor)
	}
}

func TestEstimatorAlignedChains(t *testing.T) {
	joins := alignedChains(t)
	est, err := New(joins, Options{Sizes: SizeEW})
	if err != nil {
		t.Fatal(err)
	}
	if est.TemplateUsed() != nil {
		t.Error("aligned chains took the template path")
	}
	tab, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, exactUnion, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton sizes are exact under SizeEW.
	for i, j := range joins {
		if tab.JoinSize(i) != float64(j.Count()) {
			t.Errorf("size[%d] = %f, want %d", i, tab.JoinSize(i), j.Count())
		}
	}
	// Overlap bound dominates the truth; union estimate within bounds.
	if tab.Get(0b11) < exact.Get(0b11) {
		t.Errorf("overlap bound %f below exact %f", tab.Get(0b11), exact.Get(0b11))
	}
	u := tab.UnionSize()
	if u < float64(exactUnion)-1e-9 {
		// An overlap over-estimate shrinks the union estimate; with
		// exact sizes the union may undershoot but never below the
		// largest join.
		if u < tab.JoinSize(0) && u < tab.JoinSize(1) {
			t.Errorf("union estimate %f below both join sizes", u)
		}
	}
}

func TestEstimatorTemplatePath(t *testing.T) {
	// J1: S(K,A) ⋈ T(K,B); J2: denormalized U(K,A,B). Schemas differ, so
	// the estimator must split over a template (the UQ3 situation).
	s := relation.MustFromTuples("S", relation.NewSchema("K", "A"), []relation.Tuple{
		{1, 10}, {2, 20}, {3, 30},
	})
	tt := relation.MustFromTuples("T", relation.NewSchema("K", "B"), []relation.Tuple{
		{1, 100}, {2, 200}, {3, 300},
	})
	u := relation.MustFromTuples("U", relation.NewSchema("K", "A", "B"), []relation.Tuple{
		{1, 10, 100}, {2, 20, 200}, {4, 40, 400},
	})
	j1, err := join.NewChain("J1", []*relation.Relation{s, tt}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := join.NewChain("J2", []*relation.Relation{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	joins := []*join.Join{j1, j2}
	est, err := New(joins, Options{Sizes: SizeEW})
	if err != nil {
		t.Fatal(err)
	}
	if est.TemplateUsed() == nil {
		t.Error("template path not taken for mismatched schemas")
	}
	tab, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get(0b11) < exact.Get(0b11)-1e-9 {
		t.Errorf("split-path overlap bound %f below exact %f", tab.Get(0b11), exact.Get(0b11))
	}
}

func TestEstimatorEOSizesAreBounds(t *testing.T) {
	joins := alignedChains(t)
	est, err := New(joins, Options{Sizes: SizeEO})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := est.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range joins {
		if tab.JoinSize(i) < float64(j.Count()) {
			t.Errorf("EO size bound %f below true size %d", tab.JoinSize(i), j.Count())
		}
	}
}

func TestEstimatorForceSplit(t *testing.T) {
	joins := alignedChains(t)
	est, err := New(joins, Options{Sizes: SizeEW, ForceSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.TemplateUsed() == nil {
		t.Error("ForceSplit did not take the template path")
	}
	if _, err := est.Estimate(); err != nil {
		t.Fatalf("Estimate after ForceSplit: %v", err)
	}
}

func TestGreedyPathCoversAllAttrs(t *testing.T) {
	score := [][]float64{
		{0, 1, 5, 2},
		{1, 0, 1, 9},
		{5, 1, 0, 1},
		{2, 9, 1, 0},
	}
	p := greedyPath(score)
	if len(p) != 4 {
		t.Fatalf("greedy path = %v", p)
	}
	seen := map[int]bool{}
	for _, v := range p {
		if seen[v] {
			t.Fatalf("greedy path revisits %d", v)
		}
		seen[v] = true
	}
}

func TestHeldKarpOptimal(t *testing.T) {
	// Path graph 0-1-2-3 with cheap consecutive edges: optimum is the
	// identity path with cost 3.
	score := [][]float64{
		{0, 1, 10, 10},
		{1, 0, 1, 10},
		{10, 1, 0, 1},
		{10, 10, 1, 0},
	}
	p := heldKarpPath(score)
	cost := 0.0
	for i := 0; i+1 < len(p); i++ {
		cost += score[p[i]][p[i+1]]
	}
	if math.Abs(cost-3) > 1e-9 {
		t.Fatalf("Held-Karp cost = %f via %v, want 3", cost, p)
	}
}
