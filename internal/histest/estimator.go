package histest

import (
	"fmt"
	"math/bits"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
)

// SizeMode selects the join-size instantiation plugged into the
// framework (§9's EW and EO baselines).
type SizeMode int

const (
	// SizeEO uses the extended Olken upper bound — histogram-only, the
	// default decentralized instantiation.
	SizeEO SizeMode = iota
	// SizeEW uses the exact join size from exact weights — the ground
	// truth instantiation the paper uses as its best case.
	SizeEW
)

func (m SizeMode) String() string {
	if m == SizeEW {
		return "EW"
	}
	return "EO"
}

// Options configure the histogram-based estimator.
type Options struct {
	// Sizes selects how singleton join sizes are produced.
	Sizes SizeMode
	// Degrees selects Theorem 4's factor instantiation (bound vs avg).
	Degrees Mode
	// ForceSplit applies the splitting method even when the joins are
	// already aligned equi-length chains (for ablation experiments).
	ForceSplit bool
	// ZeroScore is the §8.1.2 alternating-score hyper-parameter for
	// template search (0 = paper's base scoring).
	ZeroScore float64
}

// Estimator produces an overlap.Table for a union of joins using column
// statistics only.
type Estimator struct {
	joins    []*join.Join
	opts     Options
	profiles []*Profile
	template []string // nil when the aligned-chain fast path applied
}

// New prepares an estimator: it either takes the §5.1 fast path for
// aligned equi-length chains or finds a shared template and splits every
// join over it (§5.2, §8.1).
func New(joins []*join.Join, opts Options) (*Estimator, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("histest: no joins")
	}
	e := &Estimator{joins: joins, opts: opts}
	if !opts.ForceSplit && AlignedChains(joins) {
		for _, j := range joins {
			p, err := ProfileFromChain(j)
			if err != nil {
				return nil, err
			}
			e.profiles = append(e.profiles, p)
		}
		return e, nil
	}
	pres := make([]*Precomputed, len(joins))
	for i, j := range joins {
		pres[i] = Precompute(j)
	}
	attrs, err := CanonicalAttrs(pres)
	if err != nil {
		return nil, err
	}
	tmpl, err := Template(pres, attrs, opts.ZeroScore)
	if err != nil {
		return nil, err
	}
	e.template = tmpl
	for i, j := range joins {
		p, err := ProfileFromTemplate(j, tmpl, pres[i])
		if err != nil {
			return nil, err
		}
		e.profiles = append(e.profiles, p)
	}
	return e, nil
}

// TemplateUsed returns the template chosen by New, or nil when the
// aligned-chain fast path applied.
func (e *Estimator) TemplateUsed() []string { return e.template }

// Estimate fills the overlap table: singleton entries with the selected
// join-size instantiation, every larger subset with the Theorem 4
// bound, normalized to monotone.
func (e *Estimator) Estimate() (*overlap.Table, error) {
	t, err := overlap.NewTable(len(e.joins))
	if err != nil {
		return nil, err
	}
	for i, j := range e.joins {
		switch e.opts.Sizes {
		case SizeEW:
			t.Set(1<<uint(i), float64(j.Count()))
		default:
			t.Set(1<<uint(i), j.OlkenBound())
		}
	}
	full := uint(1)<<uint(len(e.joins)) - 1
	sub := make([]*Profile, 0, len(e.joins))
	for mask := uint(1); mask <= full; mask++ {
		if bits.OnesCount(mask) < 2 {
			continue
		}
		sub = sub[:0]
		for i := range e.joins {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, e.profiles[i])
			}
		}
		b, err := Bound(sub, e.opts.Degrees)
		if err != nil {
			return nil, err
		}
		t.Set(mask, b)
	}
	t.Normalize()
	return t, nil
}
