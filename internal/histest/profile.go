// Package histest implements the histogram-based instantiation of the
// union-sampling framework (§5, §8): overlap upper bounds for chain,
// acyclic, and cyclic joins computed from column statistics only — the
// decentralized setting where full data access is infeasible (data
// markets, data in the wild).
//
// The pipeline is: convert every join in the union to a common chain
// "profile" — either directly (equi-length chains, §5.1) or through the
// splitting method over a shared template (§5.2, §8.1) — then bound the
// overlap of any subset of joins with the dynamic-programming recurrence
// of Theorem 4, and feed the bounds into the k-overlap/union-size
// machinery of internal/overlap.
package histest

import (
	"fmt"

	"sampleunion/internal/join"
	"sampleunion/internal/stats"
)

// Entry is one element of a chain profile: the column statistics of the
// chain relation (or split pair source) plus how it joins the previous
// element.
type Entry struct {
	Stats *stats.RelStats
	// JoinAttr joins this entry to the previous one; "" for the first.
	JoinAttr string
	// Fake marks a fake join (§5.2): this entry and the previous one
	// were split from the same original relation, so the join merely
	// reconstructs it and contributes degree factor 1 in Theorem 4.
	Fake bool
	// PathFactor inflates degree statistics for synthesized entries:
	// when no single relation holds both template attributes, the pair
	// is derived by pre-joining along the join-tree path (§8.1.2) and
	// its degrees are bounded by the product of max degrees along that
	// path. PathFactor is 1 for ordinary entries.
	PathFactor float64
}

// Profile is the chain view of one join used by the estimator: entries
// in chain order. All profiles in one union share length and join
// attributes, which profile construction guarantees.
type Profile struct {
	Join    *join.Join
	Entries []Entry
}

// ProfileFromChain builds the direct profile of a chain join: its
// relations in path order with their statistics (§5.1, no splitting).
func ProfileFromChain(j *join.Join) (*Profile, error) {
	if !j.IsChain() {
		return nil, fmt.Errorf("histest: join %s is not a chain", j.Name())
	}
	nodes := j.Nodes()
	p := &Profile{Join: j, Entries: make([]Entry, len(nodes))}
	for i := range nodes {
		if i > 0 && nodes[i].Parent != i-1 {
			return nil, fmt.Errorf("histest: join %s chain nodes out of path order", j.Name())
		}
		p.Entries[i] = Entry{
			Stats:      stats.Build(nodes[i].Rel),
			JoinAttr:   nodes[i].Attr,
			PathFactor: 1,
		}
	}
	return p, nil
}

// AlignedChains reports whether the joins form the base case of §5.1:
// all chains of the same length with the same join-attribute sequence
// and position-wise identical relation schemas.
func AlignedChains(joins []*join.Join) bool {
	if len(joins) == 0 {
		return false
	}
	first := joins[0]
	if !first.IsChain() {
		return false
	}
	n0 := first.Nodes()
	for _, j := range joins[1:] {
		if !j.IsChain() {
			return false
		}
		nj := j.Nodes()
		if len(nj) != len(n0) {
			return false
		}
		for i := range nj {
			if nj[i].Attr != n0[i].Attr {
				return false
			}
			if !nj[i].Rel.Schema().Equal(n0[i].Rel.Schema()) {
				return false
			}
		}
	}
	return true
}

// ProfileFromTemplate builds the split profile of a join over a shared
// template (an ordering of the output attributes): entry i describes
// the two-attribute sub-relation (template[i], template[i+1]). When a
// single relation holds both attributes the entry carries that
// relation's statistics; otherwise the entry is synthesized by
// combining degrees along the join-tree path between holders (§8.1.2).
func ProfileFromTemplate(j *join.Join, template []string, pre *Precomputed) (*Profile, error) {
	if len(template) < 2 {
		return nil, fmt.Errorf("histest: template needs at least 2 attributes")
	}
	if pre == nil {
		pre = Precompute(j)
	}
	p := &Profile{Join: j, Entries: make([]Entry, len(template)-1)}
	prevSrc := -1
	for i := 0; i+1 < len(template); i++ {
		a, b := template[i], template[i+1]
		src := pre.holderOfBoth(a, b)
		e := Entry{JoinAttr: a, PathFactor: 1}
		if i == 0 {
			e.JoinAttr = ""
		}
		if src >= 0 {
			e.Stats = pre.relStats[src]
			e.Fake = i > 0 && src == prevSrc
			prevSrc = src
		} else {
			// Synthesized pair (§8.1.2): anchor on a holder of the
			// attribute Theorem 4 will query on this entry — the right
			// attribute for the chain head (K(1) uses A_1 = template[1]),
			// the left attribute everywhere else — and inflate degree
			// statistics by the max-degree product along the join path
			// to the other attribute's holder.
			qa, other := a, b
			if i == 0 {
				qa, other = b, a
			}
			anchor, factor, err := pre.pathFactor(qa, other)
			if err != nil {
				return nil, fmt.Errorf("histest: join %s, pair (%s,%s): %w", j.Name(), a, b, err)
			}
			e.Stats = pre.relStats[anchor]
			e.PathFactor = factor
			prevSrc = -1
		}
		p.Entries[i] = e
	}
	return p, nil
}

// Precomputed caches per-join structures shared by template search and
// profile construction: relation statistics, attribute holders, and
// join-tree adjacency (the residual of a cyclic join counts as one
// extra node linked to the skeleton relations it shares attributes
// with, per §8.2's "treat S_R as a single relation").
type Precomputed struct {
	j        *join.Join
	rels     []*joinRelView
	relStats []*stats.RelStats
	holders  map[string][]int // attribute -> relation indexes holding it
	adj      [][]adjEdge      // join-graph adjacency between relations
}

type joinRelView struct {
	schemaAttrs []string
}

type adjEdge struct {
	to   int
	attr string
}

// Precompute builds the cached view of j.
func Precompute(j *join.Join) *Precomputed {
	nodes := j.Nodes()
	total := len(nodes)
	res := j.ResidualPart()
	if res != nil {
		total++
	}
	p := &Precomputed{
		j:        j,
		rels:     make([]*joinRelView, total),
		relStats: make([]*stats.RelStats, total),
		holders:  make(map[string][]int),
		adj:      make([][]adjEdge, total),
	}
	for i := range nodes {
		rel := nodes[i].Rel
		p.rels[i] = &joinRelView{schemaAttrs: rel.Schema().Attrs()}
		p.relStats[i] = stats.Build(rel)
		for _, a := range p.rels[i].schemaAttrs {
			p.holders[a] = append(p.holders[a], i)
		}
	}
	for i := 1; i < len(nodes); i++ {
		parent := nodes[i].Parent
		p.adj[i] = append(p.adj[i], adjEdge{to: parent, attr: nodes[i].Attr})
		p.adj[parent] = append(p.adj[parent], adjEdge{to: i, attr: nodes[i].Attr})
	}
	if res != nil {
		ri := len(nodes)
		resRel := res.Rel()
		p.rels[ri] = &joinRelView{schemaAttrs: resRel.Schema().Attrs()}
		p.relStats[ri] = stats.Build(resRel)
		for _, a := range p.rels[ri].schemaAttrs {
			p.holders[a] = append(p.holders[a], ri)
		}
		for _, a := range res.LinkAttrs {
			for _, h := range p.holders[a] {
				if h == ri {
					continue
				}
				p.adj[ri] = append(p.adj[ri], adjEdge{to: h, attr: a})
				p.adj[h] = append(p.adj[h], adjEdge{to: ri, attr: a})
			}
		}
	}
	return p
}

// holderOfBoth returns a relation index holding both attributes, or -1.
// Preference order is the node order, which makes profile construction
// deterministic.
func (p *Precomputed) holderOfBoth(a, b string) int {
	for i, rv := range p.rels {
		hasA, hasB := false, false
		for _, attr := range rv.schemaAttrs {
			if attr == a {
				hasA = true
			}
			if attr == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return i
		}
	}
	return -1
}

// Dist returns the join-graph distance between the holders of two
// attributes (0 when co-located), or -1 when either attribute is
// missing. This is the Dist_j(A, A') of §8.1.1.
func (p *Precomputed) Dist(a, b string) int {
	ha, hb := p.holders[a], p.holders[b]
	if len(ha) == 0 || len(hb) == 0 {
		return -1
	}
	targets := make(map[int]bool, len(hb))
	for _, h := range hb {
		targets[h] = true
	}
	// Multi-source BFS from the holders of a.
	distOf := make([]int, len(p.rels))
	for i := range distOf {
		distOf[i] = -1
	}
	queue := make([]int, 0, len(ha))
	for _, h := range ha {
		distOf[h] = 0
		queue = append(queue, h)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if targets[u] {
			return distOf[u]
		}
		for _, e := range p.adj[u] {
			if distOf[e.to] < 0 {
				distOf[e.to] = distOf[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return -1
}

// pathFactor returns an anchor relation holding attribute a together
// with the product of max degrees along the shortest join path from
// that anchor to a holder of b — the §8.1.2 degree combination for
// synthesized pairs.
func (p *Precomputed) pathFactor(a, b string) (anchor int, factor float64, err error) {
	ha, hb := p.holders[a], p.holders[b]
	if len(ha) == 0 || len(hb) == 0 {
		return -1, 0, fmt.Errorf("attribute %q or %q not in join", a, b)
	}
	targets := make(map[int]bool, len(hb))
	for _, h := range hb {
		targets[h] = true
	}
	type state struct {
		rel    int
		start  int
		factor float64
	}
	visited := make([]bool, len(p.rels))
	queue := make([]state, 0, len(ha))
	for _, h := range ha {
		visited[h] = true
		queue = append(queue, state{rel: h, start: h, factor: 1})
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		if targets[s.rel] {
			return s.start, s.factor, nil
		}
		for _, e := range p.adj[s.rel] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			m := float64(p.relStats[e.to].MaxDegree(e.attr))
			queue = append(queue, state{rel: e.to, start: s.start, factor: s.factor * m})
		}
	}
	return -1, 0, fmt.Errorf("no join path between holders of %q and %q", a, b)
}
