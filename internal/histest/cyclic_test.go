package histest

import (
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
)

// cyclicUnion builds a union of a triangle join and an equivalent
// denormalized single-relation join, sharing the output attribute set
// {A, B, C}: the cyclic path of Precompute (residual as an extra
// pseudo-relation) must produce a usable profile.
func cyclicUnion(t *testing.T) []*join.Join {
	t.Helper()
	r := relation.New("R", relation.NewSchema("A", "B"))
	s := relation.New("S", relation.NewSchema("B", "C"))
	u := relation.New("T", relation.NewSchema("C", "A"))
	wide := relation.New("W", relation.NewSchema("A", "B", "C"))
	for i := 0; i < 40; i++ {
		a, b, c := relation.Value(i), relation.Value(i+100), relation.Value(i+200)
		r.AppendValues(a, b)
		s.AppendValues(b, c)
		u.AppendValues(c, a)
		if i < 25 { // overlap: first 25 triangles also in the wide relation
			wide.AppendValues(a, b, c)
		} else {
			wide.AppendValues(a+1000, b+1000, c+1000)
		}
	}
	tri, err := join.NewCyclic("tri", []*relation.Relation{r, s, u},
		[]join.Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := join.NewChain("flat", []*relation.Relation{wide}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []*join.Join{tri, flat}
}

func TestPrecomputeCyclicResidual(t *testing.T) {
	joins := cyclicUnion(t)
	pre := Precompute(joins[0])
	// The residual counts as one extra pseudo-relation.
	if got := len(pre.relStats); got != 3 {
		t.Fatalf("cyclic precompute has %d relations, want 3 (skeleton 2 + residual)", got)
	}
	// Attributes of the residual are reachable in the distance metric.
	for _, pair := range [][2]string{{"A", "B"}, {"B", "C"}, {"A", "C"}} {
		if d := pre.Dist(pair[0], pair[1]); d < 0 {
			t.Errorf("Dist(%s,%s) = %d; residual not wired into the join graph", pair[0], pair[1], d)
		}
	}
}

func TestEstimatorOverCyclicUnion(t *testing.T) {
	joins := cyclicUnion(t)
	est, err := New(joins, Options{Sizes: SizeEW})
	if err != nil {
		t.Fatalf("New over cyclic union: %v", err)
	}
	if est.TemplateUsed() == nil {
		t.Error("cyclic union should take the template path")
	}
	tab, err := est.Estimate()
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	exact, _, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	if tab.JoinSize(0) != exact.JoinSize(0) || tab.JoinSize(1) != exact.JoinSize(1) {
		t.Errorf("EW sizes = %f, %f; want %f, %f",
			tab.JoinSize(0), tab.JoinSize(1), exact.JoinSize(0), exact.JoinSize(1))
	}
	// Estimated overlap must be positive — the joins share 25 tuples —
	// and bounded by the smaller join after normalization.
	if tab.Get(0b11) <= 0 {
		t.Errorf("cyclic-union overlap estimate %f; want > 0", tab.Get(0b11))
	}
	if tab.Get(0b11) > tab.JoinSize(0)+1e-9 || tab.Get(0b11) > tab.JoinSize(1)+1e-9 {
		t.Errorf("overlap estimate %f exceeds a join size", tab.Get(0b11))
	}
}
