package histest

import (
	"fmt"
	"math"
	"sort"
)

// maxDPAttrs caps the exact Held–Karp search; larger schemas fall back
// to a greedy nearest-neighbor construction.
const maxDPAttrs = 16

// Template chooses the standard template (§8.1): an ordering of the
// output attributes such that the total pairwise-distance score of
// consecutive attributes is minimized. score(A, A') = Σ_j Dist_j(A, A'),
// where Dist_j is the join-graph distance between the relations of J_j
// holding A and A' (§8.1.1). zeroScore is the §8.1.2 alternating-score
// hyper-parameter substituted when Dist_j = 0 (attributes co-located);
// 0 reproduces the paper's base scoring.
//
// The minimum-score ordering is a minimum-cost Hamiltonian path over
// the attributes; output schemas are small, so it is solved exactly
// with Held–Karp DP up to 16 attributes and greedily beyond.
func Template(pres []*Precomputed, attrs []string, zeroScore float64) ([]string, error) {
	if len(pres) == 0 {
		return nil, fmt.Errorf("histest: no joins for template search")
	}
	m := len(attrs)
	if m < 2 {
		return nil, fmt.Errorf("histest: template needs at least 2 attributes, got %d", m)
	}
	score := make([][]float64, m)
	for i := range score {
		score[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			s := 0.0
			for _, pre := range pres {
				d := pre.Dist(attrs[i], attrs[k])
				if d < 0 {
					return nil, fmt.Errorf("histest: attribute %q or %q missing from a join", attrs[i], attrs[k])
				}
				if d == 0 {
					s += zeroScore
				} else {
					s += float64(d)
				}
			}
			score[i][k], score[k][i] = s, s
		}
	}
	var order []int
	if m <= maxDPAttrs {
		order = heldKarpPath(score)
	} else {
		order = greedyPath(score)
	}
	out := make([]string, m)
	for i, a := range order {
		out[i] = attrs[a]
	}
	return out, nil
}

// heldKarpPath solves the minimum-cost Hamiltonian path exactly:
// dp[mask][last] = cheapest path visiting mask ending at last.
func heldKarpPath(score [][]float64) []int {
	m := len(score)
	size := 1 << uint(m)
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	for mask := range dp {
		dp[mask] = make([]float64, m)
		parent[mask] = make([]int8, m)
		for i := range dp[mask] {
			dp[mask][i] = math.Inf(1)
			parent[mask][i] = -1
		}
	}
	for i := 0; i < m; i++ {
		dp[1<<uint(i)][i] = 0
	}
	for mask := 1; mask < size; mask++ {
		for last := 0; last < m; last++ {
			cur := dp[mask][last]
			if math.IsInf(cur, 1) || mask&(1<<uint(last)) == 0 {
				continue
			}
			for next := 0; next < m; next++ {
				b := 1 << uint(next)
				if mask&b != 0 {
					continue
				}
				cand := cur + score[last][next]
				if cand < dp[mask|b][next] {
					dp[mask|b][next] = cand
					parent[mask|b][next] = int8(last)
				}
			}
		}
	}
	full := size - 1
	best, bestCost := 0, math.Inf(1)
	for i := 0; i < m; i++ {
		if dp[full][i] < bestCost {
			best, bestCost = i, dp[full][i]
		}
	}
	order := make([]int, 0, m)
	mask, last := full, best
	for last >= 0 {
		order = append(order, last)
		p := parent[mask][last]
		mask &^= 1 << uint(last)
		last = int(p)
	}
	// Reverse into path order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// greedyPath starts from the cheapest edge and extends the path at
// whichever end has the cheaper continuation.
func greedyPath(score [][]float64) []int {
	m := len(score)
	bi, bk, best := 0, 1, math.Inf(1)
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			if score[i][k] < best {
				bi, bk, best = i, k, score[i][k]
			}
		}
	}
	used := make([]bool, m)
	used[bi], used[bk] = true, true
	path := []int{bi, bk}
	for len(path) < m {
		head, tail := path[0], path[len(path)-1]
		hi, hc := -1, math.Inf(1)
		ti, tc := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if score[head][i] < hc {
				hi, hc = i, score[head][i]
			}
			if score[tail][i] < tc {
				ti, tc = i, score[tail][i]
			}
		}
		if hc < tc {
			path = append([]int{hi}, path...)
			used[hi] = true
		} else {
			path = append(path, ti)
			used[ti] = true
		}
	}
	return path
}

// CanonicalAttrs returns the sorted attribute names of the joins'
// shared output schema, validating that every join exposes the same
// attribute set (§2's same-output-schema requirement).
func CanonicalAttrs(pres []*Precomputed) ([]string, error) {
	if len(pres) == 0 {
		return nil, fmt.Errorf("histest: no joins")
	}
	ref := pres[0].j.OutputSchema()
	attrs := ref.Attrs()
	sort.Strings(attrs)
	for _, pre := range pres[1:] {
		s := pre.j.OutputSchema()
		if s.Len() != len(attrs) {
			return nil, fmt.Errorf("histest: join %s output arity %d, want %d", pre.j.Name(), s.Len(), len(attrs))
		}
		for _, a := range attrs {
			if !s.Has(a) {
				return nil, fmt.Errorf("histest: join %s lacks output attribute %q", pre.j.Name(), a)
			}
		}
	}
	return attrs, nil
}
