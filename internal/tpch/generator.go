// Package tpch generates the evaluation data of §9: TPC-H-shaped
// relations (region, nation, supplier, customer, orders, lineitem,
// part, partsupp) at a configurable scale factor, produced in variants
// whose shared-row fraction is the paper's overlap scale. Each union
// workload (UQ1, UQ2, UQ3) is built from these variants.
//
// The generator is deterministic: every cell value is a hash of
// (seed, relation, row, column, variant), so relations can be built in
// any order and reproduced exactly. The first ceil(overlap·n) rows of
// each relation are variant-independent ("shared"), and foreign keys of
// shared rows point at shared targets, which makes the overlap of join
// results grow monotonically with the overlap scale — the paper's
// guarantee that "the overlap ratio between queries is proportional to
// the overlap scale" (§9).
package tpch

import (
	"fmt"
	"math"

	"sampleunion/internal/relation"
)

// Config controls data generation.
type Config struct {
	// SF is the scale factor; row counts scale linearly (see Rows).
	// Values <= 0 default to 1.
	SF float64
	// Overlap is the overlap scale P in [0, 1]: the fraction of each
	// relation shared across variants. Negative defaults to 0.2.
	Overlap float64
	// Seed makes the dataset reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 1
	}
	if c.Overlap < 0 {
		c.Overlap = 0.2
	}
	if c.Overlap > 1 {
		c.Overlap = 1
	}
	return c
}

// Rows holds the per-relation row counts at SF = 1; counts scale
// linearly with SF (nation and region stay fixed, as in TPC-H).
var Rows = struct {
	Supplier, Customer, Orders, Lineitem, Part, PartSupp int
}{
	Supplier: 100,
	Customer: 300,
	Orders:   600,
	Lineitem: 1200,
	Part:     200,
	PartSupp: 400,
}

// Generator produces relation variants for one configuration.
type Generator struct {
	cfg Config
}

// NewGenerator returns a generator for the configuration.
func NewGenerator(cfg Config) *Generator {
	return &Generator{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (defaults applied).
func (g *Generator) Config() Config { return g.cfg }

// scaled returns base rows scaled by SF, at least 1.
func (g *Generator) scaled(base int) int {
	n := int(math.Round(float64(base) * g.cfg.SF))
	if n < 1 {
		n = 1
	}
	return n
}

// shared returns how many of n rows are variant-independent.
func (g *Generator) sharedCount(n int) int {
	s := int(math.Ceil(g.cfg.Overlap * float64(n)))
	if s > n {
		s = n
	}
	return s
}

// cell produces the deterministic value for (relation, row, column,
// salt); salt is -1 for shared rows and the variant index otherwise.
func (g *Generator) cell(rel string, row, col, salt int) relation.Value {
	h := uint64(g.cfg.Seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for _, p := range []uint64{hashString(rel), uint64(row), uint64(col), uint64(int64(salt))} {
		h ^= p
		h *= 0x100000001B3
		h ^= h >> 29
	}
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return relation.Value(h & 0x7FFFFFFF)
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// salt returns the generator salt for row i of a relation with s shared
// rows in variant v.
func salt(i, s, v int) int {
	if i < s {
		return -1
	}
	return v
}

// NationCount and RegionCount are TPC-H's fixed small-relation sizes.
const (
	NationCount = 25
	RegionCount = 5
)

// Region returns the region relation (variant-independent).
func (g *Generator) Region() *relation.Relation {
	r := relation.New("region", relation.NewSchema("regionkey", "r_name"))
	for i := 0; i < RegionCount; i++ {
		r.AppendValues(relation.Value(i), relation.Value(i*100+7))
	}
	return r
}

// Nation returns the nation relation (variant-independent).
func (g *Generator) Nation() *relation.Relation {
	r := relation.New("nation", relation.NewSchema("nationkey", "n_name", "regionkey"))
	for i := 0; i < NationCount; i++ {
		r.AppendValues(relation.Value(i), relation.Value(i*100+13), relation.Value(i%RegionCount))
	}
	return r
}

// Supplier returns variant v's supplier relation.
func (g *Generator) Supplier(v int) *relation.Relation {
	n := g.scaled(Rows.Supplier)
	s := g.sharedCount(n)
	r := relation.New(fmt.Sprintf("supplier_v%d", v),
		relation.NewSchema("suppkey", "s_name", "nationkey", "s_acctbal"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		r.AppendValues(
			relation.Value(i),
			g.cell("supplier", i, 1, sa)%100000,
			relation.Value(int64(g.cell("supplier", i, 2, -1))%NationCount),
			g.cell("supplier", i, 3, sa)%10000,
		)
	}
	return r
}

// Customer returns variant v's customer relation.
func (g *Generator) Customer(v int) *relation.Relation {
	n := g.scaled(Rows.Customer)
	s := g.sharedCount(n)
	r := relation.New(fmt.Sprintf("customer_v%d", v),
		relation.NewSchema("custkey", "c_name", "nationkey", "c_acctbal", "c_mktsegment"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		r.AppendValues(
			relation.Value(i),
			g.cell("customer", i, 1, sa)%100000,
			relation.Value(int64(g.cell("customer", i, 2, -1))%NationCount),
			g.cell("customer", i, 3, sa)%10000,
			relation.Value(int64(g.cell("customer", i, 4, sa))%5),
		)
	}
	return r
}

// Orders returns variant v's orders relation. Shared orders reference
// shared customers so result overlap tracks the overlap scale.
func (g *Generator) Orders(v int) *relation.Relation {
	n := g.scaled(Rows.Orders)
	s := g.sharedCount(n)
	nCust := g.scaled(Rows.Customer)
	sCust := g.sharedCount(nCust)
	r := relation.New(fmt.Sprintf("orders_v%d", v),
		relation.NewSchema("orderkey", "custkey", "o_status", "o_totalprice"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		var ck int64
		if sa == -1 && sCust > 0 {
			ck = int64(g.cell("orders", i, 1, -1)) % int64(sCust)
		} else {
			ck = int64(g.cell("orders", i, 1, sa)) % int64(nCust)
		}
		r.AppendValues(
			relation.Value(i),
			relation.Value(ck),
			relation.Value(int64(g.cell("orders", i, 2, sa))%3),
			g.cell("orders", i, 3, sa)%100000,
		)
	}
	return r
}

// Lineitem returns variant v's lineitem relation (UQ1's shape: no part
// or supplier references, which would otherwise imply extra join
// predicates under shared attribute names). Shared lineitems reference
// shared orders.
func (g *Generator) Lineitem(v int) *relation.Relation {
	n := g.scaled(Rows.Lineitem)
	s := g.sharedCount(n)
	nOrd := g.scaled(Rows.Orders)
	sOrd := g.sharedCount(nOrd)
	r := relation.New(fmt.Sprintf("lineitem_v%d", v),
		relation.NewSchema("orderkey", "l_linenumber", "l_quantity", "l_price"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		var ok int64
		if sa == -1 && sOrd > 0 {
			ok = int64(g.cell("lineitem", i, 0, -1)) % int64(sOrd)
		} else {
			ok = int64(g.cell("lineitem", i, 0, sa)) % int64(nOrd)
		}
		r.AppendValues(
			relation.Value(ok),
			relation.Value(i),
			g.cell("lineitem", i, 2, sa)%50+1,
			g.cell("lineitem", i, 3, sa)%100000,
		)
	}
	return r
}

// Part returns variant v's part relation.
func (g *Generator) Part(v int) *relation.Relation {
	n := g.scaled(Rows.Part)
	s := g.sharedCount(n)
	r := relation.New(fmt.Sprintf("part_v%d", v),
		relation.NewSchema("partkey", "p_name", "p_size", "p_retail"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		r.AppendValues(
			relation.Value(i),
			g.cell("part", i, 1, sa)%100000,
			g.cell("part", i, 2, sa)%50+1,
			g.cell("part", i, 3, sa)%10000,
		)
	}
	return r
}

// PartSupp returns variant v's partsupp relation. Shared rows reference
// shared parts and suppliers.
func (g *Generator) PartSupp(v int) *relation.Relation {
	n := g.scaled(Rows.PartSupp)
	s := g.sharedCount(n)
	nPart, sPart := g.scaled(Rows.Part), g.sharedCount(g.scaled(Rows.Part))
	nSupp, sSupp := g.scaled(Rows.Supplier), g.sharedCount(g.scaled(Rows.Supplier))
	r := relation.New(fmt.Sprintf("partsupp_v%d", v),
		relation.NewSchema("partkey", "suppkey", "ps_availqty", "ps_supplycost"))
	for i := 0; i < n; i++ {
		sa := salt(i, s, v)
		var pk, sk int64
		if sa == -1 && sPart > 0 && sSupp > 0 {
			pk = int64(g.cell("partsupp", i, 0, -1)) % int64(sPart)
			sk = int64(g.cell("partsupp", i, 1, -1)) % int64(sSupp)
		} else {
			pk = int64(g.cell("partsupp", i, 0, sa)) % int64(nPart)
			sk = int64(g.cell("partsupp", i, 1, sa)) % int64(nSupp)
		}
		r.AppendValues(
			relation.Value(pk),
			relation.Value(sk),
			g.cell("partsupp", i, 2, sa)%1000,
			g.cell("partsupp", i, 3, sa)%10000,
		)
	}
	return r
}
