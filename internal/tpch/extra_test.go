package tpch

import (
	"testing"

	"sampleunion/internal/core"
	"sampleunion/internal/histest"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

func TestUQ1NValidation(t *testing.T) {
	if _, err := UQ1N(Config{SF: 0.2}, 0); err == nil {
		t.Error("zero variants accepted")
	}
	w, err := UQ1N(Config{SF: 0.2, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Joins) != 2 {
		t.Fatalf("joins = %d", len(w.Joins))
	}
}

// TestUQ1AlignedChainsFastPath: UQ1's joins are equi-length chains with
// identical schemas, so the histogram estimator must skip the template
// machinery (§5.1 base case).
func TestUQ1AlignedChainsFastPath(t *testing.T) {
	w, err := UQ1N(Config{SF: 0.2, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !histest.AlignedChains(w.Joins) {
		t.Fatal("UQ1 variants not detected as aligned chains")
	}
	est, err := histest.New(w.Joins, histest.Options{Sizes: histest.SizeEO})
	if err != nil {
		t.Fatal(err)
	}
	if est.TemplateUsed() != nil {
		t.Error("UQ1 took the splitting path")
	}
}

// TestUQ3RequiresTemplate: UQ3 joins have different schemas, so the
// estimator must go through the splitting method.
func TestUQ3RequiresTemplate(t *testing.T) {
	w, err := UQ3(Config{SF: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if histest.AlignedChains(w.Joins) {
		t.Fatal("UQ3 misdetected as aligned chains")
	}
	est, err := histest.New(w.Joins, histest.Options{Sizes: histest.SizeEO})
	if err != nil {
		t.Fatal(err)
	}
	if est.TemplateUsed() == nil {
		t.Error("UQ3 skipped the template path")
	}
	if _, err := est.Estimate(); err != nil {
		t.Fatalf("UQ3 estimation: %v", err)
	}
}

// TestWorkloadsSampleable is the workload-level smoke test: every
// workload supports every sampler configuration end to end.
func TestWorkloadsSampleable(t *testing.T) {
	ws, err := Workloads(Config{SF: 0.2, Overlap: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range ws {
		for _, m := range []core.JoinMethod{core.MethodEW, core.MethodEO} {
			s, err := core.NewCoverSampler(w.Joins, core.CoverConfig{
				Method:    m,
				Estimator: &core.HistogramEstimator{Joins: w.Joins},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			out, err := s.Sample(100, rng.New(3))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			ref := w.Joins[0].OutputSchema()
			for _, tu := range out {
				found := false
				for _, j := range w.Joins {
					if j.ContainsAligned(tu, ref) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s/%s: sample %v outside union", name, m, tu)
				}
			}
		}
	}
}

// TestUQ2PredicatesActuallyFilter verifies the three UQ2 variants are
// genuinely different relations, not aliases.
func TestUQ2PredicatesActuallyFilter(t *testing.T) {
	w, err := UQ2(Config{SF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int64]bool{}
	for _, j := range w.Joins {
		sizes[j.Count()] = true
	}
	if len(sizes) < 2 {
		t.Error("UQ2 variants have identical sizes; predicates may be inert")
	}
	// Filtered relations are smaller than their sources.
	g := NewGenerator(Config{SF: 0.5, Seed: 1})
	fullPart := g.Part(0).Len()
	qp := w.Joins[1] // the part-filtered variant
	var partLen int
	for _, n := range qp.Nodes() {
		if n.Rel.Schema().Has("p_size") {
			partLen = n.Rel.Len()
		}
	}
	if partLen == 0 || partLen >= fullPart {
		t.Errorf("part filter inert: %d of %d rows", partLen, fullPart)
	}
	_ = relation.True{}
}
