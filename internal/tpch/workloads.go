package tpch

import (
	"fmt"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
)

// Workload is a union query over TPC-H data: the joins whose set union
// is sampled.
type Workload struct {
	Name  string
	Joins []*join.Join
	// Description documents the shape for tools and reports.
	Description string
}

// UQ1 builds the paper's first workload: five chain joins, each over
// nation ⋈ supplier ⋈ customer ⋈ orders ⋈ lineitem, on five data
// variants whose shared fraction is the overlap scale (§9, Datasets).
func UQ1(cfg Config) (*Workload, error) {
	return UQ1N(cfg, 5)
}

// UQ1N is UQ1 with a configurable number of variants (the paper uses
// five; scalability sweeps vary it).
func UQ1N(cfg Config, variants int) (*Workload, error) {
	if variants < 1 {
		return nil, fmt.Errorf("tpch: UQ1 needs at least 1 variant")
	}
	g := NewGenerator(cfg)
	nation := g.Nation()
	w := &Workload{
		Name:        "UQ1",
		Description: "five chain joins over nation⋈supplier⋈customer⋈orders⋈lineitem",
	}
	for v := 0; v < variants; v++ {
		j, err := join.NewChain(
			fmt.Sprintf("UQ1_J%d", v+1),
			[]*relation.Relation{nation, g.Supplier(v), g.Customer(v), g.Orders(v), g.Lineitem(v)},
			[]string{"nationkey", "nationkey", "custkey", "orderkey"},
		)
		if err != nil {
			return nil, err
		}
		w.Joins = append(w.Joins, j)
	}
	return w, nil
}

// UQ2 builds the second workload: three chain joins over
// region ⋈ nation ⋈ supplier ⋈ partsupp ⋈ part on the same data with
// different selection predicates (following Q2^N ∪ Q2^P ∪ Q2^S), so
// the joins overlap heavily (§9). Predicates are pushed down to the
// relations, the first alternative of §8.3.
func UQ2(cfg Config) (*Workload, error) {
	g := NewGenerator(cfg)
	region, nation := g.Region(), g.Nation()
	supplier, partsupp, part := g.Supplier(0), g.PartSupp(0), g.Part(0)
	w := &Workload{
		Name:        "UQ2",
		Description: "three predicate-filtered chain joins over region⋈nation⋈supplier⋈partsupp⋈part",
	}
	type variant struct {
		name     string
		nation   relation.Predicate
		supplier relation.Predicate
		part     relation.Predicate
	}
	variants := []variant{
		{"N", relation.Cmp{Attr: "nationkey", Op: relation.LT, Val: 18}, relation.True{}, relation.True{}},
		{"P", relation.True{}, relation.True{}, relation.Cmp{Attr: "p_size", Op: relation.LT, Val: 35}},
		{"S", relation.True{}, relation.Cmp{Attr: "s_acctbal", Op: relation.LT, Val: 7000}, relation.True{}},
	}
	for i, v := range variants {
		rels := []*relation.Relation{
			region,
			nation.Filter(fmt.Sprintf("nation_q%s", v.name), v.nation),
			supplier.Filter(fmt.Sprintf("supplier_q%s", v.name), v.supplier),
			partsupp,
			part.Filter(fmt.Sprintf("part_q%s", v.name), v.part),
		}
		j, err := join.NewChain(
			fmt.Sprintf("UQ2_Q%s", v.name), rels,
			[]string{"regionkey", "nationkey", "suppkey", "partkey"},
		)
		if err != nil {
			return nil, err
		}
		_ = i
		w.Joins = append(w.Joins, j)
	}
	return w, nil
}

// UQ3 builds the third workload: one acyclic join and two chain joins
// derived from supplier, customer, and orders, with relations split
// vertically (different schemas per join, so estimation must apply the
// splitting method of §5.2) and horizontally (order-status ranges that
// overlap partially). All three joins produce the same output schema.
func UQ3(cfg Config) (*Workload, error) {
	g := NewGenerator(cfg)
	w := &Workload{
		Name:        "UQ3",
		Description: "one acyclic + two chain joins over split supplier/customer/orders",
	}

	// J1: plain chain supplier ⋈ customer ⋈ orders on variant 0.
	j1, err := join.NewChain("UQ3_J1",
		[]*relation.Relation{g.Supplier(0), g.Customer(0), g.Orders(0)},
		[]string{"nationkey", "custkey"})
	if err != nil {
		return nil, err
	}
	w.Joins = append(w.Joins, j1)

	// J2: denormalized chain on variant 1 — supplier⋈customer is
	// materialized into one wide relation (the PartSupplier_E situation
	// of Fig 1), horizontally restricted to o_status <= 1.
	sc, err := materializeSupplierCustomer(g, 1)
	if err != nil {
		return nil, err
	}
	orders2 := g.Orders(1).Filter("orders_v1_lo",
		relation.Cmp{Attr: "o_status", Op: relation.LE, Val: 1})
	j2, err := join.NewChain("UQ3_J2",
		[]*relation.Relation{sc, orders2}, []string{"custkey"})
	if err != nil {
		return nil, err
	}
	w.Joins = append(w.Joins, j2)

	// J3: acyclic star on variant 2 — customer vertically split into
	// custA(custkey, nationkey, c_name) and custB(custkey, c_acctbal,
	// c_mktsegment); custA is the root joined to custB, supplier, and
	// orders (horizontally restricted to o_status >= 1).
	cust := g.Customer(2)
	custA, custB, err := relation.VerticalSplit(cust,
		"custA_v2", []string{"custkey", "c_name", "nationkey"},
		"custB_v2", []string{"custkey", "c_acctbal", "c_mktsegment"})
	if err != nil {
		return nil, err
	}
	orders3 := g.Orders(2).Filter("orders_v2_hi",
		relation.Cmp{Attr: "o_status", Op: relation.GE, Val: 1})
	j3, err := join.NewTree("UQ3_J3",
		[]*relation.Relation{custA, custB, g.Supplier(2), orders3},
		[]int{-1, 0, 0, 0},
		[]string{"", "custkey", "nationkey", "custkey"})
	if err != nil {
		return nil, err
	}
	w.Joins = append(w.Joins, j3)
	return w, nil
}

// materializeSupplierCustomer joins variant v's supplier and customer
// on nationkey into one denormalized relation.
func materializeSupplierCustomer(g *Generator, v int) (*relation.Relation, error) {
	j, err := join.NewChain("sc_tmp",
		[]*relation.Relation{g.Supplier(v), g.Customer(v)}, []string{"nationkey"})
	if err != nil {
		return nil, err
	}
	out := relation.New(fmt.Sprintf("suppcust_v%d", v), j.OutputSchema())
	j.Enumerate(func(t relation.Tuple) bool {
		out.Append(t.Clone())
		return true
	})
	return out, nil
}

// Workloads builds all three workloads with one configuration.
func Workloads(cfg Config) (map[string]*Workload, error) {
	out := make(map[string]*Workload, 3)
	for _, build := range []func(Config) (*Workload, error){UQ1, UQ2, UQ3} {
		w, err := build(cfg)
		if err != nil {
			return nil, err
		}
		out[w.Name] = w
	}
	return out, nil
}
