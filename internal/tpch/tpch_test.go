package tpch

import (
	"testing"

	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Config{SF: 1, Overlap: 0.3, Seed: 7})
	b := NewGenerator(Config{SF: 1, Overlap: 0.3, Seed: 7})
	ra, rb := a.Supplier(2), b.Supplier(2)
	if ra.Len() != rb.Len() {
		t.Fatalf("sizes differ: %d vs %d", ra.Len(), rb.Len())
	}
	for i := 0; i < ra.Len(); i++ {
		if !ra.Row(i).Equal(rb.Row(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
	c := NewGenerator(Config{SF: 1, Overlap: 0.3, Seed: 8})
	diff := false
	rc := c.Supplier(2)
	for i := 0; i < ra.Len() && !diff; i++ {
		if !ra.Row(i).Equal(rc.Row(i)) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical suppliers")
	}
}

func TestSharedPrefixAcrossVariants(t *testing.T) {
	g := NewGenerator(Config{SF: 1, Overlap: 0.4, Seed: 1})
	v0, v1 := g.Customer(0), g.Customer(1)
	shared := g.sharedCount(v0.Len())
	if shared == 0 || shared == v0.Len() {
		t.Fatalf("degenerate shared count %d of %d", shared, v0.Len())
	}
	for i := 0; i < shared; i++ {
		if !v0.Row(i).Equal(v1.Row(i)) {
			t.Fatalf("shared row %d differs across variants", i)
		}
	}
	same := 0
	for i := shared; i < v0.Len(); i++ {
		if v0.Row(i).Equal(v1.Row(i)) {
			same++
		}
	}
	if same > (v0.Len()-shared)/4 {
		t.Errorf("too many variant rows identical: %d of %d", same, v0.Len()-shared)
	}
}

func TestScaleFactorScalesRows(t *testing.T) {
	small := NewGenerator(Config{SF: 1, Seed: 1})
	big := NewGenerator(Config{SF: 2, Seed: 1})
	if got, want := big.Orders(0).Len(), 2*small.Orders(0).Len(); got != want {
		t.Errorf("orders at SF2 = %d, want %d", got, want)
	}
	if small.Nation().Len() != NationCount || big.Nation().Len() != NationCount {
		t.Error("nation must not scale")
	}
}

func TestConfigDefaults(t *testing.T) {
	g := NewGenerator(Config{SF: -1, Overlap: -0.5})
	cfg := g.Config()
	if cfg.SF != 1 || cfg.Overlap != 0.2 {
		t.Errorf("defaults = %+v", cfg)
	}
	g2 := NewGenerator(Config{Overlap: 2})
	if g2.Config().Overlap != 1 {
		t.Errorf("overlap not clamped: %f", g2.Config().Overlap)
	}
}

func TestForeignKeysResolve(t *testing.T) {
	g := NewGenerator(Config{SF: 1, Overlap: 0.2, Seed: 3})
	nCust := g.Customer(0).Len()
	orders := g.Orders(0)
	for i := 0; i < orders.Len(); i++ {
		ck := orders.Value(i, 1)
		if ck < 0 || int(ck) >= nCust {
			t.Fatalf("order %d has custkey %d outside [0,%d)", i, ck, nCust)
		}
	}
	nOrd := orders.Len()
	li := g.Lineitem(0)
	for i := 0; i < li.Len(); i++ {
		ok := li.Value(i, 0)
		if ok < 0 || int(ok) >= nOrd {
			t.Fatalf("lineitem %d has orderkey %d outside [0,%d)", i, ok, nOrd)
		}
	}
	ps := g.PartSupp(0)
	nPart, nSupp := g.Part(0).Len(), g.Supplier(0).Len()
	for i := 0; i < ps.Len(); i++ {
		if pk := ps.Value(i, 0); int(pk) >= nPart {
			t.Fatalf("partsupp partkey %d out of range", pk)
		}
		if sk := ps.Value(i, 1); int(sk) >= nSupp {
			t.Fatalf("partsupp suppkey %d out of range", sk)
		}
	}
}

func TestUQ1Shape(t *testing.T) {
	w, err := UQ1(Config{SF: 0.5, Overlap: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Joins) != 5 {
		t.Fatalf("UQ1 joins = %d, want 5", len(w.Joins))
	}
	ref := w.Joins[0].OutputSchema()
	for _, j := range w.Joins {
		if !j.IsChain() {
			t.Errorf("%s is not a chain", j.Name())
		}
		if !j.OutputSchema().Equal(ref) {
			t.Errorf("%s output schema differs", j.Name())
		}
		if j.Count() == 0 {
			t.Errorf("%s is empty", j.Name())
		}
	}
}

func TestUQ1OverlapGrowsWithScale(t *testing.T) {
	measure := func(p float64) float64 {
		w, err := UQ1N(Config{SF: 0.3, Overlap: p, Seed: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		tab, _, err := overlap.Exact(w.Joins)
		if err != nil {
			t.Fatal(err)
		}
		return tab.Get(0b11)
	}
	lo, mid, hi := measure(0.1), measure(0.5), measure(0.9)
	if !(lo < mid && mid < hi) {
		t.Fatalf("overlap not monotone in scale: %.0f, %.0f, %.0f", lo, mid, hi)
	}
	if hi == 0 {
		t.Fatal("high overlap scale produced zero overlap")
	}
}

func TestUQ2Shape(t *testing.T) {
	w, err := UQ2(Config{SF: 0.5, Overlap: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Joins) != 3 {
		t.Fatalf("UQ2 joins = %d, want 3", len(w.Joins))
	}
	tab, unionSize, err := overlap.Exact(w.Joins)
	if err != nil {
		t.Fatal(err)
	}
	if unionSize == 0 {
		t.Fatal("UQ2 union empty")
	}
	// Same data, different predicates: heavy overlap by construction.
	all := tab.Get(0b111)
	if all == 0 {
		t.Error("UQ2 three-way overlap empty; predicates too selective")
	}
	for i := range w.Joins {
		if frac := all / tab.JoinSize(i); frac < 0.2 {
			t.Errorf("UQ2 join %d overlap fraction %.2f; want large", i, frac)
		}
	}
}

func TestUQ3Shape(t *testing.T) {
	w, err := UQ3(Config{SF: 0.5, Overlap: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Joins) != 3 {
		t.Fatalf("UQ3 joins = %d, want 3", len(w.Joins))
	}
	if w.Joins[0].IsChain() != true || w.Joins[1].IsChain() != true {
		t.Error("UQ3 J1/J2 should be chains")
	}
	if w.Joins[2].IsChain() {
		t.Error("UQ3 J3 should be a non-chain acyclic join")
	}
	// Same output attribute set across joins (order may differ).
	ref := w.Joins[0].OutputSchema()
	for _, j := range w.Joins[1:] {
		s := j.OutputSchema()
		if s.Len() != ref.Len() {
			t.Fatalf("%s arity %d != %d", j.Name(), s.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if !s.Has(ref.Attr(i)) {
				t.Fatalf("%s lacks %q", j.Name(), ref.Attr(i))
			}
		}
	}
	tab, unionSize, err := overlap.Exact(w.Joins)
	if err != nil {
		t.Fatal(err)
	}
	if unionSize == 0 {
		t.Fatal("UQ3 union empty")
	}
	if tab.Get(0b011) == 0 && tab.Get(0b101) == 0 && tab.Get(0b110) == 0 {
		t.Error("UQ3 has no pairwise overlap at overlap scale 0.3")
	}
}

func TestWorkloadsBuildsAll(t *testing.T) {
	ws, err := Workloads(Config{SF: 0.3, Overlap: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"UQ1", "UQ2", "UQ3"} {
		if ws[name] == nil {
			t.Errorf("missing workload %s", name)
		}
	}
}

func TestRelationsDuplicateFree(t *testing.T) {
	// The framework assumes no duplicates within each join (§3); base
	// relations must be duplicate-free.
	g := NewGenerator(Config{SF: 1, Overlap: 0.2, Seed: 5})
	for _, r := range []*relation.Relation{
		g.Supplier(0), g.Customer(1), g.Orders(2), g.Lineitem(0), g.Part(1), g.PartSupp(2),
	} {
		seen := make(map[string]bool, r.Len())
		for i := 0; i < r.Len(); i++ {
			k := relation.TupleKey(r.Row(i))
			if seen[k] {
				t.Errorf("%s row %d duplicated", r.Name(), i)
				break
			}
			seen[k] = true
		}
	}
}
