package walkest

import (
	"testing"

	"sampleunion/internal/rng"
)

// TestCloneIndependence: a clone starts from the warm-up's estimates
// and pool, and diverges without touching the original — the property
// the online sampler's one-warm-up/many-runs split relies on.
func TestCloneIndependence(t *testing.T) {
	joins := overlappingJoins(t)
	e, err := New(joins, Options{MaxWalks: 200})
	if err != nil {
		t.Fatal(err)
	}
	e.Warmup(rng.New(1))

	c := e.Clone()
	for j, je := range e.ests {
		if c.ests[j].Walks() != je.Walks() || c.ests[j].Size() != je.Size() {
			t.Fatalf("join %d: clone estimate differs at birth", j)
		}
		if len(c.ests[j].Samples()) != len(je.Samples()) {
			t.Fatalf("join %d: clone pool size %d, want %d",
				j, len(c.ests[j].Samples()), len(je.Samples()))
		}
	}

	// Drain the clone's pool and keep walking it; the original must not
	// move.
	wantWalks := e.ests[0].Walks()
	wantPool := len(e.ests[0].Samples())
	g := rng.New(2)
	for len(c.ests[0].Samples()) > 0 {
		c.ests[0].TakeSample(0)
	}
	for i := 0; i < 100; i++ {
		c.StepJoin(0, g)
	}
	if e.ests[0].Walks() != wantWalks {
		t.Fatalf("original walk count moved: %d -> %d", wantWalks, e.ests[0].Walks())
	}
	if len(e.ests[0].Samples()) != wantPool {
		t.Fatalf("original pool drained by clone: %d -> %d", wantPool, len(e.ests[0].Samples()))
	}
	if c.ests[0].Walks() == wantWalks {
		t.Fatal("clone did not accumulate its own walks")
	}

	// Overlap counters are independent too: the clone's extra walks must
	// not perturb the original's table.
	origTab, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	cloneTab, err := c.Table()
	if err != nil {
		t.Fatal(err)
	}
	if origTab.UnionSize() == cloneTab.UnionSize() && c.wAll[0] == e.wAll[0] {
		t.Fatal("clone shares overlap state with the original")
	}
}
