package walkest

import (
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// overlappingJoins builds two 2-relation chain joins over shared base
// data so their results overlap substantially.
func overlappingJoins(t *testing.T) []*join.Join {
	t.Helper()
	sa := relation.NewSchema("K", "X")
	sb := relation.NewSchema("K", "Y")
	mk := func(name string, lo, hi int) (*relation.Relation, *relation.Relation) {
		a := relation.New(name+"_a", sa)
		b := relation.New(name+"_b", sb)
		for k := lo; k < hi; k++ {
			a.AppendValues(relation.Value(k), relation.Value(k*10))
			b.AppendValues(relation.Value(k), relation.Value(k*100))
			if k%3 == 0 { // some skew
				b.AppendValues(relation.Value(k), relation.Value(k*100+1))
			}
		}
		return a, b
	}
	a1, b1 := mk("r1", 0, 60)
	a2, b2 := mk("r2", 20, 80) // rows 20..59 shared
	j1, err := join.NewChain("J1", []*relation.Relation{a1, b1}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := join.NewChain("J2", []*relation.Relation{a2, b2}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	return []*join.Join{j1, j2}
}

func TestJoinEstimateConvergesToSize(t *testing.T) {
	joins := overlappingJoins(t)
	je := NewJoinEstimate(joins[0])
	g := rng.New(1)
	for i := 0; i < 20000; i++ {
		je.Step(g)
	}
	truth := float64(joins[0].Count())
	if math.Abs(je.Size()-truth)/truth > 0.05 {
		t.Fatalf("HT size = %.1f, truth %.1f", je.Size(), truth)
	}
	if je.Walks() != 20000 {
		t.Errorf("Walks = %d", je.Walks())
	}
	if je.HalfWidth(1.645) <= 0 {
		t.Errorf("half width = %f", je.HalfWidth(1.645))
	}
}

func TestWelfordMatchesDirectVariance(t *testing.T) {
	je := &JoinEstimate{}
	vals := []float64{4, 8, 15, 16, 23, 42}
	for _, v := range vals {
		je.Observe(v)
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	varSum := 0.0
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	wantVar := varSum / float64(len(vals)-1)
	if math.Abs(je.Size()-mean) > 1e-9 {
		t.Errorf("mean = %f, want %f", je.Size(), mean)
	}
	if math.Abs(je.Variance()-wantVar) > 1e-9 {
		t.Errorf("variance = %f, want %f", je.Variance(), wantVar)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	je := &JoinEstimate{}
	if je.Variance() != 0 {
		t.Error("variance of empty estimate nonzero")
	}
	if !math.IsInf(je.HalfWidth(1.645), 1) {
		t.Error("half width of empty estimate finite")
	}
	je.Observe(5)
	if je.Variance() != 0 {
		t.Error("variance of single observation nonzero")
	}
}

func TestTakeSample(t *testing.T) {
	joins := overlappingJoins(t)
	je := NewJoinEstimate(joins[0])
	g := rng.New(2)
	for len(je.Samples()) < 10 {
		je.Step(g)
	}
	before := len(je.Samples())
	s := je.TakeSample(0)
	if s.Tuple == nil || s.P <= 0 {
		t.Errorf("TakeSample returned %+v", s)
	}
	if len(je.Samples()) != before-1 {
		t.Errorf("pool size %d, want %d", len(je.Samples()), before-1)
	}
}

func TestWarmupRespectsBudgetAndTarget(t *testing.T) {
	joins := overlappingJoins(t)
	e, err := New(joins, Options{MaxWalks: 300, MinWalks: 32, TargetRel: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(3)
	e.Warmup(g)
	for i, je := range e.JoinEstimates() {
		if je.Walks() == 0 || je.Walks() > 300 {
			t.Errorf("join %d walks = %d", i, je.Walks())
		}
	}
}

func TestOverlapEstimateAccuracy(t *testing.T) {
	joins := overlappingJoins(t)
	e, err := New(joins, Options{MaxWalks: 8000, TargetRel: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(4)
	e.Warmup(g)
	exact, _, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	got := e.OverlapEstimate(0b11)
	want := exact.Get(0b11)
	if want == 0 {
		t.Fatal("fixture overlap empty")
	}
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("overlap estimate %.1f, exact %.1f", got, want)
	}
}

func TestTableCloseToExact(t *testing.T) {
	joins := overlappingJoins(t)
	e, err := New(joins, Options{MaxWalks: 8000, TargetRel: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(5)
	e.Warmup(g)
	tab, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	exact, exactUnion, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range joins {
		truth := exact.JoinSize(i)
		if math.Abs(tab.JoinSize(i)-truth)/truth > 0.1 {
			t.Errorf("size[%d] = %.1f, exact %.1f", i, tab.JoinSize(i), truth)
		}
	}
	u := tab.UnionSize()
	if math.Abs(u-float64(exactUnion))/float64(exactUnion) > 0.15 {
		t.Errorf("union estimate %.1f, exact %d", u, exactUnion)
	}
}

func TestOverlapHalfWidthShrinks(t *testing.T) {
	joins := overlappingJoins(t)
	small, _ := New(joins, Options{MaxWalks: 100, TargetRel: 1e-9})
	big, _ := New(joins, Options{MaxWalks: 5000, TargetRel: 1e-9})
	small.Warmup(rng.New(6))
	big.Warmup(rng.New(6))
	hwSmall := small.OverlapHalfWidth(0b11, 1.645)
	hwBig := big.OverlapHalfWidth(0b11, 1.645)
	if !(hwBig < hwSmall) {
		t.Fatalf("half width did not shrink: %f -> %f", hwSmall, hwBig)
	}
}

func TestConfidenceRange(t *testing.T) {
	joins := overlappingJoins(t)
	e, _ := New(joins, Options{MaxWalks: 2000, TargetRel: 0.02})
	if got := e.Confidence(1.645); got != 0 {
		t.Errorf("confidence before warmup = %f, want 0", got)
	}
	e.Warmup(rng.New(7))
	c := e.Confidence(1.645)
	if c <= 0 || c > 1 {
		t.Fatalf("confidence = %f", c)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("New(nil) succeeded")
	}
}
