// Package walkest implements the random-walk instantiation of the
// union-sampling framework (§6): join sizes by Horvitz–Thompson
// estimation over Wander-Join walks (§6.1), join overlaps from the
// weighted fraction of one join's walk samples contained in the others
// (§6.2), confidence intervals for both, and the retained sample pool
// that the online sampler of §7 reuses.
package walkest

import (
	"fmt"
	"math"

	"sampleunion/internal/join"
	"sampleunion/internal/joinsample"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// Sample is one successful walk retained for overlap estimation and
// sample reuse: the result tuple and its walk probability p(t).
type Sample struct {
	Tuple relation.Tuple
	P     float64
}

// JoinEstimate maintains the running Horvitz–Thompson estimate of one
// join's size: over n walks (failed walks contributing 0), the mean of
// 1/p(t) is an unbiased estimator of |J| (§6.1). Mean and variance are
// tracked with Welford's algorithm so the estimate updates in O(1) per
// walk, matching the paper's real-time update rule.
type JoinEstimate struct {
	J       *join.Join
	walker  *joinsample.Walker
	n       int
	mean    float64
	m2      float64
	samples []Sample
	traj    []TrajectoryPoint
}

// TrajectoryPoint is one sampled point of a join estimate's
// convergence, recorded every trajectoryStride observations: the
// planner reads the trajectory to distinguish an estimate that is
// converging from one stuck at high variance.
type TrajectoryPoint struct {
	Walks    int
	Size     float64
	Variance float64
}

// HalfWidth evaluates the point's z·σ/√n confidence half-width.
func (p TrajectoryPoint) HalfWidth(z float64) float64 {
	if p.Walks == 0 {
		return math.Inf(1)
	}
	return z * math.Sqrt(p.Variance) / math.Sqrt(float64(p.Walks))
}

// trajectoryStride spaces trajectory recording so the hot Observe path
// pays one modulo per observation and the trajectory stays small.
const trajectoryStride = 16

// NewJoinEstimate prepares an empty estimate for j.
func NewJoinEstimate(j *join.Join) *JoinEstimate {
	return &JoinEstimate{J: j, walker: joinsample.NewWalker(j)}
}

// Step performs one wander-join walk and folds it into the estimate.
// It returns the walk's sample when successful.
func (e *JoinEstimate) Step(g *rng.RNG) (Sample, bool) {
	t, p, ok := e.walker.Walk(g)
	if !ok {
		e.Observe(0)
		return Sample{}, false
	}
	s := Sample{Tuple: t, P: p}
	e.samples = append(e.samples, s)
	e.Observe(1 / p)
	return s, true
}

// Observe folds one Horvitz–Thompson observation (1/p for a successful
// walk, 0 for a failed one) into the running mean and variance. The
// online sampler calls it directly when it reuses its own draws to
// refine parameters (§7).
func (e *JoinEstimate) Observe(invP float64) {
	e.n++
	d := invP - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (invP - e.mean)
	if e.n%trajectoryStride == 0 {
		e.traj = append(e.traj, TrajectoryPoint{Walks: e.n, Size: e.mean, Variance: e.Variance()})
	}
}

// Trajectory returns the recorded convergence points (oldest first).
// The slice is owned by the estimate; callers must not mutate it.
func (e *JoinEstimate) Trajectory() []TrajectoryPoint { return e.traj }

// RelHalfWidth is the confidence half-width relative to the size
// estimate — the planner's convergence signal. It is +Inf before any
// walk and when the size estimate is zero.
func (e *JoinEstimate) RelHalfWidth(z float64) float64 {
	if e.n == 0 || e.mean <= 0 {
		return math.Inf(1)
	}
	return e.HalfWidth(z) / e.mean
}

// Walks reports the number of observations folded in so far.
func (e *JoinEstimate) Walks() int { return e.n }

// Size returns the current |J| estimate (0 before any walk).
func (e *JoinEstimate) Size() float64 { return e.mean }

// Variance returns the sample variance of the HT observations — the
// T_{n,2} term of §6.2's variance expression.
func (e *JoinEstimate) Variance() float64 {
	if e.n < 2 {
		return 0
	}
	return e.m2 / float64(e.n-1)
}

// HalfWidth returns the z·σ/√n confidence half-width of the size
// estimate (§6.1).
func (e *JoinEstimate) HalfWidth(z float64) float64 {
	if e.n == 0 {
		return math.Inf(1)
	}
	return z * math.Sqrt(e.Variance()) / math.Sqrt(float64(e.n))
}

// Samples returns the retained successful walks. The slice is shared:
// the online sampler consumes it as the reuse pool.
func (e *JoinEstimate) Samples() []Sample { return e.samples }

// TakeSample removes and returns the sample at index i (order is not
// preserved): sample reuse is without replacement (§7).
func (e *JoinEstimate) TakeSample(i int) Sample {
	s := e.samples[i]
	last := len(e.samples) - 1
	e.samples[i] = e.samples[last]
	e.samples = e.samples[:last]
	return s
}

// Options tune the warm-up phase.
type Options struct {
	// MaxWalks caps walks per join (paper: 1,000). Values <= 0 default
	// to 1000.
	MaxWalks int
	// Z is the confidence multiplier (paper's 90% level: 1.645). Values
	// <= 0 default to 1.645.
	Z float64
	// TargetRel stops walking a join early once the confidence
	// half-width falls below TargetRel × size estimate. Values <= 0
	// default to 0.1.
	TargetRel float64
	// MinWalks floors the walk count before the early-stop test.
	// Values <= 0 default to 64.
	MinWalks int
}

func (o Options) withDefaults() Options {
	if o.MaxWalks <= 0 {
		o.MaxWalks = 1000
	}
	if o.Z <= 0 {
		o.Z = 1.645
	}
	if o.TargetRel <= 0 {
		o.TargetRel = 0.1
	}
	if o.MinWalks <= 0 {
		o.MinWalks = 64
	}
	return o
}

// Estimator runs the warm-up phase for a union of joins and produces
// the overlap table. Overlap statistics are accumulated incrementally
// as walks happen (a per-join map from membership bitmask to summed
// 1/p weight), so they survive the online sampler consuming the reuse
// pool.
type Estimator struct {
	joins   []*join.Join
	ests    []*JoinEstimate
	opts    Options
	wByMask []map[uint]float64 // per join: membership mask -> Σ 1/p
	wAll    []float64          // per join: Σ 1/p over successful walks

	// probes[j][i] tests a join-j walk tuple against join i without
	// re-deriving the schema alignment per walk (nil when i == j or the
	// schemas are not alignable, which counts as not contained — the
	// same answer ContainsAligned gives). Immutable, shared by clones.
	probes [][]*join.AlignedProbe
}

// New prepares a random-walk estimator over the joins.
func New(joins []*join.Join, opts Options) (*Estimator, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("walkest: no joins")
	}
	e := &Estimator{joins: joins, opts: opts.withDefaults()}
	for _, j := range joins {
		e.ests = append(e.ests, NewJoinEstimate(j))
		e.wByMask = append(e.wByMask, make(map[uint]float64))
		e.wAll = append(e.wAll, 0)
	}
	e.probes = make([][]*join.AlignedProbe, len(joins))
	for j, src := range joins {
		e.probes[j] = make([]*join.AlignedProbe, len(joins))
		for i, other := range joins {
			if i == j {
				continue
			}
			if p, ok := other.AlignProbe(src.OutputSchema()); ok {
				e.probes[j][i] = &p
			}
		}
	}
	return e, nil
}

// JoinEstimates exposes the per-join estimates (for sample reuse and
// for the online sampler's refinement loop).
func (e *Estimator) JoinEstimates() []*JoinEstimate { return e.ests }

// clone returns an independent copy of the estimate: the running
// moments by value, the sample pool by slice copy (tuples themselves
// are immutable and shared), and the stateless walker by reference.
func (e *JoinEstimate) clone() *JoinEstimate {
	c := *e
	c.samples = append([]Sample(nil), e.samples...)
	c.traj = append([]TrajectoryPoint(nil), e.traj...)
	return &c
}

// DropSamples empties every reuse pool, keeping the size estimates and
// overlap counters. Prepared sessions drop the pool from each run's
// clone: sharing warm-up tuples across runs would correlate streams
// that are documented as independent.
func (e *Estimator) DropSamples() {
	for _, je := range e.ests {
		je.samples = nil
	}
}

// Clone returns an independent deep copy of the estimator's mutable
// state: per-join estimates, reuse pools, and overlap counters. The
// online sampler clones a shared warm-up estimator per run, so
// concurrent runs consume their own pools and refine their own
// estimates without synchronization. Retained sample tuples are shared
// read-only.
func (e *Estimator) Clone() *Estimator {
	c := &Estimator{
		joins:   e.joins,
		opts:    e.opts,
		ests:    make([]*JoinEstimate, len(e.ests)),
		wByMask: make([]map[uint]float64, len(e.wByMask)),
		wAll:    append([]float64(nil), e.wAll...),
		probes:  e.probes,
	}
	for i, je := range e.ests {
		c.ests[i] = je.clone()
		m := make(map[uint]float64, len(e.wByMask[i]))
		for mask, w := range e.wByMask[i] {
			m[mask] = w
		}
		c.wByMask[i] = m
	}
	return c
}

// Reset discards join j's estimate, overlap counters, and reuse pool —
// its walks observed a join whose data has since mutated. Other joins'
// state is untouched, which is what lets a session refresh re-walk only
// the dirty joins.
func (e *Estimator) Reset(j int) {
	e.ests[j] = NewJoinEstimate(e.joins[j])
	e.wByMask[j] = make(map[uint]float64)
	e.wAll[j] = 0
}

// StepJoin performs one walk of join j, folding the result into both
// the size estimate and the overlap counters (§6.2's containment check
// against every other join's index).
func (e *Estimator) StepJoin(j int, g *rng.RNG) (Sample, bool) {
	s, ok := e.ests[j].Step(g)
	if !ok {
		return Sample{}, false
	}
	mask := uint(1) << uint(j)
	for i, p := range e.probes[j] {
		if p != nil && p.Contains(s.Tuple) {
			mask |= 1 << uint(i)
		}
	}
	w := 1 / s.P
	e.wByMask[j][mask] += w
	e.wAll[j] += w
	return s, true
}

// Warmup walks every join until its size confidence target is met or
// the walk budget runs out (§6.1's termination rule).
func (e *Estimator) Warmup(g *rng.RNG) {
	for j := range e.ests {
		e.WarmupJoin(j, e.opts.MaxWalks, g)
	}
}

// WarmupJoin walks join j until its size confidence target is met or
// the given budget runs out — the per-join entry point an adaptive
// plan uses to spend different budgets on different joins.
func (e *Estimator) WarmupJoin(j, budget int, g *rng.RNG) {
	je := e.ests[j]
	for je.Walks() < budget {
		e.StepJoin(j, g)
		if je.Walks() >= e.opts.MinWalks &&
			je.Size() > 0 &&
			je.HalfWidth(e.opts.Z) < e.opts.TargetRel*je.Size() {
			break
		}
	}
}

// Z returns the estimator's (defaulted) confidence multiplier, so
// callers evaluate half-widths at the same level the warm-up did.
func (e *Estimator) Z() float64 { return e.opts.Z }

// Table assembles the overlap table from the warm-up state: singleton
// sizes from the HT estimates, each subset Δ from the §6.2 rule
// |O_Δ| = |J_j| · (Σ_{t ∈ S_j ∩ all} 1/p(t)) / (Σ_{t ∈ S_j} 1/p(t))
// anchored at the subset's smallest join index.
func (e *Estimator) Table() (*overlap.Table, error) {
	return e.TableWithSizes(nil)
}

// TableWithSizes is Table with per-join size overrides: sizes[j] >= 0
// replaces join j's HT singleton estimate (an exact count an adaptive
// plan escalated to), and the join's overlap estimates rescale with it
// — the walk samples still supply the contained fractions, the
// override supplies the scale. Pass nil (or -1 entries) to keep the
// walk estimates.
func (e *Estimator) TableWithSizes(sizes []float64) (*overlap.Table, error) {
	t, err := overlap.NewTable(len(e.joins))
	if err != nil {
		return nil, err
	}
	size := func(j int) float64 {
		if j < len(sizes) && sizes[j] >= 0 {
			return sizes[j]
		}
		return e.ests[j].Size()
	}
	for i := range e.ests {
		t.Set(1<<uint(i), size(i))
	}
	full := uint(1)<<uint(len(e.joins)) - 1
	for mask := uint(3); mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singleton
		}
		t.Set(mask, e.overlapEstimateSized(mask, size))
	}
	t.Normalize()
	return t, nil
}

// OverlapEstimate computes the §6.2 overlap estimate for the subset
// mask, anchoring on the smallest join index in the subset: the
// weighted fraction of the anchor's walk samples contained in every
// other join of the subset, scaled by the anchor's size estimate.
func (e *Estimator) OverlapEstimate(mask uint) float64 {
	return e.overlapEstimateSized(mask, func(j int) float64 { return e.ests[j].Size() })
}

// overlapEstimateSized is OverlapEstimate with the anchor size read
// through size, so escalated exact counts rescale overlaps too.
func (e *Estimator) overlapEstimateSized(mask uint, size func(int) float64) float64 {
	anchor := -1
	for i := range e.joins {
		if mask&(1<<uint(i)) != 0 {
			anchor = i
			break
		}
	}
	if anchor < 0 || e.wAll[anchor] == 0 {
		return 0
	}
	var wIn float64
	for m, w := range e.wByMask[anchor] {
		if m&mask == mask {
			wIn += w
		}
	}
	return size(anchor) * wIn / e.wAll[anchor]
}

// OverlapHalfWidth evaluates the Eq. 3 confidence half-width for the
// overlap of the subset mask: it combines the variance of the anchor's
// size estimate (T_{n,2}) with the binomial variance of the contained
// fraction p̂(1-p̂), assuming independence as the paper does.
func (e *Estimator) OverlapHalfWidth(mask uint, z float64) float64 {
	anchor := -1
	for i := range e.joins {
		if mask&(1<<uint(i)) != 0 {
			anchor = i
			break
		}
	}
	if anchor < 0 {
		return math.Inf(1)
	}
	je := e.ests[anchor]
	if je.n == 0 || je.Size() == 0 {
		return math.Inf(1)
	}
	est := e.OverlapEstimate(mask)
	pHat := est / je.Size()
	if pHat < 0 {
		pHat = 0
	}
	if pHat > 1 {
		pHat = 1
	}
	t2 := je.Variance()
	tn := je.Size()
	variance := t2*pHat*(1-pHat) + t2*pHat + tn*pHat*(1-pHat)
	return z * math.Sqrt(variance/float64(je.n))
}

// Confidence reports the smallest relative confidence achieved across
// the joins' size estimates: 1 - halfWidth/size, clamped to [0, 1]. The
// online sampler uses it as the γ of Algorithm 2.
func (e *Estimator) Confidence(z float64) float64 {
	worst := 1.0
	for _, je := range e.ests {
		if je.Size() <= 0 {
			return 0
		}
		c := 1 - je.HalfWidth(z)/je.Size()
		if c < 0 {
			c = 0
		}
		if c < worst {
			worst = c
		}
	}
	return worst
}
