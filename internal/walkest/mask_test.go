package walkest

import (
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// threeWayJoins builds three single-relation joins with a known
// overlap structure over tuple values 0..99:
//
//	J0: 0..59, J1: 30..89, J2: 50..99
//
// so every subset's overlap is a simple interval intersection.
func threeWayJoins(t *testing.T) []*join.Join {
	t.Helper()
	s := relation.NewSchema("V", "W")
	mk := func(name string, lo, hi int) *join.Join {
		r := relation.New(name+"_rel", s)
		for v := lo; v < hi; v++ {
			r.AppendValues(relation.Value(v), relation.Value(v*3))
		}
		j, err := join.NewChain(name, []*relation.Relation{r}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	return []*join.Join{mk("J0", 0, 60), mk("J1", 30, 90), mk("J2", 50, 100)}
}

func TestStepJoinMasks(t *testing.T) {
	joins := threeWayJoins(t)
	e, err := New(joins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(51)
	for i := 0; i < 4000; i++ {
		e.StepJoin(0, g)
	}
	// Every observed mask must include bit 0 and match the interval
	// structure: values < 30 -> 001; 30..49 -> 011; 50..59 -> 111.
	for mask, w := range e.wByMask[0] {
		if mask&1 == 0 {
			t.Fatalf("anchor bit missing from mask %b", mask)
		}
		if w <= 0 {
			t.Fatalf("non-positive weight for mask %b", mask)
		}
		switch mask {
		case 0b001, 0b011, 0b111:
		default:
			t.Fatalf("impossible membership mask %b for the fixture", mask)
		}
	}
	// Overlap estimates approximate interval sizes: |J0∩J1| = 30,
	// |J0∩J2| = 10, |J0∩J1∩J2| = 10.
	cases := []struct {
		mask uint
		want float64
	}{
		{0b011, 30}, {0b101, 10}, {0b111, 10},
	}
	for _, c := range cases {
		got := e.OverlapEstimate(c.mask)
		if math.Abs(got-c.want)/c.want > 0.2 {
			t.Errorf("overlap(%b) = %.1f, want ~%.0f", c.mask, got, c.want)
		}
	}
}

func TestOverlapEstimateAnchorsOnSmallest(t *testing.T) {
	joins := threeWayJoins(t)
	e, err := New(joins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only join 1 has walks: a mask {1,2} anchored at join 1 works, a
	// mask {0,1} anchored at join 0 has no observations yet.
	g := rng.New(52)
	for i := 0; i < 2000; i++ {
		e.StepJoin(1, g)
	}
	if got := e.OverlapEstimate(0b110); got <= 0 {
		t.Errorf("anchored-at-1 estimate = %f", got)
	}
	if got := e.OverlapEstimate(0b011); got != 0 {
		t.Errorf("estimate without anchor walks = %f, want 0", got)
	}
	if got := e.OverlapEstimate(0); got != 0 {
		t.Errorf("empty mask estimate = %f", got)
	}
}

func TestTableAgainstExactOnThreeWay(t *testing.T) {
	joins := threeWayJoins(t)
	// Single-relation walks have zero size variance, so the confidence
	// early-stop would fire at MinWalks; force the full budget so the
	// overlap fractions converge too.
	e, err := New(joins, Options{MaxWalks: 6000, TargetRel: 0.01, MinWalks: 6000})
	if err != nil {
		t.Fatal(err)
	}
	e.Warmup(rng.New(53))
	tab, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	exact, exactUnion, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	if exactUnion != 100 {
		t.Fatalf("fixture union = %d", exactUnion)
	}
	full := uint(0b111)
	for mask := uint(1); mask <= full; mask++ {
		want := exact.Get(mask)
		got := tab.Get(mask)
		if want == 0 {
			if got > 3 {
				t.Errorf("overlap(%b) = %.1f, want ~0", mask, got)
			}
			continue
		}
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("overlap(%b) = %.1f, want ~%.0f", mask, got, want)
		}
	}
	if u := tab.UnionSize(); math.Abs(u-100) > 8 {
		t.Errorf("union size = %.1f, want ~100", u)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxWalks != 1000 || o.Z != 1.645 || o.TargetRel != 0.1 || o.MinWalks != 64 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{MaxWalks: 5, Z: 2, TargetRel: 0.5, MinWalks: 2}.withDefaults()
	if o2.MaxWalks != 5 || o2.Z != 2 || o2.TargetRel != 0.5 || o2.MinWalks != 2 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}
