package core

import (
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

func TestOnlineSamplerProducesUnionSamples(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{WarmupWalks: 400, Phi: 100})
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	out, err := s.Sample(4000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4000 {
		t.Fatalf("got %d samples", len(out))
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("online sample %v not in union", tu)
		}
	}
}

func TestOnlineSamplerReusesWarmupSamples(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{WarmupWalks: 500, Phi: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(2000, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ReuseAccepted == 0 {
		t.Error("warm-up pool never reused")
	}
	if st.ReuseTime <= 0 {
		t.Error("reuse time not recorded")
	}
}

func TestOnlineSamplerNoWarmup(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{WarmupWalks: 0, Phi: 50})
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	out, err := s.Sample(2000, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("no-warmup sample %v not in union", tu)
		}
	}
	// Without warm-up the histogram initialization is in effect and all
	// draws are fresh walks.
	if s.Stats().ReuseAccepted != 0 {
		t.Errorf("reuse without a warm-up pool: %d", s.Stats().ReuseAccepted)
	}
	if s.Stats().Backtracks == 0 {
		t.Error("no parameter updates happened")
	}
}

func TestOnlineSamplerBacktracking(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{
		WarmupWalks: 0,
		Phi:         25,
		Gamma:       0.999, // keep updating so backtracks keep firing
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(3000, rng.New(14)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Backtracks < 2 {
		t.Errorf("backtracks = %d, want several", st.Backtracks)
	}
	if s.Confidence() <= 0 {
		t.Errorf("confidence = %f", s.Confidence())
	}
}

func TestOnlineSamplerApproxUniform(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{
		WarmupWalks: 2000,
		Phi:         500,
		Oracle:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Online estimates converge but are never exact: wide slack, the
	// bias being exactly what the paper's ratio-error experiments
	// quantify.
	checkUniformUnion(t, joins, 30000, 8, s.Sample, rng.New(15))
}

func TestOnlineSamplerPhaseCosts(t *testing.T) {
	joins := fixtureJoins(t)
	// 800 warm-up walks per join: the reuse pool serves the early draws
	// and drains well before 6000 samples, so both phases run.
	s, err := NewOnlineSampler(joins, OnlineConfig{WarmupWalks: 800, Phi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(6000, rng.New(16)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ReuseAccepted == 0 || st.Accepted <= st.ReuseAccepted {
		t.Fatalf("phases not both exercised: %+v", st)
	}
	if st.ReuseTime <= 0 || st.RegularTime <= 0 {
		t.Errorf("per-phase times: reuse %v regular %v", st.ReuseTime, st.RegularTime)
	}
}

func TestOnlineSamplerInstances(t *testing.T) {
	s := &OnlineSampler{}
	g := rng.New(17)
	if got := s.instances(0, g); got != 0 {
		t.Errorf("instances(0) = %d", got)
	}
	if got := s.instances(-1, g); got != 0 {
		t.Errorf("instances(-1) = %d", got)
	}
	if got := s.instances(3, g); got != 3 {
		t.Errorf("instances(3) = %d", got)
	}
	// Fractional ratios keep expectation: mean of instances(0.5) ≈ 0.5.
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.instances(0.5, g)
	}
	mean := float64(sum) / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("E[instances(0.5)] = %f", mean)
	}
	// Mixed integer+fraction: E[instances(2.25)] ≈ 2.25.
	sum = 0
	for i := 0; i < n; i++ {
		sum += s.instances(2.25, g)
	}
	mean = float64(sum) / n
	if mean < 2.15 || mean > 2.35 {
		t.Errorf("E[instances(2.25)] = %f", mean)
	}
}

func TestStatsString(t *testing.T) {
	var st Stats
	if st.String() == "" {
		t.Error("empty Stats renders empty string")
	}
	if st.PerAcceptedReuse() != 0 || st.PerAcceptedRegular() != 0 {
		t.Error("per-phase cost of empty stats nonzero")
	}
}
