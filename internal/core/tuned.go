package core

import (
	"sampleunion/internal/join"
	"sampleunion/internal/joinsample"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
	"sampleunion/internal/walkest"
)

// This file wires the adaptive planner (internal/tune) into the
// prepared samplers. The division of labor: tune.Build is a pure
// function from observed statistics to a Plan; this file gathers those
// statistics from a warm-up (sizes and cover shares from Params,
// variance trajectories from the walk estimator, structural facts from
// the joins) and applies the resulting decisions (per-join subroutine
// configs, exact-count escalation, walk-budget escalation, the batch
// slice cap).
//
// Determinism: every input to the plan derives from the seeded warm-up
// stream plus draw counters the controller folded in at the previous
// re-plan boundary, so for a fixed seed, data, and call history the
// plan — and therefore the sampler behavior — is reproducible. Plans
// change only at Prepare/Refresh boundaries, never mid-stream.

// gatherTuneStats assembles the planner inputs for a union from a
// completed warm-up. walker carries per-join walk trajectories when
// the warm-up was walk-based (nil otherwise); exact marks the sizes as
// ground truth (the exact estimator), which suppresses escalation.
func gatherTuneStats(joins []*join.Join, params *Params, walker *walkest.Estimator, exact bool) []tune.JoinStats {
	stats := make([]tune.JoinStats, len(joins))
	for i, j := range joins {
		st := tune.JoinStats{
			Size:       params.JoinSizes[i],
			OlkenBound: j.OlkenBound(),
			Cyclic:     j.IsCyclic(),
			Exact:      exact,
		}
		if params.UnionSize > 0 {
			st.Share = params.Cover[i] / params.UnionSize
		}
		for _, n := range j.Nodes() {
			st.Rows += int64(n.Rel.Len())
		}
		if walker != nil {
			je := walker.JoinEstimates()[i]
			st.Walks = je.Walks()
			st.RelHalfWidth = je.RelHalfWidth(walker.Z())
		}
		stats[i] = st
	}
	return stats
}

// planJoinConfigs translates a plan's per-join decisions into the
// union base's subroutine configs.
func planJoinConfigs(p *tune.Plan) []joinConfig {
	cfgs := make([]joinConfig, len(p.Joins))
	for i, jp := range p.Joins {
		cfgs[i] = joinConfig{method: JoinMethod(jp.Method), aliasMin: jp.AliasThreshold}
	}
	return cfgs
}

// applyPlanEstimates applies a plan's estimation escalations against a
// walk-based warm-up and returns the (possibly rebuilt) parameters
// plus the per-join exact-size overrides that produced them (nil when
// nothing escalated):
//
//   - joins flagged Exact get an exact skeleton count (linear on tree
//     joins, via the EW weight pass) overriding their HT size
//     estimate, with their overlap estimates rescaled to match
//     (walkest.TableWithSizes);
//   - joins whose walk budget grew walk until the new budget (or
//     convergence) is reached, refining the estimate in place.
//
// With a nil walker (histogram or exact warm-up) there is no walk
// state to escalate from and params pass through unchanged.
func applyPlanEstimates(base *unionBase, p *tune.Plan, params *Params, walker *walkest.Estimator, g *rng.RNG) (*Params, []float64, error) {
	if walker == nil {
		return params, nil, nil
	}
	rebuild := false
	var sizes []float64
	for i, jp := range p.Joins {
		if jp.WalkBudget > walker.JoinEstimates()[i].Walks() {
			walker.WarmupJoin(i, jp.WalkBudget, g)
			rebuild = true
		}
		if !jp.Exact {
			continue
		}
		if sizes == nil {
			sizes = make([]float64, len(p.Joins))
			for k := range sizes {
				sizes[k] = -1
			}
		}
		// The EW weight pass computes the exact skeleton count as a
		// byproduct; when the plan also samples this join with EW, the
		// sampler built here is kept, so escalation costs nothing extra.
		ew := joinsample.NewEWAlias(base.joins[i], jp.AliasThreshold)
		sizes[i] = float64(ew.ExactCount())
		if jp.Method == tune.MethodEW {
			base.cfgs[i] = joinConfig{method: MethodEW, aliasMin: jp.AliasThreshold}
			base.samplers[i] = ew
		}
		rebuild = true
	}
	if !rebuild {
		return params, sizes, nil
	}
	t, err := walker.TableWithSizes(sizes)
	if err != nil {
		return nil, nil, err
	}
	return ParamsFromTable(t), sizes, nil
}

// tuneWalker extracts the retained walk estimator from a warm-up
// estimator, when it has one.
func tuneWalker(est Estimator) *walkest.Estimator {
	if rw, ok := est.(*RandomWalkEstimator); ok {
		return rw.Walker
	}
	return nil
}

// Tuners returns the adaptive controllers driving a prepared sampler:
// a single controller for the cover and online engines, one per
// non-empty shard for the sharded engine, nil when the sampler is not
// adaptive. The session layer uses it to query pending re-plans and to
// report tuner decisions without holding controller references across
// refresh-time rebuilds.
func Tuners(p PreparedSampler) []*tune.Controller {
	switch v := p.(type) {
	case *CoverShared:
		if v.cfg.Tuner != nil {
			return []*tune.Controller{v.cfg.Tuner}
		}
	case *OnlineShared:
		if v.cfg.Tuner != nil {
			return []*tune.Controller{v.cfg.Tuner}
		}
	case *ShardedShared:
		var out []*tune.Controller
		for _, ps := range v.perShard {
			if ps == nil {
				continue
			}
			out = append(out, Tuners(ps)...)
		}
		return out
	}
	return nil
}

// ObserveRun feeds one run's per-join draw counters into a controller
// as rejection feedback, relative to a previously reported snapshot
// (so repeated Stats reads do not double-count). It returns the new
// snapshot to report against next time.
func ObserveRun(c *tune.Controller, cur, prev []JoinBreakdown) []JoinBreakdown {
	if c == nil {
		return prev
	}
	for j, jb := range cur {
		d, r := int64(jb.Draws), int64(jb.Rejected)
		if j < len(prev) {
			d -= int64(prev[j].Draws)
			r -= int64(prev[j].Rejected)
		}
		c.ObserveDraws(j, d, r)
	}
	return append([]JoinBreakdown(nil), cur...)
}
