// Package core implements the paper's primary contribution: the union
// sampling framework of §3 and §7. It contains the disjoint-union
// sampler (Definition 1), the Bernoulli set-union sampler (the union
// trick of §3), the non-Bernoulli cover sampler (Algorithm 1), and the
// online union sampler with sample reuse and backtracking (Algorithm 2).
// Warm-up parameters come from pluggable estimators: histogram-based
// (§5), random-walk (§6), or exact full-join ground truth (§9's
// FullJoinUnion baseline).
package core

import (
	"fmt"

	"sampleunion/internal/histest"
	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/rng"
	"sampleunion/internal/walkest"
)

// Params are the framework parameters the warm-up phase produces: the
// overlap table and everything Algorithm 1 derives from it.
type Params struct {
	Table     *overlap.Table
	JoinSizes []float64 // |J_j| (or its instantiation-specific bound)
	Cover     []float64 // |J'_j| per §3.1's cover
	UnionSize float64   // |U| per Eq. 1
}

// ParamsFromTable derives cover sizes and the union size from an
// overlap table.
func ParamsFromTable(t *overlap.Table) *Params {
	p := &Params{Table: t}
	p.JoinSizes = make([]float64, t.N())
	for j := 0; j < t.N(); j++ {
		p.JoinSizes[j] = t.JoinSize(j)
	}
	p.Cover = t.CoverSizes()
	p.UnionSize = t.UnionSize()
	return p
}

// RatioError reports |est/|U|_est - truth/|U|_truth| for join j — the
// error metric of Fig 4a/4b and Fig 5a (the framework's probability
// distributions depend on this ratio, §9.1.1).
func (p *Params) RatioError(j int, truth *Params) float64 {
	if p.UnionSize == 0 || truth.UnionSize == 0 {
		return 1
	}
	est := p.JoinSizes[j] / p.UnionSize
	tru := truth.JoinSizes[j] / truth.UnionSize
	d := est - tru
	if d < 0 {
		d = -d
	}
	return d
}

// Estimator is the pluggable warm-up: anything that can produce Params
// for a union of joins.
type Estimator interface {
	// Name identifies the instantiation ("histogram", "random-walk",
	// "exact").
	Name() string
	// Params runs the warm-up and returns framework parameters.
	Params(g *rng.RNG) (*Params, error)
}

// HistogramEstimator adapts histest (§5) to the framework: statistics
// only, no data access, near-zero setup cost.
type HistogramEstimator struct {
	Joins []*join.Join
	Opts  histest.Options
}

// Name implements Estimator.
func (h *HistogramEstimator) Name() string { return "histogram" }

// Params implements Estimator.
func (h *HistogramEstimator) Params(*rng.RNG) (*Params, error) {
	est, err := histest.New(h.Joins, h.Opts)
	if err != nil {
		return nil, err
	}
	t, err := est.Estimate()
	if err != nil {
		return nil, err
	}
	return ParamsFromTable(t), nil
}

// RandomWalkEstimator adapts walkest (§6): warm-up walks buy accurate
// parameters and seed the reuse pool of Algorithm 2.
type RandomWalkEstimator struct {
	Joins []*join.Join
	Opts  walkest.Options

	// Walker is populated by Params and retained so the online sampler
	// can reuse warm-up samples and keep refining estimates.
	Walker *walkest.Estimator
}

// Name implements Estimator.
func (r *RandomWalkEstimator) Name() string { return "random-walk" }

// Params implements Estimator.
func (r *RandomWalkEstimator) Params(g *rng.RNG) (*Params, error) {
	est, err := walkest.New(r.Joins, r.Opts)
	if err != nil {
		return nil, err
	}
	est.Warmup(g)
	r.Walker = est
	t, err := est.Table()
	if err != nil {
		return nil, err
	}
	return ParamsFromTable(t), nil
}

// ExactEstimator computes exact parameters by executing every join —
// the FullJoinUnion ground truth (§9). Exponentially expensive; only
// for validation and small scales.
type ExactEstimator struct {
	Joins []*join.Join
}

// Name implements Estimator.
func (e *ExactEstimator) Name() string { return "exact" }

// Params implements Estimator.
func (e *ExactEstimator) Params(*rng.RNG) (*Params, error) {
	t, _, err := overlap.Exact(e.Joins)
	if err != nil {
		return nil, err
	}
	return ParamsFromTable(t), nil
}

// validateUnion checks the joins form a well-defined union query.
func validateUnion(joins []*join.Join) error {
	if len(joins) == 0 {
		return fmt.Errorf("core: no joins")
	}
	ref := joins[0].OutputSchema()
	for _, j := range joins[1:] {
		s := j.OutputSchema()
		if s.Len() != ref.Len() {
			return fmt.Errorf("core: join %s output arity %d, want %d", j.Name(), s.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if !s.Has(ref.Attr(i)) {
				return fmt.Errorf("core: join %s lacks output attribute %q", j.Name(), ref.Attr(i))
			}
		}
	}
	return nil
}
