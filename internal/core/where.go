package core

import (
	"fmt"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// UnionSampler is any of the package's set-union samplers: it draws n
// tuples (with replacement) in a fixed output schema order.
type UnionSampler interface {
	Sample(n int, g *rng.RNG) ([]relation.Tuple, error)
	Stats() *Stats
}

// SampleWhere implements the second alternative of §8.3: enforce a
// selection predicate during sampling by rejecting non-matching
// samples. Conditioning a uniform stream on the predicate leaves it
// uniform over the satisfying subset, so no parameter adjustment is
// needed — at the cost of an extra rejection factor of
// |σ(U)|/|U|, which is why the paper recommends this path only for
// predicates that are not very selective (push selective ones down to
// the relations instead, join.PushDown).
//
// maxDraws caps the total draws (0 means 1000·n) so that a predicate
// with empty support fails cleanly instead of looping forever.
func SampleWhere(s UnionSampler, schema *relation.Schema, pred relation.Predicate, n int, g *rng.RNG, maxDraws int) ([]relation.Tuple, error) {
	if maxDraws <= 0 {
		maxDraws = 1000 * n
	}
	out := make([]relation.Tuple, 0, n)
	drawn := 0
	const batch = 64
	for len(out) < n {
		if drawn >= maxDraws {
			return nil, fmt.Errorf("core: predicate %s matched %d of %d samples; selectivity too low for sampling-time enforcement (push the predicate down instead)",
				pred, len(out), drawn)
		}
		want := batch
		if remaining := maxDraws - drawn; want > remaining {
			want = remaining
		}
		tuples, err := s.Sample(want, g)
		if err != nil {
			return nil, err
		}
		drawn += len(tuples)
		for _, t := range tuples {
			if pred.Eval(t, schema) {
				out = append(out, t)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out, nil
}
