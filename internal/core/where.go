package core

import (
	"fmt"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// UnionSampler is any of the package's set-union samplers: it draws n
// tuples (with replacement) in a fixed output schema order.
type UnionSampler interface {
	Sample(n int, g *rng.RNG) ([]relation.Tuple, error)
	Stats() *Stats
}

// SampleWhere implements the second alternative of §8.3: enforce a
// selection predicate during sampling by rejecting non-matching
// samples. Conditioning a uniform stream on the predicate leaves it
// uniform over the satisfying subset, so no parameter adjustment is
// needed — at the cost of an extra rejection factor of
// |σ(U)|/|U|, which is why the paper recommends this path only for
// predicates that are not very selective (push selective ones down to
// the relations instead, join.PushDown).
//
// maxDraws caps the total draws (0 means 1000·n) so that a predicate
// with empty support fails cleanly instead of looping forever.
func SampleWhere(s UnionSampler, schema *relation.Schema, pred relation.Predicate, n int, g *rng.RNG, maxDraws int) ([]relation.Tuple, error) {
	return sampleWhereLoop(s.Sample, schema, pred, n, g, maxDraws, func(int) int { return whereChunk })
}

// whereChunk is the draw-request granularity of the predicate
// rejection loops: the sequential path always asks for whereChunk
// candidates at a time (pinned — seeded `where` streams depend on it),
// the batch path for at least that many.
const whereChunk = 64

// sampleWhereLoop is the shared predicate rejection loop behind
// SampleWhere and SampleWhereBatch: draw candidates through draw in
// chunk-sized requests, keep the ones satisfying the predicate, fail
// cleanly once maxDraws candidates were spent. chunk picks the request
// size from the number of tuples still needed; the result is capped to
// the remaining draw budget either way.
func sampleWhereLoop(draw func(n int, g *rng.RNG) ([]relation.Tuple, error), schema *relation.Schema, pred relation.Predicate, n int, g *rng.RNG, maxDraws int, chunk func(need int) int) ([]relation.Tuple, error) {
	if maxDraws <= 0 {
		maxDraws = 1000 * n
	}
	out := make([]relation.Tuple, 0, n)
	drawn := 0
	for len(out) < n {
		if drawn >= maxDraws {
			return nil, fmt.Errorf("core: predicate %s matched %d of %d samples; selectivity too low for sampling-time enforcement (push the predicate down instead)",
				pred, len(out), drawn)
		}
		want := chunk(n - len(out))
		if remaining := maxDraws - drawn; want > remaining {
			want = remaining
		}
		tuples, err := draw(want, g)
		if err != nil {
			return nil, err
		}
		drawn += len(tuples)
		for _, t := range tuples {
			if pred.Eval(t, schema) {
				out = append(out, t)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out, nil
}
