package core

import (
	"fmt"
	"time"
)

// Stats instruments a sampling run: the counters and time breakdown
// behind Fig 5f–5h (estimation vs accepted vs rejected time) and
// Fig 6b (per-sample cost of the reuse phase vs the regular phase).
type Stats struct {
	// Accepted counts tuples added to the result.
	Accepted int
	// RejectedDup counts set-union rejections: the tuple's value was
	// assigned to an earlier join (line 8 of Algorithm 1).
	RejectedDup int
	// Revised counts revisions: a value reassigned to an earlier join,
	// its copies removed from the result (lines 10-12 of Algorithm 1).
	Revised int
	// RevisedRemoved counts result tuples dropped by revisions.
	RevisedRemoved int
	// JoinRejects counts join-subroutine rejections (EO accept/reject,
	// dangling walks).
	JoinRejects int
	// ReuseAccepted / ReuseRejected count reuse-pool draws (Algorithm 2).
	ReuseAccepted int
	ReuseRejected int
	// Backtracks counts parameter-update rounds; BacktrackDropped the
	// result tuples removed by backtracking (§7).
	Backtracks       int
	BacktrackDropped int
	// TotalDraws counts every call into a join subroutine — the cost
	// unit of Theorem 2.
	TotalDraws int

	// WarmupTime is spent estimating parameters; AcceptTime is spent on
	// draws that ended accepted; RejectTime on draws that ended
	// rejected. ReuseTime/RegularTime hold the total time (accepted and
	// rejected attempts) of the reuse and regular phases of the online
	// sampler, so PerAcceptedReuse/PerAcceptedRegular reproduce the
	// paper's Fig 6b per-phase cost metric.
	WarmupTime  time.Duration
	AcceptTime  time.Duration
	RejectTime  time.Duration
	ReuseTime   time.Duration
	RegularTime time.Duration
}

// PerAcceptedReuse returns the average time to produce one accepted
// sample in the reuse phase (Fig 6b); zero when the phase was unused.
func (s *Stats) PerAcceptedReuse() time.Duration {
	if s.ReuseAccepted == 0 {
		return 0
	}
	return s.ReuseTime / time.Duration(s.ReuseAccepted)
}

// PerAcceptedRegular returns the average time per accepted sample in
// the regular phase (Fig 6b).
func (s *Stats) PerAcceptedRegular() time.Duration {
	regular := s.Accepted - s.ReuseAccepted
	if regular <= 0 {
		return 0
	}
	return s.RegularTime / time.Duration(regular)
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"accepted=%d dupRejected=%d revised=%d joinRejects=%d reuse=%d/%d backtracks=%d draws=%d warmup=%v accept=%v reject=%v",
		s.Accepted, s.RejectedDup, s.Revised, s.JoinRejects,
		s.ReuseAccepted, s.ReuseAccepted+s.ReuseRejected,
		s.Backtracks, s.TotalDraws, s.WarmupTime, s.AcceptTime, s.RejectTime)
}
