package core

import (
	"fmt"
	"time"
)

// Stats instruments a sampling run: the counters and time breakdown
// behind Fig 5f–5h (estimation vs accepted vs rejected time) and
// Fig 6b (per-sample cost of the reuse phase vs the regular phase).
type Stats struct {
	// Accepted counts tuples added to the result.
	Accepted int
	// RejectedDup counts set-union rejections: the tuple's value was
	// assigned to an earlier join (line 8 of Algorithm 1).
	RejectedDup int
	// Revised counts revisions: a value reassigned to an earlier join,
	// its copies removed from the result (lines 10-12 of Algorithm 1).
	Revised int
	// RevisedRemoved counts result tuples dropped by revisions.
	RevisedRemoved int
	// JoinRejects counts join-subroutine rejections (EO accept/reject,
	// dangling walks).
	JoinRejects int
	// ReuseAccepted / ReuseRejected count reuse-pool draws (Algorithm 2).
	ReuseAccepted int
	ReuseRejected int
	// Backtracks counts parameter-update rounds; BacktrackDropped the
	// result tuples removed by backtracking (§7).
	Backtracks       int
	BacktrackDropped int
	// TotalDraws counts every call into a join subroutine — the cost
	// unit of Theorem 2.
	TotalDraws int

	// Joins breaks the draw-loop counters down per join (indexed like
	// the union): where the attempts went, which joins' subroutines
	// rejected them, and how converged each join's size estimate was.
	// The aggregate fields above remain authoritative; Joins slices the
	// subroutine-level activity so an adaptive controller (and callers
	// inspecting skew) can attribute rejection cost to the join causing
	// it. Union-level duplicate rejections (RejectedDup) are a property
	// of the overlap, not of a join's subroutine, and are not broken
	// down.
	Joins []JoinBreakdown

	// WarmupTime is spent estimating parameters; AcceptTime is spent on
	// draws that ended accepted; RejectTime on draws that ended
	// rejected. ReuseTime/RegularTime hold the total time (accepted and
	// rejected attempts) of the reuse and regular phases of the online
	// sampler, so PerAcceptedReuse/PerAcceptedRegular reproduce the
	// paper's Fig 6b per-phase cost metric.
	WarmupTime  time.Duration
	AcceptTime  time.Duration
	RejectTime  time.Duration
	ReuseTime   time.Duration
	RegularTime time.Duration

	// TimingSampled, when true (the default for prepared runs), reports
	// that the time fields were collected by wall-clocking the first
	// TimingStride draw attempts exactly and afterwards only every
	// TimingStride-th one, scaled by the stride — keeping time.Now out
	// of the steady-state inner loop while short runs stay exact.
	// Counters are always exact; only the Duration fields are sampled
	// estimates. Opt into timing every draw with DetailedTiming on the
	// sampler config (Options.DetailedTiming in the public API).
	TimingSampled bool

	// ticks counts timing decisions (one per attempted draw, reuse
	// included), driving the sampling stride.
	ticks int
}

// JoinBreakdown is one join's slice of a run's draw-loop counters.
type JoinBreakdown struct {
	// Accepted counts tuples of this join added to the result
	// (instances, for the online sampler's multiplicity system).
	Accepted int
	// Rejected counts this join's subroutine rejections — its slice of
	// Stats.JoinRejects.
	Rejected int
	// Draws counts subroutine attempts routed at this join — its slice
	// of Stats.TotalDraws, plus reuse-pool draws in online mode.
	Draws int
	// WalkVariance is the join's size-estimate relative confidence
	// half-width (walkest.RelHalfWidth) as of the run's current walk
	// state: 0 when the estimate is exact or the mode runs no walks,
	// +Inf before any walk observed the join.
	WalkVariance float64
}

// initJoins sizes the per-join breakdown for a union of n joins,
// preserving any counts already accumulated.
func (s *Stats) initJoins(n int) {
	if len(s.Joins) < n {
		nj := make([]JoinBreakdown, n)
		copy(nj, s.Joins)
		s.Joins = nj
	}
}

// TimingStride is the wall-clock sampling period of coarse-grained
// timing: one timed draw per stride, scaled by the stride. A power of
// two keeps the modulo a mask.
const TimingStride = 64

// startDraw begins timing one draw attempt. Under detailed timing it
// always reads the clock with weight 1. Under sampled timing the first
// TimingStride attempts are each timed exactly (so short runs report
// real durations, not one cold attempt scaled by the stride); after
// the ramp only every TimingStride-th attempt reads the clock, with
// weight TimingStride, and the rest return weight 0 (caller skips both
// time.Now calls).
func (s *Stats) startDraw() (time.Time, time.Duration) {
	if !s.TimingSampled {
		return time.Now(), 1
	}
	s.ticks++
	if s.ticks <= TimingStride {
		return time.Now(), 1
	}
	if s.ticks&(TimingStride-1) == 1 {
		return time.Now(), TimingStride
	}
	return time.Time{}, 0
}

// sinceDraw converts a startDraw mark into the duration to book: zero
// for untimed attempts, scaled by the sampling weight otherwise.
func sinceDraw(start time.Time, weight time.Duration) time.Duration {
	if weight == 0 {
		return 0
	}
	return time.Since(start) * weight
}

// bookBatchTime attributes one batch call's elapsed wall time to the
// duration fields. The batch engines read the clock once per batch, so
// per-attempt attribution is unavailable; the elapsed time splits
// proportionally to the batch's attempt counts (before is the Stats
// snapshot taken when the batch started): AcceptTime vs RejectTime by
// accepted vs rejected attempts, ReuseTime vs RegularTime by reuse vs
// fresh attempts. Coarser than the sequential per-draw attribution but
// consistent with the documented field semantics; counters are always
// exact.
func (s *Stats) bookBatchTime(before *Stats, d time.Duration) {
	acc := s.Accepted - before.Accepted
	rej := (s.JoinRejects - before.JoinRejects) +
		(s.RejectedDup - before.RejectedDup) +
		(s.ReuseRejected - before.ReuseRejected)
	reuse := (s.ReuseAccepted - before.ReuseAccepted) +
		(s.ReuseRejected - before.ReuseRejected)
	total := acc + rej
	if total <= 0 {
		s.AcceptTime += d
		s.RegularTime += d
		return
	}
	share := func(part int) time.Duration {
		return time.Duration(float64(d) * float64(part) / float64(total))
	}
	s.AcceptTime += share(acc)
	s.RejectTime += share(rej)
	if reuse > total {
		reuse = total
	}
	s.ReuseTime += share(reuse)
	s.RegularTime += share(total - reuse)
}

// PerAcceptedReuse returns the average time to produce one accepted
// sample in the reuse phase (Fig 6b); zero when the phase was unused.
func (s *Stats) PerAcceptedReuse() time.Duration {
	if s.ReuseAccepted == 0 {
		return 0
	}
	return s.ReuseTime / time.Duration(s.ReuseAccepted)
}

// PerAcceptedRegular returns the average time per accepted sample in
// the regular phase (Fig 6b).
func (s *Stats) PerAcceptedRegular() time.Duration {
	regular := s.Accepted - s.ReuseAccepted
	if regular <= 0 {
		return 0
	}
	return s.RegularTime / time.Duration(regular)
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"accepted=%d dupRejected=%d revised=%d joinRejects=%d reuse=%d/%d backtracks=%d draws=%d warmup=%v accept=%v reject=%v",
		s.Accepted, s.RejectedDup, s.Revised, s.JoinRejects,
		s.ReuseAccepted, s.ReuseAccepted+s.ReuseRejected,
		s.Backtracks, s.TotalDraws, s.WarmupTime, s.AcceptTime, s.RejectTime)
}
