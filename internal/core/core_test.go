package core

import (
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// fixtureJoins builds three overlapping 2-relation chain joins. Keys
// 0..39 / 20..59 / 40..79 with every third key fanning out, so joins
// overlap pairwise and all sizes differ.
func fixtureJoins(t testing.TB) []*join.Join {
	t.Helper()
	sa := relation.NewSchema("K", "X")
	sb := relation.NewSchema("K", "Y")
	mk := func(name string, lo, hi int) *join.Join {
		a := relation.New(name+"_a", sa)
		b := relation.New(name+"_b", sb)
		for k := lo; k < hi; k++ {
			a.AppendValues(relation.Value(k), relation.Value(k*10))
			b.AppendValues(relation.Value(k), relation.Value(k*100))
			if k%3 == 0 {
				b.AppendValues(relation.Value(k), relation.Value(k*100+1))
			}
		}
		j, err := join.NewChain(name, []*relation.Relation{a, b}, []string{"K"})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	return []*join.Join{mk("J1", 0, 40), mk("J2", 20, 60), mk("J3", 40, 80)}
}

// unionIndex returns key -> index over the exact set union, aligned to
// the first join's schema.
func unionIndex(t testing.TB, joins []*join.Join) map[string]int {
	t.Helper()
	ref := joins[0].OutputSchema()
	idx := make(map[string]int)
	for _, j := range joins {
		perm, err := overlap.AlignPerm(ref, j.OutputSchema())
		if err != nil {
			t.Fatal(err)
		}
		buf := make(relation.Tuple, ref.Len())
		j.Enumerate(func(tu relation.Tuple) bool {
			for i, p := range perm {
				buf[i] = tu[p]
			}
			k := relation.TupleKey(buf)
			if _, ok := idx[k]; !ok {
				idx[k] = len(idx)
			}
			return true
		})
	}
	return idx
}

// chiSquare computes the statistic of counts against a uniform
// expectation.
func chiSquare(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// checkUniformUnion draws n samples via sample and checks uniformity
// over the exact set union. slack scales the chi-square limit: 1 for
// exact-parameter samplers, larger for estimated parameters.
func checkUniformUnion(t *testing.T, joins []*join.Join, n int, slack float64, sample func(int, *rng.RNG) ([]relation.Tuple, error), g *rng.RNG) {
	t.Helper()
	idx := unionIndex(t, joins)
	out, err := sample(n, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d samples, want %d", len(out), n)
	}
	counts := make([]int, len(idx))
	for _, tu := range out {
		i, ok := idx[relation.TupleKey(tu)]
		if !ok {
			t.Fatalf("sample %v is not in the union", tu)
		}
		counts[i]++
	}
	dof := float64(len(counts) - 1)
	limit := slack * (dof + 6*math.Sqrt(2*dof) + 6)
	if chi := chiSquare(counts, n); chi > limit {
		t.Errorf("chi2 = %.1f over %.0f dof exceeds limit %.1f", chi, dof, limit)
	}
}

func TestCoverSamplerUniformExactOracle(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkUniformUnion(t, joins, 60000, 1, s.Sample, rng.New(1))
}

func TestCoverSamplerUniformExactRecord(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic record mis-assigns values until they are re-drawn from
	// an earlier join; allow extra slack for those transients.
	checkUniformUnion(t, joins, 60000, 3, s.Sample, rng.New(2))
}

func TestCoverSamplerUniformEO(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEO,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkUniformUnion(t, joins, 60000, 1, s.Sample, rng.New(3))
}

func TestCoverSamplerRandomWalkParams(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &RandomWalkEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Estimated covers deviate from truth, so the output deviates from
	// uniform proportionally (this is exactly the ratio error the
	// paper's Fig 4/5a measures); allow generous slack.
	checkUniformUnion(t, joins, 40000, 8, s.Sample, rng.New(4))
	if s.Stats().Accepted < 40000 {
		t.Errorf("accepted = %d", s.Stats().Accepted)
	}
}

func TestCoverSamplerHistogramParamsProducesValidSamples(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEO,
		Estimator: &HistogramEstimator{Joins: joins},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	out, err := s.Sample(5000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, tu := range out {
		k := relation.TupleKey(tu)
		if _, ok := idx[k]; !ok {
			t.Fatalf("histogram-parameterized sample %v not in union", tu)
		}
		seen[k] = true
	}
	// Sanity: a decent share of the union shows up.
	if len(seen) < len(idx)/2 {
		t.Errorf("only %d of %d union values sampled", len(seen), len(idx))
	}
}

func TestCoverSamplerCostBound(t *testing.T) {
	// V2 (Theorem 2): total subroutine draws stay within a constant
	// factor of N + N log N for exact parameters.
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	if _, err := s.Sample(n, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	bound := 4 * (float64(n) + float64(n)*math.Log(float64(n)))
	if draws := float64(s.Stats().TotalDraws); draws > bound {
		t.Errorf("total draws %.0f exceed 4(N + N log N) = %.0f", draws, bound)
	}
}

func TestCoverSamplerRevisionsHappen(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(30000, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Revised == 0 {
		t.Error("no revisions on overlapping joins; record logic suspect")
	}
	if st.RejectedDup == 0 {
		t.Error("no duplicate rejections on overlapping joins")
	}
	if st.WarmupTime <= 0 || st.AcceptTime <= 0 {
		t.Errorf("time breakdown not recorded: %+v", st)
	}
}

func TestBernoulliSamplerUniform(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewBernoulliSampler(joins, BernoulliConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkUniformUnion(t, joins, 60000, 1, s.Sample, rng.New(8))
	if s.Stats().RejectedDup == 0 {
		t.Error("Bernoulli sampler never rejected a duplicate on overlapping joins")
	}
}

func TestDisjointSamplerUniform(t *testing.T) {
	joins := fixtureJoins(t)
	// Disjoint union: a value appearing in k joins must be sampled with
	// probability k/Σ|J_j|.
	ref := joins[0].OutputSchema()
	mult := make(map[string]int)
	var total int
	for _, j := range joins {
		perm, err := overlap.AlignPerm(ref, j.OutputSchema())
		if err != nil {
			t.Fatal(err)
		}
		buf := make(relation.Tuple, ref.Len())
		j.Enumerate(func(tu relation.Tuple) bool {
			for i, p := range perm {
				buf[i] = tu[p]
			}
			mult[relation.TupleKey(buf)]++
			total++
			return true
		})
	}
	for _, method := range []JoinMethod{MethodEW, MethodEO} {
		s, err := NewDisjointSampler(joins, method)
		if err != nil {
			t.Fatal(err)
		}
		const n = 60000
		out, err := s.Sample(n, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, tu := range out {
			k := relation.TupleKey(tu)
			if mult[k] == 0 {
				t.Fatalf("%s: sample outside the disjoint union", method)
			}
			counts[k]++
		}
		chi := 0.0
		cells := 0
		for k, m := range mult {
			expected := float64(n) * float64(m) / float64(total)
			d := float64(counts[k]) - expected
			chi += d * d / expected
			cells++
		}
		dof := float64(cells - 1)
		if limit := dof + 6*math.Sqrt(2*dof) + 6; chi > limit {
			t.Errorf("%s: disjoint chi2 = %.1f over %.0f dof (limit %.1f)", method, chi, dof, limit)
		}
	}
}

func TestValidateUnionErrors(t *testing.T) {
	joins := fixtureJoins(t)
	if err := validateUnion(nil); err == nil {
		t.Error("empty union accepted")
	}
	bad := relation.MustFromTuples("B", relation.NewSchema("Z"), []relation.Tuple{{1}})
	jb, err := join.NewChain("JB", []*relation.Relation{bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateUnion([]*join.Join{joins[0], jb}); err == nil {
		t.Error("mismatched output schemas accepted")
	}
	if _, err := NewCoverSampler(joins, CoverConfig{}); err == nil {
		t.Error("missing estimator accepted")
	}
	if _, err := NewBernoulliSampler(joins, BernoulliConfig{}); err == nil {
		t.Error("missing estimator accepted")
	}
}

func TestDisjointSamplerEmptyUnion(t *testing.T) {
	e := relation.New("E", relation.NewSchema("K"))
	je, err := join.NewChain("JE", []*relation.Relation{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDisjointSampler([]*join.Join{je}, MethodEW); err == nil {
		t.Error("empty union accepted by disjoint sampler")
	}
}

func TestParamsFromExactTable(t *testing.T) {
	joins := fixtureJoins(t)
	tab, exactUnion, err := overlap.Exact(joins)
	if err != nil {
		t.Fatal(err)
	}
	p := ParamsFromTable(tab)
	if math.Abs(p.UnionSize-float64(exactUnion)) > 1e-6 {
		t.Errorf("UnionSize = %f, want %d", p.UnionSize, exactUnion)
	}
	sum := 0.0
	for _, c := range p.Cover {
		sum += c
	}
	if math.Abs(sum-p.UnionSize) > 1e-6 {
		t.Errorf("cover sum %f != union %f", sum, p.UnionSize)
	}
	for j := range joins {
		if p.RatioError(j, p) != 0 {
			t.Errorf("self ratio error nonzero for join %d", j)
		}
	}
}

func TestEstimatorNames(t *testing.T) {
	joins := fixtureJoins(t)
	if (&HistogramEstimator{Joins: joins}).Name() != "histogram" {
		t.Error("histogram name")
	}
	if (&RandomWalkEstimator{Joins: joins}).Name() != "random-walk" {
		t.Error("random-walk name")
	}
	if (&ExactEstimator{Joins: joins}).Name() != "exact" {
		t.Error("exact name")
	}
}
