package core

import (
	"fmt"
	"time"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// CoverConfig configures the non-Bernoulli cover sampler (Algorithm 1).
type CoverConfig struct {
	// Method is the single-join subroutine (EW or EO).
	Method JoinMethod
	// Estimator supplies warm-up parameters; required. Its join-size
	// instantiation should match Method (EW sizes with MethodEW, EO
	// bounds with MethodEO) so that join-selection weights and the
	// subroutine's per-attempt normalization cancel; the public API's
	// Options wiring guarantees this pairing.
	Estimator Estimator
	// Oracle switches the value-to-join assignment from the dynamic
	// orig_join record (the paper's Algorithm 1, lines 8-13) to exact
	// membership tests f(u) = min{i : u ∈ J_i}. The oracle needs data
	// access but makes uniformity exact from the first sample; the
	// record converges to it as values are re-drawn.
	Oracle bool
	// MaxDrawsPerSelection caps subroutine draws per join selection
	// before reselecting a join (guards against a join whose cover
	// region is empty but whose estimated cover size is positive).
	// Values <= 0 default to 256.
	MaxDrawsPerSelection int
}

type resultEntry struct {
	key   string
	tuple relation.Tuple
}

// CoverSampler implements Algorithm 1: join selection proportional to
// cover sizes |J'_j|/|U|, uniform sampling inside the selected join
// with redraws until the draw lands in the join's cover region, and
// revision when a value turns out to belong to an earlier join.
//
// On the redraw semantics: Theorem 1's proof takes the probability of a
// value u given its cover join as 1/|J'_j|; redrawing within the
// selected join until acceptance is what realizes that conditional, so
// this implementation redraws within the join (counting every draw in
// Stats.TotalDraws, the Theorem 2 cost unit).
type CoverSampler struct {
	base    *unionBase
	cfg     CoverConfig
	params  *Params
	alias   *rng.Alias
	record  map[string]int
	result  []resultEntry
	stats   Stats
	warmed  bool
	maxDraw int
}

// NewCoverSampler builds an Algorithm 1 sampler over the joins.
func NewCoverSampler(joins []*join.Join, cfg CoverConfig) (*CoverSampler, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("core: CoverConfig.Estimator is required")
	}
	base, err := newUnionBase(joins, cfg.Method)
	if err != nil {
		return nil, err
	}
	maxDraw := cfg.MaxDrawsPerSelection
	if maxDraw <= 0 {
		maxDraw = 256
	}
	return &CoverSampler{
		base:    base,
		cfg:     cfg,
		record:  make(map[string]int),
		maxDraw: maxDraw,
	}, nil
}

// Warmup runs the estimator and prepares the join-selection
// distribution (line 1-2 of Algorithm 1). It is idempotent.
func (s *CoverSampler) Warmup(g *rng.RNG) error {
	if s.warmed {
		return nil
	}
	start := time.Now()
	p, err := s.cfg.Estimator.Params(g)
	if err != nil {
		return err
	}
	s.params = p
	s.alias = rng.NewAlias(p.Cover)
	s.stats.WarmupTime += time.Since(start)
	if s.alias == nil {
		return fmt.Errorf("core: estimated cover is all-zero; union appears empty")
	}
	s.warmed = true
	return nil
}

// Params returns the warm-up parameters (nil before Warmup).
func (s *CoverSampler) Params() *Params { return s.params }

// Stats returns the run's instrumentation.
func (s *CoverSampler) Stats() *Stats { return &s.stats }

// Sample returns n tuples drawn with replacement from the set union,
// each with probability 1/|U| (Theorem 1). Tuples are in the first
// join's output schema order. Consecutive calls continue the stream:
// returned tuples are final (a later revision only affects tuples not
// yet returned), so Sample can be called repeatedly for more data.
func (s *CoverSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	for len(s.result) < n {
		if err := s.drawOne(g); err != nil {
			return nil, err
		}
	}
	out := make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = s.result[i].tuple
	}
	s.result = append(s.result[:0], s.result[n:]...)
	return out, nil
}

// drawOne runs join selection and the accept/reject/revise logic until
// one tuple is appended to the result.
func (s *CoverSampler) drawOne(g *rng.RNG) error {
	for selections := 0; ; selections++ {
		if selections > 64 {
			return fmt.Errorf("core: cover sampler made no progress after %d join selections", selections)
		}
		j := s.alias.Draw(g)
		for attempt := 0; attempt < s.maxDraw; attempt++ {
			start := time.Now()
			s.stats.TotalDraws++
			t, ok := s.base.samplers[j].Sample(g)
			if !ok {
				s.stats.JoinRejects++
				s.stats.RejectTime += time.Since(start)
				continue
			}
			if s.acceptDraw(j, t) {
				s.stats.Accepted++
				d := time.Since(start)
				s.stats.AcceptTime += d
				s.stats.RegularTime += d
				return nil
			}
			s.stats.RejectTime += time.Since(start)
		}
	}
}

// acceptDraw applies lines 8-14 of Algorithm 1 to a tuple drawn from
// join j; it reports whether the tuple entered the result.
func (s *CoverSampler) acceptDraw(j int, t relation.Tuple) bool {
	k := s.base.key(j, t)
	assigned, seen := s.record[k]
	if s.cfg.Oracle {
		f := s.base.minContaining(j, t)
		s.record[k] = f
		if f < j {
			s.stats.RejectedDup++
			return false
		}
	} else {
		if seen && assigned < j {
			s.stats.RejectedDup++ // line 8: covered by an earlier join
			return false
		}
		if seen && assigned > j {
			// Revision (lines 10-12): the value belongs to this earlier
			// join; drop the copies credited to the later one.
			s.record[k] = j
			s.stats.Revised++
			s.removeKey(k)
		}
		if !seen {
			s.record[k] = j
		}
	}
	aligned := s.base.aligned(j, t).Clone()
	s.result = append(s.result, resultEntry{key: k, tuple: aligned})
	return true
}

// removeKey drops every result tuple with the given key.
func (s *CoverSampler) removeKey(k string) {
	kept := s.result[:0]
	for _, e := range s.result {
		if e.key == k {
			s.stats.RevisedRemoved++
			continue
		}
		kept = append(kept, e)
	}
	s.result = kept
}
