package core

import (
	"fmt"
	"time"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
)

// CoverConfig configures the non-Bernoulli cover sampler (Algorithm 1).
type CoverConfig struct {
	// Method is the single-join subroutine (EW or EO).
	Method JoinMethod
	// Estimator supplies warm-up parameters; required. Its join-size
	// instantiation should match Method (EW sizes with MethodEW, EO
	// bounds with MethodEO) so that join-selection weights and the
	// subroutine's per-attempt normalization cancel; the public API's
	// Options wiring guarantees this pairing.
	Estimator Estimator
	// Oracle switches the value-to-join assignment from the dynamic
	// orig_join record (the paper's Algorithm 1, lines 8-13) to exact
	// membership tests f(u) = min{i : u ∈ J_i}. The oracle needs data
	// access but makes uniformity exact from the first sample; the
	// record converges to it as values are re-drawn.
	Oracle bool
	// MaxDrawsPerSelection caps subroutine draws per join selection
	// before reselecting a join (guards against a join whose cover
	// region is empty but whose estimated cover size is positive).
	// Values <= 0 default to 256 — or, with a Tuner, to the plan's cap.
	MaxDrawsPerSelection int
	// AliasThreshold is the minimum weighted-row fan-out at which EW
	// batch draws build O(1) alias tables (joinsample.NewEWAlias).
	// <= 0 selects joinsample.DefaultAliasThreshold;
	// joinsample.NeverAlias disables alias tables. With a Tuner the
	// plan sets thresholds per join and this field is ignored.
	AliasThreshold int
	// DetailedTiming wall-clocks every draw instead of sampling every
	// TimingStride-th one; see Stats.TimingSampled.
	DetailedTiming bool
	// Tuner, when non-nil, re-plans per-join decisions at every warm-up
	// (Prepare and Refresh): the subroutine per join, alias thresholds,
	// exact-count escalation for wide tree-join estimates, extra walks
	// for wide cyclic ones, and the batch slice cap. Method then only
	// names the starting point; the plan overrides it per join. The
	// controller also accumulates rejection feedback between warm-ups
	// (fed by the session layer) and folds it into the next plan.
	Tuner *tune.Controller
}

// resultEntry is one buffered sample: the arena offset of the tuple's
// value span plus the value's dense record handle (KeyCounter insertion
// rank), which identifies the tuple's value for revision removal
// exactly as the old string key did. The tuple itself lives in the
// run's arena — buffering a sample allocates nothing.
type resultEntry struct {
	key int
	off int // start of the tuple's span in the run's arena
}

// CoverShared is the prepared state of Algorithm 1: the per-join
// subroutine samplers, the warm-up parameters, and the join-selection
// alias table. After warm-up it is immutable and therefore safe to
// share between any number of concurrent runs created with NewRun —
// the split that lets one expensive warm-up serve many cheap draws.
type CoverShared struct {
	base       *unionBase
	cfg        CoverConfig
	params     *Params
	alias      *rng.Alias
	maxDraw    int
	walkVar    []float64 // per-join relative half-widths after warm-up
	warmupTime time.Duration
	warmed     bool
}

// PrepareCover builds the shared state for Algorithm 1 and runs the
// warm-up estimation exactly once, drawing warm-up randomness from g.
// The result is read-only: hand each sampling run its own RNG via
// NewRun.
func PrepareCover(joins []*join.Join, cfg CoverConfig, g *rng.RNG) (*CoverShared, error) {
	p, err := newCoverShared(joins, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.warm(g); err != nil {
		return nil, err
	}
	return p, nil
}

func newCoverShared(joins []*join.Join, cfg CoverConfig) (*CoverShared, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("core: CoverConfig.Estimator is required")
	}
	// With a tuner the subroutine samplers are deferred to warm time:
	// the plan decides their methods, so building them here would build
	// a provisional set only to discard it.
	base, err := newUnionBase(joins, uniformJoinConfigs(len(joins), cfg.Method, cfg.AliasThreshold), cfg.Tuner != nil)
	if err != nil {
		return nil, err
	}
	maxDraw := cfg.MaxDrawsPerSelection
	if maxDraw <= 0 {
		maxDraw = 256
	}
	return &CoverShared{base: base, cfg: cfg, maxDraw: maxDraw}, nil
}

// warm runs the estimator and prepares the join-selection distribution
// (lines 1-2 of Algorithm 1). Idempotent; not safe for concurrent use —
// it runs before the shared state is published to runs.
func (p *CoverShared) warm(g *rng.RNG) error {
	if p.warmed {
		return nil
	}
	start := time.Now()
	params, err := p.cfg.Estimator.Params(g)
	if err != nil {
		return err
	}
	if p.cfg.Tuner != nil {
		if params, err = p.retune(params, g); err != nil {
			return err
		}
	}
	p.params = params
	p.alias = rng.NewAlias(params.Cover)
	if w := tuneWalker(p.cfg.Estimator); w != nil {
		p.walkVar = make([]float64, len(p.base.joins))
		for i, je := range w.JoinEstimates() {
			p.walkVar[i] = je.RelHalfWidth(w.Z())
		}
	}
	p.warmupTime = time.Since(start)
	if p.alias == nil {
		return ErrEmptyUnion
	}
	p.warmed = true
	return nil
}

// retune runs the adaptive re-plan at a warm-up boundary: gather the
// planner inputs from the just-finished estimation, build the plan
// (folding in any rejection feedback the controller accumulated),
// apply its estimation escalations, and install its per-join
// subroutine configs. Deferred or dirty samplers build here, exactly
// once, under the plan.
func (p *CoverShared) retune(params *Params, g *rng.RNG) (*Params, error) {
	walker := tuneWalker(p.cfg.Estimator)
	_, exact := p.cfg.Estimator.(*ExactEstimator)
	stats := gatherTuneStats(p.base.joins, params, walker, exact)
	plan := p.cfg.Tuner.Replan(stats)
	params, _, err := applyPlanEstimates(p.base, plan, params, walker, g)
	if err != nil {
		return nil, err
	}
	p.base.applyJoinConfigs(planJoinConfigs(plan))
	if p.cfg.MaxDrawsPerSelection <= 0 {
		p.maxDraw = plan.MaxDrawsPerSelection
	}
	return params, nil
}

// Refresh returns a CoverShared reconciled with the current data:
// dirty joins reconcile their residuals and rebuild their subroutine
// samplers (clean joins are shared), and the estimator re-runs over the
// incrementally maintained indexes and membership tables. With a
// Tuner, a Refresh is also a re-plan boundary: it rebuilds even over
// clean data when the controller's rejection trigger fired, and dirty
// joins defer their sampler rebuild to the plan. The receiver is
// untouched; in-flight runs keep their snapshot.
func (p *CoverShared) Refresh(g *rng.RNG) (PreparedSampler, bool, error) {
	if p.cfg.Tuner == nil {
		nb, _, changed := p.base.refreshed()
		if !changed {
			return p, false, nil
		}
		np := &CoverShared{base: nb, cfg: p.cfg, maxDraw: p.maxDraw}
		if err := np.warm(g); err != nil {
			return nil, false, err
		}
		return np, true, nil
	}
	nb, dirty, changed := p.base.refreshedLazy()
	if !changed {
		if !p.cfg.Tuner.NeedsReplan() {
			return p, false, nil
		}
		nb = p.base.clone()
	}
	// Mutated joins' rejection feedback describes pre-mutation data;
	// drop it so the re-plan reads their fresh size/bound priors. Clean
	// joins keep theirs — on a rejection-triggered re-plan over clean
	// data that feedback IS the signal.
	for j, d := range dirty {
		if d {
			p.cfg.Tuner.DropFeedback(j)
		}
	}
	np := &CoverShared{base: nb, cfg: p.cfg, maxDraw: p.maxDraw}
	if err := np.warm(g); err != nil {
		return nil, false, err
	}
	return np, true, nil
}

// Params returns the warm-up parameters (nil before warm-up).
func (p *CoverShared) Params() *Params { return p.params }

// WarmupTime reports how long the one-time warm-up took.
func (p *CoverShared) WarmupTime() time.Duration { return p.warmupTime }

// NewRun returns a fresh sampling run over the shared prepared state:
// its own value-to-join record, result buffer, and Stats. Runs are
// independent; any number may sample concurrently as long as each uses
// its own RNG.
func (p *CoverShared) NewRun() Run {
	return newCoverRun(p)
}

func newCoverRun(p *CoverShared) *CoverSampler {
	s := &CoverSampler{
		shared:  p,
		record:  p.base.recordKeys(),
		scratch: p.base.newScratch(),
	}
	s.stats.TimingSampled = !p.cfg.DetailedTiming
	s.stats.initJoins(len(p.base.joins))
	for i := range p.walkVar {
		s.stats.Joins[i].WalkVariance = p.walkVar[i]
	}
	return s
}

func (p *CoverShared) unionBase() *unionBase { return p.base }

// CoverSampler is one sampling run of Algorithm 1: join selection
// proportional to cover sizes |J'_j|/|U|, uniform sampling inside the
// selected join with redraws until the draw lands in the join's cover
// region, and revision when a value turns out to belong to an earlier
// join. All mutable state (record, result buffer, stats) is per-run;
// the prepared state is shared and read-only.
//
// On the redraw semantics: Theorem 1's proof takes the probability of a
// value u given its cover join as 1/|J'_j|; redrawing within the
// selected join until acceptance is what realizes that conditional, so
// this implementation redraws within the join (counting every draw in
// Stats.TotalDraws, the Theorem 2 cost unit).
type CoverSampler struct {
	shared  *CoverShared
	record  *relation.KeyCounter // value (ref order) -> assigned join
	scratch drawScratch
	result  []resultEntry
	arena   []relation.Value // backing store of buffered samples
	stats   Stats
}

// NewCoverSampler builds an Algorithm 1 sampler over the joins with its
// own private prepared state, warmed lazily on first Sample. For the
// one-warm-up/many-runs shape use PrepareCover + NewRun instead.
func NewCoverSampler(joins []*join.Join, cfg CoverConfig) (*CoverSampler, error) {
	shared, err := newCoverShared(joins, cfg)
	if err != nil {
		return nil, err
	}
	return newCoverRun(shared), nil
}

// Warmup runs the estimator and prepares the join-selection
// distribution (line 1-2 of Algorithm 1). It is idempotent; when this
// run triggered the warm-up (rather than inheriting a prepared one) the
// cost is booked into its Stats.
func (s *CoverSampler) Warmup(g *rng.RNG) error {
	if s.shared.warmed {
		return nil
	}
	if err := s.shared.warm(g); err != nil {
		return err
	}
	s.stats.WarmupTime += s.shared.warmupTime
	return nil
}

// Params returns the warm-up parameters (nil before Warmup).
func (s *CoverSampler) Params() *Params { return s.shared.params }

// Stats returns the run's instrumentation.
func (s *CoverSampler) Stats() *Stats { return &s.stats }

// Sample returns n tuples drawn with replacement from the set union,
// each with probability 1/|U| (Theorem 1). Tuples are in the first
// join's output schema order. Consecutive calls continue the stream:
// returned tuples are final (a later revision only affects tuples not
// yet returned), so Sample can be called repeatedly for more data.
func (s *CoverSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	for len(s.result) < n {
		if err := s.drawOne(g); err != nil {
			return nil, err
		}
	}
	return s.serveResult(n), nil
}

// serveResult copies the first n buffered samples out over one flat
// backing (two allocations for the whole batch) and compacts the arena
// behind the remaining entries.
func (s *CoverSampler) serveResult(n int) []relation.Tuple {
	k := s.shared.base.ref.Len()
	out := serveFlat(s.arena, n, k, func(i int) int { return s.result[i].off })
	s.result = s.result[:copy(s.result, s.result[n:])]
	// Entry offsets are strictly increasing (each accepted draw appends
	// its own span), so the m-th remaining entry's span starts at or
	// after m*k and the forward copy never overruns its source.
	w := 0
	for i := range s.result {
		e := &s.result[i]
		if e.off != w {
			copy(s.arena[w:w+k], s.arena[e.off:e.off+k])
			e.off = w
		}
		w += k
	}
	s.arena = s.arena[:w]
	return out
}

// drawOne runs join selection and the accept/reject/revise logic until
// one tuple is appended to the result. The subroutine draw lands in the
// run's scratch buffers; only an accepted tuple is cloned.
func (s *CoverSampler) drawOne(g *rng.RNG) error {
	for selections := 0; ; selections++ {
		if selections > 64 {
			return fmt.Errorf("core: cover sampler made no progress after %d join selections", selections)
		}
		j := s.shared.alias.Draw(g)
		for attempt := 0; attempt < s.shared.maxDraw; attempt++ {
			start, w := s.stats.startDraw()
			s.stats.TotalDraws++
			s.stats.Joins[j].Draws++
			ok := s.shared.base.samplers[j].SampleInto(s.scratch.out, s.scratch.rowOf, g)
			if !ok {
				s.stats.JoinRejects++
				s.stats.Joins[j].Rejected++
				s.stats.RejectTime += sinceDraw(start, w)
				continue
			}
			if s.acceptDraw(j, s.scratch.out) {
				s.stats.Accepted++
				s.stats.Joins[j].Accepted++
				d := sinceDraw(start, w)
				s.stats.AcceptTime += d
				s.stats.RegularTime += d
				return nil
			}
			s.stats.RejectTime += sinceDraw(start, w)
		}
	}
}

// acceptDraw applies lines 8-14 of Algorithm 1 to a tuple drawn from
// join j (in join j's schema order); it reports whether the tuple
// entered the result.
func (s *CoverSampler) acceptDraw(j int, t relation.Tuple) bool {
	proj := s.shared.base.recordProj(j)
	k, seen := s.record.Lookup(t, proj)
	if s.shared.cfg.Oracle {
		f := s.shared.base.minContaining(j, t)
		if seen {
			s.record.SetAt(k, f)
		} else {
			k = s.record.PutNew(t, proj, f)
		}
		if f < j {
			s.stats.RejectedDup++
			return false
		}
	} else {
		if seen {
			assigned := s.record.At(k)
			if assigned < j {
				s.stats.RejectedDup++ // line 8: covered by an earlier join
				return false
			}
			if assigned > j {
				// Revision (lines 10-12): the value belongs to this earlier
				// join; drop the copies credited to the later one.
				s.record.SetAt(k, j)
				s.stats.Revised++
				s.removeKey(k)
			}
		} else {
			k = s.record.PutNew(t, proj, j)
		}
	}
	off := len(s.arena)
	s.arena = s.shared.base.alignedAppend(j, t, s.arena)
	s.result = append(s.result, resultEntry{key: k, off: off})
	return true
}

// removeKey drops every result tuple with the given record handle.
func (s *CoverSampler) removeKey(k int) {
	kept := s.result[:0]
	for _, e := range s.result {
		if e.key == k {
			s.stats.RevisedRemoved++
			continue
		}
		kept = append(kept, e)
	}
	s.result = kept
}
