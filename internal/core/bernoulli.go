package core

import (
	"fmt"
	"time"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// DisjointConfig configures Definition 1's disjoint-union sampler.
type DisjointConfig struct {
	Method JoinMethod
	// DetailedTiming wall-clocks every draw; see Stats.TimingSampled.
	DetailedTiming bool
}

// DisjointShared is the prepared state of Definition 1's disjoint-union
// sampler: the per-join subroutine samplers and the size-proportional
// selection table. It is immutable and safe to share between any number
// of concurrent runs created with NewRun.
type DisjointShared struct {
	base     *unionBase
	alias    *rng.Alias
	detailed bool
}

// PrepareDisjoint builds the shared state of a disjoint-union sampler.
// Disjoint sampling needs no estimator warm-up: selection weights come
// from the subroutine samplers' own size knowledge.
func PrepareDisjoint(joins []*join.Join, cfg DisjointConfig) (*DisjointShared, error) {
	base, err := newUnionBase(joins, uniformJoinConfigs(len(joins), cfg.Method, 0), false)
	if err != nil {
		return nil, err
	}
	return newDisjointShared(base, cfg.DetailedTiming)
}

// PrepareDisjointFrom builds a disjoint-union sampler over the joins
// and subroutine samplers already prepared for a set-union sampler,
// avoiding a second subroutine setup (EW weight tables, indexes). A
// sharded sampler has no single shared base; callers holding one should
// use PrepareDisjoint over the original joins instead.
func PrepareDisjointFrom(p PreparedSampler, detailedTiming bool) (*DisjointShared, error) {
	if _, ok := p.(*ShardedShared); ok {
		return nil, fmt.Errorf("core: PrepareDisjointFrom does not support sharded samplers; use PrepareDisjoint")
	}
	return newDisjointShared(p.unionBase(), detailedTiming)
}

func newDisjointShared(base *unionBase, detailed bool) (*DisjointShared, error) {
	weights := make([]float64, len(base.joins))
	for i, s := range base.samplers {
		weights[i] = s.SizeEstimate()
	}
	alias := rng.NewAlias(weights)
	if alias == nil {
		return nil, fmt.Errorf("core: all joins are empty")
	}
	return &DisjointShared{base: base, alias: alias, detailed: detailed}, nil
}

// NewRun returns a fresh sampling run (its own Stats and scratch) over
// the shared prepared state.
func (p *DisjointShared) NewRun() *DisjointSampler {
	s := &DisjointSampler{shared: p, scratch: p.base.newScratch()}
	s.stats.TimingSampled = !p.detailed
	s.stats.initJoins(len(p.base.joins))
	return s
}

// DisjointSampler is one run of Definition 1's sampler: a join is
// selected proportionally to its size instantiation and one tuple is
// drawn from it; under EW the selection weights are exact sizes, under
// EO they are Olken bounds whose rejection rates re-normalize exactly
// (an accepted draw lands on any particular result with probability
// 1/Σ_j bound_j regardless of join).
type DisjointSampler struct {
	shared  *DisjointShared
	scratch drawScratch
	stats   Stats
}

// NewDisjointSampler builds a disjoint-union sampler.
func NewDisjointSampler(joins []*join.Join, method JoinMethod) (*DisjointSampler, error) {
	shared, err := PrepareDisjoint(joins, DisjointConfig{Method: method})
	if err != nil {
		return nil, err
	}
	return shared.NewRun(), nil
}

// Stats returns the run's instrumentation.
func (s *DisjointSampler) Stats() *Stats { return &s.stats }

// Sample returns n independent tuples, each with probability
// 1/(|J_1| + ... + |J_n|), in the first join's output schema order.
func (s *DisjointSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	k := s.shared.base.ref.Len()
	flat := make([]relation.Value, 0, n*k)
	out := make([]relation.Tuple, 0, n)
	for len(out) < n {
		start, w := s.stats.startDraw()
		s.stats.TotalDraws++
		j := s.shared.alias.Draw(g)
		s.stats.Joins[j].Draws++
		ok := s.shared.base.samplers[j].SampleInto(s.scratch.out, s.scratch.rowOf, g)
		if !ok {
			s.stats.JoinRejects++
			s.stats.Joins[j].Rejected++
			s.stats.RejectTime += sinceDraw(start, w)
			continue
		}
		off := len(flat)
		flat = s.shared.base.alignedAppend(j, s.scratch.out, flat)
		out = append(out, relation.Tuple(flat[off:len(flat):len(flat)]))
		s.stats.Accepted++
		s.stats.Joins[j].Accepted++
		d := sinceDraw(start, w)
		s.stats.AcceptTime += d
		s.stats.RegularTime += d
	}
	return out, nil
}

// BernoulliConfig configures the §3 union-trick sampler.
type BernoulliConfig struct {
	Method    JoinMethod
	Estimator Estimator
	// Oracle: as in CoverConfig, exact membership instead of the
	// dynamic first-observed-join record.
	Oracle bool
	// DetailedTiming wall-clocks every draw; see Stats.TimingSampled.
	DetailedTiming bool
}

// BernoulliSampler implements the straightforward set-union sampler of
// §3 (the "union trick"): at each iteration every join J_j is selected
// independently with probability |J_j|/|U|; a tuple drawn from J_j is
// kept only when its value is assigned to J_j (the first join it was
// observed in — or, under Oracle, the first join containing it). Each
// value u is therefore returned with probability
// |J_{f(u)}|/|U| · 1/|J_{f(u)}| = 1/|U| per iteration.
//
// Compared to Algorithm 1 the rejection ratio is high for heavily
// overlapping joins — the motivation for the non-Bernoulli cover
// selection (§3.1); the evaluation skips it for that reason, but it is
// implemented here as the framework's base case.
type BernoulliSampler struct {
	base    *unionBase
	cfg     BernoulliConfig
	params  *Params
	record  *relation.KeyCounter // value (ref order) -> first-observed join
	scratch drawScratch
	stats   Stats
	warmed  bool
}

// NewBernoulliSampler builds a union-trick sampler.
func NewBernoulliSampler(joins []*join.Join, cfg BernoulliConfig) (*BernoulliSampler, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("core: BernoulliConfig.Estimator is required")
	}
	base, err := newUnionBase(joins, uniformJoinConfigs(len(joins), cfg.Method, 0), false)
	if err != nil {
		return nil, err
	}
	s := &BernoulliSampler{base: base, cfg: cfg, record: base.recordKeys(), scratch: base.newScratch()}
	s.stats.TimingSampled = !cfg.DetailedTiming
	s.stats.initJoins(len(joins))
	return s, nil
}

// Warmup runs the estimator; idempotent.
func (s *BernoulliSampler) Warmup(g *rng.RNG) error {
	if s.warmed {
		return nil
	}
	start := time.Now()
	p, err := s.cfg.Estimator.Params(g)
	if err != nil {
		return err
	}
	s.params = p
	s.stats.WarmupTime += time.Since(start)
	if p.UnionSize <= 0 {
		return fmt.Errorf("core: estimated union size is zero")
	}
	s.warmed = true
	return nil
}

// Params returns the warm-up parameters (nil before Warmup).
func (s *BernoulliSampler) Params() *Params { return s.params }

// Stats returns the run's instrumentation.
func (s *BernoulliSampler) Stats() *Stats { return &s.stats }

// Sample returns n tuples, each value with probability 1/|U| per
// iteration, in the first join's output schema order.
func (s *BernoulliSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	k := s.base.ref.Len()
	flat := make([]relation.Value, 0, n*k)
	out := make([]relation.Tuple, 0, n)
	for len(out) < n {
		for j := range s.base.joins {
			if len(out) >= n {
				break
			}
			p := s.params.JoinSizes[j] / s.params.UnionSize
			if !g.Bernoulli(p) {
				continue
			}
			start, w := s.stats.startDraw()
			s.stats.TotalDraws++
			s.stats.Joins[j].Draws++
			ok := s.base.samplers[j].SampleInto(s.scratch.out, s.scratch.rowOf, g)
			if !ok {
				s.stats.JoinRejects++
				s.stats.Joins[j].Rejected++
				s.stats.RejectTime += sinceDraw(start, w)
				continue
			}
			if s.accept(j, s.scratch.out) {
				off := len(flat)
				flat = s.base.alignedAppend(j, s.scratch.out, flat)
				out = append(out, relation.Tuple(flat[off:len(flat):len(flat)]))
				s.stats.Accepted++
				s.stats.Joins[j].Accepted++
				d := sinceDraw(start, w)
				s.stats.AcceptTime += d
				s.stats.RegularTime += d
			} else {
				s.stats.RejectedDup++
				s.stats.RejectTime += sinceDraw(start, w)
			}
		}
	}
	return out, nil
}

func (s *BernoulliSampler) accept(j int, t relation.Tuple) bool {
	if s.cfg.Oracle {
		return s.base.minContaining(j, t) == j
	}
	proj := s.base.recordProj(j)
	k, seen := s.record.Lookup(t, proj)
	if !seen {
		s.record.PutNew(t, proj, j)
		return true
	}
	return s.record.At(k) == j
}
