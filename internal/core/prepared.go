package core

import (
	"fmt"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// Run is one sampling run over a prepared set-union sampler. A run owns
// all per-draw mutable state (RNG-driven stream position, value-to-join
// record, result buffer, Stats, online refinement); the prepared state
// behind it is shared and read-only. Runs from the same prepared
// sampler may execute concurrently as long as each uses its own RNG.
type Run interface {
	UnionSampler
	// SampleBatch draws n tuples through the batch engine: the same
	// per-tuple distribution as Sample, but with per-draw overheads
	// (subroutine dispatch per attempt, per-attempt wall-clocking,
	// result-buffer growth) amortized across the batch, and weighted
	// row selection running through O(1) alias tables. Batch draws
	// consume the RNG stream differently from Sample, so the two paths
	// are pinned by separate golden digests; see the README's
	// "Batched draws" section for the determinism contract.
	SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error)
	// Params returns the parameters the run currently samples under:
	// the shared warm-up estimates, refined per-run in online mode.
	Params() *Params
}

// PreparedSampler is the immutable product of a one-time warm-up: it
// knows the estimated parameters and mints independent sampling runs.
// CoverShared (Algorithm 1) and OnlineShared (Algorithm 2) implement it.
type PreparedSampler interface {
	// Params returns the warm-up parameter estimates.
	Params() *Params
	// WarmupTime reports how long the one-time warm-up took.
	WarmupTime() time.Duration
	// NewRun mints an independent sampling run over the shared state.
	NewRun() Run

	// unionBase exposes the shared join machinery so sibling samplers
	// (PrepareDisjointFrom) can reuse it without a second setup.
	unionBase() *unionBase
}

var (
	_ PreparedSampler = (*CoverShared)(nil)
	_ PreparedSampler = (*OnlineShared)(nil)
	_ Run             = (*CoverSampler)(nil)
	_ Run             = (*OnlineSampler)(nil)
)

// Prewarm forces every lazily built shared structure of the joins —
// per-attribute CSR indexes and membership tables — so that concurrent
// runs pay no build cost and only ever read them. (First use is safe
// without Prewarm too — both structures build exactly once behind an
// atomic publish — but prewarming moves the cost into preparation.)
func Prewarm(p PreparedSampler) {
	if s, ok := p.(*ShardedShared); ok {
		s.prewarm()
		return
	}
	base := p.unionBase()
	for _, j := range base.joins {
		j.PrewarmMembership()
		for _, n := range j.Nodes() {
			for a := 0; a < n.Rel.Arity(); a++ {
				n.Rel.Index(a)
			}
		}
	}
}

// Stale reports whether any relation underlying the prepared sampler
// mutated since its warm-up (or last Refresh): draws still work but
// serve parameters estimated over the old contents. It costs a few
// atomic version loads and is safe to call concurrently with runs.
func Stale(p PreparedSampler) bool {
	if s, ok := p.(*ShardedShared); ok {
		return s.stale()
	}
	_, any := p.unionBase().dirtyJoins()
	return any
}

// Refresh returns a prepared sampler reconciled with the current data:
// dirty joins' residual materializations reconcile (incrementally when
// the mutation delta allows), their subroutine samplers rebuild, and
// the parameters re-estimate — clean joins keep their samplers and
// (for the online mode) their walk estimates. The receiver is left
// untouched, so in-flight runs keep sampling the old snapshot; changed
// reports whether a new sampler was built. Warm-up randomness is drawn
// from g, so a fixed seed makes refreshed sessions reproducible.
func Refresh(p PreparedSampler, g *rng.RNG) (PreparedSampler, bool, error) {
	switch s := p.(type) {
	case *CoverShared:
		return s.Refresh(g)
	case *OnlineShared:
		return s.Refresh(g)
	case *ShardedShared:
		return s.Refresh(g)
	}
	return p, false, fmt.Errorf("core: Refresh: unsupported prepared sampler %T", p)
}

// DeriveSeed maps a base seed and a stream index to a decorrelated RNG
// seed using the SplitMix64 finalizer. Unlike additive schemes
// (seed + i·constant), nearby base seeds and stream indexes can never
// produce overlapping or collapsing streams: any change to either input
// avalanches through the whole output.
func DeriveSeed(base, stream int64) int64 {
	z := uint64(base) + uint64(stream)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// NewRunRNG returns the RNG for stream index i of a prepared session
// with the given base seed.
func NewRunRNG(base, stream int64) *rng.RNG {
	return rng.New(DeriveSeed(base, stream))
}
