package core

import (
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
	"sampleunion/internal/walkest"
)

// zipfJoin builds R(K,X) ⋈_K S(K,Y) where K=base fans out heavy ways
// and the other k-1 keys fan out once: wide enough walk variance that
// the planner escalates the join's size estimate to an exact count.
func zipfJoin(t testing.TB, name string, k, heavy int, base int) *join.Join {
	t.Helper()
	a := relation.New(name+"_a", relation.NewSchema("K", "X"))
	b := relation.New(name+"_b", relation.NewSchema("K", "Y"))
	for i := 0; i < k; i++ {
		a.AppendValues(relation.Value(base+i), relation.Value(base+i*10))
	}
	for c := 0; c < heavy; c++ {
		b.AppendValues(relation.Value(base), relation.Value(base+1000+c))
	}
	for i := 1; i < k; i++ {
		b.AppendValues(relation.Value(base+i), relation.Value(base+500+i))
	}
	j, err := join.NewChain(name, []*relation.Relation{a, b}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// tunedJoins is the adaptive-path fixture: a zipfian join (16 keys, one
// fanning out 64 ways, 79 results) next to the flat fixture chains.
func tunedJoins(t testing.TB) []*join.Join {
	t.Helper()
	return append([]*join.Join{zipfJoin(t, "Z", 16, 64, 2000)}, fixtureJoins(t)...)
}

// checkMembers draws n tuples and verifies every one belongs to the
// exact set union.
func checkMembers(t *testing.T, joins []*join.Join, run Run, n int, g *rng.RNG) {
	t.Helper()
	idx := unionIndex(t, joins)
	out, err := run.SampleBatch(n, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d samples, want %d", len(out), n)
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("sample %v is not in the union", tu)
		}
	}
}

// TestTunedCoverLifecycle drives the cover sampler's full adaptive
// loop: plan at Prepare (with the zipfian join escalated to an exact
// count), draws, a mutation, and a Refresh re-plan over the dirty base.
func TestTunedCoverLifecycle(t *testing.T) {
	joins := tunedJoins(t)
	ctrl := tune.NewController(tune.Config{})
	p, err := PrepareCover(joins, CoverConfig{
		Method: MethodEO,
		Estimator: &RandomWalkEstimator{
			Joins: joins,
			// Few enough walks that the zipfian join's estimate stays
			// wide (rel half-width ~0.45 > the 0.2 escalation threshold).
			Opts: walkest.Options{MaxWalks: 128},
		},
		Tuner: ctrl,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Plan() == nil {
		t.Fatal("no plan installed at Prepare")
	}
	if got := len(Tuners(p)); got != 1 {
		t.Fatalf("Tuners returned %d controllers, want 1", got)
	}
	if p.Params() == nil || p.WarmupTime() <= 0 {
		t.Fatal("warm-up left no params or no warm-up time")
	}
	sn := ctrl.Snapshot()
	if sn.Replans != 1 {
		t.Fatalf("replans = %d after Prepare, want 1", sn.Replans)
	}
	if !sn.Joins[0].Exact {
		t.Fatalf("zipfian join not escalated to exact: %+v", sn.Joins[0])
	}
	if got := p.Params().JoinSizes[0]; got != 79 {
		t.Fatalf("escalated join size = %v, want the exact 79", got)
	}
	checkMembers(t, joins, p.NewRun(), 500, NewRunRNG(11, 1))

	if Stale(p) {
		t.Fatal("prepared sampler stale before any mutation")
	}
	// Double the heavy fan-out and delete one flat row: join 0 dirty.
	b := joins[0].Nodes()[1].Rel
	extra := make([]relation.Tuple, 64)
	for c := range extra {
		extra[c] = relation.Tuple{relation.Value(2000), relation.Value(5000 + c)}
	}
	b.AppendRows(extra)
	b.Delete(heavyLiveRow(t, b, 70))
	if !Stale(p) {
		t.Fatal("mutation not detected as stale")
	}
	np, changed, err := Refresh(p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Refresh over a dirty base reported no change")
	}
	if got := ctrl.Snapshot().Replans; got != 2 {
		t.Fatalf("replans = %d after Refresh, want 2", got)
	}
	checkMembers(t, joins, np.NewRun(), 500, NewRunRNG(11, 2))
}

// heavyLiveRow returns the index of the n-th live row of r.
func heavyLiveRow(t testing.TB, r *relation.Relation, n int) int {
	t.Helper()
	live := 0
	for i := 0; i < r.Len(); i++ {
		if !r.Live(i) {
			continue
		}
		if live == n {
			return i
		}
		live++
	}
	t.Fatalf("relation %s has fewer than %d live rows", r.Name(), n+1)
	return -1
}

// TestTunedCoverRejectionReplan: rejection feedback past the trigger
// makes the next Refresh rebuild even over clean data.
func TestTunedCoverRejectionReplan(t *testing.T) {
	joins := fixtureJoins(t)
	ctrl := tune.NewController(tune.Config{})
	p, err := PrepareCover(joins, CoverConfig{
		Method:    MethodEO,
		Estimator: &RandomWalkEstimator{Joins: joins},
		Tuner:     ctrl,
	}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cur := []JoinBreakdown{{Draws: 1000, Rejected: 960}, {Draws: 10, Rejected: 1}, {Draws: 10, Rejected: 1}}
	prev := ObserveRun(ctrl, cur, nil)
	if len(prev) != len(cur) {
		t.Fatalf("ObserveRun snapshot has %d joins, want %d", len(prev), len(cur))
	}
	if !ctrl.NeedsReplan() {
		t.Fatal("96%% rejection over 1000 draws did not raise the re-plan flag")
	}
	// Re-reporting the same cumulative counters must not double-count.
	ObserveRun(ctrl, cur, prev)
	if ObserveRun(nil, cur, prev) == nil {
		t.Fatal("nil controller must pass the previous snapshot through")
	}
	np, changed, err := Refresh(p, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("pending re-plan over clean data did not rebuild")
	}
	if ctrl.NeedsReplan() {
		t.Fatal("re-plan flag still raised after Refresh")
	}
	if np == p {
		t.Fatal("Refresh returned the old prepared sampler")
	}
	// A second Refresh with no mutation and no pending flag is a no-op.
	_, changed, err = Refresh(np, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("idle Refresh rebuilt the sampler")
	}
}

// TestTunedOnlineLifecycle drives the online sampler's adaptive loop:
// escalation pinned through exactSizes at Prepare, then a mutation and
// a Refresh that re-warms only the dirty join and re-plans.
func TestTunedOnlineLifecycle(t *testing.T) {
	joins := tunedJoins(t)
	ctrl := tune.NewController(tune.Config{})
	p, err := PrepareOnline(joins, OnlineConfig{
		WarmupWalks: 128,
		Tuner:       ctrl,
	}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if p.Params() == nil || p.WarmupTime() <= 0 {
		t.Fatal("warm-up left no params or no warm-up time")
	}
	sn := ctrl.Snapshot()
	if sn.Replans != 1 {
		t.Fatalf("replans = %d after Prepare, want 1", sn.Replans)
	}
	if !sn.Joins[0].Exact {
		t.Fatalf("zipfian join not escalated to exact: %+v", sn.Joins[0])
	}
	if got := p.Params().JoinSizes[0]; got != 79 {
		t.Fatalf("escalated join size = %v, want the exact 79", got)
	}
	if got := len(Tuners(p)); got != 1 {
		t.Fatalf("Tuners returned %d controllers, want 1", got)
	}
	checkMembers(t, joins, p.NewRun(), 300, NewRunRNG(31, 1))

	// Shrink the heavy fan-out to 8: join 0 dirty, its walks and its
	// accumulated feedback reset, and the re-plan reads fresh priors.
	b := joins[0].Nodes()[1].Rel
	for i, gone := 0, 0; i < b.Len() && gone < 56; i++ {
		if b.Live(i) {
			b.Delete(i)
			gone++
		}
	}
	if !Stale(p) {
		t.Fatal("mutation not detected as stale")
	}
	np, changed, err := Refresh(p, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Refresh over a dirty base reported no change")
	}
	if got := ctrl.Snapshot().Replans; got != 2 {
		t.Fatalf("replans = %d after Refresh, want 2", got)
	}
	checkMembers(t, joins, np.NewRun(), 300, NewRunRNG(31, 2))
}

// TestNewRunRNGStreams: stream derivation must decorrelate both nearby
// seeds and nearby stream indexes.
func TestNewRunRNGStreams(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) || DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed collapsed nearby inputs")
	}
	a, b := NewRunRNG(1, 0), NewRunRNG(1, 1)
	same := 0
	for i := 0; i < 8; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 8 {
		t.Fatal("adjacent streams produced identical output")
	}
}
