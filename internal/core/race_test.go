package core

import (
	"sync"
	"testing"

	"sampleunion/internal/rng"
)

// TestConcurrentFreshOracleRuns hits the membership tables' first-use
// path from many concurrent session streams at once: the prepared
// sampler is deliberately NOT prewarmed, so the very first oracle
// Contains probes race to build the per-join KeySets. Run under -race
// this pins the documented hazard fixed in this refactor ("Contains ...
// is not safe for concurrent first use"): the build must happen exactly
// once behind the atomic publish, and every stream must still see exact
// membership.
func TestConcurrentFreshOracleRuns(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareCover(joins, CoverConfig{
		Method:    MethodEO,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true, // every accepted draw probes Contains
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// No Prewarm on purpose: membership tables must build lazily under
	// concurrency.
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := shared.NewRun()
			out, err := run.Sample(50, rng.New(int64(100+w)))
			if err == nil && len(out) != 50 {
				err = errShort
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short sample" }

// TestConcurrentFreshDisjointRuns covers the same first-use window for
// the disjoint sampler's scratch/draw path over a fresh, unprewarmed
// base.
func TestConcurrentFreshDisjointRuns(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareDisjoint(joins, DisjointConfig{Method: MethodEO})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = shared.NewRun().Sample(50, rng.New(int64(200+w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
