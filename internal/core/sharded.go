package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// This file implements the shard-parallel union sampler: every relation
// carrying the partition attribute is hash-partitioned into S fragments
// (internal/relation.Partition), each shard gets its own rebound joins
// and its own prepared per-shard sampler, and the union of shards is
// drawn from exactly the way the paper draws from a union of joins —
// per-shard weights estimated at warm-up, an alias table over shards
// picking a shard per tuple, uniform sampling within the shard.
//
// Correctness rests on the partition being disjoint: the partition
// attribute is a common output attribute, every result tuple has
// exactly one value of it, and shared attribute names are
// join-connected (enforced at Build), so σ_{hash(attr) mod S = s}(U)
// for s = 0..S-1 partitions U. Uniform over U therefore factors into
// "shard ∝ |U_s|, then uniform within the shard", and per-shard
// parameters sum to the union's (JoinSizes, Cover, |U| are all
// cardinalities of disjoint pieces).

// ErrEmptyUnion reports a warm-up whose estimated cover is all-zero:
// the union (or, for a shard, the shard's slice of it) appears empty.
// The sharded engine treats an empty shard as weight zero rather than a
// failure; an empty whole union remains an error.
var ErrEmptyUnion = errors.New("core: estimated cover is all-zero; union appears empty")

// ShardFactory prepares the sampler of one shard from its rebound
// joins, drawing warm-up randomness from g. The session layer supplies
// one closure that applies the caller's Options (estimator, method,
// online mode) to whatever join set it is handed.
type ShardFactory func(joins []*join.Join, g *rng.RNG) (PreparedSampler, error)

// ShardedConfig configures PrepareSharded.
type ShardedConfig struct {
	// Shards is the partition fan-out (>= 1).
	Shards int
	// Workers bounds the goroutines a warm-up, refresh, or batch draw
	// fans out to; <= 0 defaults to min(Shards, GOMAXPROCS).
	Workers int
	// Factory prepares one shard's sampler; required.
	Factory ShardFactory
	// Attr overrides the partition attribute (must be a common output
	// attribute). Empty selects the attribute automatically: the one
	// whose holders cover the most rows, so the largest share of the
	// data is actually partitioned.
	Attr string
}

// ShardedShared is the prepared state of the shard-parallel sampler: S
// per-shard prepared samplers over hash fragments, the alias table over
// per-shard union sizes, and the aggregate parameters. Like the other
// prepared samplers it is immutable after warm-up and shared by any
// number of concurrent runs; Refresh publishes a reconciled copy.
type ShardedShared struct {
	origJoins []*join.Join
	cfg       ShardedConfig
	attr      string
	workers   int

	// parts hold the partitioned relations (one Partition per distinct
	// relation carrying the partition attribute); partOf maps a source
	// relation to its Partition for rebinding.
	parts  []*relation.Partition
	partOf map[*relation.Relation]*relation.Partition

	// shardJoins[s] are the rebound joins of shard s; perShard[s] is
	// that shard's prepared sampler, nil when the shard is empty.
	shardJoins [][]*join.Join
	perShard   []PreparedSampler

	// vers snapshots the ORIGINAL joins' StateVersions (captured before
	// the partitions, so a mutation racing the build is seen as stale,
	// never missed); weights[s] = |U_s|.
	vers    [][]uint64
	weights []float64
	alias   *rng.Alias
	params  *Params

	warmupTime time.Duration
}

var (
	_ PreparedSampler = (*ShardedShared)(nil)
	_ Run             = (*ShardedSampler)(nil)
)

// PartitionAttr selects the partition attribute for a union: among the
// common output attributes, the one whose holder relations (distinct by
// identity across all joins) cover the most rows — maximizing how much
// of the data the hash partition actually splits. Ties resolve to the
// earliest attribute in the reference output schema, so the choice is
// deterministic.
func PartitionAttr(joins []*join.Join) string {
	ref := joins[0].OutputSchema()
	best, bestScore := "", -1
	for i := 0; i < ref.Len(); i++ {
		a := ref.Attr(i)
		seen := make(map[*relation.Relation]bool)
		score := 0
		for _, j := range joins {
			for _, n := range j.Nodes() {
				if seen[n.Rel] || !n.Rel.Schema().Has(a) {
					continue
				}
				seen[n.Rel] = true
				score += n.Rel.Len()
			}
		}
		if score > bestScore {
			best, bestScore = a, score
		}
	}
	return best
}

// PrepareSharded partitions the union into cfg.Shards hash shards and
// prepares one sampler per shard (warm-ups run in parallel up to
// cfg.Workers, each on its own stream derived from g). Empty shards are
// tolerated at weight zero; an empty whole union returns ErrEmptyUnion.
func PrepareSharded(joins []*join.Join, cfg ShardedConfig, g *rng.RNG) (*ShardedShared, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: ShardedConfig.Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("core: ShardedConfig.Factory is required")
	}
	if err := validateUnion(joins); err != nil {
		return nil, err
	}
	start := time.Now()
	attr := cfg.Attr
	if attr == "" {
		attr = PartitionAttr(joins)
	} else if !joins[0].OutputSchema().Has(attr) {
		return nil, fmt.Errorf("core: partition attribute %q is not an output attribute", attr)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	p := &ShardedShared{
		origJoins: joins,
		cfg:       cfg,
		attr:      attr,
		workers:   workers,
		partOf:    make(map[*relation.Relation]*relation.Partition),
	}
	// Version snapshot first: a mutation landing while the partitions
	// build makes the result stale (refresh reconciles), never silently
	// incomplete. Cyclic residuals reconcile before they are refiltered.
	p.vers = make([][]uint64, len(joins))
	for i, j := range joins {
		j.FreshenResidual()
		p.vers[i] = j.StateVersions()
	}
	for _, j := range joins {
		for _, n := range j.Nodes() {
			rel := n.Rel
			if p.partOf[rel] != nil || !rel.Schema().Has(attr) {
				continue
			}
			part, err := relation.NewPartition(rel, attr, cfg.Shards)
			if err != nil {
				return nil, err
			}
			p.partOf[rel] = part
			p.parts = append(p.parts, part)
		}
	}
	p.shardJoins = make([][]*join.Join, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		p.shardJoins[s] = make([]*join.Join, len(joins))
		for i, j := range joins {
			sj, err := join.Rebind(j, fmt.Sprintf("%s#%d", j.Name(), s), p.shardRel(s))
			if err != nil {
				return nil, err
			}
			p.shardJoins[s][i] = sj
		}
	}
	if err := p.warmShards(g, nil); err != nil {
		return nil, err
	}
	if err := p.aggregate(); err != nil {
		return nil, err
	}
	p.warmupTime = time.Since(start)
	return p, nil
}

// shardRel returns the Rebind substitution for shard s: partitioned
// relations map to their fragment, a residual materialization carrying
// the attribute is statically filtered to the shard, and everything
// else (relations without the partition attribute) is shared as-is
// across all shards — correct because the attribute's holders are
// join-connected, so the holders alone pin every result tuple's shard.
func (p *ShardedShared) shardRel(s int) func(*relation.Relation) (*relation.Relation, error) {
	return func(rel *relation.Relation) (*relation.Relation, error) {
		if part := p.partOf[rel]; part != nil {
			return part.Frag(s), nil
		}
		if rel.Schema().Has(p.attr) {
			return rel.Filter(
				fmt.Sprintf("%s#%d/%d", rel.Name(), s, p.cfg.Shards),
				relation.ShardPredicate{Attr: p.attr, Shard: s, Shards: p.cfg.Shards},
			), nil
		}
		return rel, nil
	}
}

// forEachShard runs f for every shard, in parallel up to p.workers.
// Each f(s) touches only shard s's state plus concurrency-safe shared
// structures (relation indexes, membership tables), so the fan-out is
// race-free and — because every shard draws from its own derived
// stream — deterministic regardless of scheduling.
func (p *ShardedShared) forEachShard(f func(s int)) {
	if p.workers <= 1 || p.cfg.Shards <= 1 {
		for s := 0; s < p.cfg.Shards; s++ {
			f(s)
		}
		return
	}
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for s := 0; s < p.cfg.Shards; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			f(s)
			<-sem
		}(s)
	}
	wg.Wait()
}

// warmShards prepares (or, with prev non-nil, refreshes) every shard's
// sampler. Shard s draws its warm-up randomness from stream s of a base
// derived from g, so the result is reproducible whatever the worker
// interleaving. Empty shards come back nil.
func (p *ShardedShared) warmShards(g *rng.RNG, prev []PreparedSampler) error {
	base := int64(g.Uint64())
	p.perShard = make([]PreparedSampler, p.cfg.Shards)
	errs := make([]error, p.cfg.Shards)
	p.forEachShard(func(s int) {
		gs := rng.New(DeriveSeed(base, int64(s)))
		var ps PreparedSampler
		var err error
		if prev != nil && prev[s] != nil {
			ps, _, err = Refresh(prev[s], gs)
		} else {
			ps, err = p.cfg.Factory(p.shardJoins[s], gs)
		}
		if errors.Is(err, ErrEmptyUnion) {
			ps, err = nil, nil // empty shard: weight zero, never drawn
		}
		p.perShard[s], errs[s] = ps, err
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// aggregate sums per-shard parameters into the union's (exact under the
// disjoint partition) and builds the shard-selection alias table.
func (p *ShardedShared) aggregate() error {
	agg := &Params{
		JoinSizes: make([]float64, len(p.origJoins)),
		Cover:     make([]float64, len(p.origJoins)),
	}
	p.weights = make([]float64, p.cfg.Shards)
	for s, ps := range p.perShard {
		if ps == nil {
			continue
		}
		sp := ps.Params()
		for j := range sp.JoinSizes {
			agg.JoinSizes[j] += sp.JoinSizes[j]
		}
		for j := range sp.Cover {
			agg.Cover[j] += sp.Cover[j]
		}
		agg.UnionSize += sp.UnionSize
		p.weights[s] = sp.UnionSize
	}
	p.params = agg
	p.alias = rng.NewAlias(p.weights)
	if p.alias == nil {
		return ErrEmptyUnion
	}
	return nil
}

// stale reports whether any original join's state moved since the
// snapshot — the authoritative staleness signal for the sharded
// sampler (per-shard samplers see fragments, which only move on Sync).
func (p *ShardedShared) stale() bool {
	dirty, any := p.dirtyOrig()
	_ = dirty
	return any
}

func (p *ShardedShared) dirtyOrig() ([]bool, bool) {
	dirty := make([]bool, len(p.origJoins))
	any := false
	for i, j := range p.origJoins {
		cur := j.StateVersions()
		for k, v := range cur {
			if k >= len(p.vers[i]) || p.vers[i][k] != v {
				dirty[i] = true
				any = true
				break
			}
		}
	}
	return dirty, any
}

// Refresh reconciles the sharded sampler with mutated data: partitions
// replay the mutation-log tail into their fragments, and only the
// shards whose fragments (or shared relations) moved rebuild their
// samplers and re-estimate — the PR 3 delta path, per shard. A cyclic
// original join's mutation, or a lost log tail, falls back to a full
// re-partition (rebound cyclic residuals are static filters, so there
// is nothing to reconcile incrementally). The receiver is untouched;
// in-flight runs keep drawing under the live-relation visibility
// contract.
func (p *ShardedShared) Refresh(g *rng.RNG) (PreparedSampler, bool, error) {
	dirty, any := p.dirtyOrig()
	if !any {
		return p, false, nil
	}
	for i, d := range dirty {
		if d && p.origJoins[i].IsCyclic() {
			np, err := PrepareSharded(p.origJoins, p.cfg, g)
			return np, true, err
		}
	}
	np := &ShardedShared{
		origJoins:  p.origJoins,
		cfg:        p.cfg,
		attr:       p.attr,
		workers:    p.workers,
		parts:      p.parts,
		partOf:     p.partOf,
		shardJoins: p.shardJoins,
	}
	// New snapshot before syncing, for the same conservative reason as
	// at build: a racing mutation re-reports stale rather than being
	// missed.
	np.vers = make([][]uint64, len(p.origJoins))
	for i, j := range p.origJoins {
		np.vers[i] = j.StateVersions()
	}
	start := time.Now()
	for _, part := range p.parts {
		if _, ok := part.Sync(); !ok {
			nps, err := PrepareSharded(p.origJoins, p.cfg, g)
			return nps, true, err
		}
	}
	// Per-shard Refresh sees exactly the dirty fragments (their
	// versions moved under Sync) plus dirty shared relations, and
	// rebuilds only those joins' samplers; clean shards return
	// themselves unchanged.
	if err := np.warmShards(g, p.perShard); err != nil {
		return nil, false, err
	}
	if err := np.aggregate(); err != nil {
		return nil, false, err
	}
	np.warmupTime = time.Since(start)
	return np, true, nil
}

// prewarm forces every shard's lazily built shared structures.
func (p *ShardedShared) prewarm() {
	p.forEachShard(func(s int) {
		if p.perShard[s] != nil {
			Prewarm(p.perShard[s])
		}
	})
}

// Params returns the aggregate parameters: per-join sizes, cover sizes,
// and |U| summed over shards (exact under the disjoint partition).
func (p *ShardedShared) Params() *Params { return p.params }

// WarmupTime reports how long the last (re)preparation took, wall
// clock: parallel shard warm-ups overlap inside it.
func (p *ShardedShared) WarmupTime() time.Duration { return p.warmupTime }

// Shards returns the shard count.
func (p *ShardedShared) Shards() int { return p.cfg.Shards }

// Attr returns the partition attribute.
func (p *ShardedShared) Attr() string { return p.attr }

// ShardWeights returns the per-shard union-size weights (the alias
// table's distribution); the slice is a copy.
func (p *ShardedShared) ShardWeights() []float64 {
	return append([]float64(nil), p.weights...)
}

// NewRun mints an independent sampling run: one per-shard run each (its
// own record, scratch, and Stats), merged behind one Run interface.
func (p *ShardedShared) NewRun() Run {
	s := &ShardedSampler{shared: p, runs: make([]Run, len(p.perShard))}
	for i, ps := range p.perShard {
		if ps != nil {
			s.runs[i] = ps.NewRun()
		}
	}
	return s
}

// unionBase implements PreparedSampler vacuously: a sharded sampler has
// no single shared join base. Prewarm, Stale, Refresh, and
// PrepareDisjointFrom all dispatch on the concrete type before touching
// it.
func (p *ShardedShared) unionBase() *unionBase { return nil }

// ShardedSampler is one sampling run over the union of shards: per
// tuple, the alias table picks a shard proportionally to |U_s| and the
// shard's run draws uniformly within it — Algorithm 1's join-selection
// shape lifted one level up. Per-shard record state needs no cross-
// shard reconciliation because the shards are disjoint: a value can
// never be produced by two shards.
type ShardedSampler struct {
	shared *ShardedShared
	runs   []Run
	stats  Stats
}

// Sample draws n tuples sequentially on a single stream: alias-select a
// shard, then one draw within it, per tuple. Deterministic for a fixed
// g; the batch path below consumes randomness differently (its streams
// are pinned by their own golden digests).
func (s *ShardedSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		sh := s.shared.alias.Draw(g)
		run := s.runs[sh]
		if run == nil {
			return nil, fmt.Errorf("core: sharded sampler drew empty shard %d", sh)
		}
		t, err := run.Sample(1, g)
		if err != nil {
			return nil, err
		}
		out = append(out, t[0])
	}
	return out, nil
}

// SampleBatch draws n tuples through the batch engine: shard
// assignments are drawn first (recording order and counts), each busy
// shard executes one per-shard sub-batch on its own stream derived from
// a single base draw, sub-batches run on a worker pool bounded by the
// configured workers, and results merge back in assignment order with
// no cross-shard locks. The merged stream is bit-identical however many
// workers actually run — scheduling affects only wall clock.
func (s *ShardedSampler) SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if n <= 0 {
		return []relation.Tuple{}, nil
	}
	shards := len(s.runs)
	order := make([]int32, n)
	counts := make([]int, shards)
	for i := range order {
		sh := s.shared.alias.Draw(g)
		order[i] = int32(sh)
		counts[sh]++
	}
	base := int64(g.Uint64())
	parts := make([][]relation.Tuple, shards)
	errs := make([]error, shards)
	busy := make([]int, 0, shards)
	for sh, c := range counts {
		if c == 0 {
			continue
		}
		if s.runs[sh] == nil {
			return nil, fmt.Errorf("core: sharded sampler drew empty shard %d", sh)
		}
		busy = append(busy, sh)
	}
	drawShard := func(sh int) {
		parts[sh], errs[sh] = s.runs[sh].SampleBatch(counts[sh], rng.New(DeriveSeed(base, int64(sh))))
	}
	if len(busy) == 1 || s.shared.workers <= 1 {
		for _, sh := range busy {
			drawShard(sh)
		}
	} else {
		sem := make(chan struct{}, s.shared.workers)
		var wg sync.WaitGroup
		for _, sh := range busy {
			wg.Add(1)
			sem <- struct{}{}
			go func(sh int) {
				defer wg.Done()
				drawShard(sh)
				<-sem
			}(sh)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]relation.Tuple, n)
	cursor := make([]int, shards)
	for i, sh := range order {
		out[i] = parts[sh][cursor[sh]]
		cursor[sh]++
	}
	return out, nil
}

// Stats merges the per-shard runs' instrumentation by summation (the
// counters are counts of disjoint work; the sampled durations add the
// same way). Per-join breakdowns sum element-wise — shard join i is a
// fragment of union join i — except WalkVariance, where the merge
// keeps the worst (largest) shard's half-width: a join is only as
// converged as its least-converged fragment. The merge is recomputed
// on every call, so it reflects all draws so far.
func (s *ShardedSampler) Stats() *Stats {
	m := Stats{TimingSampled: true}
	m.initJoins(len(s.shared.origJoins))
	for _, r := range s.runs {
		if r == nil {
			continue
		}
		st := r.Stats()
		for j, jb := range st.Joins {
			if j >= len(m.Joins) {
				break
			}
			m.Joins[j].Accepted += jb.Accepted
			m.Joins[j].Rejected += jb.Rejected
			m.Joins[j].Draws += jb.Draws
			if jb.WalkVariance > m.Joins[j].WalkVariance {
				m.Joins[j].WalkVariance = jb.WalkVariance
			}
		}
		m.Accepted += st.Accepted
		m.RejectedDup += st.RejectedDup
		m.Revised += st.Revised
		m.RevisedRemoved += st.RevisedRemoved
		m.JoinRejects += st.JoinRejects
		m.ReuseAccepted += st.ReuseAccepted
		m.ReuseRejected += st.ReuseRejected
		m.Backtracks += st.Backtracks
		m.BacktrackDropped += st.BacktrackDropped
		m.TotalDraws += st.TotalDraws
		m.WarmupTime += st.WarmupTime
		m.AcceptTime += st.AcceptTime
		m.RejectTime += st.RejectTime
		m.ReuseTime += st.ReuseTime
		m.RegularTime += st.RegularTime
		m.TimingSampled = m.TimingSampled && st.TimingSampled
	}
	s.stats = m
	return &s.stats
}

// Params returns the shared aggregate parameters. Online runs refine
// their shard-local parameters internally; the aggregate view reported
// here is the warm-up estimate.
func (s *ShardedSampler) Params() *Params { return s.shared.params }
