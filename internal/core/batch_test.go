package core

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// TestCoverBatchUniform drives the batch engine of Algorithm 1 through
// the same uniformity check as the sequential path, across subroutines
// and record modes.
func TestCoverBatchUniform(t *testing.T) {
	cases := []struct {
		name   string
		method JoinMethod
		oracle bool
		slack  float64
	}{
		{"ew-oracle", MethodEW, true, 1},
		{"ew-record", MethodEW, false, 3},
		{"eo-oracle", MethodEO, true, 1},
		{"wj-oracle", MethodWJ, true, 1},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			joins := fixtureJoins(t)
			shared, err := PrepareCover(joins, CoverConfig{
				Method:    c.method,
				Estimator: &ExactEstimator{Joins: joins},
				Oracle:    c.oracle,
			}, rng.New(int64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			run := shared.NewRun()
			checkUniformUnion(t, joins, 60000, c.slack, run.SampleBatch, rng.New(int64(200+i)))
		})
	}
}

// TestOnlineBatchUniform drives the online batch engine through the
// uniformity check (estimated parameters: generous slack, as in the
// sequential online test).
func TestOnlineBatchUniform(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareOnline(joins, OnlineConfig{WarmupWalks: 400}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	run := shared.NewRun()
	checkUniformUnion(t, joins, 40000, 8, run.SampleBatch, rng.New(32))
}

// TestDisjointBatchMatchesSequential: the disjoint batch engine keeps
// Definition 1's distribution — checked against the sequential
// disjoint sampler's empirical frequencies with a two-sample-style
// tolerance, and by exact membership.
func TestDisjointBatchUniform(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareDisjoint(joins, DisjointConfig{Method: MethodEW})
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	const n = 60000
	batchCounts := make([]int, len(idx))
	out, err := shared.NewRun().SampleBatch(n, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		i, ok := idx[relation.TupleKey(tu)]
		if !ok {
			t.Fatalf("batch disjoint sample %v not in union", tu)
		}
		batchCounts[i]++
	}
	seqCounts := make([]int, len(idx))
	seqOut, err := shared.NewRun().Sample(n, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range seqOut {
		seqCounts[idx[relation.TupleKey(tu)]]++
	}
	// Two-sample chi-square: batch and sequential disjoint draws come
	// from the same (multiplicity-weighted) distribution.
	chi := 0.0
	for i := range batchCounts {
		a, b := float64(batchCounts[i]), float64(seqCounts[i])
		if a+b == 0 {
			continue
		}
		d := a - b
		chi += d * d / (a + b)
	}
	dof := float64(len(batchCounts) - 1)
	if limit := dof + 6*math.Sqrt(2*dof) + 6; chi > limit {
		t.Errorf("two-sample chi2 = %.1f over %.0f dof (limit %.1f)", chi, dof, limit)
	}
}

// TestSampleWhereBatch: predicate enforcement on the batch engine is
// uniform over the satisfying subset, honors maxDraws, and fails
// cleanly on empty support.
func TestSampleWhereBatch(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareCover(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	}, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	schema := joins[0].OutputSchema()
	pred := relation.Cmp{Attr: "K", Op: relation.LT, Val: 40}
	run := shared.NewRun()
	out, err := SampleWhereBatch(run, schema, pred, 5000, rng.New(52), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5000 {
		t.Fatalf("got %d", len(out))
	}
	for _, tu := range out {
		if !pred.Eval(tu, schema) {
			t.Fatalf("batch where returned non-matching %v", tu)
		}
	}
	// Empty support: a clean error once maxDraws is exhausted.
	never := relation.Cmp{Attr: "K", Op: relation.LT, Val: -1}
	if _, err := SampleWhereBatch(shared.NewRun(), schema, never, 10, rng.New(53), 500); err == nil {
		t.Fatal("empty-support predicate did not error")
	}
}

// TestBatchContinuesRun: like Sample, SampleBatch serves buffered
// tuples from earlier calls on the same run first — consecutive calls
// continue one stream, mixing sequential and batch calls included.
func TestBatchContinuesRun(t *testing.T) {
	joins := fixtureJoins(t)
	shared, err := PrepareCover(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	run := shared.NewRun()
	g := rng.New(62)
	a, err := run.SampleBatch(10, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run.Sample(10, g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := run.SampleBatch(10, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 || len(c) != 10 {
		t.Fatalf("lengths %d/%d/%d", len(a), len(b), len(c))
	}
	if run.Stats().Accepted < 30 {
		t.Fatalf("stats accepted = %d", run.Stats().Accepted)
	}
}
