package core

import (
	"strings"
	"testing"

	"sampleunion/internal/histest"
	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// TestBernoulliRecordMode exercises the dynamic first-observed-join
// record of the union trick (non-oracle path).
func TestBernoulliRecordMode(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewBernoulliSampler(joins, BernoulliConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	out, err := s.Sample(5000, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("record-mode Bernoulli produced non-union tuple %v", tu)
		}
	}
	if s.Stats().RejectedDup == 0 {
		t.Error("record never rejected on overlapping joins")
	}
	if s.Params() == nil {
		t.Error("Params nil after sampling")
	}
}

// TestBernoulliEOProbabilitiesClamped: under EO bounds the selection
// probability uses bound/|U| with |U| >= max bound, so it stays a
// probability; the run must terminate and stay inside the union.
func TestBernoulliEOSampler(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewBernoulliSampler(joins, BernoulliConfig{
		Method:    MethodEO,
		Estimator: &HistogramEstimator{Joins: joins, Opts: histest.Options{Sizes: histest.SizeEO}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(rng.New(32)); err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	for j := range joins {
		if p.JoinSizes[j] > p.UnionSize+1e-9 {
			t.Fatalf("selection probability %f > 1", p.JoinSizes[j]/p.UnionSize)
		}
	}
	idx := unionIndex(t, joins)
	out, err := s.Sample(1000, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("EO Bernoulli produced non-union tuple %v", tu)
		}
	}
}

// TestCoverSamplerNoProgress: a join whose estimated cover is positive
// but whose data is empty must fail with a clear error instead of
// spinning.
func TestCoverSamplerNoProgress(t *testing.T) {
	empty := relation.New("E", relation.NewSchema("K", "X"))
	je, err := join.NewChain("JE", []*relation.Relation{empty}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCoverSampler([]*join.Join{je}, CoverConfig{
		Method:               MethodEW,
		Estimator:            &fakeEstimator{sizes: []float64{100}},
		MaxDrawsPerSelection: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Sample(1, rng.New(34))
	if err == nil {
		t.Fatal("no-progress sampling succeeded")
	}
	if !strings.Contains(err.Error(), "no progress") {
		t.Errorf("unexpected error: %v", err)
	}
}

// fakeEstimator reports fabricated parameters, for failure-injection
// tests.
type fakeEstimator struct{ sizes []float64 }

func (f *fakeEstimator) Name() string { return "fake" }

func (f *fakeEstimator) Params(*rng.RNG) (*Params, error) {
	n := len(f.sizes)
	p := &Params{JoinSizes: f.sizes, Cover: f.sizes}
	for _, s := range f.sizes {
		p.UnionSize += s
	}
	_ = n
	return p, nil
}

// TestCoverSamplerZeroCoverFails: an all-zero cover is reported at
// warm-up.
func TestCoverSamplerZeroCoverFails(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &fakeEstimator{sizes: []float64{0, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(rng.New(35)); err == nil {
		t.Fatal("zero cover accepted")
	}
}

// TestDisjointVsSetUnionSizes: disjoint sampling treats duplicates as
// distinct — the expected frequency of an overlap value is double its
// set-union frequency (two-join fixture regions).
func TestDisjointSamplerStats(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewDisjointSampler(joins, MethodEW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(500, rng.New(36)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Accepted != 500 {
		t.Errorf("accepted = %d", st.Accepted)
	}
	if st.RejectedDup != 0 {
		t.Errorf("disjoint sampler rejected duplicates: %d", st.RejectedDup)
	}
	if st.TotalDraws < 500 {
		t.Errorf("draws = %d", st.TotalDraws)
	}
}

// TestOnlineGammaStopsBacktracking: once confidence reaches Gamma, no
// further parameter updates run.
func TestOnlineGammaStopsBacktracking(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{
		WarmupWalks: 0,
		Phi:         10,
		Gamma:       0.01, // trivially reached after the first update
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(2000, rng.New(37)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Backtracks; got != 1 {
		t.Errorf("backtracks = %d, want exactly 1 (gamma reached immediately)", got)
	}
}

// TestRandomWalkEstimatorRetainsWalker: the estimator must expose its
// walker so the online path can reuse pools.
func TestRandomWalkEstimatorRetainsWalker(t *testing.T) {
	joins := fixtureJoins(t)
	est := &RandomWalkEstimator{Joins: joins}
	if _, err := est.Params(rng.New(38)); err != nil {
		t.Fatal(err)
	}
	if est.Walker == nil {
		t.Fatal("walker not retained")
	}
	pools := 0
	for _, je := range est.Walker.JoinEstimates() {
		pools += len(je.Samples())
	}
	if pools == 0 {
		t.Error("no reuse pool retained after warm-up")
	}
}

// TestCoverSamplerWJMethod: the Wander Join subroutine produces uniform
// union samples like EW/EO.
func TestCoverSamplerWJMethod(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodWJ,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkUniformUnion(t, joins, 40000, 1.5, s.Sample, rng.New(63))
}

func TestJoinMethodNames(t *testing.T) {
	if MethodEW.String() != "EW" || MethodEO.String() != "EO" || MethodWJ.String() != "WJ" {
		t.Error("method names wrong")
	}
}
