package core

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

func TestSampleWhereUniformOverSubset(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := joins[0].OutputSchema()
	pred := relation.Cmp{Attr: "K", Op: relation.LT, Val: 40}
	g := rng.New(21)
	const n = 30000
	out, err := SampleWhere(s, schema, pred, n, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d", len(out))
	}
	// Uniformity over the satisfying subset of the union.
	idx := unionIndex(t, joins)
	satisfying := make(map[string]int)
	kPos := schema.Index("K")
	counts := make(map[string]int)
	for _, tu := range out {
		if tu[kPos] >= 40 {
			t.Fatalf("predicate violated: %v", tu)
		}
		k := relation.TupleKey(tu)
		if _, ok := idx[k]; !ok {
			t.Fatalf("sample outside union: %v", tu)
		}
		counts[k]++
		satisfying[k] = 0
	}
	// All satisfying union values should appear; chi-square over them.
	cells := len(satisfying)
	expected := float64(n) / float64(cells)
	chi := 0.0
	for k := range satisfying {
		d := float64(counts[k]) - expected
		chi += d * d / expected
	}
	dof := float64(cells - 1)
	if limit := dof + 6*math.Sqrt(2*dof) + 6; chi > limit {
		t.Errorf("conditional chi2 = %.1f over %.0f dof (limit %.1f)", chi, dof, limit)
	}
}

func TestSampleWhereEmptySupport(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	})
	if err != nil {
		t.Fatal(err)
	}
	pred := relation.Cmp{Attr: "K", Op: relation.GT, Val: 10000}
	_, err = SampleWhere(s, joins[0].OutputSchema(), pred, 10, rng.New(22), 500)
	if err == nil {
		t.Fatal("empty-support predicate did not fail")
	}
}

func TestSampleStreaming(t *testing.T) {
	// Consecutive Sample calls must continue the stream, not replay it:
	// with a seeded RNG the concatenation of two calls equals one big
	// call only in distribution, so check non-replay directly via the
	// accepted counter.
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(23)
	a, err := s.Sample(100, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample(100, g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Accepted < 200 {
		t.Fatalf("accepted = %d; second call replayed the buffer", s.Stats().Accepted)
	}
	// Both batches are valid union tuples.
	idx := unionIndex(t, joins)
	for _, tu := range append(a, b...) {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("invalid tuple %v", tu)
		}
	}
}

func TestOnlineSampleStreaming(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewOnlineSampler(joins, OnlineConfig{WarmupWalks: 200, Phi: 100})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(24)
	if _, err := s.Sample(150, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(150, g); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Accepted < 300 {
		t.Fatalf("accepted = %d; online stream replayed", s.Stats().Accepted)
	}
}
