package core

import (
	"fmt"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// This file is the batch draw engine: batch variants of the cover,
// online, and disjoint samplers. A batch call produces n tuples with
// exactly the per-tuple distribution of n sequential draws — join
// selection stays per-tuple (batching it across tuples would correlate
// samples that must be independent) — but amortizes everything that the
// sequential path pays per draw:
//
//   - the subroutine acceptance loop runs devirtualized inside one
//     SampleManyInto call per union-level candidate, instead of one
//     interface dispatch per join-level attempt;
//   - EW weighted-row selection goes through O(1) alias tables instead
//     of an O(log fan-out) binary search at every walk step;
//   - the wall clock is read once per batch, not per attempt;
//   - the result buffer is grown once to the batch size.
//
// Batch draws consume the RNG stream differently from the sequential
// path (alias tables and exact integer bounded draws), so batch
// streams are pinned by their own golden digests; sequential Sample
// streams stay byte-identical to their pre-batch recordings.

// BatchSampler is a sampling run with a batch draw engine.
type BatchSampler interface {
	UnionSampler
	// SampleBatch draws n tuples with the per-tuple distribution of n
	// sequential draws at amortized per-draw cost.
	SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error)
}

var (
	_ BatchSampler = (*CoverSampler)(nil)
	_ BatchSampler = (*OnlineSampler)(nil)
	_ BatchSampler = (*DisjointSampler)(nil)
)

// SampleBatch implements the batch engine for Algorithm 1. The
// returned tuples follow exactly the distribution of Sample (Theorem
// 1) and, like Sample, consecutive calls continue the run: buffered
// tuples left by earlier calls are served first, and revisions affect
// only not-yet-returned tuples. The wall clock is read once for the
// whole batch and the elapsed time is attributed to AcceptTime vs
// RejectTime proportionally to the batch's accepted vs rejected
// attempt counts (bookBatchTime) — coarser than the sequential
// per-draw attribution, but the documented field semantics hold;
// counters stay exact.
func (s *CoverSampler) SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	s.result = growEntries(s.result, n)
	s.arena = growArena(s.arena, (n-len(s.result))*s.shared.base.ref.Len())
	before := s.stats
	start := time.Now()
	for len(s.result) < n {
		if err := s.batchDrawOne(g); err != nil {
			return nil, err
		}
	}
	s.stats.bookBatchTime(&before, time.Since(start))
	return s.serveResult(n), nil
}

// batchDrawOne is drawOne on the batch engine: the same join
// selection, within-join redraw, and record/revision logic, with the
// join-level acceptance loop running inside the subroutine
// (SampleManyInto) and no per-attempt clock reads.
func (s *CoverSampler) batchDrawOne(g *rng.RNG) error {
	for selections := 0; ; selections++ {
		if selections > 64 {
			return fmt.Errorf("core: cover sampler made no progress after %d join selections", selections)
		}
		j := s.shared.alias.Draw(g)
		sampler := s.shared.base.samplers[j]
		budget := s.shared.maxDraw
		for budget > 0 {
			got, tries := sampler.SampleManyInto(s.scratch.many, s.scratch.rowOf, budget, g)
			budget -= tries
			s.stats.TotalDraws += tries
			s.stats.JoinRejects += tries - got
			s.stats.Joins[j].Draws += tries
			s.stats.Joins[j].Rejected += tries - got
			if got == 0 {
				break // budget exhausted or dead join: reselect
			}
			if s.acceptDraw(j, s.scratch.out) {
				s.stats.Accepted++
				s.stats.Joins[j].Accepted++
				return nil
			}
			// Union-level duplicate: redraw within the same join, as the
			// sequential path does (Theorem 1's conditional).
		}
	}
}

// SampleBatch implements the batch engine for Algorithm 2: identical
// sampling decisions to drawOne/maybeBacktrack (walks still feed the
// run's estimates one at a time — each walk updates the parameters the
// next draw samples under), with the per-attempt wall-clocking dropped
// and the result buffer grown once. Whole-batch time splits across
// Accept/Reject and Reuse/Regular proportionally to the batch's
// attempt counts (bookBatchTime).
func (s *OnlineSampler) SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	s.result = growOnlineEntries(s.result, n)
	s.arena = growArena(s.arena, (n-len(s.result))*s.shared.base.ref.Len())
	before := s.stats
	start := time.Now()
	for len(s.result) < n {
		if err := s.batchDrawOne(g); err != nil {
			return nil, err
		}
		if err := s.maybeBacktrack(g); err != nil {
			return nil, err
		}
	}
	s.stats.bookBatchTime(&before, time.Since(start))
	return s.serveResult(n), nil
}

// batchDrawOne is the online drawOne without per-attempt clock reads;
// candidate generation, reuse, record, and revision logic are shared
// with the sequential path.
func (s *OnlineSampler) batchDrawOne(g *rng.RNG) error {
	for selections := 0; ; selections++ {
		if selections > 64 {
			return fmt.Errorf("core: online sampler made no progress after %d selections", selections)
		}
		j := s.alias.Draw(g)
		for attempt := 0; attempt < s.shared.maxDraw; attempt++ {
			t, mult, reuse, ok := s.candidate(j, g)
			if !ok {
				continue
			}
			if k, ok := s.acceptValue(j, t); ok {
				s.commit(k, j, t, mult)
				if reuse {
					s.stats.ReuseAccepted++
				}
				return nil
			}
			s.stats.RejectedDup++
		}
	}
}

// batchDisjointChunk bounds the subroutine attempts one disjoint batch
// iteration may consume before control returns to the engine loop.
const batchDisjointChunk = 1

// SampleBatch implements the batch engine for Definition 1's disjoint
// sampler. Every iteration selects a join and attempts exactly one
// subroutine draw, like the sequential path — under EO the bound
// weights renormalize through full reselection, so retrying within a
// join would bias the distribution — but the draw runs through
// SampleManyInto (alias tables, no per-attempt clocking).
func (s *DisjointSampler) SampleBatch(n int, g *rng.RNG) ([]relation.Tuple, error) {
	k := s.shared.base.ref.Len()
	flat := make([]relation.Value, 0, n*k)
	out := make([]relation.Tuple, 0, n)
	before := s.stats
	start := time.Now()
	for len(out) < n {
		j := s.shared.alias.Draw(g)
		got, tries := s.shared.base.samplers[j].SampleManyInto(s.scratch.many, s.scratch.rowOf, batchDisjointChunk, g)
		s.stats.TotalDraws += tries
		s.stats.JoinRejects += tries - got
		s.stats.Joins[j].Draws += tries
		s.stats.Joins[j].Rejected += tries - got
		if got == 0 {
			continue
		}
		off := len(flat)
		flat = s.shared.base.alignedAppend(j, s.scratch.out, flat)
		out = append(out, relation.Tuple(flat[off:len(flat):len(flat)]))
		s.stats.Accepted++
		s.stats.Joins[j].Accepted++
	}
	s.stats.bookBatchTime(&before, time.Since(start))
	return out, nil
}

// growEntries grows a result buffer's capacity to n entries without
// changing its contents, so a batch fill allocates at most once.
func growEntries(r []resultEntry, n int) []resultEntry {
	if cap(r) >= n {
		return r
	}
	nr := make([]resultEntry, len(r), n)
	copy(nr, r)
	return nr
}

func growOnlineEntries(r []onlineEntry, n int) []onlineEntry {
	if cap(r) >= n {
		return r
	}
	nr := make([]onlineEntry, len(r), n)
	copy(nr, r)
	return nr
}

// SampleWhereBatch is SampleWhere on the batch engine: candidate draws
// come in need-sized chunks (at least whereChunk at a time) so the
// rejection loop pays batch prices. Conditioning a uniform stream on
// the predicate keeps it uniform over the satisfying subset, exactly
// as in SampleWhere; maxDraws (0 means 1000·n) caps total draws so an
// empty-support predicate fails cleanly.
func SampleWhereBatch(s BatchSampler, schema *relation.Schema, pred relation.Predicate, n int, g *rng.RNG, maxDraws int) ([]relation.Tuple, error) {
	return sampleWhereLoop(s.SampleBatch, schema, pred, n, g, maxDraws, func(need int) int {
		if need < whereChunk {
			return whereChunk
		}
		return need
	})
}
