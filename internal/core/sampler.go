package core

import (
	"fmt"

	"sampleunion/internal/join"
	"sampleunion/internal/joinsample"
	"sampleunion/internal/relation"
)

// JoinMethod selects the single-join sampling subroutine (§3.2).
type JoinMethod int

const (
	// MethodEW uses Exact Weight sampling: zero rejection, setup cost
	// linear in the data.
	MethodEW JoinMethod = iota
	// MethodEO uses Extended Olken sampling: cheap setup, rejection
	// rate grows with skew.
	MethodEO
	// MethodWJ uses Wander Join walks thinned against the Olken bound:
	// index-only setup like EO, same acceptance rate, but the walk
	// finds heavy results proportionally to fan-in and corrects
	// analytically (§3.2's third weight instantiation).
	MethodWJ
)

func (m JoinMethod) String() string {
	switch m {
	case MethodEW:
		return "EW"
	case MethodWJ:
		return "WJ"
	}
	return "EO"
}

// newJoinSampler builds the subroutine sampler for one join.
func newJoinSampler(j *join.Join, m JoinMethod) joinsample.Sampler {
	switch m {
	case MethodEW:
		return joinsample.NewEW(j)
	case MethodWJ:
		return joinsample.NewWJ(j)
	}
	return joinsample.NewEO(j)
}

// unionBase holds what every union sampler shares: the joins, their
// subroutine samplers, and tuple-key alignment to the reference output
// schema (the first join's), so one value has one key across joins.
type unionBase struct {
	joins    []*join.Join
	samplers []joinsample.Sampler
	ref      *relation.Schema
	perms    [][]int // nil when the join's schema already matches ref
}

func newUnionBase(joins []*join.Join, m JoinMethod) (*unionBase, error) {
	if err := validateUnion(joins); err != nil {
		return nil, err
	}
	b := &unionBase{
		joins:    joins,
		samplers: make([]joinsample.Sampler, len(joins)),
		ref:      joins[0].OutputSchema(),
		perms:    make([][]int, len(joins)),
	}
	for i, j := range joins {
		b.samplers[i] = newJoinSampler(j, m)
		if !j.OutputSchema().Equal(b.ref) {
			perm, err := alignPerm(b.ref, j)
			if err != nil {
				return nil, err
			}
			b.perms[i] = perm
		}
	}
	return b, nil
}

func alignPerm(ref *relation.Schema, j *join.Join) ([]int, error) {
	s := j.OutputSchema()
	perm := make([]int, ref.Len())
	for i := 0; i < ref.Len(); i++ {
		p := s.Index(ref.Attr(i))
		if p < 0 {
			return nil, fmt.Errorf("core: join %s lacks attribute %q", j.Name(), ref.Attr(i))
		}
		perm[i] = p
	}
	return perm, nil
}

// aligned returns t (a tuple in join i's schema order) expressed in the
// reference schema order. The result aliases t when no permutation is
// needed.
func (b *unionBase) aligned(i int, t relation.Tuple) relation.Tuple {
	perm := b.perms[i]
	if perm == nil {
		return t
	}
	out := make(relation.Tuple, len(perm))
	for k, p := range perm {
		out[k] = t[p]
	}
	return out
}

// key returns the union-wide identity key of a tuple drawn from join i.
func (b *unionBase) key(i int, t relation.Tuple) string {
	return relation.TupleKey(b.aligned(i, t))
}

// minContaining returns f(t): the smallest join index whose result
// contains the tuple (drawn from join i, so f(t) <= i always holds).
// This is the membership oracle used by the provably uniform variants.
func (b *unionBase) minContaining(i int, t relation.Tuple) int {
	at := b.aligned(i, t)
	for k := range b.joins {
		if k == i {
			return i
		}
		if b.joins[k].ContainsAligned(at, b.ref) {
			return k
		}
	}
	return i
}
