package core

import (
	"fmt"

	"sampleunion/internal/join"
	"sampleunion/internal/joinsample"
	"sampleunion/internal/relation"
)

// JoinMethod selects the single-join sampling subroutine (§3.2).
type JoinMethod int

const (
	// MethodEW uses Exact Weight sampling: zero rejection, setup cost
	// linear in the data.
	MethodEW JoinMethod = iota
	// MethodEO uses Extended Olken sampling: cheap setup, rejection
	// rate grows with skew.
	MethodEO
	// MethodWJ uses Wander Join walks thinned against the Olken bound:
	// index-only setup like EO, same acceptance rate, but the walk
	// finds heavy results proportionally to fan-in and corrects
	// analytically (§3.2's third weight instantiation).
	MethodWJ
)

func (m JoinMethod) String() string {
	switch m {
	case MethodEW:
		return "EW"
	case MethodWJ:
		return "WJ"
	}
	return "EO"
}

// joinConfig is one join's subroutine configuration inside a union
// base: the sampling method plus the alias-table threshold EW batch
// draws build weighted-row alias tables at. Explicitly configured
// unions use one uniform config per join (uniformJoinConfigs), which
// reproduces the pre-tuning behavior exactly; an adaptive plan sets
// them per join.
type joinConfig struct {
	method   JoinMethod
	aliasMin int
}

// uniformJoinConfigs is the non-adaptive configuration: every join
// samples with the same method at the same alias threshold (<= 0
// selects the engine default).
func uniformJoinConfigs(n int, m JoinMethod, aliasMin int) []joinConfig {
	if aliasMin <= 0 {
		aliasMin = joinsample.DefaultAliasThreshold
	}
	cfgs := make([]joinConfig, n)
	for i := range cfgs {
		cfgs[i] = joinConfig{method: m, aliasMin: aliasMin}
	}
	return cfgs
}

// newJoinSampler builds the subroutine sampler for one join.
func newJoinSampler(j *join.Join, c joinConfig) joinsample.Sampler {
	switch c.method {
	case MethodEW:
		return joinsample.NewEWAlias(j, c.aliasMin)
	case MethodWJ:
		return joinsample.NewWJ(j)
	}
	return joinsample.NewEO(j)
}

// unionBase holds what every union sampler shares: the joins, their
// subroutine samplers, tuple-key alignment to the reference output
// schema (the first join's) so one value has one key across joins, and
// prepared membership probes for the oracle path. Everything here is
// read-only after construction and shared between concurrent runs; all
// per-draw scratch lives in the runs (drawScratch).
type unionBase struct {
	joins    []*join.Join
	cfgs     []joinConfig
	samplers []joinsample.Sampler
	ref      *relation.Schema
	perms    [][]int // perms[i][k] = position of ref attr k in join i's schema; nil when equal

	// probes[i][k] tests membership of a tuple in join i's schema order
	// against join k — the allocation-free path behind minContaining,
	// which only ever scans k < i, so just the lower triangle is built.
	probes [][]join.AlignedProbe

	// vers[i] snapshots join i's relation versions when its subroutine
	// sampler was built; Refresh compares against fresh snapshots to
	// rebuild only the dirty joins' samplers.
	vers [][]uint64

	maxNodes int // scratch sizing: most tree nodes over all joins
}

// newUnionBase builds the shared join machinery with one subroutine
// sampler per join, per cfgs. deferSamplers leaves the samplers nil —
// the adaptive warm-up path plans per-join configs from the warm-up
// statistics first and then builds every sampler once, via
// applyJoinConfigs, instead of building a provisional set it would
// immediately discard.
func newUnionBase(joins []*join.Join, cfgs []joinConfig, deferSamplers bool) (*unionBase, error) {
	if err := validateUnion(joins); err != nil {
		return nil, err
	}
	b := &unionBase{
		joins:    joins,
		cfgs:     cfgs,
		samplers: make([]joinsample.Sampler, len(joins)),
		ref:      joins[0].OutputSchema(),
		perms:    make([][]int, len(joins)),
		probes:   make([][]join.AlignedProbe, len(joins)),
		vers:     make([][]uint64, len(joins)),
	}
	for i, j := range joins {
		// A cyclic join whose residual members mutated since
		// construction must reconcile before samplers snapshot its
		// degrees and link index.
		j.FreshenResidual()
		b.vers[i] = j.StateVersions()
		if !deferSamplers {
			b.samplers[i] = newJoinSampler(j, cfgs[i])
		}
		if !j.OutputSchema().Equal(b.ref) {
			perm, err := alignPerm(b.ref, j)
			if err != nil {
				return nil, err
			}
			b.perms[i] = perm
		}
		if n := len(j.Nodes()); n > b.maxNodes {
			b.maxNodes = n
		}
	}
	for i, ji := range joins {
		b.probes[i] = make([]join.AlignedProbe, i)
		for k := 0; k < i; k++ {
			p, ok := joins[k].AlignProbe(ji.OutputSchema())
			if !ok {
				return nil, fmt.Errorf("core: join %s not alignable to %s", joins[k].Name(), ji.Name())
			}
			b.probes[i][k] = p
		}
	}
	return b, nil
}

// dirtyJoins reports, per join, whether any underlying relation mutated
// since the join's subroutine sampler was built, and whether any did.
func (b *unionBase) dirtyJoins() ([]bool, bool) {
	dirty := make([]bool, len(b.joins))
	any := false
	for i, j := range b.joins {
		cur := j.StateVersions()
		for k, v := range cur {
			if k >= len(b.vers[i]) || b.vers[i][k] != v {
				dirty[i] = true
				any = true
				break
			}
		}
	}
	return dirty, any
}

// clone returns a copy of the base whose per-join slices (samplers,
// configs, version snapshots) are private, so the copy can rebuild
// individual joins without touching the original. Schema alignment and
// membership probes are version-independent and shared as-is.
func (b *unionBase) clone() *unionBase {
	nb := *b
	nb.samplers = append([]joinsample.Sampler(nil), b.samplers...)
	nb.cfgs = append([]joinConfig(nil), b.cfgs...)
	nb.vers = append([][]uint64(nil), b.vers...)
	return &nb
}

// refreshed returns a copy of the base whose dirty joins have
// reconciled residuals and freshly built subroutine samplers; clean
// joins share their samplers with the old base.
func (b *unionBase) refreshed() (*unionBase, []bool, bool) {
	dirty, any := b.dirtyJoins()
	if !any {
		return b, dirty, false
	}
	nb := b.clone()
	for i, d := range dirty {
		if !d {
			continue
		}
		nb.joins[i].FreshenResidual()
		nb.vers[i] = nb.joins[i].StateVersions()
		nb.samplers[i] = newJoinSampler(nb.joins[i], b.cfgs[i])
	}
	return nb, dirty, true
}

// refreshedLazy is refreshed for the adaptive path: dirty joins
// reconcile their residuals and drop their samplers instead of
// rebuilding them eagerly — the re-plan inside the subsequent warm-up
// rebuilds them once, under the new plan's configs.
func (b *unionBase) refreshedLazy() (*unionBase, []bool, bool) {
	dirty, any := b.dirtyJoins()
	if !any {
		return b, dirty, false
	}
	nb := b.clone()
	for i, d := range dirty {
		if !d {
			continue
		}
		nb.joins[i].FreshenResidual()
		nb.vers[i] = nb.joins[i].StateVersions()
		nb.samplers[i] = nil
	}
	return nb, dirty, true
}

// applyJoinConfigs installs a plan's per-join configs, rebuilding
// exactly the samplers whose config changed (or was never built, on
// the deferred path). Only safe before the base is published to runs.
func (b *unionBase) applyJoinConfigs(cfgs []joinConfig) {
	for i := range b.joins {
		if b.samplers[i] == nil || b.cfgs[i] != cfgs[i] {
			b.cfgs[i] = cfgs[i]
			b.samplers[i] = newJoinSampler(b.joins[i], cfgs[i])
		}
	}
}

func alignPerm(ref *relation.Schema, j *join.Join) ([]int, error) {
	s := j.OutputSchema()
	perm := make([]int, ref.Len())
	for i := 0; i < ref.Len(); i++ {
		p := s.Index(ref.Attr(i))
		if p < 0 {
			return nil, fmt.Errorf("core: join %s lacks attribute %q", j.Name(), ref.Attr(i))
		}
		perm[i] = p
	}
	return perm, nil
}

// drawScratch is the per-run buffer set behind the allocation-free draw
// path: subroutine samplers fill out/rowOf in place, and only tuples
// actually entering a result buffer are cloned. Each run owns its own
// scratch, so shared samplers stay race-free.
type drawScratch struct {
	out   relation.Tuple
	rowOf []int
	// many is the one-slot batch view of out handed to the subroutines'
	// SampleManyInto: union-level accept/reject runs per candidate, so
	// the union engines batch at the call level (one devirtualized
	// acceptance loop per candidate) while keeping per-tuple join
	// selection — which is what preserves sample independence.
	many []relation.Tuple
}

func (b *unionBase) newScratch() drawScratch {
	s := drawScratch{
		out:   make(relation.Tuple, b.ref.Len()),
		rowOf: make([]int, b.maxNodes),
	}
	s.many = []relation.Tuple{s.out}
	return s
}

// recordKeys returns an empty tuple-keyed table for per-run records:
// keys are tuples in reference schema order, inserted through the
// join-specific alignment projection (recordProj).
func (b *unionBase) recordKeys() *relation.KeyCounter {
	return relation.NewKeyCounter(b.ref.Len(), 0)
}

// recordProj is the projection that maps a tuple in join i's schema
// order onto the reference order for record lookups (nil = identity).
func (b *unionBase) recordProj(i int) []int { return b.perms[i] }

// alignedAppend appends the values of t (a tuple in join i's schema
// order) to arena in reference schema order. Accepted draws ride this
// zero-clone path: buffered samples live as k-wide spans of a run-owned
// arena and copy out as one flat allocation per batch, instead of one
// tuple allocation per accepted draw.
func (b *unionBase) alignedAppend(i int, t relation.Tuple, arena []relation.Value) []relation.Value {
	perm := b.perms[i]
	if perm == nil {
		return append(arena, t...)
	}
	for _, p := range perm {
		arena = append(arena, t[p])
	}
	return arena
}

// growArena ensures arena has room for need more values without
// reallocating mid-batch.
func growArena(arena []relation.Value, need int) []relation.Value {
	if need <= 0 || cap(arena)-len(arena) >= need {
		return arena
	}
	na := make([]relation.Value, len(arena), len(arena)+need)
	copy(na, arena)
	return na
}

// serveFlat copies n buffered spans of arena out as tuples over one
// flat backing: two allocations for the whole batch. offAt(i) returns
// the i-th served entry's arena offset; k is the tuple width.
func serveFlat(arena []relation.Value, n, k int, offAt func(int) int) []relation.Tuple {
	flat := make([]relation.Value, n*k)
	out := make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		off := offAt(i)
		copy(flat[i*k:(i+1)*k], arena[off:off+k])
		out[i] = relation.Tuple(flat[i*k : (i+1)*k : (i+1)*k])
	}
	return out
}

// minContaining returns f(t): the smallest join index whose result
// contains the tuple (drawn from join i, so f(t) <= i always holds).
// This is the membership oracle used by the provably uniform variants.
// The probes are prepared at construction, so the scan allocates
// nothing.
func (b *unionBase) minContaining(i int, t relation.Tuple) int {
	for k := range b.probes[i] {
		if b.probes[i][k].Contains(t) {
			return k
		}
	}
	return i
}
