package core

import (
	"errors"
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

func exactFactory(joins []*join.Join, g *rng.RNG) (PreparedSampler, error) {
	return PrepareCover(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
	}, g)
}

func prepareShardedFixture(t *testing.T, shards int) (*ShardedShared, []*join.Join) {
	t.Helper()
	joins := fixtureJoins(t)
	p, err := PrepareSharded(joins, ShardedConfig{
		Shards:  shards,
		Factory: exactFactory,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return p, joins
}

func TestPartitionAttrPicksWidestHolder(t *testing.T) {
	joins := fixtureJoins(t) // chains a(K,X) ⋈ b(K,Y): K held by both relations
	if attr := PartitionAttr(joins); attr != "K" {
		t.Fatalf("chose %q, want K (held by every relation)", attr)
	}
}

func TestShardedAggregatesMatchUnsharded(t *testing.T) {
	p, joins := prepareShardedFixture(t, 4)
	flat, err := exactFactory(joins, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	sp, fp := p.Params(), flat.Params()
	// Exact per-shard parameters over a disjoint partition must sum to
	// the exact unsharded parameters.
	if math.Abs(sp.UnionSize-fp.UnionSize) > 1e-6 {
		t.Fatalf("sharded |U| %g, unsharded %g", sp.UnionSize, fp.UnionSize)
	}
	for j := range fp.JoinSizes {
		if math.Abs(sp.JoinSizes[j]-fp.JoinSizes[j]) > 1e-6 {
			t.Fatalf("join %d size: sharded %g, unsharded %g", j, sp.JoinSizes[j], fp.JoinSizes[j])
		}
		if math.Abs(sp.Cover[j]-fp.Cover[j]) > 1e-6 {
			t.Fatalf("join %d cover: sharded %g, unsharded %g", j, sp.Cover[j], fp.Cover[j])
		}
	}
	weights := p.ShardWeights()
	if len(weights) != 4 {
		t.Fatalf("%d weights", len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-fp.UnionSize) > 1e-6 {
		t.Fatalf("shard weights sum to %g, |U| is %g", sum, fp.UnionSize)
	}
	if p.Shards() != 4 || p.Attr() != "K" {
		t.Fatalf("Shards=%d Attr=%q", p.Shards(), p.Attr())
	}
}

func TestShardedDrawsAreMembersAndDeterministic(t *testing.T) {
	p, joins := prepareShardedFixture(t, 3)
	idx := unionIndex(t, joins)
	draw := func(batch bool) []relation.Tuple {
		run := p.NewRun()
		var out []relation.Tuple
		var err error
		if batch {
			out, err = run.SampleBatch(400, rng.New(5))
		} else {
			out, err = run.Sample(400, rng.New(5))
		}
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, batch := range []bool{false, true} {
		a, b := draw(batch), draw(batch)
		for i := range a {
			if _, ok := idx[relation.TupleKey(a[i])]; !ok {
				t.Fatalf("draw %v not in the union", a[i])
			}
			if !a[i].Equal(b[i]) {
				t.Fatalf("draw %d nondeterministic: %v vs %v", i, a[i], b[i])
			}
		}
	}
	run := p.NewRun()
	if _, err := run.SampleBatch(100, rng.New(9)); err != nil {
		t.Fatal(err)
	}
	st := run.Stats()
	if st.Accepted == 0 || st.TotalDraws < st.Accepted {
		t.Fatalf("merged stats implausible: %+v", st)
	}
	if run.Params().UnionSize != p.Params().UnionSize {
		t.Fatal("run params differ from shared aggregate")
	}
}

func TestShardedToleratesEmptyShards(t *testing.T) {
	// One key value: every row hashes to a single shard, the rest are
	// empty fragments whose preparation yields ErrEmptyUnion internally.
	a := relation.New("a", relation.NewSchema("K", "X"))
	b := relation.New("b", relation.NewSchema("K", "Y"))
	for i := 0; i < 10; i++ {
		a.AppendValues(1, relation.Value(i))
		b.AppendValues(1, relation.Value(100+i))
	}
	j, err := join.NewChain("c", []*relation.Relation{a, b}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PrepareSharded([]*join.Join{j}, ShardedConfig{Shards: 4, Factory: exactFactory}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, w := range p.ShardWeights() {
		if w > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("%d busy shards, want 1", busy)
	}
	out, err := p.NewRun().SampleBatch(50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("%d draws", len(out))
	}
}

func TestShardedEmptyUnionErrors(t *testing.T) {
	a := relation.New("a", relation.NewSchema("K", "X"))
	b := relation.New("b", relation.NewSchema("K", "Y"))
	a.AppendValues(1, 2) // no matching K in b: join is empty
	b.AppendValues(9, 3)
	j, err := join.NewChain("c", []*relation.Relation{a, b}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = PrepareSharded([]*join.Join{j}, ShardedConfig{Shards: 2, Factory: exactFactory}, rng.New(3))
	if !errors.Is(err, ErrEmptyUnion) {
		t.Fatalf("err = %v, want ErrEmptyUnion", err)
	}
}

func TestShardedConfigValidation(t *testing.T) {
	joins := fixtureJoins(t)
	if _, err := PrepareSharded(joins, ShardedConfig{Shards: 0, Factory: exactFactory}, rng.New(1)); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := PrepareSharded(joins, ShardedConfig{Shards: 2}, rng.New(1)); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := PrepareSharded(joins, ShardedConfig{Shards: 2, Factory: exactFactory, Attr: "nope"}, rng.New(1)); err == nil {
		t.Fatal("unknown partition attribute accepted")
	}
	if _, err := PrepareDisjointFrom(mustSharded(t, joins), false); err == nil {
		t.Fatal("PrepareDisjointFrom accepted a sharded sampler")
	}
}

func mustSharded(t *testing.T, joins []*join.Join) *ShardedShared {
	t.Helper()
	p, err := PrepareSharded(joins, ShardedConfig{Shards: 2, Factory: exactFactory}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShardedRefresh(t *testing.T) {
	p, joins := prepareShardedFixture(t, 3)
	// Clean refresh is a no-op.
	np, changed, err := p.Refresh(rng.New(2))
	if err != nil || changed || np != PreparedSampler(p) {
		t.Fatalf("clean refresh: changed=%t err=%v", changed, err)
	}
	if Stale(p) {
		t.Fatal("fresh sharded sampler reports stale")
	}
	// Mutate a base relation; Stale must trip, Refresh must reconcile.
	rel := joins[0].Nodes()[0].Rel
	rel.AppendValues(1000, 1)
	rel.AppendValues(1001, 2)
	if !Stale(p) {
		t.Fatal("mutated sharded sampler not stale")
	}
	np2, changed, err := Refresh(p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("refresh over mutations reported no change")
	}
	if Stale(np2) {
		t.Fatal("refreshed sampler still stale")
	}
	idx := unionIndex(t, joins)
	out, err := np2.NewRun().SampleBatch(300, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if _, ok := idx[relation.TupleKey(tu)]; !ok {
			t.Fatalf("post-refresh draw %v not in mutated union", tu)
		}
	}
	// Old generation still serves its snapshot (live-relation contract).
	if _, err := p.NewRun().SampleBatch(50, rng.New(8)); err != nil {
		t.Fatalf("old generation draw: %v", err)
	}
}

func TestShardedPrewarm(t *testing.T) {
	p, _ := prepareShardedFixture(t, 2)
	Prewarm(p) // must dispatch to the sharded path, not unionBase()
	if p.unionBase() != nil {
		t.Fatal("sharded sampler exposes a union base")
	}
}
