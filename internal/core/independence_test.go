package core

import (
	"math"
	"testing"

	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// TestSampleIndependence checks the i.i.d. half of Theorem 1: under
// exact parameters and the membership oracle, consecutive samples are
// independent. We test lag-1 independence with a chi-square over the
// joint distribution of (coarse cell of sample i, coarse cell of
// sample i+1): under independence it is the product of the marginals.
func TestSampleIndependence(t *testing.T) {
	joins := fixtureJoins(t)
	s, err := NewCoverSampler(joins, CoverConfig{
		Method:    MethodEW,
		Estimator: &ExactEstimator{Joins: joins},
		Oracle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	out, err := s.Sample(n, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	idx := unionIndex(t, joins)
	// Coarsen the union into B buckets to keep the joint table dense.
	const B = 8
	bucket := make([]int, n)
	for i, tu := range out {
		bucket[i] = idx[relation.TupleKey(tu)] % B
	}
	var joint [B][B]float64
	var marg [B]float64
	for i := 0; i+1 < n; i++ {
		joint[bucket[i]][bucket[i+1]]++
		marg[bucket[i]]++
	}
	marg[bucket[n-1]]++
	total := float64(n - 1)
	chi := 0.0
	for a := 0; a < B; a++ {
		for b := 0; b < B; b++ {
			expected := (marg[a] / float64(n)) * (marg[b] / float64(n)) * total
			if expected < 5 {
				continue
			}
			d := joint[a][b] - expected
			chi += d * d / expected
		}
	}
	dof := float64((B - 1) * (B - 1))
	limit := dof + 6*math.Sqrt(2*dof) + 6
	if chi > limit {
		t.Errorf("lag-1 dependence: chi2 = %.1f over %.0f dof (limit %.1f)", chi, dof, limit)
	}
}

// TestEOAcceptanceRate: EO's acceptance rate equals |J|/bound in
// expectation — the mechanism behind the Fig 5 rejection costs.
func TestEOAcceptanceRate(t *testing.T) {
	joins := fixtureJoins(t)
	j := joins[0]
	s := newJoinSampler(j, joinConfig{method: MethodEO})
	g := rng.New(62)
	const tries = 200000
	accepted := 0
	for i := 0; i < tries; i++ {
		if _, ok := s.Sample(g); ok {
			accepted++
		}
	}
	got := float64(accepted) / tries
	want := float64(j.Count()) / j.OlkenBound()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("EO acceptance = %.4f, want %.4f", got, want)
	}
}
