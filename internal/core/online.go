package core

import (
	"fmt"
	"math"
	"time"

	"sampleunion/internal/histest"
	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
	"sampleunion/internal/walkest"
)

// OnlineConfig configures the online union sampler (Algorithm 2).
type OnlineConfig struct {
	// WarmupWalks > 0 runs that many wander-join walks per join before
	// sampling, filling the reuse pool and replacing the histogram
	// initialization with random-walk estimates (the paper's
	// "random-walk with reuse"). 0 starts from histogram parameters
	// alone and lets estimates refine purely online (the no-warm-up
	// variant of §4's closing remark).
	WarmupWalks int
	// HistOpts configure the histogram initialization (line 1).
	HistOpts histest.Options
	// WalkOpts tune confidence parameters (Z defaulting per walkest).
	WalkOpts walkest.Options
	// Phi is the backtrack period: a parameter update and backtracking
	// pass runs every Phi recorded probabilities (line 18). Values <= 0
	// default to 64.
	Phi int
	// Gamma is the target confidence level; once reached, parameter
	// updates stop (line 18). Values <= 0 default to 0.9.
	Gamma float64
	// Oracle uses exact membership instead of the dynamic record.
	Oracle bool
	// MaxDrawsPerSelection caps attempts per join selection; <= 0
	// defaults to 256 — or, with a Tuner, to the plan's cap.
	MaxDrawsPerSelection int
	// DetailedTiming wall-clocks every draw instead of sampling every
	// TimingStride-th one; see Stats.TimingSampled.
	DetailedTiming bool
	// Tuner, when non-nil, re-plans at every warm-up (Prepare and
	// Refresh): per-join walk budgets (wide cyclic estimates get more
	// walks), exact-count escalation for wide tree-join estimates
	// (pinned through run-level refinement via the size overrides), and
	// the batch slice cap. The subroutine stays EO for every join — the
	// online sampler is walk-based by construction.
	Tuner *tune.Controller
}

type onlineEntry struct {
	key  int // record handle of the tuple's value (see resultEntry)
	off  int // start of the tuple's span in the run's arena
	join int
	prob float64 // inclusion probability the tuple was accepted under
}

// OnlineShared is the prepared state of Algorithm 2: the histogram
// initialization plus warm-up walks, run exactly once. The master walk
// estimator is frozen after warm-up; each run created with NewRun
// receives its own clone of the Horvitz–Thompson and overlap state —
// but not the warm-up sample pool: handing the same tuples to several
// runs would correlate streams that must be independent, so prepared
// runs start from the shared estimates and draw fresh walks. The §7
// sample-reuse optimization remains available on the single-stream
// path (NewOnlineSampler), where one run owns the pool.
type OnlineShared struct {
	base    *unionBase
	cfg     OnlineConfig
	walks   *walkest.Estimator
	params  *Params
	alias   *rng.Alias
	maxDraw int
	// exactSizes pin escalated joins' exact counts (index -1 entries
	// keep the walk estimate); run-level parameter refinement reads the
	// overlap table through them so refinement never un-escalates.
	exactSizes []float64
	warmupTime time.Duration
	warmed     bool
}

// PrepareOnline builds the shared state for Algorithm 2 and runs the
// warm-up (histogram initialization + warm-up walks) exactly once,
// drawing warm-up randomness from g.
func PrepareOnline(joins []*join.Join, cfg OnlineConfig, g *rng.RNG) (*OnlineShared, error) {
	p, err := newOnlineShared(joins, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.warm(g); err != nil {
		return nil, err
	}
	return p, nil
}

func newOnlineShared(joins []*join.Join, cfg OnlineConfig) (*OnlineShared, error) {
	base, err := newUnionBase(joins, uniformJoinConfigs(len(joins), MethodEO, 0), false)
	if err != nil {
		return nil, err
	}
	if cfg.Phi <= 0 {
		cfg.Phi = 64
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 0.9
	}
	maxDraw := cfg.MaxDrawsPerSelection
	if maxDraw <= 0 {
		maxDraw = 256
	}
	walks, err := walkest.New(joins, cfg.WalkOpts)
	if err != nil {
		return nil, err
	}
	return &OnlineShared{base: base, cfg: cfg, walks: walks, maxDraw: maxDraw}, nil
}

// warm initializes parameters: histogram first (cheap), then the
// configured number of warm-up walks whose samples seed the reuse pool.
// Idempotent; runs before the shared state is published to runs.
func (p *OnlineShared) warm(g *rng.RNG) error {
	if p.warmed {
		return nil
	}
	start := time.Now()
	hist := &HistogramEstimator{Joins: p.base.joins, Opts: p.cfg.HistOpts}
	params, err := hist.Params(g)
	if err != nil {
		return err
	}
	p.params = params
	if p.cfg.WarmupWalks > 0 {
		for j, je := range p.walks.JoinEstimates() {
			for je.Walks() < p.cfg.WarmupWalks {
				p.walks.StepJoin(j, g)
			}
		}
		if params, ok, err := paramsFromWalks(p.walks, nil); err != nil {
			return err
		} else if ok {
			p.params = params
		}
	}
	if p.cfg.Tuner != nil {
		if err := p.retune(g); err != nil {
			return err
		}
	}
	p.alias = rng.NewAlias(p.params.Cover)
	p.warmupTime = time.Since(start)
	if p.alias == nil {
		return ErrEmptyUnion
	}
	p.warmed = true
	return nil
}

// retune runs the adaptive re-plan at an online warm-up boundary:
// wide cyclic joins walk up to their escalated budgets, wide tree
// joins escalate to exact counts (pinned via exactSizes so run-level
// refinement keeps them), and the batch slice cap follows the plan.
// Join subroutines are not re-planned — the online sampler draws by
// wander-join walks by construction.
func (p *OnlineShared) retune(g *rng.RNG) error {
	stats := gatherTuneStats(p.base.joins, p.params, p.walks, false)
	plan := p.cfg.Tuner.Replan(stats)
	params, sizes, err := applyPlanEstimates(p.base, plan, p.params, p.walks, g)
	if err != nil {
		return err
	}
	p.params = params
	p.exactSizes = sizes
	if p.cfg.MaxDrawsPerSelection <= 0 {
		p.maxDraw = plan.MaxDrawsPerSelection
	}
	return nil
}

// paramsFromWalks rebuilds Params from a walk estimator once every join
// has observations; ok is false while any join is still unobserved (the
// caller keeps its current parameters). Non-nil sizes pin escalated
// joins' exact counts through the rebuild (walkest.TableWithSizes).
func paramsFromWalks(walks *walkest.Estimator, sizes []float64) (*Params, bool, error) {
	for _, je := range walks.JoinEstimates() {
		if je.Walks() == 0 {
			return nil, false, nil
		}
	}
	t, err := walks.TableWithSizes(sizes)
	if err != nil {
		return nil, false, err
	}
	return ParamsFromTable(t), true, nil
}

// Refresh returns an OnlineShared reconciled with the current data.
// Dirty joins rebuild their subroutine samplers and their walk
// estimates reset and re-warm (the old walks were observations of a
// join that no longer exists); clean joins keep their samplers,
// Horvitz–Thompson estimates, and overlap counters — the walk-estimator
// state reconciles against the changed relations only. Overlap masks
// recorded by clean anchors against dirty joins stay as recorded; they
// re-converge as runs refine, which the framework's record/revision
// machinery tolerates (estimates are never trusted exactly). The
// receiver is untouched; in-flight runs keep their snapshot.
func (p *OnlineShared) Refresh(g *rng.RNG) (PreparedSampler, bool, error) {
	nb, dirty, changed := p.base.refreshed()
	if !changed {
		if p.cfg.Tuner == nil || !p.cfg.Tuner.NeedsReplan() {
			return p, false, nil
		}
		// Rejection feedback requested a re-plan on clean data: rebuild
		// against a clone so in-flight runs keep their snapshot.
		nb = p.base.clone()
		dirty = make([]bool, len(p.base.joins))
	}
	np := &OnlineShared{base: nb, cfg: p.cfg, walks: p.walks.Clone(), maxDraw: p.maxDraw}
	for j, d := range dirty {
		if d {
			np.walks.Reset(j)
			if p.cfg.Tuner != nil {
				// Like the walk estimates, a dirty join's rejection
				// feedback observed a join that no longer exists; the
				// re-plan must read its fresh priors instead.
				p.cfg.Tuner.DropFeedback(j)
			}
		}
	}
	if err := np.warmRefresh(g, dirty); err != nil {
		return nil, false, err
	}
	return np, true, nil
}

// warmRefresh is warm for a refresh: the histogram re-reads the
// (incrementally maintained) indexes, but warm-up walks re-run only for
// the dirty joins.
func (p *OnlineShared) warmRefresh(g *rng.RNG, dirty []bool) error {
	start := time.Now()
	hist := &HistogramEstimator{Joins: p.base.joins, Opts: p.cfg.HistOpts}
	params, err := hist.Params(g)
	if err != nil {
		return err
	}
	p.params = params
	if p.cfg.WarmupWalks > 0 {
		for j, je := range p.walks.JoinEstimates() {
			if !dirty[j] {
				continue
			}
			for je.Walks() < p.cfg.WarmupWalks {
				p.walks.StepJoin(j, g)
			}
		}
		if params, ok, err := paramsFromWalks(p.walks, nil); err != nil {
			return err
		} else if ok {
			p.params = params
		}
	}
	if p.cfg.Tuner != nil {
		if err := p.retune(g); err != nil {
			return err
		}
	}
	p.alias = rng.NewAlias(p.params.Cover)
	p.warmupTime = time.Since(start)
	if p.alias == nil {
		return ErrEmptyUnion
	}
	p.warmed = true
	return nil
}

// Params returns the warm-up parameters (nil before warm-up).
func (p *OnlineShared) Params() *Params { return p.params }

// WarmupTime reports how long the one-time warm-up took.
func (p *OnlineShared) WarmupTime() time.Duration { return p.warmupTime }

// NewRun returns a fresh sampling run over the shared warm-up: its own
// clone of the walk estimator's running estimates (pool excluded, see
// the type comment), record, result buffer, and Stats. Runs are
// independent and reproducible from their RNG; any number may sample
// concurrently as long as each uses its own RNG.
func (p *OnlineShared) NewRun() Run {
	s := newOnlineRun(p)
	if p.warmed {
		s.initFromShared(false)
	}
	return s
}

func newOnlineRun(p *OnlineShared) *OnlineSampler {
	s := &OnlineSampler{shared: p, record: p.base.recordKeys()}
	s.stats.TimingSampled = !p.cfg.DetailedTiming
	s.stats.initJoins(len(p.base.joins))
	return s
}

func (p *OnlineShared) unionBase() *unionBase { return p.base }

// OnlineSampler is one run of Algorithm 2: it starts from the shared
// warm-up parameters, samples joins with wander-join walks whose draws
// double as Horvitz–Thompson observations, reuses warm-up samples with
// the l/(p(t)·|J_j|) acceptance correction (line 8), and every Phi
// recorded probabilities re-estimates parameters and backtracks
// previously accepted tuples to the new distribution (§7). All mutable
// state — the walk estimator clone, parameters under refinement, the
// record, the result buffer, stats — is per-run.
type OnlineSampler struct {
	shared   *OnlineShared
	walks    *walkest.Estimator
	params   *Params
	alias    *rng.Alias
	record   *relation.KeyCounter // value (ref order) -> assigned join
	result   []onlineEntry
	arena    []relation.Value // backing store of buffered samples
	stats    Stats
	recorded int
	conf     float64
}

// NewOnlineSampler builds an Algorithm 2 sampler over the joins with
// its own private warm-up state, warmed lazily on first Sample. For the
// one-warm-up/many-runs shape use PrepareOnline + NewRun instead.
func NewOnlineSampler(joins []*join.Join, cfg OnlineConfig) (*OnlineSampler, error) {
	shared, err := newOnlineShared(joins, cfg)
	if err != nil {
		return nil, err
	}
	return newOnlineRun(shared), nil
}

// initFromShared adopts the shared warm-up into this run: parameters
// and alias by reference (replaced, never mutated, on refinement) and
// the walk estimator by clone (its pool and running estimates mutate
// with every draw). keepPool retains the warm-up sample pool — only
// the single-stream path may do that; prepared runs drop it so streams
// stay uncorrelated.
func (s *OnlineSampler) initFromShared(keepPool bool) {
	s.walks = s.shared.walks.Clone()
	if !keepPool {
		s.walks.DropSamples()
	}
	s.params = s.shared.params
	s.alias = s.shared.alias
}

// Warmup ensures the shared warm-up ran and adopts it. Idempotent; when
// this run triggered the warm-up (the single-stream path: it owns the
// shared state, so it also keeps the reuse pool) the cost is booked
// into its Stats.
func (s *OnlineSampler) Warmup(g *rng.RNG) error {
	if s.walks != nil {
		return nil
	}
	if !s.shared.warmed {
		if err := s.shared.warm(g); err != nil {
			return err
		}
		s.stats.WarmupTime += s.shared.warmupTime
		s.initFromShared(true)
		return nil
	}
	s.initFromShared(false)
	return nil
}

// refreshParams rebuilds Params from the run's walk estimator when it
// has observations, keeping the current values otherwise.
func (s *OnlineSampler) refreshParams() error {
	params, ok, err := paramsFromWalks(s.walks, s.shared.exactSizes)
	if err != nil {
		return err
	}
	if !ok {
		return nil // keep current params until walks exist everywhere
	}
	s.params = params
	s.alias = rng.NewAlias(params.Cover)
	if s.alias == nil {
		return fmt.Errorf("core: refreshed cover is all-zero")
	}
	return nil
}

// Params returns the run's current parameters (nil before Warmup).
func (s *OnlineSampler) Params() *Params { return s.params }

// Stats returns the run's instrumentation. Per-join WalkVariance
// reflects the run's current walk state at the time of the call (zero
// for joins whose size is pinned exact by the tuner).
func (s *OnlineSampler) Stats() *Stats {
	if s.walks != nil {
		for j, je := range s.walks.JoinEstimates() {
			if es := s.shared.exactSizes; es != nil && j < len(es) && es[j] >= 0 {
				s.stats.Joins[j].WalkVariance = 0
				continue
			}
			s.stats.Joins[j].WalkVariance = je.RelHalfWidth(s.walks.Z())
		}
	}
	return &s.stats
}

// Confidence returns the walk estimator's current confidence level.
func (s *OnlineSampler) Confidence() float64 { return s.conf }

// Sample returns n tuples from the set union in the first join's
// output schema order. Consecutive calls continue the stream: returned
// tuples are final (later revisions and backtracking only affect
// buffered, not-yet-returned tuples).
func (s *OnlineSampler) Sample(n int, g *rng.RNG) ([]relation.Tuple, error) {
	if err := s.Warmup(g); err != nil {
		return nil, err
	}
	for len(s.result) < n {
		if err := s.drawOne(g); err != nil {
			return nil, err
		}
		if err := s.maybeBacktrack(g); err != nil {
			return nil, err
		}
	}
	return s.serveResult(n), nil
}

// serveResult copies the first n buffered samples out over one flat
// backing (two allocations for the whole batch) and compacts the arena
// behind the remaining entries. Entry offsets are non-decreasing — the
// mult instances of one commit share one span — so duplicates remap to
// the span's new position and distinct spans forward-copy safely (the
// m-th distinct remaining span starts at or after m*k).
func (s *OnlineSampler) serveResult(n int) []relation.Tuple {
	k := s.shared.base.ref.Len()
	out := serveFlat(s.arena, n, k, func(i int) int { return s.result[i].off })
	s.result = s.result[:copy(s.result, s.result[n:])]
	w := 0
	prevOld, prevNew := -1, -1
	for i := range s.result {
		e := &s.result[i]
		if e.off == prevOld {
			e.off = prevNew
			continue
		}
		prevOld = e.off
		if e.off != w {
			copy(s.arena[w:w+k], s.arena[e.off:e.off+k])
		}
		prevNew = w
		e.off = w
		w += k
	}
	s.arena = s.arena[:w]
	return out
}

// drawOne selects a join by cover weight and retries within it until
// at least one instance of a tuple is accepted.
func (s *OnlineSampler) drawOne(g *rng.RNG) error {
	for selections := 0; ; selections++ {
		if selections > 64 {
			return fmt.Errorf("core: online sampler made no progress after %d selections", selections)
		}
		j := s.alias.Draw(g)
		for attempt := 0; attempt < s.shared.maxDraw; attempt++ {
			start, w := s.stats.startDraw()
			t, mult, reuse, ok := s.candidate(j, g)
			if !ok {
				s.phaseReject(sinceDraw(start, w), reuse)
				continue
			}
			if k, ok := s.acceptValue(j, t); ok {
				s.commit(k, j, t, mult)
				d := sinceDraw(start, w)
				s.stats.AcceptTime += d
				if reuse {
					s.stats.ReuseAccepted++
					s.stats.ReuseTime += d
				} else {
					s.stats.RegularTime += d
				}
				return nil
			}
			s.stats.RejectedDup++
			s.phaseReject(sinceDraw(start, w), reuse)
		}
	}
}

// phaseReject books a rejected attempt's time both globally and into
// its phase, so per-phase totals divided by per-phase accepted counts
// reproduce the paper's Fig 6b metric ("ratio of total time spent on
// sampling and the number of successfully sampled tuples per phase").
func (s *OnlineSampler) phaseReject(d time.Duration, reuse bool) {
	s.stats.RejectTime += d
	if reuse {
		s.stats.ReuseTime += d
	} else {
		s.stats.RegularTime += d
	}
}

// candidate produces one tuple of join j with a multiplicity, first
// from the reuse pool (line 8), then by a fresh wander-join walk whose
// probability feeds the running estimates. Both paths apply the
// p(t)-correction so that each value of J_j is produced with equal
// expected multiplicity — uniform within the join.
func (s *OnlineSampler) candidate(j int, g *rng.RNG) (relation.Tuple, int, bool, bool) {
	je := s.walks.JoinEstimates()[j]
	size := s.params.JoinSizes[j]
	s.stats.Joins[j].Draws++
	if pool := je.Samples(); len(pool) > 0 {
		sm := je.TakeSample(g.Intn(len(pool))) // without replacement (line 8)
		// Acceptance ratio: the pool's composition is proportional to
		// p(t) and the acceptance proportional to 1/p(t), so any
		// constant scale preserves per-value uniformity; 1/(p·|J|)
		// keeps the ratio near one (the paper's l·/(p·|J|) scale
		// inflates the multiplicity of every accepted tuple by the
		// pool size — see DESIGN.md, Deviations).
		mult := s.instances(1/(sm.P*size), g)
		if mult > 0 {
			return sm.Tuple, mult, true, true
		}
		s.stats.ReuseRejected++
		return nil, 0, true, false
	}
	s.stats.TotalDraws++
	sm, ok := s.walks.StepJoin(j, g) // fresh walk; updates the estimates
	s.recorded++
	if !ok {
		s.stats.JoinRejects++
		s.stats.Joins[j].Rejected++
		return nil, 0, false, false
	}
	// The walk enters the pool inside Step; consume it immediately so
	// the fresh draw is not double-counted as reusable.
	je.TakeSample(len(je.Samples()) - 1)
	mult := s.instances(1/(sm.P*size), g)
	if mult == 0 {
		s.stats.JoinRejects++
		s.stats.Joins[j].Rejected++
		return nil, 0, false, false
	}
	return sm.Tuple, mult, false, true
}

// instances converts an acceptance ratio (which may exceed 1, §7's
// multi-instance system) into an instance count with expectation R.
func (s *OnlineSampler) instances(r float64, g *rng.RNG) int {
	if r <= 0 || math.IsInf(r, 1) || math.IsNaN(r) {
		return 0
	}
	k := int(r)
	if g.Bernoulli(r - float64(k)) {
		k++
	}
	return k
}

// acceptValue applies the cover record / revision logic of Algorithm 1
// to a candidate value of join j; on acceptance it returns the value's
// record handle for commit.
func (s *OnlineSampler) acceptValue(j int, t relation.Tuple) (int, bool) {
	proj := s.shared.base.recordProj(j)
	k, seen := s.record.Lookup(t, proj)
	if s.shared.cfg.Oracle {
		f := s.shared.base.minContaining(j, t)
		if seen {
			s.record.SetAt(k, f)
		} else {
			k = s.record.PutNew(t, proj, f)
		}
		return k, f == j
	}
	if seen {
		assigned := s.record.At(k)
		if assigned < j {
			return k, false
		}
		if assigned > j {
			s.record.SetAt(k, j)
			s.stats.Revised++
			s.removeKey(k)
		}
	} else {
		k = s.record.PutNew(t, proj, j)
	}
	return k, true
}

func (s *OnlineSampler) removeKey(k int) {
	kept := s.result[:0]
	for _, e := range s.result {
		if e.key == k {
			s.stats.RevisedRemoved++
			continue
		}
		kept = append(kept, e)
	}
	s.result = kept
}

// commit appends mult instances of the accepted tuple, recording the
// inclusion probability they were accepted under for backtracking.
func (s *OnlineSampler) commit(k, j int, t relation.Tuple, mult int) {
	off := len(s.arena)
	s.arena = s.shared.base.alignedAppend(j, t, s.arena)
	prob := s.inclusionProb(j)
	for i := 0; i < mult; i++ {
		s.result = append(s.result, onlineEntry{key: k, off: off, join: j, prob: prob})
	}
	s.stats.Accepted += mult
	s.stats.Joins[j].Accepted += mult
}

// inclusionProb is the per-draw probability a value of join j enters
// the result under the current parameters: (|J'_j|/|U|) · (1/|J_j|).
func (s *OnlineSampler) inclusionProb(j int) float64 {
	if s.params.UnionSize <= 0 || s.params.JoinSizes[j] <= 0 {
		return 0
	}
	return s.params.Cover[j] / s.params.UnionSize / s.params.JoinSizes[j]
}

// maybeBacktrack runs the §7 parameter update and backtracking pass
// every Phi recorded probabilities while confidence is below Gamma.
func (s *OnlineSampler) maybeBacktrack(g *rng.RNG) error {
	if s.recorded < s.shared.cfg.Phi || s.conf >= s.shared.cfg.Gamma {
		return nil
	}
	s.recorded = 0
	s.stats.Backtracks++
	if err := s.refreshParams(); err != nil {
		return err
	}
	z := s.shared.cfg.WalkOpts.Z
	if z <= 0 {
		z = 1.645
	}
	s.conf = s.walks.Confidence(z)
	// Backtrack: thin every previously accepted tuple to the new
	// inclusion probability (keep with min(1, new/old)).
	kept := s.result[:0]
	for _, e := range s.result {
		newProb := s.inclusionProb(e.join)
		keep := 1.0
		if e.prob > 0 && newProb < e.prob {
			keep = newProb / e.prob
		}
		if g.Bernoulli(keep) {
			if newProb < e.prob {
				e.prob = newProb
			}
			kept = append(kept, e)
		} else {
			s.stats.BacktrackDropped++
		}
	}
	s.result = kept
	return nil
}
