package spec

import (
	"strings"
	"testing"
)

func TestCanonicalNormalizesFormatting(t *testing.T) {
	a := `
# load the base relations
rel   nation   nation.csv
rel supplier supplier.csv   # trailing comment
filter supplier s_acctbal <   5000

chain J1 nation nationkey supplier
tree J2 nation; supplier nation nationkey;
`
	b := `rel nation nation.csv
rel supplier supplier.csv
filter supplier s_acctbal < 5000
chain J1 nation nationkey supplier
tree J2 nation ; supplier nation nationkey ;`
	ca, err := Canonical(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonical(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("canonical forms differ:\n%q\nvs\n%q", ca, cb)
	}
}

func TestCanonicalPreservesOrderAndContent(t *testing.T) {
	a := "rel x x.csv\nrel y y.csv\nchain J x k y\n"
	b := "rel y y.csv\nrel x x.csv\nchain J x k y\n"
	ca, _ := Canonical(strings.NewReader(a))
	cb, _ := Canonical(strings.NewReader(b))
	if ca == cb {
		t.Fatal("statement order must be significant")
	}
}

func TestFingerprint(t *testing.T) {
	f1, err := Fingerprint("rel x x.csv\nchain  J x k x # dup join\n")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint("rel x x.csv\nchain J x k x")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("formatting changed the fingerprint: %s vs %s", f1, f2)
	}
	f3, err := Fingerprint("rel x x.csv\nchain J x k x", "seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("extra components must change the fingerprint")
	}
	// Length-prefixing: shifting bytes between components must not collide.
	f4, _ := Fingerprint("rel x x.csv\nchain J x k x", "se", "ed=2")
	if f4 == f3 {
		t.Fatal("component boundaries must be part of the hash")
	}
	if len(f1) != 64 {
		t.Fatalf("want 64 hex chars, got %d", len(f1))
	}
}
