package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sampleunion/internal/relation"
)

// DirLoader returns a Loader reading CSV files relative to dir,
// rejecting paths that escape it.
func DirLoader(dir string) Loader {
	return DirLoaderDict(dir, nil)
}

// DirLoaderDict is DirLoader with string-column support: non-integer
// CSV columns are interned through d (one batch round per column, see
// relation.ReadCSVDict). A nil dictionary rejects string columns.
func DirLoaderDict(dir string, d *relation.Dictionary) Loader {
	return func(name, file string) (*relation.Relation, error) {
		clean := filepath.Clean(file)
		if filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
			return nil, fmt.Errorf("file %q escapes data directory", file)
		}
		f, err := os.Open(filepath.Join(dir, clean))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relation.ReadCSVDict(f, name, d)
	}
}

// ParseFile parses a spec file with relations loaded from the file's
// directory (or dataDir when non-empty).
func ParseFile(path, dataDir string) (*Union, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if dataDir == "" {
		dataDir = filepath.Dir(path)
	}
	return Parse(f, DirLoader(dataDir))
}
