package spec

import (
	"strings"
	"testing"

	"sampleunion/internal/relation"
)

// FuzzParse checks the parser never panics and either errors or yields
// a well-formed union on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"rel A a.csv\nrel B b.csv\nchain J1 A K B\n",
		"rel A a.csv\nfilter A K >= 2\nchain J1 A\n",
		"rel A a.csv\nrel B b.csv\nrel C c.csv\ntree J1 B ; A B K ; C B Y\n",
		"rel B b.csv\nrel C c.csv\nrel T t.csv\ncyclic J1 B C T ; B C Y ; C T Z ; T B K\n",
		"# only a comment\n",
		"rel A a.csv\nchain J1 A K\n",
		";;;;",
		"tree J1 ;",
		"cyclic J1 ; ;",
		"filter",
		"rel \x00 a.csv",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	fix := fixtures()
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Parse(strings.NewReader(src), memLoader(fix))
		if err != nil {
			return
		}
		if len(u.Joins) == 0 {
			t.Fatal("nil-error parse with no joins")
		}
		for _, j := range u.Joins {
			if j.OutputSchema().Len() == 0 {
				t.Fatalf("join %s has empty output schema", j.Name())
			}
			// The join must be executable without panicking.
			var n int
			j.Enumerate(func(relation.Tuple) bool {
				n++
				return n < 100
			})
		}
	})
}
