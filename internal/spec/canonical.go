package spec

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// Canonical rewrites a specification into its canonical text: comments
// and blank lines dropped, fields re-joined with single spaces, and the
// `;` group separators of tree/cyclic statements normalized to
// stand-alone tokens. Statement order is preserved — it is significant
// (joins sample in declaration order and filters replace relations in
// place) — so two specs canonicalize equal iff they differ only in
// formatting. Canonical does not validate the spec beyond tokenizing;
// callers that need full validation Parse separately.
func Canonical(r io.Reader) (string, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var b strings.Builder
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// Detach glued separators ("root;" -> "root", ";") so grouping
		// punctuation never changes the canonical form.
		norm := make([]string, 0, len(fields))
		for _, f := range fields {
			for {
				i := strings.IndexByte(f, ';')
				if i < 0 {
					break
				}
				if i > 0 {
					norm = append(norm, f[:i])
				}
				norm = append(norm, ";")
				f = f[i+1:]
			}
			if f != "" {
				norm = append(norm, f)
			}
		}
		b.WriteString(strings.Join(norm, " "))
		b.WriteByte('\n')
	}
	if err := scanner.Err(); err != nil {
		return "", fmt.Errorf("spec: %w", err)
	}
	return b.String(), nil
}

// Fingerprint hashes the canonical form of a specification together
// with any extra identity components (a serving layer folds in the
// sampling options, for example), returning a stable hex key. Two
// fingerprints are equal iff the canonical spec text and every extra
// component are equal; components are length-prefixed so no
// concatenation of different parts can collide.
func Fingerprint(specText string, extra ...string) (string, error) {
	canon, err := Canonical(strings.NewReader(specText))
	if err != nil {
		return "", err
	}
	h := sha256.New()
	write := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		io.WriteString(h, s)
	}
	write(canon)
	for _, e := range extra {
		write(e)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
