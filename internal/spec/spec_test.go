package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sampleunion/internal/relation"
)

// memLoader serves fixed relations regardless of file name.
func memLoader(rels map[string]*relation.Relation) Loader {
	return func(name, file string) (*relation.Relation, error) {
		r, ok := rels[file]
		if !ok {
			return nil, fmt.Errorf("no fixture %q", file)
		}
		return r, nil
	}
}

func fixtures() map[string]*relation.Relation {
	return map[string]*relation.Relation{
		"a.csv": relation.MustFromTuples("", relation.NewSchema("K", "X"), []relation.Tuple{
			{1, 10}, {2, 20}, {3, 30},
		}),
		"b.csv": relation.MustFromTuples("", relation.NewSchema("K", "Y"), []relation.Tuple{
			{1, 7}, {2, 8}, {2, 9},
		}),
		"c.csv": relation.MustFromTuples("", relation.NewSchema("Y", "Z"), []relation.Tuple{
			{7, 70}, {8, 80},
		}),
		"t.csv": relation.MustFromTuples("", relation.NewSchema("Z", "K"), []relation.Tuple{
			{70, 1}, {80, 2},
		}),
	}
}

func TestParseChain(t *testing.T) {
	src := `
# a two-relation chain
rel A a.csv
rel B b.csv
chain J1 A K B
`
	u, err := Parse(strings.NewReader(src), memLoader(fixtures()))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Joins) != 1 {
		t.Fatalf("joins = %d", len(u.Joins))
	}
	if got := u.Joins[0].Count(); got != 3 {
		t.Fatalf("J1 count = %d, want 3", got)
	}
}

func TestParseFilter(t *testing.T) {
	src := `
rel A a.csv
rel B b.csv
filter B Y >= 8
chain J1 A K B
`
	u, err := Parse(strings.NewReader(src), memLoader(fixtures()))
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Joins[0].Count(); got != 2 { // (2,20,8) and (2,20,9)
		t.Fatalf("filtered count = %d, want 2", got)
	}
}

func TestParseTree(t *testing.T) {
	src := `
rel A a.csv
rel B b.csv
rel C c.csv
tree J1 B ; A B K ; C B Y
`
	u, err := Parse(strings.NewReader(src), memLoader(fixtures()))
	if err != nil {
		t.Fatal(err)
	}
	j := u.Joins[0]
	if j.IsChain() {
		// B has two children: not a chain.
		t.Error("tree parsed as chain")
	}
	// Rows of B: (1,7): A(1) x C(7) = 1; (2,8): A(2) x C(8) = 1; (2,9): no C.
	if got := j.Count(); got != 2 {
		t.Fatalf("tree count = %d, want 2", got)
	}
}

func TestParseCyclic(t *testing.T) {
	src := `
rel B b.csv
rel C c.csv
rel T t.csv
cyclic J1 B C T ; B C Y ; C T Z ; T B K
`
	u, err := Parse(strings.NewReader(src), memLoader(fixtures()))
	if err != nil {
		t.Fatal(err)
	}
	j := u.Joins[0]
	if !j.IsCyclic() {
		t.Error("cyclic join has no residual")
	}
	// Triangles: (K=1,Y=7,Z=70) and (K=2,Y=8,Z=80).
	if got := j.Count(); got != 2 {
		t.Fatalf("cyclic count = %d, want 2", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus X",                                         // unknown statement
		"rel A",                                           // rel arity
		"rel A a.csv\nrel A a.csv",                        // duplicate relation
		"rel A missing.csv",                               // loader failure
		"rel A a.csv\nfilter A K ~ 1",                     // bad operator
		"rel A a.csv\nfilter A K = x",                     // bad value
		"rel A a.csv\nfilter Z K = 1",                     // unknown relation in filter
		"rel A a.csv\nfilter A Q = 1",                     // unknown attribute
		"rel A a.csv\nchain J1 A K",                       // chain arity
		"rel A a.csv\nchain J1 A K Z",                     // unknown relation in chain
		"rel A a.csv\ntree J1 A",                          // tree with no edges
		"rel A a.csv\nrel B b.csv\ntree J1 A ; B Z K",     // unknown parent
		"rel B b.csv\ncyclic J1 B ; B B Y",                // self edge rejected by join
		"rel A a.csv",                                     // no joins
		"rel A a.csv\nrel B b.csv\nchain J1 A Q B",        // join attr missing
		"rel A a.csv\nrel B b.csv\ntree J1 A ; B A",       // short edge group
		"rel B b.csv\nrel C c.csv\ncyclic J1 B C ; B Z Y", // edge names unknown relation
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), memLoader(fixtures())); err == nil {
			t.Errorf("spec accepted:\n%s", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "\n\n# comment only\nrel A a.csv # trailing\nrel B b.csv\n\nchain J1 A K B\n"
	u, err := Parse(strings.NewReader(src), memLoader(fixtures()))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Joins) != 1 {
		t.Fatalf("joins = %d", len(u.Joins))
	}
}

func TestSplitGroups(t *testing.T) {
	got := splitGroups([]string{"a", "b;", "c", ";", "d;e"})
	want := [][]string{{"a", "b"}, {"c"}, {"d"}, {"e"}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestParseFileWithDirLoader(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.csv", "K,X\n1,10\n2,20\n")
	write("b.csv", "K,Y\n1,7\n2,8\n")
	write("union.spec", "rel A a.csv\nrel B b.csv\nchain J1 A K B\n")
	u, err := ParseFile(filepath.Join(dir, "union.spec"), "")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Joins[0].Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// Escaping paths are rejected.
	write("evil.spec", "rel A ../a.csv\nchain J1 A\n")
	if _, err := ParseFile(filepath.Join(dir, "evil.spec"), ""); err == nil {
		t.Error("path escape accepted")
	}
	if _, err := ParseFile(filepath.Join(dir, "nope.spec"), ""); err == nil {
		t.Error("missing spec accepted")
	}
}
