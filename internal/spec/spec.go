// Package spec parses union-query specifications from a small
// line-oriented text format, turning CSV relations on disk into an
// executable set of joins. It is the glue between cmd/dbgen's output
// and cmd/sampler's input, and doubles as a minimal relational-algebra
// front end for the library.
//
// Format (one statement per line, '#' starts a comment):
//
//	rel    <name> <csv-file>                 load a relation
//	filter <name> <attr> <op> <int>          replace relation with its selection
//	chain  <join> <rel> [<attr> <rel>]...    chain join, attrs between relations
//	tree   <join> <root> ; <rel> <parent> <attr> ; ...
//	cyclic <join> <rel> <rel>... ; <relA> <relB> <attr> ; ...
//
// ops: = != < <= > >=
//
// Example:
//
//	rel nation nation.csv
//	rel supplier supplier_v0.csv
//	filter supplier s_acctbal < 5000
//	chain J1 nation nationkey supplier
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
)

// Loader resolves a file reference from a `rel` statement to a loaded
// relation. cmd/sampler uses a CSV-from-directory loader; tests use an
// in-memory one.
type Loader func(name, file string) (*relation.Relation, error)

// Union is a parsed specification: named relations and the joins whose
// union is sampled, in declaration order.
type Union struct {
	Relations map[string]*relation.Relation
	Joins     []*join.Join
}

// Parse reads a specification, loading relations through the loader.
func Parse(r io.Reader, load Loader) (*Union, error) {
	u := &Union{Relations: make(map[string]*relation.Relation)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "rel":
			err = u.parseRel(fields[1:], load)
		case "filter":
			err = u.parseFilter(fields[1:])
		case "chain":
			err = u.parseChain(fields[1:])
		case "tree":
			err = u.parseTree(fields[1:])
		case "cyclic":
			err = u.parseCyclic(fields[1:])
		default:
			err = fmt.Errorf("unknown statement %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if len(u.Joins) == 0 {
		return nil, fmt.Errorf("spec: no joins declared")
	}
	return u, nil
}

func (u *Union) parseRel(args []string, load Loader) error {
	if len(args) != 2 {
		return fmt.Errorf("rel wants <name> <file>, got %d args", len(args))
	}
	name, file := args[0], args[1]
	if _, dup := u.Relations[name]; dup {
		return fmt.Errorf("relation %q already declared", name)
	}
	r, err := load(name, file)
	if err != nil {
		return fmt.Errorf("loading %q: %w", file, err)
	}
	u.Relations[name] = r
	return nil
}

func (u *Union) parseFilter(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("filter wants <rel> <attr> <op> <value>, got %d args", len(args))
	}
	r, ok := u.Relations[args[0]]
	if !ok {
		return fmt.Errorf("unknown relation %q", args[0])
	}
	op, err := parseOp(args[2])
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil {
		return fmt.Errorf("filter value %q: %w", args[3], err)
	}
	if !r.Schema().Has(args[1]) {
		return fmt.Errorf("relation %q has no attribute %q", args[0], args[1])
	}
	u.Relations[args[0]] = r.Filter(r.Name()+"|σ", relation.Cmp{
		Attr: args[1], Op: op, Val: relation.Value(v),
	})
	return nil
}

func parseOp(s string) (relation.CmpOp, error) {
	switch s {
	case "=", "==":
		return relation.EQ, nil
	case "!=":
		return relation.NE, nil
	case "<":
		return relation.LT, nil
	case "<=":
		return relation.LE, nil
	case ">":
		return relation.GT, nil
	case ">=":
		return relation.GE, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", s)
}

func (u *Union) parseChain(args []string) error {
	if len(args) < 2 || len(args)%2 != 0 {
		return fmt.Errorf("chain wants <join> <rel> [<attr> <rel>]...")
	}
	name := args[0]
	rels := []*relation.Relation{}
	attrs := []string{}
	r, ok := u.Relations[args[1]]
	if !ok {
		return fmt.Errorf("unknown relation %q", args[1])
	}
	rels = append(rels, r)
	for i := 2; i+1 < len(args); i += 2 {
		attrs = append(attrs, args[i])
		r, ok := u.Relations[args[i+1]]
		if !ok {
			return fmt.Errorf("unknown relation %q", args[i+1])
		}
		rels = append(rels, r)
	}
	j, err := join.NewChain(name, rels, attrs)
	if err != nil {
		return err
	}
	u.Joins = append(u.Joins, j)
	return nil
}

// parseTree handles: <join> <root> ; <rel> <parent> <attr> ; ...
func (u *Union) parseTree(args []string) error {
	groups := splitGroups(args)
	if len(groups) < 2 || len(groups[0]) != 2 {
		return fmt.Errorf("tree wants <join> <root> ; <rel> <parent> <attr> ; ...")
	}
	name := groups[0][0]
	rootName := groups[0][1]
	root, ok := u.Relations[rootName]
	if !ok {
		return fmt.Errorf("unknown relation %q", rootName)
	}
	rels := []*relation.Relation{root}
	names := []string{rootName}
	parents := []int{-1}
	attrs := []string{""}
	indexOf := func(n string) int {
		for i, s := range names {
			if s == n {
				return i
			}
		}
		return -1
	}
	for _, gr := range groups[1:] {
		if len(gr) != 3 {
			return fmt.Errorf("tree edge wants <rel> <parent> <attr>, got %v", gr)
		}
		r, ok := u.Relations[gr[0]]
		if !ok {
			return fmt.Errorf("unknown relation %q", gr[0])
		}
		p := indexOf(gr[1])
		if p < 0 {
			return fmt.Errorf("parent %q not yet declared in tree", gr[1])
		}
		rels = append(rels, r)
		names = append(names, gr[0])
		parents = append(parents, p)
		attrs = append(attrs, gr[2])
	}
	j, err := join.NewTree(name, rels, parents, attrs)
	if err != nil {
		return err
	}
	u.Joins = append(u.Joins, j)
	return nil
}

// parseCyclic handles: <join> <rel>... ; <relA> <relB> <attr> ; ...
func (u *Union) parseCyclic(args []string) error {
	groups := splitGroups(args)
	if len(groups) < 2 || len(groups[0]) < 2 {
		return fmt.Errorf("cyclic wants <join> <rel>... ; <relA> <relB> <attr> ; ...")
	}
	name := groups[0][0]
	relNames := groups[0][1:]
	rels := make([]*relation.Relation, len(relNames))
	indexOf := func(n string) int {
		for i, s := range relNames {
			if s == n {
				return i
			}
		}
		return -1
	}
	for i, rn := range relNames {
		r, ok := u.Relations[rn]
		if !ok {
			return fmt.Errorf("unknown relation %q", rn)
		}
		rels[i] = r
	}
	var edges []join.Edge
	for _, gr := range groups[1:] {
		if len(gr) != 3 {
			return fmt.Errorf("cyclic edge wants <relA> <relB> <attr>, got %v", gr)
		}
		a, b := indexOf(gr[0]), indexOf(gr[1])
		if a < 0 || b < 0 {
			return fmt.Errorf("edge references relation outside the join: %v", gr)
		}
		edges = append(edges, join.Edge{A: a, B: b, Attr: gr[2]})
	}
	j, err := join.NewCyclic(name, rels, edges, nil)
	if err != nil {
		return err
	}
	u.Joins = append(u.Joins, j)
	return nil
}

// splitGroups splits fields on ";" tokens (a ";" may also be glued to
// a field's end, e.g. "root;").
func splitGroups(args []string) [][]string {
	var groups [][]string
	cur := []string{}
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = []string{}
		}
	}
	for _, a := range args {
		for {
			i := strings.IndexByte(a, ';')
			if i < 0 {
				break
			}
			if i > 0 {
				cur = append(cur, a[:i])
			}
			flush()
			a = a[i+1:]
		}
		if a != "" {
			cur = append(cur, a)
		}
	}
	flush()
	return groups
}
