package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sampleunion"
	"sampleunion/internal/relation"
	"sampleunion/internal/repl"
	"sampleunion/internal/wal"
)

// Config tunes a Server.
type Config struct {
	// DataDir anchors CSV references of inline-spec declarations;
	// empty rejects them (built-in workloads still serve).
	DataDir string
	// SessionCap bounds the registry's warm sessions (LRU beyond it).
	// Default 8.
	SessionCap int
	// MaxInflight bounds concurrently executing draw requests; past it
	// the server sheds load with 429 + Retry-After instead of queueing
	// without bound. Default 16 × GOMAXPROCS ÷ ShardWorkers (min 1):
	// sharded sessions fan every batch request out to ShardWorkers
	// goroutines, so the admission cap is divided by the fan-out to keep
	// one batch request from oversubscribing the cores.
	MaxInflight int
	// ShardWorkers is the per-request shard fan-out sessions prepared
	// with a shards option use (the worker-pool width of one batch
	// draw). It only scales the MaxInflight default; default GOMAXPROCS.
	ShardWorkers int

	// DurableDir enables durable ingest: per-relation WALs, snapshot
	// checkpoints, and the boot manifest live under it, and every
	// append is on disk before it is acked. Empty keeps the server
	// memory-only (wire-level mutations die with the process).
	DurableDir string
	// FsyncPolicy decides what an append ack means; see wal.SyncPolicy.
	// Default wal.SyncInterval (group commit).
	FsyncPolicy wal.SyncPolicy
	// FsyncInterval is the group-commit cadence under wal.SyncInterval.
	// Default 2ms.
	FsyncInterval time.Duration
	// CheckpointEvery checkpoints a relation after that many mutations
	// accumulate past its last checkpoint. Default 4096; < 0 disables
	// automatic checkpoints.
	CheckpointEvery int

	// FollowPrimary makes this server a read-only replication follower
	// of the primary at that base URL (e.g. "http://127.0.0.1:8080"):
	// it streams the primary's WAL frames, serves draws from the
	// replicated state, and answers writes with 307 to the primary.
	// Empty (the default) makes a normal standalone/primary server.
	FollowPrimary string
	// ReplHeartbeat is the replication heartbeat period: how often an
	// idle primary stream emits a liveness frame, and the unit of the
	// follower's dead-peer watchdog (~4 silent periods). Default 1s.
	ReplHeartbeat time.Duration
	// ReplClient, when set, is the HTTP client a follower dials the
	// primary with (fault-injection tests swap its transport). Nil uses
	// http.DefaultClient.
	ReplClient *http.Client
	// RequestTimeout bounds one draw request's execution: a draw still
	// running past it answers 503 while the work is abandoned to finish
	// in the background (its admission slot stays held until then, so
	// runaway queries still count against MaxInflight). 0 disables.
	RequestTimeout time.Duration
}

// Server is the HTTP serving layer: a session registry behind a JSON
// request surface, with admission control and per-endpoint metrics.
// Create with New, mount via Handler.
type Server struct {
	reg      *Registry
	metrics  *metricsSet
	sem      chan struct{}
	mux      *http.ServeMux
	started  time.Time
	draining atomic.Bool

	timeout time.Duration

	// hub serves WAL frames to followers (primary with durability
	// only); follower is the replication client (follower mode only).
	hub        *repl.Hub
	follower   *repl.Follower
	primaryURL string
	replClient *http.Client
	heartbeat  time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.SessionCap <= 0 {
		cfg.SessionCap = 8
	}
	if cfg.ShardWorkers <= 0 {
		cfg.ShardWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16 * runtime.GOMAXPROCS(0) / cfg.ShardWorkers
		if cfg.MaxInflight < 1 {
			cfg.MaxInflight = 1
		}
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 4096
	}
	if cfg.ReplHeartbeat <= 0 {
		cfg.ReplHeartbeat = time.Second
	}
	s := &Server{
		reg:        NewRegistry(cfg.DataDir, cfg.SessionCap),
		metrics:    newMetricsSet(),
		sem:        make(chan struct{}, cfg.MaxInflight),
		mux:        http.NewServeMux(),
		started:    time.Now(),
		timeout:    cfg.RequestTimeout,
		primaryURL: cfg.FollowPrimary,
		replClient: cfg.ReplClient,
		heartbeat:  cfg.ReplHeartbeat,
		stopCh:     make(chan struct{}),
	}
	if cfg.DurableDir != "" {
		s.reg.durable = newDurableStore(cfg.DurableDir, wal.RelationLogOptions{
			Options:         wal.Options{Policy: cfg.FsyncPolicy, Interval: cfg.FsyncInterval},
			CheckpointEvery: cfg.CheckpointEvery,
		})
	}
	if s.reg.durable != nil && cfg.FollowPrimary == "" {
		s.hub = repl.NewHub(repl.HubConfig{
			Resolve:   s.resolveSource,
			Heartbeat: cfg.ReplHeartbeat,
		})
	}
	s.mux.HandleFunc("POST /sample", s.handle("sample", true, s.handleSample))
	s.mux.HandleFunc("POST /sample/where", s.handle("sample_where", true, s.handleSampleWhere))
	s.mux.HandleFunc("POST /approx/count", s.handle("approx_count", true, s.handleApproxCount))
	s.mux.HandleFunc("POST /approx/sum", s.handle("approx_sum", true, s.handleApproxSum))
	s.mux.HandleFunc("POST /approx/avg", s.handle("approx_avg", true, s.handleApproxAvg))
	s.mux.HandleFunc("POST /approx/group", s.handle("approx_group", true, s.handleApproxGroup))
	s.mux.HandleFunc("POST /estimate", s.handle("estimate", false, s.handleEstimate))
	s.mux.HandleFunc("POST /refresh", s.handle("refresh", false, s.handleRefresh))
	s.mux.HandleFunc("POST /relation/{name}/append", s.handle("append", false, s.handleAppend))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The replication surface is raw byte streams and side-channel
	// bookkeeping, not JSON draws: it mounts outside handle() so
	// admission control and the response envelope never touch it.
	s.mux.HandleFunc("GET /repl/sessions", s.handleReplSessions)
	s.mux.HandleFunc("GET /repl/stream", s.handleReplStream)
	s.mux.HandleFunc("GET /repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("POST /repl/ack", s.handleReplAck)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the session registry (tests and metrics).
func (s *Server) Registry() *Registry { return s.reg }

// Inflight reports currently executing draw requests.
func (s *Server) Inflight() int { return len(s.sem) }

// Close releases the server's durable state, flushing and closing
// every open WAL, and stops replication (follower replicators, open
// primary streams); a memory-only standalone server's Close is a
// no-op. Call it after the HTTP listener has drained.
func (s *Server) Close() {
	s.stop()
	if s.follower != nil {
		s.follower.Close()
	}
	if s.reg.durable != nil {
		s.reg.durable.closeAll()
	}
}

func (s *Server) stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.hub != nil {
			s.hub.Close()
		}
	})
}

// SetDraining flips the server into drain mode: /healthz answers 503
// "draining" and shed requests get 503 + Connection: close instead of
// 429 + Retry-After, so load balancers fail over instead of retrying a
// process that is about to exit. Replication streams end too —
// long-lived responses would otherwise hold http.Server.Shutdown open
// forever. Call it before Shutdown.
func (s *Server) SetDraining() {
	s.draining.Store(true)
	s.stop()
}

// Draining reports whether SetDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// RestoreSessions re-prepares every declaration in the durable boot
// manifest, so a restarted daemon answers its working set warm: each
// session's relations come back from checkpoint + WAL replay and its
// warm-up runs over the recovered contents before any request arrives.
// It reports how many sessions were restored; a no-durability server
// restores zero. Call it once, before serving.
func (s *Server) RestoreSessions() (int, error) {
	d := s.reg.durable
	if d == nil {
		return 0, nil
	}
	ents, err := d.loadManifest()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, me := range ents {
		if _, err := s.reg.Get(me.Decl); err != nil {
			return n, fmt.Errorf("serve: restoring session %s: %w", me.Key, err)
		}
		n++
		d.restoredEntries.Add(1)
	}
	return n, nil
}

// badRequest marks client errors (malformed JSON, unknown workloads,
// bad predicates) so the envelope answers 400 instead of 500.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }

func badf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// redirectError makes the envelope answer 307 + Location: a follower
// pointing a write at the primary. 307 preserves the method and body,
// so a client that follows it replays the append verbatim (including
// its Idempotency-Key).
type redirectError struct{ location string }

func (e redirectError) Error() string {
	return fmt.Sprintf("serve: read-only follower; write to the primary at %s", e.location)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// handle wraps an endpoint: admission control and a request deadline
// (draw endpoints only), latency observation, and the JSON
// response/error envelope.
func (s *Server) handle(name string, admit bool, fn func(*http.Request) (any, error)) http.HandlerFunc {
	m := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if admit {
			select {
			case s.sem <- struct{}{}:
			default:
				s.metrics.rejected.Add(1)
				if s.draining.Load() {
					// Retry-After against a draining process invites
					// the client to re-hit a server that is about to
					// exit; tell it to go elsewhere instead.
					w.Header().Set("Connection", "close")
					writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "serve: draining, connect elsewhere"})
					return
				}
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, apiError{Error: "serve: overloaded, retry later"})
				return
			}
		}
		release := func() {
			if admit {
				<-s.sem
			}
		}
		start := time.Now()
		if !admit || s.timeout <= 0 {
			payload, err := fn(r)
			release()
			m.observe(time.Since(start), err != nil)
			s.writeResult(w, payload, err)
			return
		}
		// Deadline watchdog: the draw runs in its own goroutine so a
		// runaway query cannot pin this response past the timeout. The
		// abandoned work keeps its admission slot until it actually
		// finishes — MaxInflight bounds real concurrency, not just
		// responsive concurrency.
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		type result struct {
			payload any
			err     error
		}
		done := make(chan result, 1)
		go func() {
			payload, err := fn(r.WithContext(ctx))
			done <- result{payload, err}
		}()
		select {
		case res := <-done:
			release()
			m.observe(time.Since(start), res.err != nil)
			s.writeResult(w, res.payload, res.err)
		case <-ctx.Done():
			go func() {
				<-done
				release()
			}()
			s.metrics.rejected.Add(1)
			m.observe(time.Since(start), true)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				apiError{Error: fmt.Sprintf("serve: request exceeded the %v deadline", s.timeout)})
		}
	}
}

// writeResult renders an endpoint outcome through the error envelope.
func (s *Server) writeResult(w http.ResponseWriter, payload any, err error) {
	if err != nil {
		code := http.StatusInternalServerError
		var bad badRequest
		var redir redirectError
		switch {
		case errors.As(err, &redir):
			code = http.StatusTemporaryRedirect
			w.Header().Set("Location", redir.location)
		case errors.As(err, &bad):
			code = http.StatusBadRequest
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// encodePool recycles response-encoding buffers across requests: a
// draw endpoint answers from a pooled buffer (encode, write, return)
// instead of allocating an encoder and growing a fresh buffer per
// response, and writing the encoded bytes in one call sets
// Content-Length for the client.
var encodePool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// pooledBufferCap bounds the buffers the pool retains: a giant
// response (a 10^6-tuple draw) should not pin its buffer forever.
const pooledBufferCap = 1 << 20

func writeJSON(w http.ResponseWriter, code int, payload any) {
	buf := encodePool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(payload); err != nil {
		// Pre-header encoding failure: answer a clean 500 instead of a
		// truncated body.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", "serve: response encoding failed: "+err.Error())
		encodePool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	// Write errors past the header are undeliverable; the client sees
	// the truncated body.
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= pooledBufferCap {
		encodePool.Put(buf)
	}
}

// decode unmarshals a request body into dst, strictly.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badf("serve: bad request body: %v", err)
	}
	return nil
}

// sampleRequest is the body of /sample and /sample/where.
type sampleRequest struct {
	Union UnionDecl `json:"union"`
	// N is the number of tuples to draw.
	N int `json:"n"`
	// Seed pins an explicit reproducible stream; absent draws the
	// session's next auto stream.
	Seed *int64 `json:"seed,omitempty"`
	// Workers fans a plain /sample draw over that many goroutines.
	Workers int `json:"workers,omitempty"`
	// Where (only /sample/where) filters the sampled subset.
	Where *PredDecl `json:"where,omitempty"`
}

// sampleResponse carries the drawn tuples in schema order.
type sampleResponse struct {
	Schema    []string  `json:"schema"`
	Tuples    [][]int64 `json:"tuples"`
	UnionSize float64   `json:"union_size"`
	ElapsedUs float64   `json:"elapsed_us"`
}

func (s *Server) entryFor(decl UnionDecl) (*Entry, error) {
	e, err := s.reg.Get(decl)
	if err != nil {
		// Everything that can fail here — unknown workload, bad spec,
		// bad options — is a property of the request.
		return nil, badRequest{err}
	}
	return e, nil
}

func (s *Server) handleSample(r *http.Request) (any, error) {
	var req sampleRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.Where != nil {
		return nil, badf("serve: /sample takes no predicate; use /sample/where")
	}
	if req.N < 0 {
		return nil, badf("serve: n must be >= 0, got %d", req.N)
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	// A request for n tuples is one batch call into the engine, not n
	// per-draw calls; SampleParallel shards into batches per worker.
	start := time.Now()
	var tuples []sampleunion.Tuple
	switch {
	case req.Seed != nil:
		tuples, _, err = e.Sess.SampleBatchSeeded(req.N, *req.Seed)
	case req.Workers > 1:
		tuples, err = e.Sess.SampleParallel(req.N, req.Workers)
	default:
		tuples, _, err = e.Sess.SampleBatch(req.N)
	}
	if err != nil {
		return nil, err
	}
	return sampleResponse{
		Schema:    schemaAttrs(e.Sess.OutputSchema()),
		Tuples:    encodeTuples(tuples),
		UnionSize: e.Sess.UnionSize(),
		ElapsedUs: float64(time.Since(start).Nanoseconds()) / 1e3,
	}, nil
}

func (s *Server) handleSampleWhere(r *http.Request) (any, error) {
	var req sampleRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.N < 0 {
		return nil, badf("serve: n must be >= 0, got %d", req.N)
	}
	pred, err := wherePredicate(req.Where)
	if err != nil {
		return nil, err
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var tuples []sampleunion.Tuple
	if req.Seed != nil {
		tuples, _, err = e.Sess.SampleWhereBatchSeeded(req.N, pred, *req.Seed)
	} else {
		tuples, _, err = e.Sess.SampleWhereBatch(req.N, pred)
	}
	if err != nil {
		return nil, err
	}
	return sampleResponse{
		Schema:    schemaAttrs(e.Sess.OutputSchema()),
		Tuples:    encodeTuples(tuples),
		UnionSize: e.Sess.UnionSize(),
		ElapsedUs: float64(time.Since(start).Nanoseconds()) / 1e3,
	}, nil
}

// approxRequest is the body of the /approx/* endpoints. Attr is
// required for sum, avg, and group; Where applies to count, sum, avg.
type approxRequest struct {
	Union UnionDecl `json:"union"`
	N     int       `json:"n"`
	Attr  string    `json:"attr,omitempty"`
	Where *PredDecl `json:"where,omitempty"`
}

// approxResponse is one aggregate estimate with its 95% interval.
type approxResponse struct {
	Value     float64 `json:"value"`
	HalfWidth float64 `json:"half_width"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	N         int     `json:"n"`
}

func toApproxResponse(res sampleunion.AggResult) approxResponse {
	lo, hi := res.Interval()
	return approxResponse{Value: res.Value, HalfWidth: res.HalfWidth, Lo: lo, Hi: hi, N: res.N}
}

// approxCall factors the shared decode/validate/dispatch of the three
// scalar aggregate endpoints.
func (s *Server) approxCall(r *http.Request, needAttr bool,
	agg func(*Entry, relation.Predicate, approxRequest) (sampleunion.AggResult, error)) (any, error) {
	var req approxRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.N <= 0 {
		return nil, badf("serve: approximate aggregates need n >= 1, got %d", req.N)
	}
	if needAttr && req.Attr == "" {
		return nil, badf("serve: this aggregate needs an attr")
	}
	pred, err := wherePredicate(req.Where)
	if err != nil {
		return nil, err
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	res, err := agg(e, pred, req)
	if err != nil {
		return nil, err
	}
	return toApproxResponse(res), nil
}

func (s *Server) handleApproxCount(r *http.Request) (any, error) {
	return s.approxCall(r, false, func(e *Entry, pred relation.Predicate, req approxRequest) (sampleunion.AggResult, error) {
		return e.Sess.ApproxCount(pred, req.N)
	})
}

func (s *Server) handleApproxSum(r *http.Request) (any, error) {
	return s.approxCall(r, true, func(e *Entry, pred relation.Predicate, req approxRequest) (sampleunion.AggResult, error) {
		return e.Sess.ApproxSum(req.Attr, pred, req.N)
	})
}

func (s *Server) handleApproxAvg(r *http.Request) (any, error) {
	return s.approxCall(r, true, func(e *Entry, pred relation.Predicate, req approxRequest) (sampleunion.AggResult, error) {
		return e.Sess.ApproxAvg(req.Attr, pred, req.N)
	})
}

// groupResponse is /approx/group's body.
type groupResponse struct {
	Groups []groupEstimate `json:"groups"`
}

type groupEstimate struct {
	Key       int64   `json:"key"`
	Count     float64 `json:"count"`
	HalfWidth float64 `json:"half_width"`
}

func (s *Server) handleApproxGroup(r *http.Request) (any, error) {
	var req approxRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.N <= 0 {
		return nil, badf("serve: approximate aggregates need n >= 1, got %d", req.N)
	}
	if req.Attr == "" {
		return nil, badf("serve: group count needs an attr")
	}
	if req.Where != nil {
		return nil, badf("serve: group count takes no predicate")
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	groups, err := e.Sess.ApproxGroupCount(req.Attr, req.N)
	if err != nil {
		return nil, err
	}
	out := groupResponse{Groups: make([]groupEstimate, len(groups))}
	for i, g := range groups {
		out.Groups[i] = groupEstimate{
			Key:       int64(g.Key),
			Count:     g.Count.Value,
			HalfWidth: g.Count.HalfWidth,
		}
	}
	return out, nil
}

// unionRequest is the body of /estimate and /refresh.
type unionRequest struct {
	Union UnionDecl `json:"union"`
}

// estimateResponse reports the session's cached warm-up parameters.
type estimateResponse struct {
	UnionSize  float64   `json:"union_size"`
	JoinSizes  []float64 `json:"join_sizes"`
	CoverSizes []float64 `json:"cover_sizes"`
	WarmupMs   float64   `json:"warmup_ms"`
	Stale      bool      `json:"stale"`
}

func (s *Server) handleEstimate(r *http.Request) (any, error) {
	var req unionRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	est := e.Sess.Estimate()
	return estimateResponse{
		UnionSize:  est.UnionSize,
		JoinSizes:  est.JoinSizes,
		CoverSizes: est.CoverSizes,
		WarmupMs:   float64(e.Sess.WarmupTime().Nanoseconds()) / 1e6,
		Stale:      e.Sess.Stale(),
	}, nil
}

// refreshResponse reports a refresh's outcome.
type refreshResponse struct {
	Refreshed bool    `json:"refreshed"`
	UnionSize float64 `json:"union_size"`
}

func (s *Server) handleRefresh(r *http.Request) (any, error) {
	var req unionRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	stale := e.Sess.Stale()
	if err := e.Sess.Refresh(); err != nil {
		return nil, err
	}
	return refreshResponse{Refreshed: stale, UnionSize: e.Sess.UnionSize()}, nil
}

// appendRequest is the body of /relation/{name}/append: rows to ingest
// into the named base relation of the declared union.
type appendRequest struct {
	Union UnionDecl `json:"union"`
	Rows  [][]int64 `json:"rows"`
}

// appendResponse reports the ingest outcome. The session is refreshed
// before the response, so later draws observe the new rows. Appended
// rows live as long as the registry entry: the registry is a cache
// over declarations, so an evicted key re-prepares from the declared
// data without wire-level appends (eviction prefers unmutated
// entries; size -sessions to the mutated working set).
//
// When the append lands but the follow-up refresh fails, the response
// is still 200 — the rows ARE in the relation (retrying would
// duplicate them) — with refreshed == false and the refresh error
// attached; the session keeps serving under pre-append parameters
// until a later /refresh or mutation succeeds.
type appendResponse struct {
	Appended     int     `json:"appended"`
	Refreshed    bool    `json:"refreshed"`
	RefreshError string  `json:"refresh_error,omitempty"`
	UnionSize    float64 `json:"union_size"`
	// Durable reports that the rows were committed to the WAL (per the
	// configured fsync policy) before this ack.
	Durable bool `json:"durable"`
	// Deduped reports that this batch's Idempotency-Key matched an
	// already-committed batch: nothing was appended now, Appended
	// echoes the original batch's row count, and the original commit
	// still stands.
	Deduped bool `json:"deduped,omitempty"`
}

// maxIdemHeaderLen bounds the Idempotency-Key header (anything real is
// a UUID or similar; kilobytes of key is a client bug).
const maxIdemHeaderLen = 4096

func (s *Server) handleAppend(r *http.Request) (any, error) {
	if s.primaryURL != "" {
		return nil, redirectError{location: s.primaryURL + r.URL.Path}
	}
	name := r.PathValue("name")
	idemKey := r.Header.Get("Idempotency-Key")
	if len(idemKey) > maxIdemHeaderLen {
		return nil, badf("serve: Idempotency-Key longer than %d bytes", maxIdemHeaderLen)
	}
	var req appendRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	e, err := s.entryFor(req.Union)
	if err != nil {
		return nil, err
	}
	rel, ok := e.Rels[name]
	if !ok {
		return nil, badf("serve: union has no relation %q", name)
	}
	arity := rel.Schema().Len()
	rows := make([]relation.Tuple, len(req.Rows))
	for i, vals := range req.Rows {
		if len(vals) != arity {
			return nil, badf("serve: row %d has %d values, relation %q wants %d", i, len(vals), name, arity)
		}
		t := make(relation.Tuple, arity)
		for j, v := range vals {
			t[j] = relation.Value(v)
		}
		rows[i] = t
	}
	// Order append→refresh pairs so concurrent ingest calls cannot
	// observe each other half-applied; draws keep reading the current
	// session generation and flip to the refreshed one atomically.
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	if idemKey != "" {
		if n, ok := e.idem.lookup(name, idemKey); ok {
			// The batch already committed (possibly before a restart:
			// recovery reloads keys from the WAL). Re-ack it without
			// touching the relation.
			return appendResponse{
				Appended:  n,
				Durable:   e.durable != nil,
				Deduped:   true,
				UnionSize: e.Sess.UnionSize(),
			}, nil
		}
	}
	rel.AppendRowsTagged(rows, idemKey)
	e.mutated.Store(true)
	if e.durable != nil {
		// WAL-ack before commit: the rows were teed into the log as
		// AppendRows ran; make them durable before the 200. A commit
		// failure refuses the ack — the rows sit in memory but the
		// client must not treat them as accepted (the response says
		// so explicitly, since a retry after a restart is safe and a
		// retry against this process would duplicate them).
		if err := e.durable.commit(name); err != nil {
			return nil, fmt.Errorf("serve: append of %d rows to %q not durable: %v (rows are in memory only; do not retry against this process)", len(rows), name, err)
		}
	}
	if idemKey != "" {
		// Record only after the commit: a refused ack must leave the
		// key free so the client's retry is not answered from a batch
		// that never became durable.
		e.idem.record(name, idemKey, len(rows))
	}
	if s.hub != nil {
		s.hub.Wake(e.Key, name)
	}
	resp := appendResponse{Appended: len(rows), Refreshed: true, Durable: e.durable != nil}
	if err := e.Sess.Refresh(); err != nil {
		// The rows are committed; a 500 here would invite a retry that
		// duplicates them. Report the partial outcome instead.
		resp.Refreshed = false
		resp.RefreshError = err.Error()
	}
	resp.UnionSize = e.Sess.UnionSize()
	if e.durable != nil {
		e.durable.maybeCheckpoint(name)
	}
	return resp, nil
}

// healthzResponse is the liveness probe body.
type healthzResponse struct {
	Status      string  `json:"status"`
	Sessions    int     `json:"sessions"`
	Inflight    int     `json:"inflight"`
	MaxInflight int     `json:"max_inflight"`
	UptimeSec   float64 `json:"uptime_sec"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Load balancers watching this probe must stop routing here
		// before the listener actually closes.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthzResponse{
		Status:      status,
		Sessions:    s.reg.Stats().Sessions,
		Inflight:    s.Inflight(),
		MaxInflight: cap(s.sem),
		UptimeSec:   time.Since(s.started).Seconds(),
	})
}

// metricsResponse is the /metrics scrape body.
type metricsResponse struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Registry  RegistryStats               `json:"registry"`
	// Storage reports per-relation storage gauges (rows, live rows,
	// bytes per column vector, dictionary sizes) for every warm entry,
	// keyed by registry key — the scrape point for footprint
	// regressions in serving.
	Storage  map[string]EntryStorage `json:"storage"`
	Rejected int64                   `json:"rejected"`
	Inflight int                     `json:"inflight"`
	// Tuning reports per-session tuner decisions (adaptive "auto"
	// sessions only, keyed by registry key): plan and escalation
	// counters plus the per-join subroutine / exact / walk-budget /
	// alias-threshold choices in force. Absent when no warm session is
	// adaptive.
	Tuning map[string]sampleunion.TuneSnapshot `json:"tuning,omitempty"`
	// Durability reports WAL/checkpoint gauges; absent on a
	// memory-only server.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`
	// Replication reports the node's replication state — primary-side
	// per-follower lag or follower-side per-relation progress; absent
	// when the server neither serves nor follows streams.
	Replication *ReplicationSnapshot `json:"replication,omitempty"`
}

// ReplicationSnapshot is the /metrics replication block.
type ReplicationSnapshot struct {
	// Role is "primary" (durable server able to feed followers) or
	// "follower".
	Role     string                 `json:"role"`
	Primary  *repl.PrimarySnapshot  `json:"primary,omitempty"`
	Follower *repl.FollowerSnapshot `json:"follower,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{
		Endpoints: s.metrics.snapshot(),
		Registry:  s.reg.Stats(),
		Storage:   s.reg.StorageSnapshot(),
		Rejected:  s.metrics.rejected.Load(),
		Inflight:  s.Inflight(),
		Tuning:    s.reg.TuningSnapshot(),
	}
	if s.reg.durable != nil {
		snap := s.reg.durable.snapshot()
		resp.Durability = &snap
	}
	switch {
	case s.hub != nil:
		hs := s.hub.Snapshot()
		resp.Replication = &ReplicationSnapshot{Role: "primary", Primary: &hs}
	case s.follower != nil:
		fs := s.follower.Snapshot()
		resp.Replication = &ReplicationSnapshot{Role: "follower", Follower: &fs}
	}
	writeJSON(w, http.StatusOK, resp)
}

// wherePredicate compiles an optional predicate declaration (absent
// means true), classifying failures as client errors.
func wherePredicate(p *PredDecl) (relation.Predicate, error) {
	if p == nil {
		return relation.True{}, nil
	}
	pred, err := p.toPredicate()
	if err != nil {
		return nil, badRequest{err}
	}
	return pred, nil
}

func schemaAttrs(s *sampleunion.Schema) []string {
	out := make([]string, s.Len())
	for i := range out {
		out[i] = s.Attr(i)
	}
	return out
}

// encodeTuples converts a tuple batch to its wire shape. All rows
// share one flat backing array — two allocations per response instead
// of one per tuple.
func encodeTuples(ts []sampleunion.Tuple) [][]int64 {
	if len(ts) == 0 {
		return [][]int64{}
	}
	arity := len(ts[0])
	flat := make([]int64, len(ts)*arity)
	out := make([][]int64, len(ts))
	for i, t := range ts {
		row := flat[i*arity : (i+1)*arity : (i+1)*arity]
		for j, v := range t {
			row[j] = int64(v)
		}
		out[i] = row
	}
	return out
}
