package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// durableStore is the serving layer's durability root: one
// wal.RelationLog per (registry key, relation) under
//
//	root/sessions/<key>/<relation>/{wal,checkpoint}
//
// plus root/manifest.json, the registry manifest listing every durable
// declaration so a rebooted daemon can re-Prepare them and come up
// warm. Base data is rebuilt deterministically from the declaration on
// every boot; the WAL and checkpoints carry only wire-level mutations
// on top of it.
type durableStore struct {
	root string
	opts wal.RelationLogOptions

	mu      sync.Mutex
	entries map[string]*durableEntry

	commits         atomic.Int64
	commitErrors    atomic.Int64
	checkpoints     atomic.Int64
	checkpointErrs  atomic.Int64
	recoveredMuts   atomic.Int64
	restoredEntries atomic.Int64
}

// durableEntry is one registry entry's durability state.
type durableEntry struct {
	store *durableStore
	key   string
	rels  map[string]*wal.RelationLog
	// recovered counts mutations restored at open across the entry's
	// relations: > 0 means the entry carries wire-level state beyond
	// its declaration.
	recovered int
}

func newDurableStore(root string, opts wal.RelationLogOptions) *durableStore {
	return &durableStore{root: root, opts: opts, entries: make(map[string]*durableEntry)}
}

// relDirName maps a relation name to a directory entry. Workload and
// spec relation names are identifiers, which pass through readably;
// anything else falls back to a hex encoding so no name can escape its
// directory.
func relDirName(name string) string {
	safe := name != ""
	for _, r := range name {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-' || r == '.' {
			continue
		}
		safe = false
		break
	}
	if safe && name != "." && name != ".." {
		return name
	}
	return fmt.Sprintf("x%x", name)
}

// recover opens (restoring checkpoint + WAL state into) the durability
// state for every relation of a freshly built entry. The relations
// must hold exactly their deterministic base contents. The sinks are
// NOT attached yet — warm-up runs on the recovered contents first, and
// attach follows once the session exists (see Registry.prepare).
func (d *durableStore) recover(key string, rels map[string]*relation.Relation) (*durableEntry, error) {
	de := &durableEntry{store: d, key: key, rels: make(map[string]*wal.RelationLog, len(rels))}
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(d.root, "sessions", key, relDirName(name))
		rl, err := wal.OpenRelationLog(dir, rels[name], d.opts)
		if err != nil {
			de.close()
			return nil, fmt.Errorf("serve: recovering relation %q: %w", name, err)
		}
		de.rels[name] = rl
		de.recovered += rl.Recovered()
	}
	d.recoveredMuts.Add(int64(de.recovered))
	d.mu.Lock()
	d.entries[key] = de
	d.mu.Unlock()
	return de, nil
}

// attach starts teeing every relation's mutations into its WAL.
func (de *durableEntry) attach() {
	for _, rl := range de.rels {
		rl.Attach()
	}
}

func (de *durableEntry) close() {
	for _, rl := range de.rels {
		rl.Close()
	}
}

// commit makes the named relation's teed mutations durable; an append
// ack must not be sent unless it succeeds.
func (de *durableEntry) commit(name string) error {
	rl, ok := de.rels[name]
	if !ok {
		return fmt.Errorf("serve: no durable state for relation %q", name)
	}
	err := rl.Commit()
	if err != nil {
		de.store.commitErrors.Add(1)
		return err
	}
	de.store.commits.Add(1)
	return nil
}

// maybeCheckpoint checkpoints the named relation when due.
func (de *durableEntry) maybeCheckpoint(name string) {
	rl, ok := de.rels[name]
	if !ok {
		return
	}
	did, err := rl.MaybeCheckpoint()
	if err != nil {
		de.store.checkpointErrs.Add(1)
		return
	}
	if did {
		de.store.checkpoints.Add(1)
	}
}

// release closes an evicted entry's durability state. Its WAL and
// checkpoints stay on disk; a later Get for the key recovers them. An
// append racing the eviction fails its commit (the closed log is
// sticky) instead of acking undurable work.
func (d *durableStore) release(key string) {
	d.mu.Lock()
	de := d.entries[key]
	delete(d.entries, key)
	d.mu.Unlock()
	if de != nil {
		de.close()
	}
}

// closeAll releases every open entry (clean shutdown): final flush +
// fsync per WAL, so even SyncNever state is on disk when the process
// exits on purpose.
func (d *durableStore) closeAll() {
	d.mu.Lock()
	entries := d.entries
	d.entries = make(map[string]*durableEntry)
	d.mu.Unlock()
	for _, de := range entries {
		de.close()
	}
}

// open reports how many entries hold open durability state.
func (d *durableStore) open() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// manifest is the persisted registry: every declaration holding
// durable state, re-Prepared on boot so the daemon restarts warm.
type manifest struct {
	Entries []manifestEntry `json:"entries"`
}

type manifestEntry struct {
	Key  string    `json:"key"`
	Decl UnionDecl `json:"decl"`
}

func (d *durableStore) manifestPath() string { return filepath.Join(d.root, "manifest.json") }

func (d *durableStore) loadManifest() ([]manifestEntry, error) {
	raw, err := os.ReadFile(d.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("serve: parsing %s: %w", d.manifestPath(), err)
	}
	return m.Entries, nil
}

// rememberDecl records a declaration in the manifest (idempotent),
// atomically: temp file, fsync, rename.
func (d *durableStore) rememberDecl(key string, decl UnionDecl) error {
	return d.editManifest(func(m *manifest) {
		for _, e := range m.Entries {
			if e.Key == key {
				return
			}
		}
		m.Entries = append(m.Entries, manifestEntry{Key: key, Decl: decl})
	})
}

// forgetDecl drops a declaration from the manifest (eviction: the
// state stays on disk but is no longer restored at boot).
func (d *durableStore) forgetDecl(key string) error {
	return d.editManifest(func(m *manifest) {
		kept := m.Entries[:0]
		for _, e := range m.Entries {
			if e.Key != key {
				kept = append(kept, e)
			}
		}
		m.Entries = kept
	})
}

func (d *durableStore) editManifest(edit func(*manifest)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var m manifest
	if raw, err := os.ReadFile(d.manifestPath()); err == nil {
		if err := json.Unmarshal(raw, &m); err != nil {
			// A corrupt manifest costs warm restarts, not data; start a
			// fresh one rather than wedging ingest.
			m = manifest{}
		}
	}
	edit(&m)
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.MkdirAll(d.root, 0o777); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp, err := os.CreateTemp(d.root, ".manifest-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.manifestPath()); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// DurabilitySnapshot is the /metrics durability gauge set.
type DurabilitySnapshot struct {
	// Policy is the configured fsync policy.
	Policy string `json:"policy"`
	// OpenEntries counts registry entries with open durability state.
	OpenEntries int `json:"open_entries"`
	// Commits / CommitErrors count acked-durable append batches and
	// refused acks.
	Commits      int64 `json:"commits"`
	CommitErrors int64 `json:"commit_errors"`
	// Checkpoints / CheckpointErrors count snapshot checkpoints.
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// RecoveredMutations counts mutations restored from checkpoint+WAL
	// across all opens since boot; RestoredSessions counts sessions
	// re-prepared from the manifest at boot.
	RecoveredMutations int64 `json:"recovered_mutations"`
	RestoredSessions   int64 `json:"restored_sessions"`
}

func (d *durableStore) snapshot() DurabilitySnapshot {
	return DurabilitySnapshot{
		Policy:             d.opts.Policy.String(),
		OpenEntries:        d.open(),
		Commits:            d.commits.Load(),
		CommitErrors:       d.commitErrors.Load(),
		Checkpoints:        d.checkpoints.Load(),
		CheckpointErrors:   d.checkpointErrs.Load(),
		RecoveredMutations: d.recoveredMuts.Load(),
		RestoredSessions:   d.restoredEntries.Load(),
	}
}
