package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many recent latencies each endpoint retains for
// quantile estimation: big enough for stable p99s, small enough that a
// scrape's copy-and-sort stays cheap.
const latWindow = 4096

// endpointMetrics instruments one endpoint: monotone op/error counts
// plus a sliding window of recent latencies for p50/p95/p99.
type endpointMetrics struct {
	ops    atomic.Int64
	errors atomic.Int64

	mu     sync.Mutex
	lat    [latWindow]time.Duration
	next   int
	filled int
}

// observe records one completed request.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.ops.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.mu.Lock()
	m.lat[m.next] = d
	m.next = (m.next + 1) % latWindow
	if m.filled < latWindow {
		m.filled++
	}
	m.mu.Unlock()
}

// EndpointSnapshot is one endpoint's scrape output. Latency quantiles
// are over the sliding window, in microseconds.
type EndpointSnapshot struct {
	Ops    int64   `json:"ops"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
}

func (m *endpointMetrics) snapshot() EndpointSnapshot {
	m.mu.Lock()
	s := make([]time.Duration, m.filled)
	if m.filled < latWindow {
		copy(s, m.lat[:m.filled])
	} else {
		copy(s, m.lat[:])
	}
	m.mu.Unlock()
	snap := EndpointSnapshot{Ops: m.ops.Load(), Errors: m.errors.Load()}
	if len(s) == 0 {
		return snap
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) float64 {
		idx := int(float64(len(s)-1) * p)
		return float64(s[idx].Nanoseconds()) / 1e3
	}
	snap.P50us = q(0.50)
	snap.P95us = q(0.95)
	snap.P99us = q(0.99)
	return snap
}

// metricsSet holds the per-endpoint collectors plus server-wide
// admission counters.
type metricsSet struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	rejected  atomic.Int64 // 429s from admission control
}

func newMetricsSet() *metricsSet {
	return &metricsSet{endpoints: make(map[string]*endpointMetrics)}
}

func (s *metricsSet) endpoint(name string) *endpointMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.endpoints[name]
	if !ok {
		m = &endpointMetrics{}
		s.endpoints[name] = m
	}
	return m
}

func (s *metricsSet) snapshot() map[string]EndpointSnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.endpoints))
	for n := range s.endpoints {
		names = append(names, n)
	}
	s.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(names))
	for _, n := range names {
		out[n] = s.endpoint(n).snapshot()
	}
	return out
}
