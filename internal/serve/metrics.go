package serve

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// latBuckets is the size of the per-endpoint latency histogram: bucket
// b counts observations in [2^(b-1), 2^b) microseconds (bucket 0 is
// sub-microsecond), so 40 buckets span sub-µs to ~6 days — every
// latency a draw endpoint can produce.
const latBuckets = 40

// epochSamples is how many observations an epoch holds before the
// histogram rotates: a scrape sums the filling epoch and the previous
// full one, so quantiles reflect the most recent ~4k–8k requests —
// the recency the old 4096-sample sliding window provided.
const epochSamples = 4096

// endpointMetrics instruments one endpoint: monotone op/error counts
// plus a fixed log-bucket latency histogram for p50/p95/p99. Recording
// is two atomic adds into the current epoch's bucket — no lock — and a
// scrape reads 2×40 bucket counters, so quantile estimation is
// O(buckets) instead of the old copy-and-sort over a 4096-sample
// sliding window under a mutex. Two epochs rotate every epochSamples
// observations (the filling epoch plus the last full one are scraped
// together), keeping the quantiles recent at log-bucket resolution (a
// bucket spans one doubling; the estimate is its geometric midpoint).
type endpointMetrics struct {
	ops    atomic.Int64
	errors atomic.Int64
	epoch  atomic.Int64 // index of the filling epoch (0 or 1)
	seen   atomic.Int64 // observations since the last rotation
	lat    [2][latBuckets]atomic.Int64
}

// latBucket maps a latency to its histogram bucket.
func latBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) // us in [2^(b-1), 2^b)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// bucketEstimate returns the representative latency of a bucket in
// microseconds: the geometric midpoint of its doubling.
func bucketEstimate(b int) float64 {
	if b == 0 {
		return 0.7 // sub-microsecond
	}
	return math.Sqrt(float64(uint64(1)<<(b-1)) * float64(uint64(1)<<b))
}

// observe records one completed request: a few atomic adds, O(1),
// lock-free. Exactly one observer per epoch boundary (the one whose
// seen.Add lands on the multiple) performs the rotation: it clears the
// other epoch and flips the index, so a stale latency profile ages out
// within two epochs. Racing observers keep writing into the old epoch
// during the flip; their samples land in what becomes the "previous"
// epoch and still count in the scrape window.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.ops.Add(1)
	if failed {
		m.errors.Add(1)
	}
	e := m.epoch.Load()
	m.lat[e][latBucket(d)].Add(1)
	if m.seen.Add(1)%epochSamples == 0 {
		next := 1 - e
		for b := range m.lat[next] {
			m.lat[next][b].Store(0)
		}
		m.epoch.Store(next)
	}
}

// EndpointSnapshot is one endpoint's scrape output. Latency quantiles
// are estimated from the log-bucket histogram, in microseconds.
type EndpointSnapshot struct {
	Ops    int64   `json:"ops"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
}

func (m *endpointMetrics) snapshot() EndpointSnapshot {
	snap := EndpointSnapshot{Ops: m.ops.Load(), Errors: m.errors.Load()}
	var counts [latBuckets]int64
	var total int64
	for b := range counts {
		counts[b] = m.lat[0][b].Load() + m.lat[1][b].Load()
		total += counts[b]
	}
	if total == 0 {
		return snap
	}
	q := func(p float64) float64 {
		rank := int64(math.Ceil(p * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for b := range counts {
			cum += counts[b]
			if cum >= rank {
				return bucketEstimate(b)
			}
		}
		return bucketEstimate(latBuckets - 1)
	}
	snap.P50us = q(0.50)
	snap.P95us = q(0.95)
	snap.P99us = q(0.99)
	return snap
}

// metricsSet holds the per-endpoint collectors plus server-wide
// admission counters.
type metricsSet struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	rejected  atomic.Int64 // 429s from admission control
}

func newMetricsSet() *metricsSet {
	return &metricsSet{endpoints: make(map[string]*endpointMetrics)}
}

func (s *metricsSet) endpoint(name string) *endpointMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.endpoints[name]
	if !ok {
		m = &endpointMetrics{}
		s.endpoints[name] = m
	}
	return m
}

func (s *metricsSet) snapshot() map[string]EndpointSnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.endpoints))
	for n := range s.endpoints {
		names = append(names, n)
	}
	s.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(names))
	for _, n := range names {
		out[n] = s.endpoint(n).snapshot()
	}
	return out
}
