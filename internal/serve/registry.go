package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sampleunion"
	"sampleunion/internal/relation"
)

// Entry is one warm union in the registry: the prepared session, the
// executable union, and the live relations the session draws from
// (the append endpoint's targets). Entries are self-contained — an
// entry evicted from the registry keeps serving the requests already
// holding it and is collected when the last one finishes.
type Entry struct {
	Key   string
	Sess  *sampleunion.Session
	Union *sampleunion.Union
	Rels  map[string]*relation.Relation

	// Dict interns string columns of spec-declared entries (nil for
	// workload entries, whose generators emit integers directly); its
	// size is a /metrics storage gauge.
	Dict *relation.Dictionary

	hits atomic.Int64

	// mutated records that this entry's relations received appends
	// over the wire. The registry is a cache over declarations —
	// re-preparing an evicted key regenerates the declared data, so
	// wire-level mutations die with the entry. Eviction therefore
	// prefers unmutated entries; see insertLocked.
	mutated atomic.Bool

	// appendMu orders append→refresh pairs so two concurrent ingest
	// calls cannot interleave their refreshes with each other's
	// appends (draws never take it; they read the session's current
	// generation lock-free).
	appendMu sync.Mutex

	// durable is the entry's WAL + checkpoint state (nil when the
	// server runs memory-only). When set, the append path commits to
	// it before acking, and the entry's wire-level mutations survive
	// both eviction and restarts.
	durable *durableEntry

	// idem dedupes committed append batches by Idempotency-Key; with
	// durability on it is seeded from tagged WAL records at recovery,
	// so dedupe survives a restart.
	idem idemTable

	// pinned exempts the entry from LRU eviction. Replication
	// followers pin what they replicate: a replicator holds the
	// entry's relations, and evicting them would split the state it
	// applies frames to from the state draws read.
	pinned atomic.Bool
}

// Hits reports how many registry lookups this entry has served.
func (e *Entry) Hits() int64 { return e.hits.Load() }

// flight is one in-progress warm-up; concurrent requests for the same
// key block on done and share the outcome.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Registry maps canonical (union, options) keys to warm sessions. Each
// key's warm-up runs exactly once no matter how many requests race on
// a cold key (singleflight); warm entries are recycled in LRU order
// once Cap is exceeded.
type Registry struct {
	dataDir string
	cap     int

	// durable, when non-nil, recovers and persists every entry's
	// wire-level mutations (see durableStore); set by serve.New when
	// the server is configured with a durable data directory.
	durable *durableStore

	mu      sync.Mutex
	entries map[string]*list.Element // value: *Entry
	lru     *list.List               // front = most recently used
	flights map[string]*flight

	prepares  atomic.Int64 // warm-ups actually run
	hits      atomic.Int64 // lookups served by a warm entry
	coalesced atomic.Int64 // lookups that waited on another's warm-up
	evictions atomic.Int64
}

// RegistryStats is a point-in-time counter snapshot.
type RegistryStats struct {
	Sessions  int   `json:"sessions"`
	Capacity  int   `json:"capacity"`
	Prepares  int64 `json:"prepares"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// NewRegistry returns a registry holding at most cap warm sessions
// (minimum 1). dataDir anchors inline-spec CSV references; empty
// rejects spec declarations.
func NewRegistry(dataDir string, cap int) *Registry {
	if cap < 1 {
		cap = 1
	}
	return &Registry{
		dataDir: dataDir,
		cap:     cap,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// Get resolves a declaration to its warm entry, preparing it if this
// is the first request for the key. Concurrent first requests share
// one warm-up: exactly one goroutine builds and prepares, the rest
// block until it finishes and reuse (or share the error of) its
// outcome.
func (r *Registry) Get(decl UnionDecl) (*Entry, error) {
	key, err := decl.Key()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if el, ok := r.entries[key]; ok {
		r.lru.MoveToFront(el)
		r.mu.Unlock()
		e := el.Value.(*Entry)
		e.hits.Add(1)
		r.hits.Add(1)
		return e, nil
	}
	if f, ok := r.flights[key]; ok {
		r.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		r.coalesced.Add(1)
		f.e.hits.Add(1)
		return f.e, nil
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	r.mu.Unlock()

	f.e, f.err = r.prepare(key, decl)

	r.mu.Lock()
	delete(r.flights, key)
	if f.err == nil {
		r.insertLocked(key, f.e)
	}
	r.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	f.e.hits.Add(1)
	return f.e, nil
}

// prepare builds the union and pays the warm-up — the expensive part,
// run outside the registry lock. With durability on, recovery slots in
// between build and warm-up: the freshly built relations hold their
// deterministic base contents, checkpoint + WAL replay layers the
// persisted wire-level mutations on top, and the warm-up then runs
// over the recovered state. Sinks attach only after the session
// exists, so warm-up itself writes nothing to the log.
func (r *Registry) prepare(key string, decl UnionDecl) (*Entry, error) {
	u, rels, dict, err := decl.build(r.dataDir)
	if err != nil {
		return nil, err
	}
	opts, err := decl.Options.toOptions()
	if err != nil {
		return nil, err
	}
	var de *durableEntry
	if r.durable != nil {
		de, err = r.durable.recover(key, rels)
		if err != nil {
			return nil, err
		}
	}
	r.prepares.Add(1)
	sess, err := u.Prepare(opts)
	if err != nil {
		if de != nil {
			r.durable.release(key)
		}
		return nil, err
	}
	e := &Entry{Key: key, Sess: sess, Union: u, Rels: rels, Dict: dict, durable: de}
	if de != nil {
		de.attach()
		if de.recovered > 0 {
			e.mutated.Store(true)
		}
		// Re-seed the dedupe table from idempotency tags the WAL replay
		// surfaced, so a client retrying across our restart still
		// dedupes (within the WAL retention window).
		for name, rl := range de.rels {
			for tag, n := range rl.RecoveredTags() {
				e.idem.record(name, tag, n)
			}
		}
		if err := r.durable.rememberDecl(key, decl.normalize()); err != nil {
			r.durable.release(key)
			return nil, err
		}
	}
	return e, nil
}

// insertLocked publishes a fresh entry and evicts past capacity;
// callers hold r.mu.
func (r *Registry) insertLocked(key string, e *Entry) {
	if el, ok := r.entries[key]; ok {
		// A concurrent Get raced this flight to the same key (possible
		// only across an eviction); keep the existing entry current.
		r.lru.MoveToFront(el)
		return
	}
	r.entries[key] = r.lru.PushFront(e)
	for r.lru.Len() > r.cap {
		// Wire-level appends live only as long as their entry, so
		// recycle the least-recently-used clean entry first; a mutated
		// one goes only when every older entry is mutated (capacity is
		// a hard bound for unpinned entries). Pinned entries (targets a
		// replication follower holds) are never evicted, even past
		// capacity. The just-inserted front entry is never the victim.
		var victim *list.Element
		for el := r.lru.Back(); el != nil && el != r.lru.Front(); el = el.Prev() {
			en := el.Value.(*Entry)
			if en.pinned.Load() {
				continue
			}
			if victim == nil {
				victim = el
			}
			if !en.mutated.Load() {
				victim = el
				break
			}
		}
		if victim == nil {
			break
		}
		old := victim.Value.(*Entry)
		r.lru.Remove(victim)
		delete(r.entries, old.Key)
		r.evictions.Add(1)
		if r.durable != nil && old.durable != nil {
			// Close the victim's WAL (an in-flight append racing the
			// eviction fails its commit rather than ack undurable
			// work) and drop it from the boot manifest; its on-disk
			// state stays, so a later Get recovers the mutations.
			r.durable.release(old.Key)
			// A failed forget means the next boot restores an evicted
			// session — warm-RAM overshoot, not data loss.
			_ = r.durable.forgetDecl(old.Key)
		}
	}
}

// Lookup returns the warm entry for a key without preparing anything,
// for introspection and tests.
func (r *Registry) Lookup(key string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*Entry), true
}

// RelationStorage is one relation's storage gauge set: row counts and
// the bytes each column vector pins (capacity, not just length — the
// number a footprint regression shows up in).
type RelationStorage struct {
	Rows     int              `json:"rows"`
	LiveRows int              `json:"live_rows"`
	Bytes    int64            `json:"bytes"`
	ColBytes map[string]int64 `json:"col_bytes"`
}

// EntryStorage groups one warm entry's storage gauges: its relations
// plus the interning dictionary size (spec entries only).
type EntryStorage struct {
	Relations map[string]RelationStorage `json:"relations"`
	DictLen   int                        `json:"dict_len,omitempty"`
}

// StorageSnapshot reports per-relation storage gauges for every warm
// entry, keyed by registry key. Gauges are read off immutable relation
// snapshots, so only the entry listing holds the registry lock.
func (r *Registry) StorageSnapshot() map[string]EntryStorage {
	r.mu.Lock()
	entries := make([]*Entry, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	r.mu.Unlock()
	out := make(map[string]EntryStorage, len(entries))
	for _, e := range entries {
		es := EntryStorage{Relations: make(map[string]RelationStorage, len(e.Rels))}
		for name, rel := range e.Rels {
			st := rel.StorageStats()
			rs := RelationStorage{
				Rows:     st.Rows,
				LiveRows: st.LiveRows,
				ColBytes: make(map[string]int64, len(st.ColBytes)),
			}
			attrs := rel.Schema().Attrs()
			for a, b := range st.ColBytes {
				rs.Bytes += b
				rs.ColBytes[attrs[a]] = b
			}
			es.Relations[name] = rs
		}
		if e.Dict != nil {
			es.DictLen = e.Dict.Len()
		}
		out[e.Key] = es
	}
	return out
}

// TuningSnapshot reports the adaptive controller's decisions for every
// warm entry prepared with an "auto" declaration, keyed by registry
// key; non-adaptive entries are absent. Each report carries the
// controller counters (plans built, exact-estimation escalations, a
// pending rejection-triggered re-plan) and the current per-join
// decisions — the scrape point for watching what the tuner actually
// chose in serving.
func (r *Registry) TuningSnapshot() map[string]sampleunion.TuneSnapshot {
	r.mu.Lock()
	entries := make([]*Entry, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	r.mu.Unlock()
	out := make(map[string]sampleunion.TuneSnapshot, len(entries))
	for _, e := range entries {
		if sn, ok := e.Sess.TuneSnapshot(); ok {
			out[e.Key] = sn
		}
	}
	return out
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	n := r.lru.Len()
	r.mu.Unlock()
	return RegistryStats{
		Sessions:  n,
		Capacity:  r.cap,
		Prepares:  r.prepares.Load(),
		Hits:      r.hits.Load(),
		Coalesced: r.coalesced.Load(),
		Evictions: r.evictions.Load(),
	}
}
