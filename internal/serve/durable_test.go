package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"sampleunion/internal/wal"
)

func bytesReader(t *testing.T, body any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func jsonDecode(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := jsonDecode(resp.Body, out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func durableCfg(dir string) Config {
	return Config{
		DurableDir:      dir,
		FsyncPolicy:     wal.SyncNever, // durability across clean close/kill, no fsync latency in tests
		CheckpointEvery: 7,             // small: exercise checkpoint + WAL-truncate during the test
	}
}

// seededDraw pulls an explicitly seeded batch so two servers can be
// compared draw-for-draw regardless of their auto-stream positions.
func seededDraw(t *testing.T, url string, decl UnionDecl, n int, seed int64) [][]int64 {
	t.Helper()
	var resp sampleResponse
	if code := post(t, url+"/sample", sampleRequest{Union: decl, N: n, Seed: &seed}, &resp); code != http.StatusOK {
		t.Fatalf("seeded sample: status %d", code)
	}
	return resp.Tuples
}

// TestDurableWarmRestart is the tentpole acceptance test at the serve
// layer: appends acked by a durable server survive into a second
// server booted on the same directory, which comes up warm (no
// request-triggered warm-up) and produces the same seeded draws as the
// uninterrupted first server.
func TestDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	decl := quickDecl()

	s1, ts1 := newTestServer(t, durableCfg(dir))
	// Prepare via a draw, then ingest: 20 acked single-row appends so
	// the CheckpointEvery=7 trigger fires at least twice.
	seededDraw(t, ts1.URL, decl, 4, 7)
	for i := 0; i < 20; i++ {
		var ap appendResponse
		row := []int64{int64(100 + i), int64(i), int64(i % 5)}
		code := post(t, ts1.URL+"/relation/nation/append", appendRequest{Union: decl, Rows: [][]int64{row}}, &ap)
		if code != http.StatusOK {
			t.Fatalf("append %d: status %d", i, code)
		}
		if !ap.Durable || ap.Appended != 1 {
			t.Fatalf("append %d: %+v, want durable single-row ack", i, ap)
		}
	}
	key, err := decl.Key()
	if err != nil {
		t.Fatal(err)
	}
	e1, ok := s1.Registry().Lookup(key)
	if !ok {
		t.Fatal("entry missing")
	}
	wantTuples := e1.Rels["nation"].Tuples()
	wantVersion := e1.Rels["nation"].Version()
	wantDraw := seededDraw(t, ts1.URL, decl, 32, 99)
	if d := s1.reg.durable.snapshot(); d.Commits != 20 || d.Checkpoints < 2 {
		t.Fatalf("durability counters: %+v, want 20 commits and >= 2 checkpoints", d)
	}
	ts1.Close()
	s1.Close()

	// "Reboot": a fresh server over the same directory restores the
	// session from the manifest before any request arrives.
	s2, ts2 := newTestServer(t, durableCfg(dir))
	defer s2.Close()
	n, err := s2.RestoreSessions()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	e2, ok := s2.Registry().Lookup(key)
	if !ok {
		t.Fatal("restored entry missing from registry")
	}
	if got := e2.Rels["nation"].Version(); got != wantVersion {
		t.Fatalf("restored version %d, want %d", got, wantVersion)
	}
	gotTuples := e2.Rels["nation"].Tuples()
	if len(gotTuples) != len(wantTuples) {
		t.Fatalf("restored %d tuples, want %d", len(gotTuples), len(wantTuples))
	}
	for i := range wantTuples {
		if !gotTuples[i].Equal(wantTuples[i]) {
			t.Fatalf("restored tuple %d = %v, want %v", i, gotTuples[i], wantTuples[i])
		}
	}
	// Warm restart: the seeded stream must be byte-identical to the
	// uninterrupted server's, and serving it must not re-prepare.
	if got := seededDraw(t, ts2.URL, decl, 32, 99); !reflect.DeepEqual(got, wantDraw) {
		t.Fatalf("post-restart seeded draw diverged:\n got %v\nwant %v", got, wantDraw)
	}
	if st := s2.Registry().Stats(); st.Prepares != 1 {
		t.Fatalf("prepares after restore+draw = %d, want 1 (warm)", st.Prepares)
	}
}

// TestDurableEvictionKeepsMutations pins the durability upgrade to the
// LRU contract: a memory-only registry loses wire-level appends when a
// mutated entry is evicted, a durable one recovers them on the next
// Get for the key.
func TestDurableEvictionKeepsMutations(t *testing.T) {
	cfg := durableCfg(t.TempDir())
	cfg.SessionCap = 1
	s, ts := newTestServer(t, cfg)
	defer s.Close()

	declA := quickDecl()
	declB := quickDecl()
	declB.Options.Seed = 2 // distinct key, same tiny workload

	var ap appendResponse
	row := []int64{500, 1, 2}
	if code := post(t, ts.URL+"/relation/nation/append", appendRequest{Union: declA, Rows: [][]int64{row}}, &ap); code != http.StatusOK || !ap.Durable {
		t.Fatalf("append: code %d resp %+v", code, ap)
	}
	keyA, _ := declA.Key()
	eA, _ := s.Registry().Lookup(keyA)
	want := eA.Rels["nation"].Tuples()

	// Cap 1: preparing B must evict A (mutated or not — capacity is a
	// hard bound) and close its WAL.
	if _, err := s.Registry().Get(declB); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Registry().Lookup(keyA); ok {
		t.Fatal("A still resident; eviction did not happen")
	}
	if open := s.reg.durable.open(); open != 1 {
		t.Fatalf("open durable entries = %d, want 1 (A released)", open)
	}

	// Re-Get A: recovery must bring the appended row back.
	e2, err := s.Registry().Get(declA)
	if err != nil {
		t.Fatal(err)
	}
	got := e2.Rels["nation"].Tuples()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tuples, want %d (wire append lost in eviction)", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("recovered tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
	if !e2.mutated.Load() {
		t.Fatal("recovered entry not marked mutated")
	}
}

// TestDrainModeSheddingAndHealth covers the drain satellite: before
// SetDraining the shed path answers 429 + Retry-After, after it the
// same pressure answers 503 + Connection: close and /healthz flips to
// draining.
func TestDrainModeSheddingAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Fill the admission semaphore so every draw request sheds.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	shed := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sample", "application/json",
			bytesReader(t, sampleRequest{Union: quickDecl(), N: 1}))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := shed(); resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("pre-drain shed: %d %q, want 429 with Retry-After 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	s.SetDraining()
	resp := shed()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shed: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("draining shed still advertises Retry-After")
	}
	if !resp.Close {
		t.Fatal("draining shed did not signal Connection: close")
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: %d, want 503", hr.StatusCode)
	}
	var h healthzResponse
	if err := jsonDecode(hr.Body, &h); err != nil || h.Status != "draining" {
		t.Fatalf("draining /healthz status %q (err %v), want draining", h.Status, err)
	}
}

// TestDurableCommitFailureRefusesAck closes an entry's WAL out from
// under it (the eviction race) and expects the next append to answer
// 500 rather than ack rows that will not survive.
func TestDurableCommitFailureRefusesAck(t *testing.T) {
	s, ts := newTestServer(t, durableCfg(t.TempDir()))
	defer s.Close()
	decl := quickDecl()
	seededDraw(t, ts.URL, decl, 1, 1)
	key, _ := decl.Key()
	s.reg.durable.release(key) // closes the WAL; sticky ErrClosed

	var apiErr apiError
	code := post(t, ts.URL+"/relation/nation/append",
		appendRequest{Union: decl, Rows: [][]int64{{1, 2, 3}}}, &apiErr)
	if code != http.StatusInternalServerError {
		t.Fatalf("append on closed WAL: status %d, want 500", code)
	}
	if apiErr.Error == "" {
		t.Fatal("append on closed WAL: empty error body")
	}
	if d := s.reg.durable.snapshot(); d.CommitErrors != 1 {
		t.Fatalf("commit errors = %d, want 1", d.CommitErrors)
	}
}

// TestMetricsDurabilitySection asserts /metrics grows the durability
// gauge block exactly when durability is on.
func TestMetricsDurabilitySection(t *testing.T) {
	sOff, tsOff := newTestServer(t, Config{})
	_ = sOff
	var m map[string]any
	if code := post(t, tsOff.URL+"/sample", sampleRequest{Union: quickDecl(), N: 1}, nil); code != http.StatusOK {
		t.Fatalf("sample: %d", code)
	}
	getJSON(t, tsOff.URL+"/metrics", &m)
	if _, ok := m["durability"]; ok {
		t.Fatal("memory-only /metrics reports durability")
	}

	sOn, tsOn := newTestServer(t, durableCfg(t.TempDir()))
	defer sOn.Close()
	if code := post(t, tsOn.URL+"/relation/nation/append",
		appendRequest{Union: quickDecl(), Rows: [][]int64{{9, 9, 9}}}, nil); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	m = nil
	getJSON(t, tsOn.URL+"/metrics", &m)
	dur, ok := m["durability"].(map[string]any)
	if !ok {
		t.Fatal("durable /metrics missing durability block")
	}
	if dur["policy"] != "off" || dur["commits"].(float64) != 1 {
		t.Fatalf("durability block: %+v", dur)
	}
}
