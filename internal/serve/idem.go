package serve

import "sync"

// idemCap bounds the in-memory dedupe window in keys; past it the
// oldest keys age out FIFO. The durable window is bounded separately
// by WAL retention — a key whose record was truncated by checkpointing
// is not recovered at restart — so the contract either way is "recent
// batches dedupe, ancient retries may not".
const idemCap = 1 << 16

// idemTable is one entry's Idempotency-Key dedupe state: committed
// (relation, key) pairs mapped to the row count the original batch
// appended. Keys are recorded only after the batch's WAL commit and
// recovered from tagged WAL records at restart, so a dedupe answer
// always refers to a batch that is actually durable.
type idemTable struct {
	mu    sync.Mutex
	rows  map[string]int
	order []string // FIFO aging
}

func idemMapKey(relName, key string) string { return relName + "\x00" + key }

func (t *idemTable) lookup(relName, key string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.rows[idemMapKey(relName, key)]
	return n, ok
}

func (t *idemTable) record(relName, key string, n int) {
	mk := idemMapKey(relName, key)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rows == nil {
		t.rows = make(map[string]int)
	}
	if _, ok := t.rows[mk]; !ok {
		t.order = append(t.order, mk)
		for len(t.order) > idemCap {
			delete(t.rows, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.rows[mk] = n
}
