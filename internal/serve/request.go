// Package serve is the sampler's network-facing layer: an HTTP/JSON
// front end that multiplexes many concurrent clients onto few warm
// sampling sessions. Unions are declared by value in every request —
// a built-in TPC-H workload or an inline spec (internal/spec format) —
// and the server maps each distinct (union, options) declaration to
// one prepared Session through a keyed registry: the first request
// pays the warm-up (concurrent first requests coalesce onto a single
// warm-up via singleflight), every later request draws at per-draw
// cost, and cold entries fall out of a bounded LRU.
//
// The request surface mirrors the library: /sample, /sample/where,
// /approx/{count,sum,avg,group}, /estimate, /refresh, and
// /relation/{name}/append for streaming ingest (appends reconcile the
// session incrementally, PR 3's live path). /healthz and /metrics
// expose liveness and per-endpoint latency quantiles. Draw endpoints
// sit behind admission control: past the configured in-flight bound
// the server answers 429 with Retry-After instead of queueing without
// limit.
package serve

import (
	"fmt"
	"runtime"
	"strings"

	"sampleunion"
	"sampleunion/internal/relation"
	"sampleunion/internal/spec"
	"sampleunion/internal/tpch"
)

// UnionDecl declares the union a request targets, by value: either a
// built-in TPC-H workload or an inline spec. Two requests whose
// declarations canonicalize equal share one registry entry — and hence
// one warm-up and one live data instance.
type UnionDecl struct {
	// Workload names a built-in workload (UQ1, UQ2, UQ3) generated at
	// SF/Overlap/DataSeed. Mutually exclusive with Spec.
	Workload string  `json:"workload,omitempty"`
	SF       float64 `json:"sf,omitempty"`      // default 0.1 (serving-sized)
	Overlap  float64 `json:"overlap,omitempty"` // default 0.2
	DataSeed int64   `json:"data_seed,omitempty"`

	// Spec is an inline union specification in the internal/spec
	// format; CSV references resolve under the server's data directory.
	Spec string `json:"spec,omitempty"`

	// Options selects the sampling configuration the session is
	// prepared with.
	Options OptionsDecl `json:"options"`
}

// OptionsDecl is the JSON form of sampleunion.Options (the sampling
// knobs that shape a warm-up; per-request knobs like n and seed live
// on the request).
type OptionsDecl struct {
	// Warmup and Method accept the usual enum strings plus "auto":
	// declaring either as "auto" prepares the session with adaptive
	// tuning (Options.Auto), where the planner decides both the warm-up
	// escalation and the per-join subroutine. Declaring one as "auto"
	// while pinning the other to an explicit value is a conflict and
	// answers 400 — adaptive mode owns both decisions.
	Warmup      string `json:"warmup,omitempty"` // histogram | random-walk | exact | auto
	Method      string `json:"method,omitempty"` // EW | EO | WJ | auto
	Online      bool   `json:"online,omitempty"`
	WarmupWalks int    `json:"warmup_walks,omitempty"`
	Oracle      bool   `json:"oracle,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	// Shards enables the shard-parallel engine (Options.Shards): 0 or 1
	// keeps the single-shard engine, -1 resolves to the server's core
	// count, >= 2 is an explicit shard count.
	Shards int `json:"shards,omitempty"`
}

// auto reports whether the declaration opts into adaptive tuning.
func (o OptionsDecl) auto() bool {
	return o.Warmup == "auto" || o.Method == "auto"
}

// validate rejects combinations normalize would otherwise paper over.
// It runs on the raw declaration — before defaults fill in — so an
// explicitly pinned warmup or method alongside "auto" is caught rather
// than canonicalized away. Mirrors the cmd/sampler flag convention
// (PR 4): conflicting explicit knobs are an error, not a silent
// override; the server surfaces it as 400.
func (o OptionsDecl) validate() error {
	if !o.auto() {
		return nil
	}
	if o.Warmup != "" && o.Warmup != "auto" {
		return fmt.Errorf("serve: method=auto conflicts with warmup=%q; adaptive mode plans the warm-up (drop the explicit warmup)", o.Warmup)
	}
	if o.Method != "" && o.Method != "auto" {
		return fmt.Errorf("serve: warmup=auto conflicts with method=%q; adaptive mode picks the subroutine per join (drop the explicit method)", o.Method)
	}
	return nil
}

// normalize fills defaults so equal-by-effect declarations produce
// equal fingerprints (mirrors Options.withDefaults).
func (o OptionsDecl) normalize() OptionsDecl {
	if o.auto() {
		// Canonicalize both enum fields to "auto" (declaring either one
		// opts in) and mirror the library's cheaper adaptive walk
		// default, so {"warmup":"auto"} and {"method":"auto",
		// "warmup_walks":128} share a session.
		o.Warmup, o.Method = "auto", "auto"
		if o.WarmupWalks == 0 {
			o.WarmupWalks = sampleunion.AutoWarmupWalks
		}
	}
	if o.Warmup == "" {
		o.Warmup = "random-walk"
	}
	if o.Method == "" {
		o.Method = "EW"
	}
	if o.WarmupWalks == 0 {
		o.WarmupWalks = 1000
	}
	if o.WarmupWalks < 0 {
		o.WarmupWalks = -1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards < 0 {
		// Resolve "auto" at the server, so the fingerprint is stable for
		// the server's lifetime and equal-by-effect declarations share a
		// session.
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// toOptions converts to library options, validating the enum strings.
func (o OptionsDecl) toOptions() (sampleunion.Options, error) {
	if err := o.validate(); err != nil {
		return sampleunion.Options{}, err
	}
	o = o.normalize()
	out := sampleunion.Options{
		Online:      o.Online,
		WarmupWalks: o.WarmupWalks,
		Oracle:      o.Oracle,
		Seed:        o.Seed,
		Shards:      o.Shards,
	}
	if o.auto() {
		out.Auto = true
		return out, nil
	}
	var err error
	if out.Warmup, err = sampleunion.ParseWarmup(o.Warmup); err != nil {
		return out, err
	}
	if out.Method, err = sampleunion.ParseMethod(o.Method); err != nil {
		return out, err
	}
	return out, nil
}

// normalize fills declaration defaults (shared by key computation and
// union construction).
func (d UnionDecl) normalize() UnionDecl {
	if d.Spec == "" {
		if d.Workload == "" {
			d.Workload = "UQ1"
		}
		if d.SF <= 0 {
			d.SF = 0.1
		}
		if d.Overlap <= 0 {
			d.Overlap = 0.2
		}
		if d.DataSeed == 0 {
			d.DataSeed = 1
		}
	}
	d.Options = d.Options.normalize()
	return d
}

// Key returns the canonical registry key for the declaration: a stable
// hash over the canonicalized spec text (formatting-insensitive) or
// the workload identity, plus the normalized options. Declarations
// with equal keys are served by the same warm session.
func (d UnionDecl) Key() (string, error) {
	// Validate before normalizing: a conflicting declaration (explicit
	// warmup alongside method=auto) would otherwise canonicalize to the
	// same key as a legitimate adaptive declaration and be served from
	// its warm entry without ever reaching option validation.
	if err := d.Options.validate(); err != nil {
		return "", err
	}
	d = d.normalize()
	if d.Spec != "" && d.Workload != "" {
		return "", fmt.Errorf("serve: declare either workload or spec, not both")
	}
	o := d.Options
	optPart := fmt.Sprintf("opts warmup=%s method=%s online=%t walks=%d oracle=%t seed=%d shards=%d",
		o.Warmup, o.Method, o.Online, o.WarmupWalks, o.Oracle, o.Seed, o.Shards)
	srcPart := fmt.Sprintf("workload name=%s sf=%g overlap=%g seed=%d",
		d.Workload, d.SF, d.Overlap, d.DataSeed)
	if d.Spec != "" {
		srcPart = "spec"
	}
	return spec.Fingerprint(d.Spec, srcPart, optPart)
}

// build resolves the declaration into an executable union plus its
// relations by name (the append endpoint's targets). dataDir anchors
// CSV references of inline specs; an empty dataDir rejects spec
// declarations.
func (d UnionDecl) build(dataDir string) (*sampleunion.Union, map[string]*relation.Relation, *relation.Dictionary, error) {
	d = d.normalize()
	if d.Spec != "" {
		if d.Workload != "" {
			return nil, nil, nil, fmt.Errorf("serve: declare either workload or spec, not both")
		}
		if dataDir == "" {
			return nil, nil, nil, fmt.Errorf("serve: inline specs need the server started with a data directory")
		}
		// Each spec entry interns its string columns through its own
		// dictionary; /metrics reports its size alongside the storage
		// gauges.
		dict := relation.NewDictionary()
		su, err := spec.Parse(strings.NewReader(d.Spec), spec.DirLoaderDict(dataDir, dict))
		if err != nil {
			return nil, nil, nil, err
		}
		u, err := sampleunion.NewUnion(su.Joins...)
		if err != nil {
			return nil, nil, nil, err
		}
		return u, su.Relations, dict, nil
	}
	cfg := tpch.Config{SF: d.SF, Overlap: d.Overlap, Seed: d.DataSeed}
	var w *tpch.Workload
	var err error
	switch d.Workload {
	case "UQ1":
		w, err = tpch.UQ1(cfg)
	case "UQ2":
		w, err = tpch.UQ2(cfg)
	case "UQ3":
		w, err = tpch.UQ3(cfg)
	default:
		return nil, nil, nil, fmt.Errorf("serve: unknown workload %q (valid: UQ1, UQ2, UQ3)", d.Workload)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	u, err := sampleunion.NewUnion(w.Joins...)
	if err != nil {
		return nil, nil, nil, err
	}
	rels := make(map[string]*relation.Relation)
	for _, j := range w.Joins {
		for _, n := range j.Nodes() {
			rels[n.Rel.Name()] = n.Rel
		}
	}
	return u, rels, nil, nil
}

// PredDecl is the JSON form of a selection predicate: exactly one
// field set per node. The zero value (or an absent "where") means
// true.
type PredDecl struct {
	Cmp  *CmpDecl   `json:"cmp,omitempty"`
	And  []PredDecl `json:"and,omitempty"`
	Or   []PredDecl `json:"or,omitempty"`
	Not  *PredDecl  `json:"not,omitempty"`
	In   *InDecl    `json:"in,omitempty"`
	True bool       `json:"true,omitempty"`
}

// CmpDecl compares an attribute against a constant.
type CmpDecl struct {
	Attr  string `json:"attr"`
	Op    string `json:"op"` // = != < <= > >=
	Value int64  `json:"value"`
}

// InDecl tests membership of an attribute in a value set.
type InDecl struct {
	Attr   string  `json:"attr"`
	Values []int64 `json:"values"`
}

// toPredicate compiles the declaration. A zero-valued node is true, so
// requests may simply omit "where".
func (p PredDecl) toPredicate() (relation.Predicate, error) {
	set := 0
	if p.Cmp != nil {
		set++
	}
	if len(p.And) > 0 {
		set++
	}
	if len(p.Or) > 0 {
		set++
	}
	if p.Not != nil {
		set++
	}
	if p.In != nil {
		set++
	}
	if p.True {
		set++
	}
	if set == 0 {
		return relation.True{}, nil
	}
	if set > 1 {
		return nil, fmt.Errorf("serve: predicate node must set exactly one of cmp/and/or/not/in/true")
	}
	switch {
	case p.Cmp != nil:
		op, err := parseCmpOp(p.Cmp.Op)
		if err != nil {
			return nil, err
		}
		return relation.Cmp{Attr: p.Cmp.Attr, Op: op, Val: relation.Value(p.Cmp.Value)}, nil
	case len(p.And) > 0:
		sub, err := toPredicates(p.And)
		if err != nil {
			return nil, err
		}
		return relation.And(sub), nil
	case len(p.Or) > 0:
		sub, err := toPredicates(p.Or)
		if err != nil {
			return nil, err
		}
		return relation.Or(sub), nil
	case p.Not != nil:
		inner, err := p.Not.toPredicate()
		if err != nil {
			return nil, err
		}
		return relation.Not{P: inner}, nil
	case p.In != nil:
		vals := make([]relation.Value, len(p.In.Values))
		for i, v := range p.In.Values {
			vals[i] = relation.Value(v)
		}
		return relation.NewIn(p.In.Attr, vals...), nil
	}
	return relation.True{}, nil
}

func toPredicates(decls []PredDecl) ([]relation.Predicate, error) {
	out := make([]relation.Predicate, len(decls))
	for i, d := range decls {
		p, err := d.toPredicate()
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func parseCmpOp(s string) (relation.CmpOp, error) {
	switch s {
	case "=", "==":
		return relation.EQ, nil
	case "!=":
		return relation.NE, nil
	case "<":
		return relation.LT, nil
	case "<=":
		return relation.LE, nil
	case ">":
		return relation.GT, nil
	case ">=":
		return relation.GE, nil
	}
	return 0, fmt.Errorf("serve: unknown comparison operator %q (valid: = != < <= > >=)", s)
}
