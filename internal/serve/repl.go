package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sampleunion/internal/repl"
)

// resolveSource maps a replication stream's (session key, relation
// name) to the live relation and its WAL — the hub's lens into the
// registry. Only warm entries resolve: a cold key means the primary
// itself has not restored that session, and the follower retries.
func (s *Server) resolveSource(session, relName string) (repl.Source, error) {
	e, ok := s.reg.Lookup(session)
	if !ok {
		return repl.Source{}, fmt.Errorf("serve: no warm session %q", session)
	}
	rel, ok := e.Rels[relName]
	if !ok {
		return repl.Source{}, fmt.Errorf("serve: session %q has no relation %q", session, relName)
	}
	if e.durable == nil {
		return repl.Source{}, fmt.Errorf("serve: session %q has no durable state to stream", session)
	}
	rl, ok := e.durable.rels[relName]
	if !ok {
		return repl.Source{}, fmt.Errorf("serve: relation %q has no WAL", relName)
	}
	return repl.Source{Rel: rel, Log: rl}, nil
}

func (s *Server) replUnavailable(w http.ResponseWriter) bool {
	if s.hub != nil {
		return false
	}
	msg := "serve: replication requires a durable primary (start with -data-dir)"
	if s.primaryURL != "" {
		msg = "serve: this node is a follower; replicate from the primary at " + s.primaryURL
	}
	writeJSON(w, http.StatusServiceUnavailable, apiError{Error: msg})
	return true
}

// handleReplSessions lists the durable sessions a follower should
// replicate: the boot manifest, verbatim — key plus the declaration
// the follower re-prepares to get the identical deterministic base.
func (s *Server) handleReplSessions(w http.ResponseWriter, r *http.Request) {
	if s.replUnavailable(w) {
		return
	}
	ents, err := s.reg.durable.loadManifest()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	out := make([]repl.RemoteSession, 0, len(ents))
	for _, me := range ents {
		raw, err := json.Marshal(me.Decl)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		out = append(out, repl.RemoteSession{Key: me.Key, Decl: raw})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if s.replUnavailable(w) {
		return
	}
	s.hub.ServeStream(w, r)
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.replUnavailable(w) {
		return
	}
	s.hub.ServeSnapshot(w, r)
}

func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	if s.replUnavailable(w) {
		return
	}
	var req repl.AckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "serve: bad ack body: " + err.Error()})
		return
	}
	s.hub.RecordAck(req.Follower, req.Session, req.Relation, req.Applied, req.Reconnects, req.Resyncs)
	writeJSON(w, http.StatusOK, struct{}{})
}

// StartFollower begins replicating from the configured primary: it
// adds targets for every already-warm session (restored from the
// follower's own durable state), then polls the primary's session list
// — forever, in the background — preparing and following any it does
// not serve yet. An unreachable primary is not fatal at any point;
// restored sessions keep serving reads and the poll retries. Call it
// once, after RestoreSessions.
func (s *Server) StartFollower(pollEvery time.Duration) error {
	if s.primaryURL == "" {
		return fmt.Errorf("serve: StartFollower on a server with no FollowPrimary")
	}
	if s.follower != nil {
		return fmt.Errorf("serve: follower already started")
	}
	if pollEvery <= 0 {
		pollEvery = 30 * time.Second
	}
	// Reconnect backoff and ack cadence scale with the heartbeat: it is
	// the deployment's one statement about how fast replication should
	// notice and react to change.
	s.follower = repl.NewFollower(repl.Options{
		Primary:    s.primaryURL,
		Client:     s.replClient,
		FollowerID: followerID(),
		Heartbeat:  s.heartbeat,
		AckEvery:   2 * s.heartbeat,
		BackoffMin: s.heartbeat,
		BackoffMax: 20 * s.heartbeat,
		Seed:       uint64(time.Now().UnixNano()),
		Logf:       nil,
	})
	for _, e := range s.warmEntries() {
		s.followEntry(e)
	}
	go func() {
		t := time.NewTicker(pollEvery)
		defer t.Stop()
		s.syncFollowTargets()
		for {
			select {
			case <-s.stopCh:
				return
			case <-t.C:
				s.syncFollowTargets()
			}
		}
	}()
	return nil
}

var followerSeq sync.Mutex

func followerID() string {
	followerSeq.Lock()
	defer followerSeq.Unlock()
	return fmt.Sprintf("follower-%d", time.Now().UnixNano()%1e9)
}

func (s *Server) warmEntries() []*Entry {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	out := make([]*Entry, 0, s.reg.lru.Len())
	for el := s.reg.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry))
	}
	return out
}

// syncFollowTargets pulls the primary's session list and prepares +
// follows anything new. Failures are swallowed (the ticker retries):
// a follower must boot, serve its restored state, and wait out a dead
// primary.
func (s *Server) syncFollowTargets() {
	client := s.replClient
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sessions, err := repl.FetchSessions(ctx, client, s.primaryURL)
	if err != nil {
		return
	}
	for _, rs := range sessions {
		if _, ok := s.reg.Lookup(rs.Key); ok {
			continue // followEntry already ran for it (Add is idempotent anyway)
		}
		var decl UnionDecl
		if err := json.Unmarshal(rs.Decl, &decl); err != nil {
			continue
		}
		e, err := s.reg.Get(decl)
		if err != nil {
			continue
		}
		s.followEntry(e)
	}
}

// followEntry pins an entry (replicators hold its relations; eviction
// would orphan them) and registers one replication target per
// relation.
func (s *Server) followEntry(e *Entry) {
	e.pinned.Store(true)
	for name, rel := range e.Rels {
		t := repl.Target{
			Session:  e.Key,
			Relation: name,
			Rel:      rel,
			Refresh: func() error {
				// Replicators of sibling relations refresh the shared
				// session; appendMu orders them like wire appends.
				e.appendMu.Lock()
				defer e.appendMu.Unlock()
				e.mutated.Store(true)
				return e.Sess.Refresh()
			},
		}
		if e.durable != nil {
			relName := name
			if rl, ok := e.durable.rels[relName]; ok {
				t.Commit = func() error { return e.durable.commit(relName) }
				t.Checkpoint = rl.Checkpoint
			}
		}
		s.follower.Add(t)
	}
}
