package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sampleunion/internal/repl"
	"sampleunion/internal/wal"
)

// postIdem is post with an Idempotency-Key header.
func postIdem(t *testing.T, url, key string, body, out any) (status int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestAppendIdempotencyKeyDedupes(t *testing.T) {
	s, ts := newTestServer(t, durableCfg(t.TempDir()))
	defer s.Close()
	decl := quickDecl()
	seededDraw(t, ts.URL, decl, 2, 1)
	key, _ := decl.Key()
	e, _ := s.Registry().Lookup(key)
	base := e.Rels["nation"].Version()

	rows := [][]int64{{90, 1, 1}, {91, 2, 2}}
	var ap appendResponse
	if code := postIdem(t, ts.URL+"/relation/nation/append", "batch-1", appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK {
		t.Fatalf("first append: status %d", code)
	}
	if ap.Deduped || ap.Appended != 2 {
		t.Fatalf("first append: %+v, want fresh 2-row ack", ap)
	}
	// The retry: same key, nothing appended, original count echoed.
	if code := postIdem(t, ts.URL+"/relation/nation/append", "batch-1", appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK {
		t.Fatalf("retried append: status %d", code)
	}
	if !ap.Deduped || ap.Appended != 2 || !ap.Durable {
		t.Fatalf("retried append: %+v, want deduped 2-row ack", ap)
	}
	if got := e.Rels["nation"].Version(); got != base+2 {
		t.Fatalf("version %d after dedupe, want %d (rows must not double)", got, base+2)
	}
	// A different key is a different batch. (Fresh struct: deduped is
	// omitempty, so decoding would not clear a stale true.)
	ap = appendResponse{}
	if code := postIdem(t, ts.URL+"/relation/nation/append", "batch-2", appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK || ap.Deduped {
		t.Fatalf("distinct key: status %d %+v", code, ap)
	}
	if got := e.Rels["nation"].Version(); got != base+4 {
		t.Fatalf("version %d, want %d", got, base+4)
	}
	// Absurd keys are client errors, not silent truncations.
	long := string(bytes.Repeat([]byte("k"), maxIdemHeaderLen+1))
	if code := postIdem(t, ts.URL+"/relation/nation/append", long, appendRequest{Union: decl, Rows: rows}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized key: status %d, want 400", code)
	}
}

// TestAppendIdempotencySurvivesRestart pins the WAL tagging: the key
// rides in the tagged append record, so a retry that lands after a
// crash+restart still dedupes instead of double-appending.
func TestAppendIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	decl := quickDecl()
	rows := [][]int64{{95, 5, 5}}

	s1, ts1 := newTestServer(t, durableCfg(dir))
	seededDraw(t, ts1.URL, decl, 2, 1)
	var ap appendResponse
	if code := postIdem(t, ts1.URL+"/relation/nation/append", "retry-me", appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK || ap.Deduped {
		t.Fatalf("append: status %d %+v", code, ap)
	}
	key, _ := decl.Key()
	e1, _ := s1.Registry().Lookup(key)
	want := e1.Rels["nation"].Version()
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, durableCfg(dir))
	defer s2.Close()
	if _, err := s2.RestoreSessions(); err != nil {
		t.Fatal(err)
	}
	if code := postIdem(t, ts2.URL+"/relation/nation/append", "retry-me", appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK {
		t.Fatalf("post-restart retry: status %d", code)
	}
	if !ap.Deduped || ap.Appended != 1 {
		t.Fatalf("post-restart retry: %+v, want deduped", ap)
	}
	e2, _ := s2.Registry().Lookup(key)
	if got := e2.Rels["nation"].Version(); got != want {
		t.Fatalf("version %d after restart+retry, want %d", got, want)
	}
}

// TestRequestTimeoutShedsSlowDraws pins the per-request deadline: a
// draw that cannot finish inside RequestTimeout answers 503 with a
// Retry-After hint instead of pinning the connection.
func TestRequestTimeoutShedsSlowDraws(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	defer s.Close()
	b, _ := json.Marshal(sampleRequest{Union: quickDecl(), N: 4})
	resp, err := http.Post(ts.URL+"/sample", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timed-out draw carries no Retry-After")
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("timeout error envelope: %q, %v", apiErr.Error, err)
	}
}

// TestFollowerRedirectsWrites pins the read-only contract: a follower
// answers appends with 307 + Location at the primary, preserving
// method and body so the client's replay (with its Idempotency-Key)
// lands verbatim.
func TestFollowerRedirectsWrites(t *testing.T) {
	s, ts := newTestServer(t, Config{FollowPrimary: "http://primary.example:8080"})
	defer s.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	b, _ := json.Marshal(appendRequest{Union: quickDecl(), Rows: [][]int64{{1, 2, 3}}})
	resp, err := client.Post(ts.URL+"/relation/nation/append", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower append: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://primary.example:8080/relation/nation/append" {
		t.Fatalf("Location = %q", loc)
	}
}

// --- end-to-end chaos ---

// replCfg is the durable config both chaos nodes run: fast heartbeats,
// checkpoints rare enough that the WAL stays streamable through the
// test (truncation-driven resync has its own test in internal/repl).
func replCfg(dir string) Config {
	return Config{
		DurableDir:      dir,
		FsyncPolicy:     wal.SyncNever,
		CheckpointEvery: 1 << 20,
		ReplHeartbeat:   25 * time.Millisecond,
	}
}

// startServerAt boots a serve.Server on a specific listen address (or
// any free one when addr is ""), so a "restarted" primary comes back
// where its followers expect it.
func startServerAt(t *testing.T, addr string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	return s, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationChaosConvergence is the acceptance test for the
// replication tentpole: a primary ingests idempotent batches (with
// deliberate duplicate resends) while its follower replicates through
// a transport that drops, duplicates, reorders, delays, and truncates
// — and the primary is restarted mid-stream. Once the storm ends, the
// follower must hold the identical relation (zero lost, zero
// duplicated rows) and produce byte-identical seeded draws.
func TestReplicationChaosConvergence(t *testing.T) {
	dirP, dirF := t.TempDir(), t.TempDir()
	decl := quickDecl()
	key, _ := decl.Key()

	sP, tsP := startServerAt(t, "", replCfg(dirP))
	primaryURL := tsP.URL
	primaryAddr := tsP.Listener.Addr().String()
	seededDraw(t, primaryURL, decl, 2, 1) // warm + into the boot manifest
	eP, _ := sP.Registry().Lookup(key)
	baseVersion := eP.Rels["nation"].Version()

	// The follower dials the primary through the fault injector; its
	// serving endpoints and the test's ingest use clean connections.
	fi := repl.NewFaultInjector(repl.FaultConfig{
		Seed: 99, SegmentBytes: 256,
		DropProb: 0.05, DupProb: 0.05, ReorderProb: 0.05,
		TruncateProb: 0.02, DelayProb: 0.05, MaxDelay: time.Millisecond,
	})
	fcfg := replCfg(dirF)
	fcfg.FollowPrimary = primaryURL
	fcfg.ReplClient = &http.Client{Transport: &http.Transport{DialContext: fi.DialContext(nil)}}
	sF, tsF := startServerAt(t, "", fcfg)
	defer func() {
		sF.Close()
		tsF.Close()
	}()
	if err := sF.StartFollower(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Let the follower discover and prepare the session over a clean
	// link, then unleash the storm on the stream itself.
	waitFor(t, "follower session prepare", func() bool {
		e, ok := sF.Registry().Lookup(key)
		return ok && e.Rels["nation"].Version() >= baseVersion
	})
	eF, _ := sF.Registry().Lookup(key)
	fi.Enable()

	const batches = 25
	rowsSent := 0
	for i := 0; i < batches; i++ {
		if i == batches/2 {
			// Restart the primary mid-stream: followers must survive the
			// outage, reconnect with backoff, and resume.
			sP.Close()
			tsP.Close()
			sP, tsP = startServerAt(t, primaryAddr, replCfg(dirP))
			if _, err := sP.RestoreSessions(); err != nil {
				t.Fatal(err)
			}
			eP, _ = sP.Registry().Lookup(key)
		}
		rows := [][]int64{
			{int64(200 + 2*i), int64(i), int64(i % 5)},
			{int64(201 + 2*i), int64(i), int64(i % 5)},
		}
		ikey := fmt.Sprintf("chaos-batch-%d", i)
		var ap appendResponse
		if code := postIdem(t, primaryURL+"/relation/nation/append", ikey, appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, code)
		}
		if ap.Deduped {
			t.Fatalf("batch %d: fresh key answered as duplicate", i)
		}
		rowsSent += 2
		if i%5 == 0 {
			// The at-least-once client: resend the batch we just sent.
			if code := postIdem(t, primaryURL+"/relation/nation/append", ikey, appendRequest{Union: decl, Rows: rows}, &ap); code != http.StatusOK || !ap.Deduped {
				t.Fatalf("batch %d resend: status %d %+v, want deduped", i, code, ap)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer func() {
		sP.Close()
		tsP.Close()
	}()

	// End the storm; the follower must now fully converge.
	fi.Disable()
	wantVersion := baseVersion + uint64(rowsSent)
	if got := eP.Rels["nation"].Version(); got != wantVersion {
		t.Fatalf("primary version %d, want %d (idempotent resends must not double)", got, wantVersion)
	}
	waitFor(t, "follower convergence", func() bool {
		return eF.Rels["nation"].Version() == wantVersion
	})
	pT, fT := eP.Rels["nation"].Tuples(), eF.Rels["nation"].Tuples()
	if len(pT) != len(fT) {
		t.Fatalf("follower has %d tuples, primary %d", len(fT), len(pT))
	}
	for i := range pT {
		if !pT[i].Equal(fT[i]) {
			t.Fatalf("tuple %d: follower %v, primary %v", i, fT[i], pT[i])
		}
	}
	st := fi.Stats()
	if st.Drops+st.Dups+st.Reorders+st.Truncates+st.Delays == 0 {
		t.Fatal("fault injector never fired; the chaos test asserted nothing")
	}

	// Byte-identical seeded draws: the replicated state and the primary
	// state answer the same seeded request identically (the histogram
	// warm-up is RNG-free, so draws are a pure function of state+seed).
	// The follower's sampler refreshes at wire-idle boundaries, so poll.
	wantDraw := seededDraw(t, primaryURL, decl, 32, 4242)
	waitFor(t, "seeded draw convergence", func() bool {
		return reflect.DeepEqual(seededDraw(t, tsF.URL, decl, 32, 4242), wantDraw)
	})

	// The follower is read-only end to end: its append answers 307 home.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	b, _ := json.Marshal(appendRequest{Union: decl, Rows: [][]int64{{1, 2, 3}}})
	resp, err := noRedirect.Post(tsF.URL+"/relation/nation/append", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower append under replication: status %d, want 307", resp.StatusCode)
	}

	// Both /metrics expose their replication role; the follower's shows
	// the reconnects the restart and the storm forced.
	var pm, fm struct {
		Replication *ReplicationSnapshot `json:"replication"`
	}
	getJSON(t, primaryURL+"/metrics", &pm)
	getJSON(t, tsF.URL+"/metrics", &fm)
	if pm.Replication == nil || pm.Replication.Role != "primary" {
		t.Fatalf("primary metrics replication block: %+v", pm.Replication)
	}
	if fm.Replication == nil || fm.Replication.Role != "follower" || len(fm.Replication.Follower.Targets) == 0 {
		t.Fatalf("follower metrics replication block: %+v", fm.Replication)
	}
	ts := fm.Replication.Follower.Targets[0]
	if ts.Reconnects < 2 {
		t.Fatalf("reconnects = %d, want >= 2 (storm + primary restart)", ts.Reconnects)
	}
	if ts.LagRecords != 0 {
		t.Fatalf("lag_records = %d after convergence", ts.LagRecords)
	}
	t.Logf("chaos: faults=%+v reconnects=%d resyncs=%d duplicates=%d",
		st, ts.Reconnects, ts.Resyncs, ts.Duplicates)
}
