package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestServeRaceMixed is the -race integration test of the acceptance
// criteria: many concurrent clients mixing draws, predicate draws,
// aggregates, streaming appends, and explicit refreshes against one
// shared session, plus cold-key churn against a tiny LRU — every
// response must be a well-formed 200/429, with no data race and no
// panic.
func TestServeRaceMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := New(Config{SessionCap: 2, MaxInflight: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	decl := quickDecl()

	// Warm the shared session once so worker errors are real failures.
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 1}, nil); code != 200 {
		t.Fatal("warm-up failed")
	}

	var bad atomic.Int64
	report := func(what string, err error) {
		bad.Add(1)
		t.Errorf("%s: %v", what, err)
	}
	do := func(what, url string, body any) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+url, "application/json", bytes.NewReader(b))
		if err != nil {
			report(what, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			return // admission shed is a valid outcome under load
		}
		if resp.StatusCode != http.StatusOK {
			var apiErr apiError
			_ = json.NewDecoder(resp.Body).Decode(&apiErr)
			report(what, fmt.Errorf("status %d: %s", resp.StatusCode, apiErr.Error))
			return
		}
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			report(what, fmt.Errorf("invalid JSON: %v", err))
		}
	}

	const (
		drawWorkers   = 8
		aggWorkers    = 4
		ingestWorkers = 2
		iters         = 15
	)
	var wg sync.WaitGroup
	for w := 0; w < drawWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			where := &PredDecl{Cmp: &CmpDecl{Attr: "nationkey", Op: "<", Value: 12}}
			for i := 0; i < iters; i++ {
				if i%3 == 0 {
					do("sample/where", "/sample/where", sampleRequest{Union: decl, N: 8, Where: where})
				} else {
					do("sample", "/sample", sampleRequest{Union: decl, N: 16})
				}
			}
		}(w)
	}
	for w := 0; w < aggWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					do("approx/count", "/approx/count", approxRequest{Union: decl, N: 32})
				case 1:
					do("approx/sum", "/approx/sum", approxRequest{Union: decl, N: 32, Attr: "l_quantity"})
				default:
					do("estimate", "/estimate", unionRequest{Union: decl})
				}
			}
		}(w)
	}
	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%4 == 3 {
					do("refresh", "/refresh", unionRequest{Union: decl})
					continue
				}
				rows := [][]int64{{int64(30 + w), int64(995000 + i), int64(i % 5)}}
				do("append", "/relation/nation/append", appendRequest{Union: decl, Rows: rows})
			}
		}(w)
	}
	// Cold-key churn: distinct option seeds cycling through a 2-entry
	// LRU force prepare/evict races alongside the hot traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			d := decl
			d.Options.Seed = int64(100 + i%3)
			do("churn", "/sample", sampleRequest{Union: d, N: 4})
		}
	}()
	wg.Wait()

	if bad.Load() > 0 {
		t.Fatalf("%d failed requests", bad.Load())
	}
	// The shared entry survived the churn or was evicted — either way
	// the server still answers.
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 5}, nil); code != 200 {
		t.Fatalf("post-churn sample: %d", code)
	}
}
