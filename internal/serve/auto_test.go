package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// autoDecl is a small adaptive declaration: the session plans its own
// warm-up escalation and per-join subroutines.
func autoDecl() UnionDecl {
	return UnionDecl{
		Workload: "UQ1",
		SF:       0.02,
		Overlap:  0.2,
		Options:  OptionsDecl{Warmup: "auto", Seed: 1},
	}
}

// TestAutoDeclaration pins the adaptive request surface: "auto" in
// either enum field prepares an Options.Auto session and serves draws.
func TestAutoDeclaration(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var resp sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: autoDecl(), N: 16}, &resp); code != http.StatusOK {
		t.Fatalf("auto /sample: status %d", code)
	}
	if len(resp.Tuples) != 16 {
		t.Fatalf("auto /sample drew %d tuples, want 16", len(resp.Tuples))
	}
	if resp.UnionSize <= 0 {
		t.Fatalf("auto session reports union size %g", resp.UnionSize)
	}
	key, err := autoDecl().Key()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Registry().Lookup(key)
	if !ok {
		t.Fatal("auto entry missing after warm-up")
	}
	if !e.Sess.Options().Auto {
		t.Fatal("auto declaration prepared a non-adaptive session")
	}
}

// TestAutoKeyCanonicalization pins that the three equal-by-effect
// spellings of an adaptive declaration share one registry key — and
// hence one warm session.
func TestAutoKeyCanonicalization(t *testing.T) {
	base := autoDecl()
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	viaMethod := base
	viaMethod.Options = OptionsDecl{Method: "auto", Seed: 1}
	k2, err := viaMethod.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal(`{"warmup":"auto"} and {"method":"auto"} must share the key`)
	}
	spelled := base
	spelled.Options = OptionsDecl{Warmup: "auto", Method: "auto", WarmupWalks: 128, Seed: 1}
	k3, err := spelled.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Fatal("default-filled adaptive declaration must share the key")
	}
	nonAuto := base
	nonAuto.Options = OptionsDecl{Seed: 1}
	k4, err := nonAuto.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("adaptive and explicit declarations must not share a key")
	}
}

// TestAutoConflictRejected pins the PR 4 convention at the wire: an
// explicit warmup or method pinned alongside "auto" is a client error
// (400), never silently overridden — including when a legitimate
// adaptive session is already warm under the would-be canonical key.
func TestAutoConflictRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Warm the legitimate adaptive entry first, so a conflict slipping
	// past Key() validation would be served from its cache.
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: autoDecl(), N: 1}, nil); code != http.StatusOK {
		t.Fatalf("warming auto entry: status %d", code)
	}
	for _, opts := range []OptionsDecl{
		{Warmup: "exact", Method: "auto", Seed: 1},
		{Warmup: "auto", Method: "WJ", Seed: 1},
	} {
		decl := autoDecl()
		decl.Options = opts
		var apiErr apiError
		code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 1}, &apiErr)
		if code != http.StatusBadRequest {
			t.Fatalf("conflicting options %+v: status %d, want 400", opts, code)
		}
		if apiErr.Error == "" {
			t.Fatalf("conflicting options %+v: empty error body", opts)
		}
	}
}

// TestMetricsTuningSection pins that /metrics reports per-session tuner
// decisions for adaptive entries and stays silent for explicit ones.
func TestMetricsTuningSection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: autoDecl(), N: 8}, nil); code != http.StatusOK {
		t.Fatalf("auto /sample: status %d", code)
	}
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: quickDecl(), N: 8}, nil); code != http.StatusOK {
		t.Fatalf("explicit /sample: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	autoKey, err := autoDecl().Key()
	if err != nil {
		t.Fatal(err)
	}
	sn, ok := m.Tuning[autoKey]
	if !ok {
		t.Fatalf("tuning section missing adaptive entry %s (have %d entries)", autoKey, len(m.Tuning))
	}
	if sn.Replans < 1 {
		t.Fatalf("adaptive entry reports %d plans, want >= 1", sn.Replans)
	}
	if len(sn.Joins) == 0 {
		t.Fatal("adaptive entry reports no per-join decisions")
	}
	for j, jd := range sn.Joins {
		if jd.Method == "" {
			t.Fatalf("join %d decision has no subroutine", j)
		}
	}
	quickKey, err := quickDecl().Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Tuning[quickKey]; ok {
		t.Fatal("explicit entry must not appear in the tuning section")
	}
}
