package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// quickDecl is a small, fast-to-prepare declaration shared by most
// tests: tiny data, histogram warm-up (no walks).
func quickDecl() UnionDecl {
	return UnionDecl{
		Workload: "UQ1",
		SF:       0.02,
		Overlap:  0.2,
		Options:  OptionsDecl{Warmup: "histogram", Seed: 1},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body, out any) (status int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRegistrySingleWarmup is the acceptance gate: 64 concurrent
// clients hitting a cold key must share exactly one warm-up, and all
// 64 must be answered.
func TestRegistrySingleWarmup(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 256})
	const clients = 64
	var wg sync.WaitGroup
	codes := make([]int, clients)
	tuples := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp sampleResponse
			b, _ := json.Marshal(sampleRequest{Union: quickDecl(), N: 20})
			r, err := http.Post(ts.URL+"/sample", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			defer r.Body.Close()
			codes[i] = r.StatusCode
			if json.NewDecoder(r.Body).Decode(&resp) == nil {
				tuples[i] = len(resp.Tuples)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if tuples[i] != 20 {
			t.Fatalf("client %d: %d tuples, want 20", i, tuples[i])
		}
	}
	st := s.Registry().Stats()
	if st.Prepares != 1 {
		t.Fatalf("64 concurrent clients ran %d warm-ups, want exactly 1", st.Prepares)
	}
	// Every client is accounted for: one ran the warm-up, the rest
	// either waited on it (coalesced) or found the entry warm (hits).
	if st.Hits+st.Coalesced+st.Prepares != clients {
		t.Fatalf("hits %d + coalesced %d + prepares %d != %d clients", st.Hits, st.Coalesced, st.Prepares, clients)
	}
	key, err := quickDecl().Key()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Registry().Lookup(key)
	if !ok {
		t.Fatal("entry missing after warm-up")
	}
	if e.Hits() != clients {
		t.Fatalf("entry hits %d, want %d", e.Hits(), clients)
	}
}

// TestDeclKeyCanonicalization pins that formatting and default-filling
// do not split keys, while real differences do.
func TestDeclKeyCanonicalization(t *testing.T) {
	base := quickDecl()
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	// Same declaration with defaults spelled out.
	explicit := base
	explicit.DataSeed = 1
	explicit.Options.Method = "EW"
	explicit.Options.WarmupWalks = 1000
	k2, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("default-filled declaration must share the key")
	}
	diff := base
	diff.Options.Seed = 2
	k3, _ := diff.Key()
	if k3 == k1 {
		t.Fatal("different options must produce a different key")
	}
	diff2 := base
	diff2.SF = 0.03
	k4, _ := diff2.Key()
	if k4 == k1 {
		t.Fatal("different data must produce a different key")
	}

	s1 := UnionDecl{Spec: "rel x x.csv\nchain  J x k x  # c\n", Options: OptionsDecl{Seed: 1}}
	s2 := UnionDecl{Spec: "rel x x.csv\nchain J x k x", Options: OptionsDecl{Seed: 1}}
	ks1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ks1 != ks2 {
		t.Fatal("spec formatting must not split registry keys")
	}
	if _, err := (UnionDecl{Workload: "UQ1", Spec: "rel x x.csv"}).Key(); err == nil {
		t.Fatal("workload+spec declaration must be rejected")
	}
}

// TestLRUEviction fills the registry past capacity and checks the
// oldest entry is recycled while the newest stay warm.
func TestLRUEviction(t *testing.T) {
	r := NewRegistry("", 2)
	decls := make([]UnionDecl, 3)
	for i := range decls {
		d := quickDecl()
		d.Options.Seed = int64(i + 1)
		decls[i] = d
		if _, err := r.Get(d); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Sessions != 2 {
		t.Fatalf("sessions %d, want 2", st.Sessions)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	k0, _ := decls[0].Key()
	if _, ok := r.Lookup(k0); ok {
		t.Fatal("oldest entry should be evicted")
	}
	k2, _ := decls[2].Key()
	if _, ok := r.Lookup(k2); !ok {
		t.Fatal("newest entry should be warm")
	}
	// Re-requesting the evicted key re-prepares (cold) and works.
	if _, err := r.Get(decls[0]); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Prepares; got != 4 {
		t.Fatalf("prepares %d, want 4 (3 cold + 1 re-prepare)", got)
	}
}

// TestLRUEvictionSparesMutated pins the eviction policy: entries that
// received wire-level appends outlive clean ones, because their data
// cannot be regenerated from the declaration.
func TestLRUEvictionSparesMutated(t *testing.T) {
	r := NewRegistry("", 2)
	d1, d2, d3 := quickDecl(), quickDecl(), quickDecl()
	d2.Options.Seed = 2
	d3.Options.Seed = 3

	e1, err := r.Get(d1)
	if err != nil {
		t.Fatal(err)
	}
	e1.mutated.Store(true) // e1 holds appended rows
	if _, err := r.Get(d2); err != nil {
		t.Fatal(err)
	}
	// Inserting d3 must evict the clean d2, not the older-but-mutated d1.
	if _, err := r.Get(d3); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup(e1.Key); !ok {
		t.Fatal("mutated entry was evicted while a clean one remained")
	}
	k2, _ := d2.Key()
	if _, ok := r.Lookup(k2); ok {
		t.Fatal("clean entry should have been the victim")
	}
}

// TestSampleEndpoints exercises the draw endpoints end to end against
// one warm session.
func TestSampleEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decl := quickDecl()

	var sr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 50}, &sr); code != 200 {
		t.Fatalf("/sample: %d", code)
	}
	if len(sr.Tuples) != 50 || len(sr.Schema) == 0 || sr.UnionSize <= 0 {
		t.Fatalf("bad /sample response: %d tuples, %d attrs, |U|=%v", len(sr.Tuples), len(sr.Schema), sr.UnionSize)
	}
	for _, row := range sr.Tuples {
		if len(row) != len(sr.Schema) {
			t.Fatalf("row width %d != schema %d", len(row), len(sr.Schema))
		}
	}

	// Seeded draws reproduce bit-for-bit.
	seed := int64(42)
	var a, b sampleResponse
	post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 10, Seed: &seed}, &a)
	post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 10, Seed: &seed}, &b)
	if fmt.Sprint(a.Tuples) != fmt.Sprint(b.Tuples) {
		t.Fatal("seeded draws must be reproducible")
	}

	// Parallel draw.
	var pr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 64, Workers: 4}, &pr); code != 200 || len(pr.Tuples) != 64 {
		t.Fatalf("/sample workers=4: code %d, %d tuples", code, len(pr.Tuples))
	}

	// Predicate-filtered draw: every returned tuple satisfies it.
	where := &PredDecl{Cmp: &CmpDecl{Attr: "nationkey", Op: "<", Value: 10}}
	var wr sampleResponse
	if code := post(t, ts.URL+"/sample/where", sampleRequest{Union: decl, N: 20, Where: where}, &wr); code != 200 {
		t.Fatalf("/sample/where: %d", code)
	}
	nk := -1
	for i, attr := range wr.Schema {
		if attr == "nationkey" {
			nk = i
		}
	}
	if nk < 0 {
		t.Fatal("nationkey missing from schema")
	}
	for _, row := range wr.Tuples {
		if row[nk] >= 10 {
			t.Fatalf("predicate violated: nationkey=%d", row[nk])
		}
	}

	// Aggregates.
	var cr approxResponse
	if code := post(t, ts.URL+"/approx/count", approxRequest{Union: decl, N: 200, Where: where}, &cr); code != 200 {
		t.Fatalf("/approx/count: %d", code)
	}
	if cr.N != 200 || cr.HalfWidth <= 0 {
		t.Fatalf("bad count response: %+v", cr)
	}
	var sumr approxResponse
	if code := post(t, ts.URL+"/approx/sum", approxRequest{Union: decl, N: 200, Attr: "l_quantity"}, &sumr); code != 200 {
		t.Fatalf("/approx/sum: %d", code)
	}
	var avgr approxResponse
	if code := post(t, ts.URL+"/approx/avg", approxRequest{Union: decl, N: 200, Attr: "l_quantity"}, &avgr); code != 200 {
		t.Fatalf("/approx/avg: %d", code)
	}
	if avgr.Value <= 0 {
		t.Fatalf("avg l_quantity = %v, want > 0", avgr.Value)
	}
	var gr groupResponse
	if code := post(t, ts.URL+"/approx/group", approxRequest{Union: decl, N: 200, Attr: "o_status"}, &gr); code != 200 {
		t.Fatalf("/approx/group: %d", code)
	}
	if len(gr.Groups) == 0 {
		t.Fatal("no groups")
	}

	// Estimate.
	var er estimateResponse
	if code := post(t, ts.URL+"/estimate", unionRequest{Union: decl}, &er); code != 200 {
		t.Fatalf("/estimate: %d", code)
	}
	if er.UnionSize <= 0 || len(er.JoinSizes) != 5 {
		t.Fatalf("bad estimate: %+v", er)
	}
}

// TestAppendRefresh drives the live path end to end over HTTP: append
// rows into a base relation, then observe the refreshed session serve
// them.
func TestAppendRefresh(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decl := quickDecl()

	var before estimateResponse
	post(t, ts.URL+"/estimate", unionRequest{Union: decl}, &before)

	// Appending nation rows with a fresh nationkey grows every join
	// once matching suppliers/customers exist; here we instead clone a
	// plausible nation row so the estimate moves. Relation "nation" has
	// schema (nationkey, n_name, regionkey).
	rows := [][]int64{{25, 990001, 1}, {26, 990002, 2}}
	var ar appendResponse
	if code := post(t, ts.URL+"/relation/nation/append", appendRequest{Union: decl, Rows: rows}, &ar); code != 200 {
		t.Fatalf("/relation/nation/append: %d", code)
	}
	if ar.Appended != 2 {
		t.Fatalf("appended %d, want 2", ar.Appended)
	}
	if !ar.Refreshed || ar.RefreshError != "" {
		t.Fatalf("append not refreshed: %+v", ar)
	}

	// The session must be fresh after the mutation endpoint: /estimate
	// reports stale == false.
	var after estimateResponse
	if code := post(t, ts.URL+"/estimate", unionRequest{Union: decl}, &after); code != 200 {
		t.Fatal("estimate after append failed")
	}
	if after.Stale {
		t.Fatal("session still stale after mutation endpoint")
	}

	// Draws still work.
	var sr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 10}, &sr); code != 200 || len(sr.Tuples) != 10 {
		t.Fatalf("post-append sample: code %d, %d tuples", code, len(sr.Tuples))
	}

	// Explicit refresh endpoint: idempotent when nothing mutated.
	var rr refreshResponse
	if code := post(t, ts.URL+"/refresh", unionRequest{Union: decl}, &rr); code != 200 {
		t.Fatal("refresh failed")
	}
	if rr.Refreshed {
		t.Fatal("refresh reported work with no pending mutations")
	}

	// Bad arity is a 400, not a panic.
	if code := post(t, ts.URL+"/relation/nation/append", appendRequest{Union: decl, Rows: [][]int64{{1}}}, nil); code != 400 {
		t.Fatalf("bad arity: code %d, want 400", code)
	}
	// Unknown relation is a 400.
	if code := post(t, ts.URL+"/relation/nope/append", appendRequest{Union: decl, Rows: rows}, nil); code != 400 {
		t.Fatalf("unknown relation: code %d, want 400", code)
	}
}

// TestSpecDeclaration serves an inline-spec union with CSVs from the
// server's data directory, including appends against it.
func TestSpecDeclaration(t *testing.T) {
	dir := t.TempDir()
	writeCSV := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCSV("r.csv", "a,b\n1,10\n2,20\n3,10\n")
	writeCSV("s.csv", "b,c\n10,7\n20,8\n")
	specText := `
rel r r.csv
rel s s.csv
chain J1 r b s
chain J2 r b s
`
	_, ts := newTestServer(t, Config{DataDir: dir})
	decl := UnionDecl{Spec: specText, Options: OptionsDecl{Warmup: "histogram", Seed: 1}}

	var sr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 30}, &sr); code != 200 {
		t.Fatalf("/sample over spec: %d", code)
	}
	if len(sr.Tuples) != 30 {
		t.Fatalf("%d tuples, want 30", len(sr.Tuples))
	}

	var ar appendResponse
	if code := post(t, ts.URL+"/relation/r/append", appendRequest{Union: decl, Rows: [][]int64{{4, 20}}}, &ar); code != 200 {
		t.Fatalf("append over spec: %d", code)
	}
	if ar.UnionSize <= sr.UnionSize {
		t.Fatalf("|U| did not grow after join-extending append: %v -> %v", sr.UnionSize, ar.UnionSize)
	}

	// A server without a data directory rejects spec declarations.
	_, tsNoData := newTestServer(t, Config{})
	if code := post(t, tsNoData.URL+"/sample", sampleRequest{Union: decl, N: 1}, nil); code != 400 {
		t.Fatalf("spec without data dir: code %d, want 400", code)
	}
}

// TestSpecStringColumns serves a spec whose CSVs carry string payload
// columns: they dictionary-encode on load (per-entry dictionary) and
// the dictionary size surfaces as a /metrics storage gauge.
func TestSpecStringColumns(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "city.csv"),
		[]byte("a,b,city\n1,10,tokyo\n2,20,lagos\n3,10,tokyo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s.csv"),
		[]byte("b,c\n10,7\n20,8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	specText := `
rel r city.csv
rel s s.csv
chain J1 r b s
`
	_, ts := newTestServer(t, Config{DataDir: dir})
	decl := UnionDecl{Spec: specText, Options: OptionsDecl{Warmup: "histogram", Seed: 1}}

	var sr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: decl, N: 10}, &sr); code != 200 {
		t.Fatalf("/sample over string-column spec: %d", code)
	}
	if len(sr.Tuples) != 10 {
		t.Fatalf("%d tuples, want 10", len(sr.Tuples))
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, es := range m.Storage {
		if _, ok := es.Relations["r"]; !ok {
			continue
		}
		found = true
		if es.DictLen != 2 {
			t.Errorf("dict_len %d, want 2 (tokyo, lagos)", es.DictLen)
		}
		rs := es.Relations["r"]
		if rs.Rows != 3 || len(rs.ColBytes) != 3 {
			t.Errorf("relation r gauges %+v, want 3 rows over 3 columns", rs)
		}
	}
	if !found {
		t.Fatal("no storage gauges for the spec entry")
	}
}

// TestAdmissionControl saturates the in-flight bound and checks
// overload answers 429 with Retry-After instead of queueing.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Warm the session first so the blocking request is draw-only.
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: quickDecl(), N: 1}, nil); code != 200 {
		t.Fatal("warm-up request failed")
	}
	// Occupy the only slot.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	b, _ := json.Marshal(sampleRequest{Union: quickDecl(), N: 1})
	resp, err := http.Post(ts.URL+"/sample", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("429 body not a JSON error envelope: %v", err)
	}

	// Health and metrics stay reachable under overload.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz under overload: %v %v", err, hr)
	}
	hr.Body.Close()
}

// TestMetricsEndpoint checks the scrape shape: per-endpoint ops,
// error counts, latency quantiles, and registry counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/sample", sampleRequest{Union: quickDecl(), N: 5}, nil)
	}
	// One client error.
	post(t, ts.URL+"/sample", sampleRequest{Union: UnionDecl{Workload: "NOPE"}, N: 1}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	ep, ok := m.Endpoints["sample"]
	if !ok {
		t.Fatal("no sample endpoint metrics")
	}
	if ep.Ops != 6 || ep.Errors != 1 {
		t.Fatalf("ops=%d errors=%d, want 6/1", ep.Ops, ep.Errors)
	}
	if ep.P50us <= 0 || ep.P99us < ep.P50us {
		t.Fatalf("bad quantiles: %+v", ep)
	}
	if m.Registry.Prepares != 1 {
		t.Fatalf("registry prepares %d, want 1", m.Registry.Prepares)
	}
	if len(m.Storage) != 1 {
		t.Fatalf("storage gauges for %d entries, want 1", len(m.Storage))
	}
	for key, es := range m.Storage {
		if len(es.Relations) == 0 {
			t.Fatalf("entry %s: no relation storage gauges", key)
		}
		for name, rs := range es.Relations {
			if rs.Rows <= 0 || rs.LiveRows <= 0 || rs.LiveRows > rs.Rows {
				t.Errorf("%s: bad row gauges %+v", name, rs)
			}
			var sum int64
			for _, b := range rs.ColBytes {
				sum += b
			}
			if sum != rs.Bytes || rs.Bytes < int64(rs.Rows*8) {
				t.Errorf("%s: bytes %d (cols sum %d) inconsistent for %d rows", name, rs.Bytes, sum, rs.Rows)
			}
		}
		if es.DictLen != 0 {
			t.Errorf("workload entry %s reports dict_len %d, want 0", key, es.DictLen)
		}
	}
}

// TestBadRequests pins the 400 surface: malformed JSON, unknown
// fields, bad enums, bad predicates, negative n.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"malformed", "/sample", `{"union": `},
		{"unknown field", "/sample", `{"union": {}, "n": 1, "bogus": true}`},
		{"bad warmup", "/sample", `{"union": {"options": {"warmup": "histgram"}}, "n": 1}`},
		{"bad method", "/sample", `{"union": {"options": {"method": "XX"}}, "n": 1}`},
		{"bad workload", "/sample", `{"union": {"workload": "UQ9"}, "n": 1}`},
		{"negative n", "/sample", `{"union": {"workload": "UQ1", "sf": 0.02, "options": {"warmup": "histogram"}}, "n": -1}`},
		{"zero n aggregate", "/approx/count", `{"union": {"workload": "UQ1", "sf": 0.02, "options": {"warmup": "histogram"}}, "n": 0}`},
		{"bad op", "/sample/where", `{"union": {"workload": "UQ1", "sf": 0.02, "options": {"warmup": "histogram"}}, "n": 1, "where": {"cmp": {"attr": "x", "op": "~", "value": 1}}}`},
		{"two-field pred", "/sample/where", `{"union": {"workload": "UQ1", "sf": 0.02, "options": {"warmup": "histogram"}}, "n": 1, "where": {"true": true, "cmp": {"attr": "x", "op": "=", "value": 1}}}`},
		{"missing attr", "/approx/sum", `{"union": {"workload": "UQ1", "sf": 0.02, "options": {"warmup": "histogram"}}, "n": 10}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var apiErr apiError
		dec := json.NewDecoder(resp.Body)
		if err := dec.Decode(&apiErr); err != nil || apiErr.Error == "" {
			t.Errorf("%s: body is not an error envelope", c.name)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Wrong HTTP method on an action endpoint.
	resp, err := http.Get(ts.URL + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sample: status %d, want 405", resp.StatusCode)
	}
}

// TestN0Sample pins the n == 0 contract over HTTP: 200 with an empty
// tuple list.
func TestN0Sample(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sr sampleResponse
	if code := post(t, ts.URL+"/sample", sampleRequest{Union: quickDecl(), N: 0}, &sr); code != 200 {
		t.Fatalf("n=0: status %d, want 200", code)
	}
	if len(sr.Tuples) != 0 {
		t.Fatalf("n=0: %d tuples, want 0", len(sr.Tuples))
	}
}

func TestPredicateDeclCompilation(t *testing.T) {
	cmp := func(attr, op string, v int64) *PredDecl {
		return &PredDecl{Cmp: &CmpDecl{Attr: attr, Op: op, Value: v}}
	}
	good := []PredDecl{
		{}, // zero node means true
		{True: true},
		*cmp("a", "=", 1),
		*cmp("a", "==", 1),
		*cmp("a", "!=", 1),
		*cmp("a", "<", 1),
		*cmp("a", "<=", 1),
		*cmp("a", ">", 1),
		*cmp("a", ">=", 1),
		{And: []PredDecl{*cmp("a", "<", 5), *cmp("b", ">", 1)}},
		{Or: []PredDecl{*cmp("a", "=", 5), {True: true}}},
		{Not: cmp("a", "=", 5)},
		{In: &InDecl{Attr: "a", Values: []int64{1, 2, 3}}},
	}
	for i, d := range good {
		if _, err := d.toPredicate(); err != nil {
			t.Fatalf("decl %d: %v", i, err)
		}
	}
	bad := []PredDecl{
		{True: true, Cmp: &CmpDecl{Attr: "a", Op: "=", Value: 1}}, // two nodes set
		*cmp("a", "~", 1),                    // unknown operator
		{And: []PredDecl{*cmp("a", "~", 1)}}, // error inside and
		{Or: []PredDecl{*cmp("a", "~", 1)}},  // error inside or
		{Not: cmp("a", "~", 1)},              // error inside not
	}
	for i, d := range bad {
		if _, err := d.toPredicate(); err == nil {
			t.Fatalf("bad decl %d compiled", i)
		}
	}
}

func TestDrainingFlag(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	s.SetDraining()
	if !s.Draining() {
		t.Fatal("SetDraining did not stick")
	}
}
