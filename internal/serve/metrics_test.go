package serve

import (
	"sync"
	"testing"
	"time"
)

func TestLatBucketMapping(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Second, 20},
		{10 * 24 * time.Hour, latBuckets - 1}, // clamped
	}
	for _, c := range cases {
		if got := latBucket(c.d); got != c.want {
			t.Errorf("latBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramQuantiles checks that the log-bucket quantiles land in
// the right doubling and stay monotone: 95 fast ops and 5 slow ones
// must put p50 near the fast latency and p99 near the slow one.
func TestHistogramQuantiles(t *testing.T) {
	var m endpointMetrics
	for i := 0; i < 95; i++ {
		m.observe(100*time.Microsecond, false)
	}
	for i := 0; i < 5; i++ {
		m.observe(50*time.Millisecond, true)
	}
	s := m.snapshot()
	if s.Ops != 100 || s.Errors != 5 {
		t.Fatalf("ops=%d errors=%d", s.Ops, s.Errors)
	}
	if s.P50us < 64 || s.P50us > 256 {
		t.Errorf("p50 = %.1fus, want within the 100us doubling", s.P50us)
	}
	if s.P99us < 32768 || s.P99us > 131072 {
		t.Errorf("p99 = %.1fus, want within the 50ms doubling", s.P99us)
	}
	if !(s.P50us <= s.P95us && s.P95us <= s.P99us) {
		t.Errorf("quantiles not monotone: p50=%.1f p95=%.1f p99=%.1f", s.P50us, s.P95us, s.P99us)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var m endpointMetrics
	s := m.snapshot()
	if s.Ops != 0 || s.P50us != 0 || s.P99us != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestHistogramAgesOut: epoch rotation keeps quantiles recent — after
// two full epochs of fast requests, a historical slow profile must no
// longer dominate p99 (the regression the old sliding window caught
// and a cumulative histogram would miss).
func TestHistogramAgesOut(t *testing.T) {
	var m endpointMetrics
	for i := 0; i < 3*epochSamples; i++ {
		m.observe(100*time.Millisecond, false)
	}
	if s := m.snapshot(); s.P50us < 50000 {
		t.Fatalf("slow phase p50 = %.0fus", s.P50us)
	}
	for i := 0; i < 2*epochSamples; i++ {
		m.observe(200*time.Microsecond, false)
	}
	s := m.snapshot()
	if s.P99us > 1000 {
		t.Errorf("p99 = %.0fus still reflects the aged-out slow profile", s.P99us)
	}
	if s.Ops != 5*epochSamples {
		t.Errorf("ops = %d", s.Ops)
	}
}

// TestHistogramConcurrentRecord hammers observe from many goroutines
// while scraping — the recording path is lock-free atomics, so this is
// primarily a -race check plus a total-count assertion.
func TestHistogramConcurrentRecord(t *testing.T) {
	var m endpointMetrics
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.observe(time.Duration(w*i)*time.Microsecond, false)
				if i%512 == 0 {
					_ = m.snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := m.snapshot()
	if s.Ops != workers*per {
		t.Fatalf("ops = %d, want %d", s.Ops, workers*per)
	}
	// Rotation clears aged epochs, so the histogram holds a recent
	// window of the traffic — non-empty, never more than all of it.
	var total int64
	for e := 0; e < 2; e++ {
		for b := 0; b < latBuckets; b++ {
			total += m.lat[e][b].Load()
		}
	}
	if total <= 0 || total > workers*per {
		t.Fatalf("histogram window = %d of %d observations", total, workers*per)
	}
}
