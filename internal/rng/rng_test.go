package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged on Uint64")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide %d/64 times", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := New(1)
	for i := 0; i < 20; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) || !g.Bernoulli(1.5) {
			t.Fatal("out-of-range p mishandled")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(3)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %.4f", p)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	g := New(11)
	w := []float64{1, 0, 3, 6}
	counts := make([]int, len(w))
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	for i, want := range []float64{0.1, 0, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %.4f, want %.2f", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	g := New(5)
	if got := g.Categorical(nil); got != -1 {
		t.Errorf("Categorical(nil) = %d", got)
	}
	if got := g.Categorical([]float64{0, 0}); got != -1 {
		t.Errorf("Categorical(zeros) = %d", got)
	}
	if got := g.Categorical([]float64{-1, 2}); got != 1 {
		t.Errorf("Categorical(neg,pos) = %d", got)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	g := New(13)
	w := []float64{2, 5, 0, 1, 2}
	a := NewAlias(w)
	if a == nil {
		t.Fatal("NewAlias returned nil")
	}
	if a.Len() != len(w) {
		t.Fatalf("Len = %d", a.Len())
	}
	counts := make([]int, len(w))
	const n = 500000
	for i := 0; i < n; i++ {
		counts[a.Draw(g)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight drawn %d times", counts[2])
	}
	total := 10.0
	for i, wi := range w {
		got := float64(counts[i]) / n
		want := wi / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias index %d frequency = %.4f, want %.2f", i, got, want)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Error("NewAlias(nil) non-nil")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Error("NewAlias(zeros) non-nil")
	}
	a := NewAlias([]float64{0, 0, 4})
	g := New(17)
	for i := 0; i < 100; i++ {
		if a.Draw(g) != 2 {
			t.Fatal("single-mass alias drew wrong index")
		}
	}
}

// TestUint64nBoundary is the regression test for the weighted-row index
// derivation bug: the old float path int64(Float64()*float64(total))
// rounds up to total when Float64 lands close enough to 1 — the product
// total·(1-2^-53) is exactly total in float64 for any total above a few
// thousand — and loses precision entirely for totals near 2^53. The
// integer bounded draw must stay strictly below n for every n.
func TestUint64nBoundary(t *testing.T) {
	// Demonstrate the float formula's failure at the boundary: above
	// 2^53 the conversion float64(total) collapses adjacent totals, so
	// int64(Float64()*float64(total)) cannot even address every index —
	// with total = 2^53+1 the top index is unreachable (its unit of
	// weight is silently dropped) no matter what Float64 returns.
	const fMax = 1 - 1.0/(1<<53) // max of math/rand Float64
	if float64(1<<53+1) != float64(1<<53) {
		t.Fatal("float64 precision premise broken")
	}
	if x := int64(fMax * float64(int64(1<<53+1))); x >= 1<<53 {
		t.Fatalf("float derivation reached index %d; boundary premise broken", x)
	}
	edges := []uint64{1, 2, 3, 7, 1 << 20, 1<<53 - 1, 1 << 53, 1<<53 + 1, 1<<64 - 1}
	g := New(23)
	for _, n := range edges {
		for i := 0; i < 2000; i++ {
			if x := g.Uint64n(n); x >= n {
				t.Fatalf("Uint64n(%d) = %d, out of range", n, x)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		if g.Uint64n(1) != 0 {
			t.Fatal("Uint64n(1) != 0")
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	g := New(29)
	const n, draws = 10, 500000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("Uint64n(%d) bucket %d frequency = %.4f", n, i, got)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	g := New(31)
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	g.Uint64n(0)
}

func TestPermIsPermutation(t *testing.T) {
	g := New(19)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}
