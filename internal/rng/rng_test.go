package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide %d/64 times", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := New(1)
	for i := 0; i < 20; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) || !g.Bernoulli(1.5) {
			t.Fatal("out-of-range p mishandled")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(3)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %.4f", p)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	g := New(11)
	w := []float64{1, 0, 3, 6}
	counts := make([]int, len(w))
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	for i, want := range []float64{0.1, 0, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %.4f, want %.2f", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	g := New(5)
	if got := g.Categorical(nil); got != -1 {
		t.Errorf("Categorical(nil) = %d", got)
	}
	if got := g.Categorical([]float64{0, 0}); got != -1 {
		t.Errorf("Categorical(zeros) = %d", got)
	}
	if got := g.Categorical([]float64{-1, 2}); got != 1 {
		t.Errorf("Categorical(neg,pos) = %d", got)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	g := New(13)
	w := []float64{2, 5, 0, 1, 2}
	a := NewAlias(w)
	if a == nil {
		t.Fatal("NewAlias returned nil")
	}
	if a.Len() != len(w) {
		t.Fatalf("Len = %d", a.Len())
	}
	counts := make([]int, len(w))
	const n = 500000
	for i := 0; i < n; i++ {
		counts[a.Draw(g)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight drawn %d times", counts[2])
	}
	total := 10.0
	for i, wi := range w {
		got := float64(counts[i]) / n
		want := wi / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias index %d frequency = %.4f, want %.2f", i, got, want)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Error("NewAlias(nil) non-nil")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Error("NewAlias(zeros) non-nil")
	}
	a := NewAlias([]float64{0, 0, 4})
	g := New(17)
	for i := 0; i < 100; i++ {
		if a.Draw(g) != 2 {
			t.Fatal("single-mass alias drew wrong index")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(19)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}
