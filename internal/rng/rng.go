// Package rng provides the deterministic random-number utilities shared
// by the samplers: a splittable 64-bit generator, categorical sampling,
// and Walker alias tables for O(1) weighted selection. Everything here
// is reproducible from a seed, which the experiments rely on.
package rng

import (
	"math/bits"
	"math/rand"
)

// RNG is a seeded source of randomness. It wraps math/rand so every
// sampler draws from an explicit, reproducible stream rather than the
// global source.
type RNG struct {
	r *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator from the current stream. Use it
// to hand each subsystem its own stream so that interleaving does not
// perturb reproducibility.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uint64n returns a uniform uint64 in [0, n) using Lemire's
// multiply-shift bounded draw with rejection: the 128-bit product
// x·n splits into hi (the candidate) and lo (the fraction), and lo is
// rejected only in the narrow band that would bias hi. Unlike the
// float derivation int64(Float64()*float64(n)) it is exact for every
// n — no 53-bit precision loss, and the result can never round up to
// n. It panics if n == 0, matching Intn's contract.
func (g *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(g.r.Uint64(), n)
	if lo < n {
		// Rejection band: thresh = 2^64 mod n; candidates whose low
		// word falls below it are over-represented by one.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(g.r.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Categorical samples an index proportionally to weights. Negative
// weights are treated as zero. It returns -1 when all weights are zero.
// For repeated draws from fixed weights prefer NewAlias.
func (g *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
