package rng

// Alias is a Walker alias table: after O(n) construction it draws from a
// fixed categorical distribution in O(1) per sample. The union sampler
// uses one to select joins proportionally to cover sizes |J'_j|/|U|.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table over weights. Negative weights are
// treated as zero. It returns nil when all weights are zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if n == 0 || total <= 0 {
		return nil
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples an index from the table's distribution.
func (a *Alias) Draw(g *RNG) int {
	i := g.Intn(len(a.prob))
	if g.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len reports the number of categories.
func (a *Alias) Len() int { return len(a.prob) }
