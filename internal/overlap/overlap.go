// Package overlap implements the union-size combinatorics of §3.1 and
// §4: the table of overlap sizes |O_Δ| over the powerset of joins, the
// k-overlap decomposition A^k_j (Theorem 3), the set-union size formula
// (Eq. 1), and cover sizes |J'_i| by inclusion–exclusion. It also
// provides the exact (full-join) computation of all of these, the
// FullJoinUnion ground truth of §9.
//
// Subsets of the n joins are represented as bitmasks: bit j set means
// join j is in the subset.
package overlap

import (
	"fmt"
	"math"
	"math/bits"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
)

// MaxJoins bounds the number of joins in one union query: the powerset
// table is dense in 2^n.
const MaxJoins = 20

// Table holds (exact or estimated) overlap sizes for every non-empty
// subset of n joins. sizes[mask] = |O_Δ| where Δ is the subset encoded
// by mask; sizes[1<<j] = |J_j|.
type Table struct {
	n     int
	sizes []float64
}

// NewTable returns a zero-filled table for n joins.
func NewTable(n int) (*Table, error) {
	if n < 1 || n > MaxJoins {
		return nil, fmt.Errorf("overlap: need 1..%d joins, got %d", MaxJoins, n)
	}
	return &Table{n: n, sizes: make([]float64, 1<<uint(n))}, nil
}

// N reports the number of joins.
func (t *Table) N() int { return t.n }

// Set records |O_Δ| for the subset mask.
func (t *Table) Set(mask uint, size float64) {
	if size < 0 {
		size = 0
	}
	t.sizes[mask] = size
}

// Get returns |O_Δ| for the subset mask (0 for the empty mask).
func (t *Table) Get(mask uint) float64 {
	if mask == 0 {
		return 0
	}
	return t.sizes[mask]
}

// JoinSize returns |J_j|.
func (t *Table) JoinSize(j int) float64 { return t.sizes[1<<uint(j)] }

// Normalize enforces the monotonicity every true overlap table obeys:
// adding a join to a subset cannot grow the overlap. Estimated tables
// may violate it; Normalize clamps each |O_Δ| to the minimum over its
// one-smaller subsets, processing masks in increasing popcount order.
func (t *Table) Normalize() {
	for size := 2; size <= t.n; size++ {
		for mask := uint(1); mask < uint(len(t.sizes)); mask++ {
			if bits.OnesCount(mask) != size {
				continue
			}
			min := math.Inf(1)
			for j := 0; j < t.n; j++ {
				b := uint(1) << uint(j)
				if mask&b == 0 {
					continue
				}
				if s := t.sizes[mask&^b]; s < min {
					min = s
				}
			}
			if t.sizes[mask] > min {
				t.sizes[mask] = min
			}
		}
	}
}

// KOverlaps computes |A^k_j| for every join j and order k following
// Theorem 3: A^k_j is the size of the part of J_j shared with exactly
// k-1 other joins. Results are clamped at zero, which matters when the
// table holds estimates. The returned matrix is indexed [j][k-1].
func (t *Table) KOverlaps() [][]float64 {
	n := t.n
	full := uint(1<<uint(n)) - 1
	a := make([][]float64, n)
	for j := 0; j < n; j++ {
		a[j] = make([]float64, n)
		a[j][n-1] = t.Get(full)
		for k := n - 1; k >= 1; k-- {
			// Sum of |O_Δ| over Δ of size k containing j.
			sum := 0.0
			jb := uint(1) << uint(j)
			for mask := uint(1); mask <= full; mask++ {
				if mask&jb != 0 && bits.OnesCount(mask) == k {
					sum += t.Get(mask)
				}
			}
			// Deduct the higher-order areas counted multiple times.
			for r := k + 1; r <= n; r++ {
				sum -= float64(binomial(r-1, k-1)) * a[j][r-1]
			}
			if sum < 0 {
				sum = 0
			}
			a[j][k-1] = sum
		}
	}
	return a
}

// UnionSize evaluates Eq. 1: |U| = Σ_j Σ_k |A^k_j| / k. The result is
// clamped to [max_j |J_j|, Σ_j |J_j|], the bounds any set union obeys —
// estimated tables can otherwise drift outside them.
func (t *Table) UnionSize() float64 {
	a := t.KOverlaps()
	u := 0.0
	for j := 0; j < t.n; j++ {
		for k := 1; k <= t.n; k++ {
			u += a[j][k-1] / float64(k)
		}
	}
	lo, hi := 0.0, 0.0
	for j := 0; j < t.n; j++ {
		s := t.JoinSize(j)
		hi += s
		if s > lo {
			lo = s
		}
	}
	if u < lo {
		u = lo
	}
	if u > hi {
		u = hi
	}
	return u
}

// CoverSizes computes |J'_i| for the cover induced by the table's join
// order (§3.1): J'_i holds the tuples of J_i not covered by any earlier
// join, so |J'_i| = Σ_{Δ ⊆ {0..i-1}} (-1)^|Δ| · |O_{Δ ∪ {i}}| by
// inclusion–exclusion. Values are clamped at zero.
func (t *Table) CoverSizes() []float64 {
	out := make([]float64, t.n)
	for i := 0; i < t.n; i++ {
		ib := uint(1) << uint(i)
		prior := ib - 1 // bits 0..i-1
		sum := 0.0
		// Iterate subsets of prior.
		for sub := uint(0); ; sub = (sub - prior) & prior {
			sign := 1.0
			if bits.OnesCount(sub)%2 == 1 {
				sign = -1
			}
			sum += sign * t.Get(sub|ib)
			if sub == prior {
				break
			}
		}
		if sum < 0 {
			sum = 0
		}
		out[i] = sum
	}
	return out
}

// binomial returns C(n, k) for small arguments.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

// Exact materializes every join and fills a Table with the true overlap
// sizes; it also returns the exact set-union size. Output tuples are
// aligned by attribute name to the first join's schema (§2: all joins
// share an output schema). This is the brute-force ground truth; it is
// exponentially cheaper than intersecting pairwise because each tuple's
// membership mask is computed once and aggregated with a superset-sum
// (zeta) transform.
func Exact(joins []*join.Join) (*Table, int, error) {
	t, err := NewTable(len(joins))
	if err != nil {
		return nil, 0, err
	}
	ref := joins[0].OutputSchema()
	byMask := make(map[uint]int)
	seen := make(map[string]uint, 1024)
	for jIdx, j := range joins {
		perm, err := alignPerm(ref, j.OutputSchema())
		if err != nil {
			return nil, 0, fmt.Errorf("overlap: join %s: %w", j.Name(), err)
		}
		buf := make(relation.Tuple, ref.Len())
		j.Enumerate(func(tu relation.Tuple) bool {
			for i, p := range perm {
				buf[i] = tu[p]
			}
			seen[relation.TupleKey(buf)] |= 1 << uint(jIdx)
			return true
		})
	}
	for _, mask := range seen {
		byMask[mask]++
	}
	unionSize := len(seen)
	// sizes[Δ] = Σ over exact-membership masks m ⊇ Δ of byMask[m].
	full := uint(1<<uint(len(joins))) - 1
	for mask := uint(1); mask <= full; mask++ {
		total := 0
		for m, c := range byMask {
			if m&mask == mask {
				total += c
			}
		}
		t.Set(mask, float64(total))
	}
	return t, unionSize, nil
}

// alignPerm returns perm such that aligned[i] = tuple[perm[i]] expresses
// a tuple of schema `from` in schema `ref` order.
func alignPerm(ref, from *relation.Schema) ([]int, error) {
	if ref.Len() != from.Len() {
		return nil, fmt.Errorf("schema arity %d != %d", from.Len(), ref.Len())
	}
	perm := make([]int, ref.Len())
	for i := 0; i < ref.Len(); i++ {
		p := from.Index(ref.Attr(i))
		if p < 0 {
			return nil, fmt.Errorf("schema lacks attribute %q", ref.Attr(i))
		}
		perm[i] = p
	}
	return perm, nil
}

// AlignPerm is the exported form of alignPerm for other packages that
// need to express tuples of one join in another join's schema order.
func AlignPerm(ref, from *relation.Schema) ([]int, error) { return alignPerm(ref, from) }
