package overlap

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
)

// tableFromSets builds the exact overlap table of abstract sets, the
// reference model for the combinatorics.
func tableFromSets(sets [][]int) *Table {
	t, err := NewTable(len(sets))
	if err != nil {
		panic(err)
	}
	full := uint(1<<uint(len(sets))) - 1
	for mask := uint(1); mask <= full; mask++ {
		counts := make(map[int]int)
		nsel := 0
		for j := range sets {
			if mask&(1<<uint(j)) == 0 {
				continue
			}
			nsel++
			seen := make(map[int]bool)
			for _, v := range sets[j] {
				if !seen[v] {
					seen[v] = true
					counts[v]++
				}
			}
		}
		inAll := 0
		for _, c := range counts {
			if c == nsel {
				inAll++
			}
		}
		t.Set(mask, float64(inAll))
	}
	return t
}

func unionOfSets(sets [][]int) map[int]bool {
	u := make(map[int]bool)
	for _, s := range sets {
		for _, v := range s {
			u[v] = true
		}
	}
	return u
}

func TestUnionSizeExactOnSets(t *testing.T) {
	sets := [][]int{
		{1, 2, 3, 4, 5},
		{4, 5, 6, 7},
		{5, 7, 8, 9, 10, 11},
	}
	tab := tableFromSets(sets)
	want := float64(len(unionOfSets(sets)))
	if got := tab.UnionSize(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("UnionSize = %f, want %f", got, want)
	}
}

func TestKOverlapsOnSets(t *testing.T) {
	sets := [][]int{
		{1, 2, 3, 4, 5}, // 1,2,3 private; 4 shared with B; 5 with B and C
		{4, 5, 6, 7},    // 6 private; 7 shared with C
		{5, 7, 8, 9, 10, 11},
	}
	tab := tableFromSets(sets)
	a := tab.KOverlaps()
	// Join 0: A^1 = {1,2,3} = 3, A^2 = {4} = 1, A^3 = {5} = 1.
	want0 := []float64{3, 1, 1}
	for k, w := range want0 {
		if math.Abs(a[0][k]-w) > 1e-9 {
			t.Errorf("A^%d_0 = %f, want %f", k+1, a[0][k], w)
		}
	}
	// Join 1: A^1 = {6} = 1, A^2 = {4,7} = 2, A^3 = {5} = 1.
	want1 := []float64{1, 2, 1}
	for k, w := range want1 {
		if math.Abs(a[1][k]-w) > 1e-9 {
			t.Errorf("A^%d_1 = %f, want %f", k+1, a[1][k], w)
		}
	}
	// Sanity: Σ_k A^k_j = |J_j|.
	for j := range sets {
		sum := 0.0
		for k := range a[j] {
			sum += a[j][k]
		}
		if math.Abs(sum-tab.JoinSize(j)) > 1e-9 {
			t.Errorf("Σ_k A^k_%d = %f, want |J_%d| = %f", j, sum, j, tab.JoinSize(j))
		}
	}
}

func TestCoverSizesOnSets(t *testing.T) {
	sets := [][]int{
		{1, 2, 3, 4, 5},
		{4, 5, 6, 7},
		{5, 7, 8, 9, 10, 11},
	}
	tab := tableFromSets(sets)
	cover := tab.CoverSizes()
	// J'_0 = J_0 (5), J'_1 = {6,7} (2), J'_2 = {8,9,10,11} (4).
	want := []float64{5, 2, 4}
	for i, w := range want {
		if math.Abs(cover[i]-w) > 1e-9 {
			t.Errorf("|J'_%d| = %f, want %f", i, cover[i], w)
		}
	}
	// Cover sizes partition the union.
	sum := 0.0
	for _, c := range cover {
		sum += c
	}
	if math.Abs(sum-tab.UnionSize()) > 1e-9 {
		t.Errorf("Σ|J'_i| = %f, |U| = %f", sum, tab.UnionSize())
	}
}

// TestUnionAndCoverProperty drives the identities with random sets.
func TestUnionAndCoverProperty(t *testing.T) {
	f := func(raw [3][]uint8) bool {
		sets := make([][]int, 3)
		for j := range raw {
			for _, v := range raw[j] {
				sets[j] = append(sets[j], int(v)%32)
			}
			if len(sets[j]) == 0 {
				sets[j] = []int{int(j) + 100} // keep joins non-empty
			}
		}
		tab := tableFromSets(sets)
		want := float64(len(unionOfSets(sets)))
		if math.Abs(tab.UnionSize()-want) > 1e-6 {
			return false
		}
		cover := tab.CoverSizes()
		sum := 0.0
		for _, c := range cover {
			sum += c
		}
		if math.Abs(sum-want) > 1e-6 {
			return false
		}
		// k-overlap row sums equal join sizes.
		a := tab.KOverlaps()
		for j := range sets {
			rs := 0.0
			for k := range a[j] {
				rs += a[j][k]
			}
			if math.Abs(rs-tab.JoinSize(j)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeClampsToMonotone(t *testing.T) {
	tab, _ := NewTable(3)
	tab.Set(0b001, 10)
	tab.Set(0b010, 8)
	tab.Set(0b100, 6)
	tab.Set(0b011, 9) // exceeds min(10,8): clamp to 8
	tab.Set(0b101, 3)
	tab.Set(0b110, 100) // clamp to 6
	tab.Set(0b111, 50)  // clamp to min of pairs after their clamping
	tab.Normalize()
	if tab.Get(0b011) != 8 {
		t.Errorf("Get(011) = %f, want 8", tab.Get(0b011))
	}
	if tab.Get(0b110) != 6 {
		t.Errorf("Get(110) = %f, want 6", tab.Get(0b110))
	}
	if tab.Get(0b111) != 3 {
		t.Errorf("Get(111) = %f, want 3 (via pair 101)", tab.Get(0b111))
	}
}

func TestTableBasics(t *testing.T) {
	if _, err := NewTable(0); err == nil {
		t.Error("NewTable(0) succeeded")
	}
	if _, err := NewTable(MaxJoins + 1); err == nil {
		t.Error("NewTable(too many) succeeded")
	}
	tab, err := NewTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 2 {
		t.Errorf("N = %d", tab.N())
	}
	tab.Set(0b01, -5) // negative clamps to 0
	if tab.Get(0b01) != 0 {
		t.Errorf("negative size stored")
	}
	if tab.Get(0) != 0 {
		t.Errorf("empty mask nonzero")
	}
	tab.Set(0b10, 7)
	if tab.JoinSize(1) != 7 {
		t.Errorf("JoinSize(1) = %f", tab.JoinSize(1))
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {6, 3, 20},
		{10, 4, 210}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// joinPair builds two single-relation joins with a controlled overlap so
// that Exact can be validated end to end.
func joinPair(t *testing.T) []*join.Join {
	t.Helper()
	s := relation.NewSchema("A", "B")
	r1 := relation.MustFromTuples("R1", s, []relation.Tuple{
		{1, 1}, {2, 2}, {3, 3}, {4, 4},
	})
	r2 := relation.MustFromTuples("R2", s, []relation.Tuple{
		{3, 3}, {4, 4}, {5, 5},
	})
	j1, err := join.NewChain("J1", []*relation.Relation{r1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := join.NewChain("J2", []*relation.Relation{r2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []*join.Join{j1, j2}
}

func TestExactOnJoins(t *testing.T) {
	joins := joinPair(t)
	tab, unionSize, err := Exact(joins)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if unionSize != 5 {
		t.Errorf("union size = %d, want 5", unionSize)
	}
	if tab.JoinSize(0) != 4 || tab.JoinSize(1) != 3 {
		t.Errorf("join sizes = %f, %f", tab.JoinSize(0), tab.JoinSize(1))
	}
	if tab.Get(0b11) != 2 {
		t.Errorf("pairwise overlap = %f, want 2", tab.Get(0b11))
	}
	if got := tab.UnionSize(); math.Abs(got-5) > 1e-9 {
		t.Errorf("UnionSize = %f, want 5", got)
	}
	cover := tab.CoverSizes()
	if cover[0] != 4 || cover[1] != 1 {
		t.Errorf("cover = %v, want [4 1]", cover)
	}
}

func TestExactAlignsSchemas(t *testing.T) {
	// Same attribute set, different order: overlap must match by name.
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("B", "A"), []relation.Tuple{{2, 1}})
	j1, _ := join.NewChain("J1", []*relation.Relation{r1}, nil)
	j2, _ := join.NewChain("J2", []*relation.Relation{r2}, nil)
	tab, unionSize, err := Exact([]*join.Join{j1, j2})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if unionSize != 1 {
		t.Errorf("union size = %d, want 1 (tuples identical up to order)", unionSize)
	}
	if tab.Get(0b11) != 1 {
		t.Errorf("overlap = %f, want 1", tab.Get(0b11))
	}
}

func TestExactSchemaMismatch(t *testing.T) {
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "B"), []relation.Tuple{{1, 2}})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("A", "C"), []relation.Tuple{{1, 2}})
	j1, _ := join.NewChain("J1", []*relation.Relation{r1}, nil)
	j2, _ := join.NewChain("J2", []*relation.Relation{r2}, nil)
	if _, _, err := Exact([]*join.Join{j1, j2}); err == nil {
		t.Error("mismatched schemas accepted")
	}
}

func TestMaskInvariants(t *testing.T) {
	// The mask helpers we rely on: subset enumeration in CoverSizes uses
	// the (sub-prior)&prior trick; verify enumeration covers 2^i subsets
	// by checking against popcount arithmetic indirectly via cover of
	// identical sets: J'_i = 0 for every i > 0.
	sets := [][]int{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	tab := tableFromSets(sets)
	cover := tab.CoverSizes()
	if cover[0] != 2 {
		t.Errorf("cover[0] = %f", cover[0])
	}
	for i := 1; i < 4; i++ {
		if cover[i] != 0 {
			t.Errorf("cover[%d] = %f, want 0", i, cover[i])
		}
	}
	if got := tab.UnionSize(); got != 2 {
		t.Errorf("UnionSize = %f, want 2", got)
	}
	_ = bits.OnesCount(0)
}
