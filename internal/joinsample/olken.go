package joinsample

import (
	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// EO is the Extended Olken sampler: uniform samples via accept/reject
// against max-degree upper bounds. Cheap to set up (only max degrees),
// but the rejection rate grows with skew — the trade-off the paper's
// evaluation quantifies (Fig 5).
type EO struct {
	j *join.Join
	// maxDeg[k] is M_attr(R_k) for non-root node k.
	maxDeg []int
	bound  float64
}

// NewEO prepares an Extended Olken sampler for j.
func NewEO(j *join.Join) *EO {
	nodes := j.Nodes()
	e := &EO{j: j, maxDeg: make([]int, len(nodes))}
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		e.maxDeg[k] = n.Rel.MaxDegree(n.AttrPos)
	}
	e.bound = j.OlkenBound()
	return e
}

// Method implements Sampler.
func (e *EO) Method() string { return "EO" }

// Join implements Sampler.
func (e *EO) Join() *join.Join { return e.j }

// SizeEstimate implements Sampler: the extended Olken upper bound on
// |J| (§3.2), which is what the histogram-based instantiation plugs
// into the framework.
func (e *EO) SizeEstimate() float64 { return e.bound }

// Sample implements Sampler. Every accepted walk is a uniform draw from
// the join result: the probability of a particular result is
// 1/(|R_root| · Π M) regardless of the path taken.
func (e *EO) Sample(g *rng.RNG) (relation.Tuple, bool) {
	return sampleAlloc(e.j, e.SampleInto, g)
}

// SampleInto implements Sampler without allocating.
func (e *EO) SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool {
	nodes := e.j.Nodes()
	root := nodes[0].Rel
	r0, ok := liveRoot(root, g)
	if !ok {
		return false
	}
	rowOf[0] = r0
	e.j.FillOutput(0, rowOf[0], out)
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		v := e.j.ParentValue(k, rowOf[n.Parent])
		matches := n.Rel.Matches(n.AttrPos, v)
		d := len(matches)
		if d == 0 {
			return false // dangling tuple: zero weight (§3.2)
		}
		if !g.Bernoulli(float64(d) / float64(e.maxDeg[k])) {
			return false
		}
		rowOf[k] = matches[g.Intn(d)]
		e.j.FillOutput(k, rowOf[k], out)
	}
	return finishResidual(e.j, out, g)
}

// SampleManyInto implements Sampler's batch draw: the accept/reject
// walk loop runs inside one call — EO's rejection rate grows with
// skew, so amortizing the per-attempt call overhead matters most here.
func (e *EO) SampleManyInto(out []relation.Tuple, rowOf []int, maxTries int, g *rng.RNG) (filled, tries int) {
	for filled < len(out) && tries < maxTries {
		tries++
		if e.SampleInto(out[filled], rowOf, g) {
			filled++
		}
	}
	return filled, tries
}

// WJ is the Wander Join weight instantiation of §3.2 as a *uniform*
// sampler: a random walk returns (t, p(t)), and the draw is accepted
// with probability 1/(p(t)·B) where B is the extended Olken bound.
// Since p(t) = 1/(|R_root|·Π d_i) ≥ 1/B, the ratio is a probability,
// and every accepted result has unconditional probability
// p(t)·1/(p(t)·B) = 1/B — uniform. Setup is index-only like EO; the
// acceptance rate is |J|/B, also like EO, but heavy results are found
// proportionally to their fan-in and thinned analytically instead of
// hop-by-hop.
type WJ struct {
	j      *join.Join
	walker *Walker
	bound  float64
}

// NewWJ prepares a Wander Join uniform sampler for j.
func NewWJ(j *join.Join) *WJ {
	return &WJ{j: j, walker: NewWalker(j), bound: j.OlkenBound()}
}

// Method implements Sampler.
func (w *WJ) Method() string { return "WJ" }

// Join implements Sampler.
func (w *WJ) Join() *join.Join { return w.j }

// SizeEstimate implements Sampler: the Olken bound, the sampler's
// normalization constant.
func (w *WJ) SizeEstimate() float64 { return w.bound }

// Sample implements Sampler.
func (w *WJ) Sample(g *rng.RNG) (relation.Tuple, bool) {
	return sampleAlloc(w.j, w.SampleInto, g)
}

// SampleInto implements Sampler without allocating.
func (w *WJ) SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool {
	p, ok := w.walker.WalkInto(out, rowOf, g)
	if !ok {
		return false
	}
	return g.Bernoulli(1 / (p * w.bound))
}

// SampleManyInto implements Sampler's batch draw: wander-join walks
// with the analytic 1/(p(t)·B) thinning in one tight loop.
func (w *WJ) SampleManyInto(out []relation.Tuple, rowOf []int, maxTries int, g *rng.RNG) (filled, tries int) {
	for filled < len(out) && tries < maxTries {
		tries++
		p, ok := w.walker.WalkInto(out[filled], rowOf, g)
		if ok && g.Bernoulli(1/(p*w.bound)) {
			filled++
		}
	}
	return filled, tries
}

// Walker performs Wander Join random walks over the join data graph
// (§6.1): each successful walk returns a result tuple together with its
// exact sampling probability p(t) = 1/|R_root| · Π 1/d_i. Walks are
// not uniform; they feed the Horvitz–Thompson estimators of §6 and the
// reuse pool of §7.
type Walker struct {
	j *join.Join
}

// NewWalker prepares a Wander Join walker for j.
func NewWalker(j *join.Join) *Walker { return &Walker{j: j} }

// Join returns the underlying join.
func (w *Walker) Join() *join.Join { return w.j }

// Walk performs one random walk. ok is false when the walk dies on a
// dangling tuple (p(t) = 0 in the paper's backtracking bookkeeping).
// The returned tuple is freshly allocated and safe to retain — the
// walkest reuse pool depends on that.
func (w *Walker) Walk(g *rng.RNG) (relation.Tuple, float64, bool) {
	out := make(relation.Tuple, w.j.OutputSchema().Len())
	rowOf := make([]int, len(w.j.Nodes()))
	p, ok := w.WalkInto(out, rowOf, g)
	if !ok {
		return nil, 0, false
	}
	return out, p, true
}

// WalkManyInto is the Walker's batch variant: it fills out[i] and
// probs[i] with up to len(out) successful walks (each out[i] a
// distinct caller-owned tuple), attempting at most maxTries walks in
// total, and returns the number of successful walks and the attempts
// consumed. Dead walks (dangling tuples) cost an attempt and fill
// nothing. It serves single-join batch consumers (bulk
// Horvitz–Thompson estimation, the batch-vs-sequential property
// tests); the union engines deliberately keep per-walk stepping, since
// each walk's estimate update must feed the next draw's parameters.
func (w *Walker) WalkManyInto(out []relation.Tuple, probs []float64, rowOf []int, maxTries int, g *rng.RNG) (filled, tries int) {
	for filled < len(out) && tries < maxTries {
		tries++
		p, ok := w.WalkInto(out[filled], rowOf, g)
		if ok {
			probs[filled] = p
			filled++
		}
	}
	return filled, tries
}

// WalkInto is Walk into caller-owned scratch; a dead walk may leave the
// buffers partially written.
func (w *Walker) WalkInto(out relation.Tuple, rowOf []int, g *rng.RNG) (float64, bool) {
	nodes := w.j.Nodes()
	root := nodes[0].Rel
	r0, ok := liveRoot(root, g)
	if !ok {
		return 0, false
	}
	rowOf[0] = r0
	w.j.FillOutput(0, rowOf[0], out)
	p := 1.0 / float64(root.LiveLen())
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		v := w.j.ParentValue(k, rowOf[n.Parent])
		matches := n.Rel.Matches(n.AttrPos, v)
		d := len(matches)
		if d == 0 {
			return 0, false
		}
		rowOf[k] = matches[g.Intn(d)]
		w.j.FillOutput(k, rowOf[k], out)
		p /= float64(d)
	}
	if res := w.j.ResidualPart(); res != nil {
		rv := res.View()
		matches := rv.Match(out)
		d := len(matches)
		if d == 0 {
			return 0, false
		}
		rv.FillInto(matches[g.Intn(d)], out)
		p /= float64(d)
	}
	return p, true
}
