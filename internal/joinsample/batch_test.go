package joinsample

import (
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// mkBatch allocates a batch of k distinct scratch tuples (one flat
// backing array) plus walk scratch for SampleManyInto.
func mkBatch(j *join.Join, k int) ([]relation.Tuple, []int) {
	arity := j.OutputSchema().Len()
	flat := make(relation.Tuple, k*arity)
	out := make([]relation.Tuple, k)
	for i := range out {
		out[i] = flat[i*arity : (i+1)*arity : (i+1)*arity]
	}
	return out, make([]int, len(j.Nodes()))
}

// checkUniformBatch is checkUniform through SampleManyInto: batch
// draws must be uniform over the exact result set too.
func checkUniformBatch(t *testing.T, s Sampler, seed int64, draws int) {
	t.Helper()
	results := s.Join().Execute()
	if len(results) == 0 {
		t.Fatal("fixture join is empty")
	}
	index := make(map[string]int, len(results))
	for i, tu := range results {
		index[relation.TupleKey(tu)] = i
	}
	counts := make([]int, len(results))
	out, rowOf := mkBatch(s.Join(), 64)
	g := rng.New(seed)
	accepted := 0
	for accepted < draws {
		filled, tries := s.SampleManyInto(out, rowOf, 64*1000, g)
		if tries == 0 {
			t.Fatalf("%s: SampleManyInto made no attempts", s.Method())
		}
		for i := 0; i < filled; i++ {
			idx, known := index[relation.TupleKey(out[i])]
			if !known {
				t.Fatalf("%s batch produced non-result %v", s.Method(), out[i])
			}
			counts[idx]++
		}
		accepted += filled
	}
	expected := float64(accepted) / float64(len(results))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(results) - 1)
	limit := dof + 6*math.Sqrt(2*dof) + 6
	if chi2 > limit {
		t.Errorf("%s batch: chi2 = %.1f over %v dof (limit %.1f); counts %v", s.Method(), chi2, dof, limit, counts)
	}
}

func TestBatchUniformEW(t *testing.T)       { checkUniformBatch(t, NewEW(chainJoin(t)), 21, 30000) }
func TestBatchUniformEO(t *testing.T)       { checkUniformBatch(t, NewEO(chainJoin(t)), 22, 30000) }
func TestBatchUniformWJ(t *testing.T)       { checkUniformBatch(t, NewWJ(chainJoin(t)), 23, 30000) }
func TestBatchUniformEWCyclic(t *testing.T) { checkUniformBatch(t, NewEW(triangleJoin(t)), 24, 30000) }
func TestBatchUniformEOCyclic(t *testing.T) { checkUniformBatch(t, NewEO(triangleJoin(t)), 25, 30000) }

// TestBatchAliasForced re-runs the EW batch uniformity check with the
// alias threshold at zero, so every weighted row selection goes through
// an alias table even on tiny fan-outs.
func TestBatchAliasForced(t *testing.T) {
	checkUniformBatch(t, NewEWAlias(chainJoin(t), 0), 26, 30000)
	checkUniformBatch(t, NewEWAlias(triangleJoin(t), 0), 27, 30000)
}

// TestBatchRespectsMaxTries: the batch call must consume at most
// maxTries attempts and report them exactly (EO rejects, so small
// budgets return partial fills).
func TestBatchRespectsMaxTries(t *testing.T) {
	e := NewEO(chainJoin(t))
	out, rowOf := mkBatch(e.Join(), 32)
	g := rng.New(28)
	for _, budget := range []int{0, 1, 3, 17} {
		filled, tries := e.SampleManyInto(out, rowOf, budget, g)
		if tries > budget {
			t.Fatalf("budget %d: consumed %d tries", budget, tries)
		}
		if filled > tries {
			t.Fatalf("budget %d: filled %d > tries %d", budget, filled, tries)
		}
	}
	// EW on a tree join never rejects: a sufficient budget fills the
	// whole batch with exactly len(out) attempts.
	ew := NewEW(chainJoin(t))
	filled, tries := ew.SampleManyInto(out, rowOf, 1000, g)
	if filled != len(out) || tries != len(out) {
		t.Fatalf("EW batch: filled=%d tries=%d, want %d/%d", filled, tries, len(out), len(out))
	}
}

// drawFreqs draws n rows through the given selector and returns
// per-row frequencies.
func drawFreqs(wr *weightedRows, n int, draw func(*weightedRows) int) map[int]int {
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[draw(wr)]++
	}
	return counts
}

// TestAliasMatchesPrefixSums is the alias-vs-prefix-sum property test
// under degraded weights: highly skewed weights, zero weights, and
// totals past 2^53 (where the retired float derivation could not even
// address every row). Both selection paths must reproduce the weight
// distribution.
func TestAliasMatchesPrefixSums(t *testing.T) {
	cases := []struct {
		name string
		w    []int64
	}{
		{"uniform", []int64{5, 5, 5, 5}},
		{"skewed", []int64{1, 1 << 30, 7, 1 << 20, 3}},
		{"zeros", []int64{0, 4, 0, 0, 9, 0, 2}},
		{"huge", []int64{1 << 53, 1, 1 << 52, 1}},
	}
	const draws = 200000
	for _, c := range cases {
		rows := make([]int, len(c.w))
		for i := range rows {
			rows[i] = i
		}
		wr := buildWeighted(rows, c.w)
		var total float64
		for _, w := range c.w {
			if w > 0 {
				total += float64(w)
			}
		}
		check := func(name string, freqs map[int]int) {
			for r, w := range c.w {
				got := float64(freqs[r]) / draws
				want := float64(w) / total
				if w == 0 && freqs[r] != 0 {
					t.Errorf("%s/%s: zero-weight row %d drawn %d times", c.name, name, r, freqs[r])
				}
				// Loose frequency bound; huge-weight cases have rows
				// with want ~ 1e-16 that are simply never drawn.
				if math.Abs(got-want) > 0.01 {
					t.Errorf("%s/%s: row %d frequency %.4f, want %.4f", c.name, name, r, got, want)
				}
			}
		}
		gp := rng.New(31)
		check("prefix", drawFreqs(wr, draws, func(wr *weightedRows) int { return wr.drawBounded(gp) }))
		ga := rng.New(32)
		check("alias", drawFreqs(wr, draws, func(wr *weightedRows) int { return wr.drawBatch(ga, 0) }))
		gt := rng.New(33)
		check("threshold", drawFreqs(wr, draws, func(wr *weightedRows) int { return wr.drawBatch(gt, 1<<30) }))
	}
}

// TestBatchInvalidationAfterMutation pins the alias-invalidation
// wiring: a live mutation bumps the relation versions, the stale EW
// (and the alias tables lazily built inside it) keeps sampling its own
// immutable snapshot, and the rebuilt sampler — what Refresh creates
// for a dirty join — draws the post-mutation distribution, new rows
// included.
func TestBatchInvalidationAfterMutation(t *testing.T) {
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "X"), []relation.Tuple{
		{1, 100}, {2, 200},
	})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 12},
	})
	j, err := join.NewChain("J", []*relation.Relation{r1, r2}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold zero forces alias tables so staleness would surface.
	stale := NewEWAlias(j, 0)
	node := j.Nodes()[1]
	idxVerBefore := node.Rel.Index(node.AttrPos).Version()
	out, rowOf := mkBatch(j, 16)
	g := rng.New(41)
	// Build the alias tables pre-mutation.
	if filled, _ := stale.SampleManyInto(out, rowOf, 1000, g); filled != 16 {
		t.Fatalf("pre-mutation batch filled %d", filled)
	}
	preResults := len(j.Execute())

	// Mutate: a new A value with heavy fan-out, plus a delete.
	r2.AppendRows([]relation.Tuple{{3, 13}, {3, 14}, {3, 15}})
	r1.AppendRows([]relation.Tuple{{3, 300}})
	r2.Delete(2) // drop {2,12}: customer 2 loses its only order

	if same := equalVersions(stale.StateVersions(), j.StateVersions()); same {
		t.Fatal("mutation did not bump the join state versions")
	}
	if v := node.Rel.Index(node.AttrPos).Version(); v <= idxVerBefore {
		t.Fatalf("index version did not advance: %d -> %d", idxVerBefore, v)
	}

	// The stale sampler must keep drawing its snapshot (old result set,
	// no new rows) — alias tables cannot see rows they were not built
	// over.
	for i := 0; i < 2000; i++ {
		filled, _ := stale.SampleManyInto(out[:1], rowOf, 1000, g)
		if filled != 1 {
			t.Fatal("stale sampler stopped producing")
		}
		if out[0][0] == 3 {
			t.Fatal("stale sampler drew a post-mutation row")
		}
	}

	// The rebuilt sampler (what Refresh does for a dirty join) must be
	// uniform over the new result set.
	fresh := NewEWAlias(j, 0)
	if !equalVersions(fresh.StateVersions(), j.StateVersions()) {
		t.Fatal("fresh sampler version snapshot mismatch")
	}
	postResults := len(j.Execute())
	if postResults == preResults {
		t.Fatal("mutation did not change the result set size")
	}
	checkUniformBatch(t, fresh, 42, 20000)
}

func equalVersions(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWalkManyInto checks the Walker batch variant: probabilities in
// range, tuples in the join, and exact fill/try accounting against the
// sequential walker on the same stream.
func TestWalkManyInto(t *testing.T) {
	j := chainJoin(t)
	w := NewWalker(j)
	out, rowOf := mkBatch(j, 32)
	probs := make([]float64, 32)
	g := rng.New(51)
	filled, tries := w.WalkManyInto(out, probs, rowOf, 10000, g)
	if filled != 32 {
		t.Fatalf("filled %d of 32 (tries %d)", filled, tries)
	}
	if tries < filled {
		t.Fatalf("tries %d < filled %d", tries, filled)
	}
	for i := 0; i < filled; i++ {
		if !j.Contains(out[i]) {
			t.Fatalf("walk %d produced non-result %v", i, out[i])
		}
		if probs[i] <= 0 || probs[i] > 1 {
			t.Fatalf("walk %d probability %f out of range", i, probs[i])
		}
	}
	// Horvitz–Thompson over batch walks stays unbiased.
	const n = 60000
	sum := 0.0
	walked := 0
	for walked < n {
		f, tr := w.WalkManyInto(out, probs, rowOf, 64, g)
		for i := 0; i < f; i++ {
			sum += 1 / probs[i]
		}
		walked += tr
	}
	est := sum / float64(walked)
	truth := float64(j.Count())
	if math.Abs(est-truth)/truth > 0.05 {
		t.Errorf("batch HT estimate %.2f, truth %.0f", est, truth)
	}
}
